// Command ustore-sim boots a full simulated UStore deployment and runs a
// scripted scenario against it, narrating what happens on the virtual
// timeline: allocation, IO, a host crash, failure detection, fabric
// reconfiguration, re-enumeration, and transparent client remounts.
//
// Usage:
//
//	ustore-sim                     # default scenario (host crash)
//	ustore-sim -hosts 4 -disks 16  # cluster shape
//	ustore-sim -scenario switch    # deliberate disk-group switch
//	ustore-sim -seed 7             # different deterministic run
//	ustore-sim -stats              # end-of-run metrics table
//	ustore-sim -scenario fleet -units 8 -shards 2   # sharded fleet unit-loss demo
//	ustore-sim -scenario fleet -engine-workers 4    # same demo on the parallel engine
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ustore"
	"ustore/internal/core"
	"ustore/internal/fabric"
	"ustore/internal/fleet"
	"ustore/internal/obs"
)

func main() {
	hosts := flag.Int("hosts", 4, "hosts per deploy unit")
	disks := flag.Int("disks", 16, "disks per deploy unit")
	fanIn := flag.Int("fanin", 4, "hub fan-in factor")
	units := flag.Int("units", 1, "number of deploy units under one Master")
	shards := flag.Int("shards", 2, "fleet scenario: metadata shards")
	seed := flag.Int64("seed", 1, "simulation seed")
	scenario := flag.String("scenario", "crash", "scenario: crash | switch | powersave | fleet")
	engWorkers := flag.Int("engine-workers", 0, "fleet scenario: run on the parallel conservative engine with this many workers (0 = classic single-threaded scheduler)")
	stats := flag.Bool("stats", false, "print an end-of-run table of all collected metrics")
	flag.Parse()

	if *scenario == "fleet" {
		// The fleet scenario builds its own sharded control plane instead
		// of a single-master cluster.
		runFleet(*units, *shards, *engWorkers, *seed)
		return
	}

	cfg := ustore.DefaultConfig()
	var rec *obs.Recorder
	if *stats {
		rec = obs.NewRecorder()
		cfg.Recorder = rec
	}
	cfg.Seed = *seed
	cfg.Units = *units
	cfg.Fabric.Disks = *disks
	cfg.Fabric.FanIn = *fanIn
	cfg.Fabric.Hosts = nil
	for i := 1; i <= *hosts; i++ {
		cfg.Fabric.Hosts = append(cfg.Fabric.Hosts, fmt.Sprintf("h%d", i))
	}

	c, err := ustore.NewCluster(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "building cluster:", err)
		os.Exit(1)
	}
	say := func(format string, args ...any) {
		fmt.Printf("[t=%8s] %s\n", c.Sched.Now().Truncate(time.Millisecond), fmt.Sprintf(format, args...))
	}
	say("booting: %d unit(s) x (%d hosts, %d disks), fan-in %d, %d master replicas",
		*units, *hosts, *disks, *fanIn, cfg.MasterReplicas)
	c.Settle(ustore.BootTime)
	m := c.ActiveMaster()
	if m == nil {
		fmt.Fprintln(os.Stderr, "no active master after boot")
		os.Exit(1)
	}
	say("active master: %s", m.Name())
	for _, rig := range c.UnitRigs {
		for _, h := range rig.Fabric.Hosts() {
			say("  [%s] host %s: %d disks attached", rig.ID, h, c.DiskCountOn(h))
		}
	}

	switch *scenario {
	case "crash":
		runCrash(c, say)
	case "switch":
		runSwitch(c, say)
	case "powersave":
		runPowersave(c, say)
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	if *stats {
		printStats(rec)
	}
}

// printStats renders every collected metric series as an aligned table,
// sorted by component then name then labels (the snapshot order).
func printStats(rec *obs.Recorder) {
	snap := rec.Registry().Snapshot()
	sort.SliceStable(snap.Metrics, func(i, j int) bool {
		a, b := snap.Metrics[i], snap.Metrics[j]
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		return a.Name < b.Name
	})
	fmt.Println("\n=== end-of-run metrics ===")
	rows := [][2]string{}
	for _, s := range snap.Metrics {
		name := s.Name
		if len(s.Labels) > 0 {
			keys := make([]string, 0, len(s.Labels))
			for k := range s.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var parts []string
			for _, k := range keys {
				parts = append(parts, k+"="+s.Labels[k])
			}
			name += "{" + strings.Join(parts, ",") + "}"
		}
		var val string
		if s.Type == "histogram" {
			val = fmt.Sprintf("count=%d sum=%.6gs", s.Count, s.Sum)
		} else {
			val = fmt.Sprintf("%g", s.Value)
		}
		rows = append(rows, [2]string{name, val})
	}
	width := 0
	for _, r := range rows {
		if len(r[0]) > width {
			width = len(r[0])
		}
	}
	for _, r := range rows {
		fmt.Printf("  %-*s  %s\n", width, r[0], r[1])
	}
}

// runCrash allocates and mounts a space, kills its host, and narrates the
// automatic failover.
func runCrash(c *ustore.Cluster, say func(string, ...any)) {
	cl := c.Client("demo-client", "demo-svc")
	var rep ustore.AllocateReply
	cl.Allocate(1<<30, func(r ustore.AllocateReply, err error) {
		if err != nil {
			say("allocate failed: %v", err)
			return
		}
		rep = r
	})
	c.Settle(2 * time.Second)
	say("allocated %s on %s (host %s)", rep.Space, rep.DiskID, rep.Host)
	cl.OnMount = func(ev ustore.MountEvent) {
		if ev.Remounted {
			say("client transparently remounted %s on %s", ev.Space, ev.Host)
		} else {
			say("client mounted %s on %s", ev.Space, ev.Host)
		}
	}
	cl.Mount(rep.Space, func(err error) {
		if err != nil {
			say("mount failed: %v", err)
		}
	})
	c.Settle(2 * time.Second)

	m := c.ActiveMaster()
	m.OnHostDead = func(h string) { say("MASTER: host %s declared dead", h) }
	m.OnFailoverDone = func(h string, took time.Duration) {
		say("MASTER: disks of %s re-homed and re-exported in %s", h, took.Truncate(10*time.Millisecond))
	}
	victim := rep.Host
	say("crashing host %s", victim)
	crashAt := c.Sched.Now()
	c.CrashHost(victim)

	recovered := false
	var probe func()
	probe = func() {
		cl.Read(rep.Space, 0, 4096, func(_ []byte, err error) {
			if err == nil && cl.MountedOn(rep.Space) != victim {
				if !recovered {
					recovered = true
					say("client IO restored after %s (paper: 5.8s)",
						(c.Sched.Now() - crashAt).Truncate(10*time.Millisecond))
				}
				return
			}
			c.Sched.After(200*time.Millisecond, probe)
		})
	}
	probe()
	c.Settle(30 * time.Second)
	for _, h := range c.Fabric.Hosts() {
		say("  host %s: %d disks attached", h, c.DiskCountOn(h))
	}
}

// runFleet boots the sharded fleet control plane, loads it through a
// client router, kills a whole deploy unit, and narrates the background
// schedulers draining it onto the survivors.
func runFleet(units, shards, engineWorkers int, seed int64) {
	if units < 3*shards {
		// Each shard's Paxos group wants three distinct units to live on.
		units = 3 * shards
		if units < 8 {
			units = 8
		}
		fmt.Printf("(bumping -units to %d so every shard group spans three units)\n", units)
	}
	f := fleet.New(fleet.Config{Units: units, Shards: shards, Seed: seed,
		EngineWorkers: engineWorkers})
	say := func(format string, args ...any) {
		fmt.Printf("[t=%8s] %s\n", f.Sched.Now().Truncate(time.Millisecond), fmt.Sprintf(format, args...))
	}
	say("booting fleet: %d units (%d disks, %d racks), %d metadata shards",
		units, f.Topo.NumDisks, f.Cfg.Racks, shards)
	f.Settle(30 * time.Second)
	for k := 0; k < shards; k++ {
		m := f.Leader(k)
		if m == nil {
			fmt.Fprintf(os.Stderr, "shard %d has no leader after boot\n", k)
			os.Exit(1)
		}
		say("  shard %d leader elected: %s", k, m.Name())
	}

	r := f.NewRouter("demo")
	const nVols = 8
	var firstDisks []string
	for i := 0; i < nVols; i++ {
		vol := fmt.Sprintf("vol-%02d", i)
		r.Allocate(vol, 1<<30, "archive", func(disks []string, err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "allocate %s: %v\n", vol, err)
				os.Exit(1)
			}
			if firstDisks == nil {
				firstDisks = disks
			}
		})
		f.Settle(5 * time.Second)
	}
	say("allocated %d volumes, 3 fragments each, spread across units", nVols)
	say("  vol-00 fragments: %s", strings.Join(firstDisks, " "))

	const victim = "u000"
	say("killing unit %s: machine isolated, its shard replicas crash", victim)
	killAt := f.Sched.Now()
	f.KillUnit(victim)
	drained := false
	for waited := time.Duration(0); waited < 30*time.Minute; waited += 30 * time.Second {
		f.Settle(30 * time.Second)
		if f.Drained(victim) {
			drained = true
			break
		}
	}
	if !drained {
		fmt.Fprintf(os.Stderr, "unit %s not drained within 30m\n", victim)
		os.Exit(1)
	}
	say("unit %s drained in %s: schedulers re-replicated every fragment onto survivors",
		victim, (f.Sched.Now() - killAt).Truncate(time.Second))

	r2 := f.NewRouter("verify")
	var after []string
	r2.Lookup("vol-00", func(disks []string, _ int64, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "lookup vol-00: %v\n", err)
			os.Exit(1)
		}
		after = disks
	})
	f.Settle(10 * time.Second)
	say("  vol-00 fragments now: %s", strings.Join(after, " "))

	for _, err := range []error{f.ValidateSpread(), f.ValidateShardMap(), f.ValidateCapacity()} {
		if err != nil {
			fmt.Fprintf(os.Stderr, "invariant violated: %v\n", err)
			os.Exit(1)
		}
	}
	say("invariants held: fragment spread, shard-map consistency, capacity ledger")
}

// runSwitch performs a deliberate topology command on a whole co-moving
// group.
func runSwitch(c *ustore.Cluster, say func(string, ...any)) {
	m := c.ActiveMaster()
	groups := c.Fabric.CoMovingGroups()
	group := groups[0]
	src := m.DiskHost(string(group[0]))
	var dst string
	for _, h := range c.Fabric.Hosts() {
		if h != src {
			dst = h
			break
		}
	}
	say("commanding: move group %v from %s to %s", group, src, dst)
	cmd := core.ExecuteArgs{Force: true}
	for _, d := range group {
		cmd.Pairs = append(cmd.Pairs, fabric.DiskHost{Disk: d, Host: dst})
	}
	start := c.Sched.Now()
	m.ExecuteTopology(cmd, func(err error) {
		if err != nil {
			say("controller error: %v", err)
			return
		}
		say("controller verified the move in %s", (c.Sched.Now() - start).Truncate(10*time.Millisecond))
	})
	c.Settle(20 * time.Second)
	for _, h := range c.Fabric.Hosts() {
		say("  host %s: %d disks attached", h, c.DiskCountOn(h))
	}
}

// runPowersave shows the adaptive spin-down policy at work.
func runPowersave(c *ustore.Cluster, say func(string, ...any)) {
	say("note: run with cfg.SpinDownIdle via examples/powersave for the full demo")
	spun := 0
	for _, d := range c.Disks {
		d.SpinDown()
		spun++
	}
	c.Settle(time.Second)
	say("spun down %d idle disks; unit power drops to the Table V powered-off regime", spun)
}
