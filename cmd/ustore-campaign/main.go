// Command ustore-campaign compiles a declarative experiment spec
// (YAML/JSON: topology, workload mix, fault schedule, failure model,
// protection policies) and sweeps its parameter grid across the
// simulation engines, reusing cached cell results keyed by content hash.
//
//	ustore-campaign -spec examples/experiments.yaml            # EXPERIMENTS.md in one command
//	ustore-campaign -spec examples/durability.yaml             # durability-vs-cost grid
//	ustore-campaign -spec s.yaml -cache .cache -workers 8      # parallel, cached
//	ustore-campaign -spec s.yaml -force                        # re-execute, refresh cache
//	ustore-campaign -spec s.yaml -out report.txt               # write the merged report
//
// The report is byte-deterministic: same spec file, same bytes, at any
// -workers count and whether cells executed or replayed from cache (the
// hit/miss tally goes to stderr, never into the report). A cell's cache
// key is the sha256 of its decoded, defaulted spec, so reformatting the
// file or reordering keys never invalidates a result, while changing any
// value that reaches the simulation always does.
//
// Exit status 1 means at least one cell reported an invariant violation
// or a failed fidelity check.
package main

import (
	"flag"
	"fmt"
	"os"

	"ustore/internal/campaign"
	"ustore/internal/spec"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		specPath = flag.String("spec", "", "experiment spec file (YAML or JSON; required)")
		cacheDir = flag.String("cache", ".campaign-cache", "cell result cache directory (\"\" disables caching)")
		workers  = flag.Int("workers", 0, "cell worker pool size (<1 = one per CPU; reports are byte-identical at any count)")
		force    = flag.Bool("force", false, "re-execute every cell even on a cache hit (entries are refreshed)")
		outPath  = flag.String("out", "", "write the merged campaign report to this file (default stdout)")
		cellsOut = flag.Bool("cells", false, "list the expanded grid cells and their content hashes, then exit")
	)
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "ustore-campaign: -spec is required (see examples/)")
		return 2
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ustore-campaign: %v\n", err)
		return 2
	}
	f, err := spec.Parse(data, *specPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ustore-campaign: %v\n", err)
		return 2
	}
	if *cellsOut {
		cells, err := f.Cells()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ustore-campaign: %v\n", err)
			return 2
		}
		for _, c := range cells {
			id := c.ID
			if id == "" {
				id = "(single cell)"
			}
			fmt.Printf("%3d  %s  %s\n", c.Index, c.Hash[:12], id)
		}
		return 0
	}

	res, err := campaign.Run(f, campaign.Options{CacheDir: *cacheDir, Workers: *workers, Force: *force})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ustore-campaign: %v\n", err)
		return 2
	}
	// Cache traffic is observability, not a result: stderr only, so the
	// report bytes are identical between a computed and a replayed run.
	fmt.Fprintf(os.Stderr, "ustore-campaign: %d cells: %d executed, %d cache hits\n",
		len(res.Cells), res.Miss, res.Hits)

	text := res.Text()
	if *outPath == "" {
		fmt.Print(text)
	} else if err := os.WriteFile(*outPath, []byte(text), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ustore-campaign: writing report: %v\n", err)
		return 2
	}
	if res.Violations() > 0 {
		return 1
	}
	return 0
}
