// Command ustore-chaos runs the deterministic chaos harness against a
// simulated UStore cluster and reports invariant violations.
//
//	ustore-chaos -seed 7 -days 100          # seeded all-fault soak
//	ustore-chaos -seed 7 -days 2 -log       # print the event log
//	ustore-chaos -seeds 8 -parallel 4       # sweep seeds 1..8 on 4 workers
//	ustore-chaos -no-checksums -minimize    # shrink a violating schedule
//	ustore-chaos -stale-lease -minimize     # model checker catches a seeded bug
//	ustore-chaos -gray -mitigation          # fail-slow faults + the mitigation stack
//	ustore-chaos -gray                      # same faults, unmitigated (tail comparison)
//	ustore-chaos -gray -mitigation -quarantine-blind -minimize  # quarantine checker demo
//	ustore-chaos -metrics-out m.json -trace-out t.json
//	ustore-chaos -days 30 -cpuprofile cpu.out
//	ustore-chaos -fleet -units 8 -shards 2 -unit-loss   # fleet-scale unit-loss run
//	ustore-chaos -fleet -units 48 -fleet-bench 1,4,16   # shard-scaling throughput sweep
//	ustore-chaos -fleet -units 64 -engine-workers 8     # fleet on the parallel engine
//	ustore-chaos -fleet -units 64 -shards 8 -crashes 3 -partitions 2 -moves 2
//	                                                    # fleet chaos: crash/partition/
//	                                                    # mid-migration fault schedule
//	ustore-chaos -fleet -shards 4 -crashes 2 -moves 2 -skip-redrive -minimize
//	                                                    # plant the skipped-redrive bug,
//	                                                    # shrink to the violating prefix
//	ustore-chaos -spec scenario.yaml                    # one declarative spec-file run
//
// -seeds N runs N consecutive seeds starting at -seed; -parallel P spreads
// independent runs over P workers (<1 = one per CPU). Every run is its own
// deterministic simulation, so the per-seed reports are byte-identical at
// any worker count, and -minimize speculatively probes bisection prefixes
// in parallel while committing the exact sequential search path. With
// -seeds > 1, -metrics-out / -trace-out write one file per seed (the seed
// number is inserted before the extension).
//
// -metrics-out writes the run's metrics registry as JSON (or Prometheus
// text with a .prom suffix); -trace-out writes a Chrome trace_event file
// loadable in chrome://tracing or https://ui.perfetto.dev. -cpuprofile /
// -memprofile write runtime/pprof profiles like go test's flags of the
// same names.
//
// Exit status 1 means at least one invariant was violated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ustore/internal/campaign"
	"ustore/internal/chaos"
	"ustore/internal/obs"
	"ustore/internal/prof"
	"ustore/internal/spec"
)

// writeMetrics dumps the registry to path: Prometheus text for .prom files,
// JSON otherwise.
func writeMetrics(rec *obs.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".prom") {
		return rec.Registry().WritePrometheus(f)
	}
	return rec.Registry().WriteJSON(f)
}

func writeTrace(rec *obs.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rec.Tracer().WriteChromeTrace(f)
}

// seedPath inserts ".seed<n>" before path's extension, so a sweep's
// per-seed outputs don't clobber each other: m.json -> m.seed7.json.
func seedPath(path string, seed int64) string {
	if i := strings.LastIndexByte(path, '.'); i > strings.LastIndexByte(path, '/') {
		return fmt.Sprintf("%s.seed%d%s", path[:i], seed, path[i:])
	}
	return fmt.Sprintf("%s.seed%d", path, seed)
}

// mixHeader renders the run header: the effective fault mix and injected
// bugs, so a pasted report is self-describing (a gray run with mitigation
// off reads very differently from one with it on).
func mixHeader(o chaos.Options, seeds int) string {
	var fams []string
	add := func(on bool, name string) {
		if on {
			fams = append(fams, name)
		}
	}
	add(o.HostCrashes, "host-crashes")
	add(o.DiskFaults, "disk-faults")
	add(o.HubFaults, "hub-faults")
	add(o.NetFaults, "net-faults")
	add(o.Corruptions, "corruptions")
	add(o.GrayFaults, "gray-faults")
	if len(fams) == 0 {
		fams = append(fams, "none")
	}
	var mods []string
	add2 := func(on bool, name string) {
		if on {
			mods = append(mods, name)
		}
	}
	add2(o.Mitigation, "mitigation")
	add2(o.DisableChecksums, "no-checksums")
	add2(o.InjectStaleLease, "stale-lease")
	add2(o.InjectQuarantineBlind, "quarantine-blind")
	add2(o.Tenants, "tenants")
	add2(o.Storm, "storm")
	add2(o.Protect, "protect")
	h := fmt.Sprintf("ustore-chaos: seed %d", o.Seed)
	if seeds > 1 {
		h = fmt.Sprintf("ustore-chaos: seeds %d..%d", o.Seed, o.Seed+int64(seeds)-1)
	}
	h += fmt.Sprintf(", %.3g days, faults: %s", o.Duration.Hours()/24, strings.Join(fams, " "))
	if len(mods) > 0 {
		h += ", " + strings.Join(mods, " ")
	}
	return h
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		specPath    = flag.String("spec", "", "run one experiment spec file (YAML/JSON, no grid) instead of flag-built options; grids belong to ustore-campaign")
		seed        = flag.Int64("seed", 1, "schedule + simulation seed (first seed of a sweep)")
		seeds       = flag.Int("seeds", 1, "number of consecutive seeds to run")
		parallel    = flag.Int("parallel", 1, "workers for a seed sweep or -minimize probing (<1 = one per CPU)")
		days        = flag.Float64("days", 2, "fault-phase length in simulated days")
		noChecksums = flag.Bool("no-checksums", false, "disable per-block CRCs (silent corruption reaches clients)")
		staleLease  = flag.Bool("stale-lease", false, "inject the stale-lease failover bug (model-checker demo; pairs with -minimize)")
		gray        = flag.Bool("gray", false, "inject gray faults: fail-slow disks, USB link flaps/downgrades, host brownouts")
		mitigation  = flag.Bool("mitigation", false, "enable the detect-quarantine-hedge mitigation stack (usually with -gray)")
		quarBlind   = flag.Bool("quarantine-blind", false, "make the allocator ignore quarantine (invariant-checker demo; needs -mitigation)")
		fleetMode   = flag.Bool("fleet", false, "run the fleet-scale harness (sharded metadata control plane) instead of a fault schedule")
		units       = flag.Int("units", 8, "fleet mode: deploy units (64 disks each at defaults)")
		shards      = flag.Int("shards", 1, "fleet mode: metadata shards")
		unitLoss    = flag.Bool("unit-loss", false, "fleet mode: kill unit u000 after the load phase and require the repair schedulers to drain it")
		engWorkers  = flag.Int("engine-workers", 0, "fleet mode: run on the parallel conservative engine with this many workers (0 = classic single-threaded scheduler; results are byte-identical at any count >= 1)")
		crashes     = flag.Int("crashes", 0, "fleet mode: shard-replica crash/restart cycles in the fault schedule")
		partitions  = flag.Int("partitions", 0, "fleet mode: inter-unit partition (or leader-isolation) windows in the fault schedule")
		moves       = flag.Int("moves", 0, "fleet mode: schedule-driven slot migrations; the first is straddled by a source-leader crash (needs -shards >= 2)")
		faultWindow = flag.Duration("fault-window", 0, "fleet mode: fault phase length (default 2m when any fault knob is set)")
		skipRedrive = flag.Bool("skip-redrive", false, "fleet mode: plant the skipped-ledger-re-drive recovery bug (model-checker demo; pairs with -minimize)")
		fleetBench  = flag.String("fleet-bench", "", "fleet mode: comma-separated shard counts to measure allocation throughput for (e.g. 1,4,16)")
		benchOut    = flag.String("bench-out", "", "fleet mode: write the -fleet-bench JSON to this file (default stdout)")
		tenants     = flag.Bool("tenants", false, "run the multi-tenant traffic engine instead of a fault schedule (per-class SLO report)")
		storm       = flag.Bool("storm", false, "add the restore-storm waves to a -tenants run")
		protect     = flag.Bool("protect", false, "arm the admission/throttle/autoscale protection stack in a -tenants run")
		streamQuant = flag.Bool("stream-quantiles", false, "tenants mode: O(1)-memory P² streaming percentile estimators in the SLO report (percentiles approximate, counts and max exact)")
		sloOut      = flag.String("slo-out", "", "write the -tenants run's SLO report to this file")
		minimize    = flag.Bool("minimize", false, "on violation, bisect the schedule to the shortest violating prefix")
		showLog     = flag.Bool("log", false, "print the full event log")
		showSched   = flag.Bool("schedule", false, "print the generated fault schedule")
		metricsOut  = flag.String("metrics-out", "", "write end-of-run metrics to this file (JSON, or Prometheus text if it ends in .prom)")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace_event JSON file for chrome://tracing")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *specPath != "" {
		return runSpec(*specPath, *showSched, *showLog)
	}
	if *days <= 0 {
		fmt.Fprintln(os.Stderr, "ustore-chaos: -days must be positive")
		return 2
	}
	if *seeds < 1 {
		fmt.Fprintln(os.Stderr, "ustore-chaos: -seeds must be >= 1")
		return 2
	}
	// Only genuinely incompatible combinations are rejected. In particular
	// -stale-lease composes fine with -seeds: every seed of a sweep is an
	// independent deterministic run, so the injected bug simply rides along
	// in each of them.
	if *seeds > 1 && *minimize {
		fmt.Fprintln(os.Stderr, "ustore-chaos: -minimize works on a single seed (drop -seeds)")
		return 2
	}
	if *quarBlind && !*mitigation {
		fmt.Fprintln(os.Stderr, "ustore-chaos: -quarantine-blind needs -mitigation (without quarantine there is no allocator exclusion to ignore)")
		return 2
	}
	// Fleet-mode flag dependencies: the fleet harness replaces both the
	// fault schedule and the traffic engine, so its shaping flags need
	// -fleet and -fleet can't combine with the other run modes.
	if !*fleetMode {
		for _, dep := range []struct {
			set  bool
			name string
		}{{*unitLoss, "-unit-loss"}, {*fleetBench != "", "-fleet-bench"}, {*benchOut != "", "-bench-out"},
			{*engWorkers != 0, "-engine-workers"}, {*crashes != 0, "-crashes"},
			{*partitions != 0, "-partitions"}, {*moves != 0, "-moves"},
			{*faultWindow != 0, "-fault-window"}, {*skipRedrive, "-skip-redrive"}} {
			if dep.set {
				fmt.Fprintf(os.Stderr, "ustore-chaos: %s needs -fleet (it shapes the fleet run)\n", dep.name)
				return 2
			}
		}
	} else {
		// -minimize composes with -fleet: it bisects the fleet fault
		// schedule instead of the cluster one.
		for _, bad := range []struct {
			set  bool
			name string
		}{{*tenants, "-tenants"}, {*gray, "-gray"}, {*mitigation, "-mitigation"},
			{*staleLease, "-stale-lease"},
			{*quarBlind, "-quarantine-blind"}, {*noChecksums, "-no-checksums"},
			{*traceOut != "", "-trace-out"}} {
			if bad.set {
				fmt.Fprintf(os.Stderr, "ustore-chaos: %s cannot combine with -fleet\n", bad.name)
				return 2
			}
		}
	}

	// Traffic-mode flag dependencies: -storm/-protect/-slo-out shape a
	// tenant traffic run, and traffic mode replaces the fault schedule, so
	// it cannot combine with the fault-run-only modes.
	if !*tenants {
		for _, dep := range []struct {
			set  bool
			name string
		}{{*storm, "-storm"}, {*protect, "-protect"}, {*sloOut != "", "-slo-out"},
			{*streamQuant, "-stream-quantiles"}} {
			if dep.set {
				fmt.Fprintf(os.Stderr, "ustore-chaos: %s needs -tenants (it shapes the traffic run)\n", dep.name)
				return 2
			}
		}
	} else {
		for _, bad := range []struct {
			set  bool
			name string
		}{{*gray, "-gray"}, {*mitigation, "-mitigation"}, {*minimize, "-minimize"},
			{*staleLease, "-stale-lease"}, {*quarBlind, "-quarantine-blind"},
			{*noChecksums, "-no-checksums"}} {
			if bad.set {
				fmt.Fprintf(os.Stderr, "ustore-chaos: %s is a fault-run mode and cannot combine with -tenants\n", bad.name)
				return 2
			}
		}
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ustore-chaos: %v\n", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "ustore-chaos: %v\n", err)
		}
	}()

	if *fleetMode {
		base := chaos.FleetOptions{
			Seed: *seed, Units: *units, Shards: *shards, UnitLoss: *unitLoss,
			EngineWorkers: *engWorkers, ReplicaCrashes: *crashes,
			Partitions: *partitions, SlotMoves: *moves, FaultWindow: *faultWindow,
			InjectSkipRedrive: *skipRedrive,
		}
		return runFleetMode(base, *seeds, *parallel, *minimize,
			*fleetBench, *benchOut, *showLog, *metricsOut)
	}

	o := chaos.DefaultOptions(*seed, time.Duration(float64(24*time.Hour)*(*days)))
	o.DisableChecksums = *noChecksums
	o.InjectStaleLease = *staleLease
	o.GrayFaults = *gray
	o.Mitigation = *mitigation
	o.InjectQuarantineBlind = *quarBlind
	o.Tenants = *tenants
	o.Storm = *storm
	o.Protect = *protect
	o.StreamQuantiles = *streamQuant
	if *tenants {
		// Traffic mode replaces the fault schedule entirely.
		o.HostCrashes, o.DiskFaults, o.HubFaults, o.NetFaults, o.Corruptions = false, false, false, false, false
	}
	fmt.Println(mixHeader(o, *seeds))
	wantRec := *metricsOut != "" || *traceOut != ""

	if *seeds > 1 {
		return runSweep(o, *seeds, *parallel, wantRec, *metricsOut, *traceOut, *showSched, *showLog, *sloOut)
	}

	var rec *obs.Recorder
	if wantRec {
		rec = obs.NewRecorder()
		o.Recorder = rec
	}

	var rep *chaos.Report
	if *minimize {
		var sched []chaos.Fault
		var min *chaos.Report
		sched, min, rep, err = chaos.MinimizeParallel(o, *parallel)
		if err == nil && min != nil {
			fmt.Printf("minimized schedule: %d of %d faults still violate\n", len(sched), len(rep.Schedule))
			for _, f := range sched {
				fmt.Printf("  %-14v %s\n", f.At, f)
			}
			rep = min
		}
	} else {
		rep, err = chaos.Run(o)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ustore-chaos: %v\n", err)
		return 2
	}
	if *metricsOut != "" {
		if werr := writeMetrics(rec, *metricsOut); werr != nil {
			fmt.Fprintf(os.Stderr, "ustore-chaos: writing metrics: %v\n", werr)
			return 2
		}
	}
	if *traceOut != "" {
		if werr := writeTrace(rec, *traceOut); werr != nil {
			fmt.Fprintf(os.Stderr, "ustore-chaos: writing trace: %v\n", werr)
			return 2
		}
	}

	if *sloOut != "" {
		if werr := writeSLO(rep, *sloOut); werr != nil {
			fmt.Fprintf(os.Stderr, "ustore-chaos: writing SLO report: %v\n", werr)
			return 2
		}
	}

	if *showSched {
		for _, f := range rep.Schedule {
			fmt.Printf("  %-14v %s\n", f.At, f)
		}
	}
	if *showLog {
		fmt.Println(rep.LogText())
	}
	fmt.Print(rep.SummaryText())
	if len(rep.Violations) > 0 {
		return 1
	}
	return 0
}

// runSpec executes one spec-file cell through the campaign compiler: the
// declarative path to exactly the run the flags would build. Grids are
// ustore-campaign's job — a gridded spec is rejected here so the two
// tools don't grow divergent sweep semantics.
func runSpec(path string, showSched, showLog bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ustore-chaos: %v\n", err)
		return 2
	}
	f, err := spec.Parse(data, path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ustore-chaos: %v\n", err)
		return 2
	}
	if len(f.Axes) > 0 {
		fmt.Fprintf(os.Stderr, "ustore-chaos: %s has a parameter grid; run it with ustore-campaign -spec %s\n", path, path)
		return 2
	}
	s := f.Spec
	switch s.Mode {
	case "faults", "traffic":
		o := campaign.CompileChaos(s)
		fmt.Println(mixHeader(o, 1))
		rep, err := chaos.Run(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ustore-chaos: %v\n", err)
			return 2
		}
		if showSched {
			for _, fa := range rep.Schedule {
				fmt.Printf("  %-14v %s\n", fa.At, fa)
			}
		}
		if showLog {
			fmt.Println(rep.LogText())
		}
		fmt.Print(rep.SummaryText())
		if len(rep.Violations) > 0 {
			return 1
		}
		return 0
	case "fleet":
		o := campaign.CompileFleet(s)
		fmt.Printf("ustore-chaos: fleet seed %d, %d units, %d shards, unit-loss=%v, engine-workers=%d\n",
			o.Seed, o.Units, o.Shards, o.UnitLoss, o.EngineWorkers)
		rep, err := chaos.RunFleet(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ustore-chaos: %v\n", err)
			return 2
		}
		if showLog {
			fmt.Println(rep.LogText())
		}
		fmt.Print(rep.SummaryText())
		if len(rep.Violations) > 0 {
			return 1
		}
		return 0
	default:
		fmt.Fprintf(os.Stderr, "ustore-chaos: spec mode %q runs under ustore-campaign, not ustore-chaos\n", s.Mode)
		return 2
	}
}

// runFleetMode executes the fleet-scale harness: a bench sweep when
// -fleet-bench is set, a schedule-minimizing run under -minimize, otherwise
// one run per seed.
func runFleetMode(base chaos.FleetOptions, seeds, parallel int, minimize bool,
	benchList, benchOut string, showLog bool, metricsOut string) int {
	if benchList != "" {
		return runFleetBench(base.Seed, base.Units, base.EngineWorkers, benchList, benchOut)
	}
	header := fmt.Sprintf("ustore-chaos: fleet seed %d", base.Seed)
	if seeds > 1 {
		header = fmt.Sprintf("ustore-chaos: fleet seeds %d..%d", base.Seed, base.Seed+int64(seeds)-1)
	}
	fmt.Printf("%s, %d units, %d shards, unit-loss=%v, engine-workers=%d\n",
		header, base.Units, base.Shards, base.UnitLoss, base.EngineWorkers)
	if base.ReplicaCrashes > 0 || base.Partitions > 0 || base.SlotMoves > 0 {
		fmt.Printf("fleet faults: %d crashes, %d partitions, %d slot moves, skip-redrive=%v\n",
			base.ReplicaCrashes, base.Partitions, base.SlotMoves, base.InjectSkipRedrive)
	}

	if minimize {
		return runFleetMinimize(base, parallel, showLog)
	}

	var reps []*chaos.FleetReport
	if seeds > 1 {
		var err error
		reps, err = chaos.FleetSweep(base, seeds, parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ustore-chaos: %v\n", err)
			return 2
		}
	} else {
		var rec *obs.Recorder
		if metricsOut != "" {
			rec = obs.NewRecorder()
			base.Recorder = rec
		}
		rep, err := chaos.RunFleet(base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ustore-chaos: %v\n", err)
			return 2
		}
		if metricsOut != "" {
			if werr := writeMetrics(rec, metricsOut); werr != nil {
				fmt.Fprintf(os.Stderr, "ustore-chaos: writing metrics: %v\n", werr)
				return 2
			}
		}
		reps = []*chaos.FleetReport{rep}
	}

	violated := false
	for _, rep := range reps {
		if showLog {
			fmt.Println(rep.LogText())
		}
		fmt.Print(rep.SummaryText())
		if len(rep.Violations) > 0 {
			violated = true
		}
	}
	if violated {
		return 1
	}
	return 0
}

// runFleetMinimize runs the seeded fleet fault schedule and, on violation,
// bisects (with parallel speculative probes) for the shortest schedule
// prefix that still violates, then prints the surviving faults — the
// normal first step when a fleet chaos run goes red.
func runFleetMinimize(base chaos.FleetOptions, parallel int, showLog bool) int {
	sched, min, full, err := chaos.MinimizeFleet(base, parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ustore-chaos: %v\n", err)
		return 2
	}
	if min == nil {
		if showLog {
			fmt.Println(full.LogText())
		}
		fmt.Print(full.SummaryText())
		return 0
	}
	fmt.Printf("minimized fleet schedule: %d of %d faults still violate\n",
		len(sched), full.FaultsApplied)
	for _, ft := range sched {
		fmt.Printf("  %s\n", ft)
	}
	if showLog {
		fmt.Println(min.LogText())
	}
	fmt.Print(min.SummaryText())
	return 1
}

// runFleetBench measures allocation throughput at each shard count in
// benchList (comma-separated) on a fixed fleet, emitting a JSON document to
// benchOut (stdout when empty). Offered load scales with capacity: 8
// saturating closed-loop clients per shard.
func runFleetBench(seed int64, units, engineWorkers int, benchList, benchOut string) int {
	const (
		warmup = 3 * time.Second
		window = 6 * time.Second
	)
	type point struct {
		Shards       int     `json:"shards"`
		Clients      int     `json:"clients"`
		AllocsPerSec float64 `json:"allocs_per_sec"`
		Speedup      float64 `json:"speedup_vs_1_shard"`
	}
	doc := struct {
		Bench     string  `json:"bench"`
		Seed      int64   `json:"seed"`
		Units     int     `json:"units"`
		WarmupSec float64 `json:"warmup_sec"`
		WindowSec float64 `json:"window_sec"`
		Points    []point `json:"points"`
	}{Bench: "fleet-alloc-shard-scaling", Seed: seed, Units: units,
		WarmupSec: warmup.Seconds(), WindowSec: window.Seconds()}
	for _, fld := range strings.Split(benchList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(fld))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "ustore-chaos: bad -fleet-bench shard count %q\n", fld)
			return 2
		}
		v, err := chaos.MeasureFleetAlloc(chaos.FleetOptions{
			Seed:          seed,
			Units:         units,
			Shards:        n,
			Clients:       8 * n,
			VolumeSize:    8 << 20,
			EngineWorkers: engineWorkers,
		}, warmup, window)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ustore-chaos: fleet bench %d shards: %v\n", n, err)
			return 2
		}
		p := point{Shards: n, Clients: 8 * n, AllocsPerSec: v, Speedup: 1}
		if len(doc.Points) > 0 {
			p.Speedup = v / doc.Points[0].AllocsPerSec
		}
		doc.Points = append(doc.Points, p)
		fmt.Fprintf(os.Stderr, "ustore-chaos: fleet bench %2d shards: %.0f allocs/sec\n", n, v)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ustore-chaos: %v\n", err)
		return 2
	}
	out = append(out, '\n')
	if benchOut == "" {
		fmt.Print(string(out))
		return 0
	}
	if err := os.WriteFile(benchOut, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ustore-chaos: writing bench: %v\n", err)
		return 2
	}
	return 0
}

// writeSLO writes a traffic run's SLO report text to path.
func writeSLO(rep *chaos.Report, path string) error {
	if rep.SLO == nil {
		return fmt.Errorf("run produced no SLO report")
	}
	return os.WriteFile(path, []byte(rep.SLO.Text()), 0o644)
}

// runSweep executes a multi-seed sweep and prints each seed's summary in
// seed order. Exit status 1 if any seed violated an invariant.
func runSweep(base chaos.Options, seeds, parallel int, wantRec bool, metricsOut, traceOut string, showSched, showLog bool, sloOut string) int {
	var recs map[int64]*obs.Recorder
	var recFor func(seed int64) *obs.Recorder
	if wantRec {
		recs = make(map[int64]*obs.Recorder, seeds)
		for s := base.Seed; s < base.Seed+int64(seeds); s++ {
			recs[s] = obs.NewRecorder()
		}
		recFor = func(seed int64) *obs.Recorder { return recs[seed] }
	}

	reps, err := chaos.Sweep(base, seeds, parallel, recFor)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ustore-chaos: %v\n", err)
		return 2
	}

	violated := false
	for _, rep := range reps {
		if metricsOut != "" {
			if werr := writeMetrics(recs[rep.Seed], seedPath(metricsOut, rep.Seed)); werr != nil {
				fmt.Fprintf(os.Stderr, "ustore-chaos: writing metrics: %v\n", werr)
				return 2
			}
		}
		if traceOut != "" {
			if werr := writeTrace(recs[rep.Seed], seedPath(traceOut, rep.Seed)); werr != nil {
				fmt.Fprintf(os.Stderr, "ustore-chaos: writing trace: %v\n", werr)
				return 2
			}
		}
		if sloOut != "" {
			if werr := writeSLO(rep, seedPath(sloOut, rep.Seed)); werr != nil {
				fmt.Fprintf(os.Stderr, "ustore-chaos: writing SLO report: %v\n", werr)
				return 2
			}
		}
		if showSched {
			for _, f := range rep.Schedule {
				fmt.Printf("  %-14v %s\n", f.At, f)
			}
		}
		if showLog {
			fmt.Println(rep.LogText())
		}
		fmt.Print(rep.SummaryText())
		if len(rep.Violations) > 0 {
			violated = true
		}
	}
	if violated {
		return 1
	}
	return 0
}
