// Command ustore-chaos runs the deterministic chaos harness against a
// simulated UStore cluster and reports invariant violations.
//
//	ustore-chaos -seed 7 -days 100          # seeded all-fault soak
//	ustore-chaos -seed 7 -days 2 -log       # print the event log
//	ustore-chaos -no-checksums -minimize    # shrink a violating schedule
//	ustore-chaos -metrics-out m.json -trace-out t.json
//
// -metrics-out writes the run's metrics registry as JSON (or Prometheus
// text with a .prom suffix); -trace-out writes a Chrome trace_event file
// loadable in chrome://tracing or https://ui.perfetto.dev.
//
// Exit status 1 means at least one invariant was violated.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ustore/internal/chaos"
	"ustore/internal/obs"
)

// writeMetrics dumps the registry to path: Prometheus text for .prom files,
// JSON otherwise.
func writeMetrics(rec *obs.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".prom") {
		return rec.Registry().WritePrometheus(f)
	}
	return rec.Registry().WriteJSON(f)
}

func writeTrace(rec *obs.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rec.Tracer().WriteChromeTrace(f)
}

func main() {
	var (
		seed        = flag.Int64("seed", 1, "schedule + simulation seed")
		days        = flag.Float64("days", 2, "fault-phase length in simulated days")
		noChecksums = flag.Bool("no-checksums", false, "disable per-block CRCs (silent corruption reaches clients)")
		minimize    = flag.Bool("minimize", false, "on violation, bisect the schedule to the shortest violating prefix")
		showLog     = flag.Bool("log", false, "print the full event log")
		showSched   = flag.Bool("schedule", false, "print the generated fault schedule")
		metricsOut  = flag.String("metrics-out", "", "write end-of-run metrics to this file (JSON, or Prometheus text if it ends in .prom)")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace_event JSON file for chrome://tracing")
	)
	flag.Parse()
	if *days <= 0 {
		fmt.Fprintln(os.Stderr, "ustore-chaos: -days must be positive")
		os.Exit(2)
	}

	o := chaos.DefaultOptions(*seed, time.Duration(float64(24*time.Hour)*(*days)))
	o.DisableChecksums = *noChecksums
	var rec *obs.Recorder
	if *metricsOut != "" || *traceOut != "" {
		rec = obs.NewRecorder()
		o.Recorder = rec
	}

	var rep *chaos.Report
	var err error
	if *minimize {
		var sched []chaos.Fault
		var min *chaos.Report
		sched, min, rep, err = chaos.Minimize(o)
		if err == nil && min != nil {
			fmt.Printf("minimized schedule: %d of %d faults still violate\n", len(sched), len(rep.Schedule))
			for _, f := range sched {
				fmt.Printf("  %-14v %s\n", f.At, f)
			}
			rep = min
		}
	} else {
		rep, err = chaos.Run(o)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ustore-chaos: %v\n", err)
		os.Exit(2)
	}
	if *metricsOut != "" {
		if werr := writeMetrics(rec, *metricsOut); werr != nil {
			fmt.Fprintf(os.Stderr, "ustore-chaos: writing metrics: %v\n", werr)
			os.Exit(2)
		}
	}
	if *traceOut != "" {
		if werr := writeTrace(rec, *traceOut); werr != nil {
			fmt.Fprintf(os.Stderr, "ustore-chaos: writing trace: %v\n", werr)
			os.Exit(2)
		}
	}

	if *showSched {
		for _, f := range rep.Schedule {
			fmt.Printf("  %-14v %s\n", f.At, f)
		}
	}
	if *showLog {
		fmt.Println(rep.LogText())
	}
	s := rep.Stats
	fmt.Printf("seed %d, %.3g days: %d faults applied\n", rep.Seed, *days, s.FaultsApplied)
	fmt.Printf("  writes   %d acked, %d failed; %d remounts\n", s.WritesAcked, s.WritesFailed, s.Remounts)
	fmt.Printf("  audits   %d reads, %d checksum detections, %d repairs\n", s.AuditReads, s.CorruptionsDetected, s.Repairs)
	fmt.Printf("  scrubber %d scanned, %d bad, %d repaired, %d unrepaired\n", s.ScrubScanned, s.ScrubBad, s.ScrubRepaired, s.ScrubUnrepaired)
	if len(rep.Violations) == 0 {
		fmt.Println("  invariants: all held")
		return
	}
	fmt.Printf("  INVARIANT VIOLATIONS (%d):\n", len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Println("   ", v)
	}
	os.Exit(1)
}
