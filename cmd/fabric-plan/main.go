// Command fabric-plan is a deploy-unit designer: given a disk count, host
// count, and hub fan-in, it builds both Figure 2 topologies, prints their
// bills of materials, interconnect cost, bandwidth envelope, and the fault
// domains a single component failure takes out.
//
// Usage:
//
//	fabric-plan -disks 64 -hosts 4 -fanin 4
//	fabric-plan -disks 64 -hosts 4 -fanin 4 -design full-trees
package main

import (
	"flag"
	"fmt"
	"os"

	"ustore/internal/disk"
	"ustore/internal/fabric"
	"ustore/internal/usb"
	"ustore/internal/workload"
)

func main() {
	disks := flag.Int("disks", 64, "disks in the unit")
	hosts := flag.Int("hosts", 4, "hosts of the unit")
	fanIn := flag.Int("fanin", 4, "hub fan-in factor")
	design := flag.String("design", "both", "switch-high | full-trees | both")
	flag.Parse()

	cfg := fabric.Config{FanIn: *fanIn, Disks: *disks}
	for i := 1; i <= *hosts; i++ {
		cfg.Hosts = append(cfg.Hosts, fmt.Sprintf("h%d", i))
	}

	show := func(name string, build func(fabric.Config) (*fabric.Fabric, error)) {
		f, err := build(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			return
		}
		b := f.BOM()
		fmt.Printf("== %s ==\n", name)
		fmt.Printf("  components: %d hubs, %d 2:1 switches, %d SATA-USB bridges\n",
			b.Hubs, b.Switches, b.Bridges)
		icCost := float64(b.Hubs+b.Switches+b.Bridges) * 1.0 * 2.0
		fmt.Printf("  interconnect silicon: $%.0f (BOM x2), $%.2f per disk\n",
			icCost, icCost/float64(b.Disks))

		// Largest co-moving group = switching granularity.
		maxGroup := 0
		for _, g := range f.CoMovingGroups() {
			if len(g) > maxGroup {
				maxGroup = len(g)
			}
		}
		fmt.Printf("  switching granularity: %d disk(s) move together\n", maxGroup)

		// Per-host device count vs the Intel 14-device quirk.
		maxDevices := 0
		for _, h := range f.Hosts() {
			if n := len(f.VisibleTree(h)); n > maxDevices {
				maxDevices = n
			}
		}
		warn := ""
		if maxDevices > usb.IntelRootHubDeviceLimit {
			warn = fmt.Sprintf("  (exceeds the Intel %d-device quirk; balanced ok, degenerate configs will not enumerate)",
				usb.IntelRootHubDeviceLimit)
		}
		fmt.Printf("  devices per host tree (balanced): %d%s\n", maxDevices, warn)

		// Bandwidth envelope: per-host aggregate for the 4MB sequential
		// read workload at the balanced attachment.
		perHost := float64(*disks) / float64(*hosts)
		spec := workload.Spec{Size: 4 << 20, ReadPct: 100, Pattern: disk.Sequential}
		r, w := spec.StandaloneRate(disk.DT01ACA300(), disk.AttachFabric)
		demand := (r + w) * perHost
		cap := usb.RootPortBytesPerSec
		agg := demand
		if agg > cap {
			agg = cap
		}
		fmt.Printf("  per-host 4M-SR envelope: %.0f MB/s (demand %.0f, root port cap %.0f)\n",
			agg/1e6, demand/1e6, float64(cap)/1e6)
		fmt.Printf("  unit duplex ceiling: %.0f MB/s across %d hosts\n",
			2*float64(cap)*float64(*hosts)*0.9/1e6, *hosts)

		// Fault domains: what a single leaf-hub failure costs.
		worst := 0
		for _, hub := range f.Hubs() {
			n := 0
			for _, d := range f.Disks() {
				path, err := f.PathToRoot(d)
				if err != nil {
					continue
				}
				for _, id := range path {
					if id == hub {
						n++
					}
				}
			}
			if n > worst {
				worst = n
			}
		}
		fmt.Printf("  worst single-hub fault domain: %d disks (until switched around or repaired)\n\n", worst)
	}

	switch *design {
	case "switch-high":
		show("switch-high (Fig.2 right)", fabric.BuildSwitchHigh)
	case "full-trees":
		show("full trees (Fig.2 left)", fabric.BuildFullTrees)
	case "both":
		show("switch-high (Fig.2 right)", fabric.BuildSwitchHigh)
		show("full trees (Fig.2 left)", fabric.BuildFullTrees)
	default:
		fmt.Fprintf(os.Stderr, "unknown design %q\n", *design)
		os.Exit(2)
	}
}
