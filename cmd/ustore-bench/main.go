// Command ustore-bench regenerates the paper's evaluation: every table and
// figure (§VI-§VII) plus the ablation studies, printed as aligned text
// tables with the paper's numbers alongside for comparison.
//
// Usage:
//
//	ustore-bench                 # all tables and figures
//	ustore-bench -quick          # skip the slow switching/failover runs
//	ustore-bench -exp fig6       # one experiment by ID
//	ustore-bench -ablate         # the design-choice ablations
//	ustore-bench -list           # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"ustore/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "skip slow experiments (fig6, failover, hdfs)")
	exp := flag.String("exp", "", "run a single experiment by ID")
	ablate := flag.Bool("ablate", false, "run the ablation studies instead")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	runners := map[string]func() *bench.Table{
		"table1":   bench.TableI,
		"table2":   bench.TableII,
		"fig5":     bench.Figure5,
		"duplex":   bench.DuplexHeadline,
		"fig6":     bench.Figure6,
		"failover": bench.Failover,
		"hdfs":     bench.HDFSSwitch,
		"table3":   bench.TableIII,
		"table4":   bench.TableIV,
		"table5":   bench.TableV,

		"ablate-topology":     bench.AblateTopology,
		"ablate-fanin":        bench.AblateFanIn,
		"ablate-singletree":   bench.AblateSingleTree,
		"ablate-heartbeat":    bench.AblateHeartbeat,
		"ablate-spindown":     bench.AblateSpinDown,
		"ablate-rebuild":      bench.AblateRebuild,
		"ablate-availability": bench.AblateAvailability,
		"ablate-powercurve":   bench.AblatePowerCurve,
	}

	if *list {
		for _, id := range []string{"table1", "table2", "fig5", "duplex", "fig6", "failover", "hdfs",
			"table3", "table4", "table5", "ablate-topology", "ablate-fanin",
			"ablate-singletree", "ablate-heartbeat", "ablate-spindown", "ablate-rebuild",
			"ablate-availability", "ablate-powercurve"} {
			fmt.Println(id)
		}
		return
	}

	if *exp != "" {
		run, ok := runners[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		fmt.Print(run().Render())
		return
	}

	if *ablate {
		for _, t := range bench.Ablations() {
			fmt.Print(t.Render())
			fmt.Println()
		}
		return
	}

	for _, t := range bench.All(*quick) {
		fmt.Print(t.Render())
		fmt.Println()
	}
}
