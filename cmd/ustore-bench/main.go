// Command ustore-bench regenerates the paper's evaluation: every table and
// figure (§VI-§VII) plus the ablation studies, printed as aligned text
// tables with the paper's numbers alongside for comparison.
//
// Usage:
//
//	ustore-bench                 # all tables and figures
//	ustore-bench -quick          # skip the slow switching/failover runs
//	ustore-bench -exp fig6       # one experiment by ID
//	ustore-bench -ablate         # the design-choice ablations
//	ustore-bench -list           # list experiment IDs
//	ustore-bench -exp failover -trials 10 -parallel 4
//	ustore-bench -exp failover -metrics-out m.json -trace-out t.json
//	ustore-bench -exp hdfs -latency
//	ustore-bench -cpuprofile cpu.out -memprofile mem.out
//
// -trials sets the failover trial count; -parallel runs the multi-run
// experiments (fig6 points, failover trials) on that many workers — every
// run is an independent deterministic simulation, so the tables are
// byte-identical at any worker count. -metrics-out writes the metrics
// collected by the simulated experiments as JSON (or Prometheus text with
// a .prom suffix); -trace-out writes a Chrome trace_event file for
// chrome://tracing. Only the cluster-driving experiments (fig6, failover,
// hdfs) feed the recorder, and only when running sequentially (-parallel 1):
// one recorder cannot serve concurrent clusters. -cpuprofile / -memprofile
// write runtime/pprof profiles like go test's flags of the same names.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ustore/internal/bench"
	"ustore/internal/obs"
	"ustore/internal/prof"
)

// writeMetrics dumps the registry to path: Prometheus text for .prom files,
// JSON otherwise.
func writeMetrics(rec *obs.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".prom") {
		return rec.Registry().WritePrometheus(f)
	}
	return rec.Registry().WriteJSON(f)
}

// printLatencySummary renders p50/p99/p999 for every histogram the
// cluster-driving experiments recorded, via the registry's
// bucket-interpolated quantile extraction (error bounds are documented on
// obs.Histogram.Quantile: exact at bucket boundaries, otherwise within the
// bucket's width). Series order follows the registry snapshot, so the
// table is byte-stable for a given run.
func printLatencySummary(rec *obs.Recorder) {
	snap := rec.Registry().Snapshot()
	fmt.Println("latency quantiles (bucket-interpolated seconds histograms):")
	fmt.Printf("  %-52s %9s %11s %11s %11s\n", "series", "count", "p50", "p99", "p999")
	rows := 0
	for _, s := range snap.Metrics {
		if s.Type != "histogram" || s.Count == 0 {
			continue
		}
		name := strings.TrimPrefix(s.Name, s.Component+"_")
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		labels := make([]obs.Label, 0, len(keys))
		suffix := ""
		for i, k := range keys {
			labels = append(labels, obs.L(k, s.Labels[k]))
			if i == 0 {
				suffix = "{"
			} else {
				suffix += ","
			}
			suffix += k + "=" + s.Labels[k]
		}
		if suffix != "" {
			suffix += "}"
		}
		h := rec.Histogram(s.Component, name, labels...)
		q := func(p float64) string {
			return fmt.Sprintf("%.2fms", float64(h.QuantileDuration(p))/float64(time.Millisecond))
		}
		fmt.Printf("  %-52s %9d %11s %11s %11s\n", s.Name+suffix, s.Count, q(0.50), q(0.99), q(0.999))
		rows++
	}
	if rows == 0 {
		fmt.Println("  (no histogram samples recorded — only fig6, failover, and hdfs feed the recorder)")
	}
}

func writeTrace(rec *obs.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rec.Tracer().WriteChromeTrace(f)
}

func main() {
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "skip slow experiments (fig6, failover, hdfs)")
	exp := flag.String("exp", "", "run a single experiment by ID")
	ablate := flag.Bool("ablate", false, "run the ablation studies instead")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	trials := flag.Int("trials", bench.DefaultTrials, "failover trial count")
	parallel := flag.Int("parallel", 1, "workers for multi-run experiments (<1 = one per CPU)")
	latency := flag.Bool("latency", false, "print p50/p99/p999 for every recorded latency histogram after the tables")
	metricsOut := flag.String("metrics-out", "", "write collected metrics to this file (JSON, or Prometheus text if it ends in .prom)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON file for chrome://tracing")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ustore-bench: %v\n", err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "ustore-bench: %v\n", err)
		}
	}()

	var rec *obs.Recorder
	if *metricsOut != "" || *traceOut != "" || *latency {
		rec = obs.NewRecorder()
	}

	runners := map[string]func() *bench.Table{
		"table1":   bench.TableI,
		"table2":   bench.TableII,
		"fig5":     bench.Figure5,
		"duplex":   bench.DuplexHeadline,
		"fig6":     func() *bench.Table { return bench.Figure6(rec, *parallel) },
		"failover": func() *bench.Table { return bench.Failover(rec, *trials, *parallel) },
		"hdfs":     func() *bench.Table { return bench.HDFSSwitch(rec) },
		"table3":   bench.TableIII,
		"table4":   bench.TableIV,
		"table5":   bench.TableV,

		"ablate-topology":     bench.AblateTopology,
		"ablate-fanin":        bench.AblateFanIn,
		"ablate-singletree":   bench.AblateSingleTree,
		"ablate-heartbeat":    bench.AblateHeartbeat,
		"ablate-spindown":     bench.AblateSpinDown,
		"ablate-rebuild":      bench.AblateRebuild,
		"ablate-availability": bench.AblateAvailability,
		"ablate-powercurve":   bench.AblatePowerCurve,
	}

	if *list {
		for _, id := range []string{"table1", "table2", "fig5", "duplex", "fig6", "failover", "hdfs",
			"table3", "table4", "table5", "ablate-topology", "ablate-fanin",
			"ablate-singletree", "ablate-heartbeat", "ablate-spindown", "ablate-rebuild",
			"ablate-availability", "ablate-powercurve"} {
			fmt.Println(id)
		}
		return 0
	}

	switch {
	case *exp != "":
		run, ok := runners[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *exp)
			return 2
		}
		fmt.Print(run().Render())
	case *ablate:
		for _, t := range bench.Ablations() {
			fmt.Print(t.Render())
			fmt.Println()
		}
	default:
		for _, t := range bench.All(*quick, rec, *trials, *parallel) {
			fmt.Print(t.Render())
			fmt.Println()
		}
	}

	if *latency {
		printLatencySummary(rec)
	}
	if *metricsOut != "" {
		if err := writeMetrics(rec, *metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "ustore-bench: writing metrics: %v\n", err)
			return 2
		}
	}
	if *traceOut != "" {
		if err := writeTrace(rec, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "ustore-bench: writing trace: %v\n", err)
			return 2
		}
	}
	return 0
}
