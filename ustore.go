// Package ustore is the public API of the UStore reproduction: a low-cost
// cold and archival storage system that attaches large numbers of disks to
// existing datacenter servers through a reconfigurable USB 3.0 fat-tree
// interconnect fabric (Zhang, Dai, Li, Zhang — ICDCS 2015).
//
// The package wraps the internal simulation and system layers behind a
// small surface:
//
//   - NewCluster boots a complete deploy unit: simulated disks, the fat-tree
//     fabric with its dual-microcontroller control plane, per-host USB
//     controllers, the Paxos-replicated Master, primary/backup Controllers,
//     per-host EndPoints, and a virtual-time scheduler to drive it all.
//
//   - Cluster.Client returns a ClientLib: allocate space, mount it, and do
//     block IO that transparently survives host failures and disk switches.
//
//   - Experiment helpers (bench re-exports) regenerate every table and
//     figure of the paper's evaluation.
//
// Everything runs on a deterministic discrete-event scheduler: a "cluster
// second" is virtual time, so experiments that take minutes of wall-clock in
// the paper run in milliseconds here, bit-for-bit reproducibly.
package ustore

import (
	"time"

	"ustore/internal/core"
	"ustore/internal/disk"
	"ustore/internal/fabric"
)

// Re-exported core types. See the internal/core documentation for details.
type (
	// Config parameterizes a cluster (hosts, disks, fan-in, timing).
	Config = core.Config
	// Cluster is a complete simulated UStore deployment.
	Cluster = core.Cluster
	// ClientLib is the §IV-D client library.
	ClientLib = core.ClientLib
	// Master is one Master replica.
	Master = core.Master
	// SpaceID names allocated storage (</DeployUnit/Disk/Space>).
	SpaceID = core.SpaceID
	// AllocateReply describes a fresh allocation.
	AllocateReply = core.AllocateReply
	// LookupReply describes a space's current location.
	LookupReply = core.LookupReply
	// MountEvent notifies mounts and failover remounts.
	MountEvent = core.MountEvent
	// ExecuteArgs is an explicit topology command for the Controller.
	ExecuteArgs = core.ExecuteArgs
	// DiskHost is one "connect disk to host" pair.
	DiskHost = fabric.DiskHost
	// FabricConfig shapes the interconnect (hosts, disks, hub fan-in).
	FabricConfig = fabric.Config
	// DiskParams is the calibrated disk model.
	DiskParams = disk.Params
)

// DefaultConfig returns the paper's prototype: 16 disks, 4 hosts, 4-port
// hubs, switch-high fabric, 3 Master replicas.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewCluster builds and boots a cluster. Call Settle to let enumeration and
// elections complete (8 virtual seconds is comfortable).
func NewCluster(cfg Config) (*Cluster, error) { return core.NewCluster(cfg) }

// DT01ACA300 returns the calibrated parameters of the paper's TOSHIBA 3TB
// disks.
func DT01ACA300() DiskParams { return disk.DT01ACA300() }

// BootTime is a comfortable Settle duration for a fresh cluster: initial
// USB enumeration plus Paxos and Master elections.
const BootTime = 8 * time.Second
