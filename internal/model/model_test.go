package model

import (
	"strings"
	"testing"
	"time"
)

// opAt builds a completed op with an explicit window.
func opAt(k Kind, inv, ret time.Duration, mut func(*Op)) Op {
	op := Op{Kind: k, Client: "c", Invoke: inv, Return: ret, Done: true}
	if mut != nil {
		mut(&op)
	}
	return op
}

func noViolations(t *testing.T, ops []Op) Result {
	t.Helper()
	res := Check(ops)
	for _, v := range res.Violations {
		t.Errorf("unexpected violation in %s: %s", v.Partition, v.Msg)
	}
	if res.BudgetExceeded != 0 {
		t.Errorf("search budget exceeded on %d partitions", res.BudgetExceeded)
	}
	return res
}

func TestLegalLifecycleLinearizes(t *testing.T) {
	sp := func(o *Op) { o.Space = "sp1" }
	ops := []Op{
		opAt(OpAllocate, 0, 1*time.Second, func(o *Op) { o.Space = "sp1"; o.Disk = "d1"; o.Offset = 0; o.Size = 64 }),
		opAt(OpExport, 2*time.Second, 2*time.Second, func(o *Op) { o.Space = "sp1"; o.Host = "h1"; o.Client = "h1" }),
		opAt(OpMount, 3*time.Second, 4*time.Second, func(o *Op) { sp(o); o.Host = "h1" }),
		opAt(OpLookup, 5*time.Second, 6*time.Second, func(o *Op) { sp(o); o.Disk = "d1"; o.Offset = 0; o.Size = 64 }),
		// Failover: revoke at h1, export + remount at h2.
		opAt(OpRevoke, 7*time.Second, 7*time.Second, func(o *Op) { sp(o); o.Host = "h1"; o.Client = "h1" }),
		opAt(OpExport, 8*time.Second, 8*time.Second, func(o *Op) { sp(o); o.Host = "h2"; o.Client = "h2" }),
		opAt(OpRemount, 8500*time.Millisecond, 9*time.Second, func(o *Op) { sp(o); o.Host = "h2" }),
		opAt(OpRelease, 10*time.Second, 11*time.Second, sp),
	}
	res := noViolations(t, ops)
	if res.Ops != len(ops) || res.Partitions != 1 {
		t.Fatalf("res = %+v, want %d ops in 1 partition", res, len(ops))
	}
}

// A mount window that opens before the export point must still linearize:
// the checker picks the legal instant inside the window.
func TestMountWindowSpanningExportLinearizes(t *testing.T) {
	ops := []Op{
		opAt(OpAllocate, 0, 1*time.Second, func(o *Op) { o.Space = "sp1"; o.Disk = "d1"; o.Size = 64 }),
		opAt(OpMount, 1*time.Second, 5*time.Second, func(o *Op) { o.Space = "sp1"; o.Host = "h1" }),
		opAt(OpExport, 2*time.Second, 2*time.Second, func(o *Op) { o.Space = "sp1"; o.Host = "h1"; o.Client = "h1" }),
	}
	noViolations(t, ops)
}

func TestStaleLeaseDoubleServingRejected(t *testing.T) {
	ops := []Op{
		opAt(OpAllocate, 0, 1*time.Second, func(o *Op) { o.Space = "sp1"; o.Disk = "d1"; o.Size = 64 }),
		opAt(OpExport, 2*time.Second, 2*time.Second, func(o *Op) { o.Space = "sp1"; o.Host = "h1"; o.Client = "h1" }),
		// No revoke at h1: h2 exporting is double serving.
		opAt(OpExport, 5*time.Second, 5*time.Second, func(o *Op) { o.Space = "sp1"; o.Host = "h2"; o.Client = "h2" }),
	}
	res := Check(ops)
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %v, want exactly one", res.Violations)
	}
	if !strings.Contains(res.Violations[0].Msg, "still holds the lease") {
		t.Errorf("message %q does not explain the double lease", res.Violations[0].Msg)
	}
}

func TestStaleMountRejected(t *testing.T) {
	ops := []Op{
		opAt(OpAllocate, 0, 1*time.Second, func(o *Op) { o.Space = "sp1"; o.Disk = "d1"; o.Size = 64 }),
		opAt(OpExport, 2*time.Second, 2*time.Second, func(o *Op) { o.Space = "sp1"; o.Host = "h1"; o.Client = "h1" }),
		opAt(OpRevoke, 3*time.Second, 3*time.Second, func(o *Op) { o.Space = "sp1"; o.Host = "h1"; o.Client = "h1" }),
		opAt(OpExport, 4*time.Second, 4*time.Second, func(o *Op) { o.Space = "sp1"; o.Host = "h2"; o.Client = "h2" }),
		// Client mounts the *old* host strictly after the lease moved.
		opAt(OpMount, 5*time.Second, 6*time.Second, func(o *Op) { o.Space = "sp1"; o.Host = "h1" }),
	}
	res := Check(ops)
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %v, want exactly one", res.Violations)
	}
	if !strings.Contains(res.Violations[0].Msg, "stale-lease double-mount") {
		t.Errorf("message %q does not name the stale-lease double-mount", res.Violations[0].Msg)
	}
}

func TestLookupExtentMismatchRejected(t *testing.T) {
	ops := []Op{
		opAt(OpAllocate, 0, 1*time.Second, func(o *Op) { o.Space = "sp1"; o.Disk = "d1"; o.Offset = 0; o.Size = 64 }),
		opAt(OpLookup, 2*time.Second, 3*time.Second, func(o *Op) { o.Space = "sp1"; o.Disk = "d1"; o.Offset = 128; o.Size = 64 }),
	}
	if res := Check(ops); len(res.Violations) != 1 {
		t.Fatalf("violations = %v, want exactly one (extent mismatch)", res.Violations)
	}
}

func TestDoubleAttachRejected(t *testing.T) {
	disk := func(h string) func(*Op) {
		return func(o *Op) { o.Disk = "d1"; o.Host = h; o.Client = h }
	}
	ops := []Op{
		opAt(OpAttach, 1*time.Second, 1*time.Second, disk("h1")),
		opAt(OpAttach, 2*time.Second, 2*time.Second, disk("h2")),
	}
	if res := Check(ops); len(res.Violations) != 1 {
		t.Fatalf("violations = %v, want exactly one (double attach)", res.Violations)
	}
	ops = []Op{
		opAt(OpAttach, 1*time.Second, 1*time.Second, disk("h1")),
		opAt(OpDetach, 2*time.Second, 2*time.Second, disk("h1")),
		opAt(OpAttach, 3*time.Second, 3*time.Second, disk("h2")),
		opAt(OpPower, 4*time.Second, 4*time.Second, disk("h2")),
		opAt(OpDetach, 5*time.Second, 5*time.Second, disk("h2")),
	}
	noViolations(t, ops)
}

func TestPendingOpsDropped(t *testing.T) {
	pend := opAt(OpMount, 2*time.Second, 0, func(o *Op) { o.Space = "sp1"; o.Host = "h9" })
	pend.Done = false
	ops := []Op{
		opAt(OpAllocate, 0, 1*time.Second, func(o *Op) { o.Space = "sp1"; o.Disk = "d1"; o.Size = 64 }),
		pend,
	}
	res := noViolations(t, ops)
	if res.Ops != 1 {
		t.Fatalf("checked %d ops, want 1 (pending dropped)", res.Ops)
	}
}

// A partition with no Allocate (its reply was lost, or the space predates
// the history) is assumed allocated: exports and mounts must still obey the
// lease discipline but extent checks are skipped.
func TestPartitionWithoutAllocateAssumedAllocated(t *testing.T) {
	ops := []Op{
		opAt(OpExport, 1*time.Second, 1*time.Second, func(o *Op) { o.Space = "sp1"; o.Host = "h1"; o.Client = "h1" }),
		opAt(OpMount, 2*time.Second, 3*time.Second, func(o *Op) { o.Space = "sp1"; o.Host = "h1" }),
		opAt(OpLookup, 4*time.Second, 5*time.Second, func(o *Op) { o.Space = "sp1"; o.Disk = "dX"; o.Offset = 7; o.Size = 9 }),
	}
	noViolations(t, ops)
}

func TestDuplicateRevokeAndReExportLegal(t *testing.T) {
	sp := func(h string) func(*Op) {
		return func(o *Op) { o.Space = "sp1"; o.Host = h; o.Client = h }
	}
	ops := []Op{
		opAt(OpExport, 1*time.Second, 1*time.Second, sp("h1")),
		opAt(OpExport, 2*time.Second, 2*time.Second, sp("h1")), // duplicated RPC
		opAt(OpRevoke, 3*time.Second, 3*time.Second, sp("h1")),
		opAt(OpRevoke, 4*time.Second, 4*time.Second, sp("h1")), // duplicate revoke
		opAt(OpRevoke, 5*time.Second, 5*time.Second, sp("h2")), // revoke of a lease h2 never held
		opAt(OpExport, 6*time.Second, 6*time.Second, sp("h2")),
	}
	noViolations(t, ops)
}

func TestHistoryRecordingAndNilSafety(t *testing.T) {
	var nilH *History
	if tok := nilH.Invoke(Op{Kind: OpMount}); tok != -1 {
		t.Fatalf("nil Invoke token = %d, want -1", tok)
	}
	nilH.Return(-1, nil)
	nilH.Point(Op{Kind: OpExport})
	nilH.BindClock(nil)
	if nilH.Len() != 0 || nilH.Ops() != nil {
		t.Fatal("nil history should stay empty")
	}

	h := NewHistory()
	now := time.Duration(0)
	h.BindClock(func() time.Duration { return now })
	now = 5 * time.Second
	tok := h.Invoke(Op{Kind: OpMount, Client: "c", Space: "sp1"})
	now = 7 * time.Second
	h.Point(Op{Kind: OpExport, Space: "sp1", Host: "h1", Client: "h1"})
	now = 9 * time.Second
	h.Return(tok, func(op *Op) { op.Host = "h1" })
	ops := h.Ops()
	if len(ops) != 2 {
		t.Fatalf("got %d ops, want 2", len(ops))
	}
	m := ops[0]
	if m.Invoke != 5*time.Second || m.Return != 9*time.Second || !m.Done || m.Host != "h1" {
		t.Fatalf("mount op = %+v, want stamped window and filled host", m)
	}
	e := ops[1]
	if e.Invoke != 7*time.Second || e.Return != 7*time.Second || !e.Done {
		t.Fatalf("export op = %+v, want zero-width done window", e)
	}
	noViolations(t, ops)
}

// Violations across partitions come out in sorted partition order so chaos
// reports are deterministic.
func TestViolationOrderDeterministic(t *testing.T) {
	bad := func(spc string) []Op {
		return []Op{
			opAt(OpExport, 1*time.Second, 1*time.Second, func(o *Op) { o.Space = spc; o.Host = "h1"; o.Client = "h1" }),
			opAt(OpExport, 2*time.Second, 2*time.Second, func(o *Op) { o.Space = spc; o.Host = "h2"; o.Client = "h2" }),
		}
	}
	ops := append(bad("zz"), bad("aa")...)
	res := Check(ops)
	if len(res.Violations) != 2 {
		t.Fatalf("violations = %v, want two", res.Violations)
	}
	if res.Violations[0].Partition != "space aa" || res.Violations[1].Partition != "space zz" {
		t.Fatalf("violation order %v not sorted", []string{res.Violations[0].Partition, res.Violations[1].Partition})
	}
}
