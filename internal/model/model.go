// Package model is an abstract reference model of UStore's metadata state:
// which spaces are allocated (and where), which host currently serves each
// space (the export "lease"), which host each disk is attached to, and the
// client-visible power commands. A History records every Master / ClientLib /
// EndPoint metadata operation during a run, stamped with simulated time, and
// Check verifies the recorded history *linearizes* against this model — a
// porcupine-style search (Wing & Gong) partitioned per space and per disk.
//
// The model deliberately distinguishes two op shapes:
//
//   - Client operations (Allocate, Release, Lookup, Mount, Remount) have a
//     real [invoke, return] window: the simulated time the ClientLib issued
//     the call and the time its callback delivered a successful result. The
//     checker may linearize the op at any instant inside the window.
//   - Endpoint transitions (Export, Revoke, Attach, Detach, Power) are point
//     events: they happen atomically inside one scheduler callback, so their
//     window is zero-width. This is what keeps the search tractable — only
//     client windows overlap anything.
//
// The central safety property is the single-serving-host lease: a space's
// disk is physically attached to exactly one host, so at any instant at most
// one EndPoint may export (serve) the space, and a client mount must observe
// the host that actually holds that lease. A master that lets a client mount
// a host whose lease was already revoked — the classic stale-lease
// double-mount — produces a history with no valid linearization, which Check
// reports as a violation.
package model

import (
	"fmt"
	"strings"

	"ustore/internal/simtime"
)

// Kind classifies one recorded metadata operation.
type Kind uint8

// Operation kinds. The first five are client operations with real
// [invoke, return] windows; the rest are endpoint-side point events.
const (
	// OpAllocate is a successful ClientLib.Allocate: the reply's space,
	// disk, offset, and size are recorded as outputs.
	OpAllocate Kind = iota + 1
	// OpRelease is a successful ClientLib.Release.
	OpRelease
	// OpLookup is a successful directory lookup; the returned extent is
	// checked against the allocation (the returned host is advisory — the
	// master legally answers before the 600ms export setup completes).
	OpLookup
	// OpMount is a successful initial mount; Host is the host the client
	// logged in to.
	OpMount
	// OpRemount is a successful transparent failover remount.
	OpRemount
	// OpExport marks the instant an EndPoint's block target began serving a
	// space (the host acquired the space's lease).
	OpExport
	// OpRevoke marks the instant an export was revoked (unexport, or the
	// serving disk detached).
	OpRevoke
	// OpAttach marks a disk enumerating on a host.
	OpAttach
	// OpDetach marks a disk disappearing from a host.
	OpDetach
	// OpPower marks an EndPoint executing a client spin-up/down command.
	OpPower
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case OpAllocate:
		return "allocate"
	case OpRelease:
		return "release"
	case OpLookup:
		return "lookup"
	case OpMount:
		return "mount"
	case OpRemount:
		return "remount"
	case OpExport:
		return "export"
	case OpRevoke:
		return "revoke"
	case OpAttach:
		return "attach"
	case OpDetach:
		return "detach"
	case OpPower:
		return "power"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Op is one recorded operation. Client ops carry the issuing client's name;
// point events carry the acting host in both Client and Host. Offset/Size
// are the extent outputs of Allocate and Lookup; Up is the direction of a
// power command.
type Op struct {
	ID     int
	Kind   Kind
	Client string
	Space  string
	Disk   string
	Host   string
	Offset int64
	Size   int64
	Up     bool
	Invoke simtime.Time
	Return simtime.Time
	// Done is false for ops whose return never arrived before the history
	// was checked; such ops observed nothing and are dropped.
	Done bool
}

// String renders the op for violation messages.
func (o Op) String() string {
	var args []string
	if o.Space != "" {
		args = append(args, "space="+o.Space)
	}
	if o.Disk != "" {
		args = append(args, "disk="+o.Disk)
	}
	if o.Host != "" {
		args = append(args, "host="+o.Host)
	}
	if o.Kind == OpPower {
		args = append(args, fmt.Sprintf("up=%t", o.Up))
	}
	w := fmt.Sprintf("@%v", o.Invoke)
	if o.Return != o.Invoke {
		w = fmt.Sprintf("[%v..%v]", o.Invoke, o.Return)
	}
	return fmt.Sprintf("%s(%s) by %s %s", o.Kind, strings.Join(args, ","), o.Client, w)
}

// state is one partition's abstract state; apply returns the successor state
// or a non-empty reason the op is illegal here. States are small value types
// so the search can branch without copying trouble.
type state interface {
	apply(op *Op) (state, string)
	key() string
}

// spaceState models one space: its allocation lifecycle, the recorded
// extent, and the host currently holding the export lease. A partition with
// no recorded Allocate op (the op raced the end of the run, or the space
// predates the history) starts allocated with unknown geometry.
type spaceState struct {
	allocated bool
	released  bool
	disk      string
	offset    int64
	size      int64
	server    string // host holding the export lease; "" = none
}

func (s spaceState) apply(op *Op) (state, string) {
	switch op.Kind {
	case OpAllocate:
		if s.allocated || s.released {
			return s, "space already allocated"
		}
		s.allocated = true
		s.disk, s.offset, s.size = op.Disk, op.Offset, op.Size
		return s, ""
	case OpRelease:
		if !s.allocated {
			return s, "release of unallocated space"
		}
		s.allocated = false
		s.released = true
		return s, ""
	case OpLookup:
		if !s.allocated {
			return s, "lookup of unallocated space"
		}
		if s.disk != "" && op.Disk != "" &&
			(op.Disk != s.disk || op.Offset != s.offset || op.Size != s.size) {
			return s, fmt.Sprintf("lookup returned extent %s+%d/%d but the allocation is %s+%d/%d",
				op.Disk, op.Offset, op.Size, s.disk, s.offset, s.size)
		}
		return s, ""
	case OpMount, OpRemount:
		if !s.allocated {
			return s, "mount of unallocated space"
		}
		if s.server != op.Host {
			if s.server == "" {
				return s, fmt.Sprintf("client mounted %s but no host holds the lease", op.Host)
			}
			return s, fmt.Sprintf("client mounted %s but %s holds the lease (stale-lease double-mount)", op.Host, s.server)
		}
		return s, ""
	case OpExport:
		if !s.allocated {
			return s, "export of unallocated space"
		}
		if s.server != "" && s.server != op.Host {
			return s, fmt.Sprintf("export at %s while %s still holds the lease (double serving)", op.Host, s.server)
		}
		s.server = op.Host
		return s, ""
	case OpRevoke:
		// Revoking a lease the host does not hold is a legal no-op (a
		// duplicate unexport, or an unexport racing a detach-revoke).
		if s.server == op.Host {
			s.server = ""
		}
		return s, ""
	}
	return s, "op kind not valid for a space partition"
}

func (s spaceState) key() string {
	return fmt.Sprintf("a%t r%t %s", s.allocated, s.released, s.server)
}

// diskState models one disk's fabric binding: the host it is enumerated on.
// The fabric physically attaches a disk to at most one host, so a second
// host attaching before the first detached is a binding violation.
type diskState struct {
	attached string
}

func (s diskState) apply(op *Op) (state, string) {
	switch op.Kind {
	case OpAttach:
		if s.attached != "" && s.attached != op.Host {
			return s, fmt.Sprintf("attach at %s while still attached to %s", op.Host, s.attached)
		}
		s.attached = op.Host
		return s, ""
	case OpDetach:
		if s.attached != op.Host {
			return s, fmt.Sprintf("detach at %s but disk is attached to %q", op.Host, s.attached)
		}
		s.attached = ""
		return s, ""
	case OpPower:
		if s.attached != op.Host {
			return s, fmt.Sprintf("power command executed on %s but disk is attached to %q", op.Host, s.attached)
		}
		return s, ""
	}
	return s, "op kind not valid for a disk partition"
}

func (s diskState) key() string { return s.attached }
