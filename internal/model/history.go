package model

import (
	"sync"

	"ustore/internal/simtime"
)

// History accumulates the operations of one run. Every method is safe on a
// nil *History (a no-op), so instrumented components need no enable checks —
// the same pattern as obs.Recorder. A History is owned by exactly one run
// (the chaos harness builds a fresh one per harness), so minimizer probe
// runs and sweep workers can never pollute a parent run's history.
//
// The mutex exists for the parallel sweep/minimize paths where several
// independent schedulers run on different goroutines; within one run all
// recording happens on the scheduler goroutine.
type History struct {
	mu    sync.Mutex
	clock func() simtime.Time
	ops   []Op
}

// NewHistory returns an empty history. Bind the run's simulated clock with
// BindClock before recording.
func NewHistory() *History { return &History{} }

// BindClock points the history at the run's simulated clock; until then
// stamps read zero.
func (h *History) BindClock(clock func() simtime.Time) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.clock = clock
	h.mu.Unlock()
}

func (h *History) now() simtime.Time {
	if h.clock != nil {
		return h.clock()
	}
	return 0
}

// Invoke records the start of a windowed client operation and returns a
// token for Return. On a nil history it returns -1, which Return ignores.
func (h *History) Invoke(op Op) int {
	if h == nil {
		return -1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	op.ID = len(h.ops)
	op.Invoke = h.now()
	h.ops = append(h.ops, op)
	return op.ID
}

// Return completes a windowed operation: it stamps the return time, marks
// the op done, and lets fill record the op's outputs (reply fields). Calls
// with a negative token (from a nil-history Invoke) are no-ops. Operations
// that failed should simply never be Returned — a client op that errored
// observed nothing, and the checker drops pending ops.
func (h *History) Return(token int, fill func(op *Op)) {
	if h == nil || token < 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	op := &h.ops[token]
	op.Return = h.now()
	op.Done = true
	if fill != nil {
		fill(op)
	}
}

// Point records an atomic (zero-width-window) endpoint transition at the
// current simulated time.
func (h *History) Point(op Op) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	op.ID = len(h.ops)
	op.Invoke = h.now()
	op.Return = op.Invoke
	op.Done = true
	h.ops = append(h.ops, op)
}

// Ops returns a snapshot of every recorded op, pending ones included.
func (h *History) Ops() []Op {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Op(nil), h.ops...)
}

// Len reports how many ops have been recorded.
func (h *History) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.ops)
}
