package model

import (
	"fmt"
	"sort"
)

// VolumeLedger is the fleet-level reference model of volume existence: it
// records every client-ACKNOWLEDGED allocation and release, independent of
// any shard's internal state. After a chaos run heals and settles, the
// ledger is checked against what the shard leaders actually hold — the
// no-lost-no-duplicated-volume property the per-shard capacity and map
// invariants cannot see, because each shard's books can balance perfectly
// while a botched migration stranded or forked a volume between them.
//
// Only acknowledged operations enter the ledger. An allocation whose reply
// was lost to a fault may or may not have committed; holding the fleet to
// account for it would false-positive, so such volumes are simply outside
// the model (the capacity invariant still covers their bytes).
type VolumeLedger struct {
	live map[string]bool
}

// NewVolumeLedger returns an empty ledger.
func NewVolumeLedger() *VolumeLedger {
	return &VolumeLedger{live: make(map[string]bool)}
}

// Alloc records a client-acknowledged allocation.
func (l *VolumeLedger) Alloc(volume string) { l.live[volume] = true }

// Release records a client-acknowledged release.
func (l *VolumeLedger) Release(volume string) { delete(l.live, volume) }

// Live returns the sorted set of volumes the model says must exist.
func (l *VolumeLedger) Live() []string {
	out := make([]string, 0, len(l.live))
	for v := range l.live {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Len is the number of live volumes.
func (l *VolumeLedger) Len() int { return len(l.live) }

// Check compares the fleet's observed state against the ledger. holders
// maps each volume ID to the shards whose leaders hold a live record for
// it; ownerOf returns the shard the authoritative map routes a volume to.
// It returns one violation string per defect, sorted by volume:
//
//   - lost: a live volume no shard holds (a migration dropped records, or
//     a re-drive was skipped after a fault)
//   - duplicated: a live volume held by more than one shard (an install
//     acknowledged without its drop, forking ownership)
//   - misplaced: a live volume held only by shards the map does not route
//     it to (clients can never reach it — operationally lost even though
//     the bytes exist)
//
// Volumes held by shards but absent from the ledger are NOT flagged: an
// unacknowledged-but-committed allocation legitimately leaves a record the
// model never saw.
func (l *VolumeLedger) Check(holders map[string][]int, ownerOf func(volume string) int) []string {
	var out []string
	for _, v := range l.Live() {
		hs := holders[v]
		switch {
		case len(hs) == 0:
			out = append(out, fmt.Sprintf("volume %s lost: acknowledged but no shard holds it", v))
		case len(hs) > 1:
			out = append(out, fmt.Sprintf("volume %s duplicated: held by shards %v", v, hs))
		default:
			if owner := ownerOf(v); hs[0] != owner {
				out = append(out, fmt.Sprintf(
					"volume %s misplaced: held by shard %d but the map routes it to shard %d",
					v, hs[0], owner))
			}
		}
	}
	return out
}
