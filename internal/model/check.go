package model

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// SearchBudget caps the number of DFS nodes the per-partition
// linearizability search may expand. Real chaos histories are almost
// sequential (only client windows overlap anything), so the search visits
// about one node per op; the cap exists to bound adversarial
// interleavings. A partition that exhausts it is reported as inconclusive,
// not violating.
const SearchBudget = 1 << 20

// Violation is one partition whose history admits no linearization.
type Violation struct {
	// Partition names the space or disk ("space <id>" / "disk <id>").
	Partition string
	// Msg explains the deepest point the search got stuck, quoting the ops
	// that could not be linearized and why the model rejected them.
	Msg string
}

// Result summarizes one Check call.
type Result struct {
	// Ops is the number of completed operations checked (pending ops are
	// dropped — they observed nothing).
	Ops int
	// Partitions is how many per-space / per-disk histories were searched.
	Partitions int
	// Violations lists the partitions with no valid linearization, in
	// partition order.
	Violations []Violation
	// BudgetExceeded counts partitions whose search hit SearchBudget
	// (inconclusive; not counted as violations).
	BudgetExceeded int
}

// Check partitions the history per space and per disk and searches each
// partition for a linearization accepted by the reference model. Space
// partitions hold Allocate/Release/Lookup/Mount/Remount/Export/Revoke;
// disk partitions hold Attach/Detach/Power. Partitioning is sound because
// the model couples no state across spaces or disks.
func Check(ops []Op) Result {
	parts := make(map[string][]*Op)
	var res Result
	for i := range ops {
		op := &ops[i]
		if !op.Done {
			continue
		}
		var key string
		switch op.Kind {
		case OpAttach, OpDetach, OpPower:
			if op.Disk == "" {
				continue
			}
			key = "disk " + op.Disk
		default:
			if op.Space == "" {
				continue
			}
			key = "space " + op.Space
		}
		parts[key] = append(parts[key], op)
		res.Ops++
	}
	keys := make([]string, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	res.Partitions = len(keys)
	for _, key := range keys {
		pops := parts[key]
		var init state
		if strings.HasPrefix(key, "disk ") {
			init = diskState{}
		} else {
			// A space partition with no recorded Allocate (the allocation
			// predates the history or its reply was lost) starts allocated
			// with unknown geometry, so extent checks are skipped but lease
			// tracking still applies.
			hasAlloc := false
			for _, op := range pops {
				if op.Kind == OpAllocate {
					hasAlloc = true
					break
				}
			}
			init = spaceState{allocated: !hasAlloc}
		}
		switch outcome, stuck := linearize(pops, init, SearchBudget); outcome {
		case searchBudget:
			res.BudgetExceeded++
		case searchFail:
			res.Violations = append(res.Violations, Violation{
				Partition: key,
				Msg:       fmt.Sprintf("no linearization: %s", strings.Join(stuck, "; ")),
			})
		}
	}
	return res
}

type searchOutcome int

const (
	searchOK searchOutcome = iota
	searchFail
	searchBudget
)

// linearize runs a Wing & Gong search over one partition: repeatedly pick a
// remaining op no other remaining op strictly precedes in real time (its
// invoke is at or before every remaining return) and try to apply it to the
// model, backtracking on rejection.
//
// The remaining set is represented as (lo, skipped): ops[lo:] is the
// untouched suffix of the invoke-sorted ops, and skipped holds the few
// earlier ops the search jumped over. Chaos histories are almost
// sequential, so skipped stays tiny (the window-overlap degree) and each
// node costs O(overlap) instead of O(n) — that difference is what lets
// 100-day soak histories with tens of thousands of lookups check in
// milliseconds. Visited (state, lo, skipped) nodes are memoized. On failure
// it returns the rejection reasons collected at the deepest prefix the
// search reached — the ops that actually could not be placed — capped at
// three.
func linearize(ops []*Op, init state, budget int) (searchOutcome, []string) {
	sorted := append([]*Op(nil), ops...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Invoke != sorted[j].Invoke {
			return sorted[i].Invoke < sorted[j].Invoke
		}
		return sorted[i].ID < sorted[j].ID
	})
	n := len(sorted)
	// suffixMinRet[i] = min Return over sorted[i:].
	suffixMinRet := make([]int64, n+1)
	suffixMinRet[n] = int64(^uint64(0) >> 1)
	for i := n - 1; i >= 0; i-- {
		suffixMinRet[i] = suffixMinRet[i+1]
		if r := int64(sorted[i].Return); r < suffixMinRet[i] {
			suffixMinRet[i] = r
		}
	}
	s := &search{
		ops:       sorted,
		suffixMin: suffixMinRet,
		visited:   make(map[string]bool),
		budget:    budget,
		bestDepth: -1,
	}
	out := s.dfs(init, nil, 0, 0)
	if out == searchOK || out == searchBudget {
		return out, nil
	}
	stuck := s.bestStuck
	if len(stuck) > 3 {
		stuck = stuck[:3]
	}
	if len(stuck) == 0 {
		stuck = []string{"empty candidate set (ops overlap inconsistently)"}
	}
	return searchFail, stuck
}

type search struct {
	ops       []*Op
	suffixMin []int64
	visited   map[string]bool
	nodes     int
	budget    int
	bestDepth int
	bestStuck []string
}

// dfs linearizes the remaining ops — skipped (sorted indices < lo) plus the
// suffix ops[lo:] — from state st. depth counts committed ops.
func (s *search) dfs(st state, skipped []int, lo, depth int) searchOutcome {
	n := len(s.ops)
	if len(skipped) == 0 && lo >= n {
		return searchOK
	}
	s.nodes++
	if s.nodes > s.budget {
		return searchBudget
	}
	memo := s.memoKey(st, skipped, lo)
	if s.visited[memo] {
		return searchFail
	}
	s.visited[memo] = true

	// An op may linearize next only if no other remaining op finished
	// entirely before it was invoked.
	minRet := s.suffixMin[lo]
	for _, i := range skipped {
		if r := int64(s.ops[i].Return); r < minRet {
			minRet = r
		}
	}
	// Candidates in invoke order: the skipped ops (all earlier than lo),
	// then suffix ops whose invoke falls at or before minRet.
	for si, i := range skipped {
		if int64(s.ops[i].Invoke) > minRet {
			continue
		}
		next, reason := st.apply(s.ops[i])
		if reason != "" {
			s.noteStuck(depth, fmt.Sprintf("%s: %s", s.ops[i], reason))
			continue
		}
		rest := make([]int, 0, len(skipped)-1)
		rest = append(rest, skipped[:si]...)
		rest = append(rest, skipped[si+1:]...)
		if out := s.dfs(next, rest, lo, depth+1); out != searchFail {
			return out
		}
	}
	for i := lo; i < n && int64(s.ops[i].Invoke) <= minRet; i++ {
		next, reason := st.apply(s.ops[i])
		if reason != "" {
			s.noteStuck(depth, fmt.Sprintf("%s: %s", s.ops[i], reason))
			continue
		}
		rest := skipped
		if i > lo {
			rest = make([]int, 0, len(skipped)+i-lo)
			rest = append(rest, skipped...)
			for j := lo; j < i; j++ {
				rest = append(rest, j)
			}
		}
		if out := s.dfs(next, rest, i+1, depth+1); out != searchFail {
			return out
		}
	}
	return searchFail
}

func (s *search) memoKey(st state, skipped []int, lo int) string {
	var b strings.Builder
	b.WriteString(st.key())
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(lo))
	for _, i := range skipped {
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(i))
	}
	return b.String()
}

// noteStuck records rejection reasons at the deepest prefix reached, which
// is where the genuinely unplaceable op lives.
func (s *search) noteStuck(depth int, reason string) {
	if depth > s.bestDepth {
		s.bestDepth = depth
		s.bestStuck = s.bestStuck[:0]
	}
	if depth == s.bestDepth {
		for _, r := range s.bestStuck {
			if r == reason {
				return
			}
		}
		s.bestStuck = append(s.bestStuck, reason)
	}
}
