package simnet

import (
	"testing"
	"time"

	"ustore/internal/simtime"
)

func TestColocatedNodesAreLoopback(t *testing.T) {
	s := simtime.NewScheduler(1)
	n := New(s)
	n.Colocate("ep:h1", "h1")
	n.Colocate("blk:h1", "h1")
	n.SetLatency("ep:h1", "blk:h1", time.Second) // must be ignored
	var gotAt simtime.Time = -1
	n.Node("blk:h1").Handle(func(m Message) { gotAt = s.Now() })
	n.Node("ep:h1").Send("blk:h1", "io", 4<<20)
	s.Run()
	if gotAt != 0 {
		t.Fatalf("loopback delivery at %v, want 0", gotAt)
	}
	if n.Stats().Bytes != 0 {
		t.Fatalf("loopback counted %d network bytes", n.Stats().Bytes)
	}
}

func TestDifferentMachinesUseNetwork(t *testing.T) {
	s := simtime.NewScheduler(1)
	n := New(s)
	n.Colocate("a", "h1")
	n.Colocate("b", "h2")
	var gotAt simtime.Time = -1
	n.Node("b").Handle(func(m Message) { gotAt = s.Now() })
	n.Node("a").Send("b", "x", 1000)
	s.Run()
	if gotAt <= 0 {
		t.Fatalf("cross-machine delivery at %v, want network delay", gotAt)
	}
	if n.Stats().Bytes != 1000 {
		t.Fatalf("bytes = %d", n.Stats().Bytes)
	}
	if n.Machine("a") != "h1" || n.Machine("unassigned") != "" {
		t.Fatalf("Machine() wrong: %q %q", n.Machine("a"), n.Machine("unassigned"))
	}
}

func TestUnassignedNodeNotLocalToAssigned(t *testing.T) {
	s := simtime.NewScheduler(1)
	n := New(s)
	n.Colocate("a", "h1")
	// "b" is unassigned; must not be treated as local to anything.
	var gotAt simtime.Time = -1
	n.Node("b").Handle(func(m Message) { gotAt = s.Now() })
	n.Node("a").Send("b", "x", 0)
	s.Run()
	if gotAt <= 0 {
		t.Fatal("unassigned node treated as loopback")
	}
	// Two unassigned nodes are also remote to each other.
	gotAt = -1
	n.Node("c").Handle(func(m Message) { gotAt = s.Now() })
	n.Node("b").Send("c", "x", 0)
	s.Run()
	if gotAt <= 0 {
		t.Fatal("two unassigned nodes treated as loopback")
	}
}

func TestColocatedIgnoresLossAndCut(t *testing.T) {
	s := simtime.NewScheduler(1)
	n := New(s)
	n.Colocate("a", "h1")
	n.Colocate("b", "h1")
	n.SetLossRate("a", "b", 1.0)
	n.Cut("a", "b")
	got := 0
	n.Node("b").Handle(func(m Message) { got++ })
	n.Node("a").Send("b", "x", 0)
	s.Run()
	if got != 1 {
		t.Fatal("loopback affected by link loss/cut")
	}
}

func TestDupRateDeliversTwice(t *testing.T) {
	s := simtime.NewScheduler(3)
	n := New(s)
	n.SetDupRate("a", "b", 1.0)
	got := 0
	n.Node("b").Handle(func(m Message) { got++ })
	n.Node("a").Send("b", "x", 0)
	s.Run()
	if got != 2 {
		t.Fatalf("delivered %d times with dupRate 1, want 2", got)
	}
}

func TestDupRateValidation(t *testing.T) {
	s := simtime.NewScheduler(1)
	n := New(s)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for dup rate out of range")
		}
	}()
	n.SetDupRate("a", "b", -0.5)
}
