// Fabric: cross-partition message routing for the parallel engine.
//
// A Fabric stitches per-partition Networks — each running on one partition of
// a simtime.Engine — into a single address space. Sends whose destination is
// registered on another partition are forwarded through Engine.Post, stamped
// at send-time + cross-partition latency. That latency is the engine's
// lookahead source: the Fabric refuses (panics) any cross latency below the
// engine's declared lookahead, which is precisely the conservative-synchrony
// contract the engine's Post check enforces on the receiving side.
//
// The Fabric deliberately supports only the fault surface the fleet uses
// across deploy units: machine isolation (checked on the source side at send
// and on the destination side at delivery) and pairwise machine cuts
// (CutMachines/HealMachines, checked on the source side). Loss/dup dice,
// one-way cuts, and brownouts remain partition-local — cross-unit traffic in
// the fleet is unit-to-unit RPC whose failure modes are "the unit's uplink is
// gone" (isolation) and "these two units can't see each other" (a cut).
// Keeping the dice out of the cross path also keeps every partition's RNG
// stream untouched by other partitions' traffic, which the byte-determinism
// contract requires.
package simnet

import (
	"fmt"
	"time"

	"ustore/internal/simtime"
)

// Fabric routes messages between Networks living on different partitions of
// one simtime.Engine. Construct with NewFabric, then create each partition's
// Network with Fabric.Network.
//
// Topology mutations — node registration, Colocate, IsolateMachine — must
// happen at engine quiescence (between RunUntil windows); message forwarding
// itself is safe from any partition mid-window.
type Fabric struct {
	engine *simtime.Engine
	nets   []*Network
	// dir maps every node name to its home partition. Written at
	// quiescence when nodes register, read concurrently during windows.
	dir map[string]int
	// machines maps node name to machine fabric-wide, mirroring each
	// partition Network's Colocate calls. Same concurrency contract as dir:
	// written at quiescence, read mid-window by forward.
	machines map[string]string
	// machCuts holds severed machine pairs (keys normalized a<b). Mutated
	// only at engine quiescence via CutMachines/HealMachines.
	machCuts map[linkKey]bool

	crossLatency   time.Duration
	crossBandwidth float64 // bytes/sec; 0 = infinite
}

// NewFabric returns a fabric over the engine's partitions. The cross latency
// starts at the engine's lookahead (the minimum legal value) and the cross
// bandwidth at the 1GbE default; adjust with SetCrossLatency/SetCrossBandwidth
// before traffic flows.
func NewFabric(engine *simtime.Engine) *Fabric {
	return &Fabric{
		engine:         engine,
		nets:           make([]*Network, engine.Parts()),
		dir:            make(map[string]int),
		machines:       make(map[string]string),
		machCuts:       make(map[linkKey]bool),
		crossLatency:   engine.Lookahead(),
		crossBandwidth: 125e6,
	}
}

// Engine returns the engine the fabric routes over.
func (f *Fabric) Engine() *simtime.Engine { return f.engine }

// Network returns partition part's Network, creating it on the partition's
// scheduler on first use. Options apply only at creation.
func (f *Fabric) Network(part int, opts ...Option) *Network {
	if f.nets[part] == nil {
		n := New(f.engine.Part(part), opts...)
		n.fabric = f
		n.part = part
		f.nets[part] = n
	}
	return f.nets[part]
}

// SetCrossLatency sets the one-way latency for every cross-partition message.
// It panics when d is below the engine's lookahead: a shorter link would let
// a message land inside the window that sent it, in the destination's past.
func (f *Fabric) SetCrossLatency(d time.Duration) {
	if d < f.engine.Lookahead() {
		panic(fmt.Sprintf(
			"simnet: cross-partition latency %v below engine lookahead %v — conservative sync needs every cross-unit link to be at least one lookahead long",
			d, f.engine.Lookahead()))
	}
	f.crossLatency = d
}

// CrossLatency returns the current cross-partition link latency.
func (f *Fabric) CrossLatency() time.Duration { return f.crossLatency }

// SetCrossBandwidth sets the cross-partition link bandwidth in bytes/sec
// (0 = infinite). Serialization delay adds to the latency, so it can never
// push a delivery below the lookahead.
func (f *Fabric) SetCrossBandwidth(bytesPerSec float64) { f.crossBandwidth = bytesPerSec }

// PartitionOf returns the partition a node name is registered on.
func (f *Fabric) PartitionOf(node string) (int, bool) {
	p, ok := f.dir[node]
	return p, ok
}

// register records a node's home partition; called from Network.Node.
func (f *Fabric) register(name string, part int) {
	f.dir[name] = part
}

// colocate mirrors a partition Network's Colocate into the fabric-wide
// registry so cross-partition sends can resolve both endpoints' machines.
func (f *Fabric) colocate(node, machine string) {
	f.machines[node] = machine
}

// CutMachines severs cross-partition traffic between two machines in both
// directions. Mutate only at engine quiescence (between RunUntil windows) —
// the same contract as node registration. Partition-local traffic between the
// machines is governed by each Network's own CutMachines.
func (f *Fabric) CutMachines(a, b string) {
	if a > b {
		a, b = b, a
	}
	f.machCuts[linkKey{a, b}] = true
}

// HealMachines restores cross-partition traffic between two machines.
func (f *Fabric) HealMachines(a, b string) {
	if a > b {
		a, b = b, a
	}
	delete(f.machCuts, linkKey{a, b})
}

// forward routes a message whose destination is not local to src. It reports
// false when the destination is unknown fabric-wide (the caller then counts
// the drop). Runs on src's partition goroutine mid-window: it may only touch
// src-side state and Engine.Post.
func (f *Fabric) forward(src *Network, msg Message) bool {
	dstPart, ok := f.dir[msg.To]
	if !ok {
		return false
	}
	if ma := src.machines[msg.From]; ma != "" && src.isolatedMach[ma] {
		src.stats.Dropped++
		src.cDropped.Inc()
		return true
	}
	if len(f.machCuts) > 0 {
		ma, mb := f.machines[msg.From], f.machines[msg.To]
		if ma != "" && mb != "" {
			if ma > mb {
				ma, mb = mb, ma
			}
			if f.machCuts[linkKey{ma, mb}] {
				src.stats.Dropped++
				src.cDropped.Inc()
				return true
			}
		}
	}
	delay := f.crossLatency
	if f.crossBandwidth > 0 && msg.Size > 0 {
		delay += time.Duration(float64(msg.Size) / f.crossBandwidth * float64(time.Second))
	}
	dst := f.nets[dstPart]
	f.engine.Post(src.part, dstPart, src.sched.Now()+delay, func() {
		dst.deliverRemote(msg)
	})
	return true
}

// deliverRemote completes a cross-partition delivery on the destination
// partition: the destination-side checks (machine isolation, node up, handler
// installed) are evaluated against delivery-time state, exactly like the tail
// of a local deliver.
func (n *Network) deliverRemote(msg Message) {
	dst, ok := n.nodes[msg.To]
	if !ok {
		n.stats.Dropped++
		n.cDropped.Inc()
		return
	}
	if mb := n.machines[msg.To]; mb != "" && n.isolatedMach[mb] {
		n.stats.Dropped++
		n.cDropped.Inc()
		return
	}
	if !dst.up || dst.handler == nil {
		n.stats.Dropped++
		n.cDropped.Inc()
		return
	}
	n.stats.Delivered++
	n.cDelivered.Inc()
	n.stats.Bytes += uint64(msg.Size)
	n.cBytes.Add(uint64(msg.Size))
	dst.handler(msg)
}
