package simnet

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"ustore/internal/simtime"
)

func newNet(t *testing.T) (*simtime.Scheduler, *Network) {
	t.Helper()
	s := simtime.NewScheduler(1)
	return s, New(s)
}

func TestDeliveryWithLatency(t *testing.T) {
	s, n := newNet(t)
	n.SetLatency("a", "b", 5*time.Millisecond)
	var gotAt simtime.Time
	var got Message
	n.Node("b").Handle(func(m Message) { got = m; gotAt = s.Now() })
	n.Node("a").Send("b", "hello", 0)
	s.Run()
	if got.Payload != "hello" || got.From != "a" {
		t.Fatalf("got %+v", got)
	}
	if gotAt != 5*time.Millisecond {
		t.Fatalf("delivered at %v, want 5ms", gotAt)
	}
}

func TestSerializationDelay(t *testing.T) {
	s, n := newNet(t)
	n.SetLatency("a", "b", 0)
	// default bandwidth 125e6 B/s: 125e6 bytes take exactly 1s.
	var gotAt simtime.Time
	n.Node("b").Handle(func(m Message) { gotAt = s.Now() })
	n.Node("a").Send("b", nil, 125_000_000)
	s.Run()
	if gotAt != time.Second {
		t.Fatalf("delivered at %v, want 1s", gotAt)
	}
}

func TestLocalSendNoLatency(t *testing.T) {
	s, n := newNet(t)
	var gotAt simtime.Time = -1
	n.Node("a").Handle(func(m Message) { gotAt = s.Now() })
	n.Node("a").Send("a", "self", 1000)
	s.Run()
	if gotAt != 0 {
		t.Fatalf("local delivery at %v, want 0", gotAt)
	}
}

func TestCutAndHeal(t *testing.T) {
	s, n := newNet(t)
	count := 0
	n.Node("b").Handle(func(m Message) { count++ })
	a := n.Node("a")
	n.Cut("a", "b")
	a.Send("b", 1, 0)
	s.Run()
	if count != 0 {
		t.Fatal("message crossed a cut link")
	}
	n.Heal("a", "b")
	a.Send("b", 2, 0)
	s.Run()
	if count != 1 {
		t.Fatal("message lost after heal")
	}
	st := n.Stats()
	if st.Sent != 2 || st.Delivered != 1 || st.Dropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIsolateRejoin(t *testing.T) {
	s, n := newNet(t)
	count := 0
	for _, name := range []string{"a", "b", "c"} {
		n.Node(name).Handle(func(m Message) { count++ })
	}
	n.Isolate("a")
	n.Node("b").Send("a", 1, 0)
	n.Node("a").Send("c", 1, 0)
	n.Node("b").Send("c", 1, 0) // unaffected pair
	s.Run()
	if count != 1 {
		t.Fatalf("count = %d, want only b->c delivered", count)
	}
	n.Rejoin("a")
	n.Node("b").Send("a", 1, 0)
	s.Run()
	if count != 2 {
		t.Fatal("rejoin did not restore connectivity")
	}
}

func TestDownNodeDropsInFlight(t *testing.T) {
	s, n := newNet(t)
	count := 0
	b := n.Node("b")
	b.Handle(func(m Message) { count++ })
	n.SetLatency("a", "b", 10*time.Millisecond)
	n.Node("a").Send("b", 1, 0)
	s.After(5*time.Millisecond, func() { b.SetDown(true) })
	s.Run()
	if count != 0 {
		t.Fatal("down node received an in-flight message")
	}
	if !b.Up() == false {
		_ = b
	}
	b.SetDown(false)
	n.Node("a").Send("b", 2, 0)
	s.Run()
	if count != 1 {
		t.Fatal("restored node did not receive")
	}
}

func TestLossRate(t *testing.T) {
	s := simtime.NewScheduler(99)
	n := New(s)
	n.SetLossRate("a", "b", 0.5)
	got := 0
	n.Node("b").Handle(func(m Message) { got++ })
	a := n.Node("a")
	const total = 2000
	for i := 0; i < total; i++ {
		a.Send("b", i, 0)
	}
	s.Run()
	if got < total*2/5 || got > total*3/5 {
		t.Fatalf("delivered %d of %d with 50%% loss; outside [40%%,60%%]", got, total)
	}
}

func TestLossRateValidation(t *testing.T) {
	_, n := newNet(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for loss rate > 1")
		}
	}()
	n.SetLossRate("a", "b", 1.5)
}

func TestUnknownDestinationDropped(t *testing.T) {
	s, n := newNet(t)
	n.Node("a").Send("ghost", 1, 0)
	s.Run()
	if n.Stats().Dropped != 1 {
		t.Fatalf("stats = %+v, want 1 drop", n.Stats())
	}
}

func TestRPCBasic(t *testing.T) {
	s, n := newNet(t)
	srv := NewRPCNode(n, "server")
	srv.Register("add", func(from string, args any) (any, error) {
		p := args.([2]int)
		return p[0] + p[1], nil
	})
	cli := NewRPCNode(n, "client")
	var result any
	var callErr error
	cli.Call("server", "add", [2]int{2, 3}, 0, time.Second, func(r any, err error) {
		result, callErr = r, err
	})
	s.Run()
	if callErr != nil || result != 5 {
		t.Fatalf("result=%v err=%v", result, callErr)
	}
}

func TestRPCRemoteError(t *testing.T) {
	s, n := newNet(t)
	srv := NewRPCNode(n, "server")
	srv.Register("boom", func(from string, args any) (any, error) {
		return nil, fmt.Errorf("kaboom %d", 42)
	})
	cli := NewRPCNode(n, "client")
	var callErr error
	cli.Call("server", "boom", nil, 0, time.Second, func(r any, err error) { callErr = err })
	s.Run()
	if callErr == nil || callErr.Error() != "kaboom 42" {
		t.Fatalf("err = %v", callErr)
	}
}

func TestRPCUnknownMethod(t *testing.T) {
	s, n := newNet(t)
	NewRPCNode(n, "server")
	cli := NewRPCNode(n, "client")
	var callErr error
	cli.Call("server", "nope", nil, 0, time.Second, func(r any, err error) { callErr = err })
	s.Run()
	if callErr == nil {
		t.Fatal("expected unknown-method error")
	}
}

func TestRPCTimeoutOnCutLink(t *testing.T) {
	s, n := newNet(t)
	srv := NewRPCNode(n, "server")
	srv.Register("ping", func(from string, args any) (any, error) { return "pong", nil })
	cli := NewRPCNode(n, "client")
	n.Cut("client", "server")
	var callErr error
	fired := 0
	cli.Call("server", "ping", nil, 0, 100*time.Millisecond, func(r any, err error) {
		fired++
		callErr = err
	})
	s.Run()
	if fired != 1 {
		t.Fatalf("callback fired %d times, want exactly once", fired)
	}
	if !errors.Is(callErr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", callErr)
	}
}

func TestRPCLateReplyAfterTimeoutIsDropped(t *testing.T) {
	s, n := newNet(t)
	srv := NewRPCNode(n, "server")
	srv.Register("slow", func(from string, args any) (any, error) { return "late", nil })
	cli := NewRPCNode(n, "client")
	n.SetLatency("client", "server", 200*time.Millisecond) // RTT 400ms > 100ms timeout
	fired := 0
	var firstErr error
	cli.Call("server", "slow", nil, 0, 100*time.Millisecond, func(r any, err error) {
		fired++
		firstErr = err
	})
	s.Run()
	if fired != 1 || !errors.Is(firstErr, ErrTimeout) {
		t.Fatalf("fired=%d err=%v, want single timeout", fired, firstErr)
	}
}

func TestRPCConcurrentCallsKeepIdentity(t *testing.T) {
	s, n := newNet(t)
	srv := NewRPCNode(n, "server")
	srv.Register("echo", func(from string, args any) (any, error) { return args, nil })
	cli := NewRPCNode(n, "client")
	results := make(map[int]any)
	for i := 0; i < 50; i++ {
		i := i
		cli.Call("server", "echo", i, 0, time.Second, func(r any, err error) {
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			results[i] = r
		})
	}
	s.Run()
	for i := 0; i < 50; i++ {
		if results[i] != i {
			t.Fatalf("call %d got %v", i, results[i])
		}
	}
}

func TestRawHandler(t *testing.T) {
	s, n := newNet(t)
	srv := NewRPCNode(n, "server")
	var raw any
	srv.HandleRaw(func(m Message) { raw = m.Payload })
	n.Node("client").Send("server", "oneway", 0)
	s.Run()
	if raw != "oneway" {
		t.Fatalf("raw = %v", raw)
	}
}
