package simnet

import (
	"errors"
	"time"
)

// ErrTimeout is returned to an RPC callback when no reply arrives within the
// deadline.
var ErrTimeout = errors.New("simnet: rpc timeout")

// rpcRequest and rpcReply are the internal envelopes the RPC layer exchanges.
type rpcRequest struct {
	ID     uint64
	Method string
	Args   any
}

type rpcReply struct {
	ID     uint64
	Result any
	Err    string
}

// RPCHandler serves one method. Returning a non-nil error sends the error
// string to the caller instead of a result.
type RPCHandler func(from string, args any) (any, error)

// RPCAsyncHandler serves one method whose reply is produced later (e.g.
// after further scheduled events). reply must be called exactly once.
type RPCAsyncHandler func(from string, args any, reply func(result any, err error))

// RPCNode wraps a Node with request/response semantics: named methods on the
// server side, per-call timeouts and callbacks on the client side. All
// callbacks run on the scheduler goroutine.
type RPCNode struct {
	node     *Node
	net      *Network
	methods  map[string]RPCHandler
	async    map[string]RPCAsyncHandler
	nextID   uint64
	pending  map[uint64]*pendingCall
	otherRaw Handler
}

type pendingCall struct {
	done    func(result any, err error)
	timeout *eventRef
}

// eventRef lets us cancel the timeout without importing simtime types here.
type eventRef struct{ cancel func() }

// NewRPCNode registers name on the network and installs the RPC dispatcher
// as its message handler.
func NewRPCNode(net *Network, name string) *RPCNode {
	r := &RPCNode{
		node:    net.Node(name),
		net:     net,
		methods: make(map[string]RPCHandler),
		async:   make(map[string]RPCAsyncHandler),
		pending: make(map[uint64]*pendingCall),
	}
	r.node.Handle(r.dispatch)
	return r
}

// Name returns the underlying node name.
func (r *RPCNode) Name() string { return r.node.Name() }

// Node returns the underlying network node (for Up/SetDown).
func (r *RPCNode) Node() *Node { return r.node }

// Register installs a handler for method. Re-registering replaces it.
func (r *RPCNode) Register(method string, h RPCHandler) {
	r.methods[method] = h
}

// RegisterAsync installs a handler whose reply arrives later. The reply
// closure is safe to call from any subsequently scheduled event.
func (r *RPCNode) RegisterAsync(method string, h RPCAsyncHandler) {
	r.async[method] = h
}

// HandleRaw installs a handler for non-RPC payloads delivered to this node
// (e.g. one-way notifications sent with Node.Send).
func (r *RPCNode) HandleRaw(h Handler) { r.otherRaw = h }

// Call sends an async request. done is invoked exactly once: with the reply,
// with a remote error, or with ErrTimeout. size is the request's nominal
// wire size in bytes.
func (r *RPCNode) Call(to, method string, args any, size int, timeout time.Duration, done func(result any, err error)) {
	r.nextID++
	id := r.nextID
	pc := &pendingCall{done: done}
	r.pending[id] = pc
	if timeout > 0 {
		ev := r.net.sched.After(timeout, func() {
			if _, ok := r.pending[id]; !ok {
				return
			}
			delete(r.pending, id)
			if done != nil {
				done(nil, ErrTimeout)
			}
		})
		pc.timeout = &eventRef{cancel: ev.Cancel}
	}
	r.node.Send(to, rpcRequest{ID: id, Method: method, Args: args}, size)
}

func (r *RPCNode) dispatch(msg Message) {
	switch p := msg.Payload.(type) {
	case rpcRequest:
		if ah, ok := r.async[p.Method]; ok {
			id := p.ID
			from := msg.From
			replied := false
			ah(from, p.Args, func(result any, err error) {
				if replied {
					panic("simnet: async RPC handler replied twice")
				}
				replied = true
				rep := rpcReply{ID: id, Result: result}
				if err != nil {
					rep.Err = err.Error()
				}
				r.node.Send(from, rep, 0)
			})
			return
		}
		h, ok := r.methods[p.Method]
		if !ok {
			r.node.Send(msg.From, rpcReply{ID: p.ID, Err: "unknown method " + p.Method}, 0)
			return
		}
		result, err := h(msg.From, p.Args)
		rep := rpcReply{ID: p.ID, Result: result}
		if err != nil {
			rep.Err = err.Error()
		}
		r.node.Send(msg.From, rep, 0)
	case rpcReply:
		pc, ok := r.pending[p.ID]
		if !ok {
			return // late reply after timeout; drop
		}
		delete(r.pending, p.ID)
		if pc.timeout != nil {
			pc.timeout.cancel()
		}
		if pc.done == nil {
			return
		}
		if p.Err != "" {
			pc.done(nil, errors.New(p.Err))
		} else {
			pc.done(p.Result, nil)
		}
	default:
		if r.otherRaw != nil {
			r.otherRaw(msg)
		}
	}
}
