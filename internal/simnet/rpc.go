package simnet

import (
	"errors"
	"time"

	"ustore/internal/obs"
)

// ErrTimeout is returned to an RPC callback when no reply arrives within the
// deadline.
var ErrTimeout = errors.New("simnet: rpc timeout")

// rpcRequest and rpcReply are the internal envelopes the RPC layer exchanges.
type rpcRequest struct {
	ID     uint64
	Method string
	Args   any
}

type rpcReply struct {
	ID     uint64
	Result any
	Err    string
}

// RPCHandler serves one method. Returning a non-nil error sends the error
// string to the caller instead of a result.
type RPCHandler func(from string, args any) (any, error)

// RPCAsyncHandler serves one method whose reply is produced later (e.g.
// after further scheduled events). reply must be called exactly once.
type RPCAsyncHandler func(from string, args any, reply func(result any, err error))

// RPCNode wraps a Node with request/response semantics: named methods on the
// server side, per-call timeouts and callbacks on the client side. All
// callbacks run on the scheduler goroutine.
//
// The server side deduplicates requests by (caller, request ID): a retried
// or duplicate-delivered request is answered from a cache of recent replies
// (or silently absorbed while the original async handler is still running)
// instead of re-executing the handler. Combined with CallWithRetry reusing
// one request ID across resends, this gives effectively-once execution over
// an at-least-once transport.
type RPCNode struct {
	node     *Node
	net      *Network
	methods  map[string]RPCHandler
	async    map[string]RPCAsyncHandler
	nextID   uint64
	pending  map[uint64]*pendingCall
	otherRaw Handler

	seen     map[dedupKey]rpcReply
	inflight map[dedupKey]bool
	lastID   map[string]uint64
	dedupN   int
}

type dedupKey struct {
	from string
	id   uint64
}

// dedupWindow is how far behind a caller's newest request ID a cached reply
// is kept; duplicates arrive within milliseconds, so a small window is
// plenty while keeping the cache bounded over long runs.
const dedupWindow = 128

type pendingCall struct {
	done    func(result any, err error)
	timeout *eventRef
}

// eventRef lets us cancel the timeout without importing simtime types here.
type eventRef struct{ cancel func() }

// NewRPCNode registers name on the network and installs the RPC dispatcher
// as its message handler.
func NewRPCNode(net *Network, name string) *RPCNode {
	r := &RPCNode{
		node:     net.Node(name),
		net:      net,
		methods:  make(map[string]RPCHandler),
		async:    make(map[string]RPCAsyncHandler),
		pending:  make(map[uint64]*pendingCall),
		seen:     make(map[dedupKey]rpcReply),
		inflight: make(map[dedupKey]bool),
		lastID:   make(map[string]uint64),
	}
	r.node.Handle(r.dispatch)
	return r
}

// Name returns the underlying node name.
func (r *RPCNode) Name() string { return r.node.Name() }

// Node returns the underlying network node (for Up/SetDown).
func (r *RPCNode) Node() *Node { return r.node }

// Register installs a handler for method. Re-registering replaces it.
func (r *RPCNode) Register(method string, h RPCHandler) {
	r.methods[method] = h
}

// RegisterAsync installs a handler whose reply arrives later. The reply
// closure is safe to call from any subsequently scheduled event.
func (r *RPCNode) RegisterAsync(method string, h RPCAsyncHandler) {
	r.async[method] = h
}

// HandleRaw installs a handler for non-RPC payloads delivered to this node
// (e.g. one-way notifications sent with Node.Send).
func (r *RPCNode) HandleRaw(h Handler) { r.otherRaw = h }

// instrumentCall wraps a call's completion callback with RPC latency and
// trace recording: a span on the caller's track for the call's lifetime,
// the latency into simnet_rpc_seconds{method=...}, and a timeout counter.
// With no recorder bound it returns done unchanged (zero overhead).
func (r *RPCNode) instrumentCall(to, method string, done func(result any, err error)) func(result any, err error) {
	rec := r.net.rec
	if rec == nil {
		return done
	}
	span := rec.Begin("simnet", "rpc:"+method, r.Name(), obs.L("to", to))
	start := r.net.sched.Now()
	mm := r.net.methodMetrics(method)
	return func(result any, err error) {
		status := "ok"
		switch {
		case errors.Is(err, ErrTimeout):
			status = "timeout"
			mm.timeouts.Inc()
		case err != nil:
			status = "error"
		}
		mm.latency.ObserveDuration(r.net.sched.Now() - start)
		span.End(obs.L("status", status))
		if done != nil {
			done(result, err)
		}
	}
}

// Call sends an async request. done is invoked exactly once: with the reply,
// with a remote error, or with ErrTimeout. size is the request's nominal
// wire size in bytes.
func (r *RPCNode) Call(to, method string, args any, size int, timeout time.Duration, done func(result any, err error)) {
	done = r.instrumentCall(to, method, done)
	r.nextID++
	id := r.nextID
	pc := &pendingCall{done: done}
	r.pending[id] = pc
	if timeout > 0 {
		ev := r.net.sched.After(timeout, func() {
			if _, ok := r.pending[id]; !ok {
				return
			}
			delete(r.pending, id)
			if done != nil {
				done(nil, ErrTimeout)
			}
		})
		pc.timeout = &eventRef{cancel: ev.Cancel}
	}
	r.node.Send(to, rpcRequest{ID: id, Method: method, Args: args}, size)
}

// RetryOpts tunes CallWithRetry. Zero values pick the defaults.
type RetryOpts struct {
	// Attempts is the maximum number of sends (first try included).
	Attempts int
	// Timeout is the per-attempt reply deadline.
	Timeout time.Duration
	// Backoff is the ceiling of the wait before the second send; it doubles
	// each further attempt. The actual wait is drawn uniformly from
	// (0, ceiling] ("full jitter", seeded from the scheduler RNG): after a
	// partition heals, every blocked client's retry clock fires at once, and
	// anything short of full-range jitter re-synchronizes the fleet into
	// retry storms against the recovering server.
	Backoff time.Duration
	// MaxElapsed caps the total time spent retrying: once this much time has
	// passed since the first send, a timed-out attempt fails the call instead
	// of re-sending, even with attempts left. Zero means no cap (attempts
	// alone bound the call). Under overload this is the difference between a
	// bounded retry budget and open-loop retry amplification feeding the
	// storm that caused the timeouts.
	MaxElapsed time.Duration
}

// Defaults for RetryOpts zero values.
const (
	DefaultRetryAttempts = 3
	DefaultRetryTimeout  = time.Second
	DefaultRetryBackoff  = 100 * time.Millisecond
)

// CallWithRetry is Call with capped retransmission: if an attempt times out
// the same request (same ID) is re-sent after an exponential backoff with
// deterministic jitter. The receiver's dedup cache makes the retries safe
// for non-idempotent methods. done fires exactly once — with the first
// reply to arrive, a remote error, or ErrTimeout after the final attempt.
// A healthy call consumes no RNG, so enabling retries does not perturb
// fault-free runs.
func (r *RPCNode) CallWithRetry(to, method string, args any, size int, o RetryOpts, done func(result any, err error)) {
	if o.Attempts <= 0 {
		o.Attempts = DefaultRetryAttempts
	}
	if o.Timeout <= 0 {
		o.Timeout = DefaultRetryTimeout
	}
	if o.Backoff <= 0 {
		o.Backoff = DefaultRetryBackoff
	}
	done = r.instrumentCall(to, method, done)
	r.nextID++
	id := r.nextID
	pc := &pendingCall{done: done}
	r.pending[id] = pc
	req := rpcRequest{ID: id, Method: method, Args: args}
	start := r.net.sched.Now()
	var attempt func(n int)
	attempt = func(n int) {
		if _, ok := r.pending[id]; !ok {
			return // an earlier attempt's reply already landed
		}
		if n > 0 {
			r.net.methodMetrics(method).retries.Inc()
			r.net.rec.Instant("simnet", "rpc-retry", r.Name(),
				obs.L("method", method), obs.L("to", to))
		}
		r.node.Send(to, req, size)
		ev := r.net.sched.After(o.Timeout, func() {
			if _, ok := r.pending[id]; !ok {
				return
			}
			overBudget := o.MaxElapsed > 0 && r.net.sched.Now()-start >= o.MaxElapsed
			if n+1 >= o.Attempts || overBudget {
				delete(r.pending, id)
				r.net.methodMetrics(method).exhausted.Inc()
				if done != nil {
					done(nil, ErrTimeout)
				}
				return
			}
			backoff := o.Backoff << uint(n)
			wait := time.Duration(1 + r.net.sched.Rand().Int63n(int64(backoff)))
			r.net.sched.After(wait, func() { attempt(n + 1) })
		})
		pc.timeout = &eventRef{cancel: ev.Cancel}
	}
	attempt(0)
}

// remember caches a finished request's reply for duplicate suppression and
// periodically prunes entries that have fallen out of the caller's window.
func (r *RPCNode) remember(k dedupKey, rep rpcReply) {
	r.seen[k] = rep
	if k.id > r.lastID[k.from] {
		r.lastID[k.from] = k.id
	}
	r.dedupN++
	if r.dedupN >= 1024 {
		r.dedupN = 0
		for old := range r.seen {
			if old.id+dedupWindow < r.lastID[old.from] {
				delete(r.seen, old)
			}
		}
	}
}

func (r *RPCNode) dispatch(msg Message) {
	switch p := msg.Payload.(type) {
	case rpcRequest:
		k := dedupKey{from: msg.From, id: p.ID}
		if rep, ok := r.seen[k]; ok {
			r.net.cDedup.Inc()
			r.node.Send(msg.From, rep, 0) // duplicate of a served request
			return
		}
		if r.inflight[k] {
			r.net.cDedup.Inc()
			return // duplicate while the async handler runs; it will reply
		}
		if ah, ok := r.async[p.Method]; ok {
			from := msg.From
			replied := false
			r.inflight[k] = true
			ah(from, p.Args, func(result any, err error) {
				if replied {
					panic("simnet: async RPC handler replied twice")
				}
				replied = true
				delete(r.inflight, k)
				rep := rpcReply{ID: k.id, Result: result}
				if err != nil {
					rep.Err = err.Error()
				}
				r.remember(k, rep)
				r.node.Send(from, rep, 0)
			})
			return
		}
		h, ok := r.methods[p.Method]
		if !ok {
			r.node.Send(msg.From, rpcReply{ID: p.ID, Err: "unknown method " + p.Method}, 0)
			return
		}
		result, err := h(msg.From, p.Args)
		rep := rpcReply{ID: p.ID, Result: result}
		if err != nil {
			rep.Err = err.Error()
		}
		r.remember(k, rep)
		r.node.Send(msg.From, rep, 0)
	case rpcReply:
		pc, ok := r.pending[p.ID]
		if !ok {
			return // late reply after timeout; drop
		}
		delete(r.pending, p.ID)
		if pc.timeout != nil {
			pc.timeout.cancel()
		}
		if pc.done == nil {
			return
		}
		if p.Err != "" {
			pc.done(nil, errors.New(p.Err))
		} else {
			pc.done(p.Result, nil)
		}
	default:
		if r.otherRaw != nil {
			r.otherRaw(msg)
		}
	}
}
