package simnet

import (
	"errors"
	"testing"
	"time"

	"ustore/internal/obs"
	"ustore/internal/simtime"
)

func TestCallWithRetrySurvivesLostRequest(t *testing.T) {
	s := simtime.NewScheduler(1)
	n := New(s)
	srv := NewRPCNode(n, "srv")
	cli := NewRPCNode(n, "cli")
	calls := 0
	srv.Register("echo", func(from string, args any) (any, error) {
		calls++
		return args, nil
	})

	// Drop the first request deterministically via a one-shot cut.
	n.Cut("cli", "srv")
	s.After(50*time.Millisecond, func() { n.Heal("cli", "srv") })

	var got any
	var gerr error = errors.New("pending")
	cli.CallWithRetry("srv", "echo", 42, 0,
		RetryOpts{Attempts: 3, Timeout: 100 * time.Millisecond, Backoff: 20 * time.Millisecond},
		func(result any, err error) { got, gerr = result, err })
	s.Run()
	if gerr != nil {
		t.Fatalf("call failed despite retries: %v", gerr)
	}
	if got != 42 {
		t.Fatalf("result = %v, want 42", got)
	}
	if calls != 1 {
		t.Fatalf("handler ran %d times, want 1", calls)
	}
}

func TestCallWithRetryExhaustsAttempts(t *testing.T) {
	s := simtime.NewScheduler(1)
	n := New(s)
	NewRPCNode(n, "srv") // no handler matters; link stays cut
	cli := NewRPCNode(n, "cli")
	n.Cut("cli", "srv")

	var gerr error
	fired := 0
	cli.CallWithRetry("srv", "nope", nil, 0,
		RetryOpts{Attempts: 3, Timeout: 50 * time.Millisecond, Backoff: 10 * time.Millisecond},
		func(_ any, err error) { fired++; gerr = err })
	s.Run()
	if fired != 1 {
		t.Fatalf("done fired %d times, want exactly 1", fired)
	}
	if !errors.Is(gerr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", gerr)
	}
}

func TestRetryResendIsDeduplicatedNotReExecuted(t *testing.T) {
	// The reply (not the request) is lost: the server executes once, the
	// retry hits the dedup cache, and the client still gets the answer.
	s := simtime.NewScheduler(1)
	n := New(s)
	srv := NewRPCNode(n, "srv")
	cli := NewRPCNode(n, "cli")
	calls := 0
	srv.Register("bump", func(from string, args any) (any, error) {
		calls++
		return calls, nil
	})

	// Cut only srv->cli so the first reply dies in flight.
	n.link("srv", "cli").cut = true
	s.After(50*time.Millisecond, func() { n.link("srv", "cli").cut = false })

	var got any
	var gerr error = errors.New("pending")
	cli.CallWithRetry("srv", "bump", nil, 0,
		RetryOpts{Attempts: 4, Timeout: 100 * time.Millisecond, Backoff: 20 * time.Millisecond},
		func(result any, err error) { got, gerr = result, err })
	s.Run()
	if gerr != nil {
		t.Fatal(gerr)
	}
	if calls != 1 {
		t.Fatalf("non-idempotent handler ran %d times, want 1", calls)
	}
	if got != 1 {
		t.Fatalf("result = %v, want 1 (the cached first execution)", got)
	}
}

func TestRetryMaxElapsedBudget(t *testing.T) {
	// With a total-retry budget shorter than the per-attempt schedule, the
	// call gives up at the first timeout past the budget even though
	// Attempts would allow many more sends.
	s := simtime.NewScheduler(1)
	n := New(s)
	NewRPCNode(n, "srv")
	cli := NewRPCNode(n, "cli")
	n.Cut("cli", "srv")

	var gerr error
	fired := 0
	cli.CallWithRetry("srv", "nope", nil, 0,
		RetryOpts{Attempts: 100, Timeout: 50 * time.Millisecond,
			Backoff: 10 * time.Millisecond, MaxElapsed: 120 * time.Millisecond},
		func(_ any, err error) { fired++; gerr = err })
	s.Run()
	if fired != 1 {
		t.Fatalf("done fired %d times, want exactly 1", fired)
	}
	if !errors.Is(gerr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", gerr)
	}
	// 100 attempts at ~60ms each would run ~6 simulated seconds; the budget
	// must have cut that to under a second.
	if s.Now() > time.Second {
		t.Fatalf("retries ran until %v despite a 120ms budget", s.Now())
	}
}

func TestRetryCountersVisible(t *testing.T) {
	// Storm observability: retry attempts and exhaustion are counted per
	// method in the registry.
	s := simtime.NewScheduler(1)
	n := New(s)
	rec := obs.NewRecorder()
	n.SetRecorder(rec)
	NewRPCNode(n, "srv")
	cli := NewRPCNode(n, "cli")
	n.Cut("cli", "srv")

	cli.CallWithRetry("srv", "nope", nil, 0,
		RetryOpts{Attempts: 3, Timeout: 50 * time.Millisecond, Backoff: 10 * time.Millisecond},
		func(any, error) {})
	s.Run()

	reg := rec.Registry()
	if got := reg.Counter("simnet", "rpc_retry_attempts_total", obs.L("method", "nope")).Value(); got != 2 {
		t.Fatalf("retry_attempts = %d, want 2 (attempts 2 and 3)", got)
	}
	if got := reg.Counter("simnet", "rpc_retry_exhausted_total", obs.L("method", "nope")).Value(); got != 1 {
		t.Fatalf("retry_exhausted = %d, want 1", got)
	}
}

func TestDupDeliveredRequestExecutesOnce(t *testing.T) {
	s := simtime.NewScheduler(7)
	n := New(s)
	srv := NewRPCNode(n, "srv")
	cli := NewRPCNode(n, "cli")
	calls := 0
	srv.Register("bump", func(from string, args any) (any, error) {
		calls++
		return nil, nil
	})
	n.SetDupRate("cli", "srv", 1.0) // every request delivered twice

	oks := 0
	for i := 0; i < 10; i++ {
		cli.Call("srv", "bump", nil, 0, time.Second, func(_ any, err error) {
			if err == nil {
				oks++
			}
		})
		s.RunFor(2 * time.Second)
	}
	if calls != 10 {
		t.Fatalf("handler ran %d times for 10 calls, want 10", calls)
	}
	if oks != 10 {
		t.Fatalf("%d calls succeeded, want 10", oks)
	}
}

func TestMachineCutAndHeal(t *testing.T) {
	s := simtime.NewScheduler(1)
	n := New(s)
	got := 0
	a := n.Node("a")
	b := n.Node("b")
	b.Handle(func(Message) { got++ })
	_ = a
	n.Colocate("a", "rack1")
	n.Colocate("b", "rack2")

	n.CutMachines("rack1", "rack2")
	a.Send("b", "x", 0)
	s.Run()
	if got != 0 {
		t.Fatal("message crossed a cut machine pair")
	}
	n.HealMachines("rack2", "rack1") // order must not matter
	a.Send("b", "x", 0)
	s.Run()
	if got != 1 {
		t.Fatal("message did not cross after heal")
	}
}

func TestIsolateMachineKeepsLoopback(t *testing.T) {
	s := simtime.NewScheduler(1)
	n := New(s)
	a := n.Node("a")
	peer := n.Node("peer")
	var aGot, peerGot int
	n.Node("a2").Handle(func(Message) { aGot++ })
	peer.Handle(func(Message) { peerGot++ })
	n.Colocate("a", "m1")
	n.Colocate("a2", "m1")
	n.Colocate("peer", "m2")

	n.IsolateMachine("m1")
	a.Send("a2", "x", 0)   // loopback survives
	a.Send("peer", "x", 0) // uplink is unplugged
	peer.Send("a", "x", 0)
	s.Run()
	if aGot != 1 {
		t.Fatalf("loopback deliveries = %d, want 1", aGot)
	}
	if peerGot != 0 {
		t.Fatal("isolated machine reached a peer")
	}

	n.RejoinMachine("m1")
	a.Send("peer", "x", 0)
	s.Run()
	if peerGot != 1 {
		t.Fatal("rejoin did not restore traffic")
	}
}

func TestMachineLossRate(t *testing.T) {
	s := simtime.NewScheduler(1)
	n := New(s)
	a := n.Node("a")
	got := 0
	n.Node("b").Handle(func(Message) { got++ })
	n.Colocate("a", "m1")
	n.Colocate("b", "m2")
	n.SetMachineLossRate("m1", "m2", 1.0)
	for i := 0; i < 20; i++ {
		a.Send("b", i, 0)
	}
	s.Run()
	if got != 0 {
		t.Fatalf("%d messages survived 100%% machine loss", got)
	}
	n.SetMachineLossRate("m1", "m2", 0)
	a.Send("b", 1, 0)
	s.Run()
	if got != 1 {
		t.Fatal("message lost after loss rate reset")
	}
}
