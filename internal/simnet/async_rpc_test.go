package simnet

import (
	"errors"
	"testing"
	"time"

	"ustore/internal/simtime"
)

func TestAsyncRPCRepliesLater(t *testing.T) {
	s := simtime.NewScheduler(1)
	n := New(s)
	srv := NewRPCNode(n, "server")
	srv.RegisterAsync("slow", func(from string, args any, reply func(any, error)) {
		s.After(2*time.Second, func() { reply("done after work", nil) })
	})
	cli := NewRPCNode(n, "client")
	var got any
	var gotAt simtime.Time
	cli.Call("server", "slow", nil, 0, 10*time.Second, func(res any, err error) {
		got, gotAt = res, s.Now()
		if err != nil {
			t.Errorf("err: %v", err)
		}
	})
	s.Run()
	if got != "done after work" {
		t.Fatalf("got %v", got)
	}
	if gotAt < 2*time.Second {
		t.Fatalf("reply at %v, before the handler's work finished", gotAt)
	}
}

func TestAsyncRPCErrorPropagates(t *testing.T) {
	s := simtime.NewScheduler(1)
	n := New(s)
	srv := NewRPCNode(n, "server")
	srv.RegisterAsync("fail", func(from string, args any, reply func(any, error)) {
		s.After(time.Second, func() { reply(nil, errors.New("deferred boom")) })
	})
	cli := NewRPCNode(n, "client")
	var gotErr error
	cli.Call("server", "fail", nil, 0, 10*time.Second, func(_ any, err error) { gotErr = err })
	s.Run()
	if gotErr == nil || gotErr.Error() != "deferred boom" {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestAsyncRPCTimeoutBeforeReply(t *testing.T) {
	s := simtime.NewScheduler(1)
	n := New(s)
	srv := NewRPCNode(n, "server")
	srv.RegisterAsync("glacial", func(from string, args any, reply func(any, error)) {
		s.After(30*time.Second, func() { reply("too late", nil) })
	})
	cli := NewRPCNode(n, "client")
	fired := 0
	var gotErr error
	cli.Call("server", "glacial", nil, 0, time.Second, func(_ any, err error) {
		fired++
		gotErr = err
	})
	s.Run()
	if fired != 1 {
		t.Fatalf("callback fired %d times (late reply must be dropped)", fired)
	}
	if !errors.Is(gotErr, ErrTimeout) {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestAsyncRPCDoubleReplyPanics(t *testing.T) {
	s := simtime.NewScheduler(1)
	n := New(s)
	srv := NewRPCNode(n, "server")
	srv.RegisterAsync("dup", func(from string, args any, reply func(any, error)) {
		reply("first", nil)
		defer func() {
			if recover() == nil {
				t.Error("second reply did not panic")
			}
		}()
		reply("second", nil)
	})
	cli := NewRPCNode(n, "client")
	cli.Call("server", "dup", nil, 0, time.Second, func(any, error) {})
	s.Run()
}

func TestAsyncTakesPrecedenceOverSync(t *testing.T) {
	s := simtime.NewScheduler(1)
	n := New(s)
	srv := NewRPCNode(n, "server")
	srv.Register("m", func(from string, args any) (any, error) { return "sync", nil })
	srv.RegisterAsync("m", func(from string, args any, reply func(any, error)) { reply("async", nil) })
	cli := NewRPCNode(n, "client")
	var got any
	cli.Call("server", "m", nil, 0, time.Second, func(res any, err error) { got = res })
	s.Run()
	if got != "async" {
		t.Fatalf("got %v, want the async handler to win", got)
	}
}
