package simnet

import (
	"strings"
	"testing"
	"time"

	"ustore/internal/simtime"
)

func newTestFabric(t *testing.T, parts, workers int) (*simtime.Engine, *Fabric) {
	t.Helper()
	e := simtime.NewEngine(11, parts, workers, time.Millisecond)
	return e, NewFabric(e)
}

func TestFabricCrossPartitionDelivery(t *testing.T) {
	e, f := newTestFabric(t, 2, 1)
	na, nb := f.Network(0), f.Network(1)
	na.Node("a")
	var gotAt simtime.Time
	nb.Node("b").Handle(func(msg Message) {
		if msg.From != "a" || msg.Payload != "ping" {
			t.Errorf("unexpected message %+v", msg)
		}
		gotAt = nb.Scheduler().Now()
	})
	na.Node("a").Send("b", "ping", 0)
	e.RunFor(time.Second)
	if gotAt == 0 {
		t.Fatal("cross-partition message never delivered")
	}
	if gotAt < e.Lookahead() {
		t.Fatalf("delivered at %v, before one lookahead %v", gotAt, e.Lookahead())
	}
	if p, ok := f.PartitionOf("b"); !ok || p != 1 {
		t.Fatalf("PartitionOf(b) = %d,%v, want 1,true", p, ok)
	}
}

// TestFabricLatencyFloorProperty asserts the conservative-sync invariant over
// a sweep of candidate latencies: every value at or above the lookahead is
// accepted and every value below it panics with a message naming the
// contract.
func TestFabricLatencyFloorProperty(t *testing.T) {
	_, f := newTestFabric(t, 2, 1)
	la := f.Engine().Lookahead()
	for _, d := range []time.Duration{la, la + 1, 2 * la, time.Second} {
		f.SetCrossLatency(d)
		if f.CrossLatency() != d {
			t.Fatalf("CrossLatency = %v, want %v", f.CrossLatency(), d)
		}
	}
	for _, d := range []time.Duration{la - 1, la / 2, 0, -time.Second} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("SetCrossLatency(%v) below lookahead %v did not panic", d, la)
					return
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "lookahead") {
					t.Errorf("panic %v does not name the lookahead contract", r)
				}
			}()
			f.SetCrossLatency(d)
		}()
	}
}

func TestFabricIsolationBothSides(t *testing.T) {
	e, f := newTestFabric(t, 2, 1)
	na, nb := f.Network(0), f.Network(1)
	na.Colocate("a", "mach-a")
	nb.Colocate("b", "mach-b")
	na.Node("a")
	delivered := 0
	nb.Node("b").Handle(func(Message) { delivered++ })

	// Source-side isolation: the drop is counted where the send happened.
	na.IsolateMachine("mach-a")
	na.Node("a").Send("b", 1, 0)
	e.RunFor(time.Second)
	if delivered != 0 || na.Stats().Dropped != 1 {
		t.Fatalf("after src isolation: delivered=%d srcDropped=%d, want 0,1", delivered, na.Stats().Dropped)
	}
	na.RejoinMachine("mach-a")

	// Destination-side isolation: the message crosses the fabric and is
	// dropped against delivery-time state on the destination partition.
	nb.IsolateMachine("mach-b")
	na.Node("a").Send("b", 2, 0)
	e.RunFor(time.Second)
	if delivered != 0 || nb.Stats().Dropped != 1 {
		t.Fatalf("after dst isolation: delivered=%d dstDropped=%d, want 0,1", delivered, nb.Stats().Dropped)
	}
	nb.RejoinMachine("mach-b")

	na.Node("a").Send("b", 3, 0)
	e.RunFor(time.Second)
	if delivered != 1 {
		t.Fatalf("after rejoin: delivered=%d, want 1", delivered)
	}
}

func TestFabricSerializationDelay(t *testing.T) {
	e, f := newTestFabric(t, 2, 1)
	f.SetCrossBandwidth(1e6) // 1 MB/s: a 1MB payload adds a full second
	na, nb := f.Network(0), f.Network(1)
	na.Node("a")
	var gotAt simtime.Time
	nb.Node("b").Handle(func(Message) { gotAt = nb.Scheduler().Now() })
	na.Node("a").Send("b", "bulk", 1<<20)
	e.RunFor(5 * time.Second)
	if gotAt < time.Second {
		t.Fatalf("1MB at 1MB/s delivered at %v, want ≥ 1s of serialization", gotAt)
	}
}

func TestFabricUnknownDestinationCountsDrop(t *testing.T) {
	e, f := newTestFabric(t, 2, 1)
	na := f.Network(0)
	na.Node("a").Send("nobody", 1, 0)
	e.RunFor(time.Second)
	if d := na.Stats().Dropped; d != 1 {
		t.Fatalf("Dropped = %d, want 1", d)
	}
}
