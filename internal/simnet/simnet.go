// Package simnet provides a simulated message-passing network for UStore
// components, built on the simtime discrete-event scheduler.
//
// A Network holds named Nodes. Messages sent between nodes are delivered as
// scheduled events after a per-link latency (plus optional serialization time
// derived from link bandwidth and message size). Links can be cut, delayed,
// or made lossy to inject the failure modes the paper's failure-detection and
// failover machinery must survive.
package simnet

import (
	"fmt"
	"time"

	"ustore/internal/obs"
	"ustore/internal/simtime"
)

// Message is a unit of delivery. Payload typing is left to the application
// protocols layered above (core RPCs, block protocol, paxos messages).
type Message struct {
	From    string
	To      string
	Payload any
	// Size is the nominal size in bytes, used for serialization delay on
	// bandwidth-limited links. Zero means "control message" (latency only).
	Size int
}

// Handler receives delivered messages on a node.
type Handler func(msg Message)

// Node is a network endpoint.
type Node struct {
	name    string
	net     *Network
	handler Handler
	up      bool
}

// Name returns the node's unique name.
func (n *Node) Name() string { return n.name }

// Up reports whether the node is accepting deliveries.
func (n *Node) Up() bool { return n.up }

// SetDown makes the node drop all deliveries (simulates a crashed or
// partitioned-away process). Messages already in flight are dropped on
// arrival.
func (n *Node) SetDown(down bool) { n.up = !down }

// Handle installs the delivery callback. Must be set before messages arrive;
// deliveries with no handler are counted as drops.
func (n *Node) Handle(h Handler) { n.handler = h }

// Send sends a message from this node. See Network.Send.
func (n *Node) Send(to string, payload any, size int) {
	n.net.Send(Message{From: n.name, To: to, Payload: payload, Size: size})
}

type linkKey struct{ from, to string }

type linkState struct {
	latency   time.Duration
	bandwidth float64 // bytes/sec; 0 = infinite
	lossRate  float64 // probability a message is dropped
	dupRate   float64 // probability a message is delivered twice
	cut       bool
}

// machLink is fault state between a pair of machines.
type machLink struct {
	cut      bool
	lossRate float64
	dupRate  float64
}

// Stats aggregates network counters.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Bytes     uint64
}

// Network is a collection of nodes and directed links.
type Network struct {
	sched *simtime.Scheduler
	nodes map[string]*Node
	links map[linkKey]*linkState
	// machines maps node name -> physical machine. Two nodes on the same
	// machine exchange messages locally: no latency, no bandwidth charge,
	// no loss, and no contribution to network byte counters.
	machines map[string]string
	// machLinks holds machine-pair fault state (switch-port/cable faults):
	// it applies uniformly to every node pair spanning the two machines,
	// which is how chaos injects partitions without enumerating node names.
	machLinks map[linkKey]*machLink
	// isolatedMach marks machines whose uplink is unplugged: every message
	// in or out is dropped, loopback traffic still flows.
	isolatedMach map[string]bool
	// oneWayCuts holds DIRECTED machine cuts: {from, to} present means
	// traffic from machine `from` to machine `to` is dropped while the
	// reverse direction still flows — the asymmetric (gray) partition shape
	// that wedges naive lease protocols.
	oneWayCuts map[linkKey]bool
	// brownout is per-machine extra processing delay: a browned-out host
	// still answers everything, just slowly (CPU starvation, thermal
	// throttling, a noisy co-tenant). Applied to every non-loopback message
	// into or out of the machine.
	brownout map[string]time.Duration

	defaultLatency   time.Duration
	defaultBandwidth float64

	stats Stats

	// Observability handles (nil-safe; SetRecorder fills them in).
	rec        *obs.Recorder
	cSent      *obs.Counter
	cDelivered *obs.Counter
	cDropped   *obs.Counter
	cBytes     *obs.Counter
	cDups      *obs.Counter
	cParts     *obs.Counter
	cDedup     *obs.Counter
	// fabric links this network into a multi-partition address space; nil
	// for a standalone (single-scheduler) network. part is this network's
	// partition index within the fabric's engine.
	fabric *Fabric
	part   int

	// rpcMetrics caches the per-method RPC series handles so the hot call
	// path resolves each method's series once instead of rebuilding the
	// label key on every call.
	rpcMetrics map[string]*rpcMethodMetrics
	// partSpans holds open partition-window spans, keyed by the pair or
	// machine the window covers, so Heal/Rejoin can close them.
	partSpans map[string]*obs.Span
}

// rpcMethodMetrics bundles the pre-resolved series for one RPC method.
type rpcMethodMetrics struct {
	latency   *obs.Histogram
	timeouts  *obs.Counter
	retries   *obs.Counter
	exhausted *obs.Counter
}

// methodMetrics returns (resolving on first use) the cached series handles
// for method. Handles are nil-safe, so this works with no recorder bound.
func (n *Network) methodMetrics(method string) *rpcMethodMetrics {
	if m, ok := n.rpcMetrics[method]; ok {
		return m
	}
	m := &rpcMethodMetrics{
		latency:   n.rec.Histogram("simnet", "rpc_seconds", obs.L("method", method)),
		timeouts:  n.rec.Counter("simnet", "rpc_timeouts_total", obs.L("method", method)),
		retries:   n.rec.Counter("simnet", "rpc_retry_attempts_total", obs.L("method", method)),
		exhausted: n.rec.Counter("simnet", "rpc_retry_exhausted_total", obs.L("method", method)),
	}
	if n.rpcMetrics == nil {
		n.rpcMetrics = make(map[string]*rpcMethodMetrics)
	}
	n.rpcMetrics[method] = m
	return m
}

// SetRecorder points the network's instrumentation at a run Recorder:
// send/deliver/drop/byte counters, duplicate deliveries, and partition
// windows as spans on the "net" track (machine-level cuts and isolations
// open a span closed by the matching heal/rejoin).
func (n *Network) SetRecorder(rec *obs.Recorder) {
	n.rec = rec
	n.cSent = rec.Counter("simnet", "msgs_sent_total")
	n.cDelivered = rec.Counter("simnet", "msgs_delivered_total")
	n.cDropped = rec.Counter("simnet", "msgs_dropped_total")
	n.cBytes = rec.Counter("simnet", "bytes_total")
	n.cDups = rec.Counter("simnet", "dup_deliveries_total")
	n.cParts = rec.Counter("simnet", "partitions_total")
	n.cDedup = rec.Counter("simnet", "rpc_dedup_hits_total")
	n.rpcMetrics = make(map[string]*rpcMethodMetrics)
}

// openPartition opens (or replaces) a partition-window span.
func (n *Network) openPartition(key, name string) {
	if n.rec == nil {
		return
	}
	if n.partSpans == nil {
		n.partSpans = make(map[string]*obs.Span)
	}
	if _, open := n.partSpans[key]; open {
		return
	}
	n.cParts.Inc()
	n.partSpans[key] = n.rec.Begin("simnet", name, "partitions", obs.L("pair", key))
}

// closePartition ends the window span opened for key, if any.
func (n *Network) closePartition(key string) {
	if sp, ok := n.partSpans[key]; ok {
		sp.End()
		delete(n.partSpans, key)
	}
}

// Option configures a Network.
type Option func(*Network)

// WithLatency sets the default one-way latency for links without an explicit
// override. The default is 200µs (same-cluster datacenter RTT ≈ 0.4ms).
func WithLatency(d time.Duration) Option {
	return func(n *Network) { n.defaultLatency = d }
}

// WithBandwidth sets the default link bandwidth in bytes/sec (0 = infinite).
// The default models a 1GbE NIC (125e6 bytes/sec), matching the paper's
// datacenter setting.
func WithBandwidth(bytesPerSec float64) Option {
	return func(n *Network) { n.defaultBandwidth = bytesPerSec }
}

// New creates an empty network on the given scheduler.
func New(sched *simtime.Scheduler, opts ...Option) *Network {
	n := &Network{
		sched:            sched,
		nodes:            make(map[string]*Node),
		links:            make(map[linkKey]*linkState),
		machines:         make(map[string]string),
		machLinks:        make(map[linkKey]*machLink),
		isolatedMach:     make(map[string]bool),
		oneWayCuts:       make(map[linkKey]bool),
		brownout:         make(map[string]time.Duration),
		defaultLatency:   200 * time.Microsecond,
		defaultBandwidth: 125e6,
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Scheduler returns the scheduler the network runs on.
func (n *Network) Scheduler() *simtime.Scheduler { return n.sched }

// Node registers (or returns the existing) node with the given name.
func (n *Network) Node(name string) *Node {
	if nd, ok := n.nodes[name]; ok {
		return nd
	}
	nd := &Node{name: name, net: n, up: true}
	n.nodes[name] = nd
	if n.fabric != nil {
		n.fabric.register(name, n.part)
	}
	return nd
}

// Lookup returns the named node, or nil if unregistered.
func (n *Network) Lookup(name string) *Node { return n.nodes[name] }

// Stats returns a snapshot of network counters.
func (n *Network) Stats() Stats { return n.stats }

func (n *Network) link(from, to string) *linkState {
	k := linkKey{from, to}
	if l, ok := n.links[k]; ok {
		return l
	}
	l := &linkState{latency: n.defaultLatency, bandwidth: n.defaultBandwidth}
	n.links[k] = l
	return l
}

// SetLatency overrides the one-way latency in both directions between a and b.
func (n *Network) SetLatency(a, b string, d time.Duration) {
	n.link(a, b).latency = d
	n.link(b, a).latency = d
}

// SetLossRate sets the message drop probability in both directions.
func (n *Network) SetLossRate(a, b string, p float64) {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("simnet: loss rate %v out of [0,1]", p))
	}
	n.link(a, b).lossRate = p
	n.link(b, a).lossRate = p
}

// SetDupRate sets the probability that a message is delivered twice in
// both directions (retransmission storms; consensus must be idempotent).
func (n *Network) SetDupRate(a, b string, p float64) {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("simnet: dup rate %v out of [0,1]", p))
	}
	n.link(a, b).dupRate = p
	n.link(b, a).dupRate = p
}

// Cut severs the link in both directions (a network partition between the
// pair). Messages sent while cut are dropped.
func (n *Network) Cut(a, b string) {
	n.link(a, b).cut = true
	n.link(b, a).cut = true
}

// Heal restores a cut link.
func (n *Network) Heal(a, b string) {
	n.link(a, b).cut = false
	n.link(b, a).cut = false
}

// Isolate cuts every link touching name (both directions).
func (n *Network) Isolate(name string) {
	for other := range n.nodes {
		if other != name {
			n.Cut(name, other)
		}
	}
}

// Rejoin heals every link touching name.
func (n *Network) Rejoin(name string) {
	for other := range n.nodes {
		if other != name {
			n.Heal(name, other)
		}
	}
}

// Colocate places a node on a physical machine. Messages between nodes of
// the same machine are loopback: zero latency and no network accounting
// (the process-to-process path inside one host).
func (n *Network) Colocate(node, machine string) {
	n.machines[node] = machine
	if n.fabric != nil {
		n.fabric.colocate(node, machine)
	}
}

func (n *Network) machLink(a, b string) *machLink {
	if a > b {
		a, b = b, a // one undirected record per machine pair
	}
	k := linkKey{a, b}
	if l, ok := n.machLinks[k]; ok {
		return l
	}
	l := &machLink{}
	n.machLinks[k] = l
	return l
}

// lookupMachLink returns the fault record for a machine pair without
// allocating one ("" or same-machine pairs have none).
func (n *Network) lookupMachLink(a, b string) *machLink {
	if a == "" || b == "" || a == b {
		return nil
	}
	if a > b {
		a, b = b, a
	}
	return n.machLinks[linkKey{a, b}]
}

// CutMachines severs all traffic between two machines (in both directions):
// every node placed on a spans every node placed on b, present and future.
func (n *Network) CutMachines(a, b string) {
	n.machLink(a, b).cut = true
	if a > b {
		a, b = b, a
	}
	n.openPartition(a+"|"+b, "partition")
}

// HealMachines restores a machine-pair cut.
func (n *Network) HealMachines(a, b string) {
	n.machLink(a, b).cut = false
	if a > b {
		a, b = b, a
	}
	n.closePartition(a + "|" + b)
}

// SetMachineLossRate sets the drop probability for messages between two
// machines (a flaky inter-rack cable), layered on top of per-node links.
func (n *Network) SetMachineLossRate(a, b string, p float64) {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("simnet: machine loss rate %v out of [0,1]", p))
	}
	n.machLink(a, b).lossRate = p
}

// SetMachineDupRate sets the duplicate-delivery probability between two
// machines.
func (n *Network) SetMachineDupRate(a, b string, p float64) {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("simnet: machine dup rate %v out of [0,1]", p))
	}
	n.machLink(a, b).dupRate = p
}

// CutMachinesOneWay drops traffic from machine `from` to machine `to` while
// leaving the reverse direction intact — an asymmetric partition. A host
// behind such a cut can still push heartbeats out (or receive them) without
// the return path working, which is exactly the failure mode symmetric
// Cut/CutMachines can never produce.
func (n *Network) CutMachinesOneWay(from, to string) {
	n.oneWayCuts[linkKey{from, to}] = true
	n.openPartition(from+">"+to, "one-way-partition")
}

// HealMachinesOneWay restores the directed cut.
func (n *Network) HealMachinesOneWay(from, to string) {
	delete(n.oneWayCuts, linkKey{from, to})
	n.closePartition(from + ">" + to)
}

// SetMachineBrownout inflates every non-loopback message into or out of the
// machine by extra (0 clears it): RPC service-time inflation without any
// drop, the host-brownout gray failure. Both endpoints browned out pay both
// penalties.
func (n *Network) SetMachineBrownout(machine string, extra time.Duration) {
	if extra <= 0 {
		delete(n.brownout, machine)
		return
	}
	n.brownout[machine] = extra
}

// MachineBrownout returns the machine's current brownout penalty.
func (n *Network) MachineBrownout(machine string) time.Duration { return n.brownout[machine] }

// IsolateMachine unplugs a machine's uplink: all messages to or from any
// node on it are dropped. Loopback traffic between its own nodes still
// flows, so colocated processes (a master and its coord replica) keep
// talking — exactly the asymmetry real partitions have.
func (n *Network) IsolateMachine(machine string) {
	n.isolatedMach[machine] = true
	n.openPartition("isolate:"+machine, "isolation")
}

// RejoinMachine plugs the uplink back in.
func (n *Network) RejoinMachine(machine string) {
	delete(n.isolatedMach, machine)
	n.closePartition("isolate:" + machine)
}

// Machine returns the machine a node is placed on ("" if unassigned).
func (n *Network) Machine(node string) string { return n.machines[node] }

// sameMachine reports whether two nodes are loopback-local.
func (n *Network) sameMachine(a, b string) bool {
	if a == b {
		return true
	}
	ma, ok := n.machines[a]
	if !ok {
		return false
	}
	return ma == n.machines[b]
}

// Send delivers msg after the link's latency plus serialization time. It is a
// no-op (counted as a drop) if either endpoint is unknown or down, the link
// is cut, or the loss dice say so. Local sends (same node or same machine)
// are delivered with zero latency on the next event.
func (n *Network) Send(msg Message) {
	n.stats.Sent++
	n.cSent.Inc()
	dst, ok := n.nodes[msg.To]
	if !ok {
		// Not local: a fabric-connected network tries the cross-partition
		// path before counting the destination as unknown.
		if n.fabric != nil && n.fabric.forward(n, msg) {
			return
		}
		n.stats.Dropped++
		n.cDropped.Inc()
		return
	}
	local := n.sameMachine(msg.From, msg.To)
	var delay time.Duration
	dup := false
	if !local {
		ma, mb := n.machines[msg.From], n.machines[msg.To]
		if (ma != "" && n.isolatedMach[ma]) || (mb != "" && n.isolatedMach[mb]) {
			n.stats.Dropped++
			n.cDropped.Inc()
			return
		}
		if ma != "" && mb != "" && n.oneWayCuts[linkKey{ma, mb}] {
			n.stats.Dropped++
			n.cDropped.Inc()
			return
		}
		if ml := n.lookupMachLink(ma, mb); ml != nil {
			if ml.cut {
				n.stats.Dropped++
				n.cDropped.Inc()
				return
			}
			if ml.lossRate > 0 && n.sched.Rand().Float64() < ml.lossRate {
				n.stats.Dropped++
				n.cDropped.Inc()
				return
			}
			if ml.dupRate > 0 && n.sched.Rand().Float64() < ml.dupRate {
				dup = true
			}
		}
		l := n.link(msg.From, msg.To)
		if l.cut {
			n.stats.Dropped++
			n.cDropped.Inc()
			return
		}
		if l.lossRate > 0 && n.sched.Rand().Float64() < l.lossRate {
			n.stats.Dropped++
			n.cDropped.Inc()
			return
		}
		if l.dupRate > 0 && n.sched.Rand().Float64() < l.dupRate {
			dup = true
		}
		delay = l.latency
		if l.bandwidth > 0 && msg.Size > 0 {
			delay += time.Duration(float64(msg.Size) / l.bandwidth * float64(time.Second))
		}
		if ma != "" {
			delay += n.brownout[ma]
		}
		if mb != "" {
			delay += n.brownout[mb]
		}
	}
	if dup {
		// Deliver a copy a little later (retransmission).
		n.cDups.Inc()
		jitter := delay + time.Duration(n.sched.Rand().Int63n(int64(time.Millisecond)))
		n.deliver(msg, dst, jitter, local)
	}
	n.deliver(msg, dst, delay, local)
}

func (n *Network) deliver(msg Message, dst *Node, delay time.Duration, local bool) {
	// FireAfter rather than After: the delivery event has no owner to cancel
	// it, so the scheduler may pool it — deliveries are the hottest timer
	// source in any simulation.
	n.sched.FireAfter(delay, func() {
		if !dst.up || dst.handler == nil {
			n.stats.Dropped++
			n.cDropped.Inc()
			return
		}
		n.stats.Delivered++
		n.cDelivered.Inc()
		if !local {
			n.stats.Bytes += uint64(msg.Size)
			n.cBytes.Add(uint64(msg.Size))
		}
		dst.handler(msg)
	})
}
