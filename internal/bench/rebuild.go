package bench

import (
	"fmt"
	"time"

	"ustore/internal/core"
	"ustore/internal/fabric"
)

// AblateRebuild implements §IV-E's proposed extension: when a failed
// disk's data must be re-replicated from a surviving replica to a fresh
// disk, the fabric can first switch the *source* disk to the rebuilding
// host, turning a network copy into a host-local one. The experiment runs
// a real copy through the cluster both ways and reports the network bytes
// and elapsed time.
func AblateRebuild() *Table {
	t := &Table{
		ID:     "ablate-rebuild",
		Title:  "Replica rebuild: network copy vs fabric-offloaded local copy (512MB)",
		Header: []string{"Strategy", "Network bytes", "Elapsed"},
		Notes: []string{
			"§IV-E: \"the involved disk can be switched to one or a small set of servers in order to reduce network load\"",
		},
	}
	for _, offload := range []bool{false, true} {
		bytes, took, err := measureRebuild(offload)
		name := "network copy (source stays put)"
		if offload {
			name = "fabric offload (source switched first)"
		}
		if err != nil {
			t.Rows = append(t.Rows, []string{name, "err: " + err.Error(), ""})
			continue
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%.0f MB", float64(bytes)/1e6), took.Truncate(10 * time.Millisecond).String(),
		})
	}
	return t
}

// measureRebuild copies copySize bytes from a source space (host A) into a
// destination space (host B) with a copy agent running on host B. With
// offload, the source disk's group is switched to host B first.
func measureRebuild(offload bool) (netBytes uint64, took time.Duration, err error) {
	const (
		copySize  = 512 << 20
		chunkSize = 4 << 20
	)
	cfg := core.DefaultConfig()
	c, err := core.NewCluster(cfg)
	if err != nil {
		return 0, 0, err
	}
	c.Settle(10 * time.Second)
	m := c.ActiveMaster()
	if m == nil {
		return 0, 0, fmt.Errorf("no active master")
	}

	// Source replica on h1 (client hinted to h1), rebuild target on h4.
	srcClient := c.Client("h1-src", "replica-src")
	dstHost := "h4"
	agent := c.Client(dstHost+"-agent", "rebuild-agent")

	var src, dst core.AllocateReply
	var fail error
	srcClient.Allocate(copySize+chunkSize, func(rep core.AllocateReply, err error) { src, fail = rep, err })
	c.Settle(3 * time.Second)
	if fail != nil {
		return 0, 0, fmt.Errorf("allocating source: %w", fail)
	}
	agent.Allocate(copySize+chunkSize, func(rep core.AllocateReply, err error) { dst, fail = rep, err })
	c.Settle(3 * time.Second)
	if fail != nil {
		return 0, 0, fmt.Errorf("allocating destination: %w", fail)
	}
	if dst.Host != dstHost {
		return 0, 0, fmt.Errorf("destination landed on %s, want %s", dst.Host, dstHost)
	}

	if offload {
		// Switch the source disk's co-moving group to the rebuild host.
		cmd := core.ExecuteArgs{Force: true}
		for _, g := range c.Fabric.CoMovingGroups() {
			has := false
			for _, d := range g {
				if string(d) == src.DiskID {
					has = true
				}
			}
			if has {
				for _, d := range g {
					cmd.Pairs = append(cmd.Pairs, fabric.DiskHost{Disk: d, Host: dstHost})
				}
			}
		}
		var execErr error = fmt.Errorf("pending")
		m.ExecuteTopology(cmd, func(err error) { execErr = err })
		c.Settle(15 * time.Second)
		if execErr != nil {
			return 0, 0, fmt.Errorf("offload switch: %w", execErr)
		}
	}

	for _, space := range []core.SpaceID{src.Space, dst.Space} {
		space := space
		agent.Mount(space, func(err error) { fail = err })
		c.Settle(3 * time.Second)
		if fail != nil {
			return 0, 0, fmt.Errorf("mounting %s: %w", space, fail)
		}
	}

	startBytes := c.Net.Stats().Bytes
	start := c.Sched.Now()
	copyDone := false
	var doneAt time.Duration
	var copyErr error
	var copyChunk func(off int64)
	copyChunk = func(off int64) {
		if off >= copySize {
			copyDone = true
			doneAt = c.Sched.Now()
			return
		}
		agent.Read(src.Space, off, chunkSize, func(data []byte, err error) {
			if err != nil {
				copyErr = err
				copyDone = true
				return
			}
			agent.Write(dst.Space, off, data, func(err error) {
				if err != nil {
					copyErr = err
					copyDone = true
					return
				}
				copyChunk(off + chunkSize)
			})
		})
	}
	copyChunk(0)
	c.Settle(30 * time.Minute)
	if !copyDone {
		return 0, 0, fmt.Errorf("copy incomplete")
	}
	if copyErr != nil {
		return 0, 0, fmt.Errorf("copy: %w", copyErr)
	}
	return c.Net.Stats().Bytes - startBytes, doneAt - start, nil
}
