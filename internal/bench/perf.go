package bench

import (
	"time"

	"ustore/internal/cost"
	"ustore/internal/disk"
	"ustore/internal/fabric"
	"ustore/internal/power"
	"ustore/internal/simtime"
	"ustore/internal/usb"
	"ustore/internal/workload"
)

// TableI regenerates the §VI cost comparison.
func TableI() *Table {
	t := &Table{
		ID:     "table1",
		Title:  "CapEx of 10PB raw storage (Table I)",
		Header: []string{"System", "Media", "CapEx", "AttEx"},
		Notes: []string{
			"paper: UStore $456k/$115k; 24% cheaper CapEx and 55% cheaper AttEx than BACKBLAZE",
		},
	}
	for _, rep := range cost.TableI() {
		att := rep.AttEx.String()
		if rep.Solution == "Sun StorageTek SL150" {
			att = "-"
		}
		t.Rows = append(t.Rows, []string{rep.Solution, rep.Media, rep.CapEx.String(), att})
	}
	return t
}

// paperTableII holds the paper's measured values for side-by-side output,
// in workload.PaperWorkloads order.
var paperTableII = map[disk.Interconnect][12]float64{
	disk.AttachSATA:   {13378, 8066, 11211, 191.9, 105.4, 86.9, 184.8, 105.7, 180.2, 129.1, 78.7, 57.5},
	disk.AttachUSB:    {5380, 4294, 6166, 189.0, 105.2, 85.2, 185.8, 119.7, 184.0, 147.9, 95.5, 79.3},
	disk.AttachFabric: {5381, 4595, 6181, 189.2, 106.0, 87.9, 185.8, 118.6, 184.9, 147.7, 97.7, 79.9},
}

// TableIICell measures one Table II cell with the closed-loop runner:
// 4KB workloads report IO/s, 4MB workloads MB/s.
func TableIICell(ic disk.Interconnect, spec workload.Spec) float64 {
	s := simtime.NewScheduler(1)
	d := disk.New(s, "d0", disk.DT01ACA300(), ic)
	d.SpinUp()
	s.Run()
	res := workload.RunClosedLoop(s, []*disk.Disk{d}, spec, 20*time.Second)
	if spec.Size <= 256<<10 {
		return res.TotalIOPS()
	}
	return res.TotalMBps()
}

// TableII regenerates the single-disk performance table (measured vs
// paper for every interconnect and workload).
func TableII() *Table {
	t := &Table{
		ID:     "table2",
		Title:  "One-disk performance, 3 connection types (Table II)",
		Header: []string{"Workload", "Conn", "measured", "paper"},
		Notes: []string{
			"4KB rows in IO/s, 4MB rows in MB/s; closed-loop Iometer-style worker, QD=1",
		},
	}
	for i, spec := range workload.PaperWorkloads() {
		for _, ic := range []disk.Interconnect{disk.AttachSATA, disk.AttachUSB, disk.AttachFabric} {
			got := TableIICell(ic, spec)
			t.Rows = append(t.Rows, []string{
				spec.String(), ic.String(), Cell(got), Cell(paperTableII[ic][i]),
			})
		}
	}
	return t
}

// newFlowRig builds a prototype fabric plus a flow simulator.
func newFlowRig() (*fabric.Fabric, *usb.FlowSim, error) {
	f, err := fabric.Prototype()
	if err != nil {
		return nil, nil, err
	}
	s := simtime.NewScheduler(1)
	fs := usb.NewFlowSim(
		func() time.Duration { return s.Now() },
		func(d time.Duration, fn func()) func() { ev := s.After(d, fn); return ev.Cancel })
	workload.FabricResources(fs, f)
	return f, fs, nil
}

// gatherDisksOnHost moves leaf-hub groups until n disks sit on host.
func gatherDisksOnHost(f *fabric.Fabric, host string, n int) ([]fabric.NodeID, error) {
	var out []fabric.NodeID
	for g := 0; len(out) < n; g++ {
		var pairs []fabric.DiskHost
		for i := 0; i < 4; i++ {
			pairs = append(pairs, fabric.DiskHost{Disk: fabric.DiskID(g*4 + i), Host: host})
		}
		turns, err := f.ForcedTurns(pairs)
		if err != nil {
			return nil, err
		}
		for _, st := range turns {
			if err := f.SetSwitch(st.Switch, st.Sel); err != nil {
				return nil, err
			}
		}
		for i := 0; i < 4 && len(out) < n; i++ {
			out = append(out, fabric.DiskID(g*4+i))
		}
	}
	return out, nil
}

// Figure5Point computes one Figure 5 series point: aggregate MB/s of n
// disks on one host running spec.
func Figure5Point(spec workload.Spec, n int) (float64, error) {
	f, fs, err := newFlowRig()
	if err != nil {
		return 0, err
	}
	host := f.Hosts()[0]
	disks, err := gatherDisksOnHost(f, host, n)
	if err != nil {
		return 0, err
	}
	res, err := workload.RunFluid(fs, f, disk.DT01ACA300(), disks, spec)
	if err != nil {
		return 0, err
	}
	return res.TotalMBps(), nil
}

// Figure5 regenerates the multi-disk scaling figure: aggregate throughput
// for 1/2/4/8/12 disks on one host across the paper's workload series.
func Figure5() *Table {
	t := &Table{
		ID:     "fig5",
		Title:  "Aggregate throughput vs number of disks on one host (Figure 5)",
		Header: []string{"Workload", "1", "2", "4", "8", "12"},
		Notes: []string{
			"MB/s; paper: 4K-SR saturates ~8 disks (root cmd rate), 4M series saturates ~2 disks at ~300MB/s, 4K-RR scales linearly",
		},
	}
	series := []workload.Spec{
		{Size: 4 << 10, ReadPct: 100, Pattern: disk.Sequential},
		{Size: 4 << 10, ReadPct: 0, Pattern: disk.Sequential},
		{Size: 4 << 10, ReadPct: 100, Pattern: disk.Random},
		{Size: 4 << 20, ReadPct: 100, Pattern: disk.Sequential},
		{Size: 4 << 20, ReadPct: 0, Pattern: disk.Sequential},
		{Size: 4 << 20, ReadPct: 100, Pattern: disk.Random},
	}
	counts := []int{1, 2, 4, 8, 12}
	for _, spec := range series {
		row := []string{spec.String()}
		for _, n := range counts {
			v, err := Figure5Point(spec, n)
			if err != nil {
				row = append(row, "err")
				continue
			}
			row = append(row, Cell(v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// DuplexHeadline reproduces the §VII-A duplex result: ~540 MB/s per port,
// ~2160 MB/s for the whole 4-host unit under 4MB half-read/half-write.
func DuplexHeadline() *Table {
	t := &Table{
		ID:     "duplex",
		Title:  "Duplex aggregate throughput (§VII-A headline)",
		Header: []string{"Scope", "measured MB/s", "paper MB/s"},
	}
	f, fs, err := newFlowRig()
	if err != nil {
		t.Notes = append(t.Notes, "error: "+err.Error())
		return t
	}
	// The paper's methodology: half the disks are pure readers, the other
	// half pure writers, so both directions of every port fill.
	res, err := workload.RunFluidSplit(fs, f, disk.DT01ACA300(), f.Disks(), 4<<20)
	if err != nil {
		t.Notes = append(t.Notes, "error: "+err.Error())
		return t
	}
	t.Rows = append(t.Rows,
		[]string{"per port (half read, half write)", Cell(res.TotalMBps() / 4), "540"},
		[]string{"deploy unit (4 ports)", Cell(res.TotalMBps()), "2160"},
	)
	return t
}

// TableIII regenerates the one-disk power table.
func TableIII() *Table {
	p := disk.DT01ACA300()
	specDown, specIdle, specActive := disk.SpecSheet()
	t := &Table{
		ID:     "table3",
		Title:  "Power of one disk (Table III, watts)",
		Header: []string{"Mode", "Spin Down", "Idle", "Read/Write"},
	}
	t.Rows = append(t.Rows,
		[]string{"Specs", Cell(specDown), Cell(specIdle), Cell(specActive)},
		[]string{"SATA", Cell(p.Power(disk.StateSpunDown)), Cell(p.Power(disk.StateIdle)), Cell(p.Power(disk.StateActive))},
		[]string{"USB bridge",
			Cell(power.DiskWithBridgeWatts(p, disk.StateSpunDown)),
			Cell(power.DiskWithBridgeWatts(p, disk.StateIdle)),
			Cell(power.DiskWithBridgeWatts(p, disk.StateActive))},
	)
	t.Notes = append(t.Notes, "paper: SATA 0.05/4.71/6.66, USB bridge 1.56/5.76/7.56")
	return t
}

// TableIV regenerates the hub power curve.
func TableIV() *Table {
	t := &Table{
		ID:     "table4",
		Title:  "Hub power vs connected disks (Table IV, watts)",
		Header: []string{"Disk Count", "0", "1", "2", "3", "4"},
	}
	row := []string{"Power"}
	for n := 0; n <= 4; n++ {
		row = append(row, Cell(power.HubWatts(n)))
	}
	t.Rows = append(t.Rows, row)
	t.Notes = append(t.Notes, "paper: 0.21 1.06 1.23 1.47 1.67")
	return t
}

// TableV regenerates the solution power comparison at 16 disks.
func TableV() *Table {
	t := &Table{
		ID:     "table5",
		Title:  "Solution power at 16 disks (Table V, watts)",
		Header: []string{"State", "DD860/ES30", "Pergamum", "UStore"},
		Notes:  []string{"paper: spinning 222.5/193.5/166.8, powered off 83.5/28.9/22.1"},
	}
	p := disk.DT01ACA300()
	f, err := fabric.Prototype()
	if err != nil {
		t.Notes = append(t.Notes, "error: "+err.Error())
		return t
	}
	mk := func(st disk.State) map[fabric.NodeID]disk.State {
		m := make(map[fabric.NodeID]disk.State)
		for _, d := range f.Disks() {
			m[d] = st
		}
		return m
	}
	uSpin := power.UnitPower(f, p, mk(disk.StateActive), 6, 1).WallW
	uOff := power.UnitPower(f, p, mk(disk.StatePoweredOff), 6, 1).WallW
	t.Rows = append(t.Rows,
		[]string{"Spinning", Cell(power.DD860Watts(16, true)), Cell(power.PergamumWatts(p, 16, true)), Cell(uSpin)},
		[]string{"Powered off", Cell(power.DD860Watts(16, false)), Cell(power.PergamumWatts(p, 16, false)), Cell(uOff)},
	)
	return t
}
