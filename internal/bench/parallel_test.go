package bench

import "testing"

// TestFailoverParallelMatchesSequential: the failover table assembled from
// parallel trials must render byte-identical to the sequential one — each
// trial is its own deterministic cluster and runner.Map stores rows by
// index. Figure6 rides the same machinery, so failover (the cheaper
// experiment) stands in for both here.
func TestFailoverParallelMatchesSequential(t *testing.T) {
	seq := Failover(nil, 2, 1)
	par := Failover(nil, 2, 4)
	if a, b := seq.Render(), par.Render(); a != b {
		t.Fatalf("failover tables differ:\n--- sequential\n%s--- parallel\n%s", a, b)
	}
	if len(seq.Rows) != 2 {
		t.Fatalf("trials not honored: %d rows", len(seq.Rows))
	}
}

// TestFailoverDefaultTrials: a non-positive trial count falls back to the
// historical three-trial table.
func TestFailoverDefaultTrials(t *testing.T) {
	tab := Failover(nil, 0, 1)
	if len(tab.Rows) != DefaultTrials {
		t.Fatalf("got %d rows, want %d", len(tab.Rows), DefaultTrials)
	}
}
