package bench

import (
	"fmt"

	"ustore/internal/cost"
	"ustore/internal/disk"
	"ustore/internal/fabric"
	"ustore/internal/power"
	"ustore/internal/workload"
)

// FidelityCheck pins one paper-reproduction number. Want is the value
// EXPERIMENTS.md commits to (what CI enforces); Paper is the paper's own
// published figure, kept alongside so a drifting simulation that still
// passes its band can be compared against the original. Tol is the
// fractional band around Want: |measured - Want| <= Tol * |Want| (for
// Want == 0 it is read as an absolute band).
//
// The bands are deliberately wider than the simulation's determinism
// needs — every Measure func is a seeded simulation that reproduces
// exactly today — so a failure always means a real behavioral change in
// the modeled system, not noise. Tolerances document how much drift each
// number can absorb before the reproduction claim in EXPERIMENTS.md stops
// being honest: calibrated numbers (costs, Table II pure streams) get
// tight 2% bands; emergent ones (saturation points, failover time) get
// the band EXPERIMENTS.md argues for.
type FidelityCheck struct {
	ID      string
	What    string
	Paper   float64
	Want    float64
	Tol     float64
	Measure func() (float64, error)
}

// costRow returns one solution's Table I row.
func costRow(name string) (cost.Report, error) {
	for _, rep := range cost.TableI() {
		if rep.Solution == name {
			return rep, nil
		}
	}
	return cost.Report{}, fmt.Errorf("no Table I row for %q", name)
}

// FidelityChecks returns the paper-fidelity golden suite: every headline
// number EXPERIMENTS.md reports, with the tolerance band CI enforces.
// TestFidelity runs them all.
func FidelityChecks() []FidelityCheck {
	spec4kSR := workload.Spec{Size: 4 << 10, ReadPct: 100, Pattern: disk.Sequential}
	spec4mSR := workload.Spec{Size: 4 << 20, ReadPct: 100, Pattern: disk.Sequential}
	return []FidelityCheck{
		{
			ID: "table1-ustore-capex", What: "Table I: UStore CapEx for 10PB ($k)",
			Paper: 456, Want: 454, Tol: 0.02,
			Measure: func() (float64, error) {
				rep, err := costRow("UStore")
				return float64(rep.CapEx) / 1000, err
			},
		},
		{
			ID: "table1-ustore-attex", What: "Table I: UStore AttEx for 10PB ($k)",
			Paper: 115, Want: 115, Tol: 0.02,
			Measure: func() (float64, error) {
				rep, err := costRow("UStore")
				return float64(rep.AttEx) / 1000, err
			},
		},
		{
			ID: "table1-capex-savings", What: "Table I: UStore CapEx savings vs Backblaze (%)",
			Paper: 24, Want: 24.1, Tol: 0.05,
			Measure: func() (float64, error) {
				u, err := costRow("UStore")
				if err != nil {
					return 0, err
				}
				b, err := costRow("BACKBLAZE")
				return 100 * cost.Savings(u.CapEx, b.CapEx), err
			},
		},
		{
			ID: "table2-4ksr-sata", What: "Table II: 4K-SR over SATA (IO/s)",
			Paper: 13378, Want: 13319, Tol: 0.02,
			Measure: func() (float64, error) {
				return TableIICell(disk.AttachSATA, spec4kSR), nil
			},
		},
		{
			ID: "table2-4ksr-usb", What: "Table II: 4K-SR over the USB bridge (IO/s)",
			Paper: 5380, Want: 5374, Tol: 0.02,
			Measure: func() (float64, error) {
				return TableIICell(disk.AttachUSB, spec4kSR), nil
			},
		},
		{
			ID: "table2-4msr-sata", What: "Table II: 4M-SR over SATA (MB/s)",
			Paper: 184.8, Want: 185.0, Tol: 0.02,
			Measure: func() (float64, error) {
				return TableIICell(disk.AttachSATA, spec4mSR), nil
			},
		},
		{
			ID: "fig5-4ksr-saturation", What: "Figure 5: 4K-SR aggregate at 12 disks saturates at the host command rate (MB/s)",
			Paper: 0, Want: 178.2, Tol: 0.05,
			Measure: func() (float64, error) { return Figure5Point(spec4kSR, 12) },
		},
		{
			ID: "fig5-4msr-2disk-cap", What: "Figure 5: 4M-SR hits the ~300 MB/s root-port cap at 2 disks (MB/s)",
			Paper: 300, Want: 300, Tol: 0.02,
			Measure: func() (float64, error) { return Figure5Point(spec4mSR, 2) },
		},
		{
			ID: "duplex-per-port", What: "§VII-A: duplex throughput per port, half readers half writers (MB/s)",
			Paper: 540, Want: 540, Tol: 0.02,
			Measure: func() (float64, error) {
				f, fs, err := newFlowRig()
				if err != nil {
					return 0, err
				}
				res, err := workload.RunFluidSplit(fs, f, disk.DT01ACA300(), f.Disks(), 4<<20)
				if err != nil {
					return 0, err
				}
				return res.TotalMBps() / 4, nil
			},
		},
		{
			ID: "fig6-part1-12disks", What: "Figure 6: part 1 (reject -> recognized) at 12 switched disks (s)",
			Paper: 0, Want: 4.85, Tol: 0.05,
			Measure: func() (float64, error) {
				p, err := MeasureSwitch(12, 1, nil)
				return p.Part1.Seconds(), err
			},
		},
		{
			ID: "fig6-part2-flat", What: "Figure 6: part 2 (target setup) stays flat, 12-disk over 1-disk ratio",
			Paper: 1, Want: 1, Tol: 0.05,
			Measure: func() (float64, error) {
				p1, err := MeasureSwitch(1, 1, nil)
				if err != nil {
					return 0, err
				}
				p12, err := MeasureSwitch(12, 1, nil)
				if err != nil {
					return 0, err
				}
				return p12.Part2.Seconds() / p1.Part2.Seconds(), nil
			},
		},
		{
			ID: "failover-recovery", What: "§VII: host-crash to all-clients-recovered (s)",
			Paper: 5.8, Want: 6.3, Tol: 0.10,
			Measure: func() (float64, error) {
				took, err := MeasureFailover(1, nil)
				return took.Seconds(), err
			},
		},
		{
			ID: "table5-ustore-spinning", What: "Table V: UStore unit wall power, 16 disks spinning (W)",
			Paper: 166.8, Want: 165.4, Tol: 0.02,
			Measure: func() (float64, error) { return unitWallWatts(disk.StateActive) },
		},
		{
			ID: "table5-ustore-off", What: "Table V: UStore unit wall power, 16 disks powered off (W)",
			Paper: 22.1, Want: 21.2, Tol: 0.05,
			Measure: func() (float64, error) { return unitWallWatts(disk.StatePoweredOff) },
		},
	}
}

// unitWallWatts computes Table V's UStore column: wall power of the
// 16-disk prototype unit with every disk in state st.
func unitWallWatts(st disk.State) (float64, error) {
	f, err := fabric.Prototype()
	if err != nil {
		return 0, err
	}
	states := make(map[fabric.NodeID]disk.State)
	for _, d := range f.Disks() {
		states[d] = st
	}
	return power.UnitPower(f, disk.DT01ACA300(), states, 6, 1).WallW, nil
}
