package bench

import (
	"math"
	"testing"
)

// TestFidelity is the paper-fidelity golden suite: it measures every
// headline number EXPERIMENTS.md commits to and fails if any drifts out
// of its documented tolerance band. Because every measurement is a seeded
// deterministic simulation, a failure here is a real behavioral change in
// the modeled system — treat it as "EXPERIMENTS.md is now lying", and
// either fix the regression or re-justify the number in EXPERIMENTS.md
// and move the band.
func TestFidelity(t *testing.T) {
	checks := FidelityChecks()
	if len(checks) < 8 {
		t.Fatalf("fidelity suite shrank to %d checks (acceptance floor is 8)", len(checks))
	}
	seen := map[string]bool{}
	for _, c := range checks {
		c := c
		if c.ID == "" || c.Measure == nil || c.Tol <= 0 {
			t.Fatalf("malformed check %+v", c)
		}
		if seen[c.ID] {
			t.Fatalf("duplicate check ID %q", c.ID)
		}
		seen[c.ID] = true
		t.Run(c.ID, func(t *testing.T) {
			got, err := c.Measure()
			if err != nil {
				t.Fatalf("%s: %v", c.What, err)
			}
			band := c.Tol * math.Abs(c.Want)
			if c.Want == 0 {
				band = c.Tol
			}
			if math.Abs(got-c.Want) > band {
				t.Errorf("%s: measured %.4g, want %.4g +/- %.4g (paper: %.4g)",
					c.What, got, c.Want, band, c.Paper)
			} else {
				t.Logf("%s: measured %.4g (want %.4g +/- %.4g, paper %.4g)",
					c.What, got, c.Want, band, c.Paper)
			}
		})
	}
}
