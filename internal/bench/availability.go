package bench

import (
	"fmt"
	"time"

	"ustore/internal/core"
	"ustore/internal/faults"
)

// AblateAvailability runs an accelerated-aging soak: host crashes arrive
// with an exponential MTTF (compressed from the paper's 3.4 months so a
// simulable window sees several failures), crashed hosts reboot after 10
// minutes, and probe clients continuously read mounted spaces. The table
// reports observed availability and compares it with the single-tree
// alternative, where each crash pins the disks down for the whole repair.
func AblateAvailability() *Table {
	t := &Table{
		ID:     "ablate-availability",
		Title:  "Accelerated soak: 8h, host MTTF 2h, repair 10m (probe reads every 2s)",
		Header: []string{"Metric", "value"},
	}
	res, err := runAvailabilitySoak()
	if err != nil {
		t.Notes = append(t.Notes, "error: "+err.Error())
		return t
	}
	singleTreeUnavail := time.Duration(res.crashes) * 10 * time.Minute
	t.Rows = append(t.Rows,
		[]string{"host crashes injected", fmt.Sprint(res.crashes)},
		[]string{"probe failures (of probes)", fmt.Sprintf("%d / %d", res.failed, res.probes)},
		[]string{"UStore availability", fmt.Sprintf("%.4f%%", 100*(1-float64(res.failed)/float64(res.probes)))},
		[]string{"UStore unavailable time (approx)", (time.Duration(res.failed) * 2 * time.Second).String()},
		[]string{"single-tree unavailable time (same crashes)", singleTreeUnavail.String()},
	)
	t.Notes = append(t.Notes,
		"single tree: every crash takes its disks down for the full 10m repair; UStore: one failover per crash")
	return t
}

type soakResult struct {
	crashes int
	probes  int
	failed  int
}

func runAvailabilitySoak() (soakResult, error) {
	var res soakResult
	cfg := core.DefaultConfig()
	cfg.Seed = 77
	c, err := core.NewCluster(cfg)
	if err != nil {
		return res, err
	}
	c.Settle(10 * time.Second)
	if c.ActiveMaster() == nil {
		return res, fmt.Errorf("no active master")
	}

	// One mounted space per host.
	type probeTarget struct {
		space core.SpaceID
		cl    *core.ClientLib
	}
	var targets []probeTarget
	for i, h := range c.Fabric.Hosts() {
		cl := c.Client(fmt.Sprintf("%s-probe%d", h, i), fmt.Sprintf("probe-svc%d", i))
		var rep core.AllocateReply
		var fail error = fmt.Errorf("pending")
		cl.Allocate(1<<30, func(r core.AllocateReply, err error) { rep, fail = r, err })
		c.Settle(3 * time.Second)
		if fail != nil {
			return res, fail
		}
		cl.Mount(rep.Space, func(err error) { fail = err })
		c.Settle(3 * time.Second)
		if fail != nil {
			return res, fail
		}
		targets = append(targets, probeTarget{space: rep.Space, cl: cl})
	}

	// MTTF-driven host crashes with automatic reboot. The master quorum
	// is off-host, so only EndPoints/Controllers die.
	inj := faults.NewInjector(c.Sched, faults.Actions{
		CrashHost:   func(h string) { res.crashes++; c.CrashHost(h) },
		RestoreHost: func(h string) { c.RestoreHost(h) },
	}, c.Fabric.Hosts(), nil, nil)
	inj.HostMTTFOverride = 2 * time.Hour
	inj.HostRepair = 10 * time.Minute
	inj.Start()

	// Probes: every 2s, each target does a small read with a 2s budget.
	// A probe that does not complete in time counts as an unavailability
	// sample (the ClientLib's internal retries are the recovery path).
	probeTick := c.Sched.Every(2*time.Second, func() {
		for _, tg := range targets {
			tg := tg
			res.probes++
			answered := false
			tg.cl.Read(tg.space, 0, 4096, func(_ []byte, err error) {
				if err == nil {
					answered = true
				}
			})
			c.Sched.After(1900*time.Millisecond, func() {
				if !answered {
					res.failed++
				}
			})
		}
	})
	c.Settle(8 * time.Hour)
	probeTick.Stop()
	inj.Stop()
	return res, nil
}
