package bench

import (
	"ustore/internal/obs"
	"ustore/internal/simtime"
)

// milestones tracks the first time each named milestone of a measurement is
// reached. It replaces the per-measurement ad-hoc tally maps (enumed,
// exportSeen, mountSeen, recovered): every first hit is stamped with the
// simulated clock, mirrored into the run's recorder as an instant event on
// the bench track, and counted in bench_milestones_total{phase=...}.
type milestones struct {
	rec   *obs.Recorder
	now   func() simtime.Time
	phase string
	at    map[string]simtime.Time
}

func newMilestones(rec *obs.Recorder, now func() simtime.Time, phase string) *milestones {
	return &milestones{rec: rec, now: now, phase: phase, at: make(map[string]simtime.Time)}
}

// hit records milestone key at the current simulated time. Later hits of the
// same key are ignored (the first time wins, matching how the measurements
// define their part boundaries).
func (ms *milestones) hit(key string) {
	if _, ok := ms.at[key]; ok {
		return
	}
	ms.at[key] = ms.now()
	ms.rec.Counter("bench", "milestones_total", obs.L("phase", ms.phase)).Inc()
	ms.rec.Instant("bench", ms.phase, "bench", obs.L("key", key))
}

// has reports whether key was already hit.
func (ms *milestones) has(key string) bool {
	_, ok := ms.at[key]
	return ok
}

// count returns how many distinct milestones were hit.
func (ms *milestones) count() int { return len(ms.at) }

// last returns the latest hit time (0 if none).
func (ms *milestones) last() simtime.Time {
	var max simtime.Time
	for _, t := range ms.at {
		if t > max {
			max = t
		}
	}
	return max
}
