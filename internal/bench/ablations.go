package bench

import (
	"fmt"
	"time"

	"ustore/internal/core"
	"ustore/internal/disk"
	"ustore/internal/fabric"
	"ustore/internal/faults"
	"ustore/internal/power"
	"ustore/internal/simtime"
)

// AblateTopology compares the two Figure 2 designs: component counts and
// the smallest move granularity each allows.
func AblateTopology() *Table {
	t := &Table{
		ID:     "ablate-topology",
		Title:  "Switch placement: full trees (Fig.2 left) vs switch-high (Fig.2 right)",
		Header: []string{"Design", "Hubs", "Switches", "Move granularity (disks)"},
		Notes: []string{
			"switch-high needs far fewer components (the paper's cost argument) but moves whole leaf-hub groups",
		},
	}
	cfg := fabric.Config{Hosts: []string{"h1", "h2", "h3", "h4"}, Disks: 16, FanIn: 4}
	for _, v := range []struct {
		name  string
		build func(fabric.Config) (*fabric.Fabric, error)
	}{
		{"full trees", fabric.BuildFullTrees},
		{"switch-high", fabric.BuildSwitchHigh},
	} {
		f, err := v.build(cfg)
		if err != nil {
			t.Rows = append(t.Rows, []string{v.name, "err", err.Error(), ""})
			continue
		}
		b := f.BOM()
		gran := 0
		for _, g := range f.CoMovingGroups() {
			if len(g) > gran {
				gran = len(g)
			}
		}
		t.Rows = append(t.Rows, []string{v.name, fmt.Sprint(b.Hubs), fmt.Sprint(b.Switches), fmt.Sprint(gran)})
	}
	return t
}

// AblateFanIn sweeps the hub fan-in factor for a 64-disk unit.
func AblateFanIn() *Table {
	t := &Table{
		ID:     "ablate-fanin",
		Title:  "Hub fan-in factor k for a 64-disk, 4-host unit",
		Header: []string{"k", "Hubs", "Switches", "Max USB tier", "Devices/host tree"},
		Notes: []string{
			"larger hubs mean fewer components and shallower trees, but coarser co-moving groups and more bandwidth sharing",
		},
	}
	for _, k := range []int{2, 4, 7} {
		f, err := fabric.BuildSwitchHigh(fabric.Config{
			Hosts: []string{"h1", "h2", "h3", "h4"}, Disks: 64, FanIn: k,
		})
		if err != nil {
			t.Rows = append(t.Rows, []string{fmt.Sprint(k), "err: " + err.Error(), "", "", ""})
			continue
		}
		b := f.BOM()
		// Depth and device count of one host's visible tree.
		maxTier := 0
		devices := 0
		host := f.Hosts()[0]
		depth := map[fabric.NodeID]int{fabric.NodeID("root:" + host): 1}
		for _, e := range f.VisibleTree(host) {
			d := depth[e.Parent] + 1
			depth[e.Child] = d
			if d > maxTier {
				maxTier = d
			}
			devices++
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), fmt.Sprint(b.Hubs), fmt.Sprint(b.Switches),
			fmt.Sprint(maxTier), fmt.Sprint(devices),
		})
	}
	return t
}

// AblateSingleTree contrasts availability after a host failure: a
// Backblaze-like single tree (disks pinned to the host) versus UStore's
// reconfigurable fabric.
func AblateSingleTree() *Table {
	t := &Table{
		ID:     "ablate-singletree",
		Title:  "Host failure: single-tree (Backblaze-like) vs UStore fabric",
		Header: []string{"Design", "Disk downtime per host failure", "Expected disk downtime/yr"},
		Notes: []string{
			"host MTTF 3.4 months, repair 10 min; single tree loses the disks for the whole repair, UStore for one failover",
		},
	}
	failover, err := MeasureFailover(1, nil)
	if err != nil {
		failover = 6 * time.Second
		t.Notes = append(t.Notes, "failover measurement failed, using 6s: "+err.Error())
	}
	repair := 10 * time.Minute
	perYear := func(down time.Duration) time.Duration {
		events := float64(365*24*time.Hour) / float64(faults.HostMTTF)
		return time.Duration(events * float64(down))
	}
	t.Rows = append(t.Rows,
		[]string{"single tree", repair.String(), perYear(repair).Truncate(time.Second).String()},
		[]string{"UStore", failover.Truncate(10 * time.Millisecond).String(), perYear(failover).Truncate(time.Second).String()},
	)
	return t
}

// AblateHeartbeat sweeps the heartbeat interval: recovery time vs control
// traffic.
func AblateHeartbeat() *Table {
	t := &Table{
		ID:     "ablate-heartbeat",
		Title:  "Heartbeat interval vs recovery time and control traffic",
		Header: []string{"Interval", "Recovery", "Heartbeats/s (4 hosts x 3 masters)"},
		Notes: []string{
			"detection dominates recovery below ~1s intervals; traffic grows inversely",
		},
	}
	for _, hb := range []time.Duration{250 * time.Millisecond, 500 * time.Millisecond, 1 * time.Second, 2 * time.Second} {
		took, err := measureFailoverWithHeartbeat(hb)
		rec := "err"
		if err == nil {
			rec = took.Truncate(10 * time.Millisecond).String()
		}
		msgsPerSec := 4.0 * 3.0 / hb.Seconds()
		t.Rows = append(t.Rows, []string{hb.String(), rec, Cell(msgsPerSec)})
	}
	return t
}

func measureFailoverWithHeartbeat(hb time.Duration) (time.Duration, error) {
	cfg := core.DefaultConfig()
	cfg.HeartbeatInterval = hb
	c, err := core.NewCluster(cfg)
	if err != nil {
		return 0, err
	}
	c.Settle(12 * time.Second)
	m := c.ActiveMaster()
	if m == nil {
		return 0, fmt.Errorf("no active master")
	}
	victim := c.Fabric.Hosts()[2]
	var done time.Duration
	m.OnFailoverDone = func(h string, took time.Duration) { done = took }
	crash := c.Sched.Now()
	detectAt := simtime.Time(0)
	m.OnHostDead = func(h string) { detectAt = c.Sched.Now() }
	c.CrashHost(victim)
	c.Settle(60 * time.Second)
	if done == 0 {
		return 0, fmt.Errorf("failover incomplete")
	}
	return (detectAt - crash) + done, nil
}

// AblateSpinDown compares fixed vs adaptive idle thresholds under a bursty
// access pattern: energy and spin-up wear.
func AblateSpinDown() *Table {
	t := &Table{
		ID:     "ablate-spindown",
		Title:  "Spin-down policy under bursty cold access (one disk, 2h)",
		Header: []string{"Policy", "Energy (Wh)", "Spin-ups", "Mean access latency"},
		Notes: []string{
			"bursts of accesses arrive every ~5 min; the adaptive policy (§IV-F) raises the threshold when the disk thrashes",
		},
	}
	type variant struct {
		name     string
		idle     time.Duration
		adaptive bool
	}
	for _, v := range []variant{
		{"always-on", 0, false},
		{"fixed 30s", 30 * time.Second, false},
		{"adaptive from 30s", 30 * time.Second, true},
	} {
		energy, spinUps, lat := runSpinDownScenario(v.idle, v.adaptive)
		t.Rows = append(t.Rows, []string{
			v.name, Cell(energy), fmt.Sprint(spinUps), lat.Truncate(time.Millisecond).String(),
		})
	}
	return t
}

// AblatePowerCurve sweeps the fraction of powered-off disks in a 16-disk
// unit and reports wall power with and without §IV-F's cascading fabric
// power-off (a leaf hub whose four disks are all off is cut too).
func AblatePowerCurve() *Table {
	t := &Table{
		ID:     "ablate-powercurve",
		Title:  "Power proportionality: unit watts vs powered-off disks (16-disk unit)",
		Header: []string{"Disks off", "Watts (disks only)", "Watts (+ cascading hub cut)"},
		Notes: []string{
			"§IV-F: \"if the disks are spun down or powered off, the part of the interconnect fabric that connects these disks is powered off as well\"",
		},
	}
	p := disk.DT01ACA300()
	for _, off := range []int{0, 4, 8, 12, 16} {
		plain, err := powerWithOff(p, off, false)
		if err != nil {
			t.Notes = append(t.Notes, "error: "+err.Error())
			return t
		}
		cascade, err := powerWithOff(p, off, true)
		if err != nil {
			t.Notes = append(t.Notes, "error: "+err.Error())
			return t
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(off), Cell(plain), Cell(cascade)})
	}
	return t
}

// powerWithOff computes unit wall power with `off` disks powered off
// (whole leaf-hub groups first, matching how a service would consolidate),
// optionally cutting fully-idle leaf hubs.
func powerWithOff(p disk.Params, off int, cascade bool) (float64, error) {
	f, err := fabric.Prototype()
	if err != nil {
		return 0, err
	}
	states := make(map[fabric.NodeID]disk.State)
	for i, d := range f.Disks() {
		if i < off {
			states[d] = disk.StatePoweredOff
		} else {
			states[d] = disk.StateIdle
		}
	}
	if cascade {
		// Cut leaf hubs whose whole group is off (groups are 4-aligned).
		for g := 0; g*4+3 < off; g++ {
			hub := fabric.NodeID(fmt.Sprintf("leafhub%02d", g))
			if f.Node(hub) != nil {
				if err := f.SetPower(hub, false); err != nil {
					return 0, err
				}
			}
		}
	}
	return power.UnitPower(f, p, states, 6, 1).WallW, nil
}

// runSpinDownScenario drives one simulated disk for two hours with bursty
// reads and returns energy, spin-up count, and mean access latency.
func runSpinDownScenario(idle time.Duration, adaptive bool) (wh float64, spinUps int, meanLat time.Duration) {
	s := simtime.NewScheduler(3)
	d := disk.New(s, "d0", disk.DT01ACA300(), disk.AttachFabric)
	d.SpinUp()
	meter := power.NewMeter(func() time.Duration { return s.Now() })
	meter.TrackDisk("d0", d)

	threshold := idle
	lastThrashCheck := 0
	// Policy loop (standalone equivalent of core.PowerManager for a bare
	// disk).
	if idle > 0 {
		s.Every(time.Second, func() {
			if adaptive {
				ups := d.SpinUpCount()
				if ups-lastThrashCheck > 3 {
					threshold *= 2
					lastThrashCheck = ups
				}
			}
			since, ok := d.IdleSince()
			if ok && s.Now()-since >= threshold {
				d.SpinDown()
			}
		})
	}

	var totalLat time.Duration
	accesses := 0
	// Bursts: every ~5 minutes, 5 reads spaced 20s apart (just over a 30s
	// fixed threshold, maximizing thrash).
	for burst := 0; burst < 24; burst++ {
		base := time.Duration(burst) * 5 * time.Minute
		for i := 0; i < 5; i++ {
			at := base + time.Duration(i)*20*time.Second
			s.At(at, func() {
				start := s.Now()
				d.Submit(&disk.Request{
					Op: disk.Op{Read: true, Size: 1 << 20, Pattern: disk.Random},
					Done: func([]byte, error) {
						totalLat += s.Now() - start
						accesses++
					},
				})
			})
		}
	}
	s.RunUntil(2 * time.Hour)
	wh = meter.EnergyWh()
	spinUps = d.SpinUpCount()
	if accesses > 0 {
		meanLat = totalLat / time.Duration(accesses)
	}
	return wh, spinUps, meanLat
}
