// Package bench is the experiment harness: one function per table and
// figure in the paper's evaluation (§VI–VII), each returning a structured
// Table that cmd/ustore-bench renders and the repository's benchmarks and
// tests assert against. EXPERIMENTS.md records the paper-vs-measured
// comparison these functions produce.
package bench

import (
	"fmt"
	"strings"

	"ustore/internal/obs"
)

// Table is one rendered experiment result.
type Table struct {
	ID     string // "table1", "fig5", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render returns an aligned plain-text rendering.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Cell formats a float with sensible precision for table cells.
func Cell(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// All runs every experiment in paper order. Slow experiments (fig6,
// failover) can be skipped with quick=true. rec (optional) collects
// metrics and traces from the simulated experiments. trials sets the
// failover trial count (<= 0 means DefaultTrials); parallel is the worker
// count handed to the multi-run experiments (fig6 points, failover
// trials), whose output is byte-identical at any worker count.
func All(quick bool, rec *obs.Recorder, trials, parallel int) []*Table {
	out := []*Table{
		TableI(),
		TableII(),
		Figure5(),
		DuplexHeadline(),
		TableIII(),
		TableIV(),
		TableV(),
	}
	if !quick {
		out = append(out, Figure6(rec, parallel), Failover(rec, trials, parallel), HDFSSwitch(rec))
	}
	return out
}

// Ablations runs the design-choice studies DESIGN.md calls out.
func Ablations() []*Table {
	return []*Table{
		AblateTopology(),
		AblateFanIn(),
		AblateSingleTree(),
		AblateHeartbeat(),
		AblateSpinDown(),
		AblateRebuild(),
		AblateAvailability(),
		AblatePowerCurve(),
	}
}
