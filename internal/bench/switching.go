package bench

import (
	"fmt"
	"time"

	"ustore/internal/core"
	"ustore/internal/fabric"
	"ustore/internal/hdfs"
	"ustore/internal/obs"
	"ustore/internal/runner"
)

// SwitchParts decomposes one switching experiment like Figure 6:
//
//	Part1: disk rejected from the old host -> recognized by the new
//	       host's USB driver (detach event to last enumeration).
//	Part2: recognized -> exposed onto the network (last enumeration to
//	       last export on the receiving EndPoint).
//	Part3: exposed -> remotely mounted by the ClientLib (last export to
//	       last successful remount).
type SwitchParts struct {
	Disks int
	Part1 time.Duration
	Part2 time.Duration
	Part3 time.Duration
}

// Total returns the end-to-end switching time.
func (p SwitchParts) Total() time.Duration { return p.Part1 + p.Part2 + p.Part3 }

// fig6Cluster builds a full-trees cluster (per-disk switching, matching
// Figure 6's x-axis of 1..12 individual disks) with one space allocated
// and mounted on each of the 16 disks, so 12 are movable to any one host.
func fig6Cluster(seed int64, rec *obs.Recorder) (*core.Cluster, []core.SpaceID, []*core.ClientLib, error) {
	cfg := core.DefaultConfig()
	cfg.FullTrees = true
	cfg.Seed = seed
	cfg.Recorder = rec
	c, err := core.NewCluster(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	c.Settle(10 * time.Second)
	if c.ActiveMaster() == nil {
		return nil, nil, nil, fmt.Errorf("no active master")
	}
	var spaces []core.SpaceID
	var clients []*core.ClientLib
	for i := 0; i < 16; i++ {
		cl := c.Client(fmt.Sprintf("client%02d", i), fmt.Sprintf("svc%02d", i))
		var space core.SpaceID
		var fail error
		cl.Allocate(1<<30, func(rep core.AllocateReply, err error) {
			space, fail = rep.Space, err
		})
		c.Settle(2 * time.Second)
		if fail != nil {
			return nil, nil, nil, fail
		}
		cl.Mount(space, func(err error) { fail = err })
		c.Settle(2 * time.Second)
		if fail != nil {
			return nil, nil, nil, fail
		}
		spaces = append(spaces, space)
		clients = append(clients, cl)
	}
	return c, spaces, clients, nil
}

// MeasureSwitch switches n disks simultaneously to one destination host
// and returns the three-part delay decomposition. rec (optional, nil OK)
// receives the run's metrics and trace, including the measurement's
// milestone events.
func MeasureSwitch(n int, seed int64, rec *obs.Recorder) (SwitchParts, error) {
	c, spaces, clients, err := fig6Cluster(seed, rec)
	if err != nil {
		return SwitchParts{}, err
	}
	m := c.ActiveMaster()

	// Pick n mounted spaces whose disks do not already live on the
	// destination host.
	dst := c.Fabric.Hosts()[3]
	type target struct {
		space core.SpaceID
		disk  string
		cl    *core.ClientLib
	}
	var targets []target
	for i, sp := range spaces {
		diskID := diskOf(sp)
		if m.DiskHost(diskID) != dst {
			targets = append(targets, target{space: sp, disk: diskID, cl: clients[i]})
		}
		if len(targets) == n {
			break
		}
	}
	if len(targets) < n {
		return SwitchParts{}, fmt.Errorf("only %d movable disks", len(targets))
	}

	enums := newMilestones(rec, c.Sched.Now, "switch-enumerated")
	exports := newMilestones(rec, c.Sched.Now, "switch-exported")
	mounts := newMilestones(rec, c.Sched.Now, "switch-mounted")
	c.Binding.OnStorageEnumerated = func(host string, d fabric.NodeID) {
		if ep := c.EndPoints[host]; ep != nil {
			ep.DiskEnumerated(string(d))
		}
		for _, tg := range targets {
			if tg.disk == string(d) && host == dst {
				enums.hit(tg.disk)
			}
		}
	}
	cmd := core.ExecuteArgs{Force: true}
	for _, tg := range targets {
		cmd.Pairs = append(cmd.Pairs, fabric.DiskHost{Disk: fabric.NodeID(tg.disk), Host: dst})
	}
	start := c.Sched.Now()
	span := rec.Begin("bench", "measure-switch", "bench", obs.L("disks", fmt.Sprint(n)))
	var execErr error
	m.ExecuteTopology(cmd, func(err error) { execErr = err })

	// Poll for export and remount completion.
	ep := c.EndPoints[dst]
	tick := c.Sched.Every(50*time.Millisecond, func() {
		for _, tg := range targets {
			if ep.HasExport(tg.space) {
				exports.hit(string(tg.space))
			}
			if exports.has(string(tg.space)) && tg.cl.MountedOn(tg.space) == dst {
				mounts.hit(string(tg.space))
			}
		}
	})
	// Drive each client to remount by issuing reads (the paper's client
	// remounts on the first failed access). A read issued before the
	// switch flips still completes at the old host, so probe repeatedly
	// until the mount lands on the destination.
	var probe func(tg target)
	probe = func(tg target) {
		if mounts.has(string(tg.space)) {
			return
		}
		tg.cl.Read(tg.space, 0, 4096, func([]byte, error) {
			if !mounts.has(string(tg.space)) {
				c.Sched.After(200*time.Millisecond, func() { probe(tg) })
			}
		})
	}
	for _, tg := range targets {
		probe(tg)
	}
	c.Settle(60 * time.Second)
	tick.Stop()
	span.End()
	if execErr != nil {
		return SwitchParts{}, fmt.Errorf("execute: %w", execErr)
	}
	if enums.count() != n || exports.count() != n || mounts.count() != n {
		return SwitchParts{}, fmt.Errorf("incomplete: enum=%d export=%d mount=%d of %d",
			enums.count(), exports.count(), mounts.count(), n)
	}
	return SwitchParts{
		Disks: n,
		Part1: enums.last() - start,
		Part2: exports.last() - enums.last(),
		Part3: mounts.last() - exports.last(),
	}, nil
}

// diskOf extracts the disk ID from a space ID "unit0/diskNN/spM".
func diskOf(space core.SpaceID) string {
	s := string(space)
	first, second := -1, -1
	for i, ch := range s {
		if ch == '/' {
			if first < 0 {
				first = i
			} else {
				second = i
				break
			}
		}
	}
	if first < 0 || second < 0 {
		return ""
	}
	return s[first+1 : second]
}

// Figure6 regenerates the switching-time decomposition for 1..12 disks,
// measuring the five disk counts on up to parallel workers (each point is
// its own deterministic cluster, so rows are byte-identical whatever the
// worker count). rec follows the same rule as Failover: it only receives
// metrics and traces when parallel <= 1.
func Figure6(rec *obs.Recorder, parallel int) *Table {
	t := &Table{
		ID:     "fig6",
		Title:  "Switching time vs disks switched (Figure 6)",
		Header: []string{"Disks", "Part1 reject->recognized", "Part2 ->exposed", "Part3 ->mounted", "Total"},
		Notes: []string{
			"paper: part1 grows with disk count (serialized enumeration); parts 2 and 3 stay flat",
		},
	}
	pointRec := rec
	if parallel > 1 {
		pointRec = nil
	}
	points := []int{1, 2, 4, 8, 12}
	t.Rows = runner.Map(len(points), parallel, func(i int) []string {
		n := points[i]
		parts, err := MeasureSwitch(n, int64(n), pointRec)
		if err != nil {
			return []string{fmt.Sprint(n), "err: " + err.Error(), "", "", ""}
		}
		return []string{
			fmt.Sprint(n),
			parts.Part1.Truncate(time.Millisecond).String(),
			parts.Part2.Truncate(time.Millisecond).String(),
			parts.Part3.Truncate(time.Millisecond).String(),
			parts.Total().Truncate(time.Millisecond).String(),
		}
	})
	return t
}

// MeasureFailover kills one host and reports the client-perceived recovery
// time: crash until every space previously served by that host is readable
// again. rec (optional, nil OK) receives the run's metrics and trace.
func MeasureFailover(seed int64, rec *obs.Recorder) (time.Duration, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Recorder = rec
	c, err := core.NewCluster(cfg)
	if err != nil {
		return 0, err
	}
	c.Settle(10 * time.Second)
	m := c.ActiveMaster()
	if m == nil {
		return 0, fmt.Errorf("no active master")
	}
	// One mounted space per host-local service on the victim host.
	victim := c.Fabric.Hosts()[2]
	var spaces []core.SpaceID
	var clients []*core.ClientLib
	for i := 0; i < 4; i++ {
		cl := c.Client(fmt.Sprintf("%s-c%d", victim, i), fmt.Sprintf("fsvc%d", i))
		var space core.SpaceID
		var fail error
		cl.Allocate(1<<30, func(rep core.AllocateReply, err error) { space, fail = rep.Space, err })
		c.Settle(2 * time.Second)
		if fail != nil {
			return 0, fail
		}
		if m.DiskHost(diskOf(space)) != victim {
			continue // allocation landed elsewhere; skip
		}
		cl.Mount(space, func(err error) { fail = err })
		c.Settle(2 * time.Second)
		if fail != nil {
			return 0, fail
		}
		spaces = append(spaces, space)
		clients = append(clients, cl)
	}
	if len(spaces) == 0 {
		return 0, fmt.Errorf("no spaces on victim host")
	}

	crashAt := c.Sched.Now()
	span := rec.Begin("bench", "measure-failover", "bench", obs.L("victim", victim))
	c.CrashHost(victim)
	recovered := newMilestones(rec, c.Sched.Now, "failover-recovered")
	for i, sp := range spaces {
		sp := sp
		clients[i].Read(sp, 0, 4096, func(_ []byte, err error) {
			if err == nil {
				recovered.hit(string(sp))
			}
		})
	}
	c.Settle(40 * time.Second)
	span.End()
	if recovered.count() != len(spaces) {
		return 0, fmt.Errorf("recovered %d of %d spaces", recovered.count(), len(spaces))
	}
	return recovered.last() - crashAt, nil
}

// DefaultTrials is the failover trial count when the caller passes <= 0.
const DefaultTrials = 3

// Failover regenerates the 5.8-second single-host-failure headline across
// trials independent runs (seeds 1..trials; <= 0 means DefaultTrials) on up
// to parallel workers. Each trial builds its own cluster, so the rows are
// byte-identical whatever the worker count.
//
// rec (optional) collects metrics and traces, but only when the trials run
// sequentially (parallel <= 1): one recorder cannot serve concurrent
// clusters — each run rebinds the recorder's clock to its own scheduler.
func Failover(rec *obs.Recorder, trials, parallel int) *Table {
	if trials <= 0 {
		trials = DefaultTrials
	}
	trialRec := rec
	if parallel > 1 {
		trialRec = nil
	}
	t := &Table{
		ID:     "failover",
		Title:  "Single host failure recovery (§VII headline)",
		Header: []string{"Trial", "recovery (crash -> all IO restored)"},
		Notes:  []string{"paper: 5.8 s"},
	}
	t.Rows = runner.Map(trials, parallel, func(i int) []string {
		trial := i + 1
		took, err := MeasureFailover(int64(trial), trialRec)
		if err != nil {
			return []string{fmt.Sprint(trial), "err: " + err.Error()}
		}
		return []string{fmt.Sprint(trial), took.Truncate(10 * time.Millisecond).String()}
	})
	return t
}

// HDFSSwitch regenerates the §VII-B observation: an HDFS write across a
// disk switch stalls for seconds and resumes; reads are uninterrupted.
// rec (optional) collects the run's metrics and traces.
func HDFSSwitch(rec *obs.Recorder) *Table {
	t := &Table{
		ID:     "hdfs",
		Title:  "HDFS over UStore across a disk switch (§VII-B)",
		Header: []string{"Metric", "value"},
		Notes:  []string{"paper: client errors for several seconds, then resumes; reads uninterrupted"},
	}
	cfg := core.DefaultConfig()
	cfg.Recorder = rec
	c, err := core.NewCluster(cfg)
	if err != nil {
		t.Notes = append(t.Notes, "error: "+err.Error())
		return t
	}
	c.Settle(10 * time.Second)
	nn := hdfs.NewNameNode(c.Net, "h1")
	_ = nn
	var dns []*hdfs.DataNode
	var dnClients []*core.ClientLib
	for _, host := range []string{"h2", "h3", "h4"} {
		cl := c.Client(host+"-dn", "hdfs-"+host)
		dn := hdfs.NewDataNode(c.Net, host, "h1", cl)
		var startErr error
		dn.Start(64<<30, func(err error) { startErr = err })
		c.Settle(5 * time.Second)
		if startErr != nil {
			t.Notes = append(t.Notes, "datanode error: "+startErr.Error())
			return t
		}
		dns = append(dns, dn)
		dnClients = append(dnClients, cl)
	}
	cli := hdfs.NewClient(c.Net, "cli", "h1")
	data := make([]byte, 16*hdfs.BlockSize)
	for i := range data {
		data[i] = byte(i * 13)
	}
	writeStart := c.Sched.Now()
	var writeErr error
	var writeTook time.Duration
	done := false
	cli.WriteFile("/exp", data, func(err error) {
		writeErr = err
		writeTook = c.Sched.Now() - writeStart
		done = true
	})
	c.Settle(500 * time.Millisecond)

	// Switch the first datanode's backing disk group mid-write.
	space := dns[0].Space()
	var look core.LookupReply
	dnClients[0].Lookup(space, func(rep core.LookupReply, err error) { look = rep })
	c.Settle(1 * time.Second)
	var dst string
	for _, h := range c.Fabric.Hosts() {
		if h != look.Host {
			dst = h
			break
		}
	}
	cmd := core.ExecuteArgs{Force: true}
	for _, g := range c.Fabric.CoMovingGroups() {
		has := false
		for _, d := range g {
			if string(d) == look.DiskID {
				has = true
			}
		}
		if has {
			for _, d := range g {
				cmd.Pairs = append(cmd.Pairs, fabric.DiskHost{Disk: d, Host: dst})
			}
		}
	}
	c.ActiveMaster().ExecuteTopology(cmd, func(error) {})
	c.Settle(120 * time.Second)

	remounts := uint64(0)
	for _, cl := range dnClients {
		remounts += cl.Remounts
	}
	var readErr error
	readOK := false
	cli.ReadFile("/exp", func(b []byte, err error) {
		readErr = err
		readOK = err == nil && len(b) == len(data)
	})
	c.Settle(60 * time.Second)

	status := "ok"
	if !done || writeErr != nil {
		status = fmt.Sprintf("failed: %v", writeErr)
	}
	t.Rows = append(t.Rows,
		[]string{"write outcome", status},
		[]string{"write duration (16 x 4MB blocks)", writeTook.Truncate(10 * time.Millisecond).String()},
		[]string{"client-visible stalls", fmt.Sprint(cli.WriteStalls)},
		[]string{"datanode transparent remounts", fmt.Sprint(remounts)},
		[]string{"read-back intact", fmt.Sprintf("%v (err=%v)", readOK, readErr)},
	)
	return t
}
