package bench

import (
	"strings"
	"testing"
	"time"

	"ustore/internal/disk"
	"ustore/internal/obs"
	"ustore/internal/workload"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "bee"},
		Rows:   [][]string{{"1", "2"}, {"longer", "3"}},
		Notes:  []string{"note"},
	}
	out := tab.Render()
	for _, want := range []string{"=== x: demo ===", "a       bee", "longer  3", "note: note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableIHasAllSolutions(t *testing.T) {
	tab := TableI()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[4][0] != "UStore" {
		t.Fatalf("last row = %v, want UStore", tab.Rows[4])
	}
}

func TestTableIIShape(t *testing.T) {
	tab := TableII()
	if len(tab.Rows) != 36 { // 12 workloads x 3 interconnects
		t.Fatalf("rows = %d, want 36", len(tab.Rows))
	}
}

func TestFigure5ShapeAndSaturation(t *testing.T) {
	spec := workload.Spec{Size: 4 << 20, ReadPct: 100, Pattern: disk.Sequential}
	two, err := Figure5Point(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	twelve, err := Figure5Point(spec, 12)
	if err != nil {
		t.Fatal(err)
	}
	if twelve > two*1.02 {
		t.Fatalf("4M-SR kept scaling: 2 disks %.0f vs 12 disks %.0f", two, twelve)
	}
}

func TestFigure6PartsShape(t *testing.T) {
	rec := obs.NewRecorder()
	p1, err := MeasureSwitch(1, 1, rec)
	if err != nil {
		t.Fatal(err)
	}
	// The milestone tally flows into the recorder: one disk enumerated,
	// one space exported, one space mounted.
	for _, phase := range []string{"switch-enumerated", "switch-exported", "switch-mounted"} {
		if got := rec.Counter("bench", "milestones_total", obs.L("phase", phase)).Value(); got != 1 {
			t.Errorf("milestones_total{phase=%s} = %d, want 1", phase, got)
		}
	}
	p4, err := MeasureSwitch(4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p4.Part1 <= p1.Part1 {
		t.Fatalf("part1 did not grow: 1 disk %v, 4 disks %v", p1.Part1, p4.Part1)
	}
	// Parts 2 and 3 stay roughly flat (within 1.5s of each other).
	if d := (p4.Part2 - p1.Part2); d > 1500*time.Millisecond || d < -1500*time.Millisecond {
		t.Fatalf("part2 not flat: %v vs %v", p1.Part2, p4.Part2)
	}
	if d := (p4.Part3 - p1.Part3); d > 1500*time.Millisecond || d < -1500*time.Millisecond {
		t.Fatalf("part3 not flat: %v vs %v", p1.Part3, p4.Part3)
	}
	if p1.Total() < time.Second || p1.Total() > 15*time.Second {
		t.Fatalf("1-disk switch total %v implausible", p1.Total())
	}
}

func TestFailoverHeadline(t *testing.T) {
	rec := obs.NewRecorder()
	took, err := MeasureFailover(1, rec)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter("core", "host_deaths_total").Value(); got == 0 {
		t.Errorf("host_deaths_total = 0 after a host crash")
	}
	// Paper: 5.8s. Accept the 3-10s band: the shape claim is "seconds,
	// not minutes, and no data rebuild".
	if took < 2*time.Second || took > 10*time.Second {
		t.Fatalf("recovery = %v, paper 5.8s", took)
	}
}

func TestAblationsRun(t *testing.T) {
	for _, tab := range Ablations() {
		if len(tab.Rows) == 0 {
			t.Fatalf("ablation %s produced no rows", tab.ID)
		}
		for _, row := range tab.Rows {
			for _, cell := range row {
				if strings.HasPrefix(cell, "err") {
					t.Fatalf("ablation %s row errored: %v", tab.ID, row)
				}
			}
		}
	}
}

func TestSpinDownScenarioOrdering(t *testing.T) {
	onWh, onUps, _ := runSpinDownScenario(0, false)
	fixedWh, fixedUps, fixedLat := runSpinDownScenario(30*time.Second, false)
	adaptWh, adaptUps, _ := runSpinDownScenario(30*time.Second, true)
	if onUps != 1 {
		t.Fatalf("always-on spin-ups = %d", onUps)
	}
	if fixedWh >= onWh {
		t.Fatalf("fixed policy saved nothing: %.1f vs %.1f Wh", fixedWh, onWh)
	}
	if adaptUps >= fixedUps {
		t.Fatalf("adaptive policy did not reduce spin-ups: %d vs %d", adaptUps, fixedUps)
	}
	if fixedLat < 100*time.Millisecond {
		t.Fatalf("fixed policy should pay spin-up latency, got %v", fixedLat)
	}
	_ = adaptWh
}
