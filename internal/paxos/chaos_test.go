package paxos

import (
	"fmt"
	"testing"
	"time"
)

// TestDuplicatedMessagesStillSafe runs a quorum where every link delivers
// a third of the messages twice: Paxos must remain safe (duplicate
// Promise/Accepted must not double-count toward quorum decisions) and
// live.
func TestDuplicatedMessagesStillSafe(t *testing.T) {
	c := newCluster(t, 3, 21)
	for i, a := range c.names {
		for _, b := range c.names[i+1:] {
			c.net.SetDupRate(a, b, 0.33)
		}
	}
	c.settle(3 * time.Second)
	l := c.leader(t)
	for i := 0; i < 15; i++ {
		l.Propose(Command{ID: fmt.Sprintf("dup%02d", i)}, nil)
	}
	c.settle(5 * time.Second)
	c.checkPrefixAgreement(t)
	for _, name := range c.names {
		if got := len(c.logs[name]); got != 15 {
			t.Fatalf("%s applied %d commands, want 15", name, got)
		}
		seen := map[string]bool{}
		for _, cmd := range c.logs[name] {
			if seen[cmd.ID] {
				t.Fatalf("%s applied %s twice", name, cmd.ID)
			}
			seen[cmd.ID] = true
		}
	}
}

// TestDuplicationPlusLossPlusCrash combines every fault class at once.
func TestDuplicationPlusLossPlusCrash(t *testing.T) {
	c := newCluster(t, 5, 22)
	for i, a := range c.names {
		for _, b := range c.names[i+1:] {
			c.net.SetDupRate(a, b, 0.2)
			c.net.SetLossRate(a, b, 0.1)
		}
	}
	c.settle(3 * time.Second)
	cmd := 0
	for round := 0; round < 4; round++ {
		for _, n := range c.nodes {
			if !n.stopped && n.IsLeader() {
				n.Propose(Command{ID: fmt.Sprintf("c%02d", cmd)}, nil)
				cmd++
				break
			}
		}
		if round == 1 {
			c.leader(t).Stop()
		}
		c.settle(3 * time.Second)
	}
	for _, n := range c.nodes {
		n.Resume()
	}
	c.settle(10 * time.Second)
	c.checkPrefixAgreement(t)
}

// TestCatchUpPagination: a replica that missed several hundred slots
// catches up through multiple 256-entry pages (one per heartbeat round).
func TestCatchUpPagination(t *testing.T) {
	c := newCluster(t, 3, 24)
	c.settle(2 * time.Second)
	l := c.leader(t)
	var lagger *Node
	for _, n := range c.nodes {
		if n != l {
			lagger = n
			break
		}
	}
	lagger.Stop()
	const total = 700
	for i := 0; i < total; i++ {
		l.Propose(Command{ID: fmt.Sprintf("bulk%04d", i)}, nil)
		if i%50 == 49 {
			c.settle(200 * time.Millisecond) // keep the pipeline flowing
		}
	}
	c.settle(5 * time.Second)
	if got := len(c.logs[l.Name()]); got != total {
		t.Fatalf("leader applied %d of %d", got, total)
	}
	lagger.Resume()
	c.settle(30 * time.Second)
	if got := len(c.logs[lagger.Name()]); got != total {
		t.Fatalf("lagger caught up %d of %d", got, total)
	}
	c.checkPrefixAgreement(t)
}

// TestSlowLinkReordering: asymmetric latencies reorder messages between
// replicas; agreement must hold and the slow replica must catch up.
func TestSlowLinkReordering(t *testing.T) {
	c := newCluster(t, 3, 23)
	// m2 is far away: its messages arrive long after everyone else's.
	c.net.SetLatency("m0", "m2", 80*time.Millisecond)
	c.net.SetLatency("m1", "m2", 90*time.Millisecond)
	c.settle(3 * time.Second)
	l := c.leader(t)
	for i := 0; i < 10; i++ {
		l.Propose(Command{ID: fmt.Sprintf("slow%02d", i)}, nil)
	}
	c.settle(5 * time.Second)
	c.checkPrefixAgreement(t)
	if got := len(c.logs["m2"]); got != 10 {
		t.Fatalf("slow replica applied %d, want 10", got)
	}
}
