package paxos

import (
	"fmt"
	"testing"
	"time"

	"ustore/internal/simnet"
	"ustore/internal/simtime"
)

// cluster is a test harness around N replicas with per-node applied logs.
type cluster struct {
	sched *simtime.Scheduler
	net   *simnet.Network
	nodes map[string]*Node
	logs  map[string][]Command
	names []string
}

func newCluster(t *testing.T, n int, seed int64) *cluster {
	t.Helper()
	s := simtime.NewScheduler(seed)
	net := simnet.New(s)
	c := &cluster{sched: s, net: net, nodes: map[string]*Node{}, logs: map[string][]Command{}}
	for i := 0; i < n; i++ {
		c.names = append(c.names, fmt.Sprintf("m%d", i))
	}
	for _, name := range c.names {
		name := name
		c.nodes[name] = New(net, name, c.names, DefaultConfig(), func(slot int, cmd Command) {
			c.logs[name] = append(c.logs[name], cmd)
		})
	}
	return c
}

// leader returns the unique live node claiming leadership, failing the test
// if there are several (stale claims are allowed transiently, so callers
// run the scheduler first).
func (c *cluster) leader(t *testing.T) *Node {
	t.Helper()
	var l *Node
	for _, n := range c.nodes {
		if n.stopped || !n.IsLeader() {
			continue
		}
		if l != nil {
			t.Fatalf("two leaders: %s and %s", l.Name(), n.Name())
		}
		l = n
	}
	if l == nil {
		t.Fatal("no leader")
	}
	return l
}

// checkPrefixAgreement verifies every pair of applied logs agree on the
// common prefix — the fundamental RSM safety property.
func (c *cluster) checkPrefixAgreement(t *testing.T) {
	t.Helper()
	for _, a := range c.names {
		for _, b := range c.names {
			la, lb := c.logs[a], c.logs[b]
			m := len(la)
			if len(lb) < m {
				m = len(lb)
			}
			for i := 0; i < m; i++ {
				if la[i].ID != lb[i].ID {
					t.Fatalf("logs diverge at %d: %s has %s, %s has %s", i, a, la[i].ID, b, lb[i].ID)
				}
			}
		}
	}
}

func (c *cluster) settle(d time.Duration) { c.sched.RunFor(d) }

func TestElectsSingleLeader(t *testing.T) {
	c := newCluster(t, 5, 1)
	c.settle(3 * time.Second)
	l := c.leader(t)
	// All nodes agree on the leader.
	for _, n := range c.nodes {
		if n.Leader() != l.Name() {
			t.Fatalf("%s believes leader is %q, want %s", n.Name(), n.Leader(), l.Name())
		}
	}
}

func TestProposeAndApplyInOrder(t *testing.T) {
	c := newCluster(t, 3, 2)
	c.settle(2 * time.Second)
	l := c.leader(t)
	for i := 0; i < 20; i++ {
		l.Propose(Command{ID: fmt.Sprintf("cmd%02d", i), Data: i}, nil)
	}
	c.settle(2 * time.Second)
	for _, name := range c.names {
		if len(c.logs[name]) != 20 {
			t.Fatalf("%s applied %d, want 20", name, len(c.logs[name]))
		}
		for i, cmd := range c.logs[name] {
			if cmd.ID != fmt.Sprintf("cmd%02d", i) {
				t.Fatalf("%s slot %d = %s", name, i, cmd.ID)
			}
		}
	}
	c.checkPrefixAgreement(t)
}

func TestProposeViaFollowerForwards(t *testing.T) {
	c := newCluster(t, 3, 3)
	c.settle(2 * time.Second)
	l := c.leader(t)
	var follower *Node
	for _, n := range c.nodes {
		if n != l {
			follower = n
			break
		}
	}
	applied := -1
	follower.Propose(Command{ID: "via-follower"}, func(slot int) { applied = slot })
	c.settle(2 * time.Second)
	if applied < 0 {
		t.Fatal("forwarded proposal never applied")
	}
	for _, name := range c.names {
		if len(c.logs[name]) != 1 || c.logs[name][0].ID != "via-follower" {
			t.Fatalf("%s log = %v", name, c.logs[name])
		}
	}
}

func TestLeaderFailureElectsNewAndPreservesLog(t *testing.T) {
	c := newCluster(t, 5, 4)
	c.settle(2 * time.Second)
	l1 := c.leader(t)
	for i := 0; i < 5; i++ {
		l1.Propose(Command{ID: fmt.Sprintf("before%d", i)}, nil)
	}
	c.settle(time.Second)
	l1.Stop()
	c.settle(3 * time.Second)
	l2 := c.leader(t)
	if l2 == l1 {
		t.Fatal("dead node still leader")
	}
	for i := 0; i < 5; i++ {
		l2.Propose(Command{ID: fmt.Sprintf("after%d", i)}, nil)
	}
	c.settle(2 * time.Second)
	for _, name := range c.names {
		if name == l1.Name() {
			continue
		}
		if got := len(c.logs[name]); got != 10 {
			t.Fatalf("%s applied %d, want 10", name, got)
		}
	}
	c.checkPrefixAgreement(t)
}

func TestStoppedLeaderResumesAsFollowerAndCatchesUp(t *testing.T) {
	c := newCluster(t, 3, 5)
	c.settle(2 * time.Second)
	l1 := c.leader(t)
	l1.Propose(Command{ID: "one"}, nil)
	c.settle(time.Second)
	l1.Stop()
	c.settle(3 * time.Second)
	l2 := c.leader(t)
	for i := 0; i < 8; i++ {
		l2.Propose(Command{ID: fmt.Sprintf("while-down%d", i)}, nil)
	}
	c.settle(2 * time.Second)
	l1.Resume()
	c.settle(5 * time.Second)
	if got := len(c.logs[l1.Name()]); got != 9 {
		t.Fatalf("resumed node applied %d, want 9 (catch-up)", got)
	}
	c.checkPrefixAgreement(t)
	if l1.IsLeader() && l2.IsLeader() {
		t.Fatal("two concurrent leaders after resume")
	}
}

func TestMinorityPartitionCannotChoose(t *testing.T) {
	c := newCluster(t, 5, 6)
	c.settle(2 * time.Second)
	l := c.leader(t)
	// Partition the leader plus one follower away from the other three.
	minority := []string{l.Name()}
	for _, name := range c.names {
		if name != l.Name() {
			minority = append(minority, name)
			break
		}
	}
	inMinority := map[string]bool{}
	for _, m := range minority {
		inMinority[m] = true
	}
	for _, a := range c.names {
		for _, b := range c.names {
			if inMinority[a] != inMinority[b] {
				c.net.Cut(a, b)
			}
		}
	}
	l.Propose(Command{ID: "minority-cmd"}, nil)
	c.settle(3 * time.Second)
	// The minority leader must not have applied it.
	for _, m := range minority {
		for _, cmd := range c.logs[m] {
			if cmd.ID == "minority-cmd" {
				t.Fatal("minority chose a command")
			}
		}
	}
	// Majority elects its own leader and makes progress.
	var majLeader *Node
	for name, n := range c.nodes {
		if !inMinority[name] && n.IsLeader() {
			majLeader = n
		}
	}
	if majLeader == nil {
		t.Fatal("majority has no leader")
	}
	majLeader.Propose(Command{ID: "majority-cmd"}, nil)
	c.settle(2 * time.Second)
	found := false
	for name := range c.nodes {
		if inMinority[name] {
			continue
		}
		for _, cmd := range c.logs[name] {
			if cmd.ID == "majority-cmd" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("majority failed to choose")
	}
	// Heal: minority adopts the majority's log; the old leader's command
	// may be re-proposed or lost (it was never chosen) — but prefixes agree.
	for _, a := range c.names {
		for _, b := range c.names {
			c.net.Heal(a, b)
		}
	}
	c.settle(5 * time.Second)
	c.checkPrefixAgreement(t)
}

func TestLossyNetworkStillAgrees(t *testing.T) {
	c := newCluster(t, 3, 7)
	for i, a := range c.names {
		for _, b := range c.names[i+1:] {
			c.net.SetLossRate(a, b, 0.15)
		}
	}
	c.settle(3 * time.Second)
	// Propose through whichever node believes it leads; retries and
	// re-elections must still converge.
	for i := 0; i < 10; i++ {
		for _, n := range c.nodes {
			if n.IsLeader() {
				n.Propose(Command{ID: fmt.Sprintf("lossy%02d", i)}, nil)
				break
			}
		}
		c.settle(500 * time.Millisecond)
	}
	c.settle(10 * time.Second)
	c.checkPrefixAgreement(t)
	// At least most commands should have made it.
	max := 0
	for _, name := range c.names {
		if len(c.logs[name]) > max {
			max = len(c.logs[name])
		}
	}
	if max < 8 {
		t.Fatalf("only %d commands chosen under 15%% loss", max)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []string {
		c := newCluster(t, 3, 42)
		c.settle(2 * time.Second)
		l := c.leader(t)
		for i := 0; i < 5; i++ {
			l.Propose(Command{ID: fmt.Sprintf("d%d", i)}, nil)
		}
		c.settle(2 * time.Second)
		var ids []string
		for _, cmd := range c.logs["m0"] {
			ids = append(ids, cmd.ID)
		}
		return ids
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestBallotEncoding(t *testing.T) {
	b := NewBallot(7, 3)
	if b.Round() != 7 || b.Proposer() != 3 {
		t.Fatalf("ballot round=%d proposer=%d", b.Round(), b.Proposer())
	}
	if NewBallot(2, 0) <= NewBallot(1, 65535) {
		t.Fatal("higher round must dominate proposer index")
	}
}

func TestNoopFilteredFromApply(t *testing.T) {
	// Force a gap: leader proposes slots, dies before finishing; new
	// leader noop-fills. The no-ops must not reach the applier.
	c := newCluster(t, 3, 9)
	c.settle(2 * time.Second)
	l := c.leader(t)
	l.Propose(Command{ID: "a"}, nil)
	c.settle(time.Second)
	l.Stop()
	c.settle(3 * time.Second)
	l2 := c.leader(t)
	l2.Propose(Command{ID: "b"}, nil)
	c.settle(2 * time.Second)
	for _, name := range c.names {
		for _, cmd := range c.logs[name] {
			if cmd.IsNoop() {
				t.Fatalf("%s applied a noop", name)
			}
		}
	}
	c.checkPrefixAgreement(t)
}

// Safety sweep across many seeds with random failures: prefix agreement and
// single-leader-per-ballot must hold in every run.
func TestSafetySweep(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c := newCluster(t, 5, seed)
			c.settle(2 * time.Second)
			rng := c.sched.Rand()
			cmd := 0
			for round := 0; round < 6; round++ {
				// Random chaos: stop/resume a node, cut/heal a link.
				victim := c.nodes[c.names[rng.Intn(len(c.names))]]
				switch rng.Intn(3) {
				case 0:
					victim.Stop()
				case 1:
					victim.Resume()
				case 2:
					a, b := c.names[rng.Intn(5)], c.names[rng.Intn(5)]
					if a != b {
						if rng.Intn(2) == 0 {
							c.net.Cut(a, b)
						} else {
							c.net.Heal(a, b)
						}
					}
				}
				for _, n := range c.nodes {
					if !n.stopped && n.IsLeader() {
						n.Propose(Command{ID: fmt.Sprintf("s%dc%d", seed, cmd)}, nil)
						cmd++
						break
					}
				}
				c.settle(2 * time.Second)
			}
			// Heal everything, resume everyone, converge.
			for _, a := range c.names {
				for _, b := range c.names {
					c.net.Heal(a, b)
				}
			}
			for _, n := range c.nodes {
				n.Resume()
			}
			c.settle(10 * time.Second)
			c.checkPrefixAgreement(t)
		})
	}
}
