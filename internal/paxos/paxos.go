// Package paxos implements the multi-decree Paxos replicated log the UStore
// Master runs on (§IV-A: "the Master ... is implemented as a replicated
// state machine using the Paxos consensus protocol").
//
// Every node is acceptor, learner, and potential proposer. A stable leader
// is elected with Phase 1 over all unchosen slots at once (Multi-Paxos);
// commands then need only Phase 2. Heartbeats maintain leadership and carry
// the chosen prefix so followers can request catch-up. Randomized election
// timeouts restore liveness after leader failure.
//
// The implementation is single-threaded on the simulation scheduler: all
// handlers run as scheduler events, so the protocol state needs no locks
// and every run is deterministic. Safety holds under message loss,
// duplication, reordering (simnet delivers with per-link latency), and
// partitions; tests assert the canonical invariants (one value chosen per
// slot, identical applied prefixes).
package paxos

import (
	"fmt"
	"sort"
	"time"

	"ustore/internal/simnet"
	"ustore/internal/simtime"
)

// Command is a value proposed into the log. ID must be unique per logical
// command; the state machine above deduplicates replays by it (a command
// may be re-proposed after leader change and can be chosen twice in
// different slots).
type Command struct {
	ID   string
	Data any
}

// noopID marks gap-filling commands issued during leader recovery.
const noopID = "__paxos_noop__"

// IsNoop reports whether cmd is a recovery no-op the state machine should
// skip.
func (c Command) IsNoop() bool { return c.ID == noopID }

// Applier receives chosen commands in slot order, exactly once per slot.
type Applier func(slot int, cmd Command)

// Config tunes protocol timing.
type Config struct {
	// HeartbeatInterval is the leader's heartbeat period.
	HeartbeatInterval time.Duration
	// ElectionTimeoutBase is the minimum silence before campaigning; each
	// node adds a random fraction of it again to avoid duels.
	ElectionTimeoutBase time.Duration
	// PhaseTimeout bounds each Prepare/Accept round before retry.
	PhaseTimeout time.Duration
}

// DefaultConfig returns timing suitable for a datacenter-local quorum.
func DefaultConfig() Config {
	return Config{
		HeartbeatInterval:   100 * time.Millisecond,
		ElectionTimeoutBase: 400 * time.Millisecond,
		PhaseTimeout:        300 * time.Millisecond,
	}
}

// Ballot is a proposal number: round<<16 | proposerIndex.
type Ballot uint64

// NewBallot builds a ballot from a round counter and proposer index.
func NewBallot(round uint64, proposer int) Ballot {
	return Ballot(round<<16 | uint64(proposer&0xffff))
}

// Round returns the round component.
func (b Ballot) Round() uint64 { return uint64(b) >> 16 }

// Proposer returns the proposer index component.
func (b Ballot) Proposer() int { return int(uint64(b) & 0xffff) }

// slotState is one log position's acceptor + learner state.
type slotState struct {
	acceptedBallot Ballot
	acceptedValue  Command
	hasAccepted    bool
	chosen         bool
	chosenValue    Command
	acks           map[string]bool // leader-side Phase 2 acks
}

// Wire messages (delivered as simnet payloads).
type (
	prepareMsg struct {
		Ballot   Ballot
		FromSlot int
	}
	promiseMsg struct {
		Ballot   Ballot
		Accepted []wireSlot
	}
	nackMsg struct {
		Ballot Ballot // the higher ballot the acceptor promised
	}
	acceptMsg struct {
		Ballot Ballot
		Slot   int
		Value  Command
	}
	acceptedMsg struct {
		Ballot Ballot
		Slot   int
	}
	chosenMsg struct {
		Slot  int
		Value Command
	}
	heartbeatMsg struct {
		Ballot       Ballot
		ChosenPrefix int
	}
	proposeFwd struct {
		Cmd Command
	}
	catchupReq struct {
		FromSlot int
	}
	catchupResp struct {
		Entries []wireSlot
	}
)

type wireSlot struct {
	Slot   int
	Ballot Ballot
	Value  Command
	Chosen bool
}

// Node is one Paxos replica.
type Node struct {
	name  string
	index int
	peers []string // includes self
	cfg   Config
	sched *simtime.Scheduler
	net   *simnet.Network
	node  *simnet.Node
	apply Applier

	// Acceptor state.
	promised Ballot

	// Log.
	slots   map[int]*slotState
	applied int // next slot to apply
	chosenP int // contiguous chosen prefix (== lowest unchosen slot)

	// Leadership.
	isLeader     bool
	leaderBallot Ballot
	leaderHint   string // who we believe leads
	lastLeaderAt simtime.Time
	campaigning  bool
	promises     map[string][]wireSlot
	nextSlot     int // leader: next free slot

	// Client proposals.
	pending   []Command
	inFlight  map[string]int // cmd ID -> slot (leader side)
	onApplied map[string]func(slot int)

	stopped bool

	// Stats.
	elections uint64
	proposed  uint64
}

// New creates a replica named name (must appear in peers) on net.
func New(net *simnet.Network, name string, peers []string, cfg Config, apply Applier) *Node {
	idx := -1
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	for i, p := range sorted {
		if p == name {
			idx = i
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("paxos: %s not in peer list %v", name, peers))
	}
	n := &Node{
		name:      name,
		index:     idx,
		peers:     sorted,
		cfg:       cfg,
		sched:     net.Scheduler(),
		net:       net,
		node:      net.Node(name),
		apply:     apply,
		slots:     make(map[int]*slotState),
		promises:  make(map[string][]wireSlot),
		inFlight:  make(map[string]int),
		onApplied: make(map[string]func(int)),
	}
	n.node.Handle(n.dispatch)
	n.armElectionTimer()
	return n
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// IsLeader reports current leadership belief.
func (n *Node) IsLeader() bool { return n.isLeader }

// Leader returns the believed leader's name ("" if unknown).
func (n *Node) Leader() string {
	if n.isLeader {
		return n.name
	}
	return n.leaderHint
}

// Applied returns the number of slots applied to the state machine.
func (n *Node) Applied() int { return n.applied }

// Elections returns how many campaigns this node has started.
func (n *Node) Elections() uint64 { return n.elections }

// Stop makes the node inert (process crash). Its acceptor state is
// retained, modelling a restart-with-durable-state when Resume is called.
func (n *Node) Stop() {
	n.stopped = true
	n.isLeader = false
	n.node.SetDown(true)
}

// Resume restarts a stopped node.
func (n *Node) Resume() {
	n.stopped = false
	n.node.SetDown(false)
	n.lastLeaderAt = n.sched.Now()
	n.armElectionTimer()
}

// Propose submits a command. If this node is not leader it forwards to the
// believed leader (or buffers until one emerges). onApplied, if non-nil,
// fires when the command is applied locally (at-least-once: callers give
// commands unique IDs and the state machine deduplicates).
func (n *Node) Propose(cmd Command, onApplied func(slot int)) {
	if n.stopped {
		return
	}
	if onApplied != nil {
		n.onApplied[cmd.ID] = onApplied
	}
	if n.isLeader {
		n.leaderPropose(cmd)
		return
	}
	if n.leaderHint != "" {
		n.node.Send(n.leaderHint, proposeFwd{Cmd: cmd}, 64)
		return
	}
	n.pending = append(n.pending, cmd)
}

func (n *Node) quorum() int { return len(n.peers)/2 + 1 }

func (n *Node) slot(i int) *slotState {
	s, ok := n.slots[i]
	if !ok {
		s = &slotState{acks: make(map[string]bool)}
		n.slots[i] = s
	}
	return s
}

func (n *Node) broadcast(payload any, size int) {
	for _, p := range n.peers {
		n.node.Send(p, payload, size)
	}
}

// --- Elections ---

func (n *Node) armElectionTimer() {
	jitter := time.Duration(n.sched.Rand().Int63n(int64(n.cfg.ElectionTimeoutBase)))
	timeout := n.cfg.ElectionTimeoutBase + jitter
	n.sched.After(timeout, func() {
		if n.stopped {
			return
		}
		if !n.isLeader && n.sched.Now()-n.lastLeaderAt >= n.cfg.ElectionTimeoutBase {
			n.campaign()
		}
		n.armElectionTimer()
	})
}

func (n *Node) campaign() {
	n.elections++
	n.campaigning = true
	round := n.promised.Round() + 1
	b := NewBallot(round, n.index)
	n.promised = b
	n.leaderBallot = b
	n.promises = map[string][]wireSlot{}
	from := n.chosenP
	ballot := b
	n.broadcast(prepareMsg{Ballot: b, FromSlot: from}, 64)
	n.sched.After(n.cfg.PhaseTimeout, func() {
		if n.campaigning && n.leaderBallot == ballot && !n.isLeader {
			n.campaigning = false // retry via election timer
		}
	})
}

// --- Message handling ---

func (n *Node) dispatch(msg simnet.Message) {
	if n.stopped {
		return
	}
	switch m := msg.Payload.(type) {
	case prepareMsg:
		n.onPrepare(msg.From, m)
	case promiseMsg:
		n.onPromise(msg.From, m)
	case nackMsg:
		n.onNack(m)
	case acceptMsg:
		n.onAccept(msg.From, m)
	case acceptedMsg:
		n.onAccepted(msg.From, m)
	case chosenMsg:
		n.markChosen(m.Slot, m.Value)
	case heartbeatMsg:
		n.onHeartbeat(msg.From, m)
	case proposeFwd:
		if n.isLeader {
			n.leaderPropose(m.Cmd)
		} else if n.leaderHint != "" && n.leaderHint != msg.From {
			n.node.Send(n.leaderHint, m, 64)
		} else {
			n.pending = append(n.pending, m.Cmd)
		}
	case catchupReq:
		n.onCatchupReq(msg.From, m)
	case catchupResp:
		for _, e := range m.Entries {
			if e.Chosen {
				n.markChosen(e.Slot, e.Value)
			}
		}
	}
}

func (n *Node) onPrepare(from string, m prepareMsg) {
	if m.Ballot < n.promised {
		n.node.Send(from, nackMsg{Ballot: n.promised}, 16)
		return
	}
	n.promised = m.Ballot
	if from != n.name {
		// A prepare from a would-be leader resets our election patience.
		n.lastLeaderAt = n.sched.Now()
	}
	var acc []wireSlot
	for i, s := range n.slots {
		if i < m.FromSlot {
			continue
		}
		switch {
		case s.chosen:
			acc = append(acc, wireSlot{Slot: i, Ballot: s.acceptedBallot, Value: s.chosenValue, Chosen: true})
		case s.hasAccepted:
			acc = append(acc, wireSlot{Slot: i, Ballot: s.acceptedBallot, Value: s.acceptedValue})
		}
	}
	n.node.Send(from, promiseMsg{Ballot: m.Ballot, Accepted: acc}, 64+len(acc)*32)
}

func (n *Node) onPromise(from string, m promiseMsg) {
	if !n.campaigning || m.Ballot != n.leaderBallot {
		return
	}
	n.promises[from] = m.Accepted
	if len(n.promises) < n.quorum() {
		return
	}
	// Quorum: become leader.
	n.campaigning = false
	n.isLeader = true
	n.leaderHint = n.name
	n.lastLeaderAt = n.sched.Now()

	// Recover: adopt highest-ballot accepted value per slot; chosen values
	// win outright.
	highest := make(map[int]wireSlot)
	maxSlot := n.chosenP - 1
	for _, acc := range n.promises {
		for _, ws := range acc {
			if ws.Slot > maxSlot {
				maxSlot = ws.Slot
			}
			cur, ok := highest[ws.Slot]
			if ws.Chosen || !ok || ws.Ballot > cur.Ballot {
				if !cur.Chosen || ws.Chosen {
					highest[ws.Slot] = ws
				}
			}
		}
	}
	n.nextSlot = maxSlot + 1
	if n.nextSlot < n.chosenP {
		n.nextSlot = n.chosenP
	}
	for i := n.chosenP; i <= maxSlot; i++ {
		if ws, ok := highest[i]; ok {
			if ws.Chosen {
				n.markChosen(ws.Slot, ws.Value)
				n.broadcast(chosenMsg{Slot: ws.Slot, Value: ws.Value}, 64)
			} else {
				n.phase2(i, ws.Value)
			}
		} else {
			n.phase2(i, Command{ID: noopID})
		}
	}
	// Drain buffered proposals.
	pend := n.pending
	n.pending = nil
	for _, c := range pend {
		n.leaderPropose(c)
	}
	n.heartbeat()
}

func (n *Node) onNack(m nackMsg) {
	if m.Ballot > n.promised {
		n.promised = m.Ballot
	}
	if n.isLeader && m.Ballot > n.leaderBallot {
		n.isLeader = false
	}
	n.campaigning = false
}

func (n *Node) leaderPropose(cmd Command) {
	if slot, dup := n.inFlight[cmd.ID]; dup {
		_ = slot // already proposed under this leadership; Phase 2 retries handle it
		return
	}
	slot := n.nextSlot
	n.nextSlot++
	n.inFlight[cmd.ID] = slot
	n.proposed++
	n.phase2(slot, cmd)
}

func (n *Node) phase2(slot int, value Command) {
	s := n.slot(slot)
	if s.chosen {
		return
	}
	s.acks = make(map[string]bool)
	b := n.leaderBallot
	n.broadcast(acceptMsg{Ballot: b, Slot: slot, Value: value}, 128)
	n.sched.After(n.cfg.PhaseTimeout, func() {
		if n.stopped || !n.isLeader || n.leaderBallot != b {
			return
		}
		if !n.slot(slot).chosen {
			n.phase2(slot, value) // retry under same ballot
		}
	})
}

func (n *Node) onAccept(from string, m acceptMsg) {
	if m.Ballot < n.promised {
		n.node.Send(from, nackMsg{Ballot: n.promised}, 16)
		return
	}
	n.promised = m.Ballot
	if from != n.name {
		n.lastLeaderAt = n.sched.Now()
		n.leaderHint = from
		if n.isLeader && m.Ballot > n.leaderBallot {
			n.isLeader = false
		}
	}
	s := n.slot(m.Slot)
	if !s.chosen {
		s.acceptedBallot = m.Ballot
		s.acceptedValue = m.Value
		s.hasAccepted = true
	}
	n.node.Send(from, acceptedMsg{Ballot: m.Ballot, Slot: m.Slot}, 32)
}

func (n *Node) onAccepted(from string, m acceptedMsg) {
	if !n.isLeader || m.Ballot != n.leaderBallot {
		return
	}
	s := n.slot(m.Slot)
	if s.chosen {
		return
	}
	s.acks[from] = true
	if len(s.acks) >= n.quorum() {
		value := s.acceptedValue
		if !s.hasAccepted {
			// The leader itself may not have self-delivered yet; the value
			// is whatever we sent — recover it from in-flight tracking is
			// complex, so leaders always self-deliver (local sends have
			// zero latency and are processed before remote acks).
			return
		}
		n.markChosen(m.Slot, value)
		n.broadcast(chosenMsg{Slot: m.Slot, Value: value}, 128)
	}
}

func (n *Node) markChosen(slot int, value Command) {
	s := n.slot(slot)
	if s.chosen {
		return
	}
	s.chosen = true
	s.chosenValue = value
	for n.slots[n.chosenP] != nil && n.slots[n.chosenP].chosen {
		n.chosenP++
	}
	n.applyReady()
}

func (n *Node) applyReady() {
	for n.applied < n.chosenP {
		slot := n.applied
		s := n.slots[slot]
		n.applied++
		cmd := s.chosenValue
		if !cmd.IsNoop() && n.apply != nil {
			n.apply(slot, cmd)
		}
		if cb, ok := n.onApplied[cmd.ID]; ok {
			delete(n.onApplied, cmd.ID)
			cb(slot)
		}
	}
}

// --- Heartbeats & catch-up ---

func (n *Node) heartbeat() {
	if n.stopped || !n.isLeader {
		return
	}
	n.broadcast(heartbeatMsg{Ballot: n.leaderBallot, ChosenPrefix: n.chosenP}, 32)
	n.sched.After(n.cfg.HeartbeatInterval, n.heartbeat)
}

func (n *Node) onHeartbeat(from string, m heartbeatMsg) {
	if m.Ballot < n.promised {
		n.node.Send(from, nackMsg{Ballot: n.promised}, 16)
		return
	}
	n.promised = m.Ballot
	if from != n.name {
		if n.isLeader {
			n.isLeader = false
		}
		n.leaderHint = from
		n.lastLeaderAt = n.sched.Now()
		n.campaigning = false
		// Flush buffered proposals to the live leader.
		pend := n.pending
		n.pending = nil
		for _, c := range pend {
			n.node.Send(from, proposeFwd{Cmd: c}, 64)
		}
	}
	if m.ChosenPrefix > n.chosenP {
		n.node.Send(from, catchupReq{FromSlot: n.chosenP}, 16)
	}
}

func (n *Node) onCatchupReq(from string, m catchupReq) {
	var entries []wireSlot
	for i := m.FromSlot; i < n.chosenP; i++ {
		s := n.slots[i]
		if s == nil || !s.chosen {
			break
		}
		entries = append(entries, wireSlot{Slot: i, Value: s.chosenValue, Chosen: true})
		if len(entries) >= 256 {
			break
		}
	}
	if len(entries) > 0 {
		n.node.Send(from, catchupResp{Entries: entries}, 64+len(entries)*64)
	}
}
