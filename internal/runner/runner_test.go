package runner

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMapOrdersResultsByIndex: results land at their input index no matter
// how workers interleave. Run with -race in CI.
func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, parallel := range []int{1, 2, 4, 13, 64} {
		out := Map(100, parallel, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("parallel=%d: out[%d] = %d, want %d", parallel, i, v, i*i)
			}
		}
	}
}

// TestMapRunsEveryIndexExactlyOnce guards the work-stealing counter.
func TestMapRunsEveryIndexExactlyOnce(t *testing.T) {
	var counts [257]atomic.Int32
	Map(len(counts), 8, func(i int) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
	}
}

// TestMapBoundsParallelism: no more than the requested number of workers run
// fn at once.
func TestMapBoundsParallelism(t *testing.T) {
	const parallel = 3
	var inFlight, peak atomic.Int32
	var mu sync.Mutex
	Map(50, parallel, func(i int) struct{} {
		cur := inFlight.Add(1)
		mu.Lock()
		if cur > peak.Load() {
			peak.Store(cur)
		}
		mu.Unlock()
		inFlight.Add(-1)
		return struct{}{}
	})
	if p := peak.Load(); p > parallel {
		t.Fatalf("observed %d concurrent calls, limit %d", p, parallel)
	}
}

// TestMapSequentialFallback: parallel<=1 must not spawn goroutines, so fn can
// safely mutate shared state in index order.
func TestMapSequentialFallback(t *testing.T) {
	var order []int
	Map(10, 1, func(i int) struct{} {
		order = append(order, i) // unsynchronized: only safe sequentially
		return struct{}{}
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order broken: %v", order)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if out := Map(0, 4, func(i int) int { return i }); out != nil {
		t.Fatalf("Map(0) = %v, want nil", out)
	}
}

// TestMapErrReturnsLowestIndexError: the reported error is deterministic —
// the lowest failing index — not whichever worker failed first.
func TestMapErrReturnsLowestIndexError(t *testing.T) {
	wantErr := errors.New("boom 3")
	out, err := MapErr(10, 4, func(i int) (int, error) {
		if i == 3 || i == 7 {
			return 0, fmt.Errorf("boom %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != wantErr.Error() {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	// Successful indexes still deliver their values.
	if out[5] != 5 {
		t.Fatalf("out[5] = %d, want 5", out[5])
	}
}

func TestMapErrNil(t *testing.T) {
	out, err := MapErr(4, 2, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatal("Workers(5) != 5")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("Workers must resolve non-positive to >= 1")
	}
}
