// Package runner executes independent deterministic simulation runs on a
// worker pool.
//
// Every simulation in this repo is single-threaded by design: one
// simtime.Scheduler per run, every state change on the scheduler goroutine,
// bit-identical output for a given seed. That guarantee makes cross-run
// parallelism free of correctness risk — two runs share nothing, so a seed
// sweep, a set of benchmark trials, or the speculative probes of a schedule
// bisection can execute on as many cores as the host has while producing
// exactly the bytes the sequential loop would.
//
// Map preserves that determinism at the collection point: results are stored
// by index, so the output order never depends on goroutine completion order.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested parallelism degree: values < 1 mean "one per
// available CPU" (GOMAXPROCS), anything else is returned unchanged.
func Workers(requested int) int {
	if requested < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// Map runs fn(0) … fn(n-1) on up to parallel workers and returns the results
// indexed by input: out[i] == fn(i) regardless of which worker computed it or
// when it finished. parallel < 1 uses one worker per CPU. fn must be safe to
// call concurrently with itself — true for anything that builds its own
// scheduler per call.
//
// With parallel <= 1 (or n <= 1) the calls happen inline on the caller's
// goroutine, in index order, with no synchronization — the sequential loop it
// replaces, byte for byte.
func Map[T any](n, parallel int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	parallel = Workers(parallel)
	if parallel > n {
		parallel = n
	}
	out := make([]T, n)
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// MapErr is Map for functions that can fail. It always runs every index to
// completion, then returns the error with the lowest index (deterministic no
// matter which worker hit it first), or nil if all succeeded.
func MapErr[T any](n, parallel int, fn func(i int) (T, error)) ([]T, error) {
	type res struct {
		v   T
		err error
	}
	results := Map(n, parallel, func(i int) res {
		v, err := fn(i)
		return res{v: v, err: err}
	})
	out := make([]T, n)
	var firstErr error
	for i, r := range results {
		out[i] = r.v
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
	}
	return out, firstErr
}
