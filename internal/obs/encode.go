package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
)

// SeriesSnapshot is one metric series at snapshot time. Full metric name
// is Component + "_" + Name (the component_metric_unit convention).
type SeriesSnapshot struct {
	Name      string            `json:"name"`
	Component string            `json:"component"`
	Type      string            `json:"type"`
	Labels    map[string]string `json:"labels,omitempty"`
	Value     float64           `json:"value"`           // counter, gauge
	Count     uint64            `json:"count,omitempty"` // histogram
	Sum       float64           `json:"sum,omitempty"`   // histogram
	Buckets   []BucketSnapshot  `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket. LE is the upper
// bound rendered as Prometheus would ("+Inf" for the overflow bucket).
type BucketSnapshot struct {
	LE         string `json:"le"`
	Cumulative uint64 `json:"cumulative"`
}

// Snapshot is a point-in-time copy of every series in a registry, sorted
// by full name then labels so encoding is deterministic.
type Snapshot struct {
	Metrics []SeriesSnapshot `json:"metrics"`
}

func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// labelString renders sorted labels as a stable {k="v",...} suffix.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	s := "{"
	for i, l := range labels {
		if i > 0 {
			s += ","
		}
		s += l.Key + "=" + strconv.Quote(l.Value)
	}
	return s + "}"
}

// Snapshot copies every series out of the registry. Safe to call while
// the run is still updating metrics (each field is read atomically).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.Unlock()

	bounds := HistogramBounds()
	snap := Snapshot{Metrics: make([]SeriesSnapshot, 0, len(all))}
	for _, s := range all {
		ss := SeriesSnapshot{
			Name:      s.component + "_" + s.name,
			Component: s.component,
			Type:      s.kind.String(),
			Labels:    labelMap(s.labels),
		}
		switch s.kind {
		case kindCounter:
			ss.Value = float64(atomic.LoadUint64(&s.counter))
		case kindGauge:
			ss.Value = (*Gauge)(&s.gauge).Value()
		case kindHistogram:
			h := s.hist
			ss.Count = h.Count()
			ss.Sum = h.Sum()
			cum := uint64(0)
			ss.Buckets = make([]BucketSnapshot, 0, HistBuckets+1)
			for i, b := range bounds {
				cum += atomic.LoadUint64(&h.buckets[i])
				ss.Buckets = append(ss.Buckets, BucketSnapshot{LE: formatBound(b), Cumulative: cum})
			}
			cum += atomic.LoadUint64(&h.buckets[HistBuckets])
			ss.Buckets = append(ss.Buckets, BucketSnapshot{LE: "+Inf", Cumulative: cum})
		}
		snap.Metrics = append(snap.Metrics, ss)
	}
	sort.Slice(snap.Metrics, func(i, j int) bool {
		a, b := snap.Metrics[i], snap.Metrics[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return labelMapString(a.Labels) < labelMapString(b.Labels)
	})
	return snap
}

func labelMapString(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += k + "=" + m[k] + "\x1f"
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON. Output is byte-stable
// for identical registry contents (series sorted, map keys sorted by
// encoding/json).
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (families sorted by name, one # TYPE line per family).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		an, bn := a.component+"_"+a.name, b.component+"_"+b.name
		if an != bn {
			return an < bn
		}
		return labelString(a.labels) < labelString(b.labels)
	})

	bounds := HistogramBounds()
	lastFamily := ""
	for _, s := range all {
		full := s.component + "_" + s.name
		if full != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", full, s.kind); err != nil {
				return err
			}
			lastFamily = full
		}
		ls := labelString(s.labels)
		switch s.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", full, ls, atomic.LoadUint64(&s.counter)); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", full, ls,
				strconv.FormatFloat((*Gauge)(&s.gauge).Value(), 'g', -1, 64)); err != nil {
				return err
			}
		case kindHistogram:
			h := s.hist
			cum := uint64(0)
			for i, b := range bounds {
				cum += atomic.LoadUint64(&h.buckets[i])
				if err := writeBucketLine(w, full, s.labels, formatBound(b), cum); err != nil {
					return err
				}
			}
			cum += atomic.LoadUint64(&h.buckets[HistBuckets])
			if err := writeBucketLine(w, full, s.labels, "+Inf", cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", full, ls,
				strconv.FormatFloat(h.Sum(), 'g', -1, 64)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", full, ls, h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeBucketLine(w io.Writer, full string, labels []Label, le string, cum uint64) error {
	withLE := make([]Label, 0, len(labels)+1)
	withLE = append(withLE, labels...)
	withLE = append(withLE, Label{Key: "le", Value: le})
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", full, labelString(withLE), cum)
	return err
}
