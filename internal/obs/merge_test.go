package obs

import (
	"bytes"
	"testing"
	"time"
)

// buildPartitionRecorders produces a fixed pair of partition recorders with
// overlapping series and interleaved trace timestamps.
func buildPartitionRecorders() []*Recorder {
	a, b := NewRecorder(), NewRecorder()
	clockA := time.Duration(0)
	clockB := time.Duration(0)
	a.BindClock(func() time.Duration { return clockA })
	b.BindClock(func() time.Duration { return clockB })

	a.Counter("net", "sent").Add(3)
	b.Counter("net", "sent").Add(5)
	a.Gauge("disk", "spinning").Set(2)
	b.Gauge("disk", "spinning").Set(7)
	a.Histogram("rpc", "seconds").Observe(0.001)
	a.Histogram("rpc", "seconds").Observe(0.004)
	b.Histogram("rpc", "seconds").Observe(0.002)

	clockA = 5 * time.Millisecond
	idA := a.Instant("fleet", "boot", "events")
	clockB = 3 * time.Millisecond
	b.Instant("fleet", "boot", "events")
	clockA = 9 * time.Millisecond
	a.InstantCause("fleet", "follow", "events", idA)
	return []*Recorder{a, b}
}

func mergedOutput(t *testing.T) (string, string) {
	t.Helper()
	dst := NewRecorder()
	MergeRecorders(dst, buildPartitionRecorders()...)
	var m, tr bytes.Buffer
	if err := dst.Registry().WriteJSON(&m); err != nil {
		t.Fatal(err)
	}
	if err := dst.Tracer().WriteChromeTrace(&tr); err != nil {
		t.Fatal(err)
	}
	return m.String(), tr.String()
}

func TestMergeRecordersSumsSeries(t *testing.T) {
	dst := NewRecorder()
	dst.Counter("net", "sent").Add(100) // pre-existing dst state survives
	MergeRecorders(dst, buildPartitionRecorders()...)
	if got := dst.Counter("net", "sent").Value(); got != 108 {
		t.Errorf("merged counter = %d, want 108", got)
	}
	if got := dst.Gauge("disk", "spinning").Value(); got != 9 {
		t.Errorf("merged gauge = %v, want 9 (sum of partitions)", got)
	}
	h := dst.Histogram("rpc", "seconds")
	if h.Count() != 3 {
		t.Errorf("merged histogram count = %d, want 3", h.Count())
	}
	if got, want := h.Sum(), 0.007; got < want-1e-12 || got > want+1e-12 {
		t.Errorf("merged histogram sum = %v, want %v", got, want)
	}
}

func TestMergeRecordersDeterministic(t *testing.T) {
	m1, t1 := mergedOutput(t)
	for i := 0; i < 3; i++ {
		m2, t2 := mergedOutput(t)
		if m1 != m2 {
			t.Fatal("merged metrics JSON not byte-stable across merges")
		}
		if t1 != t2 {
			t.Fatal("merged trace JSON not byte-stable across merges")
		}
	}
}

func TestMergeTracerOrdersAndRemapsIDs(t *testing.T) {
	dst := NewRecorder()
	MergeRecorders(dst, buildPartitionRecorders()...)
	tr := dst.Tracer()
	if tr.Len() != 3 {
		t.Fatalf("merged tracer has %d events, want 3", tr.Len())
	}
	// Events must be time-ordered with IDs assigned in that order: the 3ms
	// event from partition B sorts ahead of partition A's 5ms and 9ms ones,
	// and the cause link must follow the remapped ID of the 5ms event.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"ts":3000`, `"ts":5000`, `"ts":9000`, `"cause":`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("merged trace missing %s:\n%s", want, out)
		}
	}
}

func TestMergeRecordersNilSafe(t *testing.T) {
	MergeRecorders(nil, NewRecorder())
	dst := NewRecorder()
	MergeRecorders(dst, nil, NewRecorder(), nil)
}
