package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestPrometheusGolden pins the exact text exposition bytes for a small
// registry. Regenerate with: go test ./internal/obs -run Golden -update
func TestPrometheusGolden(t *testing.T) {
	rec := NewRecorder()
	rec.Counter("simnet", "msgs_sent_total").Add(42)
	rec.Counter("simnet", "msgs_dropped_total", L("reason", "partition")).Add(3)
	rec.Counter("simnet", "msgs_dropped_total", L("reason", "loss")).Add(1)
	rec.Gauge("usb", "link_utilization_ratio", L("link", "root:h1")).Set(0.625)
	// Gray-failure instrumentation: the detector's quarantine counters and
	// the client mitigation stack's hedging counters, exactly as core emits
	// them, so exposition of the gray metric family is pinned too.
	rec.Counter("core", "health_quarantines_total").Add(2)
	rec.Counter("core", "health_releases_total").Add(1)
	rec.Gauge("core", "health_gray_disks").Set(1)
	rec.Counter("core", "hedge_reads_total").Add(7)
	rec.Counter("core", "hedge_wins_total").Add(5)
	rec.Counter("core", "hedge_breaker_opens_total").Add(2)
	rec.Counter("core", "hedge_redirects_total").Add(3)
	rec.Counter("core", "hedge_fast_fails_total").Add(4)
	// Multi-tenant protection instrumentation: the admission stack's
	// per-class counters and the traffic engine's per-phase request
	// histogram, exactly as internal/policy and internal/workload emit
	// them, so the overload metric family's exposition is pinned too.
	rec.Counter("policy", "admitted_total", L("class", "premium")).Add(120)
	rec.Counter("policy", "throttled_total", L("class", "batch")).Add(9)
	rec.Counter("policy", "shed_total", L("class", "batch"), L("reason", "queue_full")).Add(4)
	rec.Counter("policy", "spinups_total").Add(6)
	rec.Gauge("policy", "active_disks").Set(5)
	wh := rec.Histogram("workload", "request_seconds", L("class", "premium"), L("phase", "storm"))
	wh.Observe(0.009) // in-SLO premium read
	wh.Observe(0.072) // storm-tail premium read
	h := rec.Histogram("disk", "io_seconds", L("op", "read"))
	h.Observe(0.5e-6) // bucket 0
	h.Observe(1e-6)   // bucket 0 (inclusive bound)
	h.Observe(3e-6)   // bucket 2
	h.Observe(0.008)  // mid-range
	h.Observe(1e9)    // +Inf overflow

	var buf bytes.Buffer
	if err := rec.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "registry.prom")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Prometheus encoding drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s",
			buf.String(), want)
	}
}
