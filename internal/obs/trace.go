package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// DefaultTraceCap is the ring-buffer capacity of a Recorder's tracer. It is
// sized so a day-scale simulated chaos run keeps its boot-time events (USB
// enumeration, first elections); longer runs overwrite oldest-first and
// report the loss in the dump's dropped_events metadata.
const DefaultTraceCap = 1 << 18

// Tracer records spans and instant events into a fixed-capacity ring
// buffer, overwriting the oldest events when full. Timestamps come from a
// bound simulated clock; until BindClock is called they read zero. All
// methods are nil-safe.
type Tracer struct {
	mu      sync.Mutex
	clock   func() time.Duration
	cap     int
	ring    []traceEvent
	next    int    // ring write cursor
	total   uint64 // events ever appended (total - len(ring) = dropped)
	nextID  uint64 // event/span ID allocator (first-use order; deterministic)
	started uint64 // spans begun
}

type traceEvent struct {
	id    uint64
	seq   uint64 // append order, for stable sorting at equal ts
	cat   string // component; becomes the trace "process"
	name  string
	track string // becomes the trace "thread"
	phase byte   // 'X' complete, 'i' instant
	ts    time.Duration
	dur   time.Duration // 'X' only
	cause uint64        // 0 = none
	args  []Label
}

// NewTracer creates a tracer holding at most capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{cap: capacity, ring: make([]traceEvent, 0, capacity)}
}

// BindClock sets the simulated-time source.
func (t *Tracer) BindClock(clock func() time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

func (t *Tracer) now() time.Duration {
	if t.clock == nil {
		return 0
	}
	return t.clock()
}

// append stores ev in the ring, overwriting the oldest event when full.
// Caller holds t.mu.
func (t *Tracer) append(ev traceEvent) {
	ev.seq = t.total
	t.total++
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, ev)
		t.next = len(t.ring) % t.cap
		return
	}
	t.ring[t.next] = ev
	t.next = (t.next + 1) % t.cap
}

// Span is an open interval on a component timeline. End closes it and
// emits one complete ('X') event. Nil-safe.
type Span struct {
	t     *Tracer
	id    uint64
	cat   string
	name  string
	track string
	start time.Duration
	args  []Label
}

// Begin opens a span. cat is the component, track groups events into rows
// (chrome://tracing threads).
func (t *Tracer) Begin(cat, name, track string, args ...Label) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	t.started++
	return &Span{t: t, id: t.nextID, cat: cat, name: name, track: track, start: t.now(), args: args}
}

// ID returns the span's event ID for cause-linking (0 on nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// End closes the span, appending extra args to those given at Begin.
func (s *Span) End(args ...Label) {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	all := s.args
	if len(args) > 0 {
		all = append(append([]Label{}, s.args...), args...)
	}
	t.append(traceEvent{
		id: s.id, cat: s.cat, name: s.name, track: s.track,
		phase: 'X', ts: s.start, dur: now - s.start, args: all,
	})
}

// Instant records a zero-duration event; returns its ID for cause links.
func (t *Tracer) Instant(cat, name, track string, args ...Label) uint64 {
	return t.InstantCause(cat, name, track, 0, args...)
}

// InstantCause records an instant event linked to a causing event ID
// (0 = no cause). The link is emitted into the event's args as "cause".
func (t *Tracer) InstantCause(cat, name, track string, cause uint64, args ...Label) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	t.append(traceEvent{
		id: t.nextID, cat: cat, name: name, track: track,
		phase: 'i', ts: t.now(), cause: cause, args: args,
	})
	return t.nextID
}

// Len returns the number of buffered events; Dropped how many were
// overwritten.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.ring))
}

// chromeEvent is one entry of the Chrome trace_event JSON array. Field
// order is fixed by the struct, so encoding is deterministic.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds of simulated time
	Dur  *float64          `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"` // instant scope
	ID   string            `json:"id,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	Metadata        map[string]uint64 `json:"metadata,omitempty"`
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace dumps the buffered events as Chrome trace_event JSON
// (load via chrome://tracing or ui.perfetto.dev). Components become
// processes and tracks become threads, both named via 'M' metadata
// events; IDs are assigned in sorted order so output is deterministic.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`+"\n")
		return err
	}
	t.mu.Lock()
	events := make([]traceEvent, len(t.ring))
	copy(events, t.ring)
	dropped := t.total - uint64(len(t.ring))
	t.mu.Unlock()

	sort.Slice(events, func(i, j int) bool {
		if events[i].ts != events[j].ts {
			return events[i].ts < events[j].ts
		}
		return events[i].seq < events[j].seq
	})

	// Deterministic pid/tid assignment: sorted component names, then
	// sorted track names within a component.
	pids := map[string]int{}
	tids := map[string]map[string]int{}
	for _, ev := range events {
		if _, ok := tids[ev.cat]; !ok {
			tids[ev.cat] = map[string]int{}
		}
		tids[ev.cat][ev.track] = 0
	}
	cats := make([]string, 0, len(tids))
	for c := range tids {
		cats = append(cats, c)
	}
	sort.Strings(cats)

	out := chromeTrace{DisplayTimeUnit: "ms"}
	if dropped > 0 {
		out.Metadata = map[string]uint64{"dropped_events": dropped}
	}
	for pi, c := range cats {
		pid := pi + 1
		pids[c] = pid
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]string{"name": c},
		})
		tracks := make([]string, 0, len(tids[c]))
		for tr := range tids[c] {
			tracks = append(tracks, tr)
		}
		sort.Strings(tracks)
		for ti, tr := range tracks {
			tids[c][tr] = ti + 1
			name := tr
			if name == "" {
				name = c
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: ti + 1,
				Args: map[string]string{"name": name},
			})
		}
	}

	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.name,
			Cat:  ev.cat,
			Ph:   string(ev.phase),
			Ts:   micros(ev.ts),
			Pid:  pids[ev.cat],
			Tid:  tids[ev.cat][ev.track],
		}
		if ev.phase == 'X' {
			d := micros(ev.dur)
			ce.Dur = &d
		}
		if ev.phase == 'i' {
			ce.S = "t"
		}
		var args map[string]string
		if len(ev.args) > 0 || ev.cause != 0 {
			args = make(map[string]string, len(ev.args)+2)
			for _, a := range ev.args {
				args[a.Key] = a.Value
			}
			if ev.cause != 0 {
				args["cause"] = formatUint(ev.cause)
			}
		}
		if args == nil {
			args = map[string]string{}
		}
		args["id"] = formatUint(ev.id)
		ce.Args = args
		out.TraceEvents = append(out.TraceEvents, ce)
	}

	b, err := json.Marshal(out)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }
