package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Deterministic merge of per-partition observability state.
//
// The parallel engine gives every partition its own Recorder so metric and
// trace writes never cross partition boundaries mid-window. At the end of a
// run the partitions are folded into the user's recorder with MergeRecorders.
// Everything about the fold is a pure function of the partitions' contents
// and their order — series are visited in sorted-key order, trace events in
// (timestamp, partition, sequence) order, float sums accumulate in that fixed
// order — so the merged output is byte-identical at any worker count.

// MergeRecorders folds the partition recorders into dst, in slice order.
// Nil recorders (dst or partitions) are skipped; the fold is additive, so
// anything already recorded directly on dst is preserved.
func MergeRecorders(dst *Recorder, parts ...*Recorder) {
	if dst == nil {
		return
	}
	for _, p := range parts {
		if p == nil {
			continue
		}
		dst.reg.mergeFrom(p.reg)
	}
	trs := make([]*Tracer, 0, len(parts))
	for _, p := range parts {
		if p == nil {
			continue
		}
		trs = append(trs, p.tr)
	}
	dst.tr.mergeFrom(trs)
}

// mergeFrom adds every series of src into r, creating series as needed.
// Counters and histogram bucket/observation counts are integer adds; gauges
// and histogram sums are float adds performed in sorted-series order, so the
// result does not depend on map iteration.
func (r *Registry) mergeFrom(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	keys := make([]string, 0, len(src.series))
	for k := range src.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	srcSeries := make([]*series, len(keys))
	for i, k := range keys {
		srcSeries[i] = src.series[k]
	}
	src.mu.Unlock()

	for _, s := range srcSeries {
		d := r.lookup(s.component, s.name, s.kind, s.labels)
		if d == nil {
			continue // kind collision with an existing dst series
		}
		switch s.kind {
		case kindCounter:
			(*Counter)(&d.counter).Add((*Counter)(&s.counter).Value())
		case kindGauge:
			// Partition gauges measure disjoint populations (per-partition
			// queue depths, per-unit spinning counts), so the fleet-level
			// value is their sum.
			(*Gauge)(&d.gauge).Add((*Gauge)(&s.gauge).Value())
		case kindHistogram:
			d.hist.merge(s.hist)
		}
	}
}

// merge adds src's buckets, count, and sum into h. Merging runs at engine
// quiescence with no concurrent observers, but the access idiom stays atomic
// to match Observe.
func (h *Histogram) merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	for i := range src.buckets {
		if v := atomic.LoadUint64(&src.buckets[i]); v != 0 {
			atomic.AddUint64(&h.buckets[i], v)
		}
	}
	if c := src.Count(); c != 0 {
		atomic.AddUint64(&h.count, c)
	}
	if s := src.Sum(); s != 0 {
		for {
			old := atomic.LoadUint64(&h.sumBits)
			next := math.Float64bits(math.Float64frombits(old) + s)
			if atomic.CompareAndSwapUint64(&h.sumBits, old, next) {
				break
			}
		}
	}
}

// mergeFrom interleaves the partitions' buffered trace events into t in
// (timestamp, partition, sequence) order, remapping event IDs — allocated
// independently per partition — into t's ID space so cause links stay valid
// and IDs stay unique. Events evicted from a partition ring count toward t's
// dropped total; causes pointing at evicted events are cleared.
func (t *Tracer) mergeFrom(parts []*Tracer) {
	if t == nil {
		return
	}
	type partEvent struct {
		part int
		ev   traceEvent
	}
	var all []partEvent
	var dropped, started uint64
	for pi, p := range parts {
		if p == nil {
			continue
		}
		p.mu.Lock()
		for _, ev := range p.ring {
			all = append(all, partEvent{part: pi, ev: ev})
		}
		dropped += p.total - uint64(len(p.ring))
		started += p.started
		p.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].ev.ts != all[j].ev.ts {
			return all[i].ev.ts < all[j].ev.ts
		}
		if all[i].part != all[j].part {
			return all[i].part < all[j].part
		}
		return all[i].ev.seq < all[j].ev.seq
	})

	t.mu.Lock()
	defer t.mu.Unlock()
	type pid struct {
		part int
		id   uint64
	}
	remap := make(map[pid]uint64, len(all))
	for _, pe := range all {
		key := pid{pe.part, pe.ev.id}
		if _, ok := remap[key]; !ok {
			t.nextID++
			remap[key] = t.nextID
		}
	}
	t.started += started
	t.total += dropped
	for _, pe := range all {
		ev := pe.ev
		ev.id = remap[pid{pe.part, ev.id}]
		if ev.cause != 0 {
			ev.cause = remap[pid{pe.part, ev.cause}] // 0 when the cause was evicted
		}
		t.append(ev)
	}
}
