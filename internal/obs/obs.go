// Package obs is the observability subsystem for the simulated stack: a
// lock-cheap metrics registry (counters, gauges, log-scale histograms), a
// ring-buffer event tracer driven off simulated time, and a per-run
// Recorder that scopes both so concurrent runs do not collide.
//
// Design rules:
//
//   - All metric handles are nil-safe: every method on a nil *Counter,
//     *Gauge, *Histogram, *Span, Tracer or Recorder is a no-op. Components
//     hold handles unconditionally and instrumentation sites need no
//     "if enabled" branches.
//   - Registry lookups take a mutex once, at handle-creation time; the hot
//     path (Inc/Add/Set/Observe) is a single atomic operation.
//   - Timestamps come from the simulation clock, never the wall clock, so
//     two runs with the same seed produce byte-identical snapshots.
//   - Metric naming follows component_metric_unit (e.g. disk_io_seconds);
//     the component is a registry key, the exported name is the join.
package obs

import "time"

// Label is one key=value metric label or trace argument.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Recorder scopes a metrics registry and an event tracer to one run.
// A nil Recorder is valid and records nothing.
type Recorder struct {
	reg *Registry
	tr  *Tracer
}

// NewRecorder creates a Recorder with an empty registry and a tracer with
// the default ring capacity. The tracer's clock reads zero until BindClock
// is called with the run's simulated clock.
func NewRecorder() *Recorder {
	return NewRecorderCap(DefaultTraceCap)
}

// NewRecorderCap is NewRecorder with an explicit trace ring capacity, for
// long runs that would otherwise overwrite early events (boot-time
// enumeration, elections) before the dump.
func NewRecorderCap(traceCap int) *Recorder {
	return &Recorder{reg: NewRegistry(), tr: NewTracer(traceCap)}
}

// BindClock points the tracer at the run's simulated clock. Call it once
// the scheduler exists (e.g. from NewCluster); rebinding on a later run
// that reuses the Recorder is allowed.
func (r *Recorder) BindClock(clock func() time.Duration) {
	if r == nil {
		return
	}
	r.tr.BindClock(clock)
}

// Registry returns the run's metrics registry (nil on a nil Recorder).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Tracer returns the run's event tracer (nil on a nil Recorder).
func (r *Recorder) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tr
}

// Counter returns (creating if needed) the counter component_name{labels}.
func (r *Recorder) Counter(component, name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.reg.Counter(component, name, labels...)
}

// Gauge returns (creating if needed) the gauge component_name{labels}.
func (r *Recorder) Gauge(component, name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.reg.Gauge(component, name, labels...)
}

// Histogram returns (creating if needed) the histogram
// component_name{labels} with the default log-scale buckets.
func (r *Recorder) Histogram(component, name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.reg.Histogram(component, name, labels...)
}

// Begin opens a trace span on the component's timeline. track groups
// events into horizontal rows in chrome://tracing (e.g. a disk or host
// ID); use "" for a single shared row.
func (r *Recorder) Begin(component, name, track string, args ...Label) *Span {
	if r == nil {
		return nil
	}
	return r.tr.Begin(component, name, track, args...)
}

// Instant records a zero-duration trace event and returns its ID for
// cause-linking from later events.
func (r *Recorder) Instant(component, name, track string, args ...Label) uint64 {
	if r == nil {
		return 0
	}
	return r.tr.Instant(component, name, track, args...)
}

// InstantCause records an instant event caused by a prior event (0 = no
// cause).
func (r *Recorder) InstantCause(component, name, track string, cause uint64, args ...Label) uint64 {
	if r == nil {
		return 0
	}
	return r.tr.InstantCause(component, name, track, cause, args...)
}
