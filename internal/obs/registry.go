package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds all metric series for one run, keyed by
// (component, name, labels). Handle creation takes the registry mutex;
// updates through the returned handles are single atomic operations.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
}

// series is one (component, name, labels) time series.
type series struct {
	component string
	name      string
	labels    []Label // sorted by key
	kind      metricKind

	counter uint64 // Counter: atomic count
	gauge   uint64 // Gauge: atomic math.Float64bits

	hist *Histogram
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// seriesKey canonicalizes the identity of a series. labels must already be
// sorted by key.
func seriesKey(component, name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(component)
	b.WriteByte(0x1f)
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0x1f)
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

func sortLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return labels
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup returns the series, creating it with the given kind if absent.
// A kind mismatch on an existing series returns nil (programming error;
// the nil handle then no-ops rather than corrupting another series).
func (r *Registry) lookup(component, name string, kind metricKind, labels []Label) *series {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	key := seriesKey(component, name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[key]
	if !ok {
		s = &series{component: component, name: name, labels: labels, kind: kind}
		if kind == kindHistogram {
			s.hist = &Histogram{}
		}
		r.series[key] = s
	}
	if s.kind != kind {
		return nil
	}
	return s
}

// Counter returns the named counter handle, creating the series if needed.
func (r *Registry) Counter(component, name string, labels ...Label) *Counter {
	s := r.lookup(component, name, kindCounter, labels)
	if s == nil {
		return nil
	}
	return (*Counter)(&s.counter)
}

// Gauge returns the named gauge handle, creating the series if needed.
func (r *Registry) Gauge(component, name string, labels ...Label) *Gauge {
	s := r.lookup(component, name, kindGauge, labels)
	if s == nil {
		return nil
	}
	return (*Gauge)(&s.gauge)
}

// Histogram returns the named histogram handle, creating the series if
// needed.
func (r *Registry) Histogram(component, name string, labels ...Label) *Histogram {
	s := r.lookup(component, name, kindHistogram, labels)
	if s == nil {
		return nil
	}
	return s.hist
}

// Counter is a monotonically increasing count. All methods are nil-safe.
type Counter uint64

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	atomic.AddUint64((*uint64)(c), n)
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return atomic.LoadUint64((*uint64)(c))
}

// Gauge is a float64 that can go up and down. All methods are nil-safe.
type Gauge uint64

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	atomic.StoreUint64((*uint64)(g), math.Float64bits(v))
}

// Add increments the gauge by delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := atomic.LoadUint64((*uint64)(g))
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64((*uint64)(g), old, next) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64((*uint64)(g)))
}

// Histogram buckets: fixed log-scale (powers of two) upper bounds
// HistMinBound * 2^i for i in [0, HistBuckets), in the metric's natural
// unit (by convention seconds). With HistMinBound = 1e-6 the range spans
// 1µs .. ~6.4 simulated days; observations above the last bound land in
// the implicit +Inf bucket, observations at or below the first bound in
// bucket 0.
const (
	HistBuckets  = 40
	HistMinBound = 1e-6
)

// HistogramBounds returns the finite upper bounds (le) of the default
// buckets, ascending.
func HistogramBounds() []float64 {
	out := make([]float64, HistBuckets)
	b := HistMinBound
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}

// Histogram is a fixed-bucket log-scale histogram. All methods are
// nil-safe. Bucket counts are non-cumulative internally; snapshots emit
// Prometheus-style cumulative buckets.
type Histogram struct {
	buckets [HistBuckets + 1]uint64 // last slot is +Inf overflow
	count   uint64
	sumBits uint64 // math.Float64bits, CAS-updated
}

// bucketIndex maps v to its bucket, deterministically: the smallest i with
// v <= HistMinBound*2^i, clamped to the +Inf slot. Uses Frexp rather than
// a floating log so boundary values land exactly.
func bucketIndex(v float64) int {
	if v <= HistMinBound {
		return 0
	}
	frac, exp := math.Frexp(v / HistMinBound) // v/min = frac * 2^exp, frac in [0.5, 1)
	idx := exp
	if frac == 0.5 {
		idx = exp - 1
	}
	if idx >= HistBuckets {
		return HistBuckets // +Inf
	}
	return idx
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	atomic.AddUint64(&h.buckets[bucketIndex(v)], 1)
	atomic.AddUint64(&h.count, 1)
	for {
		old := atomic.LoadUint64(&h.sumBits)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&h.sumBits, old, next) {
			return
		}
	}
}

// ObserveDuration records a duration as seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return atomic.LoadUint64(&h.count)
}

// Sum reads the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&h.sumBits))
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed values: the upper bound of the first bucket whose cumulative
// count reaches rank ceil(q*n).
//
// Error bound: bucket i covers (HistMinBound*2^(i-1), HistMinBound*2^i]
// (bucket 0 covers everything at or below HistMinBound), so the true
// quantile lies in (bound/2, bound] — the returned value overestimates by
// at most 2x and never underestimates. That is the price of fixed
// power-of-two buckets; for exact percentiles keep raw samples.
//
// Returns 0 when the histogram is empty and +Inf when the rank falls in
// the overflow bucket. A concurrent Observe may skew the result by one
// observation; snapshots taken between runs are exact.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.Count()
	if n == 0 || q <= 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	cum := uint64(0)
	bound := HistMinBound
	for i := 0; i < HistBuckets; i++ {
		cum += atomic.LoadUint64(&h.buckets[i])
		if cum >= rank {
			return bound
		}
		bound *= 2
	}
	return math.Inf(1)
}

// QuantileDuration is Quantile for histograms observed in seconds,
// returned as a duration. An overflow-bucket (+Inf) result clamps to the
// maximum representable duration.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	v := h.Quantile(q)
	if math.IsInf(v, 1) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(v * float64(time.Second))
}
