package obs

import (
	"math"
	"testing"
	"time"
)

// TestQuantileEmpty: an empty (or nil) histogram reports 0 for every
// quantile rather than NaN or a panic.
func TestQuantileEmpty(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.99); got != 0 {
		t.Fatalf("nil Quantile = %g, want 0", got)
	}
	h := &Histogram{}
	for _, q := range []float64{0.5, 0.99, 0.999, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
	if got := h.QuantileDuration(0.99); got != 0 {
		t.Fatalf("empty QuantileDuration = %v, want 0", got)
	}
}

// TestQuantileSingleBucket: with all mass in one bucket, every quantile is
// that bucket's upper bound.
func TestQuantileSingleBucket(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.Observe(3e-6) // bucket 2, bound 4e-6
	}
	for _, q := range []float64{0.001, 0.5, 0.99, 0.999, 1} {
		if got := h.Quantile(q); got != 4e-6 {
			t.Fatalf("Quantile(%g) = %g, want 4e-6", q, got)
		}
	}
}

// TestQuantileRanks pins exact rank arithmetic at bucket edges: 100
// observations split 50/49/1 across three buckets, so p50 must resolve to
// the first bucket's bound, p99 to the second's, p999 to the third's.
func TestQuantileRanks(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 50; i++ {
		h.Observe(1e-6) // bucket 0, bound 1e-6
	}
	for i := 0; i < 49; i++ {
		h.Observe(3e-6) // bucket 2, bound 4e-6
	}
	h.Observe(100e-6) // bucket 7, bound 128e-6

	cases := []struct {
		q    float64
		want float64
	}{
		{0.5, 1e-6},     // rank ceil(0.5*100)=50: last of bucket 0
		{0.51, 4e-6},    // rank 51: first of bucket 2
		{0.99, 4e-6},    // rank 99: last of bucket 2
		{0.999, 128e-6}, // rank 100: the straggler
		{1, 128e-6},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

// TestQuantileErrorBound: for log-uniform values the bucket upper bound
// must bracket the exact quantile within the documented (1x, 2x] window.
func TestQuantileErrorBound(t *testing.T) {
	h := &Histogram{}
	var exact []float64
	v := 1e-4
	for i := 0; i < 1000; i++ {
		h.Observe(v)
		exact = append(exact, v)
		v *= 1.005
	}
	// exact is already sorted ascending.
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(math.Ceil(q * float64(len(exact))))
		truth := exact[rank-1]
		got := h.Quantile(q)
		if got < truth || got > 2*truth {
			t.Errorf("Quantile(%g) = %g outside [truth, 2*truth] for truth %g", q, got, truth)
		}
	}
}

// TestQuantileOverflow: ranks landing in the +Inf bucket report +Inf, and
// QuantileDuration clamps instead of overflowing.
func TestQuantileOverflow(t *testing.T) {
	h := &Histogram{}
	h.Observe(1e-3)
	h.Observe(1e12) // +Inf bucket
	if got := h.Quantile(1); !math.IsInf(got, 1) {
		t.Fatalf("Quantile(1) = %g, want +Inf", got)
	}
	if got := h.QuantileDuration(1); got != time.Duration(math.MaxInt64) {
		t.Fatalf("QuantileDuration(1) = %v, want max duration", got)
	}
	if got := h.QuantileDuration(0.5); got != 1024*time.Microsecond {
		t.Fatalf("QuantileDuration(0.5) = %v, want 1.024ms (bucket bound above 1ms)", got)
	}
}
