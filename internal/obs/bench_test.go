package obs

import "testing"

// BenchmarkRegistryObserve measures the per-observation cost when the
// instrumentation site re-resolves its series every time — the pattern the
// pre-resolved-handle migration removes from hot paths.
func BenchmarkRegistryObserve(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Counter("simnet", "rpc_timeouts_total", L("method", "endpoint.Read")).Inc()
		r.Histogram("simnet", "rpc_seconds", L("method", "endpoint.Read")).Observe(0.001)
	}
}

// BenchmarkRegistryObserveCached is the same observation load through
// handles resolved once — the hot-path pattern after the migration.
func BenchmarkRegistryObserveCached(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("simnet", "rpc_timeouts_total", L("method", "endpoint.Read"))
	h := r.Histogram("simnet", "rpc_seconds", L("method", "endpoint.Read"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(0.001)
	}
}
