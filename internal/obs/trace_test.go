package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

type fakeClock struct{ now time.Duration }

func (c *fakeClock) clock() time.Duration { return c.now }

func TestTracerSpansAndInstants(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(128)
	tr.BindClock(clk.clock)

	clk.now = 5 * time.Millisecond
	sp := tr.Begin("disk", "io", "disk01", L("op", "read"))
	clk.now = 9 * time.Millisecond
	sp.End(L("bytes", "4096"))
	id := tr.Instant("chaos", "fault", "", L("kind", "disk-fail"))
	tr.InstantCause("core", "failover-start", "h1", id)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	var span, instant, caused map[string]any
	for _, ev := range out.TraceEvents {
		switch ev["name"] {
		case "io":
			span = ev
		case "fault":
			instant = ev
		case "failover-start":
			caused = ev
		}
	}
	if span == nil || instant == nil || caused == nil {
		t.Fatalf("missing events in dump: %s", buf.String())
	}
	if span["ph"] != "X" || span["ts"].(float64) != 5000 || span["dur"].(float64) != 4000 {
		t.Errorf("span event wrong: %v", span)
	}
	args := span["args"].(map[string]any)
	if args["op"] != "read" || args["bytes"] != "4096" {
		t.Errorf("span args wrong: %v", args)
	}
	if instant["ph"] != "i" {
		t.Errorf("instant phase wrong: %v", instant)
	}
	cargs := caused["args"].(map[string]any)
	if cargs["cause"] != instant["args"].(map[string]any)["id"] {
		t.Errorf("cause link broken: caused=%v instant=%v", caused, instant)
	}
	// pid separation: different components get different pids.
	if span["pid"] == instant["pid"] {
		t.Errorf("disk and chaos events share a pid: %v vs %v", span["pid"], instant["pid"])
	}
}

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Instant("c", "e", "")
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any  `json:"traceEvents"`
		Metadata    map[string]uint64 `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Metadata["dropped_events"] != 6 {
		t.Fatalf("dropped_events metadata = %d, want 6", out.Metadata["dropped_events"])
	}
	// 4 kept events survive: the newest IDs 7..10.
	var ids []string
	for _, ev := range out.TraceEvents {
		if ev["ph"] == "i" {
			ids = append(ids, ev["args"].(map[string]any)["id"].(string))
		}
	}
	want := []string{"7", "8", "9", "10"}
	if len(ids) != len(want) {
		t.Fatalf("kept %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("kept %v, want %v", ids, want)
		}
	}
}

func TestTraceDeterminism(t *testing.T) {
	emit := func() []byte {
		clk := &fakeClock{}
		tr := NewTracer(64)
		tr.BindClock(clk.clock)
		for i := 0; i < 10; i++ {
			clk.now = time.Duration(i) * time.Second
			sp := tr.Begin("usb", "enumerate", "h1")
			clk.now += 350 * time.Millisecond
			sp.End()
			tr.Instant("simnet", "drop", "net")
		}
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(emit(), emit()) {
		t.Fatal("identical event sequences produced different trace bytes")
	}
}
