package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// TestBucketBoundaries pins the bucket mapping at and around every bound:
// values exactly on a bound are inclusive (Prometheus "le" semantics),
// values just above roll to the next bucket, and out-of-range values
// clamp to the first / overflow bucket.
func TestBucketBoundaries(t *testing.T) {
	bounds := HistogramBounds()
	if len(bounds) != HistBuckets {
		t.Fatalf("HistogramBounds returned %d bounds, want %d", len(bounds), HistBuckets)
	}
	if bounds[0] != HistMinBound {
		t.Fatalf("first bound = %g, want %g", bounds[0], HistMinBound)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] != bounds[i-1]*2 {
			t.Fatalf("bound[%d] = %g, want 2*bound[%d] = %g", i, bounds[i], i-1, bounds[i-1]*2)
		}
	}

	cases := []struct {
		v    float64
		want int
	}{
		{-1, 0},
		{0, 0},
		{HistMinBound / 2, 0},
		{HistMinBound, 0},                    // exactly on first bound: inclusive
		{math.Nextafter(HistMinBound, 1), 1}, // just above
		{2 * HistMinBound, 1},                // exactly on second bound
		{math.Nextafter(2*HistMinBound, 1), 2},
		{3 * HistMinBound, 2},
		{4 * HistMinBound, 2},
		{bounds[HistBuckets-1], HistBuckets - 1}, // last finite bound, inclusive
		{math.Nextafter(bounds[HistBuckets-1], math.Inf(1)), HistBuckets}, // overflow
		{1e18, HistBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}

	// Every bound value must land in its own bucket (exhaustive sweep).
	for i, b := range bounds {
		if got := bucketIndex(b); got != i {
			t.Errorf("bucketIndex(bound[%d]=%g) = %d, want %d", i, b, got, i)
		}
		if i+1 < len(bounds) {
			mid := b * 1.5
			if got := bucketIndex(mid); got != i+1 {
				t.Errorf("bucketIndex(%g) = %d, want %d", mid, got, i+1)
			}
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	h := &Histogram{}
	h.Observe(0.5e-6)
	h.Observe(1e-6)
	h.Observe(3e-6)
	h.ObserveDuration(2 * time.Millisecond)
	h.Observe(1e12) // overflow
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	wantSum := 0.5e-6 + 1e-6 + 3e-6 + 0.002 + 1e12
	if h.Sum() != wantSum {
		t.Fatalf("Sum = %g, want %g", h.Sum(), wantSum)
	}
	if h.buckets[0] != 2 {
		t.Errorf("bucket 0 = %d, want 2", h.buckets[0])
	}
	if h.buckets[HistBuckets] != 1 {
		t.Errorf("+Inf bucket = %d, want 1", h.buckets[HistBuckets])
	}
}

// TestNilSafety exercises every method on nil handles; any panic fails.
func TestNilSafety(t *testing.T) {
	var rec *Recorder
	rec.BindClock(func() time.Duration { return 0 })
	rec.Counter("x", "y").Inc()
	rec.Gauge("x", "y").Set(1)
	rec.Histogram("x", "y").Observe(1)
	rec.Begin("x", "y", "").End()
	rec.Instant("x", "y", "")
	rec.InstantCause("x", "y", "", 3)
	if rec.Registry() != nil || rec.Tracer() != nil {
		t.Fatal("nil recorder should return nil registry/tracer")
	}

	var c *Counter
	c.Inc()
	c.Add(2)
	if c.Value() != 0 {
		t.Fatal("nil counter value != 0")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	_ = g.Value()
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	_ = h.Count()
	_ = h.Sum()
	var sp *Span
	sp.End()
	_ = sp.ID()
	var tr *Tracer
	tr.BindClock(nil)
	tr.Begin("a", "b", "").End()
	tr.Instant("a", "b", "")
	_ = tr.Len()
	_ = tr.Dropped()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var reg *Registry
	reg.Counter("a", "b").Inc()
	_ = reg.Snapshot()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}

// populate fills a registry the same way twice to check determinism.
func populate(rec *Recorder) {
	rec.Counter("disk", "ios_total", L("op", "read")).Add(7)
	rec.Counter("disk", "ios_total", L("op", "write")).Add(3)
	rec.Gauge("usb", "link_utilization_ratio", L("link", "hub0")).Set(0.75)
	h := rec.Histogram("disk", "io_seconds")
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 1e-4)
	}
	rec.Counter("core", "failovers_total").Inc()
}

// TestSnapshotDeterminism: two registries populated identically produce
// byte-identical JSON and Prometheus encodings, regardless of handle
// creation interleaving.
func TestSnapshotDeterminism(t *testing.T) {
	a, b := NewRecorder(), NewRecorder()
	populate(a)
	// Populate b in a different creation order; snapshots sort.
	b.Counter("core", "failovers_total")
	b.Histogram("disk", "io_seconds")
	populate(b)

	var ja, jb bytes.Buffer
	if err := a.Registry().WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.Registry().WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatalf("JSON snapshots differ:\n%s\n---\n%s", ja.String(), jb.String())
	}

	var pa, pb bytes.Buffer
	if err := a.Registry().WritePrometheus(&pa); err != nil {
		t.Fatal(err)
	}
	if err := b.Registry().WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pa.Bytes(), pb.Bytes()) {
		t.Fatalf("Prometheus snapshots differ:\n%s\n---\n%s", pa.String(), pb.String())
	}

	// The JSON must round-trip and carry the expected series.
	var snap Snapshot
	if err := json.Unmarshal(ja.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	found := false
	for _, m := range snap.Metrics {
		if m.Name == "disk_io_seconds" && m.Type == "histogram" && m.Count == 100 {
			found = true
			if m.Buckets[len(m.Buckets)-1].LE != "+Inf" {
				t.Errorf("last bucket LE = %q, want +Inf", m.Buckets[len(m.Buckets)-1].LE)
			}
			if m.Buckets[len(m.Buckets)-1].Cumulative != 100 {
				t.Errorf("+Inf cumulative = %d, want 100", m.Buckets[len(m.Buckets)-1].Cumulative)
			}
		}
	}
	if !found {
		t.Fatal("disk_io_seconds histogram missing from snapshot")
	}
}

// TestRegistryKindMismatch: asking for an existing series under a
// different kind yields a nil (no-op) handle instead of corrupting it.
func TestRegistryKindMismatch(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a", "b").Add(5)
	if g := reg.Gauge("a", "b"); g != nil {
		t.Fatal("kind mismatch should return nil handle")
	}
	if reg.Counter("a", "b").Value() != 5 {
		t.Fatal("original counter clobbered")
	}
}

func TestLabelsCanonicalized(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("a", "b", L("x", "1"), L("y", "2"))
	c2 := reg.Counter("a", "b", L("y", "2"), L("x", "1"))
	c1.Inc()
	c2.Inc()
	if c1.Value() != 2 {
		t.Fatalf("label order created distinct series: %d", c1.Value())
	}
}
