// Empirical failure model: bathtub-curve annual failure rates, correlated
// shared-vintage batch failures, and measured uncorrectable-read-error
// rates, after Gray & van Ingen, "Empirical Measurements of Disk Failure
// Rates and Error Rates" (MSR-TR-2005-166; PAPERS.md).
//
// The seed injector draws every component's lifetime from a flat
// exponential — the datasheet world, where a disk's MTTF is a constant 10
// to 50 years. Field measurements disagree on both shape and magnitude:
//
//   - observed annualized failure rates sit at 3-6%, several times the
//     ~0.9% a 1M-hour datasheet MTTF implies (we use 3.6% as the
//     useful-life plateau);
//   - the hazard is a bathtub, not a flat line: infant mortality decays
//     over the first months, and wear-out climbs after ~5 years;
//   - failures correlate — disks bought together (same vintage, same
//     firmware, same pallet) fail together, so the independence assumption
//     under every naive durability calculation is optimistic;
//   - the advertised SATA uncorrectable-read-error rate of one per 1e14
//     bits ("one error per 10 TB read") is frightening but pessimistic:
//     moving ~2 PB Gray & van Ingen saw read-error events at roughly one
//     per 3e15 bits — ~30x better than spec, yet still certain to appear
//     in any petabyte-scale rebuild.
//
// EmpiricalModel packages those measurements as a hazard function plus
// seed-deterministic samplers. internal/spec selects it with
// `failure: {model: empirical}`, the chaos harness maps sampled failure
// ages onto an accelerated-aging schedule, and the campaign durability
// grid integrates it directly.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Year is the unit hazard rates are quoted in (annual failure rate).
const Year = 365 * 24 * time.Hour

// Reference rates from Gray & van Ingen (documented above; the table
// tests in empirical_test.go pin the samplers against these).
const (
	// DatasheetAFR is the ~1M-hour-MTTF annual failure rate vendors quote.
	DatasheetAFR = 0.009
	// ObservedAFR is the field-observed useful-life plateau.
	ObservedAFR = 0.036
	// SpecUREBits: advertised one uncorrectable read error per 1e14 bits.
	SpecUREBits = 1e14
	// ObservedUREBits: ~2 PB moved, read-error events at roughly one per
	// 3.2e15 bits — about 30x better than the spec sheet.
	ObservedUREBits = 3.2e15
)

// EmpiricalModel is a bathtub-hazard disk failure model with correlated
// shared-vintage batches and a URE rate. All rates are annual; ages are
// time.Durations on the disk-age axis (not simulation time — callers map
// between the two when running accelerated-aging schedules).
type EmpiricalModel struct {
	// InfantAFR is the excess annual failure rate at age zero; it decays
	// exponentially with e-folding time InfantDecay. Infant mortality is
	// why the year-one failure count exceeds the plateau by >60%.
	InfantAFR   float64
	InfantDecay time.Duration
	// UsefulAFR is the flat useful-life plateau (field-observed, not
	// datasheet).
	UsefulAFR float64
	// WearOutAfter is the wear-out onset age; past it the hazard rises
	// linearly by WearOutRise per year of age.
	WearOutAfter time.Duration
	WearOutRise  float64

	// Correlated batches: disks are grouped into shared-vintage batches of
	// BatchSize (by index); when one fails, each surviving batch-mate
	// independently suffers an induced failure with probability BatchShock,
	// landing uniformly within BatchWindow of the trigger. This is the
	// vintage-shock form of the "disks bought together fail together"
	// observation.
	BatchSize   int
	BatchShock  float64
	BatchWindow time.Duration

	// UREBits is the expected bits read per uncorrectable read error
	// (larger = healthier media). Zero disables the URE model.
	UREBits float64
}

// DefaultEmpirical returns the model calibrated to the Gray & van Ingen
// measurements documented at the top of this file.
func DefaultEmpirical() *EmpiricalModel {
	return &EmpiricalModel{
		InfantAFR:    0.10,
		InfantDecay:  90 * 24 * time.Hour,
		UsefulAFR:    ObservedAFR,
		WearOutAfter: 5 * Year,
		WearOutRise:  0.03,
		BatchSize:    16,
		BatchShock:   0.08,
		BatchWindow:  30 * 24 * time.Hour,
		UREBits:      ObservedUREBits,
	}
}

// Validate rejects parameterizations the samplers cannot handle.
func (m *EmpiricalModel) Validate() error {
	switch {
	case m.InfantAFR < 0 || m.UsefulAFR < 0 || m.WearOutRise < 0:
		return fmt.Errorf("empirical model: negative rate")
	case m.UsefulAFR == 0 && m.InfantAFR == 0 && m.WearOutRise == 0:
		return fmt.Errorf("empirical model: hazard is identically zero")
	case m.InfantAFR > 0 && m.InfantDecay <= 0:
		return fmt.Errorf("empirical model: infant mortality needs a positive decay time")
	case m.BatchShock < 0 || m.BatchShock >= 1:
		return fmt.Errorf("empirical model: batch shock probability must be in [0,1)")
	case m.BatchShock > 0 && (m.BatchSize < 2 || m.BatchWindow <= 0):
		return fmt.Errorf("empirical model: batch shocks need size >= 2 and a positive window")
	case m.UREBits < 0:
		return fmt.Errorf("empirical model: negative URE rate")
	}
	return nil
}

// Hazard returns the instantaneous annual failure rate at the given disk
// age: useful-life plateau + decaying infant excess + linear wear-out.
func (m *EmpiricalModel) Hazard(age time.Duration) float64 {
	h := m.UsefulAFR
	if m.InfantAFR > 0 && m.InfantDecay > 0 {
		h += m.InfantAFR * math.Exp(-float64(age)/float64(m.InfantDecay))
	}
	if m.WearOutRise > 0 && age > m.WearOutAfter {
		h += m.WearOutRise * float64(age-m.WearOutAfter) / float64(Year)
	}
	return h
}

// CumulativeHazard integrates Hazard over [from, to] in closed form; the
// probability a disk of age `from` survives to `to` is exp(-Λ).
func (m *EmpiricalModel) CumulativeHazard(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	years := func(d time.Duration) float64 { return float64(d) / float64(Year) }
	lam := m.UsefulAFR * years(to-from)
	if m.InfantAFR > 0 && m.InfantDecay > 0 {
		tau := years(m.InfantDecay)
		lam += m.InfantAFR * tau *
			(math.Exp(-years(from)/tau) - math.Exp(-years(to)/tau))
	}
	if m.WearOutRise > 0 && to > m.WearOutAfter {
		a := math.Max(years(from), years(m.WearOutAfter))
		b := years(to)
		w := years(m.WearOutAfter)
		lam += m.WearOutRise / 2 * ((b-w)*(b-w) - (a-w)*(a-w))
	}
	return lam
}

// FailuresPer1kDiskYears returns the analytic expected failure count per
// 1000 disks during their year `year` of life (1-based), without
// replacement: 1000 * P(survive to year start) * P(fail within the year).
// The table tests pin the fleet sampler against these numbers.
func (m *EmpiricalModel) FailuresPer1kDiskYears(year int) float64 {
	from := time.Duration(year-1) * Year
	to := time.Duration(year) * Year
	pSurvive := math.Exp(-m.CumulativeHazard(0, from))
	pFail := 1 - math.Exp(-m.CumulativeHazard(from, to))
	return 1000 * pSurvive * pFail
}

// SampleLife draws the next failure age of one disk currently aged
// startAge, looking no further than horizon (on the age axis). ok=false
// means the disk survives the horizon. Thinning against the hazard's
// maximum over the window keeps the draw exact for any bathtub shape.
func (m *EmpiricalModel) SampleLife(rng *rand.Rand, startAge, horizon time.Duration) (time.Duration, bool) {
	if horizon <= startAge {
		return 0, false
	}
	// The hazard is a sum of a decreasing, a constant, and an increasing
	// term, so its max over [startAge, horizon] is bounded by the sum of
	// each term's max at the interval's ends.
	bound := m.UsefulAFR + m.Hazard(startAge) + m.Hazard(horizon) // loose but safe
	age := startAge
	for {
		u := rng.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		age += time.Duration(-math.Log(u) / bound * float64(Year))
		if age >= horizon {
			return 0, false
		}
		if rng.Float64() < m.Hazard(age)/bound {
			return age, true
		}
	}
}

// FleetFailure is one failure event on the fleet age axis.
type FleetFailure struct {
	Disk    int
	At      time.Duration // age-axis time since fleet turn-up
	Induced bool          // triggered by a batch-mate (vintage shock)
}

// SampleFleet draws every failure of a fleet of `disks` same-vintage disks
// over [0, horizon) on the age axis. A failed disk is replaced with fresh
// media `repair` after its failure (repair <= 0 leaves it dead). Base
// failures come from the bathtub hazard per disk; each base failure then
// shocks its batch-mates with probability BatchShock (induced failures do
// not cascade further — a second-order effect the measurements cannot
// distinguish anyway). The result is sorted by (At, Disk) and is a pure
// function of the rng stream.
func (m *EmpiricalModel) SampleFleet(rng *rand.Rand, disks int, horizon, repair time.Duration) []FleetFailure {
	var out []FleetFailure
	// Base draws, disk by disk in index order: a renewal process when
	// replacement is on (the replacement is fresh media, age zero).
	for d := 0; d < disks; d++ {
		turnUp := time.Duration(0) // fleet time this disk's current media started
		for {
			age, ok := m.SampleLife(rng, 0, horizon-turnUp)
			if !ok {
				break
			}
			at := turnUp + age
			out = append(out, FleetFailure{Disk: d, At: at})
			if repair <= 0 {
				break
			}
			turnUp = at + repair
			if turnUp >= horizon {
				break
			}
		}
	}
	if m.BatchShock > 0 && m.BatchSize >= 2 {
		// Vintage shocks: iterate base failures in (At, Disk) order so the
		// Bernoulli stream is deterministic, shock batch-mates in index
		// order.
		base := append([]FleetFailure(nil), out...)
		sort.Slice(base, func(i, j int) bool {
			if base[i].At != base[j].At {
				return base[i].At < base[j].At
			}
			return base[i].Disk < base[j].Disk
		})
		for _, f := range base {
			batch := f.Disk / m.BatchSize
			lo, hi := batch*m.BatchSize, (batch+1)*m.BatchSize
			if hi > disks {
				hi = disks
			}
			for d := lo; d < hi; d++ {
				if d == f.Disk {
					continue
				}
				if rng.Float64() < m.BatchShock {
					at := f.At + time.Duration(rng.Float64()*float64(m.BatchWindow))
					if at < horizon {
						out = append(out, FleetFailure{Disk: d, At: at, Induced: true})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Disk < out[j].Disk
	})
	return out
}

// URESectorRate converts the model's bits-per-error rate into the
// per-4KiB-sector corruption probability internal/disk consumes
// (disk.SetURERate): p = 1 - (1 - 1/UREBits)^(4096*8) ≈ 32768/UREBits.
func (m *EmpiricalModel) URESectorRate() float64 {
	if m.UREBits <= 0 {
		return 0
	}
	return -math.Expm1(4096 * 8 * math.Log1p(-1/m.UREBits))
}
