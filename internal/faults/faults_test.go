package faults

import (
	"testing"
	"time"

	"ustore/internal/simtime"
)

func TestScheduledEventsFire(t *testing.T) {
	s := simtime.NewScheduler(1)
	var got []string
	sch := NewSchedule(s, Actions{
		CrashHost:   func(h string) { got = append(got, "crash:"+h) },
		RestoreHost: func(h string) { got = append(got, "restore:"+h) },
		FailDisk:    func(d string) { got = append(got, "disk:"+d) },
		FailHub:     func(h string) { got = append(got, "hub:"+h) },
	})
	sch.Add(Event{At: 1 * time.Second, Kind: KindHostCrash, Target: "h1"})
	sch.Add(Event{At: 2 * time.Second, Kind: KindDiskFail, Target: "disk00"})
	sch.Add(Event{At: 3 * time.Second, Kind: KindHostRecover, Target: "h1"})
	sch.Add(Event{At: 4 * time.Second, Kind: KindHubFail, Target: "leafhub00"})
	s.Run()
	want := []string{"crash:h1", "disk:disk00", "restore:h1", "hub:leafhub00"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestInjectorHostCrashAndRecover(t *testing.T) {
	s := simtime.NewScheduler(7)
	crashes, restores := 0, 0
	in := NewInjector(s, Actions{
		CrashHost:   func(string) { crashes++ },
		RestoreHost: func(string) { restores++ },
	}, []string{"h1", "h2", "h3", "h4"}, nil, nil)
	in.Start()
	// A simulated year of 4 hosts at 3.4-month MTTF: expect roughly
	// 4*12/3.4 ≈ 14 crashes; accept a wide band.
	s.RunUntil(365 * 24 * time.Hour)
	in.Stop()
	if crashes < 5 || crashes > 40 {
		t.Fatalf("crashes in a year = %d, expected ~14", crashes)
	}
	if restores < crashes-1 || restores > crashes {
		t.Fatalf("restores = %d for %d crashes", restores, crashes)
	}
	if len(in.Log()) != crashes+restores {
		t.Fatalf("log length %d", len(in.Log()))
	}
}

func TestInjectorDiskFailuresAreRare(t *testing.T) {
	s := simtime.NewScheduler(11)
	diskFails := 0
	var disks []string
	for i := 0; i < 64; i++ {
		disks = append(disks, string(rune('a'+i%26)))
	}
	in := NewInjector(s, Actions{
		FailDisk: func(string) { diskFails++ },
	}, nil, disks, nil)
	in.Start()
	// One year, 64 disks at 10-50yr MTTF: expect ~1-6 failures.
	s.RunUntil(365 * 24 * time.Hour)
	in.Stop()
	if diskFails > 15 {
		t.Fatalf("disk failures in a year = %d, MTTF model too aggressive", diskFails)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	run := func() []Event {
		s := simtime.NewScheduler(42)
		in := NewInjector(s, Actions{}, []string{"h1", "h2"}, []string{"d1"}, []string{"hub1"})
		in.Start()
		s.RunUntil(90 * 24 * time.Hour)
		in.Stop()
		return in.Log()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
