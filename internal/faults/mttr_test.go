package faults

import (
	"testing"
	"time"

	"ustore/internal/simtime"
)

func TestDiskReplacementReArmsFailureClock(t *testing.T) {
	s := simtime.NewScheduler(5)
	var fails, replaces int
	in := NewInjector(s, Actions{
		FailDisk:    func(string) { fails++ },
		ReplaceDisk: func(string) { replaces++ },
	}, nil, []string{"d0", "d1"}, nil)
	in.DiskMTTFOverride = 24 * time.Hour
	in.DiskMTTR = 2 * time.Hour
	in.Start()
	s.RunFor(30 * 24 * time.Hour)
	in.Stop()

	if fails < 4 {
		t.Fatalf("only %d disk failures in 30 days with 1-day MTTF — replacement clock not re-arming", fails)
	}
	if replaces < fails-2 || replaces > fails {
		t.Fatalf("replaces = %d for fails = %d, want one per failure (±in-flight)", replaces, fails)
	}
	// The log interleaves fail/replace per target in order.
	last := make(map[string]Kind)
	for _, ev := range in.Log() {
		switch ev.Kind {
		case KindDiskFail:
			if k, ok := last[ev.Target]; ok && k == KindDiskFail {
				t.Fatalf("%s failed twice without replacement", ev.Target)
			}
		case KindDiskReplace:
			if last[ev.Target] != KindDiskFail {
				t.Fatalf("%s replaced while not failed", ev.Target)
			}
		}
		last[ev.Target] = ev.Kind
	}
}

func TestHubReplacementReArmsFailureClock(t *testing.T) {
	s := simtime.NewScheduler(9)
	var fails, replaces int
	in := NewInjector(s, Actions{
		FailHub:    func(string) { fails++ },
		ReplaceHub: func(string) { replaces++ },
	}, nil, nil, []string{"hub0"})
	in.HubMTTFOverride = 12 * time.Hour
	in.HubMTTR = time.Hour
	in.Start()
	s.RunFor(20 * 24 * time.Hour)
	in.Stop()
	if fails < 3 || replaces < fails-1 {
		t.Fatalf("fails=%d replaces=%d — hub replacement not re-arming", fails, replaces)
	}
}

func TestZeroMTTRLeavesUnitsDead(t *testing.T) {
	s := simtime.NewScheduler(5)
	var fails, replaces int
	in := NewInjector(s, Actions{
		FailDisk:    func(string) { fails++ },
		ReplaceDisk: func(string) { replaces++ },
	}, nil, []string{"d0"}, nil)
	in.DiskMTTFOverride = 24 * time.Hour
	in.Start()
	s.RunFor(60 * 24 * time.Hour)
	if fails != 1 {
		t.Fatalf("disk failed %d times with no MTTR, want exactly 1", fails)
	}
	if replaces != 0 {
		t.Fatal("replacement fired with zero MTTR")
	}
}

func TestStopCancelsOutstandingEvents(t *testing.T) {
	s := simtime.NewScheduler(3)
	var crashes int
	in := NewInjector(s, Actions{
		CrashHost: func(string) { crashes++ },
	}, []string{"h0", "h1", "h2"}, nil, nil)
	in.HostMTTFOverride = time.Hour
	in.HostRepair = 10 * time.Minute
	in.Start()
	s.RunFor(3 * time.Hour)
	in.Stop()

	logLen := len(in.Log())
	actions := crashes
	pendingBefore := s.Pending()
	s.RunFor(100 * time.Hour)
	if crashes != actions {
		t.Fatalf("actions fired after Stop: %d -> %d", actions, crashes)
	}
	if got := len(in.Log()); got != logLen {
		t.Fatalf("log grew after Stop: %d -> %d", logLen, got)
	}
	// Stop must actually cancel (not just flag) the events: the scheduler
	// queue drains instead of replaying dead closures forever.
	if s.Pending() > pendingBefore {
		t.Fatalf("pending events grew after Stop: %d -> %d", pendingBefore, s.Pending())
	}
}
