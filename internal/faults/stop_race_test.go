package faults

import (
	"sync/atomic"
	"testing"
	"time"

	"ustore/internal/simtime"
)

// TestStopMidScheduleRace stops an injector from a different goroutine
// than the one driving the scheduler, while fault events are firing, and
// asserts that no action fires and no log entry appears after Stop
// returns. Run under -race (CI does) to audit the synchronization.
func TestStopMidScheduleRace(t *testing.T) {
	sched := simtime.NewScheduler(42)
	var actions atomic.Uint64
	act := Actions{
		CrashHost:   func(string) { actions.Add(1) },
		RestoreHost: func(string) { actions.Add(1) },
		FailDisk:    func(string) { actions.Add(1) },
		ReplaceDisk: func(string) { actions.Add(1) },
		FailHub:     func(string) { actions.Add(1) },
		ReplaceHub:  func(string) { actions.Add(1) },
	}
	in := NewInjector(sched, act,
		[]string{"h1", "h2", "h3"},
		[]string{"d1", "d2", "d3", "d4"},
		[]string{"hub1", "hub2"})
	// Compress every clock so events fire densely while we race Stop.
	in.HostMTTFOverride = time.Minute
	in.HostRepair = 30 * time.Second
	in.DiskMTTFOverride = time.Minute
	in.DiskMTTR = 30 * time.Second
	in.HubMTTFOverride = time.Minute
	in.HubMTTR = 30 * time.Second
	in.Start()

	// A self-rescheduling tick keeps the queue non-empty forever, so the
	// driver is still mid-schedule whenever Stop lands.
	var tick func()
	tick = func() { sched.After(time.Second, tick) }
	tick()

	var quit atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !quit.Load() && sched.Step() {
		}
	}()

	// Let some faults fire, then stop the injector from this goroutine
	// while the driver keeps stepping.
	for actions.Load() < 10 {
		time.Sleep(time.Millisecond)
	}
	in.Stop()
	logLen := len(in.Log())
	fired := actions.Load()

	// Give the driver real time to run far past the Stop point.
	time.Sleep(20 * time.Millisecond)
	if got := actions.Load(); got != fired {
		t.Fatalf("action fired after Stop returned: %d -> %d", fired, got)
	}
	if got := len(in.Log()); got != logLen {
		t.Fatalf("log grew after Stop returned: %d -> %d", logLen, got)
	}

	quit.Store(true)
	<-done
}

// TestStopFromSchedulerGoroutine keeps the seed behaviour working: Stop
// called from inside an event callback halts all further injection.
func TestStopFromSchedulerGoroutine(t *testing.T) {
	sched := simtime.NewScheduler(7)
	var actions int
	bump := func(string) { actions++ }
	in := NewInjector(sched, Actions{CrashHost: bump, RestoreHost: bump},
		[]string{"h1", "h2"}, nil, nil)
	in.HostMTTFOverride = time.Minute
	in.HostRepair = time.Minute
	in.Start()

	sched.After(10*time.Minute, func() {
		in.Stop()
		sched.Stop()
	})
	sched.Run()
	after := actions
	sched.Resume()
	sched.RunFor(24 * time.Hour)
	if actions != after {
		t.Fatalf("actions fired after Stop: %d -> %d", after, actions)
	}
	if len(in.Log()) != after {
		t.Fatalf("log has %d entries, %d actions fired", len(in.Log()), actions)
	}
}
