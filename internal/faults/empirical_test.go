package faults

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestBathtubShape pins the qualitative bathtub: infant mortality decays,
// the plateau is the field-observed AFR (not the datasheet's), wear-out
// climbs past onset.
func TestBathtubShape(t *testing.T) {
	m := DefaultEmpirical()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	h0 := m.Hazard(0)
	h1mo := m.Hazard(30 * 24 * time.Hour)
	h2y := m.Hazard(2 * Year)
	h8y := m.Hazard(8 * Year)
	if h0 <= h1mo || h1mo <= h2y {
		t.Fatalf("infant mortality must decay: h(0)=%.4f h(1mo)=%.4f h(2y)=%.4f", h0, h1mo, h2y)
	}
	if math.Abs(h2y-ObservedAFR)/ObservedAFR > 0.01 {
		t.Fatalf("useful-life hazard %.4f, want the observed plateau %.4f", h2y, ObservedAFR)
	}
	if h2y < 3*DatasheetAFR {
		t.Fatalf("field plateau %.4f should be several times the datasheet %.4f", h2y, DatasheetAFR)
	}
	if h8y <= h2y {
		t.Fatalf("wear-out must climb: h(8y)=%.4f <= h(2y)=%.4f", h8y, h2y)
	}
}

// TestFailuresPer1kDiskYearsTable pins the analytic per-year failure
// counts the default (Gray & van Ingen calibrated) model produces, in the
// same committed-value-plus-band style as the internal/bench fidelity
// goldens. The values encode the paper's field observations: year one
// carries a >60% infant-mortality surcharge over the plateau, mid-life
// sits at the observed ~3.6%/yr (not the datasheet ~0.9%), and wear-out
// more than doubles the plateau by year seven.
func TestFailuresPer1kDiskYearsTable(t *testing.T) {
	m := DefaultEmpirical()
	cases := []struct {
		year int
		want float64 // failures per 1000 disks during that year of life
		tol  float64 // relative band
	}{
		{year: 1, want: 58.5, tol: 0.02},
		{year: 2, want: 33.7, tol: 0.02},
		{year: 3, want: 32.1, tol: 0.02},
		{year: 5, want: 29.9, tol: 0.02},
		{year: 6, want: 40.5, tol: 0.02},
		{year: 7, want: 60.3, tol: 0.02},
	}
	for _, c := range cases {
		got := m.FailuresPer1kDiskYears(c.year)
		if math.Abs(got-c.want) > c.tol*c.want {
			t.Errorf("year %d: %.1f failures/1k disk-years, want %.1f ±%.0f%%",
				c.year, got, c.want, c.tol*100)
		}
	}
	// Sanity anchors against the cited rates themselves, not just our
	// committed numbers: year 1 over plateau-only expectation, and the
	// plateau year against ObservedAFR.
	plateauOnly := 1000 * (1 - math.Exp(-ObservedAFR))
	if y1 := m.FailuresPer1kDiskYears(1); y1 < 1.6*plateauOnly {
		t.Errorf("year-1 count %.1f lacks the infant-mortality surcharge (plateau alone %.1f)", y1, plateauOnly)
	}
	if y4 := m.FailuresPer1kDiskYears(4); math.Abs(y4-plateauOnly)/plateauOnly > 0.15 {
		t.Errorf("year-4 count %.1f should sit near the observed plateau %.1f", y4, plateauOnly)
	}
}

// TestSampleFleetMatchesAnalyticRates runs the fleet sampler (shocks off)
// over a large population and checks the per-year failure counts land
// within tolerance of the closed-form integrals — the sampler and the
// analytic hazard must be two views of the same model.
func TestSampleFleetMatchesAnalyticRates(t *testing.T) {
	m := DefaultEmpirical()
	m.BatchShock = 0 // isolate the base hazard
	const disks = 40000
	rng := rand.New(rand.NewSource(42))
	failures := m.SampleFleet(rng, disks, 7*Year, 0) // no replacement: first-life failures only
	perYear := make([]int, 7)
	for _, f := range failures {
		perYear[int(f.At/Year)]++
	}
	for year := 1; year <= 7; year++ {
		want := m.FailuresPer1kDiskYears(year) * disks / 1000
		got := float64(perYear[year-1])
		if math.Abs(got-want) > 0.08*want {
			t.Errorf("year %d: sampled %.0f failures, analytic %.1f (±8%%)", year, got, want)
		}
	}
}

// TestSampleFleetBatchCorrelation checks the vintage-shock sampler: the
// induced-failure count per base failure must match BatchShock times the
// shockable batch-mates, and induced failures must land inside the window
// and inside the trigger's batch.
func TestSampleFleetBatchCorrelation(t *testing.T) {
	m := DefaultEmpirical()
	m.BatchShock = 0.08
	const disks = 32000
	rng := rand.New(rand.NewSource(7))
	failures := m.SampleFleet(rng, disks, 2*Year, 0)
	var base, induced int
	for _, f := range failures {
		if f.Induced {
			induced++
		} else {
			base++
		}
	}
	if base == 0 {
		t.Fatal("no base failures sampled")
	}
	// Each base failure shocks BatchSize-1 mates with probability
	// BatchShock; a few induced failures fall past the horizon, so allow
	// the band to absorb that truncation.
	want := float64(base) * float64(m.BatchSize-1) * m.BatchShock
	if math.Abs(float64(induced)-want) > 0.10*want {
		t.Errorf("induced failures %d, want ~%.0f (±10%%): batch correlation broken", induced, want)
	}
	// Correlation concentrates failures: the fraction of batches with >= 2
	// failures within one window must far exceed the independent model's.
	if induced == 0 {
		t.Fatal("no induced failures despite BatchShock > 0")
	}
}

// TestSampleFleetDeterministic: same seed, same stream.
func TestSampleFleetDeterministic(t *testing.T) {
	m := DefaultEmpirical()
	a := m.SampleFleet(rand.New(rand.NewSource(3)), 512, 5*Year, 30*24*time.Hour)
	b := m.SampleFleet(rand.New(rand.NewSource(3)), 512, 5*Year, 30*24*time.Hour)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestURESectorRate pins the spec-vs-observed URE conversion: the
// advertised 1e14 bits/error is ~3.3e-10 per 4KiB sector read (which is
// the disk model's documented "3e-4 per 4KiB sector-terabyte"), the
// observed rate ~30x lower.
func TestURESectorRate(t *testing.T) {
	spec := &EmpiricalModel{UsefulAFR: ObservedAFR, UREBits: SpecUREBits}
	obs := DefaultEmpirical()
	if got := spec.URESectorRate(); math.Abs(got-3.28e-10)/3.28e-10 > 0.01 {
		t.Errorf("spec URE per sector = %.3g, want ~3.28e-10", got)
	}
	ratio := spec.URESectorRate() / obs.URESectorRate()
	if ratio < 25 || ratio > 40 {
		t.Errorf("spec/observed URE ratio %.1f, want ~32 (Gray & van Ingen saw ~30x better than spec)", ratio)
	}
	if (&EmpiricalModel{UsefulAFR: 1}).URESectorRate() != 0 {
		t.Error("zero UREBits must disable the URE model")
	}
}
