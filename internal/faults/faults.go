// Package faults injects failures into a UStore simulation on the
// schedules the paper cites (§IV-E): hosts fail with an MTTF of about 3.4
// months (software and network issues dominate), disks with an MTTF of
// 10-50 years, and physical interconnect components at disk-like rates.
//
// Two modes are provided: an MTTF-driven injector that draws exponential
// inter-failure times from the deterministic simulation RNG, and a
// scripted schedule for reproducible scenario tests.
package faults

import (
	"fmt"
	"math"
	"sync"
	"time"

	"ustore/internal/simtime"
)

// MTTF constants from the paper's citations (Ford et al. OSDI'10; Jiang et
// al. FAST'08).
const (
	// HostMTTF is ~3.4 months.
	HostMTTF = 3.4 * 30 * 24 * time.Hour
	// DiskMTTFLow and DiskMTTFHigh bound the 10-50 year disk MTTF range.
	DiskMTTFLow  = 10 * 365 * 24 * time.Hour
	DiskMTTFHigh = 50 * 365 * 24 * time.Hour
	// InterconnectMTTF: "physical interconnects have similar failure rate
	// as disks".
	InterconnectMTTF = DiskMTTFLow
)

// Kind classifies an injected fault.
type Kind int

// Fault kinds.
const (
	KindHostCrash Kind = iota
	KindHostRecover
	KindDiskFail
	KindHubFail
	// KindDiskReplace and KindHubReplace are operator field-replacements of
	// a failed unit, arriving one MTTR after the corresponding failure.
	KindDiskReplace
	KindHubReplace
	// Gray (fail-slow) kinds: the component keeps answering, just badly.
	// KindDiskDegrade/KindDiskRecover bracket a fail-slow disk window;
	// KindLinkFlap is a point event (USB surprise-remove + retry-storm
	// re-enumeration); KindLinkDowngrade/KindLinkRestore bracket a USB3→USB2
	// renegotiation; KindHostBrownout/KindBrownoutEnd bracket RPC
	// service-time inflation on one machine.
	KindDiskDegrade
	KindDiskRecover
	KindLinkFlap
	KindLinkDowngrade
	KindLinkRestore
	KindHostBrownout
	KindBrownoutEnd
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindHostCrash:
		return "host-crash"
	case KindHostRecover:
		return "host-recover"
	case KindDiskFail:
		return "disk-fail"
	case KindHubFail:
		return "hub-fail"
	case KindDiskReplace:
		return "disk-replace"
	case KindHubReplace:
		return "hub-replace"
	case KindDiskDegrade:
		return "disk-degrade"
	case KindDiskRecover:
		return "disk-recover"
	case KindLinkFlap:
		return "link-flap"
	case KindLinkDowngrade:
		return "link-downgrade"
	case KindLinkRestore:
		return "link-restore"
	case KindHostBrownout:
		return "host-brownout"
	case KindBrownoutEnd:
		return "brownout-end"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one injected fault.
type Event struct {
	At     simtime.Time
	Kind   Kind
	Target string
	// Severity scales gray windows ([0,1]; ignored by fail-stop kinds).
	Severity float64
	// Storms is the enumeration-retry count of a KindLinkFlap.
	Storms int
}

// Actions connects the injector to the system under test.
type Actions struct {
	CrashHost   func(host string)
	RestoreHost func(host string)
	FailDisk    func(disk string)
	FailHub     func(hub string)
	// ReplaceDisk and ReplaceHub swap a failed unit for a working one
	// (fresh media for disks — data recovery is the upper layer's job).
	ReplaceDisk func(disk string)
	ReplaceHub  func(hub string)
	// Gray-failure actions. Severity in [0,1] scales how bad the window is
	// (the system under test maps it onto concrete degrade parameters).
	// Storms is the number of failed enumeration attempts a flap burns.
	DegradeDisk   func(disk string, severity float64)
	RecoverDisk   func(disk string)
	FlapLink      func(disk string, storms int)
	DowngradeLink func(disk string, severity float64)
	RestoreLink   func(disk string)
	BrownoutHost  func(host string, severity float64)
	EndBrownout   func(host string)
}

// Injector drives MTTF-based failure injection.
type Injector struct {
	sched *simtime.Scheduler
	act   Actions

	// HostRepair is how long a crashed host stays down before restart
	// (operator reboot / auto-recovery). Default 10 minutes.
	HostRepair time.Duration
	// HostMTTFOverride, when nonzero, replaces the paper's 3.4-month host
	// MTTF — accelerated-aging experiments compress a year of failures
	// into a simulable window.
	HostMTTFOverride time.Duration
	// DiskMTTR and HubMTTR are how long a failed disk/hub waits for an
	// operator field-replacement (Actions.ReplaceDisk/ReplaceHub), after
	// which its failure clock is re-armed. Zero leaves failed units dead
	// forever (the seed behaviour); multi-year runs want a realistic few
	// days so the cluster doesn't decay to empty.
	DiskMTTR time.Duration
	HubMTTR  time.Duration
	// DiskMTTFOverride and HubMTTFOverride, when nonzero, compress the
	// 10-50y disk and hub MTTFs for accelerated-aging runs.
	DiskMTTFOverride time.Duration
	HubMTTFOverride  time.Duration

	hosts []string
	disks []string
	hubs  []string

	// mu guards stopped, log and events so Stop may be called from a
	// goroutine other than the one driving the scheduler. Every injected
	// callback runs under mu and re-checks stopped first, so once Stop
	// returns no action fires and no log entry is appended.
	mu      sync.Mutex
	log     []Event
	stopped bool
	events  []*simtime.Event
}

// after schedules fn and records the event so Stop can cancel it. The
// caller must hold in.mu; fn runs with in.mu held and only if the
// injector has not been stopped.
func (in *Injector) after(d time.Duration, fn func()) {
	ev := in.sched.After(d, func() {
		in.mu.Lock()
		defer in.mu.Unlock()
		if in.stopped {
			return
		}
		fn()
	})
	in.events = append(in.events, ev)
	// Compact occasionally so multi-year runs don't accumulate a reference
	// to every fired event.
	if len(in.events) >= 64 {
		live := in.events[:0]
		for _, e := range in.events {
			if !e.Done() {
				live = append(live, e)
			}
		}
		in.events = live
	}
}

// NewInjector creates an injector over the given component populations.
func NewInjector(sched *simtime.Scheduler, act Actions, hosts, disks, hubs []string) *Injector {
	return &Injector{
		sched:      sched,
		act:        act,
		HostRepair: 10 * time.Minute,
		hosts:      append([]string(nil), hosts...),
		disks:      append([]string(nil), disks...),
		hubs:       append([]string(nil), hubs...),
	}
}

// Log returns the injected events so far.
func (in *Injector) Log() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.log...)
}

// Stop halts future injection and cancels every outstanding scheduled
// event, so nothing fires actions or appends to the log after Stop
// returns. Safe to call from any goroutine, including while the scheduler
// is being driven elsewhere: a callback already executing holds in.mu, so
// Stop blocks until it finishes, and callbacks that have not yet acquired
// the lock observe stopped and return without acting.
func (in *Injector) Stop() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stopped = true
	for _, ev := range in.events {
		ev.Cancel()
	}
	in.events = nil
}

// exp draws an exponential variate with the given mean from the scheduler's
// deterministic RNG.
func (in *Injector) exp(mean time.Duration) time.Duration {
	u := in.sched.Rand().Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return time.Duration(-math.Log(u) * float64(mean))
}

// Start arms the per-component failure clocks. Each host gets an
// exponential crash clock (MTTF/#nothing — per host MTTF directly); each
// disk and hub a failure clock with a mean drawn from the disk MTTF range.
func (in *Injector) Start() {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, h := range in.hosts {
		in.armHost(h)
	}
	for _, d := range in.disks {
		mean := in.DiskMTTFOverride
		if mean <= 0 {
			mean = DiskMTTFLow + time.Duration(in.sched.Rand().Float64()*float64(DiskMTTFHigh-DiskMTTFLow))
		}
		in.armDisk(d, mean)
	}
	for _, hub := range in.hubs {
		in.armHub(hub)
	}
}

func (in *Injector) armHost(h string) {
	mttf := HostMTTF
	if in.HostMTTFOverride > 0 {
		mttf = in.HostMTTFOverride
	}
	in.after(in.exp(mttf), func() {
		in.log = append(in.log, Event{At: in.sched.Now(), Kind: KindHostCrash, Target: h})
		if in.act.CrashHost != nil {
			in.act.CrashHost(h)
		}
		in.after(in.HostRepair, func() {
			in.log = append(in.log, Event{At: in.sched.Now(), Kind: KindHostRecover, Target: h})
			if in.act.RestoreHost != nil {
				in.act.RestoreHost(h)
			}
			in.armHost(h)
		})
	})
}

func (in *Injector) armDisk(d string, mean time.Duration) {
	in.after(in.exp(mean), func() {
		in.log = append(in.log, Event{At: in.sched.Now(), Kind: KindDiskFail, Target: d})
		if in.act.FailDisk != nil {
			in.act.FailDisk(d)
		}
		if in.DiskMTTR <= 0 {
			// No operator on schedule: the unit stays dead (the seed
			// behaviour, fine for short windows).
			return
		}
		in.after(in.DiskMTTR, func() {
			in.log = append(in.log, Event{At: in.sched.Now(), Kind: KindDiskReplace, Target: d})
			if in.act.ReplaceDisk != nil {
				in.act.ReplaceDisk(d)
			}
			in.armDisk(d, mean)
		})
	})
}

func (in *Injector) armHub(h string) {
	mttf := InterconnectMTTF
	if in.HubMTTFOverride > 0 {
		mttf = in.HubMTTFOverride
	}
	in.after(in.exp(mttf), func() {
		in.log = append(in.log, Event{At: in.sched.Now(), Kind: KindHubFail, Target: h})
		if in.act.FailHub != nil {
			in.act.FailHub(h)
		}
		if in.HubMTTR <= 0 {
			return
		}
		in.after(in.HubMTTR, func() {
			in.log = append(in.log, Event{At: in.sched.Now(), Kind: KindHubReplace, Target: h})
			if in.act.ReplaceHub != nil {
				in.act.ReplaceHub(h)
			}
			in.armHub(h)
		})
	})
}

// Schedule replays a fixed list of events (scenario tests).
type Schedule struct {
	sched *simtime.Scheduler
	act   Actions
}

// NewSchedule creates a scripted injector.
func NewSchedule(sched *simtime.Scheduler, act Actions) *Schedule {
	return &Schedule{sched: sched, act: act}
}

// Add arms one scripted event.
func (s *Schedule) Add(ev Event) {
	s.sched.At(ev.At, func() {
		switch ev.Kind {
		case KindHostCrash:
			if s.act.CrashHost != nil {
				s.act.CrashHost(ev.Target)
			}
		case KindHostRecover:
			if s.act.RestoreHost != nil {
				s.act.RestoreHost(ev.Target)
			}
		case KindDiskFail:
			if s.act.FailDisk != nil {
				s.act.FailDisk(ev.Target)
			}
		case KindHubFail:
			if s.act.FailHub != nil {
				s.act.FailHub(ev.Target)
			}
		case KindDiskReplace:
			if s.act.ReplaceDisk != nil {
				s.act.ReplaceDisk(ev.Target)
			}
		case KindHubReplace:
			if s.act.ReplaceHub != nil {
				s.act.ReplaceHub(ev.Target)
			}
		case KindDiskDegrade:
			if s.act.DegradeDisk != nil {
				s.act.DegradeDisk(ev.Target, ev.Severity)
			}
		case KindDiskRecover:
			if s.act.RecoverDisk != nil {
				s.act.RecoverDisk(ev.Target)
			}
		case KindLinkFlap:
			if s.act.FlapLink != nil {
				s.act.FlapLink(ev.Target, ev.Storms)
			}
		case KindLinkDowngrade:
			if s.act.DowngradeLink != nil {
				s.act.DowngradeLink(ev.Target, ev.Severity)
			}
		case KindLinkRestore:
			if s.act.RestoreLink != nil {
				s.act.RestoreLink(ev.Target)
			}
		case KindHostBrownout:
			if s.act.BrownoutHost != nil {
				s.act.BrownoutHost(ev.Target, ev.Severity)
			}
		case KindBrownoutEnd:
			if s.act.EndBrownout != nil {
				s.act.EndBrownout(ev.Target)
			}
		}
	})
}
