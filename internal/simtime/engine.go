// Conservative parallel discrete-event engine.
//
// An Engine partitions the event space into independent Schedulers and runs
// them in lock-step windows. The synchronization protocol is the classic
// conservative (LBTS + lookahead) scheme: between windows the driver computes
// LBTS, the minimum next-event time across every partition, and then lets all
// partitions advance in parallel to horizon = LBTS + lookahead. Lookahead is
// the minimum virtual latency of any cross-partition interaction, so a
// message sent during a window — stamped at send-time + link latency — can
// never land before the horizon, i.e. never in any partition's past:
//
//	every event executed in the window has time t ≥ LBTS, so its sends are
//	stamped ≥ t + lookahead ≥ LBTS + lookahead = horizon.
//
// Cross-partition sends go through Post, which appends to the destination
// partition's mutex-guarded inbox; inboxes are flushed into the destination
// schedulers between windows, sorted by (deadline, source partition, source
// sequence). Because the window boundaries are a pure function of event
// timestamps and the flush order is a pure function of message content, a
// run's event interleaving — and therefore its output — is byte-identical at
// any worker count, including the inline workers=1 path.
package simtime

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// xmsg is a cross-partition event waiting in a destination inbox.
type xmsg struct {
	at  Time
	src int    // source partition, second-level sort key
	seq uint64 // per-source sequence, third-level sort key
	fn  func()
}

// partInbox collects events posted to one partition during a window. The
// mutex makes concurrent Posts from different source partitions safe; the
// (at, src, seq) sort at flush time makes their order deterministic.
type partInbox struct {
	mu   sync.Mutex
	msgs []xmsg
}

// Engine drives a set of partitioned Schedulers through conservative
// synchronization windows. Construct with NewEngine; the zero value is not
// usable.
//
// The Engine itself must be driven from a single goroutine. During a window
// each partition's Scheduler is touched by exactly one worker goroutine, and
// Post may be called from any partition currently executing a window.
type Engine struct {
	parts     []*Scheduler
	inbox     []partInbox
	srcSeq    []uint64 // per-source Post counter; owned by the source's executor
	lookahead Duration
	workers   int
	now       Time
	horizon   Time // current window's upper edge, for the Post safety check
}

// NewEngine returns an engine with parts partitioned Schedulers. Partition p
// is seeded seed^p — a deterministic per-partition RNG split, so partition 0
// reproduces the single-scheduler stream for the same seed. lookahead must be
// positive: it is the minimum virtual delay of any cross-partition event and
// bounds how far a window may advance past LBTS. workers caps the goroutines
// used per window; values below 2 select the inline (no goroutine) path.
func NewEngine(seed int64, parts, workers int, lookahead Duration) *Engine {
	if parts < 1 {
		panic(fmt.Sprintf("simtime: engine needs at least 1 partition, got %d", parts))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("simtime: engine lookahead must be positive, got %v", lookahead))
	}
	e := &Engine{
		parts:     make([]*Scheduler, parts),
		inbox:     make([]partInbox, parts),
		srcSeq:    make([]uint64, parts),
		lookahead: lookahead,
		workers:   workers,
	}
	for p := range e.parts {
		e.parts[p] = NewScheduler(seed ^ int64(p))
	}
	return e
}

// Part returns partition p's Scheduler. Components living in partition p
// schedule all their local work on it.
func (e *Engine) Part(p int) *Scheduler { return e.parts[p] }

// Parts returns the number of partitions.
func (e *Engine) Parts() int { return len(e.parts) }

// Lookahead returns the engine's synchronization lookahead.
func (e *Engine) Lookahead() Duration { return e.lookahead }

// Now returns the engine's virtual time: the deadline the last RunUntil
// advanced every partition to.
func (e *Engine) Now() Time { return e.now }

// Fired returns the total events executed across all partitions.
func (e *Engine) Fired() uint64 {
	var n uint64
	for _, p := range e.parts {
		n += p.Fired()
	}
	return n
}

// Pending returns the total live events queued across all partitions.
func (e *Engine) Pending() int {
	n := 0
	for _, p := range e.parts {
		n += p.Pending()
	}
	return n
}

// Post schedules fn at absolute time at on partition dst, on behalf of
// partition src. It is the only safe way to cross partitions mid-window and
// must be stamped at least one lookahead past the sender's clock; an earlier
// stamp would land inside the current window, where the destination may have
// advanced past it, so Post panics rather than corrupt the timeline.
func (e *Engine) Post(src, dst int, at Time, fn func()) {
	if at < e.horizon {
		panic(fmt.Sprintf(
			"simtime: cross-partition event at %v posted before window horizon %v (link latency below engine lookahead %v violates the conservative synchronization contract)",
			at, e.horizon, e.lookahead))
	}
	e.srcSeq[src]++
	ib := &e.inbox[dst]
	ib.mu.Lock()
	ib.msgs = append(ib.msgs, xmsg{at: at, src: src, seq: e.srcSeq[src], fn: fn})
	ib.mu.Unlock()
}

// flushInboxes drains every partition inbox into its scheduler. Messages are
// sorted by (at, src, seq) first, so the arrival order — and the scheduler
// sequence numbers they receive — is independent of worker interleaving.
func (e *Engine) flushInboxes() {
	for i := range e.parts {
		ib := &e.inbox[i]
		ib.mu.Lock()
		msgs := ib.msgs
		ib.msgs = nil
		ib.mu.Unlock()
		if len(msgs) == 0 {
			continue
		}
		sort.Slice(msgs, func(a, b int) bool {
			if msgs[a].at != msgs[b].at {
				return msgs[a].at < msgs[b].at
			}
			if msgs[a].src != msgs[b].src {
				return msgs[a].src < msgs[b].src
			}
			return msgs[a].seq < msgs[b].seq
		})
		for _, m := range msgs {
			e.parts[i].FireAt(m.at, m.fn)
		}
	}
}

// lbts returns the lower bound on time stamp: the earliest live event
// deadline across all partitions. ok is false when every partition is idle.
func (e *Engine) lbts() (Time, bool) {
	earliest := Time(math.MaxInt64)
	any := false
	for _, p := range e.parts {
		if at, ok := p.NextEventAt(); ok && at < earliest {
			earliest = at
			any = true
		}
	}
	return earliest, any
}

// window advances every partition to horizon, in parallel when the engine has
// workers to spare. Partition order within a window is irrelevant: partitions
// interact only through inboxes, which are flushed between windows.
func (e *Engine) window(horizon Time) {
	e.horizon = horizon
	if e.workers <= 1 || len(e.parts) == 1 {
		for _, p := range e.parts {
			p.RunUntil(horizon)
		}
		return
	}
	n := e.workers
	if n > len(e.parts) {
		n = len(e.parts)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(e.parts) {
					return
				}
				e.parts[i].RunUntil(horizon)
			}
		}()
	}
	wg.Wait()
}

// RunUntil executes events across all partitions up to and including
// deadline, then advances every partition clock to deadline.
func (e *Engine) RunUntil(deadline Time) Time {
	for {
		e.flushInboxes()
		earliest, ok := e.lbts()
		if !ok || earliest > deadline {
			break
		}
		horizon := deadline
		if h := earliest + e.lookahead; h < horizon {
			horizon = h
		}
		e.window(horizon)
	}
	// Nothing at or below deadline remains (the loop re-flushes inboxes, so
	// in-window sends were seen); park every clock at the deadline.
	for _, p := range e.parts {
		p.RunUntil(deadline)
	}
	e.now = deadline
	return deadline
}

// RunFor is RunUntil(Now()+d).
func (e *Engine) RunFor(d Duration) Time { return e.RunUntil(e.now + d) }
