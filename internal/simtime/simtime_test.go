package simtime

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestAfterOrdering(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.After(3*time.Second, func() { got = append(got, 3) })
	s.After(1*time.Second, func() { got = append(got, 1) })
	s.After(2*time.Second, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", s.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-deadline events not FIFO: %v", got)
		}
	}
}

func TestPastEventClampsToNow(t *testing.T) {
	s := NewScheduler(1)
	s.After(5*time.Second, func() {
		s.At(1*time.Second, func() {
			if s.Now() != 5*time.Second {
				t.Errorf("past event ran at %v, want clock held at 5s", s.Now())
			}
		})
	})
	s.Run()
	if s.Now() != 5*time.Second {
		t.Fatalf("final Now() = %v, want 5s", s.Now())
	}
}

func TestNegativeDelayClampsToZero(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	s.After(-time.Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	e := s.After(time.Second, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	// Double cancel and nil cancel are no-ops.
	e.Cancel()
	(*Event)(nil).Cancel()
}

func TestCancelWhileQueuedBehindOthers(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	var e2 *Event
	s.After(1*time.Second, func() {
		got = append(got, 1)
		e2.Cancel()
	})
	e2 = s.After(2*time.Second, func() { got = append(got, 2) })
	s.After(3*time.Second, func() { got = append(got, 3) })
	s.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.After(1*time.Second, func() { got = append(got, 1) })
	s.After(5*time.Second, func() { got = append(got, 5) })
	s.RunUntil(3 * time.Second)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("events before deadline: %v, want [1]", got)
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want exactly the deadline", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
	s.Run()
	if len(got) != 2 {
		t.Fatalf("remaining event did not fire: %v", got)
	}
}

func TestRunForAdvancesEvenWhenIdle(t *testing.T) {
	s := NewScheduler(1)
	s.RunFor(10 * time.Second)
	if s.Now() != 10*time.Second {
		t.Fatalf("Now() = %v, want 10s", s.Now())
	}
}

func TestStopAndResume(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	s.After(1*time.Second, func() { count++; s.Stop() })
	s.After(2*time.Second, func() { count++ })
	s.Run()
	if count != 1 {
		t.Fatalf("count after Stop = %d, want 1", count)
	}
	s.Resume()
	s.Run()
	if count != 2 {
		t.Fatalf("count after Resume = %d, want 2", count)
	}
}

func TestEveryTicksAndStops(t *testing.T) {
	s := NewScheduler(1)
	var ticks []Time
	tk := s.Every(time.Second, func() { ticks = append(ticks, s.Now()) })
	s.RunUntil(3500 * time.Millisecond)
	tk.Stop()
	s.Run()
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want 3 ticks", ticks)
	}
	for i, at := range ticks {
		want := time.Duration(i+1) * time.Second
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
	tk.Stop() // idempotent
}

func TestTickerStopFromCallback(t *testing.T) {
	s := NewScheduler(1)
	count := 0
	var tk *Ticker
	tk = s.Every(time.Second, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	s.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestTickerReset(t *testing.T) {
	s := NewScheduler(1)
	var ticks []Time
	tk := s.Every(time.Second, func() { ticks = append(ticks, s.Now()) })
	s.RunUntil(1 * time.Second)
	tk.Reset(10 * time.Second)
	s.RunUntil(25 * time.Second)
	tk.Stop()
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want [1s 11s 21s]", ticks)
	}
	if ticks[1] != 11*time.Second || ticks[2] != 21*time.Second {
		t.Fatalf("ticks after reset = %v, want 11s and 21s", ticks)
	}
	if tk.Interval() != 10*time.Second {
		t.Fatalf("Interval() = %v, want 10s", tk.Interval())
	}
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nil callback")
		}
	}()
	NewScheduler(1).After(time.Second, nil)
}

func TestNonPositiveTickerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero ticker interval")
		}
	}()
	NewScheduler(1).Every(0, func() {})
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (order []int, end Time) {
		s := NewScheduler(42)
		for i := 0; i < 100; i++ {
			i := i
			d := time.Duration(s.Rand().Intn(1000)) * time.Millisecond
			s.After(d, func() { order = append(order, i) })
		}
		end = s.Run()
		return order, end
	}
	o1, e1 := run()
	o2, e2 := run()
	if e1 != e2 {
		t.Fatalf("end times differ: %v vs %v", e1, e2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("orders differ at %d: %v vs %v", i, o1[i], o2[i])
		}
	}
}

func TestFiredCount(t *testing.T) {
	s := NewScheduler(1)
	for i := 0; i < 7; i++ {
		s.After(time.Duration(i)*time.Second, func() {})
	}
	e := s.After(time.Hour, func() {})
	e.Cancel()
	s.Run()
	if s.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7 (cancelled events excluded)", s.Fired())
	}
}

// Property: regardless of the insertion order of deadlines, events fire in
// nondecreasing deadline order and the clock never moves backwards.
func TestPropertyMonotonicClock(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewScheduler(7)
		var fireTimes []Time
		for _, d := range delays {
			s.After(time.Duration(d)*time.Millisecond, func() {
				fireTimes = append(fireTimes, s.Now())
			})
		}
		s.Run()
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return len(fireTimes) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil never executes an event scheduled after the deadline.
func TestPropertyRunUntilBoundary(t *testing.T) {
	f := func(delays []uint16, deadlineMS uint16) bool {
		s := NewScheduler(7)
		deadline := time.Duration(deadlineMS) * time.Millisecond
		ok := true
		for _, d := range delays {
			at := time.Duration(d) * time.Millisecond
			s.After(at, func() {
				if s.Now() > deadline {
					ok = false
				}
			})
		}
		s.RunUntil(deadline)
		return ok && s.Now() == deadline
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}
