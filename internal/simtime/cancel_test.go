package simtime

import (
	"testing"
	"time"
)

// TestPendingExactUnderArmCancelStorm drives the scheduler through an
// arm-cancel storm covering every cancellation timing — before the event
// fires, after it fires, twice, and from inside a ticker's own callback — and
// checks that Pending() settles to the exact live-event count. The historical
// bug: a Cancel landing after the event fired incremented canceledPending
// with nothing left to decrement it, so Pending() drifted and an engine
// polling it for idleness could spin on ghost events forever.
func TestPendingExactUnderArmCancelStorm(t *testing.T) {
	s := NewScheduler(1)

	var fired []*Event
	for round := 0; round < 8; round++ {
		for i := 0; i < 400; i++ {
			e := s.After(time.Duration(i%50)*time.Millisecond, func() {})
			switch i % 4 {
			case 0: // cancel while queued
				e.Cancel()
			case 1: // cancel twice while queued (idempotent)
				e.Cancel()
				e.Cancel()
			default: // let it fire, then cancel late (the leak case)
				fired = append(fired, e)
			}
		}
		s.RunFor(time.Second)
		for _, e := range fired {
			e.Cancel() // post-fire: must not count as pending-cancelled
			e.Cancel()
		}
		fired = fired[:0]
	}

	// Tickers stopped from their own callback: the event has already fired
	// when Stop cancels it, the other historical leak.
	for i := 0; i < 100; i++ {
		var tk *Ticker
		ticks := 0
		tk = s.Every(time.Millisecond, func() {
			ticks++
			if ticks >= 3 {
				tk.Stop()
			}
		})
	}
	s.RunFor(time.Second)

	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after storm drain, want 0", got)
	}
	if cp := s.canceledPending.Load(); cp != 0 {
		t.Fatalf("canceledPending = %d after storm drain, want 0 (ghost accounting)", cp)
	}
	if _, ok := s.NextEventAt(); ok {
		t.Fatal("NextEventAt reports an event on a drained scheduler")
	}

	// The counters must stay exact, not just non-negative: one live event
	// among fresh cancelled ones is reported as exactly one.
	for i := 0; i < 100; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {}).Cancel()
	}
	live := s.After(5*time.Millisecond, func() {})
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending() = %d with one live event among cancelled, want 1", got)
	}
	if at, ok := s.NextEventAt(); !ok || at != live.At {
		t.Fatalf("NextEventAt = %v,%v, want %v,true", at, ok, live.At)
	}
}

// TestNextEventAtSkipsCancelledHead pins that the LBTS probe never reports a
// cancelled deadline.
func TestNextEventAtSkipsCancelledHead(t *testing.T) {
	s := NewScheduler(1)
	head := s.After(5*time.Millisecond, func() {})
	s.After(10*time.Millisecond, func() {})
	head.Cancel()
	at, ok := s.NextEventAt()
	if !ok || at != 10*time.Millisecond {
		t.Fatalf("NextEventAt = %v,%v, want 10ms,true", at, ok)
	}
}
