package simtime

import (
	"testing"
	"time"
)

// BenchmarkSchedulerTickers models the dominant periodic load of a long
// simulation: many tickers (heartbeats, scrub polls, power-manager sweeps)
// firing over a simulated hour. One op = one simulated hour.
func BenchmarkSchedulerTickers(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewScheduler(1)
		for t := 0; t < 64; t++ {
			s.Every(500*time.Millisecond, func() {})
		}
		s.RunUntil(time.Hour)
	}
}

// BenchmarkSchedulerShortTimers models the simnet delivery pattern: bursts
// of short one-shot timers (sub-millisecond deliveries) that fire and
// immediately schedule more, using the pooled fire-and-forget path the
// network layer uses. One op = one million fired events.
func BenchmarkSchedulerShortTimers(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewScheduler(1)
		var spawn func()
		n := 0
		spawn = func() {
			n++
			if n >= 1_000_000 {
				return
			}
			d := time.Duration(200+s.Rand().Intn(800)) * time.Microsecond
			s.FireAfter(d, spawn)
		}
		for j := 0; j < 32; j++ {
			s.After(time.Duration(j)*time.Microsecond, spawn)
		}
		s.Run()
	}
}

// BenchmarkSchedulerCancelledTimeouts models the RPC-timeout pattern: every
// "call" arms a timeout seconds out and cancels it moments later when the
// reply arrives, so nearly every timer dies lazily in the queue.
func BenchmarkSchedulerCancelledTimeouts(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewScheduler(1)
		n := 0
		var call func()
		call = func() {
			n++
			if n >= 200_000 {
				return
			}
			timeout := s.After(2*time.Second, func() {})
			s.After(400*time.Microsecond, func() {
				timeout.Cancel()
				call()
			})
		}
		for j := 0; j < 16; j++ {
			s.After(time.Duration(j)*time.Microsecond, call)
		}
		s.Run()
	}
}
