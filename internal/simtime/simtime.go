// Package simtime provides a deterministic discrete-event simulation clock.
//
// All UStore simulation components share one Scheduler. Time is virtual: the
// scheduler pops the earliest pending event, advances the clock to the event's
// deadline, and runs the event's callback on the scheduler goroutine (or the
// caller's goroutine when driven via Run/Step). Because every state change
// happens inside an event callback, components need no locking and every run
// with the same seed is bit-for-bit reproducible.
package simtime

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Duration and Time alias the standard library types so call sites read
// naturally; only the source of "now" differs.
type (
	// Duration is a span of virtual time.
	Duration = time.Duration
	// Time is an instant of virtual time, measured from the scheduler epoch.
	Time = time.Duration
)

// Event is a scheduled callback.
type Event struct {
	// At is the virtual deadline of the event.
	At Time
	// Fn runs when the clock reaches At. It may schedule further events.
	Fn func()

	seq   uint64 // tie-break: FIFO among events with equal deadline
	index int    // heap index, -1 once popped or cancelled

	// canceled is atomic so Cancel may be called from a goroutine other
	// than the one driving the scheduler (e.g. a test stopping a fault
	// injector mid-run) without racing the Step/peek reads.
	canceled atomic.Bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Unlike every other scheduler
// operation, Cancel is safe to call from any goroutine.
func (e *Event) Cancel() {
	if e == nil {
		return
	}
	e.canceled.Store(true)
}

// Canceled reports whether Cancel was called before the event fired.
func (e *Event) Canceled() bool { return e.canceled.Load() }

// Done reports whether the event can no longer fire: it was cancelled or it
// already left the queue (fired or discarded).
func (e *Event) Done() bool { return e.canceled.Load() || e.index < 0 }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Scheduler is a discrete-event scheduler with a virtual clock and a seeded
// random source. The zero value is not usable; call NewScheduler.
//
// Scheduler is not safe for concurrent use: all interaction must happen from
// the goroutine driving Run/Step (which is also the goroutine event callbacks
// run on). This is deliberate — single-threaded event execution is what makes
// simulations deterministic.
type Scheduler struct {
	now   Time
	queue eventQueue
	seq   uint64
	rng   *rand.Rand

	fired   uint64
	stopped bool
}

// NewScheduler returns a scheduler whose clock reads zero and whose random
// source is seeded with seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events waiting to fire (including cancelled
// events that have not yet been popped).
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute virtual time at. If at is in the past it
// fires at the current time (events never run the clock backwards).
func (s *Scheduler) At(at Time, fn func()) *Event {
	if fn == nil {
		panic("simtime: nil event callback")
	}
	if at < s.now {
		at = s.now
	}
	e := &Event{At: at, Fn: fn, seq: s.seq}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Scheduler) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Every schedules fn to run every interval, starting one interval from now,
// until the returned Ticker is stopped. interval must be positive.
func (s *Scheduler) Every(interval Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("simtime: non-positive tick interval %v", interval))
	}
	t := &Ticker{s: s, interval: interval, fn: fn}
	t.arm()
	return t
}

// Step pops and executes the single earliest event. It reports false when the
// queue is empty or the scheduler has been stopped.
func (s *Scheduler) Step() bool {
	for {
		if s.stopped || len(s.queue) == 0 {
			return false
		}
		e := heap.Pop(&s.queue).(*Event)
		if e.canceled.Load() {
			continue
		}
		s.now = e.At
		s.fired++
		e.Fn()
		return true
	}
}

// Run executes events until the queue is empty or Stop is called. It returns
// the virtual time at which it stopped.
func (s *Scheduler) Run() Time {
	for s.Step() {
	}
	return s.now
}

// RunUntil executes events whose deadline is at or before deadline, then
// advances the clock to deadline. Events scheduled beyond deadline remain
// queued.
func (s *Scheduler) RunUntil(deadline Time) Time {
	for !s.stopped {
		if len(s.queue) == 0 {
			break
		}
		next := s.peek()
		if next == nil {
			break
		}
		if next.At > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}

// RunFor is RunUntil(Now()+d).
func (s *Scheduler) RunFor(d Duration) Time { return s.RunUntil(s.now + d) }

// Stop halts Run/RunUntil after the current event completes. Pending events
// stay queued; a stopped scheduler can be resumed with Resume.
func (s *Scheduler) Stop() { s.stopped = true }

// Resume clears the stopped flag set by Stop.
func (s *Scheduler) Resume() { s.stopped = false }

func (s *Scheduler) peek() *Event {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if !e.canceled.Load() {
			return e
		}
		heap.Pop(&s.queue)
	}
	return nil
}

// Ticker fires a callback at a fixed interval of virtual time.
type Ticker struct {
	s        *Scheduler
	interval Duration
	fn       func()
	ev       *Event
	stopped  bool
}

func (t *Ticker) arm() {
	t.ev = t.s.After(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.ev.Cancel()
}

// Reset stops the ticker and re-arms it with a new interval.
func (t *Ticker) Reset(interval Duration) {
	if interval <= 0 {
		panic(fmt.Sprintf("simtime: non-positive tick interval %v", interval))
	}
	t.Stop()
	t.stopped = false
	t.interval = interval
	t.arm()
}

// Interval returns the current tick interval.
func (t *Ticker) Interval() Duration { return t.interval }
