// Package simtime provides a deterministic discrete-event simulation clock.
//
// All UStore simulation components share one Scheduler. Time is virtual: the
// scheduler pops the earliest pending event, advances the clock to the event's
// deadline, and runs the event's callback on the scheduler goroutine (or the
// caller's goroutine when driven via Run/Step). Because every state change
// happens inside an event callback, components need no locking and every run
// with the same seed is bit-for-bit reproducible.
//
// # Internals
//
// Events are kept in a three-tier near/far structure rather than one global
// heap, so the dominant loads — sub-millisecond message deliveries and
// periodic tickers — cost O(1) or O(log k) for a tiny k instead of O(log n)
// over every pending timer:
//
//   - ready: a small binary heap holding every event below slotEnd, the
//     lower edge of the timer wheel. Only this heap is ever popped, so the
//     firing order is the same (deadline, sequence) total order the old
//     single-heap implementation had.
//   - wheel: wheelSlotCount buckets of wheelGranularity each, a linear
//     window [base, base+wheelSpan). Insertion is O(1): append to the slot
//     the deadline lands in and set its bit in an occupancy bitmap. When
//     ready drains, the next occupied slot (found by a trailing-zeros scan)
//     is promoted wholesale into ready and slotEnd advances past it.
//   - far: a heap for events at or beyond the wheel horizon. When both
//     ready and wheel drain, the window rebases at the earliest far
//     deadline and everything within one span migrates into the wheel.
//
// Promotion always completes before slotEnd moves past a slot, so at any pop
// the ready heap contains every unfired event below slotEnd and its top is
// the global minimum: the (At, seq) firing order is identical to a single
// heap's, which TestPropertyWheelMatchesReferenceHeap verifies.
//
// Event structs are pooled on a free list. Only events that never escape to
// a caller — FireAt/FireAfter, used by hot paths like simnet delivery — are
// recycled, so a stale handle can never cancel a reused event. Tickers go
// one step further and re-arm their own event in place, making steady-state
// periodic load allocation-free. Cancelled events are dropped lazily when
// popped or promoted; if they ever exceed half the pending population the
// queue is compacted in (At, seq)-preserving order.
package simtime

import (
	"container/heap"
	"fmt"
	"math/bits"
	"math/rand"
	"sync/atomic"
	"time"
)

// Duration and Time alias the standard library types so call sites read
// naturally; only the source of "now" differs.
type (
	// Duration is a span of virtual time.
	Duration = time.Duration
	// Time is an instant of virtual time, measured from the scheduler epoch.
	Time = time.Duration
)

// Timer-wheel geometry: 4096 slots of 1ms cover a ~4.1s window, enough that
// message deliveries, RPC timeouts and sub-second tickers all insert in O(1).
// Longer timers (scrub idle windows, multi-minute heartbeats) overflow to the
// far heap, which stays small because such timers are few.
const (
	wheelGranularity          = time.Millisecond
	wheelSlotCount            = 4096
	wheelSpan        Duration = wheelSlotCount * wheelGranularity
)

// index sentinels: a non-negative index is a position in the ready or far
// heap; events in a wheel slot and events that have left the queue entirely
// (fired, recycled, or dropped after cancellation) are marked instead.
const (
	indexFired = -1
	indexWheel = -2
)

// compaction thresholds: sweep lazily-cancelled events out of the queue once
// there are at least compactMinCanceled of them and they outnumber half the
// pending population.
const compactMinCanceled = 64

// Event is a scheduled callback.
type Event struct {
	// At is the virtual deadline of the event.
	At Time
	// Fn runs when the clock reaches At. It may schedule further events.
	Fn func()

	seq    uint64     // tie-break: FIFO among events with equal deadline
	index  int        // heap position, or an index* sentinel
	s      *Scheduler // owner, for cancellation bookkeeping
	pooled bool       // no handle escaped; recycle through the free list

	// state is atomic so Cancel may be called from a goroutine other than
	// the one driving the scheduler (e.g. a test stopping a fault injector
	// mid-run) without racing the Step/peek reads. It holds the evCanceled
	// and evDeparted bits; their combination makes canceledPending exact:
	// Cancel counts an event only while it is still queued, and the side
	// that takes it out of the queue (fire or drop) uncounts it.
	state atomic.Uint32
}

// state bits. evDeparted marks an event that has left the queue (fired,
// dropped, or discarded); once set, a late Cancel is a no-op for accounting.
const (
	evCanceled uint32 = 1 << 0
	evDeparted uint32 = 1 << 1
)

func (e *Event) canceledBit() bool { return e.state.Load()&evCanceled != 0 }

// depart marks the event as out of the queue and reports whether a Cancel was
// counted against it (i.e. the canceled bit was set while it was still
// queued). The caller must decrement canceledPending when depart returns true.
func (e *Event) depart() bool {
	for {
		old := e.state.Load()
		if old&evDeparted != 0 {
			return false
		}
		if e.state.CompareAndSwap(old, old|evDeparted) {
			return old&evCanceled != 0
		}
	}
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Unlike every other scheduler
// operation, Cancel is safe to call from any goroutine.
func (e *Event) Cancel() {
	if e == nil {
		return
	}
	for {
		old := e.state.Load()
		if old&evCanceled != 0 {
			return
		}
		if e.state.CompareAndSwap(old, old|evCanceled) {
			// Count the cancellation only if the event is still queued;
			// cancelling after the event fired must not leave a ghost in
			// canceledPending (it has nothing left to uncount it).
			if old&evDeparted == 0 && e.s != nil {
				e.s.canceledPending.Add(1)
			}
			return
		}
	}
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceledBit() }

// Done reports whether the event can no longer fire: it was cancelled or it
// already left the queue (fired or discarded).
func (e *Event) Done() bool { return e.canceledBit() || e.index == indexFired }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = indexFired
	*q = old[:n-1]
	return e
}

// Stats is a snapshot of scheduler activity counters, for observability and
// perf work. All counts are cumulative since NewScheduler.
type Stats struct {
	Fired           uint64 // events executed
	Allocated       uint64 // Event structs taken from the Go allocator
	Recycled        uint64 // pooled events returned to the free list
	Reused          uint64 // events served from the free list or re-armed in place (tickers)
	ReadyInserts    uint64 // insertions landing directly in the ready heap
	WheelInserts    uint64 // O(1) insertions into a wheel slot
	FarInserts      uint64 // insertions beyond the wheel horizon
	Migrated        uint64 // far-heap events pulled into the wheel at a rebase
	CanceledDropped uint64 // cancelled events discarded without firing
	Compactions     uint64 // full-queue sweeps of cancelled events
	MaxPending      int    // high-water mark of Pending()
}

// Scheduler is a discrete-event scheduler with a virtual clock and a seeded
// random source. The zero value is not usable; call NewScheduler.
//
// Scheduler is not safe for concurrent use: all interaction must happen from
// the goroutine driving Run/Step (which is also the goroutine event callbacks
// run on). This is deliberate — single-threaded event execution is what makes
// simulations deterministic.
type Scheduler struct {
	now Time
	seq uint64
	rng *rand.Rand

	// near/far event structure; see the package comment.
	ready   eventQueue
	slots   [wheelSlotCount][]*Event
	bitmap  [wheelSlotCount / 64]uint64
	base    Time // wheel origin; slot i covers [base+i·G, base+(i+1)·G)
	cursor  int  // slots below cursor have been promoted
	slotEnd Time // = base + cursor·G; every event below it is in ready (or fired)
	wheel   int  // events currently in wheel slots
	far     eventQueue

	free []*Event // recycled pooled events

	fired   uint64
	stopped bool
	stats   Stats

	// canceledPending counts exactly how many cancelled events are still
	// queued: Cancel increments it only for queued events, and whichever
	// path removes the event (lazy drop, compaction, or a racing fire)
	// decrements it. Atomic because Cancel may run on another goroutine.
	// The count gates compaction and keeps Pending() free of ghosts, which
	// the partition engine relies on for idle detection.
	canceledPending atomic.Int64
}

// NewScheduler returns a scheduler whose clock reads zero and whose random
// source is seeded with seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of live events waiting to fire. Lazily-cancelled
// events still sitting in the queue are excluded, so an engine polling
// Pending() for idleness cannot spin on ghosts.
func (s *Scheduler) Pending() int {
	p := s.queued() - int(s.canceledPending.Load())
	if p < 0 {
		// A Cancel on another goroutine can land between the two reads;
		// never report a negative count for it.
		p = 0
	}
	return p
}

// queued returns the raw queue population, cancelled events included.
func (s *Scheduler) queued() int { return len(s.ready) + s.wheel + len(s.far) }

// NextEventAt returns the deadline of the earliest live pending event. ok is
// false when no live events remain. Cancelled events are swept past, so the
// partition engine's LBTS computation never stalls on a ghost deadline.
func (s *Scheduler) NextEventAt() (at Time, ok bool) {
	e := s.peekNext()
	if e == nil {
		return 0, false
	}
	return e.At, true
}

// Stats returns a snapshot of the scheduler's activity counters.
func (s *Scheduler) Stats() Stats {
	st := s.stats
	st.Fired = s.fired
	return st
}

// alloc returns an Event ready for scheduling, from the free list when one
// is available.
func (s *Scheduler) alloc() *Event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		s.stats.Reused++
		return e
	}
	s.stats.Allocated++
	return &Event{s: s}
}

// recycle returns a pooled event to the free list. Only events whose handle
// never escaped (FireAt/FireAfter) are recycled, so no caller can hold a
// reference to a reused Event.
func (s *Scheduler) recycle(e *Event) {
	e.Fn = nil
	e.pooled = false
	// Pooled events never escape, so no goroutine can hold a handle to
	// cancel: resetting the state bits here cannot race.
	e.state.Store(0)
	s.free = append(s.free, e)
	s.stats.Recycled++
}

// schedule places an armed event into the tier its deadline selects.
func (s *Scheduler) schedule(e *Event) {
	switch {
	case e.At < s.slotEnd:
		heap.Push(&s.ready, e)
		s.stats.ReadyInserts++
	case e.At < s.base+wheelSpan:
		s.wheelInsert(e)
		s.stats.WheelInserts++
	default:
		heap.Push(&s.far, e)
		s.stats.FarInserts++
	}
	if p := s.Pending(); p > s.stats.MaxPending {
		s.stats.MaxPending = p
	}
}

func (s *Scheduler) wheelInsert(e *Event) {
	idx := int((e.At - s.base) / wheelGranularity)
	e.index = indexWheel
	s.slots[idx] = append(s.slots[idx], e)
	s.bitmap[idx>>6] |= 1 << uint(idx&63)
	s.wheel++
}

// nextOccupied returns the first occupied slot at or after from. The caller
// guarantees one exists (s.wheel > 0).
func (s *Scheduler) nextOccupied(from int) int {
	w := from >> 6
	word := s.bitmap[w] &^ (1<<uint(from&63) - 1)
	for word == 0 {
		w++
		word = s.bitmap[w]
	}
	return w<<6 + bits.TrailingZeros64(word)
}

// dropCanceled retires a cancelled event that has been removed from its
// container.
func (s *Scheduler) dropCanceled(e *Event) {
	e.index = indexFired
	s.stats.CanceledDropped++
	if e.depart() {
		s.canceledPending.Add(-1)
	}
}

// advanceWindow moves the wheel window forward until the ready heap gains at
// least one event. It reports false when no events remain anywhere.
func (s *Scheduler) advanceWindow() bool {
	for {
		if s.wheel > 0 {
			idx := s.nextOccupied(s.cursor)
			bucket := s.slots[idx]
			s.bitmap[idx>>6] &^= 1 << uint(idx&63)
			s.cursor = idx + 1
			s.slotEnd = s.base + Duration(idx+1)*wheelGranularity
			s.wheel -= len(bucket)
			for i, e := range bucket {
				bucket[i] = nil
				if e.canceledBit() {
					s.dropCanceled(e)
					continue
				}
				heap.Push(&s.ready, e)
			}
			s.slots[idx] = bucket[:0]
			if len(s.ready) > 0 {
				return true
			}
			continue
		}
		if len(s.far) > 0 {
			// Rebase the window at the earliest far deadline and pull
			// everything within one span into the wheel. far deadlines are
			// always at or beyond the old horizon, so base never regresses.
			at := s.far[0].At
			s.base = at - at%wheelGranularity
			s.cursor = 0
			s.slotEnd = s.base
			horizon := s.base + wheelSpan
			for len(s.far) > 0 && s.far[0].At < horizon {
				e := heap.Pop(&s.far).(*Event)
				if e.canceledBit() {
					s.dropCanceled(e)
					continue
				}
				s.wheelInsert(e)
				s.stats.Migrated++
			}
			continue
		}
		return false
	}
}

// popNext removes and returns the earliest live event, or nil if none remain.
func (s *Scheduler) popNext() *Event {
	for {
		for len(s.ready) > 0 {
			e := heap.Pop(&s.ready).(*Event)
			if e.canceledBit() {
				s.dropCanceled(e)
				continue
			}
			return e
		}
		if !s.advanceWindow() {
			return nil
		}
	}
}

// peekNext returns the earliest live event without removing it, or nil.
func (s *Scheduler) peekNext() *Event {
	for {
		for len(s.ready) > 0 {
			e := s.ready[0]
			if !e.canceledBit() {
				return e
			}
			heap.Pop(&s.ready)
			s.dropCanceled(e)
		}
		if !s.advanceWindow() {
			return nil
		}
	}
}

// maybeCompact sweeps cancelled events out of all tiers once they are both
// numerous and a large fraction of the queue. The sweep preserves (At, seq)
// order, so firing results are unchanged; it only reclaims memory and keeps
// Pending() honest under cancel-heavy loads (every RPC arms a timeout that
// is almost always cancelled).
func (s *Scheduler) maybeCompact() {
	cp := s.canceledPending.Load()
	if cp < compactMinCanceled || cp*2 < int64(s.queued()) {
		return
	}
	s.stats.Compactions++
	filter := func(q *eventQueue) {
		old := *q
		keep := old[:0]
		for _, e := range old {
			if e.canceledBit() {
				s.dropCanceled(e)
			} else {
				keep = append(keep, e)
			}
		}
		for i := len(keep); i < len(old); i++ {
			old[i] = nil
		}
		*q = keep
		for i, e := range keep {
			e.index = i
		}
		heap.Init(q)
	}
	filter(&s.ready)
	filter(&s.far)
	for idx := s.cursor; idx < wheelSlotCount && s.wheel > 0; idx++ {
		if s.bitmap[idx>>6]&(1<<uint(idx&63)) == 0 {
			continue
		}
		bucket := s.slots[idx]
		keep := bucket[:0]
		for _, e := range bucket {
			if e.canceledBit() {
				s.dropCanceled(e)
				s.wheel--
			} else {
				keep = append(keep, e)
			}
		}
		for i := len(keep); i < len(bucket); i++ {
			bucket[i] = nil
		}
		s.slots[idx] = keep
		if len(keep) == 0 {
			s.bitmap[idx>>6] &^= 1 << uint(idx&63)
		}
	}
	// No reset of canceledPending here: dropCanceled decremented it exactly
	// once per swept event, so whatever remains was cancelled concurrently
	// during the sweep and is still queued.
}

// At schedules fn to run at absolute virtual time at. If at is in the past it
// fires at the current time (events never run the clock backwards).
func (s *Scheduler) At(at Time, fn func()) *Event {
	if fn == nil {
		panic("simtime: nil event callback")
	}
	if at < s.now {
		at = s.now
	}
	e := s.alloc()
	e.At, e.Fn, e.seq, e.pooled = at, fn, s.seq, false
	s.seq++
	s.schedule(e)
	return e
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Scheduler) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// FireAt schedules fn to run at absolute virtual time at, like At, but
// returns no handle. Because the event can never be cancelled or inspected,
// the scheduler recycles its Event struct through a free list — hot paths
// that fire and forget (message delivery, decay sweeps) should prefer this
// over At to avoid one allocation per event.
func (s *Scheduler) FireAt(at Time, fn func()) {
	if fn == nil {
		panic("simtime: nil event callback")
	}
	if at < s.now {
		at = s.now
	}
	e := s.alloc()
	e.At, e.Fn, e.seq, e.pooled = at, fn, s.seq, true
	s.seq++
	s.schedule(e)
}

// FireAfter schedules fn to run d from now without returning a handle; see
// FireAt. Negative d is treated as zero.
func (s *Scheduler) FireAfter(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.FireAt(s.now+d, fn)
}

// Every schedules fn to run every interval, starting one interval from now,
// until the returned Ticker is stopped. interval must be positive.
func (s *Scheduler) Every(interval Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("simtime: non-positive tick interval %v", interval))
	}
	t := &Ticker{s: s, interval: interval, fn: fn}
	t.tick = func() {
		if t.stopped {
			return
		}
		t.fn()
		// Re-arm the same Event in place unless the callback stopped the
		// ticker or Reset already armed a replacement.
		if !t.stopped && t.ev.index == indexFired {
			t.rearm()
		}
	}
	t.arm()
	return t
}

// Step pops and executes the single earliest event. It reports false when the
// queue is empty or the scheduler has been stopped.
func (s *Scheduler) Step() bool {
	if s.stopped {
		return false
	}
	s.maybeCompact()
	e := s.popNext()
	if e == nil {
		return false
	}
	s.now = e.At
	s.fired++
	// The event is leaving the queue by firing. A Cancel can still land
	// between popNext's liveness check and here; it was counted against
	// canceledPending (the event looked queued), so uncount it. The event
	// fires anyway, matching the historical best-effort race semantics.
	if e.depart() {
		s.canceledPending.Add(-1)
	}
	fn := e.Fn
	if e.pooled {
		s.recycle(e)
	}
	fn()
	return true
}

// Run executes events until the queue is empty or Stop is called. It returns
// the virtual time at which it stopped.
func (s *Scheduler) Run() Time {
	for s.Step() {
	}
	return s.now
}

// RunUntil executes events whose deadline is at or before deadline, then
// advances the clock to deadline. Events scheduled beyond deadline remain
// queued.
func (s *Scheduler) RunUntil(deadline Time) Time {
	for !s.stopped {
		next := s.peekNext()
		if next == nil || next.At > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}

// RunFor is RunUntil(Now()+d).
func (s *Scheduler) RunFor(d Duration) Time { return s.RunUntil(s.now + d) }

// Stop halts Run/RunUntil after the current event completes. Pending events
// stay queued; a stopped scheduler can be resumed with Resume.
func (s *Scheduler) Stop() { s.stopped = true }

// Resume clears the stopped flag set by Stop.
func (s *Scheduler) Resume() { s.stopped = false }

// Ticker fires a callback at a fixed interval of virtual time.
type Ticker struct {
	s        *Scheduler
	interval Duration
	fn       func()
	ev       *Event
	tick     func() // wraps fn; allocated once, shared by every re-arm
	stopped  bool
}

// arm installs a fresh Event. Used for the first tick and after Reset, when
// the previous event may still sit cancelled in the queue and so cannot be
// reused.
func (t *Ticker) arm() {
	e := t.s.alloc()
	e.At, e.Fn, e.seq, e.pooled = t.s.now+t.interval, t.tick, t.s.seq, false
	t.s.seq++
	t.ev = e
	t.s.schedule(e)
}

// rearm reschedules the just-fired Event in place: no allocation on the
// steady-state tick path.
func (t *Ticker) rearm() {
	e := t.ev
	// The event fired (departed bit set) and was not cancelled — tick
	// checked t.stopped before calling us — so the reset cannot race a
	// counted cancellation.
	e.state.Store(0)
	e.At, e.seq = t.s.now+t.interval, t.s.seq
	t.s.seq++
	t.s.stats.Reused++
	t.s.schedule(e)
}

// Stop cancels future ticks. Safe to call multiple times.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.ev.Cancel()
}

// Reset stops the ticker and re-arms it with a new interval.
func (t *Ticker) Reset(interval Duration) {
	if interval <= 0 {
		panic(fmt.Sprintf("simtime: non-positive tick interval %v", interval))
	}
	t.Stop()
	t.stopped = false
	t.interval = interval
	t.arm()
}

// Interval returns the current tick interval.
func (t *Ticker) Interval() Duration { return t.interval }
