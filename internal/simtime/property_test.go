package simtime

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// This file proves the timer wheel's ordering theorem empirically: for
// randomized workloads mixing cancellable timers, pooled fire-and-forget
// timers, self-stopping tickers, mid-run cancellations, and RunUntil
// boundaries, the three-tier scheduler fires callbacks in exactly the
// (At, seq) order a single min-heap would. Both schedulers execute the same
// seeded workload; any divergence in the firing log is a wheel bug.

// refSched is the reference: the plain single-heap scheduler this package
// had before the wheel, reduced to its ordering-relevant core.
type refSched struct {
	now Duration
	seq uint64
	q   refQueue
}

type refEvent struct {
	at       Duration
	seq      uint64
	fn       func()
	canceled bool
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)   { *q = append(*q, x.(*refEvent)) }
func (q *refQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

func (r *refSched) at(at Duration, fn func()) *refEvent {
	if at < r.now {
		at = r.now
	}
	e := &refEvent{at: at, seq: r.seq, fn: fn}
	r.seq++
	heap.Push(&r.q, e)
	return e
}

func (r *refSched) step() bool {
	for len(r.q) > 0 {
		e := heap.Pop(&r.q).(*refEvent)
		if e.canceled {
			continue
		}
		r.now = e.at
		e.fn()
		return true
	}
	return false
}

func (r *refSched) runUntil(deadline Duration) {
	for {
		for len(r.q) > 0 && r.q[0].canceled {
			heap.Pop(&r.q)
		}
		if len(r.q) == 0 || r.q[0].at > deadline {
			break
		}
		r.step()
	}
	if r.now < deadline {
		r.now = deadline
	}
}

// refTicker mirrors Ticker's semantics: first fire one interval out, fn
// runs before the re-arm, stopping from inside fn suppresses the re-arm.
type refTicker struct {
	r       *refSched
	iv      Duration
	fn      func()
	ev      *refEvent
	stopped bool
}

func (t *refTicker) arm() {
	t.ev = t.r.at(t.r.now+t.iv, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

func (t *refTicker) stop() {
	t.stopped = true
	if t.ev != nil {
		t.ev.canceled = true
	}
}

// schedDriver abstracts the operations the workload performs, so the same
// script drives both schedulers.
type schedDriver interface {
	now() Duration
	after(d Duration, fn func()) (cancel func()) // cancellable timer
	fireAfter(d Duration, fn func())             // pooled, no handle
	every(iv Duration, fn func()) (stop func())
	runUntil(t Duration)
	run()
}

type wheelDriver struct{ s *Scheduler }

func (w wheelDriver) now() Duration { return w.s.Now() }
func (w wheelDriver) after(d Duration, fn func()) func() {
	ev := w.s.After(d, fn)
	return ev.Cancel
}
func (w wheelDriver) fireAfter(d Duration, fn func()) { w.s.FireAfter(d, fn) }
func (w wheelDriver) every(iv Duration, fn func()) func() {
	tk := w.s.Every(iv, fn)
	return tk.Stop
}
func (w wheelDriver) runUntil(t Duration) { w.s.RunUntil(t) }
func (w wheelDriver) run()                { w.s.Run() }

type refDriver struct{ r *refSched }

func (rd refDriver) now() Duration { return rd.r.now }
func (rd refDriver) after(d Duration, fn func()) func() {
	if d < 0 {
		d = 0
	}
	ev := rd.r.at(rd.r.now+d, fn)
	return func() { ev.canceled = true }
}
func (rd refDriver) fireAfter(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	rd.r.at(rd.r.now+d, fn)
}
func (rd refDriver) every(iv Duration, fn func()) func() {
	tk := &refTicker{r: rd.r, iv: iv, fn: fn}
	tk.arm()
	return tk.stop
}
func (rd refDriver) runUntil(t Duration) { rd.r.runUntil(t) }
func (rd refDriver) run() {
	for rd.r.step() {
	}
}

// propertyWorkload runs the seeded random workload on d and returns the
// firing log ("id@virtualNanos" per fired callback). Both schedulers make
// identical rng draws as long as they fire callbacks in identical order, so
// a single diverging pop snowballs into an obvious log mismatch.
func propertyWorkload(d schedDriver, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	var log []string
	record := func(id int) { log = append(log, fmt.Sprintf("%d@%d", id, d.now())) }

	// Delays hit every tier: sub-granularity, exact slot edges, the wheel
	// horizon, and far beyond it.
	delays := []Duration{
		0, 1, 500 * time.Nanosecond, time.Microsecond,
		wheelGranularity - 1, wheelGranularity, wheelGranularity + 1,
		5 * time.Millisecond, 100 * time.Millisecond, time.Second,
		wheelSpan - time.Millisecond, wheelSpan, wheelSpan + time.Millisecond,
		10 * time.Second, time.Hour,
	}

	nextID := 0
	spawned := 0
	const maxSpawn = 2500
	var cancels []func()
	var spawn func()
	spawn = func() {
		if spawned >= maxSpawn {
			return
		}
		spawned++
		id := nextID
		nextID++
		delay := delays[rng.Intn(len(delays))]
		if rng.Intn(2) == 0 {
			delay += Duration(rng.Int63n(int64(3 * time.Millisecond)))
		}
		fn := func() {
			record(id)
			for k := rng.Intn(3); k > 0; k-- {
				spawn()
			}
			if len(cancels) > 0 && rng.Intn(4) == 0 {
				cancels[rng.Intn(len(cancels))]() // may hit fired events: must be a no-op
			}
		}
		if rng.Intn(2) == 0 {
			d.fireAfter(delay, fn)
		} else {
			cancels = append(cancels, d.after(delay, fn))
		}
	}

	for i := 0; i < 120; i++ {
		spawn()
	}
	for i := 0; i < 6; i++ {
		iv := Duration(1 + rng.Int63n(int64(700*time.Millisecond)))
		remaining := 3 + rng.Intn(8)
		id := nextID
		nextID++
		var stop func()
		stop = d.every(iv, func() {
			record(id)
			remaining--
			if remaining == 0 {
				stop()
			}
		})
	}

	// Drain in stages so insertions land in an advanced, partially drained
	// wheel (exercising rebase and far-queue migration), with RunUntil
	// boundaries that stop between events.
	d.runUntil(1500 * time.Millisecond)
	for i := 0; i < 60; i++ {
		spawn()
	}
	d.runUntil(1500*time.Millisecond + 2*wheelSpan + time.Millisecond/2)
	for i := 0; i < 60; i++ {
		spawn()
	}
	d.run()
	return log
}

func TestWheelMatchesReferenceHeap(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		wheel := propertyWorkload(wheelDriver{s: NewScheduler(0)}, seed)
		ref := propertyWorkload(refDriver{r: &refSched{}}, seed)
		if len(wheel) == 0 {
			t.Fatalf("seed %d: workload fired nothing", seed)
		}
		if len(wheel) != len(ref) {
			t.Fatalf("seed %d: wheel fired %d events, reference %d", seed, len(wheel), len(ref))
		}
		for i := range wheel {
			if wheel[i] != ref[i] {
				lo := i - 3
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("seed %d: firing order diverges at %d:\nwheel %v\nref   %v",
					seed, i, wheel[lo:i+1], ref[lo:i+1])
			}
		}
	}
}

// TestSchedulerStats checks the Stats counters against a workload with known
// composition: pooled timers recycle, handle timers don't, tickers reuse one
// event across re-arms, and mass cancellation triggers compaction.
func TestSchedulerStats(t *testing.T) {
	s := NewScheduler(0)

	// 100 sequential pooled timers: one Event object serves them all.
	var chain func(n int)
	chain = func(n int) {
		if n == 0 {
			return
		}
		s.FireAfter(time.Millisecond, func() { chain(n - 1) })
	}
	chain(100)
	// A ticker re-arming 50 times reuses its event in place.
	ticks := 0
	var tk *Ticker
	tk = s.Every(time.Millisecond, func() {
		ticks++
		if ticks == 50 {
			tk.Stop()
		}
	})
	s.Run()

	st := s.Stats()
	if st.Fired != 150 {
		t.Fatalf("Fired = %d, want 150", st.Fired)
	}
	if st.Recycled != 100 {
		t.Fatalf("Recycled = %d, want 100 (every pooled timer)", st.Recycled)
	}
	// 99 free-list draws by the chain plus 49 ticker re-arms.
	if st.Reused != 148 {
		t.Fatalf("Reused = %d, want 148", st.Reused)
	}
	if st.Allocated > 3 {
		t.Fatalf("Allocated = %d, want <= 3 (free list must be reused)", st.Allocated)
	}
	if st.MaxPending < 1 {
		t.Fatalf("MaxPending = %d", st.MaxPending)
	}

	// Mass cancellation: enough lazily-cancelled events must compact.
	s2 := NewScheduler(0)
	evs := make([]*Event, 2000)
	for i := range evs {
		evs[i] = s2.After(Duration(i)*time.Microsecond, func() {})
	}
	for _, e := range evs[:1900] {
		e.Cancel()
	}
	s2.Run()
	st2 := s2.Stats()
	if st2.Fired != 100 {
		t.Fatalf("Fired = %d after cancellation, want 100", st2.Fired)
	}
	if st2.Compactions == 0 {
		t.Fatal("cancelling 95%% of the queue never triggered a compaction")
	}
	if st2.CanceledDropped == 0 {
		t.Fatal("CanceledDropped = 0")
	}
}
