package simtime

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// engineWorkload runs a randomized cross-partition ping workload on an
// engine with the given worker count and returns a text log of every event
// execution: (partition, time, payload) lines in execution order per
// partition, concatenated partition-major. Identical logs across worker
// counts demonstrate the byte-determinism contract.
func engineWorkload(t *testing.T, workers int) string {
	t.Helper()
	const (
		parts     = 9
		lookahead = time.Millisecond
	)
	e := NewEngine(42, parts, workers, lookahead)
	logs := make([]*strings.Builder, parts)
	rngs := make([]*rand.Rand, parts)
	for p := 0; p < parts; p++ {
		logs[p] = &strings.Builder{}
		rngs[p] = e.Part(p).Rand()
	}
	var hop func(p, ttl int) func()
	hop = func(p, ttl int) func() {
		return func() {
			sched := e.Part(p)
			fmt.Fprintf(logs[p], "p%d %v ttl=%d r=%d\n", p, sched.Now(), ttl, rngs[p].Intn(1000))
			if ttl == 0 {
				return
			}
			// Local follow-up below the lookahead, then a cross-partition
			// hop stamped exactly one link latency (≥ lookahead) out.
			sched.FireAfter(200*time.Microsecond, func() {
				fmt.Fprintf(logs[p], "p%d %v local\n", p, sched.Now())
			})
			dst := (p + 1 + ttl) % parts
			if dst == p {
				dst = (p + 1) % parts
			}
			e.Post(p, dst, sched.Now()+lookahead, hop(dst, ttl-1))
		}
	}
	for p := 0; p < parts; p++ {
		e.Part(p).FireAfter(time.Duration(p+1)*time.Millisecond, hop(p, 12))
	}
	e.RunFor(time.Second)
	var all strings.Builder
	for p := 0; p < parts; p++ {
		all.WriteString(logs[p].String())
	}
	fmt.Fprintf(&all, "fired=%d now=%v\n", e.Fired(), e.Now())
	return all.String()
}

func TestEngineByteDeterminismAcrossWorkers(t *testing.T) {
	want := engineWorkload(t, 1)
	if !strings.Contains(want, "ttl=0") {
		t.Fatalf("workload never completed a hop chain:\n%s", want)
	}
	for _, workers := range []int{2, 4, 8} {
		if got := engineWorkload(t, workers); got != want {
			t.Errorf("workers=%d log diverges from workers=1", workers)
		}
	}
}

func TestEnginePartitionRNGSplit(t *testing.T) {
	e := NewEngine(7, 3, 1, time.Millisecond)
	// Partition 0 must reproduce the plain single-scheduler stream for the
	// same seed; other partitions must diverge from it.
	ref := NewScheduler(7)
	for i := 0; i < 8; i++ {
		if got, want := e.Part(0).Rand().Int63(), ref.Rand().Int63(); got != want {
			t.Fatalf("partition 0 draw %d = %d, want %d", i, got, want)
		}
	}
	if e.Part(1).Rand().Int63() == NewScheduler(7).Rand().Int63() {
		t.Fatal("partition 1 RNG matches the unsplit seed stream")
	}
}

func TestEnginePostBeforeHorizonPanics(t *testing.T) {
	e := NewEngine(1, 2, 1, time.Millisecond)
	e.Part(0).FireAfter(5*time.Millisecond, func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("Post below the window horizon did not panic")
				return
			}
			if !strings.Contains(fmt.Sprint(r), "lookahead") {
				t.Errorf("panic message %q does not name the lookahead contract", r)
			}
		}()
		// Stamp inside the current window: a lookahead violation.
		e.Post(0, 1, e.Part(0).Now(), func() {})
	})
	e.RunFor(20 * time.Millisecond)
}

func TestEngineIdleWithCancelledEvents(t *testing.T) {
	e := NewEngine(3, 4, 2, time.Millisecond)
	// Fill partitions with events that are all cancelled before the run:
	// idle detection must see through the ghosts instead of spinning.
	for p := 0; p < e.Parts(); p++ {
		for i := 0; i < 500; i++ {
			e.Part(p).After(time.Duration(i)*time.Millisecond, func() {
				t.Error("cancelled event fired")
			}).Cancel()
		}
	}
	if got, ok := e.lbts(); ok {
		t.Fatalf("lbts = %v on an all-cancelled engine, want idle", got)
	}
	e.RunFor(10 * time.Second)
	if e.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", e.Fired())
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending = %d, want 0", got)
	}
}

func TestEngineRejectsBadConfig(t *testing.T) {
	for _, tc := range []struct {
		parts     int
		lookahead Duration
	}{{0, time.Millisecond}, {2, 0}, {2, -time.Second}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEngine(parts=%d, lookahead=%v) did not panic", tc.parts, tc.lookahead)
				}
			}()
			NewEngine(1, tc.parts, 1, tc.lookahead)
		}()
	}
}
