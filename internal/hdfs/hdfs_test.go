package hdfs

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ustore/internal/core"
	"ustore/internal/fabric"
)

// rig is a §VII-B deployment: a UStore cluster with the namenode on one
// host and datanodes on the other three, 3-way replication.
type rig struct {
	c   *core.Cluster
	nn  *NameNode
	dns []*DataNode
	cli *Client
}

func newRig(t *testing.T) *rig {
	t.Helper()
	cfg := core.DefaultConfig()
	c, err := core.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Settle(8 * time.Second)
	if c.ActiveMaster() == nil {
		t.Fatal("no active master")
	}
	r := &rig{c: c}
	r.nn = NewNameNode(c.Net, "h1")
	// Datanodes on h2..h4, each with a UStore volume allocated with its
	// host as the locality hint.
	for _, host := range []string{"h2", "h3", "h4"} {
		cl := c.Client(host+"-dn", "hdfs-"+host)
		dn := NewDataNode(c.Net, host, "h1", cl)
		r.dns = append(r.dns, dn)
		var startErr error = errors.New("pending")
		dn.Start(64<<30, func(err error) { startErr = err })
		c.Settle(5 * time.Second)
		if startErr != nil {
			t.Fatalf("datanode %s: %v", host, startErr)
		}
	}
	r.cli = NewClient(c.Net, "cli", "h1")
	return r
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := newRig(t)
	data := make([]byte, 3*BlockSize+12345)
	for i := range data {
		data[i] = byte(i * 31)
	}
	var writeErr error = errors.New("pending")
	r.cli.WriteFile("/logs/a", data, func(err error) { writeErr = err })
	r.c.Settle(60 * time.Second)
	if writeErr != nil {
		t.Fatalf("write: %v", writeErr)
	}
	var got []byte
	var readErr error = errors.New("pending")
	r.cli.ReadFile("/logs/a", func(b []byte, err error) { got, readErr = b, err })
	r.c.Settle(30 * time.Second)
	if readErr != nil {
		t.Fatalf("read: %v", readErr)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("data mismatch: got %d bytes, want %d", len(got), len(data))
	}
	// Every block landed on all three datanodes.
	for _, dn := range r.dns {
		if dn.Blocks() != 4 {
			t.Fatalf("datanode %s holds %d blocks, want 4", dn.name, dn.Blocks())
		}
	}
}

func TestReadUnknownFile(t *testing.T) {
	r := newRig(t)
	var readErr error
	r.cli.ReadFile("/nope", func(_ []byte, err error) { readErr = err })
	r.c.Settle(5 * time.Second)
	if readErr == nil {
		t.Fatal("read of unknown file succeeded")
	}
}

func TestNotEnoughDataNodes(t *testing.T) {
	cfg := core.DefaultConfig()
	c, err := core.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Settle(8 * time.Second)
	NewNameNode(c.Net, "h1")
	cli := NewClient(c.Net, "cli", "h1")
	var writeErr error
	cli.WriteFile("/f", make([]byte, 100), func(err error) { writeErr = err })
	c.Settle(90 * time.Second)
	if writeErr == nil {
		t.Fatal("write with zero datanodes succeeded")
	}
}

// TestDiskSwitchDuringWrite reproduces the §VII-B experiment: switch a
// datanode's disk to another host mid-write. The write stalls for a few
// seconds (client retries) and then resumes; no data is lost.
func TestDiskSwitchDuringWrite(t *testing.T) {
	r := newRig(t)
	m := r.c.ActiveMaster()

	// Find the disk backing datanode h2's volume and its co-moving group.
	space := r.dns[0].Space()
	var look core.LookupReply
	r.dns[0].cl.Lookup(space, func(rep core.LookupReply, err error) {
		if err != nil {
			t.Errorf("lookup: %v", err)
			return
		}
		look = rep
	})
	r.c.Settle(2 * time.Second)
	srcHost := look.Host

	data := make([]byte, 16*BlockSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	var writeErr error = errors.New("pending")
	writeDone := false
	writeStart := r.c.Sched.Now()
	var writeTook time.Duration
	r.cli.WriteFile("/big", data, func(err error) {
		writeErr = err
		writeDone = true
		writeTook = r.c.Sched.Now() - writeStart
	})

	// Mid-write, command the whole leaf-hub group of the backing disk to
	// another host (a deliberate re-balance, like the paper's experiment).
	r.c.Settle(500 * time.Millisecond)
	var dst string
	for _, h := range r.c.Fabric.Hosts() {
		if h != srcHost {
			dst = h
			break
		}
	}
	var moved []string
	for _, g := range r.c.Fabric.CoMovingGroups() {
		inGroup := false
		for _, d := range g {
			if string(d) == look.DiskID {
				inGroup = true
			}
		}
		if inGroup {
			for _, d := range g {
				moved = append(moved, string(d))
			}
		}
	}
	if len(moved) == 0 {
		t.Fatal("backing disk's group not found")
	}
	cmd := core.ExecuteArgs{Force: true}
	for _, d := range moved {
		cmd.Pairs = append(cmd.Pairs, fabric.DiskHost{Disk: fabric.NodeID(d), Host: dst})
	}
	var execErr error = errors.New("pending")
	m.ExecuteTopology(cmd, func(err error) { execErr = err })

	r.c.Settle(120 * time.Second)
	if execErr != nil {
		t.Fatalf("switch command: %v", execErr)
	}
	if !writeDone || writeErr != nil {
		t.Fatalf("write did not complete: done=%v err=%v", writeDone, writeErr)
	}
	// The stall surfaces either as HDFS-level retries or as transparent
	// UStore remounts on the datanode whose disk moved ("temporary high
	// latency accessing local disks", §IV-D).
	remounts := uint64(0)
	for _, dn := range r.dns {
		remounts += dn.cl.Remounts
	}
	if r.cli.WriteStalls == 0 && remounts == 0 {
		t.Fatal("write never stalled or remounted — the switch had no observable effect")
	}
	if writeTook > 60*time.Second {
		t.Fatalf("write took %v, want seconds of stall at most", writeTook)
	}

	// Read back: correct and uninterrupted (replicas mask the moved disk).
	var got []byte
	var readErr error = errors.New("pending")
	r.cli.ReadFile("/big", func(b []byte, err error) { got, readErr = b, err })
	r.c.Settle(30 * time.Second)
	if readErr != nil {
		t.Fatalf("read: %v", readErr)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted across disk switch")
	}
}

// TestReadsSurviveDataNodeCrash shows replica masking on the read path.
func TestReadsSurviveDataNodeCrash(t *testing.T) {
	r := newRig(t)
	data := make([]byte, 2*BlockSize)
	for i := range data {
		data[i] = byte(i)
	}
	var writeErr error = errors.New("pending")
	r.cli.WriteFile("/f", data, func(err error) { writeErr = err })
	r.c.Settle(60 * time.Second)
	if writeErr != nil {
		t.Fatal(writeErr)
	}
	// Crash the host of the first datanode (h2).
	r.c.CrashHost("h2")
	r.c.Settle(1 * time.Second)
	var got []byte
	var readErr error = errors.New("pending")
	r.cli.ReadFile("/f", func(b []byte, err error) { got, readErr = b, err })
	r.c.Settle(60 * time.Second)
	if readErr != nil {
		t.Fatalf("read with crashed datanode: %v", readErr)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch reading around crashed datanode")
	}
}
