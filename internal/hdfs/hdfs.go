// Package hdfs implements a miniature HDFS-like replicated file service —
// the upper-layer service the paper deploys over UStore in §VII-B to show
// that disk switching looks like a tolerable temporary failure: writes
// stall for a few seconds and resume; reads are not interrupted because
// other replicas serve them.
//
// The design mirrors Hadoop 1.x at block granularity: a NameNode maps files
// to block lists and blocks to replica DataNodes; DataNodes store blocks in
// UStore volumes mounted through the ClientLib; clients write through a
// replication pipeline and read from any live replica.
package hdfs

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"ustore/internal/core"
	"ustore/internal/simnet"
	"ustore/internal/simtime"
)

// BlockSize is the HDFS block size (small for simulation economy; Hadoop
// 1.x used 64MB).
const BlockSize = 4 << 20

// DefaultReplication matches the paper's 3-replica configuration.
const DefaultReplication = 3

// Errors returned by the service.
var (
	// ErrNoSuchFile is returned for reads of unknown files.
	ErrNoSuchFile = errors.New("hdfs: no such file")
	// ErrNotEnoughNodes is returned when fewer DataNodes than the
	// replication factor are alive.
	ErrNotEnoughNodes = errors.New("hdfs: not enough datanodes")
	// ErrAllReplicasFailed is returned when no replica served a block.
	ErrAllReplicasFailed = errors.New("hdfs: all replicas failed")
)

// blockID identifies a block.
type blockID string

// fileEntry is the NameNode's per-file metadata.
type fileEntry struct {
	size   int64
	blocks []blockID
}

// blockEntry records a block's replica locations.
type blockEntry struct {
	locations []string // datanode names, pipeline order
	size      int
}

// --- Wire types ---

type addBlockArgs struct {
	File string
	Size int
}

type addBlockReply struct {
	Block     blockID
	Pipeline  []string
	BlockSeqs []int // per-datanode block slot (assigned on arrival)
}

type locateArgs struct {
	File string
}

type locateReply struct {
	Size   int64
	Blocks []blockID
	// Locations maps block -> replica datanodes.
	Locations map[blockID][]string
	Sizes     map[blockID]int
}

type commitBlockArgs struct {
	File  string
	Block blockID
}

type dnWriteArgs struct {
	Block blockID
	Data  []byte
	// Pipeline carries the remaining downstream datanodes.
	Pipeline []string
}

type dnReadArgs struct {
	Block blockID
}

type dnRegisterArgs struct {
	Name string
}

// NameNode is the metadata server.
type NameNode struct {
	rpc   *simnet.RPCNode
	sched *simtime.Scheduler

	files  map[string]*fileEntry
	blocks map[blockID]*blockEntry
	nodes  []string
	next   uint64
	rr     int
}

// NewNameNode creates the namenode listening as "nn:<name>".
func NewNameNode(net *simnet.Network, name string) *NameNode {
	nn := &NameNode{
		rpc:    simnet.NewRPCNode(net, "nn:"+name),
		sched:  net.Scheduler(),
		files:  make(map[string]*fileEntry),
		blocks: make(map[blockID]*blockEntry),
	}
	nn.rpc.Register("Register", nn.handleRegister)
	nn.rpc.Register("AddBlock", nn.handleAddBlock)
	nn.rpc.Register("CommitBlock", nn.handleCommitBlock)
	nn.rpc.Register("Locate", nn.handleLocate)
	return nn
}

func (nn *NameNode) handleRegister(from string, args any) (any, error) {
	r := args.(dnRegisterArgs)
	for _, n := range nn.nodes {
		if n == r.Name {
			return struct{}{}, nil
		}
	}
	nn.nodes = append(nn.nodes, r.Name)
	sort.Strings(nn.nodes)
	return struct{}{}, nil
}

func (nn *NameNode) handleAddBlock(from string, args any) (any, error) {
	a := args.(addBlockArgs)
	if len(nn.nodes) < DefaultReplication {
		return nil, fmt.Errorf("%w: %d registered", ErrNotEnoughNodes, len(nn.nodes))
	}
	f := nn.files[a.File]
	if f == nil {
		f = &fileEntry{}
		nn.files[a.File] = f
	}
	nn.next++
	b := blockID(fmt.Sprintf("blk_%d", nn.next))
	// Round-robin pipeline placement over registered datanodes.
	pipeline := make([]string, DefaultReplication)
	for i := range pipeline {
		pipeline[i] = nn.nodes[(nn.rr+i)%len(nn.nodes)]
	}
	nn.rr++
	nn.blocks[b] = &blockEntry{locations: pipeline, size: a.Size}
	f.blocks = append(f.blocks, b)
	f.size += int64(a.Size)
	return addBlockReply{Block: b, Pipeline: pipeline}, nil
}

func (nn *NameNode) handleCommitBlock(from string, args any) (any, error) {
	return struct{}{}, nil // placement already durable in this model
}

func (nn *NameNode) handleLocate(from string, args any) (any, error) {
	l := args.(locateArgs)
	f, ok := nn.files[l.File]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchFile, l.File)
	}
	rep := locateReply{
		Size:      f.size,
		Blocks:    append([]blockID(nil), f.blocks...),
		Locations: make(map[blockID][]string),
		Sizes:     make(map[blockID]int),
	}
	for _, b := range f.blocks {
		be := nn.blocks[b]
		rep.Locations[b] = append([]string(nil), be.locations...)
		rep.Sizes[b] = be.size
	}
	return rep, nil
}

// DataNode stores blocks inside a UStore space mounted via the ClientLib.
type DataNode struct {
	name  string
	rpc   *simnet.RPCNode
	sched *simtime.Scheduler
	cl    *core.ClientLib
	nn    string

	space  core.SpaceID
	size   int64
	offset int64
	blocks map[blockID]blockLoc

	ready bool
}

type blockLoc struct {
	off  int64
	size int
}

// NewDataNode creates a datanode named name whose storage is a UStore
// space allocated through cl (the §VII-B deployment: "using disks in
// UStore as storage").
func NewDataNode(net *simnet.Network, name, nameNode string, cl *core.ClientLib) *DataNode {
	dn := &DataNode{
		name:   name,
		rpc:    simnet.NewRPCNode(net, "dn:"+name),
		sched:  net.Scheduler(),
		cl:     cl,
		nn:     "nn:" + nameNode,
		blocks: make(map[blockID]blockLoc),
	}
	dn.initHandlers()
	return dn
}

// Start allocates and mounts the datanode's UStore volume, registers with
// the namenode, and reports readiness.
func (dn *DataNode) Start(volBytes int64, done func(error)) {
	dn.cl.Allocate(volBytes, func(rep core.AllocateReply, err error) {
		if err != nil {
			done(fmt.Errorf("allocating datanode volume: %w", err))
			return
		}
		dn.space = rep.Space
		dn.size = rep.Size
		dn.cl.Mount(rep.Space, func(err error) {
			if err != nil {
				done(fmt.Errorf("mounting datanode volume: %w", err))
				return
			}
			dn.rpc.Call(dn.nn, "Register", dnRegisterArgs{Name: dn.name}, 32, time.Second,
				func(_ any, err error) {
					if err != nil {
						done(err)
						return
					}
					dn.ready = true
					done(nil)
				})
		})
	})
}

// Space returns the datanode's UStore space.
func (dn *DataNode) Space() core.SpaceID { return dn.space }

// Blocks returns how many blocks this datanode stores.
func (dn *DataNode) Blocks() int { return len(dn.blocks) }

// initHandlers wires the block protocol: WriteBlock stores the block
// locally then forwards down the pipeline, replying upstream only after
// downstream acks (chain replication, like the HDFS write pipeline);
// ReadBlock serves a stored block.
func (dn *DataNode) initHandlers() {
	dn.rpc.RegisterAsync("WriteBlock", func(from string, args any, reply func(any, error)) {
		w := args.(dnWriteArgs)
		if !dn.ready {
			reply(nil, fmt.Errorf("hdfs: datanode %s not ready", dn.name))
			return
		}
		loc, dup := dn.blocks[w.Block]
		if !dup {
			if dn.offset+int64(len(w.Data)) > dn.size {
				reply(nil, fmt.Errorf("hdfs: datanode %s volume full", dn.name))
				return
			}
			loc = blockLoc{off: dn.offset, size: len(w.Data)}
		}
		dn.cl.Write(dn.space, loc.off, w.Data, func(err error) {
			if err != nil {
				reply(nil, fmt.Errorf("datanode %s store: %w", dn.name, err))
				return
			}
			if !dup {
				dn.blocks[w.Block] = loc
				dn.offset += int64(len(w.Data))
			}
			if len(w.Pipeline) == 0 {
				reply(struct{}{}, nil)
				return
			}
			next := w.Pipeline[0]
			fw := dnWriteArgs{Block: w.Block, Data: w.Data, Pipeline: w.Pipeline[1:]}
			dn.rpc.Call("dn:"+next, "WriteBlock", fw, len(w.Data), 40*time.Second,
				func(_ any, err error) {
					if err != nil {
						reply(nil, fmt.Errorf("pipeline to %s: %w", next, err))
						return
					}
					reply(struct{}{}, nil)
				})
		})
	})
	dn.rpc.RegisterAsync("ReadBlock", func(from string, args any, reply func(any, error)) {
		r := args.(dnReadArgs)
		loc, ok := dn.blocks[r.Block]
		if !ok {
			reply(nil, fmt.Errorf("hdfs: %s has no %s", dn.name, r.Block))
			return
		}
		dn.cl.Read(dn.space, loc.off, loc.size, func(data []byte, err error) {
			if err != nil {
				reply(nil, err)
				return
			}
			reply(data, nil)
		})
	})
}

// Client writes and reads files against the namenode and datanodes.
type Client struct {
	rpc   *simnet.RPCNode
	sched *simtime.Scheduler
	nn    string

	// WriteStalls counts write attempts that had to retry (the §VII-B
	// observation: "the HDFS client encounters error only for several
	// seconds, then it resumes").
	WriteStalls uint64
	// StallTime accumulates total time spent retrying.
	StallTime time.Duration
}

// NewClient creates an HDFS client named name.
func NewClient(net *simnet.Network, name, nameNode string) *Client {
	return &Client{
		rpc:   simnet.NewRPCNode(net, "hdfs:"+name),
		sched: net.Scheduler(),
		nn:    "nn:" + nameNode,
	}
}

// writeRetryBudget bounds per-block retries.
const writeRetryBudget = 60 * time.Second

// WriteFile stores data as name, block by block through the replication
// pipeline, retrying stalled blocks until the budget expires.
func (c *Client) WriteFile(name string, data []byte, done func(error)) {
	var writeBlock func(off int)
	writeBlock = func(off int) {
		if off >= len(data) {
			done(nil)
			return
		}
		end := off + BlockSize
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		deadline := c.sched.Now() + writeRetryBudget
		var attempt func()
		attempt = func() {
			c.rpc.Call(c.nn, "AddBlock", addBlockArgs{File: name, Size: len(chunk)}, 64, 2*time.Second,
				func(res any, err error) {
					if err != nil {
						c.retryOrFail(deadline, attempt, done, err)
						return
					}
					rep := res.(addBlockReply)
					first := rep.Pipeline[0]
					args := dnWriteArgs{Block: rep.Block, Data: chunk, Pipeline: rep.Pipeline[1:]}
					c.rpc.Call("dn:"+first, "WriteBlock", args, len(chunk), 40*time.Second,
						func(_ any, err error) {
							if err != nil {
								c.retryOrFail(deadline, attempt, done, err)
								return
							}
							c.rpc.Call(c.nn, "CommitBlock", commitBlockArgs{File: name, Block: rep.Block},
								32, 2*time.Second, func(any, error) {})
							writeBlock(end)
						})
				})
		}
		attempt()
	}
	writeBlock(0)
}

func (c *Client) retryOrFail(deadline simtime.Time, attempt func(), done func(error), err error) {
	if c.sched.Now() >= deadline {
		done(fmt.Errorf("hdfs: write stalled past budget: %w", err))
		return
	}
	c.WriteStalls++
	const backoff = 1 * time.Second
	c.StallTime += backoff
	c.sched.After(backoff, attempt)
}

// ReadFile fetches name, trying each replica of each block in order.
func (c *Client) ReadFile(name string, done func([]byte, error)) {
	c.rpc.Call(c.nn, "Locate", locateArgs{File: name}, 64, 2*time.Second, func(res any, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		rep := res.(locateReply)
		out := make([]byte, 0, rep.Size)
		var fetch func(i int)
		fetch = func(i int) {
			if i >= len(rep.Blocks) {
				done(out, nil)
				return
			}
			b := rep.Blocks[i]
			locs := rep.Locations[b]
			var tryReplica func(j int, lastErr error)
			tryReplica = func(j int, lastErr error) {
				if j >= len(locs) {
					done(nil, fmt.Errorf("%w: %s (%v)", ErrAllReplicasFailed, b, lastErr))
					return
				}
				c.rpc.Call("dn:"+locs[j], "ReadBlock", dnReadArgs{Block: b}, 64, 5*time.Second,
					func(res any, err error) {
						if err != nil {
							tryReplica(j+1, err)
							return
						}
						out = append(out, res.([]byte)...)
						fetch(i + 1)
					})
			}
			tryReplica(0, nil)
		}
		fetch(0)
	})
}
