// Package prof wires the standard runtime/pprof file profiles into the
// repository's commands, so `-cpuprofile` / `-memprofile` behave like `go
// test`'s flags of the same names.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a stop
// function that ends the CPU profile and writes a heap profile to memPath
// (when non-empty). The stop function must run before the process exits —
// call it via defer from a helper that returns an exit code rather than
// calling os.Exit directly. Both paths empty yields a no-op stop.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // report live allocations, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
