package core

import (
	"fmt"
	"testing"
)

// Coverage for the multi-unit helpers themselves: Rig/RigOfHost accessors,
// fabric-config namespacing, and the derived Master inventory. The
// end-to-end multi-unit behaviors live in multiunit_test.go.

func TestRigAccessorAliasesUnitRigs(t *testing.T) {
	c := bootMulti(t, 3)
	if len(c.UnitRigs) != 3 {
		t.Fatalf("rigs = %d, want 3", len(c.UnitRigs))
	}
	for i, rig := range c.UnitRigs {
		if c.Rig(i) != rig {
			t.Fatalf("Rig(%d) is not UnitRigs[%d]", i, i)
		}
	}
	// Rig 0 is the primary unit the legacy accessors alias.
	if c.Rig(0).Fabric != c.Fabric {
		t.Fatal("Rig(0).Fabric is not the cluster's legacy Fabric alias")
	}
}

func TestRigOfHostUnknown(t *testing.T) {
	c := bootMulti(t, 2)
	for _, host := range []string{"", "nope", "u2.h1", "h99", "u1.h99"} {
		if rig := c.RigOfHost(host); rig != nil {
			t.Fatalf("RigOfHost(%q) = %s, want nil", host, rig.ID)
		}
	}
}

func TestRigOfHostResolvesEveryHostToItsOwnRig(t *testing.T) {
	c := bootMulti(t, 3)
	seen := map[string]bool{}
	for _, rig := range c.UnitRigs {
		for _, h := range rig.Fabric.Hosts() {
			if seen[h] {
				t.Fatalf("host %s appears in two rigs", h)
			}
			seen[h] = true
			if got := c.RigOfHost(h); got != rig {
				t.Fatalf("RigOfHost(%s) = %v, want rig %s", h, got, rig.ID)
			}
		}
	}
}

func TestUnitFabricConfigNamespacing(t *testing.T) {
	cfg := DefaultConfig()

	// Unit 0 keeps the plain names and the configured unit ID.
	id0, f0 := unitFabricConfig(cfg, 0)
	if id0 != cfg.UnitID {
		t.Fatalf("unit 0 ID = %q, want %q", id0, cfg.UnitID)
	}
	if f0.Prefix != "" {
		t.Fatalf("unit 0 prefix = %q, want empty", f0.Prefix)
	}
	for i, h := range f0.Hosts {
		if h != cfg.Fabric.Hosts[i] {
			t.Fatalf("unit 0 host %d = %q, want %q", i, h, cfg.Fabric.Hosts[i])
		}
	}

	// Later units get the "u<j>." namespace on prefix and every host, and
	// a derived unit ID.
	for _, j := range []int{1, 2, 7} {
		id, f := unitFabricConfig(cfg, j)
		wantPrefix := fmt.Sprintf("u%d.", j)
		if f.Prefix != wantPrefix {
			t.Fatalf("unit %d prefix = %q, want %q", j, f.Prefix, wantPrefix)
		}
		if want := fmt.Sprintf("unit%d", j); id != want {
			t.Fatalf("unit %d ID = %q, want %q", j, id, want)
		}
		if len(f.Hosts) != len(cfg.Fabric.Hosts) {
			t.Fatalf("unit %d host count = %d, want %d", j, len(f.Hosts), len(cfg.Fabric.Hosts))
		}
		for i, h := range f.Hosts {
			if want := wantPrefix + cfg.Fabric.Hosts[i]; h != want {
				t.Fatalf("unit %d host %d = %q, want %q", j, i, h, want)
			}
		}
	}

	// The derivation must not alias the caller's config: namespacing unit 1
	// leaves cfg.Fabric.Hosts untouched.
	_, f1 := unitFabricConfig(cfg, 1)
	f1.Hosts[0] = "mutated"
	if cfg.Fabric.Hosts[0] == "mutated" {
		t.Fatal("unitFabricConfig aliased the caller's host slice")
	}
}

func TestUnitInfosInventory(t *testing.T) {
	c := bootMulti(t, 2)
	infos := unitInfos(c.UnitRigs)
	if len(infos) != 2 {
		t.Fatalf("infos = %d, want 2", len(infos))
	}
	for i, info := range infos {
		rig := c.UnitRigs[i]
		if info.ID != rig.ID {
			t.Fatalf("info %d ID = %q, want %q", i, info.ID, rig.ID)
		}
		hosts := rig.Fabric.Hosts()
		if len(info.Hosts) != len(hosts) {
			t.Fatalf("info %d has %d hosts, want %d", i, len(info.Hosts), len(hosts))
		}
		// The unit's controllers run on its first two hosts.
		if len(info.Controllers) != 2 {
			t.Fatalf("info %d has %d controllers, want 2", i, len(info.Controllers))
		}
		for j, ctrl := range info.Controllers {
			if want := controllerNode(hosts[j]); ctrl != want {
				t.Fatalf("info %d controller %d = %q, want %q", i, j, ctrl, want)
			}
		}
	}
}

func TestAllGroupsCoversEveryRig(t *testing.T) {
	c := bootMulti(t, 2)
	groups := allGroups(c.UnitRigs)
	perRig := 0
	for _, rig := range c.UnitRigs {
		perRig += len(rig.Fabric.CoMovingGroups())
	}
	if len(groups) != perRig || len(groups) == 0 {
		t.Fatalf("allGroups = %d groups, want %d (> 0)", len(groups), perRig)
	}
	// Every disk named in a group must exist, and carry its unit's
	// namespace exactly when it is not unit 0's.
	for _, g := range groups {
		if len(g) == 0 {
			t.Fatal("empty co-moving group")
		}
		for _, d := range g {
			if c.Disks[d] == nil {
				t.Fatalf("group disk %s not in cluster disk map", d)
			}
		}
	}
}
