// Package core implements UStore's software architecture (§IV): the
// replicated Master (SysConf/SysStat/StorAlloc, failure detection, failover
// scheduling), the per-unit Controller pair (Algorithm 1 execution over the
// control plane, verification, rollback), the per-host EndPoint (heartbeats,
// USB monitoring, block-target export), the ClientLib (allocation, mounting,
// transparent remount after failover), and the power manager (adaptive
// spin-down, cascading fabric power-off).
package core

import (
	"time"

	"ustore/internal/disk"
	"ustore/internal/fabric"
	"ustore/internal/model"
	"ustore/internal/obs"
	"ustore/internal/paxos"
)

// SpaceID uniquely identifies allocated storage in the global namespace
// </DeployUnitID/DiskID/SpaceID> (§IV-A).
type SpaceID string

// DiskState mirrors SysStat's view of a disk.
type DiskState string

// SysStat disk states (§IV-A: online, spun down, or powered off).
const (
	DiskOnline     DiskState = "online"
	DiskSpunDown   DiskState = "spun-down"
	DiskPoweredOff DiskState = "powered-off"
	DiskMissing    DiskState = "missing" // not visible on any host
)

// Timing defaults for the control loop; Config overrides them.
const (
	DefaultHeartbeatInterval = 500 * time.Millisecond
	DefaultHostDeadAfter     = 3 // missed heartbeats before a host is dead
	DefaultVerifyTimeout     = 10 * time.Second
	DefaultRPCTimeout        = 1 * time.Second
)

// Config parameterizes a cluster build.
type Config struct {
	// UnitID names the deploy unit (the prototype has one).
	UnitID string
	// Fabric is the unit's topology config.
	Fabric fabric.Config
	// FullTrees selects the Figure 2 (left) per-disk-switch topology
	// instead of the default switch-high design.
	FullTrees bool
	// MasterReplicas is the size of the Master/coord quorum (paper: ~5;
	// tests use 3).
	MasterReplicas int
	// DiskParams calibrates the unit's disks.
	DiskParams disk.Params
	// HeartbeatInterval is the EndPoint heartbeat period.
	HeartbeatInterval time.Duration
	// HostDeadAfter is how many missed heartbeats declare a host dead.
	HostDeadAfter int
	// VerifyTimeout bounds the Controller's post-turn verification before
	// rollback (the paper uses 30s; the simulation default is 10s).
	VerifyTimeout time.Duration
	// SpinDownIdle is the power manager's initial idle threshold
	// (0 disables automatic spin-down).
	SpinDownIdle time.Duration
	// BootSpinUpConcurrency caps how many disks spin up simultaneously at
	// power-on (§III-B rolling spin-up). 0 spins everything at once.
	BootSpinUpConcurrency int
	// Units is the number of deploy units (default 1). With N > 1, unit j
	// gets its own fabric, control plane, Controllers, and hosts named
	// "u<j>."+<host> (unit 0 keeps the plain names); one Master quorum
	// manages all of them (§IV: "one Master and a number of deploy
	// units").
	Units int
	// HostDeviceLimit caps how many USB devices (hubs included) each
	// host's controller enumerates; 0 means the full 127-device USB
	// limit. Set to usb.IntelRootHubDeviceLimit (14) to reproduce the
	// prototype's §V-B driver quirk.
	HostDeviceLimit int
	// RPCTimeout bounds control-plane RPCs (0 = DefaultRPCTimeout).
	RPCTimeout time.Duration
	// ElectionTTL is the master-election session TTL (0 = 2s). Long
	// simulated horizons raise it so session keep-alives don't dominate
	// the event budget.
	ElectionTTL time.Duration
	// Paxos overrides the coord quorum's consensus timing; a zero value
	// uses paxos.DefaultConfig(). Chaos soaks stretch these to keep a
	// 100-day run's event count simulable.
	Paxos paxos.Config
	// CoordSweepInterval is the coord leader's session-expiry scan period
	// (0 = the store's 250ms default). Must stay well under ElectionTTL.
	CoordSweepInterval time.Duration
	// DisableChecksums turns off the per-block CRC volume wrapper on
	// exports, re-exposing silent media corruption to clients (used by the
	// chaos harness to prove its invariant checker catches real loss).
	DisableChecksums bool
	// ScrubInterval enables the EndPoint background scrubber: every
	// interval each endpoint verifies one block of one exported space
	// during disk idle windows, repairing via the configured repair hook.
	// 0 disables scrubbing.
	ScrubInterval time.Duration
	// Seed drives the deterministic simulation.
	Seed int64
	// Recorder, when non-nil, collects metrics and trace events from every
	// component of the cluster (see internal/obs). Each run should use its
	// own Recorder so concurrent tests don't collide; nil disables all
	// instrumentation.
	Recorder *obs.Recorder
	// History, when non-nil, records every metadata operation — client
	// allocate/release/lookup/mount/remount plus endpoint export/revoke,
	// disk attach/detach, and power commands — stamped with simulated time,
	// for the internal/model linearizability checker. Like Recorder, use a
	// fresh History per run; nil disables recording.
	History *model.History
	// InjectStaleLease deliberately breaks the failover protocol for
	// checker self-tests: endpoints skip revoking exports when a disk
	// detaches, so after a failover the old host keeps serving a stale
	// lease alongside the new one (the classic stale-lease double-mount).
	// Data stays intact — only the metadata history becomes illegal — which
	// is exactly what the model checker, and nothing else, must catch.
	// Never set outside tests.
	InjectStaleLease bool
	// HealthQuarantine enables the Master's gray-disk detector: per-disk
	// health shipped in heartbeats is compared against the cohort, and
	// disks whose tail latency diverges (fail-slow, not fail-stop) are
	// quarantined — excluded from new allocations and flagged for
	// proactive migration — until they recover.
	HealthQuarantine bool
	// QuarantineTailFactor is how far above the cohort median a disk's
	// tail-latency EWMA must sit to count as gray (0 = 3x).
	QuarantineTailFactor float64
	// QuarantineSuspectBeats is how many consecutive gray-scoring
	// heartbeats promote Suspect to Quarantined (0 = 3).
	QuarantineSuspectBeats int
	// QuarantineProbationBeats is how many consecutive clean heartbeats a
	// quarantined disk must show before release (0 = 6).
	QuarantineProbationBeats int
	// InjectQuarantineBlind deliberately breaks quarantine enforcement for
	// checker self-tests: the allocator ignores quarantine state, so
	// allocations land on known-gray disks. ValidateQuarantine (and the
	// chaos harness invariant built on it) must catch this, proving the
	// quarantine invariant checker is not vacuous. Never set outside tests.
	InjectQuarantineBlind bool

	// Protection, when non-nil, arms the overload-protection stack: the
	// Master's per-caller metadata-RPC throttle (MasterRate > 0) and the
	// parameters NewProtector wires over the cluster's disks (admission
	// control, per-tenant rate limits, per-disk breakers, autoscaling —
	// see protection.go). nil keeps every default run byte-identical.
	Protection *ProtectionConfig
}

// RPCTimeoutOrDefault returns the configured RPC timeout.
func (c Config) RPCTimeoutOrDefault() time.Duration {
	if c.RPCTimeout > 0 {
		return c.RPCTimeout
	}
	return DefaultRPCTimeout
}

// ElectionTTLOrDefault returns the configured master-election TTL.
func (c Config) ElectionTTLOrDefault() time.Duration {
	if c.ElectionTTL > 0 {
		return c.ElectionTTL
	}
	return 2 * time.Second
}

// QuarantineTailFactorOrDefault returns the gray-scoring tail divergence
// threshold.
func (c Config) QuarantineTailFactorOrDefault() float64 {
	if c.QuarantineTailFactor > 0 {
		return c.QuarantineTailFactor
	}
	return 3
}

// QuarantineSuspectBeatsOrDefault returns the Suspect->Quarantined streak.
func (c Config) QuarantineSuspectBeatsOrDefault() int {
	if c.QuarantineSuspectBeats > 0 {
		return c.QuarantineSuspectBeats
	}
	return 3
}

// QuarantineProbationBeatsOrDefault returns the release streak.
func (c Config) QuarantineProbationBeatsOrDefault() int {
	if c.QuarantineProbationBeats > 0 {
		return c.QuarantineProbationBeats
	}
	return 6
}

// PaxosOrDefault returns the consensus timing (DefaultConfig if unset).
func (c Config) PaxosOrDefault() paxos.Config {
	if c.Paxos == (paxos.Config{}) {
		return paxos.DefaultConfig()
	}
	return c.Paxos
}

// DefaultConfig returns the paper's prototype shape: one unit, 16 disks,
// 4 hosts, 4-port hubs, 3 master replicas.
func DefaultConfig() Config {
	return Config{
		UnitID: "unit0",
		Fabric: fabric.Config{
			Hosts: []string{"h1", "h2", "h3", "h4"},
			Disks: 16,
			FanIn: 4,
		},
		MasterReplicas:    3,
		DiskParams:        disk.DT01ACA300(),
		HeartbeatInterval: DefaultHeartbeatInterval,
		HostDeadAfter:     DefaultHostDeadAfter,
		VerifyTimeout:     DefaultVerifyTimeout,
		Seed:              1,
	}
}

// --- Wire types (simnet RPC payloads) ---

// DiskInfo is one disk's row in a heartbeat. Health carries the EndPoint's
// SMART-style per-disk counters (latency EWMAs, error counts) so the Master
// can do cohort comparison without extra RPCs (§IV-B: "healthiness ...
// information of both the hosts and the disks").
type DiskInfo struct {
	ID     string
	State  DiskState
	Health disk.HealthStats
}

// HeartbeatArgs is the EndPoint's periodic report to the Master (§IV-B:
// "healthiness and workload information of both the hosts and the disks").
type HeartbeatArgs struct {
	Host  string
	Seq   uint64
	Disks []DiskInfo
}

// HeartbeatReply tells the EndPoint whether it reached the active master.
type HeartbeatReply struct {
	Active bool
	// ActiveHint names the believed active master when Active is false.
	ActiveHint string
}

// AllocateArgs asks the Master for storage space (§IV-A allocation rules:
// same-service disk affinity, then client locality).
type AllocateArgs struct {
	Service string
	Size    int64
	// ClientHost hints locality (the host nearest the client).
	ClientHost string
}

// AllocateReply returns the allocated space and where to mount it.
type AllocateReply struct {
	Space  SpaceID
	DiskID string
	Host   string
	Offset int64
	Size   int64
}

// ReleaseArgs frees an allocation.
type ReleaseArgs struct {
	Space SpaceID
}

// LookupArgs resolves a space to its current host (the ClientLib's
// directory service, §IV-D).
type LookupArgs struct {
	Space SpaceID
}

// LookupReply carries the space's current location and disk state.
type LookupReply struct {
	Host   string
	DiskID string
	Offset int64
	Size   int64
	State  DiskState
}

// DiskPowerArgs lets a service spin its own disks up or down (§IV-F).
type DiskPowerArgs struct {
	Service string
	DiskID  string
	// Up spins up when true, down when false.
	Up bool
}

// ExportArgs tells an EndPoint to expose a space as a block target.
type ExportArgs struct {
	Space  SpaceID
	DiskID string
	Offset int64
	Size   int64
}

// UnexportArgs revokes an export.
type UnexportArgs struct {
	Space SpaceID
}

// ExecuteArgs is the Master->Controller topology command ("connect disk A
// to host H1 and disk C to host H2", §IV-C).
type ExecuteArgs struct {
	Pairs []fabric.DiskHost
	// Force applies the command even if it disturbs unlisted disks (the
	// Master chose to "ignore the conflicts").
	Force bool
}

// ExecuteReply reports the outcome.
type ExecuteReply struct {
	// Turned lists the switches that were flipped.
	Turned int
	// Disturbed lists disks outside the command that moved (Force only).
	Disturbed []string
}

// USBReportArgs is the EndPoint USB Monitor's tree snapshot for the
// Controller (§IV-B: "lsusb -t").
type USBReportArgs struct {
	Host string
	// Storage lists enumerated storage device IDs.
	Storage []string
	// Hubs lists enumerated hub IDs.
	Hubs []string
	Seq  uint64
}

// NodePowerArgs is the Master->Controller relay command for a disk or hub
// supply (cascading fabric power-off, §IV-F).
type NodePowerArgs struct {
	Node string
	On   bool
}
