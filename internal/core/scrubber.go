package core

import (
	"errors"

	"ustore/internal/block"
	"ustore/internal/disk"
	"ustore/internal/obs"
	"ustore/internal/simtime"

	"time"
)

// RepairFunc fetches a known-good copy of a corrupted range so the scrubber
// can rewrite it — from a replica, EC parity reconstruction, or a service
// backup. done(data, true) supplies the bytes; done(nil, false) reports that
// no good copy exists (the block is counted as unrepairable).
type RepairFunc func(ex ExportArgs, off int64, length int, done func(data []byte, ok bool))

// ScrubStats summarizes a scrubber's work.
type ScrubStats struct {
	// Scanned counts verify-reads issued.
	Scanned int
	// Skipped counts ticks that found no eligible disk (spun down, busy,
	// powered off, or nothing exported) — scrubbing never wakes hardware.
	Skipped int
	// BadBlocks counts checksum mismatches detected.
	BadBlocks int
	// Repaired counts bad blocks rewritten from a good copy and re-verified.
	Repaired int
	// Unrepaired counts bad blocks with no good copy available.
	Unrepaired int
}

// Scrubber is the EndPoint's background media scrubber: every interval it
// verify-reads one checksum block of one exported space, advancing a cursor
// so the whole exported surface is eventually swept. It only touches disks
// that are attached, spinning, and idle with an empty queue, cooperating
// with the power manager instead of defeating it (a scrub IO on a spun-down
// disk would charge a full spin-up). Latent sector errors surface as
// block.ErrChecksum from the checksum volume; the scrubber then asks the
// repair hook for a good copy and rewrites the block in place.
type Scrubber struct {
	ep       *EndPoint
	interval time.Duration
	repair   RepairFunc

	// cursor: index into the sorted export list, and byte offset within
	// that space, advanced one checksum block per tick.
	spaceIdx int
	offset   int64

	stats   ScrubStats
	stopped bool
	tick    *simtime.Event
	// inFlight guards against overlapping sweeps when a verify-read plus
	// repair round-trip outlasts the tick interval.
	inFlight bool

	// Pre-resolved progress counters (nil-safe), resolved once at
	// construction instead of per scrub event.
	cScanned    *obs.Counter
	cBad        *obs.Counter
	cRepairs    *obs.Counter
	cUnrepaired *obs.Counter
}

// NewScrubber starts a scrubber on ep ticking every interval.
func NewScrubber(ep *EndPoint, interval time.Duration) *Scrubber {
	rec := ep.cfg.Recorder
	sc := &Scrubber{
		ep:          ep,
		interval:    interval,
		cScanned:    rec.Counter("core", "scrub_scanned_total"),
		cBad:        rec.Counter("core", "scrub_bad_blocks_total"),
		cRepairs:    rec.Counter("core", "scrub_repairs_total"),
		cUnrepaired: rec.Counter("core", "scrub_unrepaired_total"),
	}
	sc.arm()
	return sc
}

// SetRepairFunc installs the good-copy source used to fix bad blocks. With
// no repair func, detected corruption is only counted (Unrepaired).
func (sc *Scrubber) SetRepairFunc(fn RepairFunc) { sc.repair = fn }

// Stats returns a snapshot of the scrubber's counters.
func (sc *Scrubber) Stats() ScrubStats { return sc.stats }

// Stop halts scrubbing permanently.
func (sc *Scrubber) Stop() {
	sc.stopped = true
	if sc.tick != nil {
		sc.tick.Cancel()
		sc.tick = nil
	}
}

func (sc *Scrubber) arm() {
	if sc.stopped {
		return
	}
	sc.tick = sc.ep.sched.After(sc.interval, func() {
		sc.step()
		sc.arm()
	})
}

// step performs one scrub tick: pick the cursor's space, and if its backing
// disk is eligible, verify-read one block.
func (sc *Scrubber) step() {
	if sc.inFlight || sc.ep.down {
		sc.stats.Skipped++
		return
	}
	spaces := sc.ep.exportedSpaces()
	if len(spaces) == 0 {
		sc.stats.Skipped++
		return
	}
	if sc.spaceIdx >= len(spaces) {
		sc.spaceIdx = 0
		sc.offset = 0
	}
	sp := spaces[sc.spaceIdx]
	ex := sc.ep.exports[sp]
	vol := sc.ep.volumes[sp]
	d := sc.ep.disks[ex.DiskID]
	if vol == nil || d == nil || !sc.ep.attached[ex.DiskID] ||
		d.State() != disk.StateIdle || d.QueueDepth() > 0 {
		// Not eligible right now (busy, spun down, or detached). Skip the
		// tick rather than wake or delay foreground IO; the cursor stays
		// put so the block isn't silently passed over.
		sc.stats.Skipped++
		return
	}

	off := sc.offset
	length := block.ChecksumBlockSize
	if rem := vol.Size() - off; int64(length) > rem {
		length = int(rem)
	}
	sc.advance(vol.Size())

	sc.inFlight = true
	sc.stats.Scanned++
	sc.cScanned.Inc()
	rec := sc.ep.cfg.Recorder
	vol.ReadAt(off, length, func(_ []byte, err error) {
		if err == nil || !errors.Is(err, block.ErrChecksum) {
			// Clean block, or a non-checksum error (disk died mid-read);
			// either way there is nothing to repair.
			sc.inFlight = false
			return
		}
		sc.stats.BadBlocks++
		sc.cBad.Inc()
		rec.Instant("core", "scrub-corruption", sc.ep.host,
			obs.L("space", string(sp)), obs.L("disk", ex.DiskID))
		if sc.repair == nil {
			sc.stats.Unrepaired++
			sc.cUnrepaired.Inc()
			sc.inFlight = false
			return
		}
		span := rec.Begin("core", "scrub-repair", sc.ep.host, obs.L("space", string(sp)))
		sc.repair(ex, off, length, func(data []byte, ok bool) {
			if !ok || len(data) != length || sc.ep.down {
				sc.stats.Unrepaired++
				sc.cUnrepaired.Inc()
				span.End(obs.L("status", "no-good-copy"))
				sc.inFlight = false
				return
			}
			vol.WriteAt(off, data, func(werr error) {
				if werr != nil {
					sc.stats.Unrepaired++
					sc.cUnrepaired.Inc()
					span.End(obs.L("status", "write-failed"))
					sc.inFlight = false
					return
				}
				// Re-read to prove the rewrite really cleared the error
				// (the write path recomputed the block CRC).
				vol.ReadAt(off, length, func(_ []byte, rerr error) {
					if rerr == nil {
						sc.stats.Repaired++
						sc.cRepairs.Inc()
						span.End(obs.L("status", "ok"))
					} else {
						sc.stats.Unrepaired++
						sc.cUnrepaired.Inc()
						span.End(obs.L("status", "verify-failed"))
					}
					sc.inFlight = false
				})
			})
		})
	})
}

// advance moves the cursor one block forward within the current space, or on
// to the next space when the end is reached.
func (sc *Scrubber) advance(size int64) {
	sc.offset += int64(block.ChecksumBlockSize)
	if sc.offset >= size {
		sc.offset = 0
		sc.spaceIdx++
	}
}
