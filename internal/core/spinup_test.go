package core

import (
	"testing"
	"time"

	"ustore/internal/disk"
	"ustore/internal/power"
	"ustore/internal/simtime"
)

// spinUpRig builds 16 bare disks with a power meter.
func spinUpRig(t *testing.T) (*simtime.Scheduler, map[string]*disk.Disk, *power.Meter) {
	t.Helper()
	s := simtime.NewScheduler(1)
	meter := power.NewMeter(func() time.Duration { return s.Now() })
	disks := make(map[string]*disk.Disk)
	for i := 0; i < 16; i++ {
		id := string(rune('a' + i))
		d := disk.New(s, id, disk.DT01ACA300(), disk.AttachFabric)
		disks[id] = d
		meter.TrackDisk(id, d)
	}
	return s, disks, meter
}

// peakDuring runs the scheduler to completion, sampling the meter at every
// event boundary, and returns the peak draw plus the completion time.
func peakDuring(s *simtime.Scheduler, meter *power.Meter) (peak float64, end simtime.Time) {
	for {
		if w := meter.Watts(); w > peak {
			peak = w
		}
		if !s.Step() {
			break
		}
	}
	return peak, s.Now()
}

func TestSimultaneousSpinUpSurges(t *testing.T) {
	s, disks, meter := spinUpRig(t)
	done := false
	RollingSpinUp(s, disks, 0, func() { done = true })
	peak, end := peakDuring(s, meter)
	if !done {
		t.Fatal("completion callback never fired")
	}
	// 16 disks x 24W surge (plus bridges) all at once.
	if peak < 16*24 {
		t.Fatalf("peak = %.1fW, want >= %.1fW for simultaneous surge", peak, 16*24.0)
	}
	if end != disks["a"].Params().SpinUpTime {
		t.Fatalf("all-at-once boot took %v, want one spin-up time", end)
	}
}

func TestRollingSpinUpCapsSurge(t *testing.T) {
	s, disks, meter := spinUpRig(t)
	done := false
	RollingSpinUp(s, disks, 4, func() { done = true })
	peak, end := peakDuring(s, meter)
	if !done {
		t.Fatal("completion callback never fired")
	}
	// At most 4 disks surging (24W motor + 0.9W bridge) plus 12 disks
	// idle (5.76W each with bridge).
	cap := 4*24.9 + 12*(5.76) + 1
	if peak > cap {
		t.Fatalf("peak = %.1fW, want <= %.1fW with rolling spin-up", peak, cap)
	}
	// 16 disks in waves of 4 -> 4 spin-up times.
	want := 4 * disks["a"].Params().SpinUpTime
	if end != want {
		t.Fatalf("rolling boot took %v, want %v", end, want)
	}
	for _, d := range disks {
		if d.State() != disk.StateIdle {
			t.Fatalf("disk %s state %v after boot", d.ID(), d.State())
		}
	}
}

func TestRollingSpinUpEmpty(t *testing.T) {
	s := simtime.NewScheduler(1)
	done := false
	RollingSpinUp(s, nil, 4, func() { done = true })
	s.Run()
	if !done {
		t.Fatal("empty spin-up never completed")
	}
}

func TestClusterBootWithRollingSpinUp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BootSpinUpConcurrency = 4
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 waves x 7s > default boot settle; give it enough.
	c.Settle(35 * time.Second)
	if c.ActiveMaster() == nil {
		t.Fatal("no active master")
	}
	for id, d := range c.Disks {
		if d.State() != disk.StateIdle {
			t.Fatalf("disk %s = %v after rolling boot", id, d.State())
		}
	}
}
