package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"ustore/internal/coord"
	"ustore/internal/fabric"
	"ustore/internal/obs"
	"ustore/internal/placement"
	"ustore/internal/policy"
	"ustore/internal/simnet"
	"ustore/internal/simtime"
)

// Errors returned by the Master API.
var (
	// ErrNotActive is returned by a standby master replica.
	ErrNotActive = errors.New("core: not the active master")
	// ErrNoSpace is returned when no disk can satisfy an allocation.
	ErrNoSpace = errors.New("core: no space available")
	// ErrUnknownSpace is returned for lookups of unallocated spaces.
	ErrUnknownSpace = errors.New("core: unknown space")
	// ErrNotOwner is returned when a service manipulates another
	// service's disk.
	ErrNotOwner = errors.New("core: disk not owned by service")
	// ErrThrottled is returned when a caller exceeds the Master's
	// per-caller metadata-RPC rate (Config.Protection). Clients must not
	// retry a throttled request against other replicas — see
	// ClientLib.callMaster's short-circuit.
	ErrThrottled = errors.New("core: request throttled")
)

// allocRecord is the persistent StorAlloc entry, JSON-encoded into coord.
type allocRecord struct {
	Space   SpaceID `json:"space"`
	Service string  `json:"service"`
	DiskID  string  `json:"disk"`
	Offset  int64   `json:"offset"`
	Size    int64   `json:"size"`
}

// hostStat is SysStat's per-host record (in-memory only, §IV-A).
type hostStat struct {
	lastSeen  simtime.Time
	lastSeq   uint64
	online    bool
	diskState map[string]DiskState
}

// Master is one replica of the UStore Master. It is co-deployed with a
// coord.Store replica (§V-B); the replica winning the coord election is the
// active master, the rest are standbys that redirect.
type Master struct {
	name  string
	cfg   Config
	sched *simtime.Scheduler
	rpc   *simnet.RPCNode
	store *coord.Store
	elect *coord.Election

	// SysStat (in-memory; rebuilt from heartbeats after failover).
	hosts map[string]*hostStat
	// diskHost is the current disk->host attachment per heartbeats.
	diskHost map[string]string

	// StorAlloc cache (authoritative copy lives in coord znodes).
	allocs map[SpaceID]*allocRecord
	// diskAllocs indexes allocations and owning service per disk.
	diskAllocs map[string][]*allocRecord
	diskOwner  map[string]string
	nextSpace  uint64

	// Failover bookkeeping.
	failingOver map[string]bool // hosts currently being failed over
	// units is SysConf's deploy-unit inventory: each unit has its own
	// controller pair and host set; disks never move across units.
	units    []UnitInfo
	hostUnit map[string]int // host -> index into units
	// diskGroup maps a disk to its co-moving group (SysConf topology
	// knowledge; disks in one group must target the same host).
	diskGroup map[string]int

	// exported tracks which spaces each host was told to export.
	exported map[SpaceID]string

	// health is the gray-failure detector's state (see health.go).
	health *healthTracker

	// limiters are the per-caller metadata-RPC token buckets, armed by
	// Config.Protection (nil map = throttling off). Heartbeats are never
	// throttled — starving failure detection to shed load would turn an
	// overload into a false host death.
	limiters    map[string]*policy.TokenBucket
	limiterPool *policy.BucketPool
	cThrottled  *obs.Counter

	// OnHostDead fires when failure detection declares a host dead.
	OnHostDead func(host string)
	// OnFailoverDone fires when a dead host's disks are re-homed and
	// re-exported.
	OnFailoverDone func(host string, took time.Duration)
	// OnDiskQuarantined fires when the gray-failure detector quarantines a
	// disk (host is its current attachment, "" if unknown). The harness
	// uses it to start proactive migration off the gray disk.
	OnDiskQuarantined func(diskID, host string)
	// OnDiskReleased fires when a quarantined disk completes probation.
	OnDiskReleased func(diskID string)
}

// masterNode returns the RPC node name of a master replica.
func masterNode(name string) string { return "master:" + name }

// UnitInfo is SysConf's record of one deploy unit: its hosts and the two
// controllers that can reconfigure its fabric (§IV-A: "the mappings from
// hosts to deploy units and from disks to deploy units").
type UnitInfo struct {
	ID          string
	Hosts       []string
	Controllers []string // RPC node names, primary first
}

// NewMaster creates replica name, co-located with store.
func NewMaster(net *simnet.Network, name string, store *coord.Store, cfg Config, controllers []string) *Master {
	m := &Master{
		name:        name,
		cfg:         cfg,
		sched:       net.Scheduler(),
		rpc:         simnet.NewRPCNode(net, masterNode(name)),
		store:       store,
		hosts:       make(map[string]*hostStat),
		diskHost:    make(map[string]string),
		allocs:      make(map[SpaceID]*allocRecord),
		diskAllocs:  make(map[string][]*allocRecord),
		diskOwner:   make(map[string]string),
		failingOver: make(map[string]bool),
		diskGroup:   make(map[string]int),
		exported:    make(map[SpaceID]string),
		health:      newHealthTracker(cfg.Recorder),
	}
	if cfg.Protection != nil && cfg.Protection.MasterRate > 0 {
		m.limiters = make(map[string]*policy.TokenBucket)
		m.limiterPool = policy.NewBucketPool(cfg.Protection.MasterRate, cfg.Protection.MasterBurst)
		m.cThrottled = cfg.Recorder.Counter("core", "master_throttled_total")
	}
	m.SetUnits([]UnitInfo{{
		ID:          cfg.UnitID,
		Hosts:       cfg.Fabric.Hosts,
		Controllers: controllers,
	}})
	m.elect = coord.NewElection(store, "/master/active", name, cfg.ElectionTTLOrDefault())
	m.elect.OnElected = m.onElected
	m.rpc.Register("Heartbeat", m.handleHeartbeat)
	m.rpc.Register("Allocate", m.handleAllocate)
	m.rpc.Register("Release", m.handleRelease)
	m.rpc.Register("Lookup", m.handleLookup)
	m.rpc.Register("DiskPower", m.handleDiskPower)
	m.elect.Run()
	m.detectLoop()
	return m
}

// Name returns the replica name.
func (m *Master) Name() string { return m.name }

// Active reports whether this replica is the active master.
func (m *Master) Active() bool { return m.elect.Leading() }

// Stop crashes the replica (and its coord store).
func (m *Master) Stop() {
	m.elect.Stop()
	m.rpc.Node().SetDown(true)
	m.store.Stop()
}

// onElected rebuilds StorAlloc from coord when this replica becomes active
// (SysStat rebuilds itself from incoming heartbeats).
func (m *Master) onElected() {
	m.cfg.Recorder.Counter("core", "elections_total").Inc()
	m.cfg.Recorder.Instant("core", "elected", "master", obs.L("replica", m.name))
	m.allocs = make(map[SpaceID]*allocRecord)
	m.diskAllocs = make(map[string][]*allocRecord)
	m.diskOwner = make(map[string]string)
	m.exported = make(map[SpaceID]string)
	disks, err := m.store.Children("/alloc")
	if err != nil {
		return // nothing allocated yet
	}
	for _, d := range disks {
		spaces, err := m.store.Children("/alloc/" + d)
		if err != nil {
			continue
		}
		for _, sp := range spaces {
			data, err := m.store.Get("/alloc/" + d + "/" + sp)
			if err != nil {
				continue
			}
			var rec allocRecord
			if json.Unmarshal(data, &rec) != nil {
				continue
			}
			m.indexAlloc(&rec)
		}
	}
	// Ask every online host to (re-)export what it should be serving.
	m.sched.After(0, m.reconcileExports)
}

func (m *Master) indexAlloc(rec *allocRecord) {
	m.allocs[rec.Space] = rec
	m.diskAllocs[rec.DiskID] = append(m.diskAllocs[rec.DiskID], rec)
	m.diskOwner[rec.DiskID] = rec.Service
}

// --- Heartbeats & failure detection (§IV-E) ---

func (m *Master) handleHeartbeat(from string, args any) (any, error) {
	hb := args.(HeartbeatArgs)
	if !m.Active() {
		return HeartbeatReply{Active: false, ActiveHint: m.elect.Leader()}, nil
	}
	hs := m.hosts[hb.Host]
	if hs == nil {
		hs = &hostStat{diskState: make(map[string]DiskState)}
		m.hosts[hb.Host] = hs
	}
	if hb.Seq < hs.lastSeq {
		return HeartbeatReply{Active: true}, nil // stale duplicate
	}
	hs.lastSeq = hb.Seq
	hs.lastSeen = m.sched.Now()
	wasOffline := !hs.online
	hs.online = true
	delete(m.failingOver, hb.Host)

	// Update disk->host mapping; detect disks that appeared here.
	var appeared []string
	seen := make(map[string]bool, len(hb.Disks))
	for _, di := range hb.Disks {
		seen[di.ID] = true
		hs.diskState[di.ID] = di.State
		if m.cfg.HealthQuarantine {
			m.health.observe(di.ID, di.Health)
		}
		if m.diskHost[di.ID] != hb.Host {
			m.diskHost[di.ID] = hb.Host
			appeared = append(appeared, di.ID)
		}
	}
	for id := range hs.diskState {
		if !seen[id] {
			delete(hs.diskState, id)
			if m.diskHost[id] == hb.Host {
				delete(m.diskHost, id)
			}
			// The EndPoint revoked this disk's exports when it detached;
			// forget them here too, or a later reappearance on the same
			// host would skip re-export and strand the spaces.
			for _, rec := range m.diskAllocs[id] {
				if m.exported[rec.Space] == hb.Host {
					delete(m.exported, rec.Space)
				}
			}
		}
	}
	if wasOffline || len(appeared) > 0 {
		m.exportDisksOn(hb.Host, appeared)
	}
	return HeartbeatReply{Active: true}, nil
}

// exportDisksOn sends export commands for the allocations living on the
// given disks (now visible on host).
func (m *Master) exportDisksOn(host string, diskIDs []string) {
	for _, id := range diskIDs {
		for _, rec := range m.diskAllocs[id] {
			rec := rec
			if m.exported[rec.Space] == host {
				continue
			}
			m.exported[rec.Space] = host
			m.rpc.Call(endpointNode(host), "Export",
				ExportArgs{Space: rec.Space, DiskID: rec.DiskID, Offset: rec.Offset, Size: rec.Size},
				128, m.cfg.RPCTimeoutOrDefault(), func(any, error) {})
		}
	}
}

// reconcileExports re-issues exports for every known attachment (used after
// master failover, when the exported map is cold).
func (m *Master) reconcileExports() {
	if !m.Active() {
		return
	}
	byHost := make(map[string][]string)
	hosts := make([]string, 0, len(byHost))
	for diskID, host := range m.diskHost {
		if len(byHost[host]) == 0 {
			hosts = append(hosts, host)
		}
		byHost[host] = append(byHost[host], diskID)
	}
	sort.Strings(hosts)
	for _, host := range hosts {
		disks := byHost[host]
		sort.Strings(disks)
		m.exportDisksOn(host, disks)
	}
}

// detectLoop scans for hosts whose heartbeats stopped.
func (m *Master) detectLoop() {
	m.sched.After(m.cfg.HeartbeatInterval, func() {
		if m.Active() {
			deadline := time.Duration(m.cfg.HostDeadAfter) * m.cfg.HeartbeatInterval
			hosts := make([]string, 0, len(m.hosts))
			for host := range m.hosts {
				hosts = append(hosts, host)
			}
			sort.Strings(hosts)
			for _, host := range hosts {
				if hs := m.hosts[host]; hs.online && m.sched.Now()-hs.lastSeen > deadline {
					hs.online = false
					m.hostDead(host)
				}
			}
			m.scorePass()
		}
		m.detectLoop()
	})
}

// hostDead re-homes every disk of a dead host onto the surviving hosts
// ("move the disks on this host to a non-faulty one", §IV-E).
func (m *Master) hostDead(host string) {
	if m.failingOver[host] {
		return
	}
	m.failingOver[host] = true
	started := m.sched.Now()
	rec := m.cfg.Recorder
	rec.Counter("core", "host_deaths_total").Inc()
	rec.Instant("core", "host-dead", "master", obs.L("host", host))
	span := rec.Begin("core", "failover", "master", obs.L("host", host))
	if m.OnHostDead != nil {
		m.OnHostDead(host)
	}
	var moving []string
	for diskID, h := range m.diskHost {
		if h == host {
			moving = append(moving, diskID)
		}
	}
	sort.Strings(moving)
	if len(moving) == 0 {
		span.End(obs.L("status", "no-disks"))
		return
	}
	// Spread the disks over the same unit's online hosts, least-loaded
	// first, keeping co-moving fabric groups together (a forced command
	// spreading one leaf-hub group across hosts would contradict itself;
	// disks are physically wired to one unit and cannot cross units).
	unit := m.unitOf(host)
	targets := m.onlineHostsByLoad(unit, host)
	if len(targets) == 0 {
		span.End(obs.L("status", "no-targets"))
		return // nothing alive to move to; retry on next detection pass
	}
	groupTarget := make(map[int]string)
	nextTarget := 0
	pairs := make([]fabric.DiskHost, len(moving))
	for i, diskID := range moving {
		gid, grouped := m.diskGroup[diskID]
		var tgt string
		if grouped {
			if t, ok := groupTarget[gid]; ok {
				tgt = t
			} else {
				tgt = targets[nextTarget%len(targets)]
				nextTarget++
				groupTarget[gid] = tgt
			}
		} else {
			tgt = targets[nextTarget%len(targets)]
			nextTarget++
		}
		pairs[i] = fabric.DiskHost{Disk: fabric.NodeID(diskID), Host: tgt}
	}
	// Mark the moved spaces unexported so the receiving host's heartbeat
	// triggers fresh exports.
	for _, diskID := range moving {
		for _, rec := range m.diskAllocs[diskID] {
			delete(m.exported, rec.Space)
		}
	}
	host0 := host
	// Prefer a controller whose host SysStat believes alive: when the dead
	// host also ran the primary Controller, go straight to the backup
	// instead of burning an RPC timeout (§IV-C primary/backup).
	first := m.pickController(unit)
	m.executeOnController(unit, first, ExecuteArgs{Pairs: pairs, Force: true}, func(err error) {
		if err != nil {
			// Retry once through the other controller.
			m.executeOnController(unit, 1-first, ExecuteArgs{Pairs: pairs, Force: true}, func(err2 error) {
				if err2 == nil {
					m.watchFailoverDone(host0, moving, started, span)
				} else {
					span.End(obs.L("status", "controllers-unreachable"))
				}
			})
			return
		}
		m.watchFailoverDone(host0, moving, started, span)
	})
}

// pickController returns the index of the first of unit's controllers
// whose host is online per SysStat (0 when both or neither are).
func (m *Master) pickController(unit int) int {
	for i, ctl := range m.units[unit].Controllers {
		host := ctl[len("ctl:"):]
		if hs := m.hosts[host]; hs != nil && hs.online {
			return i
		}
	}
	return 0
}

// watchFailoverDone polls SysStat until every moved disk reports on a live
// host and its spaces are exported, then fires OnFailoverDone.
func (m *Master) watchFailoverDone(host string, moving []string, started simtime.Time, span *obs.Span) {
	var poll func()
	poll = func() {
		done := true
		for _, diskID := range moving {
			h, ok := m.diskHost[diskID]
			if !ok || h == host {
				done = false
				break
			}
			for _, rec := range m.diskAllocs[diskID] {
				if m.exported[rec.Space] == "" {
					done = false
					break
				}
			}
		}
		if done {
			took := m.sched.Now() - started
			m.cfg.Recorder.Counter("core", "failovers_total").Inc()
			m.cfg.Recorder.Histogram("core", "failover_seconds").ObserveDuration(took)
			span.End(obs.L("status", "ok"))
			if m.OnFailoverDone != nil {
				m.OnFailoverDone(host, took)
			}
			return
		}
		m.sched.After(100*time.Millisecond, poll)
	}
	poll()
}

// onlineHostsByLoad returns unit's live hosts (excluding skip), least
// disks first.
func (m *Master) onlineHostsByLoad(unit int, skip string) []string {
	load := make(map[string]int)
	for _, host := range m.units[unit].Hosts {
		if host == skip {
			continue
		}
		if hs := m.hosts[host]; hs != nil && hs.online {
			load[host] = 0
		}
	}
	for _, h := range m.diskHost {
		if _, ok := load[h]; ok {
			load[h]++
		}
	}
	out := make([]string, 0, len(load))
	for h := range load {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if load[out[i]] != load[out[j]] {
			return load[out[i]] < load[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// executeOnController sends a topology command to unit's idx-th controller.
func (m *Master) executeOnController(unit, idx int, args ExecuteArgs, done func(error)) {
	if unit >= len(m.units) || idx >= len(m.units[unit].Controllers) {
		done(fmt.Errorf("core: no controller %d in unit %d", idx, unit))
		return
	}
	m.rpc.Call(m.units[unit].Controllers[idx], "Execute", args, 256, m.cfg.VerifyTimeout+time.Second,
		func(_ any, err error) { done(err) })
}

// throttled charges one metadata RPC against the caller's token bucket
// and reports whether it must be rejected. Only armed by
// Config.Protection with MasterRate > 0; buckets are per caller node
// (one tenant's storm cannot spend another's tokens).
func (m *Master) throttled(from string) bool {
	if m.limiters == nil {
		return false
	}
	tb := m.limiters[from]
	if tb == nil {
		tb = m.limiterPool.Get()
		m.limiters[from] = tb
	}
	if tb.Allow(m.sched.Now()) {
		return false
	}
	m.cThrottled.Inc()
	return true
}

// --- Allocation (§IV-A) ---

func (m *Master) handleAllocate(from string, args any) (any, error) {
	if !m.Active() {
		return nil, ErrNotActive
	}
	if m.throttled(from) {
		return nil, ErrThrottled
	}
	a := args.(AllocateArgs)
	if a.Size <= 0 {
		return nil, fmt.Errorf("core: allocation size %d", a.Size)
	}
	rec2 := m.cfg.Recorder
	started := m.sched.Now()
	span := rec2.Begin("core", "allocate", "master", obs.L("service", a.Service))
	diskID := m.pickDisk(a)
	if diskID == "" {
		rec2.Counter("core", "alloc_errors_total").Inc()
		span.End(obs.L("status", "no-space"))
		return nil, ErrNoSpace
	}
	if m.health.excluded(diskID) {
		// Only reachable under InjectQuarantineBlind; record the breach so
		// ValidateQuarantine (and the chaos invariant built on it) trips.
		m.health.violations = append(m.health.violations,
			fmt.Sprintf("%s (service %s, state %s)", diskID, a.Service, m.DiskHealthState(diskID)))
	}
	offset := int64(0)
	for _, rec := range m.diskAllocs[diskID] {
		if end := rec.Offset + rec.Size; end > offset {
			offset = end
		}
	}
	m.nextSpace++
	space := SpaceID(fmt.Sprintf("%s/%s/sp%d", m.cfg.UnitID, diskID, m.nextSpace))
	rec := &allocRecord{Space: space, Service: a.Service, DiskID: diskID, Offset: offset, Size: a.Size}
	m.indexAlloc(rec)
	// Persist synchronously to coord ("stored persistently in the Master
	// synchronously"); export after commit.
	data, _ := json.Marshal(rec)
	m.ensurePath("/alloc/" + diskID)
	m.store.Create("/alloc/"+diskID+"/"+spaceLeaf(space), data, "", func(err error) {
		if err != nil {
			rec2.Counter("core", "alloc_errors_total").Inc()
			span.End(obs.L("status", "persist-failed"))
			return
		}
		// Allocation latency covers pickDisk through the synchronous
		// coord commit (the client-visible critical path).
		rec2.Counter("core", "allocs_total").Inc()
		rec2.Histogram("core", "alloc_seconds").ObserveDuration(m.sched.Now() - started)
		span.End(obs.L("status", "ok"), obs.L("disk", diskID))
		if host, ok := m.diskHost[diskID]; ok {
			m.exported[space] = host
			m.rpc.Call(endpointNode(host), "Export",
				ExportArgs{Space: space, DiskID: diskID, Offset: offset, Size: a.Size},
				128, m.cfg.RPCTimeoutOrDefault(), func(any, error) {})
		}
	})
	host := m.diskHost[diskID]
	return AllocateReply{Space: space, DiskID: diskID, Host: host, Offset: offset, Size: a.Size}, nil
}

// pickDisk builds the candidate views SysStat allows (online host, not
// powered off, not quarantined, enough room) and delegates the §IV-A
// allocation rules — same-service affinity, then client locality, then any
// unowned disk — to placement.PickSingle.
func (m *Master) pickDisk(a AllocateArgs) string {
	free := func(diskID string) int64 {
		used := int64(0)
		for _, rec := range m.diskAllocs[diskID] {
			if end := rec.Offset + rec.Size; end > used {
				used = end
			}
		}
		return m.cfg.DiskParams.CapacityBytes - used
	}
	var candidates []placement.DiskView
	for diskID, host := range m.diskHost {
		hs := m.hosts[host]
		if hs == nil || !hs.online {
			continue
		}
		if hs.diskState[diskID] == DiskPoweredOff {
			continue
		}
		if m.health.excluded(diskID) && !m.cfg.InjectQuarantineBlind {
			continue
		}
		f := free(diskID)
		if f < a.Size {
			continue
		}
		candidates = append(candidates, placement.DiskView{
			ID:    diskID,
			Host:  host,
			Owner: m.diskOwner[diskID],
			Free:  f,
		})
	}
	placement.SortViews(candidates)
	return placement.PickSingle(candidates, a.Service, a.ClientHost)
}

func (m *Master) ensurePath(path string) {
	// Fire-and-forget creates; ErrExists replies are fine.
	m.store.Create("/alloc", nil, "", nil)
	m.store.Create(path, nil, "", nil)
}

func spaceLeaf(space SpaceID) string {
	s := string(space)
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return s[i+1:]
		}
	}
	return s
}

func (m *Master) handleRelease(from string, args any) (any, error) {
	if !m.Active() {
		return nil, ErrNotActive
	}
	if m.throttled(from) {
		return nil, ErrThrottled
	}
	r := args.(ReleaseArgs)
	rec, ok := m.allocs[r.Space]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSpace, r.Space)
	}
	delete(m.allocs, r.Space)
	recs := m.diskAllocs[rec.DiskID][:0]
	for _, other := range m.diskAllocs[rec.DiskID] {
		if other.Space != r.Space {
			recs = append(recs, other)
		}
	}
	m.diskAllocs[rec.DiskID] = recs
	if len(recs) == 0 {
		delete(m.diskOwner, rec.DiskID)
	}
	if host, ok := m.exported[r.Space]; ok {
		delete(m.exported, r.Space)
		m.rpc.Call(endpointNode(host), "Unexport", UnexportArgs{Space: r.Space},
			64, m.cfg.RPCTimeoutOrDefault(), func(any, error) {})
	}
	m.store.Delete("/alloc/"+rec.DiskID+"/"+spaceLeaf(r.Space), nil)
	return struct{}{}, nil
}

func (m *Master) handleLookup(from string, args any) (any, error) {
	if !m.Active() {
		return nil, ErrNotActive
	}
	if m.throttled(from) {
		return nil, ErrThrottled
	}
	l := args.(LookupArgs)
	rec, ok := m.allocs[l.Space]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSpace, l.Space)
	}
	host, attached := m.diskHost[rec.DiskID]
	state := DiskMissing
	if attached {
		if hs := m.hosts[host]; hs != nil {
			state = hs.diskState[rec.DiskID]
		}
	}
	return LookupReply{Host: host, DiskID: rec.DiskID, Offset: rec.Offset, Size: rec.Size, State: state}, nil
}

// handleDiskPower lets the owning service spin its disks up or down
// (§IV-F's disk management interface).
func (m *Master) handleDiskPower(from string, args any) (any, error) {
	if !m.Active() {
		return nil, ErrNotActive
	}
	if m.throttled(from) {
		return nil, ErrThrottled
	}
	p := args.(DiskPowerArgs)
	if owner := m.diskOwner[p.DiskID]; owner != p.Service {
		return nil, fmt.Errorf("%w: %s owned by %q", ErrNotOwner, p.DiskID, owner)
	}
	host, ok := m.diskHost[p.DiskID]
	if !ok {
		return nil, fmt.Errorf("core: disk %s not attached", p.DiskID)
	}
	m.rpc.Call(endpointNode(host), "DiskPower", p, 64, m.cfg.RPCTimeoutOrDefault(), func(any, error) {})
	return struct{}{}, nil
}

// ExecuteTopology sends an explicit topology scheduling command to the
// owning unit's Controller (§IV-C: "connect disk A to host H1 and disk C
// to host H2"), e.g. for deliberate re-balancing or rebuild offload. The
// unit is derived from the command's target hosts; the command goes to the
// controller whose host is alive, falling back to the other.
func (m *Master) ExecuteTopology(cmd ExecuteArgs, done func(error)) {
	if len(cmd.Pairs) == 0 {
		done(nil)
		return
	}
	unit := m.unitOf(cmd.Pairs[0].Host)
	first := m.pickController(unit)
	m.executeOnController(unit, first, cmd, func(err error) {
		if err == nil {
			done(nil)
			return
		}
		m.executeOnController(unit, 1-first, cmd, done)
	})
}

// SetUnits installs SysConf's deploy-unit inventory. The default (set by
// NewMaster) is a single unit covering cfg.Fabric.Hosts; multi-unit
// clusters replace it.
func (m *Master) SetUnits(units []UnitInfo) {
	m.units = units
	m.hostUnit = make(map[string]int)
	for i, u := range units {
		for _, h := range u.Hosts {
			m.hostUnit[h] = i
		}
	}
}

// unitOf returns the unit index of a host (0 if unknown, the safe default
// for single-unit deployments).
func (m *Master) unitOf(host string) int {
	if i, ok := m.hostUnit[host]; ok {
		return i
	}
	return 0
}

// SetDiskGroups installs the fabric's co-moving disk groups (SysConf).
func (m *Master) SetDiskGroups(groups [][]string) {
	m.diskGroup = make(map[string]int)
	for gid, group := range groups {
		for _, d := range group {
			m.diskGroup[d] = gid
		}
	}
}

// ValidateAllocations checks StorAlloc's core invariant: no two records on
// one disk overlap, and every record fits the disk. The chaos harness calls
// it continuously; a violation means the allocator double-assigned extents.
func (m *Master) ValidateAllocations() error {
	disks := make([]string, 0, len(m.diskAllocs))
	for d := range m.diskAllocs {
		disks = append(disks, d)
	}
	sort.Strings(disks)
	for _, d := range disks {
		recs := append([]*allocRecord(nil), m.diskAllocs[d]...)
		sort.Slice(recs, func(i, j int) bool { return recs[i].Offset < recs[j].Offset })
		prevEnd := int64(0)
		var prev SpaceID
		for _, rec := range recs {
			if rec.Size <= 0 || rec.Offset < 0 {
				return fmt.Errorf("core: alloc %s on %s has bad extent [%d,+%d)", rec.Space, d, rec.Offset, rec.Size)
			}
			if rec.Offset+rec.Size > m.cfg.DiskParams.CapacityBytes {
				return fmt.Errorf("core: alloc %s on %s exceeds capacity", rec.Space, d)
			}
			if rec.Offset < prevEnd {
				return fmt.Errorf("core: allocs %s and %s overlap on %s ([%d,+%d) vs end %d)",
					prev, rec.Space, d, rec.Offset, rec.Size, prevEnd)
			}
			prevEnd = rec.Offset + rec.Size
			prev = rec.Space
		}
	}
	return nil
}

// HostOnline exposes SysStat for tests and the bench harness.
func (m *Master) HostOnline(host string) bool {
	hs := m.hosts[host]
	return hs != nil && hs.online
}

// DiskHost exposes the current disk->host mapping.
func (m *Master) DiskHost(diskID string) string { return m.diskHost[diskID] }
