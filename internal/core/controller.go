package core

import (
	"errors"
	"fmt"
	"time"

	"ustore/internal/fabric"
	"ustore/internal/simnet"
	"ustore/internal/simtime"
)

// ErrVerifyTimeout is returned when switched disks fail to reappear within
// the verification window; the Controller rolls the switches back (§IV-C
// step 3).
var ErrVerifyTimeout = errors.New("core: switch verification timed out")

// ErrFabricLocked is returned when a command arrives while another is in
// flight (§IV-C step 1: the fabric is locked during scheduling).
var ErrFabricLocked = errors.New("core: fabric locked by another command")

// Controller executes the Master's topology commands on one deploy unit
// (§IV-C). Two controllers run on two of the unit's hosts; the Master uses
// the primary and falls back to the backup.
type Controller struct {
	host    string
	mcu     int // which microcontroller this controller drives
	cfg     Config
	sched   *simtime.Scheduler
	rpc     *simnet.RPCNode
	fab     *fabric.Fabric
	plane   *fabric.ControlPlane
	binding *fabric.Binding

	// usbView is the Controller's integrated view of the fabric,
	// assembled from EndPoint USB reports ("combining the non-overlapping
	// USB trees", §IV-E).
	usbView map[string]USBReportArgs

	locked bool

	// Stats.
	executed, conflicts, rollbacks uint64
}

// controllerNode returns a controller's RPC node name.
func controllerNode(host string) string { return "ctl:" + host }

// NewController creates the controller running on host, driving mcu (0 =
// primary microcontroller, 1 = backup).
func NewController(net *simnet.Network, host string, mcu int, cfg Config,
	fab *fabric.Fabric, plane *fabric.ControlPlane, binding *fabric.Binding) *Controller {
	c := &Controller{
		host:    host,
		mcu:     mcu,
		cfg:     cfg,
		sched:   net.Scheduler(),
		rpc:     simnet.NewRPCNode(net, controllerNode(host)),
		fab:     fab,
		plane:   plane,
		binding: binding,
		usbView: make(map[string]USBReportArgs),
	}
	c.rpc.RegisterAsync("Execute", c.handleExecute)
	c.rpc.RegisterAsync("NodePower", c.handleNodePower)
	c.rpc.Register("USBReport", c.handleUSBReport)
	return c
}

// Host returns the host this controller runs on.
func (c *Controller) Host() string { return c.host }

// Down simulates the controller's host dying (RPC unreachable). When the
// controller comes back up it ensures its microcontroller is powered
// (backup takeover per §III-B).
func (c *Controller) Down(down bool) {
	c.rpc.Node().SetDown(down)
	if down {
		c.locked = false
	}
}

// TakeOver powers on this controller's microcontroller so it can actuate
// switches after the primary's MCU became unreachable.
func (c *Controller) TakeOver() { c.plane.PowerOnMCU(c.mcu) }

// Executed, Conflicts and Rollbacks expose counters.
func (c *Controller) Executed() uint64  { return c.executed }
func (c *Controller) Conflicts() uint64 { return c.conflicts }
func (c *Controller) Rollbacks() uint64 { return c.rollbacks }

func (c *Controller) handleUSBReport(from string, args any) (any, error) {
	r := args.(USBReportArgs)
	if prev, ok := c.usbView[r.Host]; ok && r.Seq < prev.Seq {
		return struct{}{}, nil
	}
	c.usbView[r.Host] = r
	return struct{}{}, nil
}

// VisibleOn reports whether the controller's integrated USB view shows
// diskID on host.
func (c *Controller) VisibleOn(host, diskID string) bool {
	for _, id := range c.usbView[host].Storage {
		if id == diskID {
			return true
		}
	}
	return false
}

// handleExecute implements the three-step §IV-C procedure: lock the fabric,
// plan with Algorithm 1 (or forced planning), actuate through the
// microcontroller, verify via EndPoint USB reports, roll back on timeout.
func (c *Controller) handleExecute(from string, args any, reply func(any, error)) {
	cmd := args.(ExecuteArgs)
	if c.locked {
		reply(nil, ErrFabricLocked)
		return
	}
	// If the primary microcontroller is out of reach (e.g. its host died),
	// take over with ours before planning.
	if !c.plane.Reachable(c.mcu) {
		c.plane.PowerOnMCU(c.mcu)
	}
	// Step 2: determine the switches to turn.
	var turns []fabric.SwitchSetting
	var disturbed []fabric.NodeID
	var err error
	if cmd.Force {
		turns, err = c.fab.ForcedTurns(cmd.Pairs)
		if err == nil {
			disturbed = c.fab.DisturbedBy(turns, cmd.Pairs)
		}
	} else {
		turns, err = c.fab.SwitchesToTurn(cmd.Pairs)
	}
	if err != nil {
		if errors.Is(err, fabric.ErrConflict) {
			c.conflicts++
		}
		reply(nil, err)
		return
	}
	rep := ExecuteReply{Turned: len(turns)}
	for _, d := range disturbed {
		rep.Disturbed = append(rep.Disturbed, string(d))
	}
	if len(turns) == 0 {
		c.executed++
		reply(rep, nil)
		return
	}
	// Step 1: lock the fabric for the duration of the command.
	c.locked = true
	// Remember prior state for rollback.
	prior := make([]fabric.SwitchSetting, len(turns))
	for i, t := range turns {
		prior[i] = fabric.SwitchSetting{Switch: t.Switch, Sel: c.fab.Node(t.Switch).Sel}
	}
	// Step 3: actuate, then verify arrival of every commanded disk on its
	// target host within the verification window.
	c.plane.TurnSwitches(c.mcu, turns, func(terr error) {
		if terr != nil {
			c.locked = false
			reply(nil, terr)
			return
		}
		deadline := c.sched.Now() + c.cfg.VerifyTimeout
		var verify func()
		verify = func() {
			ok := true
			for _, p := range cmd.Pairs {
				if !c.VisibleOn(p.Host, string(p.Disk)) {
					ok = false
					break
				}
			}
			if ok {
				c.locked = false
				c.executed++
				reply(rep, nil)
				return
			}
			if c.sched.Now() >= deadline {
				// Roll back: turn the switches to their original state
				// and report failure back to the Master (§IV-C step 3).
				c.rollbacks++
				c.plane.TurnSwitches(c.mcu, prior, func(error) {
					c.locked = false
					reply(nil, fmt.Errorf("%w after %v", ErrVerifyTimeout, c.cfg.VerifyTimeout))
				})
				return
			}
			c.sched.After(200*time.Millisecond, verify)
		}
		verify()
	})
}

func (c *Controller) handleNodePower(from string, args any, reply func(any, error)) {
	p := args.(NodePowerArgs)
	if !c.plane.Reachable(c.mcu) {
		c.plane.PowerOnMCU(c.mcu)
	}
	c.plane.SetPower(c.mcu, fabric.NodeID(p.Node), p.On, func(err error) {
		if err != nil {
			reply(nil, err)
			return
		}
		// Power changes alter the visible trees; resync the binding so
		// hosts observe attach/detach events.
		c.binding.Resync()
		reply(struct{}{}, nil)
	})
}
