package core

import (
	"fmt"
	"time"

	"ustore/internal/coord"
	"ustore/internal/disk"
	"ustore/internal/fabric"
	"ustore/internal/simnet"
	"ustore/internal/simtime"
	"ustore/internal/usb"
)

// Cluster assembles a complete UStore deployment on one simulation
// scheduler: the deploy unit (fabric + disks + control plane + USB
// binding), the replicated Master (with its co-located coord quorum), two
// Controllers, one EndPoint per host, and factories for ClientLibs. It is
// the entry point tests, benches, and examples build on.
type Cluster struct {
	Cfg   Config
	Sched *simtime.Scheduler
	Net   *simnet.Network
	// UnitRigs holds every deploy unit; the Fabric/Binding/Plane/Ctrls
	// fields alias unit 0 for the common single-unit case.
	UnitRigs []*UnitRig
	Fabric   *fabric.Fabric
	Binding  *fabric.Binding
	Plane    *fabric.ControlPlane
	Ctrls    []*Controller
	// Disks and EndPoints span all units (names are unit-prefixed).
	Disks     map[string]*disk.Disk
	Stores    []*coord.Store
	Masters   []*Master
	EndPoints map[string]*EndPoint

	clients map[string]*ClientLib
}

// NewCluster builds and boots a cluster per cfg. Run the scheduler (e.g.
// Settle) to complete initial enumeration, elections, and exports.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.MasterReplicas < 1 {
		return nil, fmt.Errorf("core: need at least one master replica")
	}
	sched := simtime.NewScheduler(cfg.Seed)
	net := simnet.New(sched)
	if cfg.Recorder != nil {
		// All trace timestamps come from this run's virtual clock.
		cfg.Recorder.BindClock(sched.Now)
		net.SetRecorder(cfg.Recorder)
	}
	// History stamps (nil-safe) also read this run's virtual clock.
	cfg.History.BindClock(sched.Now)
	c := &Cluster{
		Cfg:       cfg,
		Sched:     sched,
		Net:       net,
		Disks:     make(map[string]*disk.Disk),
		EndPoints: make(map[string]*EndPoint),
		clients:   make(map[string]*ClientLib),
	}

	// Master replica names, needed before units wire their EndPoints.
	var peerNames []string
	for i := 0; i < cfg.MasterReplicas; i++ {
		peerNames = append(peerNames, fmt.Sprintf("m%d", i))
	}
	var masterNodes []string
	for _, name := range peerNames {
		masterNodes = append(masterNodes, masterNode(name))
	}

	// Deploy units (one by default).
	units := cfg.Units
	if units < 1 {
		units = 1
	}
	for j := 0; j < units; j++ {
		unitID, fcfg := unitFabricConfig(cfg, j)
		rig, err := buildUnit(c, unitID, fcfg, masterNodes)
		if err != nil {
			return nil, err
		}
		c.UnitRigs = append(c.UnitRigs, rig)
		c.Ctrls = append(c.Ctrls, rig.Ctrls...)
	}
	// Legacy single-unit accessors alias unit 0.
	c.Fabric = c.UnitRigs[0].Fabric
	c.Binding = c.UnitRigs[0].Binding
	c.Plane = c.UnitRigs[0].Plane

	// Master replicas with co-located coord stores, taught the full unit
	// inventory (SysConf).
	infos := unitInfos(c.UnitRigs)
	groups := allGroups(c.UnitRigs)
	primaryCtrls := infos[0].Controllers
	for _, name := range peerNames {
		st := coord.NewStore(net, name, peerNames, cfg.PaxosOrDefault())
		if cfg.CoordSweepInterval > 0 {
			st.SetSweepInterval(cfg.CoordSweepInterval)
		}
		c.Stores = append(c.Stores, st)
		m := NewMaster(net, name, st, cfg, primaryCtrls)
		m.SetUnits(infos)
		m.SetDiskGroups(groups)
		c.Masters = append(c.Masters, m)
		net.Colocate(name, "mach-"+name)             // paxos node
		net.Colocate("coord:"+name, "mach-"+name)    // coord store
		net.Colocate(masterNode(name), "mach-"+name) // master process
	}
	// Initial enumeration events are still pending on the scheduler (they
	// fire after the USB detect + per-device delays), so installing the
	// hot-plug callbacks inside buildUnit loses nothing: the first Settle
	// delivers them all.
	return c, nil
}

// Settle runs the simulation for d.
func (c *Cluster) Settle(d time.Duration) {
	c.Sched.RunFor(d)
	c.publishSchedStats()
}

// publishSchedStats mirrors the scheduler's activity counters into the run
// recorder as gauges, keeping internal/simtime free of any obs dependency.
// Called after each Settle so the exported snapshot tracks the run.
func (c *Cluster) publishSchedStats() {
	rec := c.Cfg.Recorder
	if rec == nil {
		return
	}
	st := c.Sched.Stats()
	rec.Gauge("simtime", "events_fired").Set(float64(st.Fired))
	rec.Gauge("simtime", "events_allocated").Set(float64(st.Allocated))
	rec.Gauge("simtime", "events_recycled").Set(float64(st.Recycled))
	rec.Gauge("simtime", "events_reused").Set(float64(st.Reused))
	rec.Gauge("simtime", "inserts_ready").Set(float64(st.ReadyInserts))
	rec.Gauge("simtime", "inserts_wheel").Set(float64(st.WheelInserts))
	rec.Gauge("simtime", "inserts_far").Set(float64(st.FarInserts))
	rec.Gauge("simtime", "canceled_dropped").Set(float64(st.CanceledDropped))
	rec.Gauge("simtime", "compactions").Set(float64(st.Compactions))
	rec.Gauge("simtime", "max_pending").Set(float64(st.MaxPending))
}

// ActiveMaster returns the current active master replica (nil if the
// election has not converged).
func (c *Cluster) ActiveMaster() *Master {
	for _, m := range c.Masters {
		if m.Active() {
			return m
		}
	}
	return nil
}

// MasterNodeNames lists the master RPC node names.
func (c *Cluster) MasterNodeNames() []string {
	var out []string
	for _, m := range c.Masters {
		out = append(out, masterNode(m.Name()))
	}
	return out
}

// Client returns (creating on first use) a ClientLib named name for the
// given service.
func (c *Cluster) Client(name, service string) *ClientLib {
	key := name + "/" + service
	if cl, ok := c.clients[key]; ok {
		return cl
	}
	cl := NewClientLib(c.Net, name, service, c.Cfg, c.MasterNodeNames())
	// A client named after a host (e.g. co-located agents, HDFS
	// datanodes) runs on that machine: its traffic to the local target is
	// loopback.
	if host := cl.locality(); host != "" {
		c.Net.Colocate(name, host)
		c.Net.Colocate("cl:"+name, host)
	}
	c.clients[key] = cl
	return cl
}

// CrashHost simulates a host's software/hardware failure: its EndPoint,
// block target, and (if it runs one) Controller stop responding. Its USB
// devices remain powered — they are in the deploy unit, not the host — so
// the fabric can re-home them.
func (c *Cluster) CrashHost(host string) {
	if ep := c.EndPoints[host]; ep != nil {
		ep.Down(true)
	}
	for _, ctl := range c.Ctrls {
		if ctl.Host() == host {
			ctl.Down(true)
		}
	}
}

// RestoreHost brings a crashed host back.
func (c *Cluster) RestoreHost(host string) {
	if ep := c.EndPoints[host]; ep != nil {
		ep.Down(false)
	}
	for _, ctl := range c.Ctrls {
		if ctl.Host() == host {
			ctl.Down(false)
		}
	}
}

// rigOfNode returns the deploy unit whose fabric contains the node.
func (c *Cluster) rigOfNode(id string) *UnitRig {
	for _, rig := range c.UnitRigs {
		if rig.Fabric.Node(fabric.NodeID(id)) != nil {
			return rig
		}
	}
	return nil
}

// FailDisk simulates a whole-disk hardware failure: the fabric marks the
// disk node failed (its bridge shares the failure unit, §IV-E), the binding
// drops it from its host's USB tree, and the device itself goes dark so
// in-flight IO errors out.
func (c *Cluster) FailDisk(id string) error {
	rig := c.rigOfNode(id)
	if rig == nil {
		return fmt.Errorf("core: unknown disk %s", id)
	}
	if err := rig.Fabric.Fail(fabric.NodeID(id)); err != nil {
		return err
	}
	if d := c.Disks[id]; d != nil {
		d.PowerOff()
		d.StopMediaDecay()
	}
	rig.Binding.Resync()
	return nil
}

// ReplaceDisk models the operator swapping in a fresh drive at the failed
// disk's slot: blank media (any surviving data lives only on replicas), the
// fabric node repaired, and the device powered back on. The binding resync
// re-enumerates it, and the heartbeat path re-exports spaces onto it.
func (c *Cluster) ReplaceDisk(id string) error {
	rig := c.rigOfNode(id)
	if rig == nil {
		return fmt.Errorf("core: unknown disk %s", id)
	}
	if err := rig.Fabric.Repair(fabric.NodeID(id)); err != nil {
		return err
	}
	if d := c.Disks[id]; d != nil {
		d.ReplaceMedia()
		d.PowerOn()
	}
	rig.Binding.Resync()
	return nil
}

// FailHub marks a hub (and hence the subtree hanging off it) failed. Disk
// data under the hub is intact — only the path to it is gone until repair.
func (c *Cluster) FailHub(id string) error {
	rig := c.rigOfNode(id)
	if rig == nil {
		return fmt.Errorf("core: unknown hub %s", id)
	}
	if err := rig.Fabric.Fail(fabric.NodeID(id)); err != nil {
		return err
	}
	rig.Binding.Resync()
	return nil
}

// ReplaceHub repairs a failed hub; the subtree re-enumerates with its data
// untouched.
func (c *Cluster) ReplaceHub(id string) error {
	rig := c.rigOfNode(id)
	if rig == nil {
		return fmt.Errorf("core: unknown hub %s", id)
	}
	if err := rig.Fabric.Repair(fabric.NodeID(id)); err != nil {
		return err
	}
	rig.Binding.Resync()
	return nil
}

// --- Gray-failure injection (fail-slow, not fail-stop) ---

// DegradeDisk makes a disk fail-slow with the given severity in (0, 1]:
// inflated service time, added latency, a throttled media rate, and (at
// high severity) intermittent EIO. The disk stays attached and keeps
// answering — the failure mode quarantine exists for.
func (c *Cluster) DegradeDisk(id string, severity float64) error {
	d := c.Disks[id]
	if d == nil {
		return fmt.Errorf("core: unknown disk %s", id)
	}
	if severity <= 0 {
		severity = 0.5
	}
	if severity > 1 {
		severity = 1
	}
	p := disk.DegradeParams{
		ServiceFactor: 1 + 9*severity,
		ExtraLatency:  time.Duration(severity * float64(200*time.Millisecond)),
		BandwidthCap:  (1 - 0.8*severity) * c.Cfg.DiskParams.MediaRate,
	}
	if severity >= 0.7 {
		p.IOErrorRate = 0.02 * severity
	}
	d.Degrade(p)
	return nil
}

// RecoverDisk clears a disk's fail-slow degradation (the media recovered;
// any link-level throttle is separate, see RestoreLink).
func (c *Cluster) RecoverDisk(id string) error {
	d := c.Disks[id]
	if d == nil {
		return fmt.Errorf("core: unknown disk %s", id)
	}
	d.ClearDegrade()
	return nil
}

// FlapLink bounces a disk's USB link: the device detaches, stays dark for a
// link-down window, then re-enumerates — with the given number of retry
// storms inflating the host's enumeration backlog (§V-B's flaky-cable
// symptom). The disk's data is untouched.
func (c *Cluster) FlapLink(id string, storms int) error {
	rig := c.rigOfNode(id)
	if rig == nil {
		return fmt.Errorf("core: unknown disk %s", id)
	}
	dev := rig.Binding.Device(fabric.NodeID(id))
	host := rig.Binding.HostOf(fabric.NodeID(id))
	if dev == nil || host == "" {
		return fmt.Errorf("core: disk %s not attached", id)
	}
	hc := rig.Binding.HostController(host)
	if hc == nil {
		return fmt.Errorf("core: no host controller for %s", host)
	}
	return hc.FlapDevice(dev, 750*time.Millisecond, storms)
}

// DowngradeLink renegotiates a disk's USB link down to high-speed (a bad
// cable or connector dropping SuperSpeed lanes): the device-level link cap
// throttles transfers to USB 2.0 rates plus a severity-scaled turnaround
// penalty per IO.
func (c *Cluster) DowngradeLink(id string, severity float64) error {
	rig := c.rigOfNode(id)
	if rig == nil {
		return fmt.Errorf("core: unknown disk %s", id)
	}
	dev := rig.Binding.Device(fabric.NodeID(id))
	host := rig.Binding.HostOf(fabric.NodeID(id))
	if dev == nil || host == "" {
		return fmt.Errorf("core: disk %s not attached", id)
	}
	if hc := rig.Binding.HostController(host); hc != nil {
		hc.SetLinkSpeed(dev, usb.LinkHigh)
	}
	if severity < 0 {
		severity = 0
	}
	if severity > 1 {
		severity = 1
	}
	if d := c.Disks[id]; d != nil {
		d.SetLinkCap(usb.HighSpeedBytesPerSec, time.Duration(severity*float64(10*time.Millisecond)))
	}
	return nil
}

// RestoreLink returns a downgraded link to SuperSpeed and removes the cap.
func (c *Cluster) RestoreLink(id string) error {
	rig := c.rigOfNode(id)
	if rig == nil {
		return fmt.Errorf("core: unknown disk %s", id)
	}
	if dev := rig.Binding.Device(fabric.NodeID(id)); dev != nil {
		if host := rig.Binding.HostOf(fabric.NodeID(id)); host != "" {
			if hc := rig.Binding.HostController(host); hc != nil {
				hc.SetLinkSpeed(dev, usb.LinkSuper)
			}
		}
	}
	if d := c.Disks[id]; d != nil {
		d.SetLinkCap(0, 0)
	}
	return nil
}

// BrownoutHost inflates every RPC and block transfer to and from a host's
// machine by a severity-scaled delay (CPU starvation, memory pressure, a
// saturated NIC — the host equivalent of a fail-slow disk).
func (c *Cluster) BrownoutHost(host string, severity float64) {
	if severity <= 0 {
		severity = 0.5
	}
	if severity > 1 {
		severity = 1
	}
	c.Net.SetMachineBrownout(host, time.Duration(severity*float64(100*time.Millisecond)))
}

// EndBrownout clears a host brownout.
func (c *Cluster) EndBrownout(host string) {
	c.Net.SetMachineBrownout(host, 0)
}

// DiskCountOn returns how many disks SysStat places on host (via the
// active master; 0 if none active).
func (c *Cluster) DiskCountOn(host string) int {
	m := c.ActiveMaster()
	if m == nil {
		return 0
	}
	n := 0
	for _, rig := range c.UnitRigs {
		for _, d := range rig.Fabric.Disks() {
			if m.DiskHost(string(d)) == host {
				n++
			}
		}
	}
	return n
}
