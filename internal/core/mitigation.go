package core

import (
	"time"

	"ustore/internal/obs"
	"ustore/internal/policy"
)

// Client-side gray-failure mitigation. Quarantine (health.go) protects NEW
// allocations, but a client already mounted on a fail-slow target would
// still eat every inflated service time until the drain finishes. Three
// standard techniques cut that tail without waiting for the control plane:
//
//   - adaptive timeouts: the static 2s initiator deadline is replaced by
//     EWMA + 4*deviation of observed round trips (Jacobson-style, like a
//     TCP RTO — including the exponential backoff on timeout), so a
//     request to a target that has gone slow fails in hundreds of
//     milliseconds;
//   - hedged reads: when a read has a registered mirror copy and the
//     primary hasn't answered within the hedge delay, a second read is
//     issued to the mirror and the first reply wins (Dean & Barroso's
//     "tail at scale" hedging);
//   - circuit breaker: a target whose requests keep failing OR keep
//     completing anomalously slowly (fail-slow is still a failure) is
//     marked open, and reads go straight to the mirror with zero hedge
//     delay; a single half-open probe per cool-down tests recovery.
//
// State is keyed per block target — (host, volume) — not per host: gray
// failures are per disk, and a healthy mirror on the same host must not
// share the gray primary's model or breaker.
//
// Everything is deterministic — no RNG — so mitigation on/off comparisons
// under the same seed are exact.

// Adaptive-timeout and hedging tuning.
const (
	// mitMinSamples is how many clean round trips a target needs before
	// its latency model is trusted.
	mitMinSamples = 8
	// mitMinTimeout floors the adaptive timeout (and the slow-success
	// gate): below this, scheduler quantization and queueing noise
	// dominate.
	mitMinTimeout = 100 * time.Millisecond
	// mitMinHedge floors the hedge delay so a healthy fast pair doesn't
	// hedge every read (hedges should fire on tail requests only).
	mitMinHedge = 20 * time.Millisecond
	// mitDefaultHedge is used while both targets' models are warming up.
	mitDefaultHedge = 250 * time.Millisecond
	// mitMaxRTOShift caps the timeout backoff at 16x the model's deadline
	// (further capped by the static Timeout), preserving liveness if the
	// whole cluster legitimately slows down.
	mitMaxRTOShift = 4
)

// targetLatency is the per-target round-trip model: an EWMA of the RTT and
// an EWMA of its absolute deviation. Only clean samples — successes within
// the slow gate — update it: a fail-slow target's inflated round trips are
// the anomaly being detected and must not be allowed to redefine "normal".
type targetLatency struct {
	ewma    time.Duration
	dev     time.Duration
	samples uint64
	// rtoShift backs the adaptive deadline off exponentially after
	// timeouts (a timeout says nothing about the true RTT except "longer
	// than the deadline"); any completion resets it.
	rtoShift uint
}

func (tl *targetLatency) observe(rtt time.Duration) {
	if tl.samples == 0 {
		tl.ewma = rtt
		tl.dev = rtt / 2
	} else {
		diff := rtt - tl.ewma
		if diff < 0 {
			diff = -diff
		}
		tl.ewma += (rtt - tl.ewma) / 8
		tl.dev += (diff - tl.dev) / 4
	}
	tl.samples++
}

func (tl *targetLatency) warm() bool { return tl != nil && tl.samples >= mitMinSamples }

// deadline is the model's base timeout / slow gate: EWMA + 4*dev, floored.
func (tl *targetLatency) deadline() time.Duration {
	d := tl.ewma + 4*tl.dev
	if d < mitMinTimeout {
		d = mitMinTimeout
	}
	return d
}

// Mitigation is a ClientLib's gray-failure mitigation state. Obtain one
// with EnableMitigation; all methods run on the scheduler goroutine. The
// per-target circuit breaker is policy.Breaker (this stack's original
// breaker, extracted so core's server-side protection runs the same state
// machine per disk); its zero value keeps the historical 3-failure / 5s
// tuning.
type Mitigation struct {
	cl      *ClientLib
	lat     map[string]*targetLatency
	brk     map[string]*policy.Breaker
	mirrors map[SpaceID]SpaceID

	cHedges *obs.Counter
	cWins   *obs.Counter
	cOpens  *obs.Counter
	cRedir  *obs.Counter
	cFast   *obs.Counter

	// Counters for tests and experiment reports.
	Hedges       uint64 // hedge legs fired
	HedgeWins    uint64 // hedge legs that beat the primary
	BreakerOpens uint64 // breaker open transitions
	Redirects    uint64 // reads sent straight to the mirror (breaker open)
	FastFails    uint64 // requests failed by the adaptive timeout
}

// targetKey identifies one block target session.
func targetKey(host, volume string) string { return host + "|" + volume }

// EnableMitigation turns on adaptive timeouts and latency observation for
// this client and returns the mitigation handle for hedging and breaker
// control. Calling it twice returns the same handle.
func (cl *ClientLib) EnableMitigation() *Mitigation {
	if cl.mit != nil {
		return cl.mit
	}
	rec := cl.cfg.Recorder
	mit := &Mitigation{
		cl:      cl,
		lat:     make(map[string]*targetLatency),
		brk:     make(map[string]*policy.Breaker),
		mirrors: make(map[SpaceID]SpaceID),
		cHedges: rec.Counter("core", "hedge_reads_total"),
		cWins:   rec.Counter("core", "hedge_wins_total"),
		cOpens:  rec.Counter("core", "hedge_breaker_opens_total"),
		cRedir:  rec.Counter("core", "hedge_redirects_total"),
		cFast:   rec.Counter("core", "hedge_fast_fails_total"),
	}
	cl.mit = mit
	cl.ini.AdaptiveTimeout = mit.adaptiveTimeout
	cl.ini.OnComplete = mit.observe
	return mit
}

// Mitigation returns the handle installed by EnableMitigation (nil if off).
func (cl *ClientLib) Mitigation() *Mitigation { return cl.mit }

// SetMirror registers b as a mirror copy of a (and vice versa): ReadHedged
// on either space may serve from the other. The caller is responsible for
// keeping the contents identical.
func (m *Mitigation) SetMirror(a, b SpaceID) {
	m.mirrors[a] = b
	m.mirrors[b] = a
}

// observe is the Initiator's OnComplete feed: it maintains the latency
// model and drives the breaker. A successful completion that took longer
// than the slow gate counts AGAINST the target — a disk that answers every
// request in 20x its normal time is failing, whatever its status codes say.
func (m *Mitigation) observe(host, volume string, rtt time.Duration, err error) {
	k := targetKey(host, volume)
	tl := m.lat[k]
	if tl == nil {
		tl = &targetLatency{}
		m.lat[k] = tl
	}
	br := m.brk[k]
	if br == nil {
		br = &policy.Breaker{}
		m.brk[k] = br
	}
	slow := err == nil && tl.warm() && rtt > tl.deadline()
	if err == nil {
		tl.rtoShift = 0 // the deadline was adequate; stop backing off
		if !slow {
			tl.observe(rtt)
			br.OnSuccess()
			return
		}
	} else {
		if tl.warm() {
			m.FastFails++
			m.cFast.Inc()
		}
		if tl.rtoShift < mitMaxRTOShift {
			tl.rtoShift++
		}
	}
	if br.OnFailure(m.cl.sched.Now()) {
		m.BreakerOpens++
		m.cOpens.Inc()
		m.cl.cfg.Recorder.Instant("core", "breaker-open", m.cl.name,
			obs.L("host", host), obs.L("volume", volume))
	}
}

// adaptiveTimeout is the Initiator's per-target deadline: the model's
// EWMA + 4*dev, backed off exponentially after timeouts, clamped to the
// static Timeout.
func (m *Mitigation) adaptiveTimeout(host, volume string) time.Duration {
	tl := m.lat[targetKey(host, volume)]
	if !tl.warm() {
		return 0 // static default
	}
	t := tl.deadline() << tl.rtoShift
	if max := m.cl.ini.Timeout; t > max {
		t = max
	}
	return t
}

// hedgeDelay is how long a read waits on the primary before the mirror leg
// fires: EWMA + 2*dev (roughly the p95-p99) of the FASTER of the two
// targets. Using the pair minimum matters: if the primary itself has gone
// gray, its own inflated model would push the hedge trigger out to exactly
// the latency hedging is meant to cut, while the healthy mirror's model
// keeps the delay anchored to what a good replica can do.
func (m *Mitigation) hedgeDelay(primary, mirror string) time.Duration {
	best := time.Duration(0)
	for _, k := range [2]string{primary, mirror} {
		tl := m.lat[k]
		if !tl.warm() {
			continue
		}
		if d := tl.ewma + 2*tl.dev; best == 0 || d < best {
			best = d
		}
	}
	if best == 0 {
		return mitDefaultHedge
	}
	if best < mitMinHedge {
		best = mitMinHedge
	}
	return best
}

// breakerOpen reports whether the target is refusing traffic right now. At
// most one request per cool-down is let through as a half-open probe (the
// caller sees "closed" for that request; its outcome decides the breaker's
// fate).
func (m *Mitigation) breakerOpen(host, volume string) bool {
	br := m.brk[targetKey(host, volume)]
	if br == nil {
		return false
	}
	return br.Open(m.cl.sched.Now())
}

// ReadHedged reads from a mounted space with tail-latency hedging: if a
// mirror is registered and the primary doesn't answer within the hedge
// delay, a second read goes to the mirror and the first reply wins. With
// the primary's breaker open, the read skips straight to the mirror. If
// both fast paths fail, it falls back to the ClientLib's full retry/remount
// path so correctness never regresses below plain Read.
func (cl *ClientLib) ReadHedged(space SpaceID, off int64, length int, done func([]byte, error)) {
	m := cl.mit
	if m == nil {
		cl.Read(space, off, length, done)
		return
	}
	mirror, ok := m.mirrors[space]
	pm := cl.mounts[space]
	mm := cl.mounts[mirror]
	if !ok || pm == nil || !pm.mounted || mm == nil || !mm.mounted {
		cl.Read(space, off, length, done)
		return
	}
	finished := false
	finish := func(data []byte, err error) {
		if finished {
			return
		}
		finished = true
		done(data, err)
	}
	fallback := func() {
		if finished {
			return
		}
		cl.Read(space, off, length, finish)
	}
	if m.breakerOpen(pm.host, string(space)) {
		m.Redirects++
		m.cRedir.Inc()
		cl.ini.Read(mm.host, string(mirror), off, length, func(data []byte, err error) {
			if err != nil {
				fallback()
				return
			}
			finish(data, nil)
		})
		return
	}
	legsDown := 0
	legFailed := func() {
		if legsDown++; legsDown == 2 {
			fallback()
		}
	}
	fireMirror := func() {
		m.Hedges++
		m.cHedges.Inc()
		cl.ini.Read(mm.host, string(mirror), off, length, func(data []byte, err error) {
			if err != nil {
				legFailed()
				return
			}
			if !finished {
				m.HedgeWins++
				m.cWins.Inc()
			}
			finish(data, nil)
		})
	}
	hedged := false
	hedge := cl.sched.After(m.hedgeDelay(targetKey(pm.host, string(space)), targetKey(mm.host, string(mirror))), func() {
		if finished {
			return
		}
		hedged = true
		fireMirror()
	})
	cl.ini.Read(pm.host, string(space), off, length, func(data []byte, err error) {
		if err != nil {
			if !hedged {
				hedge.Cancel()
				// Primary failed before the hedge timer: fire the mirror
				// leg immediately rather than waiting out the delay.
				legsDown++ // the primary leg is down
				hedged = true
				fireMirror()
				return
			}
			legFailed()
			return
		}
		if !hedged {
			hedge.Cancel()
		}
		finish(data, nil)
	})
}
