package core

import (
	"fmt"
	"time"

	"ustore/internal/block"
	"ustore/internal/disk"
	"ustore/internal/fabric"
	"ustore/internal/usb"
)

// UnitRig is one deploy unit's hardware and per-host software: its fabric,
// USB binding, control plane, two Controllers, and the EndPoints of its
// hosts. A Cluster owns one or more rigs, all managed by the same Master
// quorum.
type UnitRig struct {
	ID      string
	Fabric  *fabric.Fabric
	Binding *fabric.Binding
	Plane   *fabric.ControlPlane
	Ctrls   []*Controller
}

// buildUnit assembles one deploy unit: disks, control plane, binding,
// controllers, endpoints, and co-location. Disk handles and EndPoints are
// registered into the cluster-wide maps (host names and disk IDs are
// namespaced per unit, so the maps stay flat).
func buildUnit(c *Cluster, unitID string, fcfg fabric.Config, masterNodes []string) (*UnitRig, error) {
	cfg := c.Cfg
	sched := c.Sched
	net := c.Net
	build := fabric.BuildSwitchHigh
	if cfg.FullTrees {
		build = fabric.BuildFullTrees
	}
	fab, err := build(fcfg)
	if err != nil {
		return nil, fmt.Errorf("building fabric for %s: %w", unitID, err)
	}
	rig := &UnitRig{ID: unitID, Fabric: fab}

	unitDisks := make(map[string]*disk.Disk)
	for _, id := range fab.Disks() {
		d := disk.New(sched, string(id), cfg.DiskParams, disk.AttachFabric)
		d.SetRecorder(cfg.Recorder)
		c.Disks[string(id)] = d
		unitDisks[string(id)] = d
	}
	RollingSpinUp(sched, unitDisks, cfg.BootSpinUpConcurrency, nil)

	hosts := fab.Hosts()
	mcuA := fabric.NewMicrocontroller("mcuA:"+unitID, hosts[0])
	mcuB := fabric.NewMicrocontroller("mcuB:"+unitID, hosts[1])
	rig.Plane = fabric.NewControlPlane(fab, mcuA, mcuB,
		func(d time.Duration, fn func()) { sched.After(d, fn) })
	rig.Plane.SetHostUp(func(h string) bool {
		ep := c.EndPoints[h]
		return ep != nil && !ep.IsDown()
	})

	limit := cfg.HostDeviceLimit
	if limit <= 0 {
		limit = usb.MaxDevicesPerTree
	}
	rig.Binding = fabric.NewBindingWithLimit(fab, limit,
		func() time.Duration { return sched.Now() },
		func(d time.Duration, fn func()) { sched.After(d, fn) })

	ctrlNames := []string{controllerNode(hosts[0]), controllerNode(hosts[1])}
	rig.Ctrls = []*Controller{
		NewController(net, hosts[0], 0, cfg, fab, rig.Plane, rig.Binding),
		NewController(net, hosts[1], 1, cfg, fab, rig.Plane, rig.Binding),
	}

	for _, h := range hosts {
		rig.Binding.HostController(h).SetRecorder(cfg.Recorder)
		c.EndPoints[h] = NewEndPoint(net, h, cfg, rig.Binding.HostController(h), unitDisks, masterNodes, ctrlNames)
		net.Colocate(endpointNode(h), h)
		net.Colocate(block.TargetNode(h), h)
		net.Colocate(controllerNode(h), h)
	}

	rig.Binding.OnStorageEnumerated = func(host string, d fabric.NodeID) {
		if ep := c.EndPoints[host]; ep != nil {
			ep.DiskEnumerated(string(d))
		}
	}
	rig.Binding.OnStorageDetached = func(host string, d fabric.NodeID) {
		if ep := c.EndPoints[host]; ep != nil {
			ep.DiskDetached(string(d))
		}
	}
	return rig, nil
}

// unitFabricConfig derives unit j's fabric config: unit 0 keeps the plain
// names, later units get the "u<j>." namespace.
func unitFabricConfig(cfg Config, j int) (string, fabric.Config) {
	fcfg := cfg.Fabric
	unitID := cfg.UnitID
	if j > 0 {
		prefix := fmt.Sprintf("u%d.", j)
		fcfg.Prefix = prefix
		unitID = fmt.Sprintf("unit%d", j)
		hosts := make([]string, len(cfg.Fabric.Hosts))
		for i, h := range cfg.Fabric.Hosts {
			hosts[i] = prefix + h
		}
		fcfg.Hosts = hosts
	}
	return unitID, fcfg
}

// unitInfos derives the Master's SysConf unit inventory from the rigs.
func unitInfos(rigs []*UnitRig) []UnitInfo {
	out := make([]UnitInfo, len(rigs))
	for i, rig := range rigs {
		hosts := rig.Fabric.Hosts()
		out[i] = UnitInfo{
			ID:          rig.ID,
			Hosts:       hosts,
			Controllers: []string{controllerNode(hosts[0]), controllerNode(hosts[1])},
		}
	}
	return out
}

// allGroups collects co-moving groups across every rig.
func allGroups(rigs []*UnitRig) [][]string {
	var out [][]string
	for _, rig := range rigs {
		for _, g := range rig.Fabric.CoMovingGroups() {
			var names []string
			for _, d := range g {
				names = append(names, string(d))
			}
			out = append(out, names)
		}
	}
	return out
}

// Rig returns the i-th deploy unit (0 is the primary one the legacy
// accessors point at).
func (c *Cluster) Rig(i int) *UnitRig { return c.UnitRigs[i] }

// RigOfHost returns the deploy unit containing host (nil if unknown).
func (c *Cluster) RigOfHost(host string) *UnitRig {
	for _, rig := range c.UnitRigs {
		for _, h := range rig.Fabric.Hosts() {
			if h == host {
				return rig
			}
		}
	}
	return nil
}
