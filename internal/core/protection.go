package core

import (
	"sort"
	"time"

	"ustore/internal/disk"
	"ustore/internal/obs"
	"ustore/internal/policy"
	"ustore/internal/simtime"
)

// Server-side overload protection: the policy package's primitives wired
// into a cluster. PR 5's mitigation stack protects a CLIENT from a gray
// server; this protects the SERVER from its clients — the restore-storm
// scenario where an incident makes every tenant recall archived data at
// once and the handful of spinning disks would otherwise drown.
//
// The stack has three gates in front of every data request:
//
//  1. per-tenant token buckets (rate + burst per tenant identity) — the
//     noisy tenant is clipped before it reaches shared queues;
//  2. a per-disk server-side circuit breaker (policy.Breaker, the same
//     state machine the client mitigation uses per target) — a disk whose
//     requests keep failing fast-fails new arrivals for a cool-down;
//  3. class-priority admission control (policy.Admission) with bounded
//     queues, deadline shedding, and one-IO-per-disk slots, so the
//     backlog lives where the shedder can see it instead of in disk
//     queues.
//
// Behind the gates a spin-up-aware autoscaler (policy.AutoScaler) watches
// per-disk demand and trades queue depth against the paper's power
// budget: cold disks with backlog spin up (bounded by the budget and an
// inrush cap), scaler-spun disks idle past the window spin back down.
//
// Independently, Config.Protection arms a per-caller token bucket at the
// Master's metadata RPC entry points (see master.go): recall storms hammer
// Lookup/Allocate too, and a throttled caller gets ErrThrottled instead of
// a seat in the run queue. A nil Config.Protection disables every piece,
// keeping default runs byte-identical.

// ProtectionConfig parameterizes the protection stack. The zero value of
// any field disables that piece.
type ProtectionConfig struct {
	// Classes are the admission classes (tenant tiers), best first.
	Classes []policy.ClassConfig
	// SlotsPerDisk caps in-flight requests per disk (0 = 1).
	SlotsPerDisk int
	// TenantRate / TenantBurst parameterize each tenant's token bucket
	// (requests/sec and bucket size). TenantRate 0 disables per-tenant
	// limiting.
	TenantRate  float64
	TenantBurst float64
	// MasterRate / MasterBurst parameterize the Master's per-caller
	// metadata-RPC bucket. MasterRate 0 disables master throttling.
	MasterRate  float64
	MasterBurst float64
	// Scale bounds the autoscaler. Scale.MaxSpinning 0 disables
	// autoscaling (readiness then just mirrors actual disk state).
	Scale policy.AutoScalerConfig
	// BreakerDisks arms the per-disk server-side breaker.
	BreakerDisks bool
}

// Protector is the cluster-level protection stack. Create one with
// NewProtector after the cluster boots; all methods run on the scheduler
// goroutine.
type Protector struct {
	c     *Cluster
	pc    ProtectionConfig
	sched *simtime.Scheduler
	adm   *policy.Admission
	scale *policy.AutoScaler

	tenants    map[string]*policy.TokenBucket
	tenantPool *policy.BucketPool
	brk        map[string]*policy.Breaker
	// managed marks disks the autoscaler spun up (its spin-down
	// candidates); the baseline active set is never scaled down.
	managed map[string]bool
	// idleSince records when a managed disk's demand last hit zero.
	idleSince map[string]simtime.Time

	cAdmitted  map[string]*obs.Counter
	cThrottled map[string]*obs.Counter
	cShed      map[string]map[string]*obs.Counter
	cSpinUps   *obs.Counter
	cSpinDowns *obs.Counter
	cOpens     *obs.Counter
	gDepth     *obs.Gauge
	gActive    *obs.Gauge

	// Counters for reports and tests.
	Throttled    map[string]uint64 // per class
	BreakerTrips map[string]uint64 // per class (fast-fails at an open breaker)
	SpinUps      uint64
	SpinDowns    uint64
	BreakerOpens uint64

	ticker *simtime.Ticker
}

// protTickInterval is the autoscale/deadline poll period: fine enough to
// shed on time against second-scale deadlines, coarse enough not to
// dominate the event budget.
const protTickInterval = 250 * time.Millisecond

// Reject reasons reported to Admit's reject callback (the admission
// sheds reuse policy's reason strings).
const (
	RejectThrottled = "throttled"
	RejectBreaker   = "breaker-open"
)

// NewProtector wires the protection stack over the cluster's disks and
// starts the autoscale/poll ticker. Disks currently spinning form the
// baseline active set: they are ready immediately and never scaled down.
func NewProtector(c *Cluster, pc ProtectionConfig) *Protector {
	rec := c.Cfg.Recorder
	p := &Protector{
		c:          c,
		pc:         pc,
		sched:      c.Sched,
		adm:        policy.NewAdmission(pc.Classes, pc.SlotsPerDisk),
		tenants:    make(map[string]*policy.TokenBucket),
		brk:        make(map[string]*policy.Breaker),
		managed:    make(map[string]bool),
		idleSince:  make(map[string]simtime.Time),
		cAdmitted:  make(map[string]*obs.Counter),
		cThrottled: make(map[string]*obs.Counter),
		cShed:      make(map[string]map[string]*obs.Counter),
		cSpinUps:   rec.Counter("policy", "spinups_total"),
		cSpinDowns: rec.Counter("policy", "spindowns_total"),
		cOpens:     rec.Counter("policy", "breaker_opens_total"),
		gDepth:     rec.Gauge("policy", "queue_depth"),
		gActive:    rec.Gauge("policy", "active_disks"),

		Throttled:    make(map[string]uint64),
		BreakerTrips: make(map[string]uint64),
	}
	if pc.TenantRate > 0 {
		p.tenantPool = policy.NewBucketPool(pc.TenantRate, pc.TenantBurst)
	}
	for _, cc := range pc.Classes {
		p.cAdmitted[cc.Name] = rec.Counter("policy", "admitted_total", obs.L("class", cc.Name))
		p.cThrottled[cc.Name] = rec.Counter("policy", "throttled_total", obs.L("class", cc.Name))
		p.cShed[cc.Name] = map[string]*obs.Counter{
			string(policy.ShedQueueFull): rec.Counter("policy", "shed_total",
				obs.L("class", cc.Name), obs.L("reason", string(policy.ShedQueueFull))),
			string(policy.ShedDeadline): rec.Counter("policy", "shed_total",
				obs.L("class", cc.Name), obs.L("reason", string(policy.ShedDeadline))),
		}
	}
	if pc.Scale.MaxSpinning > 0 {
		p.scale = policy.NewAutoScaler(pc.Scale)
	}
	now := p.sched.Now()
	for _, id := range p.diskIDs() {
		d := c.Disks[id]
		p.adm.SetReady(now, id, diskReady(d.State()))
		id := id
		d.OnStateChange(func(_, newState disk.State) {
			p.adm.SetReady(p.sched.Now(), id, diskReady(newState))
		})
	}
	p.ticker = p.sched.Every(protTickInterval, p.tick)
	return p
}

// diskReady: a disk can accept grants while spinning with the motor up.
func diskReady(s disk.State) bool {
	return s == disk.StateIdle || s == disk.StateActive
}

// diskIDs returns the cluster's disk IDs sorted (map-order independence).
func (p *Protector) diskIDs() []string {
	ids := make([]string, 0, len(p.c.Disks))
	for id := range p.c.Disks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Stop halts the autoscale ticker (end of run).
func (p *Protector) Stop() { p.ticker.Stop() }

// Admit gates one request for the given tenant/class against diskID.
// Exactly one of grant or reject fires, possibly synchronously: reject
// with RejectThrottled (tenant over rate), RejectBreaker (disk breaker
// open), or a policy shed reason; grant when the disk has a free slot
// (callers MUST call Done when the granted work finishes). Requests for
// cold disks queue — the autoscaler sees their demand and spins the disk
// up — until the class deadline sheds them.
func (p *Protector) Admit(class, tenant, diskID string, grant func(), reject func(reason string)) {
	now := p.sched.Now()
	if p.pc.TenantRate > 0 {
		tb := p.tenants[tenant]
		if tb == nil {
			tb = p.tenantPool.Get()
			p.tenants[tenant] = tb
		}
		if !tb.Allow(now) {
			p.Throttled[class]++
			p.cThrottled[class].Inc()
			reject(RejectThrottled)
			return
		}
	}
	if p.pc.BreakerDisks {
		if br := p.brk[diskID]; br != nil && br.Open(now) {
			p.BreakerTrips[class]++
			p.cShedFor(class, RejectBreaker).Inc()
			reject(RejectBreaker)
			return
		}
	}
	p.adm.Submit(now, class, diskID,
		func() {
			p.cAdmitted[class].Inc()
			grant()
		},
		func(r policy.ShedReason) {
			p.cShedFor(class, string(r)).Inc()
			reject(string(r))
		})
}

// cShedFor resolves (lazily for non-preregistered reasons) the shed
// counter for a class/reason pair.
func (p *Protector) cShedFor(class, reason string) *obs.Counter {
	m := p.cShed[class]
	if m == nil {
		m = make(map[string]*obs.Counter)
		p.cShed[class] = m
	}
	c, ok := m[reason]
	if !ok {
		c = p.c.Cfg.Recorder.Counter("policy", "shed_total",
			obs.L("class", class), obs.L("reason", reason))
		m[reason] = c
	}
	return c
}

// Done releases a granted request's disk slot and feeds the disk's
// breaker with the outcome.
func (p *Protector) Done(diskID string, err error) {
	now := p.sched.Now()
	if p.pc.BreakerDisks {
		br := p.brk[diskID]
		if br == nil {
			br = &policy.Breaker{}
			p.brk[diskID] = br
		}
		if err != nil {
			if br.OnFailure(now) {
				p.BreakerOpens++
				p.cOpens.Inc()
				p.c.Cfg.Recorder.Instant("policy", "breaker-open", "protector",
					obs.L("disk", diskID))
			}
		} else {
			br.OnSuccess()
		}
	}
	p.adm.Release(now, diskID)
}

// Stats returns the admission controller's per-class outcomes.
func (p *Protector) Stats() []policy.ClassStats { return p.adm.Stats() }

// QueueDepth returns the current admission backlog.
func (p *Protector) QueueDepth() int { return p.adm.QueueDepth() }

// tick runs deadline shedding, refreshes gauges, and executes one
// autoscale plan.
func (p *Protector) tick() {
	now := p.sched.Now()
	p.adm.Poll(now)
	p.gDepth.Set(float64(p.adm.QueueDepth()))

	demand := p.adm.Demand()
	active := 0
	var states []policy.DiskState
	for _, id := range p.diskIDs() {
		d := p.c.Disks[id]
		st := d.State()
		spinning := st == disk.StateIdle || st == disk.StateActive || st == disk.StateSpinningUp
		if spinning {
			active++
		}
		dem := demand[id] + d.QueueDepth()
		if p.managed[id] && dem == 0 {
			if _, ok := p.idleSince[id]; !ok {
				p.idleSince[id] = now
			}
		} else {
			delete(p.idleSince, id)
		}
		states = append(states, policy.DiskState{
			Name:               id,
			Spinning:           spinning,
			SpinningUp:         st == disk.StateSpinningUp,
			Demand:             dem,
			ScaleDownCandidate: p.managed[id],
			IdleSince:          p.idleSince[id],
		})
	}
	p.gActive.Set(float64(active))
	if p.scale == nil {
		return
	}
	up, down := p.scale.Plan(now, states)
	for _, id := range up {
		p.managed[id] = true
		p.SpinUps++
		p.cSpinUps.Inc()
		p.c.Cfg.Recorder.Instant("policy", "scale-up", "protector", obs.L("disk", id))
		p.c.Disks[id].SpinUp()
	}
	for _, id := range down {
		d := p.c.Disks[id]
		d.SpinDown()
		if d.State() == disk.StateSpunDown {
			delete(p.managed, id)
			delete(p.idleSince, id)
			p.SpinDowns++
			p.cSpinDowns.Inc()
			p.c.Cfg.Recorder.Instant("policy", "scale-down", "protector", obs.L("disk", id))
		}
	}
}
