package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"ustore/internal/fabric"
)

// boot builds a default cluster and settles long enough for initial
// enumeration, master election, and first heartbeats.
func boot(t *testing.T, mutate ...func(*Config)) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	for _, m := range mutate {
		m(&cfg)
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Settle(8 * time.Second)
	if c.ActiveMaster() == nil {
		t.Fatal("no active master after boot")
	}
	return c
}

func TestBootElectsOneActiveMaster(t *testing.T) {
	c := boot(t)
	active := 0
	for _, m := range c.Masters {
		if m.Active() {
			active++
		}
	}
	if active != 1 {
		t.Fatalf("active masters = %d", active)
	}
}

func TestBootSysStatSeesAllHostsAndDisks(t *testing.T) {
	c := boot(t)
	m := c.ActiveMaster()
	for _, h := range c.Fabric.Hosts() {
		if !m.HostOnline(h) {
			t.Fatalf("host %s not online in SysStat", h)
		}
	}
	for _, d := range c.Fabric.Disks() {
		if m.DiskHost(string(d)) == "" {
			t.Fatalf("disk %s unmapped in SysStat", d)
		}
	}
	// Balanced: 4 disks per host.
	for _, h := range c.Fabric.Hosts() {
		if got := c.DiskCountOn(h); got != 4 {
			t.Fatalf("host %s has %d disks", h, got)
		}
	}
}

func TestAllocateMountWriteRead(t *testing.T) {
	c := boot(t)
	cl := c.Client("client0", "backup-svc")
	var rep AllocateReply
	var allocErr error = errors.New("pending")
	cl.Allocate(1<<30, func(r AllocateReply, err error) { rep, allocErr = r, err })
	c.Settle(3 * time.Second)
	if allocErr != nil {
		t.Fatalf("allocate: %v", allocErr)
	}
	if rep.Space == "" || rep.DiskID == "" || rep.Host == "" {
		t.Fatalf("allocation incomplete: %+v", rep)
	}

	var mountErr error = errors.New("pending")
	cl.Mount(rep.Space, func(err error) { mountErr = err })
	c.Settle(3 * time.Second)
	if mountErr != nil {
		t.Fatalf("mount: %v", mountErr)
	}

	payload := []byte("ustore integration payload")
	var readBack []byte
	var ioErr error = errors.New("pending")
	cl.Write(rep.Space, 4096, payload, func(err error) {
		if err != nil {
			ioErr = err
			return
		}
		cl.Read(rep.Space, 4096, len(payload), func(data []byte, err error) {
			readBack, ioErr = data, err
		})
	})
	c.Settle(5 * time.Second)
	if ioErr != nil {
		t.Fatalf("io: %v", ioErr)
	}
	if !bytes.Equal(readBack, payload) {
		t.Fatalf("read %q, want %q", readBack, payload)
	}
}

func TestAllocationRulesServiceAffinityAndLocality(t *testing.T) {
	c := boot(t)
	// Same service twice: both allocations land on the same disk (§IV-A
	// rule 1).
	cl := c.Client("client0", "svcA")
	var first, second AllocateReply
	cl.Allocate(1<<30, func(r AllocateReply, err error) {
		if err != nil {
			t.Errorf("alloc1: %v", err)
			return
		}
		first = r
	})
	c.Settle(2 * time.Second)
	cl.Allocate(1<<30, func(r AllocateReply, err error) {
		if err != nil {
			t.Errorf("alloc2: %v", err)
			return
		}
		second = r
	})
	c.Settle(2 * time.Second)
	if first.DiskID == "" || first.DiskID != second.DiskID {
		t.Fatalf("service affinity violated: %s vs %s", first.DiskID, second.DiskID)
	}
	if second.Offset != first.Offset+first.Size {
		t.Fatalf("second offset = %d, want %d", second.Offset, first.Offset+first.Size)
	}

	// A client named after a host gets a disk local to that host (rule 2).
	clh3 := c.Client("h3", "svcB")
	var local AllocateReply
	clh3.Allocate(1<<30, func(r AllocateReply, err error) {
		if err != nil {
			t.Errorf("alloc3: %v", err)
			return
		}
		local = r
	})
	c.Settle(2 * time.Second)
	if local.Host != "h3" {
		t.Fatalf("locality violated: allocated on %s, client near h3", local.Host)
	}
}

func TestReleaseFreesDiskOwnership(t *testing.T) {
	c := boot(t)
	cl := c.Client("client0", "svcA")
	var rep AllocateReply
	cl.Allocate(1<<30, func(r AllocateReply, err error) { rep = r })
	c.Settle(2 * time.Second)
	var relErr error = errors.New("pending")
	cl.Release(rep.Space, func(err error) { relErr = err })
	c.Settle(2 * time.Second)
	if relErr != nil {
		t.Fatalf("release: %v", relErr)
	}
	// Lookup must now fail.
	var lookErr error
	cl.Lookup(rep.Space, func(_ LookupReply, err error) { lookErr = err })
	c.Settle(2 * time.Second)
	if lookErr == nil {
		t.Fatal("lookup of released space succeeded")
	}
}

func TestHostFailureRecovery(t *testing.T) {
	// The headline experiment: kill one of 4 hosts; the Master detects it,
	// re-homes its 4 disks via the Controller, the disks re-enumerate on
	// surviving hosts, and exports reappear — in seconds (paper: 5.8s).
	c := boot(t)
	cl := c.Client("client0", "svcA")
	var rep AllocateReply
	cl.Allocate(1<<30, func(r AllocateReply, err error) { rep = r })
	c.Settle(2 * time.Second)
	var mountErr error = errors.New("pending")
	cl.Mount(rep.Space, func(err error) { mountErr = err })
	c.Settle(2 * time.Second)
	if mountErr != nil {
		t.Fatal(mountErr)
	}

	victim := rep.Host
	var dead string
	var took time.Duration
	m := c.ActiveMaster()
	m.OnHostDead = func(h string) { dead = h }
	m.OnFailoverDone = func(h string, d time.Duration) { took = d }
	c.CrashHost(victim)
	c.Settle(20 * time.Second)

	if dead != victim {
		t.Fatalf("detected dead host %q, want %q", dead, victim)
	}
	if took == 0 {
		t.Fatal("failover never completed")
	}
	if took > 10*time.Second {
		t.Fatalf("failover took %v, want seconds (paper: 5.8s)", took)
	}
	// Every disk has left the victim.
	for _, d := range c.Fabric.Disks() {
		if h := m.DiskHost(string(d)); h == victim || h == "" {
			t.Fatalf("disk %s still on %q", d, h)
		}
	}
	// Client IO works again after transparent remount.
	payload := []byte("post failover")
	var ioErr error = errors.New("pending")
	cl.Write(rep.Space, 0, payload, func(err error) { ioErr = err })
	c.Settle(10 * time.Second)
	if ioErr != nil {
		t.Fatalf("write after failover: %v", ioErr)
	}
	if cl.Remounts == 0 {
		t.Fatal("client never remounted")
	}
	if got := cl.MountedOn(rep.Space); got == victim || got == "" {
		t.Fatalf("still mounted on %q", got)
	}
}

func TestFailoverUsesBackupControllerWhenPrimaryHostDies(t *testing.T) {
	// The primary controller runs on h1. Killing h1 forces the Master to
	// fall back to the backup controller on h2, whose MCU takes over.
	c := boot(t)
	m := c.ActiveMaster()
	var took time.Duration
	m.OnFailoverDone = func(h string, d time.Duration) { took = d }
	c.CrashHost("h1")
	c.Settle(30 * time.Second)
	if took == 0 {
		t.Fatal("failover via backup controller never completed")
	}
	for _, d := range c.Fabric.Disks() {
		if h := m.DiskHost(string(d)); h == "h1" || h == "" {
			t.Fatalf("disk %s still on %q after h1 death", d, h)
		}
	}
	if c.Ctrls[1].Executed() == 0 {
		t.Fatal("backup controller executed nothing")
	}
}

func TestMasterFailoverStandbyTakesOver(t *testing.T) {
	c := boot(t)
	active := c.ActiveMaster()
	cl := c.Client("client0", "svcA")
	var rep AllocateReply
	cl.Allocate(1<<30, func(r AllocateReply, err error) { rep = r })
	c.Settle(2 * time.Second)

	active.Stop()
	c.Settle(15 * time.Second)
	next := c.ActiveMaster()
	if next == nil || next == active {
		t.Fatal("no standby took over")
	}
	// StorAlloc survived: the new master resolves the old allocation.
	var look LookupReply
	var lookErr error = errors.New("pending")
	cl.Lookup(rep.Space, func(r LookupReply, err error) { look, lookErr = r, err })
	c.Settle(3 * time.Second)
	if lookErr != nil {
		t.Fatalf("lookup after master failover: %v", lookErr)
	}
	if look.DiskID != rep.DiskID || look.Size != rep.Size {
		t.Fatalf("allocation lost: %+v vs %+v", look, rep)
	}
	// And the cluster still does IO.
	var mountErr error = errors.New("pending")
	cl.Mount(rep.Space, func(err error) { mountErr = err })
	c.Settle(3 * time.Second)
	if mountErr != nil {
		t.Fatalf("mount via new master: %v", mountErr)
	}
}

func TestControllerConflictReporting(t *testing.T) {
	// Moving one disk of a leaf-hub group without Force must surface
	// Algorithm 1's conflict to the caller.
	c := boot(t)
	m := c.ActiveMaster()
	d0 := c.Fabric.Disks()[0]
	cur := m.DiskHost(string(d0))
	var target string
	for _, h := range c.Fabric.Hosts() {
		if h != cur {
			target = h
			break
		}
	}
	var gotErr error
	m.executeOnController(0, 0, ExecuteArgs{Pairs: []fabric.DiskHost{{Disk: d0, Host: target}}},
		func(err error) { gotErr = err })
	c.Settle(3 * time.Second)
	if gotErr == nil {
		t.Fatal("conflicting single-disk move succeeded")
	}
	if c.Ctrls[0].Conflicts() == 0 {
		t.Fatal("controller did not count the conflict")
	}
}

func TestServiceDiskPowerControl(t *testing.T) {
	c := boot(t)
	cl := c.Client("client0", "svcA")
	var rep AllocateReply
	cl.Allocate(1<<30, func(r AllocateReply, err error) { rep = r })
	c.Settle(2 * time.Second)

	var pwrErr error = errors.New("pending")
	cl.SetDiskPower(rep.DiskID, false, func(err error) { pwrErr = err })
	c.Settle(3 * time.Second)
	if pwrErr != nil {
		t.Fatalf("spin down: %v", pwrErr)
	}
	d := c.Disks[rep.DiskID]
	if d.State().String() != "spun-down" {
		t.Fatalf("disk state = %v, want spun-down", d.State())
	}

	// Another service may not touch it.
	other := c.Client("client1", "svcB")
	var otherErr error
	other.SetDiskPower(rep.DiskID, true, func(err error) { otherErr = err })
	c.Settle(2 * time.Second)
	if otherErr == nil {
		t.Fatal("foreign service controlled the disk")
	}

	// The owner spins it back up.
	pwrErr = errors.New("pending")
	cl.SetDiskPower(rep.DiskID, true, func(err error) { pwrErr = err })
	c.Settle(10 * time.Second)
	if pwrErr != nil {
		t.Fatalf("spin up: %v", pwrErr)
	}
	if d.State().String() != "idle" {
		t.Fatalf("disk state = %v, want idle", d.State())
	}
}

func TestAutomaticSpinDownAfterIdle(t *testing.T) {
	c := boot(t, func(cfg *Config) { cfg.SpinDownIdle = 5 * time.Second })
	c.Settle(30 * time.Second)
	spunDown := 0
	for _, d := range c.Disks {
		if d.State().String() == "spun-down" {
			spunDown++
		}
	}
	if spunDown != len(c.Disks) {
		t.Fatalf("%d of %d idle disks spun down", spunDown, len(c.Disks))
	}
}
