package core

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func bootMulti(t *testing.T, units int) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Units = units
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Settle(8 * time.Second)
	if c.ActiveMaster() == nil {
		t.Fatal("no active master")
	}
	return c
}

func TestMultiUnitBoot(t *testing.T) {
	c := bootMulti(t, 2)
	if len(c.UnitRigs) != 2 {
		t.Fatalf("rigs = %d", len(c.UnitRigs))
	}
	if len(c.Disks) != 32 {
		t.Fatalf("disks = %d, want 32 across two units", len(c.Disks))
	}
	if len(c.EndPoints) != 8 {
		t.Fatalf("endpoints = %d, want 8", len(c.EndPoints))
	}
	m := c.ActiveMaster()
	// Every host from both units heartbeats.
	for _, rig := range c.UnitRigs {
		for _, h := range rig.Fabric.Hosts() {
			if !m.HostOnline(h) {
				t.Fatalf("host %s offline in SysStat", h)
			}
			if got := c.DiskCountOn(h); got != 4 {
				t.Fatalf("host %s has %d disks, want 4", h, got)
			}
		}
	}
	// Second unit's names are namespaced.
	if c.RigOfHost("u1.h1") == nil || c.RigOfHost("h1") == nil {
		t.Fatal("RigOfHost failed to resolve unit hosts")
	}
	if c.RigOfHost("u1.h1") == c.RigOfHost("h1") {
		t.Fatal("namespaced host resolved to the wrong unit")
	}
}

func TestMultiUnitAllocationAndIO(t *testing.T) {
	c := bootMulti(t, 2)
	// A client near a unit-1 host allocates there (locality crosses the
	// namespace correctly).
	cl := c.Client("u1.h2-agent", "svc-u1")
	var rep AllocateReply
	var fail error = errors.New("pending")
	cl.Allocate(1<<30, func(r AllocateReply, err error) { rep, fail = r, err })
	c.Settle(3 * time.Second)
	if fail != nil {
		t.Fatalf("allocate: %v", fail)
	}
	if rep.Host != "u1.h2" {
		t.Fatalf("allocation on %s, want locality u1.h2", rep.Host)
	}
	cl.Mount(rep.Space, func(err error) { fail = err })
	c.Settle(3 * time.Second)
	if fail != nil {
		t.Fatalf("mount: %v", fail)
	}
	payload := []byte("unit one data")
	var got []byte
	cl.Write(rep.Space, 0, payload, func(err error) {
		if err != nil {
			t.Errorf("write: %v", err)
			return
		}
		cl.Read(rep.Space, 0, len(payload), func(b []byte, err error) {
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			got = b
		})
	})
	c.Settle(5 * time.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip failed: %q", got)
	}
}

func TestMultiUnitFailoverStaysInUnit(t *testing.T) {
	c := bootMulti(t, 2)
	m := c.ActiveMaster()
	var done time.Duration
	m.OnFailoverDone = func(h string, took time.Duration) { done = took }
	// Kill a unit-1 host: its disks must move to unit-1 survivors only.
	c.CrashHost("u1.h3")
	c.Settle(30 * time.Second)
	if done == 0 {
		t.Fatal("unit-1 failover never completed")
	}
	rig := c.RigOfHost("u1.h1")
	for _, d := range rig.Fabric.Disks() {
		h := m.DiskHost(string(d))
		if h == "u1.h3" || h == "" {
			t.Fatalf("disk %s still on %q", d, h)
		}
		if c.RigOfHost(h) != rig {
			t.Fatalf("disk %s crossed units to %s", d, h)
		}
	}
	// Unit 0 untouched.
	for _, h := range c.UnitRigs[0].Fabric.Hosts() {
		if got := c.DiskCountOn(h); got != 4 {
			t.Fatalf("unit-0 host %s disturbed: %d disks", h, got)
		}
	}
	// Unit-1's own controllers did the work, not unit-0's.
	u1Exec := c.UnitRigs[1].Ctrls[0].Executed() + c.UnitRigs[1].Ctrls[1].Executed()
	if u1Exec == 0 {
		t.Fatal("unit-1 controllers executed nothing")
	}
}

func TestMultiUnitIndependentFailovers(t *testing.T) {
	c := bootMulti(t, 2)
	m := c.ActiveMaster()
	completions := 0
	m.OnFailoverDone = func(h string, took time.Duration) { completions++ }
	// Hosts in both units die at once; both failovers proceed in parallel
	// (each unit has its own fabric lock and controllers).
	c.CrashHost("h4")
	c.CrashHost("u1.h4")
	c.Settle(40 * time.Second)
	if completions != 2 {
		t.Fatalf("completions = %d, want both units recovered", completions)
	}
	for _, d := range c.Fabric.Disks() {
		if h := m.DiskHost(string(d)); h == "h4" || h == "" {
			t.Fatalf("unit-0 disk %s on %q", d, h)
		}
	}
	for _, d := range c.UnitRigs[1].Fabric.Disks() {
		if h := m.DiskHost(string(d)); h == "u1.h4" || h == "" {
			t.Fatalf("unit-1 disk %s on %q", d, h)
		}
	}
}
