package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"ustore/internal/block"
	"ustore/internal/model"
	"ustore/internal/simnet"
	"ustore/internal/simtime"
)

// ErrNotMounted is returned for IO on a space the ClientLib has not
// mounted.
var ErrNotMounted = errors.New("core: space not mounted")

// MountEvent notifies the upper layer of a mount state change (§IV-D:
// "provides notification call backs to notify the upper layer of disk
// status changes").
type MountEvent struct {
	Space SpaceID
	// Host is the space's (new) serving host.
	Host string
	// Remounted is true when this event is a transparent failover remount
	// rather than the initial mount.
	Remounted bool
}

// mount is the state of one mounted space.
type mount struct {
	space      SpaceID
	host       string
	size       int64
	mounted    bool
	remounting bool
}

// ClientLib is the client library of §IV-D: storage management calls
// against the Master, a directory lookup, block IO through the initiator,
// and automatic remount when storage moves after a failover.
type ClientLib struct {
	name    string
	service string
	cfg     Config
	sched   *simtime.Scheduler
	rpc     *simnet.RPCNode
	ini     *block.Initiator
	masters []string

	mounts map[SpaceID]*mount
	active string // believed active master replica name
	mit    *Mitigation

	// OnMount receives mount and remount notifications.
	OnMount func(MountEvent)

	// Remounts counts transparent failover remounts (for experiments).
	Remounts uint64
}

// NewClientLib creates a client named name (its network identity) acting
// for the given service.
func NewClientLib(net *simnet.Network, name, service string, cfg Config, masters []string) *ClientLib {
	cl := &ClientLib{
		name:    name,
		service: service,
		cfg:     cfg,
		sched:   net.Scheduler(),
		rpc:     simnet.NewRPCNode(net, "cl:"+name),
		ini:     block.NewInitiator(net, name),
		masters: masters,
		mounts:  make(map[SpaceID]*mount),
	}
	return cl
}

// Service returns the service name this client allocates under.
func (cl *ClientLib) Service() string { return cl.service }

// callMaster tries the believed-active master, then the rest, until one
// accepts (a standby returns ErrNotActive-equivalent text). Each replica is
// called with retry so a lossy or flapping link doesn't masquerade as a
// rejected request: resends reuse the request ID, and the master's RPC dedup
// guarantees the operation executes at most once even if the first send got
// through and only the reply was lost.
func (cl *ClientLib) callMaster(method string, args any, size int, done func(any, error)) {
	order := make([]string, 0, len(cl.masters)+1)
	if cl.active != "" {
		order = append(order, masterNode(cl.active))
	}
	order = append(order, cl.masters...)
	retry := simnet.RetryOpts{
		Attempts: 2,
		Timeout:  cl.cfg.RPCTimeoutOrDefault(),
		Backoff:  cl.cfg.RPCTimeoutOrDefault() / 8,
	}
	var try func(i int, lastErr error)
	try = func(i int, lastErr error) {
		if i >= len(order) {
			done(nil, fmt.Errorf("core: no active master: %v", lastErr))
			return
		}
		cl.rpc.CallWithRetry(order[i], method, args, size, retry, func(res any, err error) {
			if err == nil {
				done(res, nil)
				return
			}
			if IsThrottled(err) {
				// The active master deliberately shed this request; retrying
				// against standbys (who would just redirect) or re-sending is
				// exactly the retry amplification overload protection exists
				// to stop. Fail fast to the caller.
				done(nil, err)
				return
			}
			try(i+1, err)
		})
	}
	try(0, nil)
}

// IsThrottled reports whether err is the Master's ErrThrottled rejection.
// Errors cross the RPC boundary as re-wrapped strings, so this matches on
// text rather than errors.Is.
func IsThrottled(err error) bool {
	return err != nil && strings.Contains(err.Error(), ErrThrottled.Error())
}

// Allocate requests size bytes of storage ("applying for new storage
// space", §IV-D) and returns the allocation.
func (cl *ClientLib) Allocate(size int64, done func(AllocateReply, error)) {
	tok := cl.cfg.History.Invoke(model.Op{Kind: model.OpAllocate, Client: cl.name})
	cl.callMaster("Allocate", AllocateArgs{Service: cl.service, Size: size, ClientHost: cl.locality()}, 64,
		func(res any, err error) {
			if err != nil {
				done(AllocateReply{}, err)
				return
			}
			rep := res.(AllocateReply)
			cl.cfg.History.Return(tok, func(op *model.Op) {
				op.Space, op.Disk, op.Offset, op.Size = string(rep.Space), rep.DiskID, rep.Offset, rep.Size
			})
			done(rep, nil)
		})
}

// locality derives the client's nearest host hint. Clients named after a
// host (e.g. HDFS datanodes co-located on hosts) get that host's disks.
// Multi-unit clusters prefix hosts with "u<j>."; the longest matching host
// name wins so "u1.h1-agent" maps to "u1.h1", not "h1".
func (cl *ClientLib) locality() string {
	units := cl.cfg.Units
	if units < 1 {
		units = 1
	}
	best := ""
	for j := 0; j < units; j++ {
		for _, h := range cl.cfg.Fabric.Hosts {
			if j > 0 {
				h = fmt.Sprintf("u%d.%s", j, h)
			}
			if cl.name == h || (len(cl.name) > len(h) && cl.name[:len(h)] == h) {
				if len(h) > len(best) {
					best = h
				}
			}
		}
	}
	return best
}

// Release frees an allocation.
func (cl *ClientLib) Release(space SpaceID, done func(error)) {
	delete(cl.mounts, space)
	tok := cl.cfg.History.Invoke(model.Op{Kind: model.OpRelease, Client: cl.name, Space: string(space)})
	cl.callMaster("Release", ReleaseArgs{Space: space}, 64, func(_ any, err error) {
		if err == nil {
			cl.cfg.History.Return(tok, nil)
		}
		done(err)
	})
}

// Lookup resolves a space's current host (the directory service, §IV-D).
func (cl *ClientLib) Lookup(space SpaceID, done func(LookupReply, error)) {
	tok := cl.cfg.History.Invoke(model.Op{Kind: model.OpLookup, Client: cl.name, Space: string(space)})
	cl.callMaster("Lookup", LookupArgs{Space: space}, 64, func(res any, err error) {
		if err != nil {
			done(LookupReply{}, err)
			return
		}
		rep := res.(LookupReply)
		cl.cfg.History.Return(tok, func(op *model.Op) {
			op.Host, op.Disk, op.Offset, op.Size = rep.Host, rep.DiskID, rep.Offset, rep.Size
		})
		done(rep, nil)
	})
}

// mountBudget bounds Mount's retries: a freshly allocated space's target
// may still be in iSCSI setup on the host, and a space being failed over
// has no target at all for a few seconds.
const mountBudget = 15 * time.Second

// Mount looks up and logs in to a space, retrying while the export is
// still being set up. After a successful mount, Read and Write retry
// transparently across failovers.
func (cl *ClientLib) Mount(space SpaceID, done func(error)) {
	tok := cl.cfg.History.Invoke(model.Op{Kind: model.OpMount, Client: cl.name, Space: string(space)})
	deadline := cl.sched.Now() + mountBudget
	var attempt func()
	attempt = func() {
		cl.Lookup(space, func(rep LookupReply, err error) {
			retry := func(cause error) {
				if cl.sched.Now() >= deadline {
					done(cause)
					return
				}
				cl.sched.After(300*time.Millisecond, attempt)
			}
			if err != nil {
				retry(err)
				return
			}
			if rep.Host == "" {
				retry(fmt.Errorf("core: space %s not attached anywhere", space))
				return
			}
			cl.ini.Login(rep.Host, string(space), func(size int64, err error) {
				if err != nil {
					retry(err)
					return
				}
				m := &mount{space: space, host: rep.Host, size: size, mounted: true}
				cl.mounts[space] = m
				cl.cfg.History.Return(tok, func(op *model.Op) { op.Host = rep.Host })
				if cl.OnMount != nil {
					cl.OnMount(MountEvent{Space: space, Host: rep.Host})
				}
				done(nil)
			})
		})
	}
	attempt()
}

// MountedOn returns the host a space is currently mounted from ("" if not
// mounted).
func (cl *ClientLib) MountedOn(space SpaceID) string {
	if m, ok := cl.mounts[space]; ok && m.mounted {
		return m.host
	}
	return ""
}

// Read reads from a mounted space, remounting and retrying on failure
// until the deadline (default: 30s of retries — "temporary high latency",
// §IV-D).
func (cl *ClientLib) Read(space SpaceID, off int64, length int, done func([]byte, error)) {
	cl.ReadWithBudget(space, off, length, retryBudget, done)
}

// ReadWithBudget is Read with an explicit retry budget. Redundancy-aware
// callers (e.g. an erasure-coded store that can reconstruct from parity)
// use short budgets so a missing shard fails fast instead of riding out a
// full failover.
func (cl *ClientLib) ReadWithBudget(space SpaceID, off int64, length int, budget time.Duration, done func([]byte, error)) {
	cl.withRetry(space, budget, done, func(m *mount, attempt func(error)) {
		cl.ini.Read(m.host, string(space), off, length, func(data []byte, err error) {
			if err != nil {
				attempt(err)
				return
			}
			done(data, nil)
		})
	})
}

// Write writes to a mounted space with the same retry semantics as Read.
func (cl *ClientLib) Write(space SpaceID, off int64, data []byte, done func(error)) {
	cl.withRetry(space, retryBudget, func(_ []byte, err error) { done(err) }, func(m *mount, attempt func(error)) {
		cl.ini.Write(m.host, string(space), off, data, func(err error) {
			if err != nil {
				attempt(err)
				return
			}
			done(nil)
		})
	})
}

// retryBudget bounds how long IO retries across remounts before giving up.
const retryBudget = 30 * time.Second

// withRetry runs op against the space's mount, remounting and retrying on
// error until the budget is exhausted.
func (cl *ClientLib) withRetry(space SpaceID, budget time.Duration, done func([]byte, error), op func(m *mount, attempt func(error))) {
	m, ok := cl.mounts[space]
	if !ok {
		cl.sched.After(0, func() { done(nil, fmt.Errorf("%w: %s", ErrNotMounted, space)) })
		return
	}
	deadline := cl.sched.Now() + budget
	var attempt func()
	attempt = func() {
		op(m, func(err error) {
			if cl.sched.Now() >= deadline {
				done(nil, fmt.Errorf("core: giving up on %s: %w", space, err))
				return
			}
			// Storage unreachable: consult the Master and remount
			// ("retrieve the new host IP from the Master and remount the
			// storage automatically", §IV-D).
			cl.remount(m, func(remErr error) {
				if remErr != nil {
					// Master may not have completed failover yet; back
					// off and retry.
					cl.sched.After(300*time.Millisecond, attempt)
					return
				}
				attempt()
			})
		})
	}
	attempt()
}

// remount re-resolves the space and logs in at its new host.
func (cl *ClientLib) remount(m *mount, done func(error)) {
	if m.remounting {
		done(fmt.Errorf("core: remount already in progress"))
		return
	}
	m.remounting = true
	// Recorded per attempt (after the in-progress guard, so the steady
	// 300ms retry loop doesn't flood the history with guard bounces);
	// failed attempts stay pending and the checker drops them.
	tok := cl.cfg.History.Invoke(model.Op{Kind: model.OpRemount, Client: cl.name, Space: string(m.space)})
	cl.Lookup(m.space, func(rep LookupReply, err error) {
		if err != nil || rep.Host == "" {
			m.remounting = false
			if err == nil {
				err = fmt.Errorf("core: %s not attached anywhere yet", m.space)
			}
			done(err)
			return
		}
		cl.ini.Login(rep.Host, string(m.space), func(size int64, err error) {
			m.remounting = false
			if err != nil {
				done(err)
				return
			}
			m.host = rep.Host
			m.mounted = true
			cl.Remounts++
			cl.cfg.History.Return(tok, func(op *model.Op) { op.Host = rep.Host })
			if cl.OnMount != nil {
				cl.OnMount(MountEvent{Space: m.space, Host: rep.Host, Remounted: true})
			}
			done(nil)
		})
	})
}

// SetDiskPower asks the Master to spin the service's disk up or down
// (§IV-F's interface for services that know their workload).
func (cl *ClientLib) SetDiskPower(diskID string, up bool, done func(error)) {
	cl.callMaster("DiskPower", DiskPowerArgs{Service: cl.service, DiskID: diskID, Up: up}, 64,
		func(_ any, err error) { done(err) })
}
