package core

import (
	"bytes"
	"errors"
	"sort"
	"testing"
	"time"

	"ustore/internal/block"
	"ustore/internal/ec"
)

// TestScrubberRepairsLatentSectorErrorFromParity lays a k=2,m=1 erasure
// group across three spaces (distinct services, so distinct disks), injects
// a latent sector error into one data shard, and checks the pipeline end to
// end: the idle-window scrubber's verify-read trips the block CRC, the
// repair hook reconstructs the range from the surviving shards through the
// normal client read path, the rewrite lands, and the block reads back
// clean with the original bytes.
func TestScrubberRepairsLatentSectorErrorFromParity(t *testing.T) {
	c := boot(t, func(cfg *Config) { cfg.ScrubInterval = 100 * time.Millisecond })

	const shardBlocks = 2
	shardSize := int64(shardBlocks) * int64(block.ChecksumBlockSize)
	code, err := ec.New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 2*shardSize)
	for i := range payload {
		payload[i] = byte(i*7 + 3)
	}
	shards := code.Split(payload)
	parity, err := code.Encode(shards)
	if err != nil {
		t.Fatal(err)
	}
	all := append(shards, parity...) // data0, data1, parity0

	names := []string{"data0", "data1", "parity0"}
	reps := make([]AllocateReply, len(all))
	cls := make([]*ClientLib, len(all))
	for i := range all {
		cls[i] = c.Client("ecclient-"+names[i], "ecsvc-"+names[i])
		allocErr := errors.New("pending")
		cls[i].Allocate(shardSize, func(r AllocateReply, err error) { reps[i], allocErr = r, err })
		c.Settle(3 * time.Second)
		if allocErr != nil {
			t.Fatalf("allocate shard %s: %v", names[i], allocErr)
		}
		mountErr := errors.New("pending")
		cls[i].Mount(reps[i].Space, func(err error) { mountErr = err })
		c.Settle(3 * time.Second)
		if mountErr != nil {
			t.Fatalf("mount shard %s: %v", names[i], mountErr)
		}
		ioErr := errors.New("pending")
		cls[i].Write(reps[i].Space, 0, all[i], func(err error) { ioErr = err })
		c.Settle(3 * time.Second)
		if ioErr != nil {
			t.Fatalf("write shard %s: %v", names[i], ioErr)
		}
	}

	// Repair hook on every endpoint: map the damaged export back to its
	// shard index, read the same range of the other shards, reconstruct.
	repair := func(ex ExportArgs, off int64, length int, done func([]byte, bool)) {
		idx := -1
		for i := range reps {
			if reps[i].Space == ex.Space {
				idx = i
			}
		}
		if idx < 0 {
			done(nil, false)
			return
		}
		got := make([][]byte, len(all))
		pending := 0
		for j := range reps {
			if j == idx {
				continue
			}
			j := j
			pending++
			cls[j].Read(reps[j].Space, off, length, func(data []byte, err error) {
				pending--
				if err == nil {
					got[j] = data
				}
				if pending > 0 {
					return
				}
				if rerr := code.Reconstruct(got); rerr != nil {
					done(nil, false)
					return
				}
				done(got[idx], true)
			})
		}
	}
	hosts := make([]string, 0, len(c.EndPoints))
	for name := range c.EndPoints {
		hosts = append(hosts, name)
	}
	sort.Strings(hosts)
	for _, name := range hosts {
		if sc := c.EndPoints[name].Scrubber(); sc != nil {
			sc.SetRepairFunc(repair)
		}
	}

	// A latent sector error rots the second block of data shard 0.
	target := reps[0]
	c.Disks[target.DiskID].CorruptSector(target.Offset + int64(block.ChecksumBlockSize))

	// The scrubber sweeps one block per tick during idle windows; wait for
	// it to find and fix the rot.
	scrubStats := func() (s ScrubStats) {
		for _, name := range hosts {
			if sc := c.EndPoints[name].Scrubber(); sc != nil {
				st := sc.Stats()
				s.Scanned += st.Scanned
				s.BadBlocks += st.BadBlocks
				s.Repaired += st.Repaired
				s.Unrepaired += st.Unrepaired
			}
		}
		return s
	}
	deadline := c.Sched.Now() + 2*time.Minute
	for c.Sched.Now() < deadline && scrubStats().Repaired == 0 {
		c.Settle(time.Second)
	}
	st := scrubStats()
	if st.BadBlocks == 0 {
		t.Fatalf("scrubber never detected the latent sector error: %+v", st)
	}
	if st.Repaired == 0 {
		t.Fatalf("scrubber detected but did not repair: %+v", st)
	}
	if st.Unrepaired != 0 {
		t.Fatalf("scrubber gave up on %d blocks: %+v", st.Unrepaired, st)
	}

	// Read-back through the client path: no checksum error, original bytes.
	var got []byte
	ioErr := errors.New("pending")
	cls[0].Read(reps[0].Space, int64(block.ChecksumBlockSize), block.ChecksumBlockSize,
		func(data []byte, err error) { got, ioErr = data, err })
	c.Settle(5 * time.Second)
	if ioErr != nil {
		t.Fatalf("read-back after repair: %v", ioErr)
	}
	want := all[0][block.ChecksumBlockSize : 2*block.ChecksumBlockSize]
	if !bytes.Equal(got, want) {
		t.Fatal("repaired block content does not match the original shard data")
	}
}

// TestScrubberCountsUnrepairableWithoutRepairSource checks the degraded
// path: with no repair hook, detected rot is counted as unrepaired and the
// block keeps failing reads with a checksum error rather than returning bad
// bytes.
func TestScrubberCountsUnrepairableWithoutRepairSource(t *testing.T) {
	c := boot(t, func(cfg *Config) { cfg.ScrubInterval = 100 * time.Millisecond })
	cl := c.Client("client0", "svcA")
	var rep AllocateReply
	allocErr := errors.New("pending")
	cl.Allocate(int64(block.ChecksumBlockSize), func(r AllocateReply, err error) { rep, allocErr = r, err })
	c.Settle(3 * time.Second)
	if allocErr != nil {
		t.Fatal(allocErr)
	}
	mountErr := errors.New("pending")
	cl.Mount(rep.Space, func(err error) { mountErr = err })
	c.Settle(3 * time.Second)
	if mountErr != nil {
		t.Fatal(mountErr)
	}
	data := make([]byte, block.ChecksumBlockSize)
	for i := range data {
		data[i] = byte(i)
	}
	ioErr := errors.New("pending")
	cl.Write(rep.Space, 0, data, func(err error) { ioErr = err })
	c.Settle(3 * time.Second)
	if ioErr != nil {
		t.Fatal(ioErr)
	}

	c.Disks[rep.DiskID].CorruptSector(rep.Offset)
	var st ScrubStats
	deadline := c.Sched.Now() + 2*time.Minute
	for c.Sched.Now() < deadline {
		st = ScrubStats{}
		for _, ep := range c.EndPoints {
			if sc := ep.Scrubber(); sc != nil {
				s := sc.Stats()
				st.BadBlocks += s.BadBlocks
				st.Unrepaired += s.Unrepaired
				st.Repaired += s.Repaired
			}
		}
		if st.Unrepaired > 0 {
			break
		}
		c.Settle(time.Second)
	}
	if st.BadBlocks == 0 || st.Unrepaired == 0 {
		t.Fatalf("rot not detected/counted without repair source: %+v", st)
	}
	if st.Repaired != 0 {
		t.Fatalf("repair reported with no repair source: %+v", st)
	}

	readErr := errors.New("pending")
	cl.ReadWithBudget(rep.Space, 0, block.ChecksumBlockSize, 2*time.Second,
		func(_ []byte, err error) { readErr = err })
	c.Settle(10 * time.Second)
	if !errors.Is(readErr, block.ErrChecksum) {
		t.Fatalf("read of rotted block returned %v, want checksum error", readErr)
	}
}
