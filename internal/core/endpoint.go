package core

import (
	"fmt"
	"sort"
	"time"

	"ustore/internal/block"
	"ustore/internal/disk"
	"ustore/internal/model"
	"ustore/internal/obs"
	"ustore/internal/simnet"
	"ustore/internal/simtime"
	"ustore/internal/usb"
)

// EndPoint runs on each host connected to a deploy unit (§IV-B). It
// heartbeats host and disk status to the Master, reports the local USB tree
// to the Controllers, and exposes allocated spaces as block targets.
type EndPoint struct {
	host  string
	cfg   Config
	sched *simtime.Scheduler
	rpc   *simnet.RPCNode
	tgt   *block.Target
	hc    *usb.HostController

	// disks maps disk ID -> device handle for disks physically in the
	// unit; attached tracks which are currently enumerated on this host.
	disks    map[string]*disk.Disk
	attached map[string]bool

	// exports tracks live exports: space -> disk; volumes holds the local
	// Volume serving each export (the scrubber sweeps these directly).
	exports map[SpaceID]ExportArgs
	volumes map[SpaceID]block.Volume

	masters     []string
	controllers []string
	hbSeq       uint64
	usbSeq      uint64
	activeHint  string
	down        bool

	pm    *PowerManager
	scrub *Scrubber

	// cHeartbeats is the pre-resolved heartbeats_total handle (nil-safe),
	// resolved once instead of per heartbeat tick.
	cHeartbeats *obs.Counter
}

// endpointNode returns an EndPoint's RPC node name.
func endpointNode(host string) string { return "ep:" + host }

// NewEndPoint creates host's EndPoint. masters and controllers are the RPC
// node names to report to.
func NewEndPoint(net *simnet.Network, host string, cfg Config, hc *usb.HostController,
	disks map[string]*disk.Disk, masters, controllers []string) *EndPoint {
	ep := &EndPoint{
		host:        host,
		cfg:         cfg,
		sched:       net.Scheduler(),
		rpc:         simnet.NewRPCNode(net, endpointNode(host)),
		tgt:         block.NewTarget(net, host),
		hc:          hc,
		disks:       disks,
		attached:    make(map[string]bool),
		exports:     make(map[SpaceID]ExportArgs),
		volumes:     make(map[SpaceID]block.Volume),
		masters:     masters,
		controllers: controllers,
		cHeartbeats: cfg.Recorder.Counter("core", "heartbeats_total"),
	}
	ep.rpc.RegisterAsync("Export", ep.handleExport)
	ep.rpc.Register("Unexport", ep.handleUnexport)
	ep.rpc.Register("DiskPower", ep.handleDiskPower)
	if cfg.SpinDownIdle > 0 {
		ep.pm = NewPowerManager(ep, cfg.SpinDownIdle)
	}
	if cfg.ScrubInterval > 0 {
		ep.scrub = NewScrubber(ep, cfg.ScrubInterval)
	}
	ep.heartbeatLoop()
	return ep
}

// Host returns the host name.
func (ep *EndPoint) Host() string { return ep.host }

// Target exposes the block target (tests).
func (ep *EndPoint) Target() *block.Target { return ep.tgt }

// PowerManager returns the endpoint's power manager (nil if disabled).
func (ep *EndPoint) PowerManager() *PowerManager { return ep.pm }

// AttachedDisks returns the enumerated disk IDs, sorted.
func (ep *EndPoint) AttachedDisks() []string {
	out := make([]string, 0, len(ep.attached))
	for id := range ep.attached {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Down crashes or restores the host (EndPoint and its block target stop
// responding; heartbeats cease).
func (ep *EndPoint) Down(down bool) {
	ep.down = down
	ep.rpc.Node().SetDown(down)
	ep.tgt.Down(down)
}

// IsDown reports the crash state.
func (ep *EndPoint) IsDown() bool { return ep.down }

// DiskEnumerated is called (by the cluster wiring) when the fabric binding
// enumerates a storage device on this host.
func (ep *EndPoint) DiskEnumerated(diskID string) {
	if ep.attached[diskID] {
		return
	}
	ep.attached[diskID] = true
	ep.cfg.History.Point(model.Op{Kind: model.OpAttach, Client: ep.host, Disk: diskID, Host: ep.host})
	d := ep.disks[diskID]
	if d != nil {
		d.SetInterconnect(disk.AttachFabric)
	}
	ep.sendUSBReport()
	ep.sendHeartbeat() // prompt the Master so exports happen quickly
}

// DiskDetached is called when a storage device disappears from this host.
func (ep *EndPoint) DiskDetached(diskID string) {
	if !ep.attached[diskID] {
		return
	}
	delete(ep.attached, diskID)
	ep.cfg.History.Point(model.Op{Kind: model.OpDetach, Client: ep.host, Disk: diskID, Host: ep.host})
	// Revoke exports living on the vanished disk (sorted for determinism).
	// InjectStaleLease is the deliberate protocol bug for the model
	// checker's mutation self-test: the revocation is skipped, so this host
	// keeps serving spaces whose disk has physically moved away.
	if !ep.cfg.InjectStaleLease {
		for _, space := range ep.exportedSpaces() {
			if ep.exports[space].DiskID == diskID {
				ep.tgt.Revoke(string(space))
				delete(ep.exports, space)
				delete(ep.volumes, space)
				ep.cfg.History.Point(model.Op{Kind: model.OpRevoke, Client: ep.host, Space: string(space), Host: ep.host})
			}
		}
	}
	ep.sendUSBReport()
	ep.sendHeartbeat()
}

// diskState reports a disk's SysStat state.
func (ep *EndPoint) diskState(diskID string) DiskState {
	d := ep.disks[diskID]
	if d == nil {
		return DiskMissing
	}
	switch d.State() {
	case disk.StatePoweredOff:
		return DiskPoweredOff
	case disk.StateSpunDown:
		return DiskSpunDown
	default:
		return DiskOnline
	}
}

// --- Heartbeats (§IV-B) ---

func (ep *EndPoint) heartbeatLoop() {
	ep.sched.After(ep.cfg.HeartbeatInterval, func() {
		if !ep.down {
			ep.sendHeartbeat()
		}
		ep.heartbeatLoop()
	})
}

func (ep *EndPoint) sendHeartbeat() {
	if ep.down {
		return
	}
	ep.hbSeq++
	ep.cHeartbeats.Inc()
	var infos []DiskInfo
	for _, id := range ep.AttachedDisks() {
		info := DiskInfo{ID: id, State: ep.diskState(id)}
		if d := ep.disks[id]; d != nil {
			info.Health = d.Health()
		}
		infos = append(infos, info)
	}
	hb := HeartbeatArgs{Host: ep.host, Seq: ep.hbSeq, Disks: infos}
	// Send to the believed active master first, falling back to all. Each
	// send retries once on loss (same request ID; the master's RPC dedup
	// absorbs duplicates), so one dropped message doesn't cost a whole
	// heartbeat cycle of failure-detection budget.
	targets := ep.masters
	if ep.activeHint != "" {
		targets = append([]string{masterNode(ep.activeHint)}, ep.masters...)
	}
	retry := simnet.RetryOpts{
		Attempts: 2,
		Timeout:  ep.cfg.RPCTimeoutOrDefault(),
		Backoff:  ep.cfg.RPCTimeoutOrDefault() / 8,
	}
	sent := make(map[string]bool)
	for _, t := range targets {
		if sent[t] {
			continue
		}
		sent[t] = true
		ep.rpc.CallWithRetry(t, "Heartbeat", hb, 128, retry, func(res any, err error) {
			if err != nil {
				return
			}
			if rep, ok := res.(HeartbeatReply); ok && !rep.Active && rep.ActiveHint != "" {
				ep.activeHint = rep.ActiveHint
			}
		})
	}
}

// --- USB Monitor (§IV-B) ---

func (ep *EndPoint) sendUSBReport() {
	if ep.down {
		return
	}
	ep.usbSeq++
	var storage, hubs []string
	for _, e := range ep.hc.Tree() {
		switch e.Class {
		case usb.ClassStorage:
			storage = append(storage, e.ID)
		case usb.ClassHub:
			hubs = append(hubs, e.ID)
		}
	}
	rep := USBReportArgs{Host: ep.host, Storage: storage, Hubs: hubs, Seq: ep.usbSeq}
	for _, ctl := range ep.controllers {
		ep.rpc.Call(ctl, "USBReport", rep, 256, ep.cfg.RPCTimeoutOrDefault(), func(any, error) {})
	}
}

// --- Export management (§IV-B: iSCSI target) ---

// ExportSetupDelay models iSCSI target/LUN creation time on the host (the
// middle component of the paper's Figure 6 decomposition, ~flat per batch).
const ExportSetupDelay = 600 * time.Millisecond

func (ep *EndPoint) handleExport(from string, args any, reply func(any, error)) {
	ex := args.(ExportArgs)
	rec := ep.cfg.Recorder
	span := rec.Begin("core", "export", ep.host,
		obs.L("space", string(ex.Space)), obs.L("disk", ex.DiskID))
	if !ep.attached[ex.DiskID] {
		span.End(obs.L("status", "not-attached"))
		reply(nil, fmt.Errorf("core: disk %s not attached to %s", ex.DiskID, ep.host))
		return
	}
	d := ep.disks[ex.DiskID]
	// Exports verify per-block CRCs end to end unless the deployment
	// explicitly opts out; the CRC sidecar lives on the disk itself, so a
	// space keeps its checksums when it fails over to another host.
	var vol block.Volume
	var err error
	if ep.cfg.DisableChecksums {
		vol, err = block.NewDiskVolume(d, ex.Offset, ex.Size)
	} else {
		vol, err = block.NewChecksumDiskVolume(d, ex.Offset, ex.Size)
	}
	if err != nil {
		span.End(obs.L("status", "bad-extent"))
		reply(nil, fmt.Errorf("exporting %s: %w", ex.Space, err))
		return
	}
	ep.sched.After(ExportSetupDelay, func() {
		if ep.down || !ep.attached[ex.DiskID] {
			span.End(obs.L("status", "lost-disk"))
			reply(nil, fmt.Errorf("core: %s lost %s during export setup", ep.host, ex.DiskID))
			return
		}
		ep.tgt.Export(string(ex.Space), vol)
		ep.exports[ex.Space] = ex
		ep.volumes[ex.Space] = vol
		ep.cfg.History.Point(model.Op{Kind: model.OpExport, Client: ep.host, Space: string(ex.Space), Disk: ex.DiskID, Host: ep.host})
		rec.Counter("core", "exports_total").Inc()
		span.End(obs.L("status", "ok"))
		reply(struct{}{}, nil)
	})
}

func (ep *EndPoint) handleUnexport(from string, args any) (any, error) {
	u := args.(UnexportArgs)
	ep.tgt.Revoke(string(u.Space))
	delete(ep.exports, u.Space)
	delete(ep.volumes, u.Space)
	ep.cfg.History.Point(model.Op{Kind: model.OpRevoke, Client: ep.host, Space: string(u.Space), Host: ep.host})
	return struct{}{}, nil
}

// handleDiskPower executes a service's spin command forwarded by the
// Master (§IV-F).
func (ep *EndPoint) handleDiskPower(from string, args any) (any, error) {
	p := args.(DiskPowerArgs)
	d := ep.disks[p.DiskID]
	if d == nil || !ep.attached[p.DiskID] {
		return nil, fmt.Errorf("core: disk %s not attached to %s", p.DiskID, ep.host)
	}
	if p.Up {
		d.SpinUp()
	} else {
		d.SpinDown()
	}
	ep.cfg.History.Point(model.Op{Kind: model.OpPower, Client: ep.host, Disk: p.DiskID, Host: ep.host, Up: p.Up})
	return struct{}{}, nil
}

// Exports returns the number of live exports.
func (ep *EndPoint) Exports() int { return len(ep.exports) }

// Scrubber returns the endpoint's background scrubber (nil if disabled).
func (ep *EndPoint) Scrubber() *Scrubber { return ep.scrub }

// exportedSpaces returns the live exports in sorted order (deterministic
// iteration for the scrubber's cursor).
func (ep *EndPoint) exportedSpaces() []SpaceID {
	out := make([]SpaceID, 0, len(ep.exports))
	for sp := range ep.exports {
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasExport reports whether a space is currently exported here.
func (ep *EndPoint) HasExport(space SpaceID) bool {
	_, ok := ep.exports[space]
	return ok
}
