package core

import (
	"errors"
	"testing"
	"time"
)

// TestPartitionedMasterFailsOverAndHealsToSingleActive partitions the active
// master replica's machine away from the quorum: a standby must take over
// (its coord session expires and the leader znode frees up), writes must
// keep flowing through the new active while plain standbys keep rejecting
// them, and after the partition heals the stale ex-master must depose itself
// so exactly one active remains.
func TestPartitionedMasterFailsOverAndHealsToSingleActive(t *testing.T) {
	c := boot(t)
	old := c.ActiveMaster()
	mach := "mach-" + old.Name()
	c.Net.IsolateMachine(mach)
	c.Settle(15 * time.Second) // session TTL + expiry sweep + re-election

	var next *Master
	for _, m := range c.Masters {
		if m != old && m.Active() {
			next = m
		}
	}
	if next == nil {
		t.Fatal("no standby took over while the active master was partitioned")
	}

	// The control plane still serves writes through the new active.
	cl := c.Client("client0", "svcA")
	var rep AllocateReply
	var allocErr error = errors.New("pending")
	cl.Allocate(1<<30, func(r AllocateReply, err error) { rep, allocErr = r, err })
	c.Settle(5 * time.Second)
	if allocErr != nil {
		t.Fatalf("allocate during master partition: %v", allocErr)
	}

	// A non-active replica rejects storage-management calls outright.
	var standby *Master
	for _, m := range c.Masters {
		if m != old && m != next {
			standby = m
		}
	}
	if _, err := standby.handleAllocate("cl:probe", AllocateArgs{Service: "svcB", Size: 1 << 20}); !errors.Is(err, ErrNotActive) {
		t.Fatalf("standby allocate error = %v, want ErrNotActive", err)
	}

	// Heal: the stale leader catches up on the deletion of its znode and
	// steps down; the quorum converges on exactly one active master.
	c.Net.RejoinMachine(mach)
	c.Settle(15 * time.Second)
	active := 0
	for _, m := range c.Masters {
		if m.Active() {
			active++
		}
	}
	if active != 1 {
		t.Fatalf("after heal, %d active masters, want 1", active)
	}
	if old.Active() {
		t.Fatal("partitioned ex-master still active after heal")
	}

	// The allocation made during the partition survived the churn.
	var lookErr error = errors.New("pending")
	cl.Lookup(rep.Space, func(_ LookupReply, err error) { lookErr = err })
	c.Settle(3 * time.Second)
	if lookErr != nil {
		t.Fatalf("lookup after heal: %v", lookErr)
	}
	if err := c.ActiveMaster().ValidateAllocations(); err != nil {
		t.Fatalf("allocation records inconsistent after heal: %v", err)
	}
}

// TestDuplicateDeliveryIdempotency turns on heavy message duplication across
// every control-plane path — host heartbeats to the masters and the client's
// RPC links — and checks the request-ID dedup keeps everything exactly-once:
// allocations stay contiguous and non-overlapping, IO stays correct, and the
// election stays single-leader.
func TestDuplicateDeliveryIdempotency(t *testing.T) {
	c := boot(t)
	machines := append([]string(nil), c.Fabric.Hosts()...)
	for _, m := range c.Masters {
		machines = append(machines, "mach-"+m.Name())
	}
	// The (un-colocated) client's RPC and initiator nodes are machines of
	// their own.
	machines = append(machines, "client0", "cl:client0")
	for i := 0; i < len(machines); i++ {
		for j := i + 1; j < len(machines); j++ {
			c.Net.SetMachineDupRate(machines[i], machines[j], 0.5)
		}
	}

	cl := c.Client("client0", "svcA")
	var first, second AllocateReply
	var err1, err2 error = errors.New("pending"), errors.New("pending")
	cl.Allocate(1<<30, func(r AllocateReply, err error) { first, err1 = r, err })
	c.Settle(3 * time.Second)
	cl.Allocate(1<<30, func(r AllocateReply, err error) { second, err2 = r, err })
	c.Settle(3 * time.Second)
	if err1 != nil || err2 != nil {
		t.Fatalf("allocate under duplication: %v / %v", err1, err2)
	}
	if first.Space == second.Space {
		t.Fatalf("duplicate delivery produced the same space twice: %s", first.Space)
	}
	// Same service, so both land on one disk: any re-executed Allocate would
	// show up as a gap or overlap in the offsets.
	if second.Offset != first.Offset+first.Size {
		t.Fatalf("second allocation at offset %d, want %d (duplicated request re-executed?)",
			second.Offset, first.Offset+first.Size)
	}

	var mountErr error = errors.New("pending")
	cl.Mount(first.Space, func(err error) { mountErr = err })
	c.Settle(3 * time.Second)
	if mountErr != nil {
		t.Fatalf("mount under duplication: %v", mountErr)
	}
	payload := []byte("dup-tolerant payload")
	var got []byte
	var ioErr error = errors.New("pending")
	cl.Write(first.Space, 0, payload, func(err error) {
		if err != nil {
			ioErr = err
			return
		}
		cl.Read(first.Space, 0, len(payload), func(data []byte, err error) { got, ioErr = data, err })
	})
	c.Settle(5 * time.Second)
	if ioErr != nil {
		t.Fatalf("io under duplication: %v", ioErr)
	}
	if string(got) != string(payload) {
		t.Fatalf("read %q, want %q", got, payload)
	}

	// Let duplicated heartbeats and keepalives churn for a while; the
	// cluster must stay consistent.
	c.Settle(30 * time.Second)
	active := 0
	for _, m := range c.Masters {
		if m.Active() {
			active++
		}
	}
	if active != 1 {
		t.Fatalf("%d active masters under duplication, want 1", active)
	}
	if err := c.ActiveMaster().ValidateAllocations(); err != nil {
		t.Fatalf("allocation records inconsistent under duplication: %v", err)
	}
}
