package core

import (
	"errors"
	"testing"
	"time"

	"ustore/internal/fabric"
)

// TestControllerRollbackOnVerifyTimeout: if the receiving host cannot
// report the switched disks (its EndPoint is down), the Controller must
// time out, turn the switches back, and report the failure (§IV-C step 3).
func TestControllerRollbackOnVerifyTimeout(t *testing.T) {
	c := boot(t, func(cfg *Config) { cfg.VerifyTimeout = 3 * time.Second })
	m := c.ActiveMaster()
	src := m.DiskHost("disk00")
	var dst string
	for _, h := range c.Fabric.Hosts() {
		if h != src {
			dst = h
			break
		}
	}
	// Take the destination EndPoint down WITHOUT the Master noticing in
	// time (we issue the command directly to the controller).
	c.EndPoints[dst].Down(true)

	before := make(map[fabric.NodeID]int)
	for _, sw := range c.Fabric.Switches() {
		before[sw] = c.Fabric.Node(sw).Sel
	}
	cmd := ExecuteArgs{Force: true}
	for i := 0; i < 4; i++ {
		cmd.Pairs = append(cmd.Pairs, fabric.DiskHost{Disk: fabric.DiskID(i), Host: dst})
	}
	var execErr error
	m.executeOnController(0, 0, cmd, func(err error) { execErr = err })
	c.Settle(30 * time.Second)
	if execErr == nil {
		t.Fatal("command to unreachable destination succeeded")
	}
	if c.Ctrls[0].Rollbacks() == 0 {
		t.Fatal("controller did not roll back")
	}
	// Switches restored.
	for sw, sel := range before {
		if got := c.Fabric.Node(sw).Sel; got != sel {
			t.Fatalf("switch %s left at %d after rollback (was %d)", sw, got, sel)
		}
	}
	// The disks are back on the source host's tree.
	c.EndPoints[dst].Down(false)
	c.Settle(10 * time.Second)
	if got := m.DiskHost("disk00"); got != src {
		t.Fatalf("disk00 on %s after rollback, want %s", got, src)
	}
}

// TestDoubleHostFailure: two of four hosts die (sequentially); all 16
// disks end up on the two survivors and IO still works.
func TestDoubleHostFailure(t *testing.T) {
	c := boot(t)
	m := c.ActiveMaster()
	// h3 and h4 run no controller and no master-critical service.
	c.CrashHost("h3")
	c.Settle(20 * time.Second)
	c.CrashHost("h4")
	c.Settle(30 * time.Second)
	for _, d := range c.Fabric.Disks() {
		h := m.DiskHost(string(d))
		if h != "h1" && h != "h2" {
			t.Fatalf("disk %s on %q after double failure", d, h)
		}
	}
	if c.DiskCountOn("h1")+c.DiskCountOn("h2") != 16 {
		t.Fatalf("disks lost: h1=%d h2=%d", c.DiskCountOn("h1"), c.DiskCountOn("h2"))
	}
	// Fresh allocation and IO still work on the shrunken cluster.
	cl := c.Client("survivor", "svc")
	var rep AllocateReply
	var fail error = errors.New("pending")
	cl.Allocate(1<<30, func(r AllocateReply, err error) { rep, fail = r, err })
	c.Settle(3 * time.Second)
	if fail != nil {
		t.Fatalf("allocate after double failure: %v", fail)
	}
	cl.Mount(rep.Space, func(err error) { fail = err })
	c.Settle(5 * time.Second)
	if fail != nil {
		t.Fatalf("mount after double failure: %v", fail)
	}
}

// TestHostRecoveryRejoins: a crashed host that comes back resumes
// heartbeating and becomes allocatable again (its disks stay where the
// failover put them — no automatic rebalance, like the paper).
func TestHostRecoveryRejoins(t *testing.T) {
	c := boot(t)
	m := c.ActiveMaster()
	c.CrashHost("h4")
	c.Settle(20 * time.Second)
	if m.HostOnline("h4") {
		t.Fatal("h4 still online in SysStat")
	}
	c.RestoreHost("h4")
	c.Settle(5 * time.Second)
	if !m.HostOnline("h4") {
		t.Fatal("restored host not online")
	}
	if got := c.DiskCountOn("h4"); got != 0 {
		t.Fatalf("restored host has %d disks, want 0 (no auto-rebalance)", got)
	}
	// Operator rebalances deliberately via a topology command.
	cmd := ExecuteArgs{Force: true}
	for _, g := range c.Fabric.CoMovingGroups() {
		if m.DiskHost(string(g[0])) == "h1" {
			for _, d := range g {
				cmd.Pairs = append(cmd.Pairs, fabric.DiskHost{Disk: d, Host: "h4"})
			}
			break
		}
	}
	if len(cmd.Pairs) == 0 {
		t.Skip("no group on h1 to rebalance")
	}
	var execErr error = errors.New("pending")
	m.ExecuteTopology(cmd, func(err error) { execErr = err })
	c.Settle(20 * time.Second)
	if execErr != nil {
		t.Fatalf("rebalance: %v", execErr)
	}
	if got := c.DiskCountOn("h4"); got == 0 {
		t.Fatal("rebalance moved nothing to h4")
	}
}

// TestMasterFailoverDuringHostFailover: the active master dies right
// after detecting a host failure; the new active master must finish the
// job (its own detection loop re-discovers the dead host).
func TestMasterFailoverDuringHostFailover(t *testing.T) {
	c := boot(t)
	m := c.ActiveMaster()
	died := make(chan struct{}, 1)
	m.OnHostDead = func(h string) {
		// Kill the master at the worst moment.
		m.Stop()
		select {
		case died <- struct{}{}:
		default:
		}
	}
	c.CrashHost("h3")
	c.Settle(60 * time.Second)
	next := c.ActiveMaster()
	if next == nil || next == m {
		t.Fatal("no standby master took over")
	}
	for _, d := range c.Fabric.Disks() {
		if h := next.DiskHost(string(d)); h == "h3" || h == "" {
			t.Fatalf("disk %s still on %q — failover orphaned by master death", d, h)
		}
	}
}

// TestFabricLockSerializesCommands: two concurrent topology commands to
// the same controller — the second must be refused while the first holds
// the fabric lock (§IV-C step 1).
func TestFabricLockSerializesCommands(t *testing.T) {
	c := boot(t)
	m := c.ActiveMaster()
	mk := func(group int, dst string) ExecuteArgs {
		cmd := ExecuteArgs{Force: true}
		for i := 0; i < 4; i++ {
			cmd.Pairs = append(cmd.Pairs, fabric.DiskHost{Disk: fabric.DiskID(group*4 + i), Host: dst})
		}
		return cmd
	}
	var err1, err2 error = errors.New("pending"), errors.New("pending")
	dst1 := "h2"
	if m.DiskHost("disk00") == "h2" {
		dst1 = "h3"
	}
	dst2 := "h4"
	if m.DiskHost("disk04") == "h4" {
		dst2 = "h3"
	}
	m.executeOnController(0, 0, mk(0, dst1), func(err error) { err1 = err })
	m.executeOnController(0, 0, mk(1, dst2), func(err error) { err2 = err })
	c.Settle(30 * time.Second)
	if err1 != nil {
		t.Fatalf("first command failed: %v", err1)
	}
	if err2 == nil || !errors.Is(err2, ErrFabricLocked) && err2.Error() != ErrFabricLocked.Error() {
		t.Fatalf("second command err = %v, want fabric-locked refusal", err2)
	}
}

// TestAllocationExhaustion: allocating more than the unit holds returns
// ErrNoSpace rather than overcommitting.
func TestAllocationExhaustion(t *testing.T) {
	c := boot(t)
	cl := c.Client("greedy", "big-svc")
	diskCap := c.Cfg.DiskParams.CapacityBytes
	// One allocation larger than any disk.
	var fail error
	cl.Allocate(diskCap+1, func(_ AllocateReply, err error) { fail = err })
	c.Settle(3 * time.Second)
	if fail == nil {
		t.Fatal("oversized allocation succeeded")
	}
	// Fill one disk with two 1.4TB allocations (service affinity keeps
	// them on one disk); the third must spill to another disk.
	var first, third AllocateReply
	size := diskCap/2 - 1<<30
	cl.Allocate(size, func(r AllocateReply, err error) {
		if err != nil {
			t.Errorf("alloc1: %v", err)
		}
		first = r
	})
	c.Settle(2 * time.Second)
	cl.Allocate(size, func(r AllocateReply, err error) {
		if err != nil {
			t.Errorf("alloc2: %v", err)
		}
	})
	c.Settle(2 * time.Second)
	cl.Allocate(size, func(r AllocateReply, err error) {
		if err != nil {
			t.Errorf("alloc3: %v", err)
		}
		third = r
	})
	c.Settle(2 * time.Second)
	if third.DiskID == first.DiskID {
		t.Fatalf("third allocation overcommitted disk %s", first.DiskID)
	}
}

// TestHeartbeatSeqStaleRejected: an out-of-order heartbeat must not
// regress SysStat.
func TestHeartbeatSeqStaleRejected(t *testing.T) {
	c := boot(t)
	m := c.ActiveMaster()
	// Deliver a forged stale heartbeat claiming h1 has no disks.
	stale := HeartbeatArgs{Host: "h1", Seq: 1, Disks: nil}
	if _, err := m.handleHeartbeat("ep:h1", stale); err != nil {
		t.Fatal(err)
	}
	// SysStat still shows h1's disks (the live EndPoint's seq is higher).
	if got := c.DiskCountOn("h1"); got == 0 {
		t.Fatal("stale heartbeat wiped SysStat")
	}
}

// TestStaleUSBReportIgnored: an out-of-order USB report must not regress
// the Controller's integrated fabric view.
func TestStaleUSBReportIgnored(t *testing.T) {
	c := boot(t)
	ctl := c.Ctrls[0]
	fresh := USBReportArgs{Host: "h9", Storage: []string{"diskX"}, Seq: 10}
	if _, err := ctl.handleUSBReport("ep:h9", fresh); err != nil {
		t.Fatal(err)
	}
	if !ctl.VisibleOn("h9", "diskX") {
		t.Fatal("fresh report not applied")
	}
	stale := USBReportArgs{Host: "h9", Storage: nil, Seq: 3}
	if _, err := ctl.handleUSBReport("ep:h9", stale); err != nil {
		t.Fatal(err)
	}
	if !ctl.VisibleOn("h9", "diskX") {
		t.Fatal("stale report regressed the USB view")
	}
}

// TestClientLibMountUnknownSpace: mounting a space that was never
// allocated fails within the mount budget rather than hanging.
func TestClientLibMountUnknownSpace(t *testing.T) {
	c := boot(t)
	cl := c.Client("client0", "svcA")
	var mountErr error
	done := false
	cl.Mount(SpaceID("unit0/disk99/sp999"), func(err error) { mountErr = err; done = true })
	c.Settle(30 * time.Second)
	if !done {
		t.Fatal("mount of unknown space never returned")
	}
	if mountErr == nil {
		t.Fatal("mount of unknown space succeeded")
	}
}
