package core

import (
	"time"

	"ustore/internal/disk"
	"ustore/internal/obs"
)

// PowerManager implements §IV-F's default power-saving policy on one host:
// a disk idle longer than the threshold is spun down; if a disk spins up
// and down too frequently, the threshold is raised (doubled, up to a cap)
// to stop thrashing. Upper-layer services with better workload knowledge
// use the Master's DiskPower API instead.
type PowerManager struct {
	ep *EndPoint

	// initial is the configured idle threshold; per-disk thresholds adapt
	// upward from it.
	initial time.Duration
	// threshold holds the adapted per-disk idle threshold.
	threshold map[string]time.Duration
	// spinUpsAt records recent spin-up times per disk for thrash
	// detection.
	spinUpsAt map[string][]time.Duration

	// SpinDowns counts spin-downs issued (ablation metric).
	SpinDowns uint64
}

// Thrash policy: more than thrashCount spin-ups within thrashWindow doubles
// the disk's idle threshold, up to maxThresholdFactor times the initial.
const (
	thrashWindow       = 10 * time.Minute
	thrashCount        = 3
	maxThresholdFactor = 16
	pmScanInterval     = 1 * time.Second
)

// NewPowerManager starts the policy loop for ep with the given initial
// idle threshold.
func NewPowerManager(ep *EndPoint, idle time.Duration) *PowerManager {
	pm := &PowerManager{
		ep:        ep,
		initial:   idle,
		threshold: make(map[string]time.Duration),
		spinUpsAt: make(map[string][]time.Duration),
	}
	pm.loop()
	return pm
}

// Threshold returns a disk's current adapted idle threshold.
func (pm *PowerManager) Threshold(diskID string) time.Duration {
	if t, ok := pm.threshold[diskID]; ok {
		return t
	}
	return pm.initial
}

func (pm *PowerManager) loop() {
	pm.ep.sched.After(pmScanInterval, func() {
		if !pm.ep.down {
			pm.scan()
		}
		pm.loop()
	})
}

func (pm *PowerManager) scan() {
	now := pm.ep.sched.Now()
	for _, id := range pm.ep.AttachedDisks() {
		d := pm.ep.disks[id]
		if d == nil {
			continue
		}
		pm.noteSpinUps(id, d)
		since, idle := d.IdleSince()
		if !idle {
			continue
		}
		if now-since >= pm.Threshold(id) {
			d.SpinDown()
			if d.State() == disk.StateSpunDown {
				pm.SpinDowns++
				rec := pm.ep.cfg.Recorder
				rec.Counter("core", "spindowns_total").Inc()
				rec.Instant("core", "spin-down", pm.ep.host,
					obs.L("disk", id), obs.L("idle", (now-since).String()))
			}
		}
	}
}

// noteSpinUps tracks the disk's spin-up counter and adapts the threshold
// when it thrashes ("if it is detected that the disk is spun up and down
// too frequently, the host will increase the time interval", §IV-F).
func (pm *PowerManager) noteSpinUps(id string, d *disk.Disk) {
	ups := pm.spinUpsAt[id]
	total := d.SpinUpCount()
	for len(ups) < total {
		ups = append(ups, pm.ep.sched.Now())
	}
	// Drop events outside the window.
	cut := 0
	for cut < len(ups) && pm.ep.sched.Now()-ups[cut] > thrashWindow {
		cut++
	}
	ups = ups[cut:]
	pm.spinUpsAt[id] = ups
	if len(ups) > thrashCount {
		cur := pm.Threshold(id)
		next := cur * 2
		if next > pm.initial*maxThresholdFactor {
			next = pm.initial * maxThresholdFactor
		}
		if next != cur {
			pm.threshold[id] = next
			rec := pm.ep.cfg.Recorder
			rec.Counter("core", "threshold_raises_total").Inc()
			rec.Instant("core", "idle-threshold-raised", pm.ep.host,
				obs.L("disk", id), obs.L("threshold", next.String()))
		}
	}
}
