package core

import (
	"bytes"
	"testing"
	"time"

	"ustore/internal/disk"
	"ustore/internal/simtime"
)

// powerRig boots a cluster with the endpoint power manager enabled, then
// allocates, mounts, and writes one space, returning everything a power
// test needs: the client, the space, the backing disk, and its serving
// host.
func powerRig(t *testing.T, idle time.Duration) (*Cluster, *ClientLib, SpaceID, *disk.Disk, string) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.SpinDownIdle = idle
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Settle(10 * time.Second)
	if c.ActiveMaster() == nil {
		t.Fatal("no active master")
	}
	cl := c.Client("pwr-c1", "pwrsvc")
	var rep AllocateReply
	var fail error
	cl.Allocate(1<<20, func(r AllocateReply, err error) { rep, fail = r, err })
	c.Settle(2 * time.Second)
	if fail != nil {
		t.Fatalf("allocate: %v", fail)
	}
	cl.Mount(rep.Space, func(err error) { fail = err })
	c.Settle(2 * time.Second)
	if fail != nil {
		t.Fatalf("mount: %v", fail)
	}
	cl.Write(rep.Space, 0, bytes.Repeat([]byte{0xee}, 4096), func(err error) { fail = err })
	c.Settle(2 * time.Second)
	if fail != nil {
		t.Fatalf("write: %v", fail)
	}
	d := c.Disks[rep.DiskID]
	if d == nil {
		t.Fatalf("no disk %s", rep.DiskID)
	}
	host := c.ActiveMaster().DiskHost(rep.DiskID)
	return c, cl, rep.Space, d, host
}

// TestPowerManagerSpinsDownIdleDiskAndIOWakesIt covers §IV-F's default
// policy end to end: an idle disk crosses the threshold and spins down
// (power manager path), and the next client read transparently spins it
// back up — the IO just sees spin-up latency, not an error.
func TestPowerManagerSpinsDownIdleDiskAndIOWakesIt(t *testing.T) {
	c, cl, space, d, host := powerRig(t, 30*time.Second)

	c.Settle(45 * time.Second)
	if got := d.State(); got != disk.StateSpunDown {
		t.Fatalf("disk state %v after idle threshold, want spun-down", got)
	}
	pm := c.EndPoints[host].PowerManager()
	if pm == nil || pm.SpinDowns == 0 {
		t.Fatalf("power manager on %s recorded no spin-downs", host)
	}

	ups := d.SpinUpCount()
	var data []byte
	var fail error
	cl.Read(space, 0, 4096, func(b []byte, err error) { data, fail = b, err })
	c.Settle(15 * time.Second)
	if fail != nil {
		t.Fatalf("read against spun-down disk: %v", fail)
	}
	if len(data) != 4096 || data[0] != 0xee {
		t.Fatalf("read returned wrong data (%d bytes)", len(data))
	}
	if d.SpinUpCount() != ups+1 {
		t.Fatalf("spin-ups %d -> %d, want exactly one wake", ups, d.SpinUpCount())
	}
}

// TestSpinDownDeferredUnderInflightIO pins the in-flight rule: while a
// burst of writes is queued, power-manager scans run but must not spin the
// platters down mid-queue — the spin-down may only happen after the last
// IO completes plus the idle threshold.
func TestSpinDownDeferredUnderInflightIO(t *testing.T) {
	c, cl, space, d, _ := powerRig(t, 2*time.Second)

	var downAt simtime.Time
	d.OnStateChange(func(old, new disk.State) {
		if new == disk.StateSpunDown && downAt == 0 {
			downAt = c.Sched.Now()
		}
	})

	// A concurrent burst deep enough that the queue stays busy across
	// several 1s power-manager scans.
	const writes = 40
	acked := 0
	var lastAck simtime.Time
	var fail error
	payload := bytes.Repeat([]byte{0x3c}, 256<<10)
	for i := 0; i < writes; i++ {
		off := int64(i%4) * int64(len(payload))
		cl.Write(space, off, payload, func(err error) {
			if err != nil {
				fail = err
			}
			acked++
			lastAck = c.Sched.Now()
		})
	}
	c.Settle(30 * time.Second)
	if fail != nil {
		t.Fatalf("burst write: %v", fail)
	}
	if acked != writes {
		t.Fatalf("acked %d of %d writes", acked, writes)
	}
	if downAt == 0 {
		t.Fatal("disk never spun down after the burst went idle")
	}
	if downAt < lastAck {
		t.Fatalf("disk spun down at %v with IO still in flight (last ack %v)", downAt, lastAck)
	}
	if gap := downAt - lastAck; gap < 2*time.Second {
		t.Fatalf("spin-down %v after last ack, want >= the 2s idle threshold", gap)
	}
}

// TestSpunDownDiskServesAfterFailoverRemount is the cascading-failure
// corner: the disk spins down, its serving host crashes, the fabric moves
// the disk to a survivor, and the client's retry loop remounts there. The
// read must succeed — the new endpoint's export plus the IO wake-up path
// must work against a disk that arrives spun down.
func TestSpunDownDiskServesAfterFailoverRemount(t *testing.T) {
	c, cl, space, d, host := powerRig(t, 30*time.Second)

	c.Settle(45 * time.Second)
	if got := d.State(); got != disk.StateSpunDown {
		t.Fatalf("disk state %v before crash, want spun-down", got)
	}

	c.CrashHost(host)
	var data []byte
	var fail error
	cl.Read(space, 0, 4096, func(b []byte, err error) { data, fail = b, err })
	c.Settle(40 * time.Second)
	if fail != nil {
		t.Fatalf("read across failover: %v", fail)
	}
	if len(data) != 4096 || data[0] != 0xee {
		t.Fatalf("read returned wrong data (%d bytes)", len(data))
	}
	newHost := c.ActiveMaster().DiskHost(d.ID())
	if newHost == host || newHost == "" {
		t.Fatalf("disk still on crashed host %q", newHost)
	}
	if cl.MountedOn(space) != newHost {
		t.Fatalf("client mounted on %q, want the failover host %q", cl.MountedOn(space), newHost)
	}
	if got := d.State(); got == disk.StateSpunDown || got == disk.StatePoweredOff {
		t.Fatalf("disk state %v after serving the read", got)
	}
}

// TestSetDiskPowerRoundTrip drives the §IV-F service-directed path: the
// owning service spins its disk down through the Master, then a later
// explicit spin-up restores it without waiting for client IO.
func TestSetDiskPowerRoundTrip(t *testing.T) {
	c, cl, _, d, _ := powerRig(t, 0) // explicit control only: no idle policy

	var fail error
	cl.SetDiskPower(d.ID(), false, func(err error) { fail = err })
	c.Settle(2 * time.Second)
	if fail != nil {
		t.Fatalf("spin down: %v", fail)
	}
	if got := d.State(); got != disk.StateSpunDown {
		t.Fatalf("disk state %v after SetDiskPower(down), want spun-down", got)
	}

	cl.SetDiskPower(d.ID(), true, func(err error) { fail = err })
	c.Settle(d.Params().SpinUpTime + 2*time.Second)
	if fail != nil {
		t.Fatalf("spin up: %v", fail)
	}
	if got := d.State(); got != disk.StateIdle {
		t.Fatalf("disk state %v after SetDiskPower(up), want idle", got)
	}
}
