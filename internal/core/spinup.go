package core

import (
	"sort"

	"ustore/internal/disk"
	"ustore/internal/simtime"
)

// RollingSpinUp staggers the power-on spin-up of a deploy unit's disks so
// the motor-start surge (~24W per disk) never exceeds maxConcurrent disks
// at once — §III-B: "perform rolling spin-up at the power-on time, thus
// avoiding a large number of disks spinning up at the same time and
// overwhelming the power supply". done fires when every disk is ready.
//
// maxConcurrent <= 0 spins everything simultaneously (the naive policy the
// ablation compares against).
func RollingSpinUp(sched *simtime.Scheduler, disks map[string]*disk.Disk, maxConcurrent int, done func()) {
	ids := make([]string, 0, len(disks))
	for id := range disks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	remaining := len(ids)
	if remaining == 0 {
		if done != nil {
			sched.After(0, done)
		}
		return
	}
	finish := func() {
		remaining--
		if remaining == 0 && done != nil {
			done()
		}
	}
	if maxConcurrent <= 0 {
		for _, id := range ids {
			d := disks[id]
			watchReady(d, finish)
			d.SpinUp()
		}
		return
	}
	queue := ids
	var startNext func()
	startNext = func() {
		if len(queue) == 0 {
			return
		}
		id := queue[0]
		queue = queue[1:]
		d := disks[id]
		watchReady(d, func() {
			finish()
			startNext()
		})
		d.SpinUp()
	}
	n := maxConcurrent
	if n > len(queue) {
		n = len(queue)
	}
	for i := 0; i < n; i++ {
		startNext()
	}
}

// watchReady fires fn once when d leaves the spinning-up state (or
// immediately if it is already past it).
func watchReady(d *disk.Disk, fn func()) {
	switch d.State() {
	case disk.StateIdle, disk.StateActive:
		fn()
		return
	}
	fired := false
	d.OnStateChange(func(old, new disk.State) {
		if fired {
			return
		}
		if old == disk.StateSpinningUp && (new == disk.StateIdle || new == disk.StateActive) {
			fired = true
			fn()
		}
	})
}
