package core

import (
	"errors"
	"testing"
	"time"

	"ustore/internal/fabric"
	"ustore/internal/usb"
)

// TestIntelDeviceLimitQuirk reproduces the §V-B wrinkle end to end: with
// the Intel driver's <15-device-per-controller limit, commanding too many
// disks onto one host leaves the overflow unenumerated, the Controller's
// verification times out, and the command is rolled back — while the
// balanced configuration (each host ≤ 6 devices) works fine.
func TestIntelDeviceLimitQuirk(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HostDeviceLimit = usb.IntelRootHubDeviceLimit // 14
	cfg.VerifyTimeout = 4 * time.Second
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Settle(8 * time.Second)
	m := c.ActiveMaster()
	if m == nil {
		t.Fatal("no active master")
	}
	// Balanced boot works: each host tree holds 2 hubs + 4 disks = 6
	// devices, well under the limit.
	for _, h := range c.Fabric.Hosts() {
		if got := c.DiskCountOn(h); got != 4 {
			t.Fatalf("host %s sees %d disks under the quirk", h, got)
		}
	}

	// Command 12 extra disks onto h4 (it would hold 16 disks + hubs = far
	// past 14 devices). The overflow cannot enumerate, verification fails,
	// and the controller rolls back.
	cmd := ExecuteArgs{Force: true}
	for g := 0; g < 3; g++ {
		for i := 0; i < 4; i++ {
			cmd.Pairs = append(cmd.Pairs, fabric.DiskHost{Disk: fabric.DiskID(g*4 + i), Host: "h4"})
		}
	}
	var execErr error = errors.New("pending")
	m.ExecuteTopology(cmd, func(err error) { execErr = err })
	c.Settle(60 * time.Second)
	if execErr == nil {
		t.Fatal("over-limit command verified despite the device quirk")
	}
	rollbacks := uint64(0)
	for _, ctl := range c.Ctrls {
		rollbacks += ctl.Rollbacks()
	}
	if rollbacks == 0 {
		t.Fatal("no rollback recorded")
	}
	// After rollback everything is back to balance and usable.
	c.Settle(10 * time.Second)
	for _, h := range c.Fabric.Hosts() {
		if got := c.DiskCountOn(h); got != 4 {
			t.Fatalf("host %s has %d disks after rollback", h, got)
		}
	}

	// A modest move (one group; h4 tree = 3 hubs + 8 disks = 11 <= 14)
	// still succeeds under the quirk.
	small := ExecuteArgs{Force: true}
	for i := 0; i < 4; i++ {
		small.Pairs = append(small.Pairs, fabric.DiskHost{Disk: fabric.DiskID(i), Host: "h4"})
	}
	execErr = errors.New("pending")
	m.ExecuteTopology(small, func(err error) { execErr = err })
	c.Settle(30 * time.Second)
	if execErr != nil {
		t.Fatalf("modest move under quirk failed: %v", execErr)
	}
	if got := c.DiskCountOn("h4"); got != 8 {
		t.Fatalf("h4 has %d disks, want 8", got)
	}
}
