package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"ustore/internal/policy"
)

// grayBoot boots a cluster with the gray-failure detector on and fast
// quarantine timing for tests.
func grayBoot(t *testing.T, mutate ...func(*Config)) *Cluster {
	t.Helper()
	return boot(t, append([]func(*Config){func(cfg *Config) {
		cfg.HealthQuarantine = true
	}}, mutate...)...)
}

// allocMountOn allocates size bytes under service, mounts it on cl, and
// returns the allocation.
func allocMountOn(t *testing.T, c *Cluster, cl *ClientLib, size int64) AllocateReply {
	t.Helper()
	var rep AllocateReply
	var err error = errors.New("pending")
	cl.Allocate(size, func(r AllocateReply, e error) { rep, err = r, e })
	c.Settle(3 * time.Second)
	if err != nil {
		t.Fatalf("allocate for %s: %v", cl.Service(), err)
	}
	var merr error = errors.New("pending")
	cl.Mount(rep.Space, func(e error) { merr = e })
	c.Settle(3 * time.Second)
	if merr != nil {
		t.Fatalf("mount %s: %v", rep.Space, merr)
	}
	return rep
}

// pumpIO starts a steady small-read loop on a mounted space and returns a
// stop function. Each disk needs a trickle of IO for its health EWMAs to
// mean anything.
func pumpIO(c *Cluster, cl *ClientLib, space SpaceID, every time.Duration) func() {
	stopped := false
	var loop func()
	loop = func() {
		if stopped {
			return
		}
		cl.Read(space, 0, 4096, func([]byte, error) {})
		c.Sched.After(every, loop)
	}
	c.Sched.After(every, loop)
	return func() { stopped = true }
}

// TestGrayDiskQuarantineAndRelease drives the full detect-quarantine-release
// arc: a fail-slow disk's tail latency diverges from the cohort, the master
// quarantines it (new allocations avoid it), and after recovery it is
// released through probation.
func TestGrayDiskQuarantineAndRelease(t *testing.T) {
	c := grayBoot(t)
	m := c.ActiveMaster()

	// Four services on four distinct disks give the detector a cohort.
	var reps []AllocateReply
	var stops []func()
	for i := 0; i < 4; i++ {
		cl := c.Client(fmt.Sprintf("cold%d", i), fmt.Sprintf("cold-svc%d", i))
		rep := allocMountOn(t, c, cl, 1<<30)
		reps = append(reps, rep)
		stops = append(stops, pumpIO(c, cl, rep.Space, 150*time.Millisecond))
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	disks := map[string]bool{}
	for _, rep := range reps {
		disks[rep.DiskID] = true
	}
	if len(disks) != 4 {
		t.Fatalf("allocations landed on %d disks, want 4", len(disks))
	}
	c.Settle(5 * time.Second) // warm up every disk's health EWMAs

	var quarantined, released []string
	m.OnDiskQuarantined = func(id, host string) { quarantined = append(quarantined, id) }
	m.OnDiskReleased = func(id string) { released = append(released, id) }

	gray := reps[0].DiskID
	if err := c.DegradeDisk(gray, 0.6); err != nil {
		t.Fatal(err)
	}
	c.Settle(15 * time.Second)

	if got := m.DiskHealthState(gray); got != HealthQuarantined {
		h, _ := m.DiskHealth(gray)
		t.Fatalf("gray disk state = %s (tail %v), want quarantined", got, h.TailEWMA)
	}
	if len(quarantined) != 1 || quarantined[0] != gray {
		t.Fatalf("OnDiskQuarantined fired for %v, want [%s]", quarantined, gray)
	}
	if q := m.QuarantinedDisks(); len(q) != 1 || q[0] != gray {
		t.Fatalf("QuarantinedDisks = %v", q)
	}
	for _, rep := range reps[1:] {
		if m.DiskHealthState(rep.DiskID) != HealthGood {
			t.Fatalf("healthy disk %s scored %s", rep.DiskID, m.DiskHealthState(rep.DiskID))
		}
	}

	// New allocations must avoid the quarantined disk — even for the
	// service that owns it (affinity rule 1 would otherwise pick it).
	owner := c.Client("cold0", "cold-svc0")
	var rep2 AllocateReply
	var aerr error = errors.New("pending")
	owner.Allocate(1<<30, func(r AllocateReply, e error) { rep2, aerr = r, e })
	c.Settle(3 * time.Second)
	if aerr != nil {
		t.Fatalf("allocate during quarantine: %v", aerr)
	}
	if rep2.DiskID == gray {
		t.Fatalf("allocation landed on quarantined disk %s", gray)
	}
	if err := m.ValidateQuarantine(); err != nil {
		t.Fatalf("quarantine invariant: %v", err)
	}

	// Recovery: clean scores walk the disk through probation to release.
	if err := c.RecoverDisk(gray); err != nil {
		t.Fatal(err)
	}
	c.Settle(30 * time.Second)
	if got := m.DiskHealthState(gray); got != HealthGood {
		t.Fatalf("recovered disk state = %s, want healthy", got)
	}
	if len(released) != 1 || released[0] != gray {
		t.Fatalf("OnDiskReleased fired for %v, want [%s]", released, gray)
	}
}

// TestQuarantineBlindTripsValidator proves ValidateQuarantine is not
// vacuous: with InjectQuarantineBlind the allocator ignores quarantine, an
// allocation lands on the gray disk, and the validator reports it.
func TestQuarantineBlindTripsValidator(t *testing.T) {
	c := grayBoot(t, func(cfg *Config) { cfg.InjectQuarantineBlind = true })
	m := c.ActiveMaster()
	var reps []AllocateReply
	for i := 0; i < 4; i++ {
		cl := c.Client(fmt.Sprintf("cold%d", i), fmt.Sprintf("cold-svc%d", i))
		rep := allocMountOn(t, c, cl, 1<<30)
		reps = append(reps, rep)
		defer pumpIO(c, cl, rep.Space, 150*time.Millisecond)()
	}
	c.Settle(5 * time.Second)
	gray := reps[0].DiskID
	if err := c.DegradeDisk(gray, 0.6); err != nil {
		t.Fatal(err)
	}
	c.Settle(15 * time.Second)
	if m.DiskHealthState(gray) != HealthQuarantined {
		t.Fatalf("gray disk not quarantined (state %s)", m.DiskHealthState(gray))
	}
	// Owner's affinity picks the quarantined disk because the allocator is
	// blind to quarantine.
	owner := c.Client("cold0", "cold-svc0")
	var rep2 AllocateReply
	var aerr error = errors.New("pending")
	owner.Allocate(1<<30, func(r AllocateReply, e error) { rep2, aerr = r, e })
	c.Settle(3 * time.Second)
	if aerr != nil {
		t.Fatalf("allocate: %v", aerr)
	}
	if rep2.DiskID != gray {
		t.Fatalf("blind allocation landed on %s, want gray disk %s", rep2.DiskID, gray)
	}
	if err := m.ValidateQuarantine(); err == nil {
		t.Fatal("ValidateQuarantine passed despite a blind allocation on a quarantined disk")
	}
}

// seqHedgedReads performs n sequential hedged reads and returns the sorted
// latencies.
func seqHedgedReads(t *testing.T, c *Cluster, cl *ClientLib, space SpaceID, n int, want []byte) []time.Duration {
	t.Helper()
	var lats []time.Duration
	fail := ""
	done := 0
	var issue func()
	issue = func() {
		if done >= n {
			return
		}
		start := c.Sched.Now()
		cl.ReadHedged(space, 0, len(want), func(data []byte, err error) {
			if err != nil && fail == "" {
				fail = err.Error()
			} else if err == nil && !bytes.Equal(data, want) && fail == "" {
				fail = fmt.Sprintf("read %d returned wrong bytes", done)
			}
			lats = append(lats, c.Sched.Now()-start)
			done++
			issue()
		})
	}
	issue()
	c.Settle(time.Duration(n) * 2 * time.Second)
	if fail != "" {
		t.Fatal(fail)
	}
	if len(lats) != n {
		t.Fatalf("completed %d/%d hedged reads", len(lats), n)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats
}

// TestHedgedReadCutsGrayTail measures the mitigation stack end to end: a
// prober mounts a mirrored pair living on two different disks; when one
// disk goes gray, hedged reads keep the tail bounded by the healthy
// mirror's latency while plain reads eat the full degraded service time.
func TestHedgedReadCutsGrayTail(t *testing.T) {
	c := boot(t)
	payload := bytes.Repeat([]byte("ustore-mirror-block"), 200)

	// Two writer services land the two copies on two different disks.
	wa := c.Client("mir-a", "mirror-a")
	wb := c.Client("mir-b", "mirror-b")
	repA := allocMountOn(t, c, wa, 1<<30)
	repB := allocMountOn(t, c, wb, 1<<30)
	if repA.DiskID == repB.DiskID {
		t.Fatalf("mirror copies landed on one disk %s", repA.DiskID)
	}
	for _, w := range []struct {
		cl *ClientLib
		sp SpaceID
	}{{wa, repA.Space}, {wb, repB.Space}} {
		var werr error = errors.New("pending")
		w.cl.Write(w.sp, 0, payload, func(e error) { werr = e })
		c.Settle(3 * time.Second)
		if werr != nil {
			t.Fatalf("mirror write: %v", werr)
		}
	}

	// The prober mounts both copies and hedges between them.
	prober := c.Client("prober", "probe-svc")
	mit := prober.EnableMitigation()
	for _, sp := range []SpaceID{repA.Space, repB.Space} {
		var merr error = errors.New("pending")
		prober.Mount(sp, func(e error) { merr = e })
		c.Settle(3 * time.Second)
		if merr != nil {
			t.Fatalf("prober mount %s: %v", sp, merr)
		}
	}
	mit.SetMirror(repA.Space, repB.Space)

	// Warm the latency models, then take the healthy baseline.
	p99 := func(lats []time.Duration) time.Duration { return lats[len(lats)*99/100] }
	seqHedgedReads(t, c, prober, repA.Space, 16, payload)
	healthy := seqHedgedReads(t, c, prober, repA.Space, 1000, payload)
	healthyP99 := p99(healthy)
	if at := mit.adaptiveTimeout(prober.mounts[repA.Space].host, string(repA.Space)); at <= 0 || at >= prober.ini.Timeout {
		t.Fatalf("adaptive timeout %v not inside (0, %v)", at, prober.ini.Timeout)
	}

	// Primary copy's disk goes gray.
	if err := c.DegradeDisk(repA.DiskID, 0.6); err != nil {
		t.Fatal(err)
	}
	mitigated := seqHedgedReads(t, c, prober, repA.Space, 1000, payload)
	mitigatedP99 := p99(mitigated)
	if mit.Hedges == 0 || mit.HedgeWins == 0 {
		t.Fatalf("no hedges fired/won (hedges=%d wins=%d)", mit.Hedges, mit.HedgeWins)
	}

	// Same degraded disk without hedging: plain reads pay full freight.
	plain := func(n int) []time.Duration {
		var lats []time.Duration
		done := 0
		var issue func()
		issue = func() {
			if done >= n {
				return
			}
			start := c.Sched.Now()
			wa.Read(repA.Space, 0, len(payload), func(_ []byte, err error) {
				if err != nil {
					t.Errorf("plain read: %v", err)
				}
				lats = append(lats, c.Sched.Now()-start)
				done++
				issue()
			})
		}
		issue()
		c.Settle(time.Duration(n) * 2 * time.Second)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats
	}
	unmitigated := plain(50)
	unmitigatedP99 := unmitigated[len(unmitigated)-1]

	if mitigatedP99 > 2*healthyP99 {
		t.Fatalf("mitigated p99 %v > 2x healthy p99 %v", mitigatedP99, healthyP99)
	}
	if unmitigatedP99 < 3*mitigatedP99 {
		t.Fatalf("plain p99 %v not >> mitigated p99 %v: degrade too weak to matter", unmitigatedP99, mitigatedP99)
	}
}

// TestBreakerOpensAndHalfOpenProbes unit-tests the circuit breaker's state
// machine through its observe/allow surface.
func TestBreakerOpensAndHalfOpenProbes(t *testing.T) {
	c := boot(t)
	cl := c.Client("bk", "breaker-svc")
	mit := cl.EnableMitigation()
	host, vol := "h1", "unit0/disk00/sp1"

	if mit.breakerOpen(host, vol) {
		t.Fatal("breaker open with no history")
	}
	for i := 0; i < policy.DefaultBreakerFails; i++ {
		mit.observe(host, vol, time.Second, errors.New("timeout"))
	}
	if !mit.breakerOpen(host, vol) {
		t.Fatal("breaker not open after consecutive failures")
	}
	if mit.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d", mit.BreakerOpens)
	}

	// Cool-down elapses: exactly one half-open probe slips through.
	c.Settle(policy.DefaultBreakerOpenFor + time.Second)
	if mit.breakerOpen(host, vol) {
		t.Fatal("half-open probe not admitted after cool-down")
	}
	if !mit.breakerOpen(host, vol) {
		t.Fatal("second request admitted while probe in flight")
	}

	// Probe fails: breaker re-opens for another cool-down.
	mit.observe(host, vol, time.Second, errors.New("timeout"))
	if !mit.breakerOpen(host, vol) {
		t.Fatal("breaker closed after failed probe")
	}

	// Next probe succeeds: breaker closes fully.
	c.Settle(policy.DefaultBreakerOpenFor + time.Second)
	if mit.breakerOpen(host, vol) {
		t.Fatal("probe not admitted after second cool-down")
	}
	mit.observe(host, vol, 10*time.Millisecond, nil)
	if mit.breakerOpen(host, vol) {
		t.Fatal("breaker still open after successful probe")
	}
}

// TestSlowSuccessTripsBreaker is the fail-slow half of the breaker: a
// target that keeps ANSWERING, but 20x slower than its model, must open
// the breaker even though no request ever errors.
func TestSlowSuccessTripsBreaker(t *testing.T) {
	c := boot(t)
	cl := c.Client("bk2", "breaker-svc2")
	mit := cl.EnableMitigation()
	host, vol := "h1", "unit0/disk00/sp9"
	for i := 0; i < mitMinSamples; i++ {
		mit.observe(host, vol, 10*time.Millisecond, nil)
	}
	for i := 0; i < policy.DefaultBreakerFails; i++ {
		if mit.breakerOpen(host, vol) {
			t.Fatalf("breaker open after %d slow successes", i)
		}
		mit.observe(host, vol, time.Second, nil) // success, but way past the gate
	}
	if !mit.breakerOpen(host, vol) {
		t.Fatal("breaker not open after sustained slow successes")
	}
	// The slow samples must not have redefined "normal".
	if tl := mit.lat[targetKey(host, vol)]; tl.ewma > 20*time.Millisecond {
		t.Fatalf("slow successes polluted the latency model (ewma %v)", tl.ewma)
	}
}
