package core

import (
	"fmt"
	"sort"
	"time"

	"ustore/internal/disk"
	"ustore/internal/obs"
	"ustore/internal/simtime"
)

// Gray-failure detection (fail-slow, not fail-stop). Each heartbeat carries
// the EndPoint's per-disk HealthStats; the active master compares every
// disk's tail-latency EWMA against the cohort median. A disk whose tail
// diverges — or whose windowed error rate spikes — is scored gray and walked
// through a quarantine state machine: new allocations stop landing on it,
// its spaces get proactively migrated, and it is released only after a
// sustained streak of clean scores. Peer comparison is what makes this
// robust: an absolute threshold would trip on a legitimately busy cluster,
// while a gray disk stands out from its cohort under any load.

// DiskHealthState is the master's per-disk gray-failure verdict.
type DiskHealthState string

// Quarantine state machine states.
const (
	// HealthGood: scoring clean; allocations allowed.
	HealthGood DiskHealthState = "healthy"
	// HealthSuspect: gray-scoring, but not yet long enough to act on
	// (absorbs one-off latency spikes); allocations still allowed.
	HealthSuspect DiskHealthState = "suspect"
	// HealthQuarantined: sustained gray; excluded from allocation and
	// drained. Left only via a clean score (-> probation).
	HealthQuarantined DiskHealthState = "quarantined"
	// HealthProbation: recovering; still excluded from allocation until the
	// clean streak completes.
	HealthProbation DiskHealthState = "probation"
)

// quarantineTailFloor is the absolute tail-latency EWMA below which a disk is
// never scored gray, whatever the cohort looks like: on an idle cluster the
// median is microseconds and harmless jitter would otherwise trip the
// relative test.
const quarantineTailFloor = 40 * time.Millisecond

// healthMinIOs is the minimum lifetime IO count before a disk's EWMAs are
// trusted for scoring (fresh disks have meaningless averages).
const healthMinIOs = 8

// diskHealth is the master's record for one disk.
type diskHealth struct {
	state      DiskHealthState
	last       disk.HealthStats // newest heartbeat sample
	scored     disk.HealthStats // sample at the previous scoring pass
	grayBeats  int              // consecutive gray-scoring passes
	cleanBeats int              // consecutive clean passes (quarantine exit)
	since      simtime.Time     // when the current state was entered
}

// healthTracker holds the active master's gray-disk state. Like SysStat it
// is in-memory only: after master failover the new active replica rebuilds
// its view from heartbeats, and a still-gray disk re-earns quarantine within
// a few scoring passes.
type healthTracker struct {
	disks map[string]*diskHealth

	cQuarantines *obs.Counter
	cReleases    *obs.Counter
	gGray        *obs.Gauge

	// violations records quarantine-invariant breaches (an allocation
	// placed on a quarantined disk); only InjectQuarantineBlind produces
	// them, and ValidateQuarantine reports them.
	violations []string
}

func newHealthTracker(rec *obs.Recorder) *healthTracker {
	return &healthTracker{
		disks:        make(map[string]*diskHealth),
		cQuarantines: rec.Counter("core", "health_quarantines_total"),
		cReleases:    rec.Counter("core", "health_releases_total"),
		gGray:        rec.Gauge("core", "health_gray_disks"),
	}
}

// observe ingests one disk's heartbeat sample.
func (t *healthTracker) observe(diskID string, h disk.HealthStats) {
	dh := t.disks[diskID]
	if dh == nil {
		dh = &diskHealth{state: HealthGood}
		t.disks[diskID] = dh
	}
	dh.last = h
}

// excluded reports whether a disk must not receive new allocations.
func (t *healthTracker) excluded(diskID string) bool {
	dh := t.disks[diskID]
	return dh != nil && (dh.state == HealthQuarantined || dh.state == HealthProbation)
}

// gray scores one disk against the cohort median tail.
func (dh *diskHealth) gray(median time.Duration, factor float64) bool {
	h := dh.last
	if h.IOs < healthMinIOs {
		return false
	}
	if h.TailEWMA > quarantineTailFloor && median > 0 &&
		float64(h.TailEWMA) > factor*float64(median) {
		return true
	}
	// Windowed error rate: >=10% of the IOs since the last scoring pass
	// failed (with a minimum window so one unlucky IO doesn't count).
	dIOs := h.IOs - dh.scored.IOs
	dErrs := h.Errors - dh.scored.Errors
	return dIOs >= 4 && dErrs*10 >= dIOs
}

// scorePass runs one scoring round over the online disks. onlineDisk filters
// to disks currently attached to an online host; quarantine/release
// transitions fire the callbacks.
func (m *Master) scorePass() {
	if !m.cfg.HealthQuarantine {
		return
	}
	t := m.health
	ids := make([]string, 0, len(t.disks))
	var tails []time.Duration
	for id, dh := range t.disks {
		host, ok := m.diskHost[id]
		if !ok {
			continue
		}
		if hs := m.hosts[host]; hs == nil || !hs.online {
			continue
		}
		ids = append(ids, id)
		if dh.last.IOs >= healthMinIOs {
			tails = append(tails, dh.last.TailEWMA)
		}
	}
	sort.Strings(ids)
	var median time.Duration
	if len(tails) > 0 {
		sort.Slice(tails, func(i, j int) bool { return tails[i] < tails[j] })
		median = tails[len(tails)/2]
	}
	factor := m.cfg.QuarantineTailFactorOrDefault()
	grayCount := 0
	for _, id := range ids {
		dh := t.disks[id]
		isGray := dh.gray(median, factor)
		dh.scored = dh.last
		if isGray {
			grayCount++
		}
		m.stepHealth(id, dh, isGray)
	}
	t.gGray.Set(float64(grayCount))
}

// stepHealth advances one disk's quarantine state machine by one beat.
func (m *Master) stepHealth(id string, dh *diskHealth, gray bool) {
	prev := dh.state
	switch dh.state {
	case HealthGood:
		if gray {
			dh.state = HealthSuspect
			dh.grayBeats = 1
		}
	case HealthSuspect:
		if !gray {
			dh.state = HealthGood
			dh.grayBeats = 0
		} else if dh.grayBeats++; dh.grayBeats >= m.cfg.QuarantineSuspectBeatsOrDefault() {
			dh.state = HealthQuarantined
			dh.cleanBeats = 0
		}
	case HealthQuarantined:
		if !gray {
			dh.state = HealthProbation
			dh.cleanBeats = 1
		}
	case HealthProbation:
		if gray {
			dh.state = HealthQuarantined
			dh.cleanBeats = 0
		} else if dh.cleanBeats++; dh.cleanBeats >= m.cfg.QuarantineProbationBeatsOrDefault() {
			dh.state = HealthGood
			dh.grayBeats = 0
		}
	}
	if dh.state == prev {
		return
	}
	dh.since = m.sched.Now()
	rec := m.cfg.Recorder
	switch {
	case dh.state == HealthQuarantined && prev == HealthSuspect:
		m.health.cQuarantines.Inc()
		rec.Instant("core", "disk-quarantined", "master",
			obs.L("disk", id), obs.L("tail", dh.last.TailEWMA.String()))
		if m.OnDiskQuarantined != nil {
			m.OnDiskQuarantined(id, m.diskHost[id])
		}
	case dh.state == HealthGood && prev == HealthProbation:
		m.health.cReleases.Inc()
		rec.Instant("core", "disk-released", "master", obs.L("disk", id))
		if m.OnDiskReleased != nil {
			m.OnDiskReleased(id)
		}
	}
}

// DiskHealthState returns the master's verdict for a disk (HealthGood for
// disks it has never scored).
func (m *Master) DiskHealthState(diskID string) DiskHealthState {
	if dh := m.health.disks[diskID]; dh != nil {
		return dh.state
	}
	return HealthGood
}

// QuarantinedDisks lists disks currently excluded from allocation, sorted.
func (m *Master) QuarantinedDisks() []string {
	var out []string
	for id := range m.health.disks {
		if m.health.excluded(id) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// DiskHealth returns the newest heartbeat health sample for a disk.
func (m *Master) DiskHealth(diskID string) (disk.HealthStats, bool) {
	if dh := m.health.disks[diskID]; dh != nil {
		return dh.last, true
	}
	return disk.HealthStats{}, false
}

// ValidateQuarantine checks the quarantine invariant: no allocation was ever
// placed on a disk that was quarantined at allocation time. Violations only
// occur under InjectQuarantineBlind; the chaos harness asserts this stays
// empty on correct builds and trips on the blind mutation.
func (m *Master) ValidateQuarantine() error {
	if n := len(m.health.violations); n > 0 {
		return fmt.Errorf("core: %d allocation(s) on quarantined disks (first: %s)",
			n, m.health.violations[0])
	}
	return nil
}
