package placement

import (
	"fmt"
	"testing"
)

func view(id, host, owner string, free int64) DiskView {
	return DiskView{ID: id, Host: host, Owner: owner, Free: free, Spinning: true}
}

func TestPickSingleSameServiceAffinity(t *testing.T) {
	cands := []DiskView{
		view("d1", "h1", "", 100),
		view("d2", "h2", "svcA", 100),
		view("d3", "h1", "svcB", 100),
	}
	if got := PickSingle(cands, "svcA", "h1"); got != "d2" {
		t.Fatalf("affinity pick = %q, want d2", got)
	}
}

func TestPickSingleLocality(t *testing.T) {
	cands := []DiskView{
		view("d1", "h1", "other", 100),
		view("d2", "h2", "", 100),
		view("d3", "h3", "", 100),
	}
	if got := PickSingle(cands, "svcA", "h3"); got != "d3" {
		t.Fatalf("locality pick = %q, want d3", got)
	}
}

func TestPickSingleUnownedFallback(t *testing.T) {
	cands := []DiskView{
		view("d1", "h1", "other", 100),
		view("d2", "h2", "", 100),
	}
	if got := PickSingle(cands, "svcA", "h9"); got != "d2" {
		t.Fatalf("unowned pick = %q, want d2", got)
	}
}

func TestPickSingleLastResortAndEmpty(t *testing.T) {
	cands := []DiskView{view("d7", "h1", "other", 100)}
	if got := PickSingle(cands, "svcA", "h9"); got != "d7" {
		t.Fatalf("last-resort pick = %q, want d7", got)
	}
	if got := PickSingle(nil, "svcA", "h9"); got != "" {
		t.Fatalf("empty pick = %q, want \"\"", got)
	}
}

// locView builds a candidate at a topology position.
func locView(rack, unit, host, hub, id string, free int64, spinning bool) DiskView {
	return DiskView{
		ID: id, Host: host, Free: free, Spinning: spinning,
		Loc: Location{Rack: rack, Unit: unit, Hub: hub, Host: host},
	}
}

// grid builds racks x unitsPerRack x disksPerUnit candidates.
func grid(racks, unitsPerRack, disksPerUnit int) []DiskView {
	var out []DiskView
	for r := 0; r < racks; r++ {
		for u := 0; u < unitsPerRack; u++ {
			for d := 0; d < disksPerUnit; d++ {
				rack := fmt.Sprintf("r%d", r)
				unit := fmt.Sprintf("u%d-%d", r, u)
				out = append(out, locView(rack, unit, unit+"/h0", unit+"/b0",
					fmt.Sprintf("%s/d%02d", unit, d), 1000, true))
			}
		}
	}
	SortViews(out)
	return out
}

func TestSpreadDistinctUnits(t *testing.T) {
	cands := grid(2, 3, 4)
	res := Spread(cands, 3, SpreadOptions{Level: LevelUnit})
	if len(res.Disks) != 3 {
		t.Fatalf("placed %d fragments, want 3", len(res.Disks))
	}
	units := map[string]bool{}
	racks := map[string]bool{}
	for _, d := range res.Disks {
		if units[d.Loc.Unit] {
			t.Fatalf("two fragments share unit %s", d.Loc.Unit)
		}
		units[d.Loc.Unit] = true
		racks[d.Loc.Rack] = true
	}
	// With 2 racks available a 3-way spread must still use both.
	if len(racks) != 2 {
		t.Fatalf("used %d racks, want 2", len(racks))
	}
}

func TestSpreadHonorsExclude(t *testing.T) {
	cands := grid(2, 2, 2)
	// Surviving fragments already occupy units u0-0 and u0-1.
	res := Spread(cands, 1, SpreadOptions{
		Level:   LevelUnit,
		Exclude: []string{"r0/u0-0", "r0/u0-1"},
	})
	if len(res.Disks) != 1 {
		t.Fatalf("placed %d, want 1", len(res.Disks))
	}
	if got := res.Disks[0].Loc.Rack; got != "r1" {
		t.Fatalf("repair landed in rack %s, want r1", got)
	}
}

func TestSpreadTooFewDomains(t *testing.T) {
	cands := grid(1, 2, 8) // only two units exist
	res := Spread(cands, 3, SpreadOptions{Level: LevelUnit})
	if len(res.Disks) != 2 {
		t.Fatalf("placed %d fragments, want 2 (domain-limited)", len(res.Disks))
	}
}

func TestSpreadPrefersSpinningWithinBudget(t *testing.T) {
	cands := []DiskView{
		locView("r0", "u0", "u0/h0", "u0/b0", "u0/d0", 500, false),
		locView("r0", "u1", "u1/h0", "u1/b0", "u1/d0", 100, true),
		locView("r1", "u2", "u2/h0", "u2/b0", "u2/d0", 500, false),
	}
	SortViews(cands)
	budget := map[string]int{"r0/u0": 0, "r0/u1": 1, "r1/u2": 1}
	res := Spread(cands, 2, SpreadOptions{Level: LevelUnit, SpinBudget: budget})
	if len(res.Disks) != 2 {
		t.Fatalf("placed %d, want 2", len(res.Disks))
	}
	// The spinning disk wins over the bigger spun-down ones; the second
	// pick prefers the unit with spin budget (u2, also a fresh rack) over
	// the over-budget u0.
	if res.Disks[0].ID != "u1/d0" || res.Disks[1].ID != "u2/d0" {
		t.Fatalf("picked %s then %s, want u1/d0 then u2/d0",
			res.Disks[0].ID, res.Disks[1].ID)
	}
	if res.OverBudget != 0 {
		t.Fatalf("OverBudget = %d, want 0", res.OverBudget)
	}
}

func TestSpreadOverBudgetForcedPick(t *testing.T) {
	cands := []DiskView{
		locView("r0", "u0", "u0/h0", "u0/b0", "u0/d0", 500, false),
		locView("r0", "u1", "u1/h0", "u1/b0", "u1/d0", 500, false),
	}
	SortViews(cands)
	budget := map[string]int{"r0/u0": 0, "r0/u1": 0}
	res := Spread(cands, 2, SpreadOptions{Level: LevelUnit, SpinBudget: budget})
	if len(res.Disks) != 2 {
		t.Fatalf("placed %d, want 2", len(res.Disks))
	}
	if res.OverBudget != 2 {
		t.Fatalf("OverBudget = %d, want 2 (no budget anywhere)", res.OverBudget)
	}
}

func TestSpreadDoesNotMutateCandidates(t *testing.T) {
	cands := grid(2, 2, 2)
	before := append([]DiskView(nil), cands...)
	Spread(cands, 3, SpreadOptions{Level: LevelUnit})
	for i := range cands {
		if cands[i] != before[i] {
			t.Fatalf("candidate %d mutated: %+v != %+v", i, cands[i], before[i])
		}
	}
}

func TestSpreadDoesNotMutateBudget(t *testing.T) {
	cands := []DiskView{
		locView("r0", "u0", "u0/h0", "u0/b0", "u0/d0", 500, false),
		locView("r0", "u1", "u1/h0", "u1/b0", "u1/d0", 500, false),
	}
	SortViews(cands)
	budget := map[string]int{"r0/u0": 1, "r0/u1": 1}
	res := Spread(cands, 2, SpreadOptions{Level: LevelUnit, SpinBudget: budget})
	if len(res.Disks) != 2 || res.OverBudget != 0 {
		t.Fatalf("placed %d over=%d, want 2/0", len(res.Disks), res.OverBudget)
	}
	// Both picks spun up a disk, but the caller's budget must be untouched
	// so it can be reused across calls.
	if budget["r0/u0"] != 1 || budget["r0/u1"] != 1 {
		t.Fatalf("caller budget mutated: %v", budget)
	}
}

func TestDomainKeysQualified(t *testing.T) {
	a := Location{Rack: "r0", Unit: "u0", Hub: "b0", Host: "h0"}
	b := Location{Rack: "r1", Unit: "u0", Hub: "b0", Host: "h0"}
	if a.Domain(LevelHub) == b.Domain(LevelHub) {
		t.Fatal("hub keys in different racks must differ")
	}
	if a.Domain(LevelHost) == b.Domain(LevelHost) {
		t.Fatal("host keys in different racks must differ")
	}
	if a.Domain(LevelRack) == b.Domain(LevelRack) {
		t.Fatal("rack keys must differ")
	}
}
