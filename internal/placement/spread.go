package placement

import "sort"

// Level selects the failure domain two fragments of one volume must never
// share. Levels nest by blast radius: a host is the smallest (its disks
// re-home after failover), a hub takes its whole disk group with it, a
// deploy unit is one fabric, and a rack shares power and uplinks.
type Level int

// Spread levels, smallest domain first.
const (
	LevelHost Level = iota
	LevelHub
	LevelUnit
	LevelRack
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelHost:
		return "host"
	case LevelHub:
		return "hub"
	case LevelUnit:
		return "unit"
	case LevelRack:
		return "rack"
	default:
		return "level?"
	}
}

// Location places a disk in the failure-domain hierarchy. Rack, Unit and
// Hub are static wiring; Host is the current (dynamic) attachment.
type Location struct {
	Rack string
	Unit string
	Hub  string
	Host string
}

// Domain returns the disk's failure-domain key at the given level. Keys
// are fully qualified (a hub key embeds its unit and rack) so identical
// leaf names in different units never collide.
func (l Location) Domain(level Level) string {
	switch level {
	case LevelRack:
		return l.Rack
	case LevelUnit:
		return l.Rack + "/" + l.Unit
	case LevelHub:
		return l.Rack + "/" + l.Unit + "/" + l.Hub
	default:
		return l.Rack + "/" + l.Unit + "/~" + l.Host
	}
}

// SpreadOptions parameterizes a Spread call.
type SpreadOptions struct {
	// Level is the failure domain no two chosen fragments (nor any Exclude
	// entry) may share.
	Level Level
	// Exclude lists domains (at Level) already occupied by the volume's
	// surviving fragments — repair must place around them.
	Exclude []string
	// SpinBudget, when non-nil, maps a unit's domain key (LevelUnit) to
	// how many more disks it may spin up. Spun-down disks in units with no
	// remaining budget are skipped unless nothing else fits; the
	// OverBudget counter in the result reports such forced picks. Spread
	// copies the map; the caller's budget is never modified.
	SpinBudget map[string]int
}

// SpreadResult reports a Spread decision.
type SpreadResult struct {
	// Disks are the chosen disk IDs, in pick order.
	Disks []DiskView
	// OverBudget counts picks that had to spin up a disk in a unit whose
	// spin budget was exhausted (placement preferred anything else first).
	OverBudget int
}

// Spread chooses n disks from candidates such that no two share a failure
// domain at opts.Level. Candidates must be pre-filtered (alive, enough
// free space) and sorted by ID. Within the hard domain constraint the
// greedy pick prefers, in order: a rack not yet holding a fragment, a
// spinning disk (or a spun-down one whose unit still has spin budget),
// and the most free space; ties break on disk ID. It returns as many
// disks as it could place (len < n means the topology cannot spread that
// wide).
func Spread(candidates []DiskView, n int, opts SpreadOptions) SpreadResult {
	var res SpreadResult
	if n <= 0 || len(candidates) == 0 {
		return res
	}
	candidates = append([]DiskView(nil), candidates...) // consumed in place
	usedDomain := make(map[string]bool, n+len(opts.Exclude))
	usedRack := make(map[string]bool, n)
	for _, d := range opts.Exclude {
		usedDomain[d] = true
	}
	// Remaining spin budget is consumed as picks land on spun-down disks —
	// on a private copy, so a caller may reuse its budget across calls.
	var budget map[string]int
	if opts.SpinBudget != nil {
		budget = make(map[string]int, len(opts.SpinBudget))
		for k, v := range opts.SpinBudget {
			budget[k] = v
		}
	}
	for len(res.Disks) < n {
		best := -1
		bestCost := 0
		for i, d := range candidates {
			if d.ID == "" { // consumed
				continue
			}
			if usedDomain[d.Loc.Domain(opts.Level)] {
				continue
			}
			// Cost ranks the soft preferences: rack reuse is worst at 4,
			// spin state adds 0 (spinning), 1 (spin-up within budget) or 2
			// (forced over-budget spin-up).
			cost := 0
			if usedRack[d.Loc.Rack] {
				cost += 4
			}
			if !d.Spinning {
				cost++
				if budget != nil && budget[d.Loc.Domain(LevelUnit)] <= 0 {
					cost++
				}
			}
			if best < 0 || cost < bestCost ||
				(cost == bestCost && moreDesirable(d, candidates[best])) {
				best, bestCost = i, cost
			}
		}
		if best < 0 {
			break
		}
		d := candidates[best]
		candidates[best].ID = "" // consume without reslicing
		usedDomain[d.Loc.Domain(opts.Level)] = true
		usedRack[d.Loc.Rack] = true
		if !d.Spinning {
			if budget != nil {
				key := d.Loc.Domain(LevelUnit)
				if budget[key] <= 0 {
					res.OverBudget++
				}
				budget[key]--
			}
		}
		res.Disks = append(res.Disks, d)
	}
	return res
}

// moreDesirable orders equal-cost candidates: most free space first, then
// lexicographic disk ID.
func moreDesirable(a, b DiskView) bool {
	if a.Free != b.Free {
		return a.Free > b.Free
	}
	return a.ID < b.ID
}

// SortViews sorts candidate views by disk ID (the deterministic order
// PickSingle and Spread require).
func SortViews(views []DiskView) {
	sort.Slice(views, func(i, j int) bool { return views[i].ID < views[j].ID })
}
