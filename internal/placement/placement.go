// Package placement holds UStore's storage-placement policies, extracted
// from the Master so the single-unit allocator (§IV-A) and the fleet-scale
// cross-unit placer share one tested implementation.
//
// Two policies live here:
//
//   - PickSingle: the paper's §IV-A single-disk allocation rules
//     (same-service disk affinity, then client locality, then any unowned
//     disk, then any disk with room), used by core.Master.
//   - Spread: failure-domain-aware multi-fragment placement for the fleet
//     subsystem — spread a volume's replicas/EC fragments across distinct
//     failure domains (host < hub < unit < rack), preferring unused racks
//     and already-spinning disks so placement stays inside each unit's
//     power budget.
//
// Both are pure functions over caller-supplied candidate views: callers
// own the state (SysStat, heartbeat digests) and determinism (candidates
// must arrive in a stable order — sorted by disk ID unless noted).
package placement

// DiskView is one allocation candidate as the caller's state machine sees
// it. Callers pre-filter unusable disks (offline hosts, powered-off or
// quarantined disks, insufficient free space) and pass survivors sorted by
// ID so selection is deterministic.
type DiskView struct {
	// ID is the disk's global identifier.
	ID string
	// Host is the disk's current attachment.
	Host string
	// Owner is the service owning the disk ("" = unowned).
	Owner string
	// Free is the disk's remaining capacity in bytes.
	Free int64
	// Spinning reports whether the disk motor is up (spun-down archival
	// disks cost a spin-up — and power budget — to use).
	Spinning bool
	// Loc places the disk in the failure-domain hierarchy (Spread only;
	// PickSingle ignores it).
	Loc Location
}

// PickSingle applies the §IV-A allocation rules to candidates (which must
// be pre-filtered and sorted by ID):
//
//  1. prefer a disk already owned by the same service;
//  2. otherwise prefer an unowned disk on the client's nearest host;
//  3. fall back to any unowned disk, then any candidate with room.
//
// It returns the chosen disk ID, or "" if candidates is empty.
func PickSingle(candidates []DiskView, service, clientHost string) string {
	// Rule 1: same-service affinity.
	for _, d := range candidates {
		if d.Owner == service {
			return d.ID
		}
	}
	// Rule 2: locality — an unowned disk on the client's host.
	for _, d := range candidates {
		if d.Owner == "" && d.Host == clientHost {
			return d.ID
		}
	}
	// Fall back: any unowned disk, then any disk with room.
	for _, d := range candidates {
		if d.Owner == "" {
			return d.ID
		}
	}
	if len(candidates) > 0 {
		return candidates[0].ID
	}
	return ""
}
