package chaos

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ustore/internal/obs"
	"ustore/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// trafficRun executes one traffic-mode run and fails the test on run errors
// or invariant violations.
func trafficRun(t *testing.T, o Options) *Report {
	t.Helper()
	rep, err := Run(o)
	if err != nil {
		t.Fatalf("traffic run (storm=%v protect=%v): %v", o.Storm, o.Protect, err)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("traffic run (storm=%v protect=%v) violations: %v", o.Storm, o.Protect, rep.Violations)
	}
	if rep.SLO == nil {
		t.Fatalf("traffic run returned no SLO report")
	}
	return rep
}

// TestTrafficProtectionBoundsStormTail is the PR's acceptance check: under
// the same seed and the same restore-storm arrival sequence, the protection
// stack must keep the premium class's storm p999 within 3x of its quiescent
// p999, while the unprotected twin collapses past 10x. The unprotected run
// also burns the power budget (all disks spinning); the protected run must
// hold the spinning-disk cap.
func TestTrafficProtectionBoundsStormTail(t *testing.T) {
	base := Options{Seed: *chaosSeed, Tenants: true, Storm: true}

	unprot := base
	prot := base
	prot.Protect = true

	repU := trafficRun(t, unprot)
	repP := trafficRun(t, prot)

	uQ := repU.SLO.Row(workload.ClassPremium, workload.PhaseQuiescent)
	uS := repU.SLO.Row(workload.ClassPremium, workload.PhaseStorm)
	pQ := repP.SLO.Row(workload.ClassPremium, workload.PhaseQuiescent)
	pS := repP.SLO.Row(workload.ClassPremium, workload.PhaseStorm)

	if uQ.P999 <= 0 || pQ.P999 <= 0 {
		t.Fatalf("premium quiescent p999 must be positive: unprotected %v, protected %v", uQ.P999, pQ.P999)
	}
	if uS.P999 <= 10*uQ.P999 {
		t.Errorf("unprotected premium storm p999 %v is not >10x quiescent %v — storm too weak to matter",
			uS.P999, uQ.P999)
	}
	if pS.P999 > 3*pQ.P999 {
		t.Errorf("protected premium storm p999 %v exceeds 3x quiescent %v — protection failed its SLO",
			pS.P999, pQ.P999)
	}

	// Power budget: the unprotected storm recalls every archived volume and
	// spins the whole shelf; the protected autoscaler must stay within
	// MaxSpinning+MaxSpinningUp.
	if repU.SLO.ActiveDisksMax != repU.SLO.TotalDisks {
		t.Errorf("unprotected storm should spin all %d disks, got max %d",
			repU.SLO.TotalDisks, repU.SLO.ActiveDisksMax)
	}
	topts := workload.DefaultTrafficOptions(*chaosSeed)
	budget := topts.MaxSpinning + topts.MaxSpinningUp
	if repP.SLO.ActiveDisksMax > budget {
		t.Errorf("protected run max active disks %d exceeds power budget %d",
			repP.SLO.ActiveDisksMax, budget)
	}

	// The protection has to be doing visible work: the lowest class absorbs
	// the storm as sheds/throttles instead of queueing behind premium.
	bS := repP.SLO.Row(workload.ClassBatch, workload.PhaseStorm)
	if bS.Shed+bS.Throttled == 0 {
		t.Errorf("protected storm shed/throttled nothing from the batch class: %+v", bS)
	}

	// Same-seed repeat of the protected run must be byte-identical in every
	// externalized artifact — the traffic engine extends the determinism
	// contract TestChaosSameSeedByteStability pins for fault runs.
	repP2 := trafficRun(t, prot)
	if a, b := repP.SLO.Text(), repP2.SLO.Text(); a != b {
		t.Errorf("same-seed protected runs produced different SLO reports:\n--- run1\n%s--- run2\n%s", a, b)
	}
	if a, b := repP.LogText(), repP2.LogText(); a != b {
		t.Errorf("same-seed protected runs produced different event logs (%d vs %d bytes)", len(a), len(b))
	}
}

// TestTrafficSweepParallelByteStability extends the worker-count determinism
// contract to traffic mode: a 2-seed protected-storm sweep on 2 workers must
// emit byte-identical summaries, logs, and metrics encodings to the same
// sweep run sequentially.
func TestTrafficSweepParallelByteStability(t *testing.T) {
	const seeds = 2
	base := Options{Seed: *chaosSeed, Tenants: true, Storm: true, Protect: true}

	runSweep := func(parallel int) ([]*Report, map[int64][]byte) {
		recs := make(map[int64]*obs.Recorder, seeds)
		for s := base.Seed; s < base.Seed+seeds; s++ {
			recs[s] = obs.NewRecorder()
		}
		reps, err := Sweep(base, seeds, parallel, func(seed int64) *obs.Recorder { return recs[seed] })
		if err != nil {
			t.Fatalf("sweep (parallel=%d): %v", parallel, err)
		}
		metrics := make(map[int64][]byte, seeds)
		for seed, rec := range recs {
			var buf bytes.Buffer
			if err := rec.Registry().WritePrometheus(&buf); err != nil {
				t.Fatalf("WritePrometheus: %v", err)
			}
			metrics[seed] = buf.Bytes()
		}
		return reps, metrics
	}

	seq, seqMetrics := runSweep(1)
	par, parMetrics := runSweep(2)
	for i := 0; i < seeds; i++ {
		seed := base.Seed + int64(i)
		if seq[i].Seed != seed || par[i].Seed != seed {
			t.Fatalf("seed order broken at %d: seq %d par %d", i, seq[i].Seed, par[i].Seed)
		}
		if a, b := seq[i].SummaryText(), par[i].SummaryText(); a != b {
			t.Errorf("seed %d summaries differ across worker counts:\n--- sequential\n%s--- parallel\n%s", seed, a, b)
		}
		if a, b := seq[i].LogText(), par[i].LogText(); a != b {
			t.Errorf("seed %d event logs differ across worker counts (%d vs %d bytes)", seed, len(a), len(b))
		}
		if !bytes.Equal(seqMetrics[seed], parMetrics[seed]) {
			t.Errorf("seed %d Prometheus metrics differ across worker counts (%d vs %d bytes)",
				seed, len(seqMetrics[seed]), len(parMetrics[seed]))
		}
	}
}

// TestTrafficSLOGolden pins the exact SLO report bytes for the canonical
// protected restore-storm run (seed 1) — the same bytes ustore-chaos
// -tenants -storm -protect -slo-out writes and the CI traffic-smoke job
// diffs. Regenerate with:
//
//	go test ./internal/chaos -run TrafficSLOGolden -update
func TestTrafficSLOGolden(t *testing.T) {
	rep := trafficRun(t, Options{Seed: 1, Tenants: true, Storm: true, Protect: true})
	checkSLOGolden(t, rep, "slo_seed1.txt")
}

// TestTrafficSLOGoldenStreaming pins the same canonical run with the P²
// streaming-quantile estimators: outcome counts and max must match the
// exact run byte-for-byte (streaming only changes how percentiles are
// computed, never which requests happen), and the approximate percentiles
// are pinned by their own golden. Regenerate with -update.
func TestTrafficSLOGoldenStreaming(t *testing.T) {
	rep := trafficRun(t, Options{Seed: 1, Tenants: true, Storm: true, Protect: true,
		StreamQuantiles: true})
	checkSLOGolden(t, rep, "slo_seed1_stream.txt")

	exact := trafficRun(t, Options{Seed: 1, Tenants: true, Storm: true, Protect: true})
	for i, row := range rep.SLO.Rows {
		e := exact.SLO.Rows[i]
		if row.Total != e.Total || row.OK != e.OK || row.Errors != e.Errors ||
			row.Shed != e.Shed || row.Throttled != e.Throttled || row.Max != e.Max {
			t.Errorf("row %s/%s: streaming run changed counts or max: %+v vs %+v",
				row.Class, row.Phase, row, e)
		}
	}
}

func checkSLOGolden(t *testing.T, rep *Report, name string) {
	t.Helper()
	got := []byte(rep.SLO.Text())
	golden := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("SLO report drifted from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
