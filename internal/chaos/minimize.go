package chaos

import "fmt"

// Minimize runs the seeded schedule and, if it produced violations, bisects
// for the shortest schedule prefix that still violates. Truncated prefixes
// are well-formed because the harness's drain phase heals any fault window
// whose closing event was cut off. Returns the minimized schedule, the
// report of its run, and the full run's report.
//
// If the full run is clean, Minimize returns (nil, nil, full, nil).
func Minimize(o Options) (schedule []Fault, minimized, full *Report, err error) {
	h, err := newHarness(o)
	if err != nil {
		return nil, nil, nil, err
	}
	all := genSchedule(o, h.hostNames(), h.diskNames(), h.leafHubNames(), h.machineNames())
	full, err = h.execute(all)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(full.Violations) == 0 {
		return nil, nil, full, nil
	}

	// Binary search the smallest k such that schedule[:k] violates. Fault
	// interactions are not strictly monotone (a later fault can mask an
	// earlier violation), so the result is confirmed by a final run; if
	// bisection ever loses the violation, fall back to the full schedule.
	lo, hi := 1, len(all) // invariant: all[:hi] violates (or hi == len(all))
	best := full
	for lo < hi {
		mid := (lo + hi) / 2
		rep, rerr := RunSchedule(o, all[:mid])
		if rerr != nil {
			return nil, nil, nil, fmt.Errorf("chaos: minimizing at prefix %d: %w", mid, rerr)
		}
		if len(rep.Violations) > 0 {
			hi = mid
			best = rep
		} else {
			lo = mid + 1
		}
	}
	if lo < len(all) {
		return all[:lo], best, full, nil
	}
	// Bisection converged on the full length: re-use the full run.
	return all, full, full, nil
}
