package chaos

import (
	"fmt"

	"ustore/internal/runner"
)

// Minimize runs the seeded schedule and, if it produced violations, bisects
// for the shortest schedule prefix that still violates. Truncated prefixes
// are well-formed because the harness's drain phase heals any fault window
// whose closing event was cut off. Returns the minimized schedule, the
// report of its run, and the full run's report.
//
// If the full run is clean, Minimize returns (nil, nil, full, nil).
func Minimize(o Options) (schedule []Fault, minimized, full *Report, err error) {
	return MinimizeParallel(o, 1)
}

// MinimizeParallel is Minimize with speculative parallel bisection: instead
// of probing one prefix length at a time, it expands the upcoming
// binary-search decision tree — the next midpoint, then both midpoints that
// could follow it, and so on — until it has up to parallel distinct prefix
// lengths, probes them all concurrently, and then replays the sequential
// bisection logic over the collected results.
//
// Because every probe is a self-contained deterministic run keyed only by
// (options, prefix length), a speculated probe returns exactly what the
// sequential probe at that length would have, so the committed search path —
// and therefore the minimized schedule and report — is byte-identical to
// Minimize's. Wrong-branch speculation costs only wasted work, never a
// different answer. parallel <= 1 degenerates to the plain sequential
// bisection.
//
// Probe runs never feed o.Recorder (concurrent probes would interleave its
// trace nondeterministically, and speculated probes would pollute it with
// runs the sequential search never performs); only the initial full run
// records. The model-checker history needs no such carve-out: each probe's
// harness builds its own model.History (there is no history field on
// Options to leak through), so probe metadata ops can never reach the
// parent run's history — TestMinimizeProbesDoNotFeedParentRecorder covers
// both isolation properties.
func MinimizeParallel(o Options, parallel int) (schedule []Fault, minimized, full *Report, err error) {
	h, err := newHarness(o)
	if err != nil {
		return nil, nil, nil, err
	}
	all := genSchedule(o, h.hostNames(), h.diskNames(), h.leafHubNames(), h.machineNames())
	full, err = h.execute(all)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(full.Violations) == 0 {
		return nil, nil, full, nil
	}
	if parallel < 1 {
		parallel = 1
	}
	oProbe := o
	oProbe.Recorder = nil

	// Binary search the smallest k such that schedule[:k] violates. Fault
	// interactions are not strictly monotone (a later fault can mask an
	// earlier violation), so the result is confirmed by a final run; if
	// bisection ever loses the violation, fall back to the full schedule.
	lo, hi := 1, len(all) // invariant: all[:hi] violates (or hi == len(all))
	best := full
	for lo < hi {
		// Expand the decision tree breadth-first from the current (lo, hi)
		// until we have up to parallel distinct midpoints to probe.
		type span struct{ lo, hi int }
		frontier := []span{{lo, hi}}
		var mids []int
		seen := make(map[int]bool)
		for len(frontier) > 0 && len(mids) < parallel {
			s := frontier[0]
			frontier = frontier[1:]
			if s.lo >= s.hi {
				continue
			}
			mid := (s.lo + s.hi) / 2
			if !seen[mid] {
				seen[mid] = true
				mids = append(mids, mid)
			}
			frontier = append(frontier, span{s.lo, mid}, span{mid + 1, s.hi})
		}

		reports, rerr := runner.MapErr(len(mids), parallel, func(i int) (*Report, error) {
			return RunSchedule(oProbe, all[:mids[i]])
		})
		if rerr != nil {
			return nil, nil, nil, fmt.Errorf("chaos: minimizing: %w", rerr)
		}
		byMid := make(map[int]*Report, len(mids))
		for i, mid := range mids {
			byMid[mid] = reports[i]
		}

		// Replay the sequential bisection over the probed results. The walk
		// stops when it needs a midpoint outside this round's speculation
		// (possible when the tree was cut mid-level); the next round resumes
		// from there.
		for lo < hi {
			mid := (lo + hi) / 2
			rep, ok := byMid[mid]
			if !ok {
				break
			}
			if len(rep.Violations) > 0 {
				hi = mid
				best = rep
			} else {
				lo = mid + 1
			}
		}
	}
	if lo < len(all) {
		return all[:lo], best, full, nil
	}
	// Bisection converged on the full length: re-use the full run.
	return all, full, full, nil
}
