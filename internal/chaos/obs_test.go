package chaos

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ustore/internal/obs"
)

// obsRun executes a short seeded chaos run with a fresh recorder and returns
// the recorder plus the run's metrics snapshots.
func obsRun(t *testing.T, seed int64) (*obs.Recorder, []byte, []byte) {
	t.Helper()
	rec := obs.NewRecorder()
	o := DefaultOptions(seed, 24*time.Hour)
	o.Recorder = rec
	rep, err := Run(o)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("unexpected violations: %v", rep.Violations)
	}
	var mJSON, mProm bytes.Buffer
	if err := rec.Registry().WriteJSON(&mJSON); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := rec.Registry().WritePrometheus(&mProm); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return rec, mJSON.Bytes(), mProm.Bytes()
}

// TestChaosRunTraceCoverage is the tentpole's acceptance check: one seeded
// chaos run must leave spans from every instrumented layer in the trace and
// key series in the metrics registry.
func TestChaosRunTraceCoverage(t *testing.T) {
	rec, mJSON, _ := obsRun(t, 7)

	var tr bytes.Buffer
	if err := rec.Tracer().WriteChromeTrace(&tr); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var parsed struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Cat  string `json:"cat"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tr.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spanCats := map[string]bool{}
	for _, e := range parsed.TraceEvents {
		if e.Ph == "X" {
			spanCats[e.Cat] = true
		}
	}
	for _, comp := range []string{"usb", "disk", "simnet", "core", "chaos"} {
		if !spanCats[comp] {
			t.Errorf("trace has no spans from component %q (span components: %v)", comp, spanCats)
		}
	}

	var snap obs.Snapshot
	if err := json.Unmarshal(mJSON, &snap); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	byName := map[string]obs.SeriesSnapshot{}
	for _, s := range snap.Metrics {
		byName[s.Name] = s
	}
	if s, ok := byName["disk_io_seconds"]; !ok || s.Count == 0 {
		t.Errorf("disk_io_seconds missing or empty: %+v", s)
	}
	for _, name := range []string{
		"usb_enumeration_seconds",
		"simnet_rpc_seconds",
		"core_heartbeats_total",
		"chaos_faults_total",
		"chaos_audit_seconds",
	} {
		if _, ok := byName[name]; !ok {
			t.Errorf("metrics snapshot missing %s", name)
		}
	}
}

// TestChaosMetricsDeterminism: two runs with the same seed must produce
// byte-identical metrics snapshots (JSON and Prometheus text).
func TestChaosMetricsDeterminism(t *testing.T) {
	_, json1, prom1 := obsRun(t, 11)
	_, json2, prom2 := obsRun(t, 11)
	if !bytes.Equal(json1, json2) {
		t.Errorf("same-seed runs produced different metrics JSON (%d vs %d bytes)", len(json1), len(json2))
	}
	if !bytes.Equal(prom1, prom2) {
		t.Errorf("same-seed runs produced different Prometheus text")
	}
}

// TestChaosSameSeedByteStability completes the determinism story beyond
// metrics: one simulated day run twice with the same seed must yield
// byte-identical Chrome traces, event logs, and summary blocks — every
// artifact a chaos run can externalize. Any drift here means a
// nondeterministic code path crept into the simulation (map iteration,
// wall-clock reads, unseeded randomness) and replay/minimization can no
// longer be trusted.
func TestChaosSameSeedByteStability(t *testing.T) {
	runOnce := func() (trace []byte, logText, summary string) {
		rec := obs.NewRecorder()
		o := DefaultOptions(13, 24*time.Hour)
		o.Recorder = rec
		rep, err := Run(o)
		if err != nil {
			t.Fatalf("chaos run: %v", err)
		}
		var tr bytes.Buffer
		if err := rec.Tracer().WriteChromeTrace(&tr); err != nil {
			t.Fatalf("WriteChromeTrace: %v", err)
		}
		return tr.Bytes(), rep.LogText(), rep.SummaryText()
	}
	tr1, log1, sum1 := runOnce()
	tr2, log2, sum2 := runOnce()
	if !bytes.Equal(tr1, tr2) {
		t.Errorf("same-seed runs produced different Chrome traces (%d vs %d bytes)", len(tr1), len(tr2))
	}
	if log1 != log2 {
		t.Errorf("same-seed runs produced different event logs")
	}
	if sum1 != sum2 {
		t.Errorf("same-seed runs produced different summaries:\n--- run1\n%s--- run2\n%s", sum1, sum2)
	}
	if !strings.Contains(sum1, "model") {
		t.Errorf("summary missing the model-check line:\n%s", sum1)
	}
}
