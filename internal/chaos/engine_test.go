package chaos

import (
	"bytes"
	"strings"
	"testing"

	"ustore/internal/obs"
)

// engineFleetRun runs the unit-loss scenario on the parallel engine with the
// given worker count and returns the report plus serialized metrics/trace.
func engineFleetRun(t *testing.T, units, shards, workers int) (*FleetReport, string, string) {
	t.Helper()
	rec := obs.NewRecorder()
	rep, err := RunFleet(FleetOptions{
		Seed:          9,
		Units:         units,
		Shards:        shards,
		UnitLoss:      true,
		Recorder:      rec,
		EngineWorkers: workers,
	})
	if err != nil {
		t.Fatalf("engine run (workers=%d): %s", workers, err)
	}
	var m, tr bytes.Buffer
	if err := rec.Registry().WriteJSON(&m); err != nil {
		t.Fatal(err)
	}
	if err := rec.Tracer().WriteChromeTrace(&tr); err != nil {
		t.Fatal(err)
	}
	return rep, m.String(), tr.String()
}

// TestFleetEngineUnitLoss is the functional gate for the partitioned engine:
// the full load -> kill-unit -> drain -> verify scenario must pass with the
// fleet sharded across per-unit partitions.
func TestFleetEngineUnitLoss(t *testing.T) {
	rep, _, _ := engineFleetRun(t, 8, 2, 2)
	if len(rep.Violations) != 0 {
		t.Fatalf("violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if !rep.Drained {
		t.Fatalf("unit not drained:\n%s", rep.LogText())
	}
	if rep.Failed != 0 || rep.Allocated != rep.Opts.Volumes {
		t.Fatalf("load phase: %d allocated, %d failed, want %d/0",
			rep.Allocated, rep.Failed, rep.Opts.Volumes)
	}
	if rep.Resolvable != rep.Allocated {
		t.Fatalf("resolvable %d != allocated %d", rep.Resolvable, rep.Allocated)
	}
}

// TestFleetEngineByteDeterminism is the tentpole contract: the same seed
// produces byte-identical logs, summaries, metrics JSON, trace JSON, and
// event counts at every worker count >= 1. Worker count only sizes the
// goroutine pool that executes each synchronization window; it never moves
// a window boundary.
func TestFleetEngineByteDeterminism(t *testing.T) {
	units, shards := 8, 2
	if !testing.Short() {
		units, shards = 64, 8
	}
	base, bm, bt := engineFleetRun(t, units, shards, 1)
	if len(base.Violations) != 0 {
		t.Fatalf("violations at workers=1:\n%s", strings.Join(base.Violations, "\n"))
	}
	for _, workers := range []int{2, 8} {
		rep, m, tr := engineFleetRun(t, units, shards, workers)
		if rep.LogText() != base.LogText() {
			t.Fatalf("workers=%d: log diverges from workers=1:\n--- w1\n%s\n--- w%d\n%s",
				workers, base.LogText(), workers, rep.LogText())
		}
		if rep.SummaryText() != base.SummaryText() {
			t.Fatalf("workers=%d: summary diverges:\n%s\nvs\n%s",
				workers, base.SummaryText(), rep.SummaryText())
		}
		if rep.Events != base.Events {
			t.Fatalf("workers=%d: event count %d != %d", workers, rep.Events, base.Events)
		}
		if m != bm {
			t.Fatalf("workers=%d: metrics JSON diverges from workers=1", workers)
		}
		if tr != bt {
			t.Fatalf("workers=%d: trace JSON diverges from workers=1", workers)
		}
	}
}
