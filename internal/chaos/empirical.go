package chaos

import (
	"math/rand"
	"time"

	"ustore/internal/faults"
)

// simDiskRepair is the operator swap time a failed disk spends out of the
// cluster under the empirical schedule, in simulated time. Fixed (rather
// than the uniform window the constant model draws) so the renewal model
// inside faults.SampleFleet and the emitted replace events agree: the
// sampler guarantees a disk's next failure lands after its replacement.
const simDiskRepair = 5 * time.Hour

// empiricalAge returns the media-age horizon the run compresses.
func empiricalAge(o Options) time.Duration {
	age := o.AgeYears
	if age <= 0 {
		age = 5
	}
	return time.Duration(age * float64(faults.Year))
}

// empiricalDiskSchedule draws the disk fail/replace events from the
// empirical failure model and maps them from media-age time onto the
// run's duration. Its rand stream is derived from the seed but separate
// from genSchedule's, so enabling the model perturbs no other family.
func empiricalDiskSchedule(o Options, disks []string) []Fault {
	rng := rand.New(rand.NewSource(o.Seed ^ 0x6d2e9a51c3b7))
	horizon := empiricalAge(o)
	scale := float64(horizon) / float64(o.Duration)
	repairAge := time.Duration(float64(simDiskRepair) * scale)
	var out []Fault
	for _, ev := range o.Empirical.SampleFleet(rng, len(disks), horizon, repairAge) {
		at := time.Duration(float64(ev.At) / scale)
		if at >= o.Duration {
			continue
		}
		end := at + simDiskRepair
		if end > o.Duration {
			end = o.Duration
		}
		out = append(out,
			Fault{At: at, Kind: FaultDiskFail, A: disks[ev.Disk]},
			Fault{At: end, Kind: FaultDiskReplace, A: disks[ev.Disk]})
	}
	return out
}
