package chaos

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ustore/internal/obs"
)

// staleLeaseOptions is the mutation scenario: host crashes only (so every
// violation can come only from the failover protocol), with the deliberate
// stale-lease bug switched on or off.
func staleLeaseOptions(seed int64, bug bool) Options {
	o := DefaultOptions(seed, 2*24*time.Hour)
	o.DiskFaults = false
	o.HubFaults = false
	o.NetFaults = false
	o.Corruptions = false
	o.InjectStaleLease = bug
	return o
}

// TestModelCheckerCatchesStaleLease is the mutation self-test the tentpole
// demands: with InjectStaleLease, a crashed host's endpoint skips export
// revocation, so after failover the old host still holds a serving lease
// while the master exports the disk at the new one. The stored data stays
// byte-identical (both exports reference the same simulated platters), so
// the read-back audits all pass — only the linearizability check against
// the reference model can see the double-serving metadata state. A clean
// harness run here would mean the checker has no teeth.
func TestModelCheckerCatchesStaleLease(t *testing.T) {
	rep, err := Run(staleLeaseOptions(*chaosSeed, true))
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if rep.Stats.ModelOps == 0 {
		t.Fatal("run recorded no metadata operations; history wiring is dead")
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "model:") && strings.Contains(v, "lease") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("stale-lease bug injected but the model checker reported no lease violation; violations:\n%s",
			strings.Join(rep.Violations, "\n"))
	}
	for _, v := range rep.Violations {
		if !strings.Contains(v, "model:") {
			t.Errorf("stale lease leaked into a data-path invariant (should be metadata-only): %s", v)
		}
	}
}

// TestModelViolationMinimizes shrinks the stale-lease violation down to the
// few faults that actually matter: one crash window (two schedule entries)
// is enough to trigger failover, so minimization must land at or below five
// faults.
func TestModelViolationMinimizes(t *testing.T) {
	o := staleLeaseOptions(*chaosSeed, true)
	sched, minimized, full, err := MinimizeParallel(o, 2)
	if err != nil {
		t.Fatalf("minimize: %v", err)
	}
	if full == nil || len(full.Violations) == 0 {
		t.Fatal("expected the full stale-lease run to violate")
	}
	if minimized == nil || len(minimized.Violations) == 0 {
		t.Fatal("minimized schedule no longer violates")
	}
	if len(sched) > 5 {
		t.Fatalf("minimized schedule still has %d faults (want <= 5):\n%s",
			len(sched), scheduleText(sched))
	}
	t.Logf("minimized %d faults -> %d:\n%s", len(full.Schedule), len(sched), scheduleText(sched))
}

// TestModelCheckerCleanSweep is the matching negative control: the same
// crash-heavy scenario without the bug must linearize cleanly across a seed
// sweep, proving the checker does not cry wolf on the correct failover
// protocol. Full mode sweeps 32 seeds (the acceptance bar); -short keeps 8.
func TestModelCheckerCleanSweep(t *testing.T) {
	seeds := 32
	if testing.Short() {
		seeds = 8
	}
	base := staleLeaseOptions(100, false)
	base.Duration = 24 * time.Hour
	reps, err := Sweep(base, seeds, 4, nil)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for _, rep := range reps {
		requireClean(t, rep)
		if rep.Stats.ModelOps == 0 {
			t.Errorf("seed %d: no metadata operations recorded", rep.Seed)
		}
		if rep.Stats.ModelPartitions == 0 {
			t.Errorf("seed %d: no model partitions checked", rep.Seed)
		}
	}
}

// TestMinimizeProbesDoNotFeedParentRecorder proves both probe-isolation
// properties minimize.go documents: speculative probe runs must not emit
// trace events into the parent run's Recorder (their interleaving is
// nondeterministic), and each probe harness checks its own model.History
// rather than appending to the parent's. The trace a Minimize call leaves
// in its Recorder must therefore be byte-identical to the trace of a single
// plain Run, and the probes must still have performed their own model
// checks.
func TestMinimizeProbesDoNotFeedParentRecorder(t *testing.T) {
	o := staleLeaseOptions(*chaosSeed, true)

	recMin := obs.NewRecorder()
	oMin := o
	oMin.Recorder = recMin
	_, minimized, full, err := MinimizeParallel(oMin, 2)
	if err != nil {
		t.Fatalf("minimize: %v", err)
	}
	if minimized == nil {
		t.Fatal("expected a violating (and thus minimized) run")
	}

	recRun := obs.NewRecorder()
	oRun := o
	oRun.Recorder = recRun
	rep, err := Run(oRun)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}

	var trMin, trRun bytes.Buffer
	if err := recMin.Tracer().WriteChromeTrace(&trMin); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if err := recRun.Tracer().WriteChromeTrace(&trRun); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if !bytes.Equal(trMin.Bytes(), trRun.Bytes()) {
		t.Errorf("Minimize's recorder trace differs from a plain run's (%d vs %d bytes): probe runs leaked trace events",
			trMin.Len(), trRun.Len())
	}

	// History isolation: the full run and the standalone run checked the
	// same ops, and the minimized probe checked its own (smaller) history
	// rather than accumulating onto the parent's.
	if full.Stats.ModelOps != rep.Stats.ModelOps {
		t.Errorf("full run checked %d model ops, plain run %d; histories are not isolated",
			full.Stats.ModelOps, rep.Stats.ModelOps)
	}
	if minimized.Stats.ModelOps == 0 {
		t.Error("minimized probe run checked no model ops; probe harness lost its history")
	}
	if minimized.Stats.ModelOps > full.Stats.ModelOps {
		t.Errorf("minimized prefix checked more ops (%d) than the full run (%d); probe history absorbed parent ops",
			minimized.Stats.ModelOps, full.Stats.ModelOps)
	}
}
