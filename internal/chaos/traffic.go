package chaos

import (
	"fmt"
	"time"

	"ustore/internal/core"
	"ustore/internal/fabric"
	"ustore/internal/model"
	"ustore/internal/paxos"
	"ustore/internal/workload"
)

// Traffic-run mode: instead of a fault schedule, the harness drives the
// multi-tenant open-loop traffic engine (internal/workload) against a
// smaller unit and reports per-class SLOs. Options.Tenants selects it;
// Storm adds the restore-storm waves and Protect arms the
// admission/throttle/autoscale stack — the protected and unprotected runs
// of one seed are the head-to-head overload experiment.

// trafficConfig is the traffic run's cluster shape: a 3-host 6-disk unit
// with the control-loop timers stretched the same way leanConfig does, no
// scrubber or power manager (the engine and protector own disk power), and
// checksums off so the read-heavy tenant workload needs no initial write
// pass (reads of unwritten space return zeros deterministically).
func trafficConfig(o Options, topts workload.TrafficOptions, hist *model.History) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.Fabric = fabric.Config{
		Hosts: []string{"h1", "h2", "h3"},
		Disks: 6,
		FanIn: 4,
	}
	cfg.HeartbeatInterval = 30 * time.Second
	cfg.HostDeadAfter = 3
	cfg.ElectionTTL = 30 * time.Minute
	cfg.Paxos = paxos.Config{
		HeartbeatInterval:   time.Minute,
		ElectionTimeoutBase: 4 * time.Minute,
		PhaseTimeout:        2 * time.Minute,
	}
	cfg.CoordSweepInterval = 2 * time.Minute
	cfg.ScrubInterval = 0
	cfg.SpinDownIdle = 0
	cfg.DisableChecksums = true
	cfg.RPCTimeout = 2 * time.Second
	cfg.Recorder = o.Recorder
	cfg.History = hist
	if o.Protect {
		// Arms the master-side per-caller metadata throttle; the rest of
		// the stack (admission, tenant buckets, autoscaler) is created by
		// the engine as a core.Protector over the booted cluster.
		cfg.Protection = topts.ProtectionConfig()
	}
	return cfg
}

// trafficOptions derives the engine options for a run from the shared
// defaults — goldens, CI smoke, and tests all go through here, so a seed
// fully determines the run.
func trafficOptions(o Options) workload.TrafficOptions {
	topts := workload.DefaultTrafficOptions(o.Seed)
	topts.StormEnabled = o.Storm
	topts.Protect = o.Protect
	topts.StreamingQuantiles = o.StreamQuantiles
	return topts
}

// runTraffic executes a traffic run and returns its report (Report.SLO
// carries the per-class outcome; the usual fault-schedule fields stay
// empty).
func runTraffic(o Options) (*Report, error) {
	topts := trafficOptions(o)
	hist := model.NewHistory()
	c, err := core.NewCluster(trafficConfig(o, topts, hist))
	if err != nil {
		return nil, err
	}
	rep := &Report{Seed: o.Seed, Opts: o}
	stamp := func() string {
		now := c.Sched.Now()
		day := now / (24 * time.Hour)
		rem := now % (24 * time.Hour)
		return fmt.Sprintf("[d%03d %02d:%02d:%02d]", day,
			rem/time.Hour, (rem%time.Hour)/time.Minute, (rem%time.Minute)/time.Second)
	}
	logf := func(format string, a ...any) {
		rep.Log = append(rep.Log, stamp()+" "+fmt.Sprintf(format, a...))
	}
	c.Settle(30 * time.Minute)
	if c.ActiveMaster() == nil {
		return nil, fmt.Errorf("chaos: no active master after boot settle")
	}
	eng := workload.NewTrafficEngine(c, topts, logf)
	if err := eng.Setup(); err != nil {
		return nil, err
	}
	rep.SLO = eng.Run()
	if m := c.ActiveMaster(); m != nil {
		if err := m.ValidateAllocations(); err != nil {
			v := stamp() + " traffic: allocation invariant: " + err.Error()
			rep.Violations = append(rep.Violations, v)
		}
	}
	logf("traffic run complete: %d violations", len(rep.Violations))
	return rep, nil
}
