package chaos

import (
	"strings"
	"testing"
)

// TestFleetFaultScheduleShape checks the schedule generator's contract: a
// pure function of options (same options, identical schedule), sorted by
// At, with the first slot move co-timed at t=0 with a crash of the source
// shard's leader (the straddle the redrive path depends on).
func TestFleetFaultScheduleShape(t *testing.T) {
	o := FleetOptions{Seed: 3, Units: 16, Shards: 4,
		ReplicaCrashes: 3, Partitions: 2, SlotMoves: 2}
	a, b := genFleetSchedule(o), genFleetSchedule(o)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("schedule lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
		if i > 0 && a[i].At < a[i-1].At {
			t.Fatalf("schedule unsorted at %d: %v after %v", i, a[i], a[i-1])
		}
	}
	if a[0].Kind != FFMoveSlot || a[0].At != 0 {
		t.Fatalf("first fault should be the t=0 straddle move, got %v", a[0])
	}
	if a[1].Kind != FFCrashReplica || a[1].At != 0 || a[1].Replica != -1 ||
		a[1].Shard != a[0].Slot%o.Shards {
		t.Fatalf("second fault should crash the move source's leader at t=0, got %v", a[1])
	}
	// A fleet with one shard cannot move slots; the generator must drop them.
	for _, ft := range genFleetSchedule(FleetOptions{Seed: 3, Shards: 1, SlotMoves: 3, ReplicaCrashes: 1}) {
		if ft.Kind == FFMoveSlot {
			t.Fatalf("single-shard schedule contains a slot move: %v", ft)
		}
	}
}

// TestFleetFaultRecovery is the fleet chaos acceptance run: crash/restart
// cycles, partition windows (one straddling an in-flight MoveSlot), and a
// forced scheduler-leader failover, after which recovery must leave every
// invariant AND the no-lost-no-duplicated-volume model check green. -short
// runs a smaller fleet with the same fault mix; the full run is the
// 64-unit/8-shard shape from the issue's acceptance criteria.
func TestFleetFaultRecovery(t *testing.T) {
	o := FleetOptions{
		Seed:           5,
		Units:          64,
		Shards:         8,
		ReplicaCrashes: 3,
		Partitions:     2,
		SlotMoves:      2,
	}
	if testing.Short() {
		o.Units, o.Shards = 16, 4
	}
	schedule := genFleetSchedule(o.withDefaults())
	rep, err := RunFleet(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations:\n%s\n--- log ---\n%s",
			strings.Join(rep.Violations, "\n"), rep.LogText())
	}
	if rep.FaultsApplied != len(schedule) {
		t.Fatalf("applied %d of %d scheduled faults", rep.FaultsApplied, len(schedule))
	}
	// The t=0 straddle (move + source-leader crash) must interrupt its move:
	// the redrive path has to actually run, not just exist.
	if rep.Redriven < 1 {
		t.Fatalf("no interrupted move re-driven; straddle did not interrupt:\n%s", rep.LogText())
	}
	if rep.Resolvable != rep.Allocated {
		t.Fatalf("resolvable %d != acknowledged %d", rep.Resolvable, rep.Allocated)
	}
	t.Logf("%d faults, %d allocs (%d degraded unavailable), %d redriven, map epoch %d",
		rep.FaultsApplied, rep.Allocated, rep.Unavailable, rep.Redriven, rep.MapEpoch)
}

// TestFleetFaultSkipRedriveMinimized plants the skipped-ledger-re-drive bug
// (recovery bumps the map epoch over an interrupted migration without
// re-driving its chain) and requires the minimizer to (a) catch it via the
// reference-model check and (b) shrink the violating schedule to the t=0
// straddle pair — at most 2 faults.
func TestFleetFaultSkipRedriveMinimized(t *testing.T) {
	o := FleetOptions{
		Seed:              5,
		Units:             16,
		Shards:            4,
		ReplicaCrashes:    2,
		Partitions:        1,
		SlotMoves:         2,
		InjectSkipRedrive: true,
	}
	schedule, minimized, full, err := MinimizeFleet(o, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Violations) == 0 {
		t.Fatalf("injected skip-redrive bug produced no violation:\n%s", full.LogText())
	}
	if minimized == nil || len(minimized.Violations) == 0 {
		t.Fatal("minimizer returned no violating prefix")
	}
	if len(schedule) > 2 {
		var lines []string
		for _, ft := range schedule {
			lines = append(lines, ft.String())
		}
		t.Fatalf("minimized schedule has %d faults, want <= 2:\n%s",
			len(schedule), strings.Join(lines, "\n"))
	}
	// The surviving pair must be the straddle: the move and its interrupter.
	if schedule[0].Kind != FFMoveSlot {
		t.Fatalf("minimized schedule does not start with the move: %v", schedule[0])
	}
	found := false
	for _, v := range minimized.Violations {
		if strings.Contains(v, "model:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("minimized violations never cite the reference model:\n%s",
			strings.Join(minimized.Violations, "\n"))
	}
	t.Logf("minimized to %d faults: %v (violation: %s)",
		len(schedule), schedule, minimized.Violations[0])
}

// TestFleetFaultEngineDeterminism extends the byte-determinism contract to
// fault runs: crash/partition/migration fault injection, jittered retries
// and all, must be a pure function of the seed at any engine worker count.
func TestFleetFaultEngineDeterminism(t *testing.T) {
	o := FleetOptions{
		Seed:           9,
		Units:          16,
		Shards:         4,
		ReplicaCrashes: 2,
		Partitions:     1,
		SlotMoves:      2,
	}
	run := func(workers int) *FleetReport {
		oo := o
		oo.EngineWorkers = workers
		rep, err := RunFleet(oo)
		if err != nil {
			t.Fatalf("workers=%d: %s", workers, err)
		}
		if len(rep.Violations) != 0 {
			t.Fatalf("workers=%d violations:\n%s", workers, strings.Join(rep.Violations, "\n"))
		}
		return rep
	}
	base := run(1)
	for _, workers := range []int{8} {
		rep := run(workers)
		if rep.LogText() != base.LogText() {
			t.Fatalf("workers=%d: fault-run log diverges from workers=1:\n--- w1\n%s\n--- w%d\n%s",
				workers, base.LogText(), workers, rep.LogText())
		}
		if rep.SummaryText() != base.SummaryText() {
			t.Fatalf("workers=%d: summary diverges:\n%s\nvs\n%s",
				workers, base.SummaryText(), rep.SummaryText())
		}
		if rep.Events != base.Events {
			t.Fatalf("workers=%d: event count %d != %d", workers, rep.Events, base.Events)
		}
	}
}

// TestFleetFaultLateCommitRegression pins the seed-1 repro of a real loss
// bug this suite caught: during a partition of two shard replicas, paxos
// leadership ping-pongs through the common peer, the shard leader's
// Allocate commit wedges behind the churn, the shard ELECTION fails over,
// and the new leader's rebuild runs before the old leader's commit finally
// applies — so the acknowledged record existed durably in the replicated
// tree but no leader's soft state ever held it. Fixed three ways: an
// election read barrier (rebuild only after a self-proposed command applies
// locally), durability-checked idempotent re-allocate/re-release replies,
// and leaders folding late-landing "/vol" tree applies into soft state via
// a store watch. Any regression in those paths loses a volume here.
func TestFleetFaultLateCommitRegression(t *testing.T) {
	o := FleetOptions{
		Seed:           1,
		Units:          64,
		Shards:         8,
		ReplicaCrashes: 3,
		Partitions:     2,
		SlotMoves:      2,
	}
	rep, err := RunFleet(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Resolvable != rep.Allocated {
		t.Fatalf("resolvable %d != acknowledged %d", rep.Resolvable, rep.Allocated)
	}
}
