package chaos

import (
	"strings"
	"testing"
	"time"
)

// TestFleetUnitLossSmall runs the quick 8-unit/2-shard unit-loss scenario:
// load, kill u000 (shard 0's first replica — forces a leader failover),
// drain, verify. CI's fleet-smoke job runs this same shape via ustore-chaos.
func TestFleetUnitLossSmall(t *testing.T) {
	rep, err := RunFleet(FleetOptions{Seed: 5, Units: 8, Shards: 2, UnitLoss: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if !rep.Drained {
		t.Fatalf("unit not drained:\n%s", rep.LogText())
	}
	if rep.Failed != 0 || rep.Allocated != rep.Opts.Volumes {
		t.Fatalf("load phase: %d allocated, %d failed, want %d/0",
			rep.Allocated, rep.Failed, rep.Opts.Volumes)
	}
	if rep.Resolvable != rep.Allocated {
		t.Fatalf("resolvable %d != allocated %d", rep.Resolvable, rep.Allocated)
	}
}

// TestFleetScaleUnitLoss is the fleet acceptance run: a 256-unit fleet
// (16384 disks, 16 metadata shards) loses a whole deploy unit and must
// re-replicate every affected volume onto survivors with the placement,
// shard-map and capacity invariants all holding.
func TestFleetScaleUnitLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("256-unit fleet run skipped in -short mode")
	}
	rep, err := RunFleet(FleetOptions{
		Seed:     1,
		Units:    256,
		Shards:   16,
		Clients:  32,
		Volumes:  512,
		UnitLoss: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Log) == 0 || !strings.Contains(rep.Log[0], "16384 disks") {
		t.Fatalf("expected a 16384-disk fleet, boot line: %q", rep.Log[:1])
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if !rep.Drained {
		t.Fatalf("unit not drained in %v:\n%s", rep.Opts.DrainTimeout, rep.LogText())
	}
	if rep.Failed != 0 || rep.Resolvable != 512 {
		t.Fatalf("load/verify: %d allocated, %d failed, %d resolvable",
			rep.Allocated, rep.Failed, rep.Resolvable)
	}
	t.Logf("drained u000 in %v, %d events", rep.DrainTime, rep.Events)
}

// TestFleetShardScaling measures allocation throughput at 1, 4 and 16
// shards on a fixed 48-unit fleet with offered load scaled to capacity
// (8 saturating closed-loop clients per shard). Each shard leader serializes
// metadata ops at OpServiceTime, so throughput must scale near-linearly
// with the shard count.
func TestFleetShardScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("shard scaling sweep skipped in -short mode")
	}
	tput := func(shards int) float64 {
		v, err := MeasureFleetAlloc(FleetOptions{
			Seed:       3,
			Units:      48,
			Shards:     shards,
			Clients:    8 * shards,
			VolumeSize: 8 << 20,
		}, 3*time.Second, 6*time.Second)
		if err != nil {
			t.Fatalf("%d shards: %s", shards, err)
		}
		t.Logf("%2d shards: %.0f allocs/sec", shards, v)
		return v
	}
	t1, t4, t16 := tput(1), tput(4), tput(16)
	// "Near-linear": at least 75% of perfect scaling at each step.
	if t4 < 3*t1 {
		t.Fatalf("4-shard throughput %.0f/s not near-linear over 1-shard %.0f/s", t4, t1)
	}
	if t16 < 12*t1 {
		t.Fatalf("16-shard throughput %.0f/s not near-linear over 1-shard %.0f/s", t16, t1)
	}
}

// TestFleetDeterministicReport proves a fleet run is a pure function of its
// options: two runs with the same seed produce byte-identical logs and
// summaries, down to the count of scheduler events fired.
func TestFleetDeterministicReport(t *testing.T) {
	o := FleetOptions{Seed: 11, Units: 8, Shards: 2, UnitLoss: true}
	a, err := RunFleet(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(o)
	if err != nil {
		t.Fatal(err)
	}
	if a.LogText() != b.LogText() {
		t.Fatalf("logs diverge:\n--- run A\n%s\n--- run B\n%s", a.LogText(), b.LogText())
	}
	if a.SummaryText() != b.SummaryText() {
		t.Fatalf("summaries diverge:\n%s\nvs\n%s", a.SummaryText(), b.SummaryText())
	}
	if a.Events != b.Events {
		t.Fatalf("event counts diverge: %d vs %d", a.Events, b.Events)
	}
}

// TestFleetSweepParallelMatchesSequential proves worker count cannot leak
// into results: a 3-seed sweep on 3 workers is byte-identical to the same
// sweep run sequentially.
func TestFleetSweepParallelMatchesSequential(t *testing.T) {
	base := FleetOptions{Seed: 21, Units: 8, Shards: 2, UnitLoss: true}
	seq, err := FleetSweep(base, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := FleetSweep(base, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i].LogText() != par[i].LogText() {
			t.Fatalf("seed %d: parallel log diverges from sequential", seq[i].Seed)
		}
		if seq[i].SummaryText() != par[i].SummaryText() {
			t.Fatalf("seed %d: parallel summary diverges from sequential", seq[i].Seed)
		}
	}
}
