package chaos

import (
	"fmt"
	"strings"

	"ustore/internal/obs"
	"ustore/internal/runner"
)

// Sweep runs base across n consecutive seeds (base.Seed, base.Seed+1, …,
// base.Seed+n-1) on up to parallel workers, returning one report per seed in
// seed order. Each run builds its own cluster and scheduler, so runs share
// no state and the reports are byte-identical to what n sequential Run calls
// would produce — TestSweepParallelMatchesSequential proves it.
//
// recFor, when non-nil, supplies a fresh per-seed Recorder (installed as
// that run's Options.Recorder). base.Recorder itself is ignored: sharing one
// recorder across concurrent runs would interleave trace events
// nondeterministically.
func Sweep(base Options, n, parallel int, recFor func(seed int64) *obs.Recorder) ([]*Report, error) {
	return runner.MapErr(n, parallel, func(i int) (*Report, error) {
		o := base
		o.Seed = base.Seed + int64(i)
		o.Recorder = nil
		if recFor != nil {
			o.Recorder = recFor(o.Seed)
		}
		return Run(o)
	})
}

// SummaryText renders the per-seed summary block ustore-chaos prints for a
// run. Living here (rather than in the command) lets tests assert that a
// parallel sweep emits byte-identical summaries to a sequential one.
func (r *Report) SummaryText() string {
	var b strings.Builder
	if r.SLO != nil {
		b.WriteString(r.SLO.Text())
		if len(r.Violations) == 0 {
			b.WriteString("  invariants: all held\n")
			return b.String()
		}
		fmt.Fprintf(&b, "  INVARIANT VIOLATIONS (%d):\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "    %s\n", v)
		}
		return b.String()
	}
	s := r.Stats
	days := r.Opts.Duration.Hours() / 24
	fmt.Fprintf(&b, "seed %d, %.3g days: %d faults applied\n", r.Seed, days, s.FaultsApplied)
	fmt.Fprintf(&b, "  writes   %d acked, %d failed; %d remounts\n", s.WritesAcked, s.WritesFailed, s.Remounts)
	fmt.Fprintf(&b, "  audits   %d reads, %d checksum detections, %d repairs\n", s.AuditReads, s.CorruptionsDetected, s.Repairs)
	fmt.Fprintf(&b, "  scrubber %d scanned, %d bad, %d repaired, %d unrepaired\n", s.ScrubScanned, s.ScrubBad, s.ScrubRepaired, s.ScrubUnrepaired)
	fmt.Fprintf(&b, "  model    %d metadata ops checked in %d partitions\n", s.ModelOps, s.ModelPartitions)
	if r.Opts.GrayFaults || r.Opts.Mitigation {
		fmt.Fprintf(&b, "  gray     %d quarantines, %d migrations; %d probes (%d errors), p99 healthy %v / degraded %v\n",
			s.GrayQuarantines, s.GrayMigrations, s.ProbeReads, s.ProbeErrors, s.ProbeHealthyP99, s.ProbeDegradedP99)
		fmt.Fprintf(&b, "  hedging  %d hedges (%d wins), %d breaker opens, %d redirects, %d fast fails\n",
			s.Hedges, s.HedgeWins, s.BreakerOpens, s.Redirects, s.FastFails)
	}
	if len(r.Violations) == 0 {
		b.WriteString("  invariants: all held\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  INVARIANT VIOLATIONS (%d):\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "    %s\n", v)
	}
	return b.String()
}
