package chaos

import (
	"strings"
	"testing"
	"time"
)

// grayOnlyOptions is the gray-failure scenario: fail-slow faults with every
// fail-stop family off, a stable workload (no background writes racing probe
// verification), and the prober workload measuring read tails.
func grayOnlyOptions(seed int64) Options {
	o := DefaultOptions(seed, 2*24*time.Hour)
	o.HostCrashes = false
	o.DiskFaults = false
	o.HubFaults = false
	o.NetFaults = false
	o.Corruptions = false
	o.GrayFaults = true
	o.Pairs = 2
	o.BlocksPerSpace = 4
	o.WriteEvery = 0
	o.AuditEvery = 12 * time.Hour
	o.ScrubEvery = 0
	return o
}

// graySchedule is the acceptance scenario: one high-severity fail-slow disk
// under workload copy 0, opening at 6h and never healing (the drain phase
// recovers it). Copy-relative targeting resolves the disk at apply time, so
// the schedule works for any seed's placement.
func graySchedule() []Fault {
	return []Fault{{At: 6 * time.Hour, Kind: FaultDiskDegrade, Copy: 0, Rate: 0.8}}
}

// TestGrayMitigatedTailBoundedAndDrained is the mitigation-ON half of the
// gray-failure acceptance test: with the detect-quarantine-hedge stack
// enabled, a fail-slow disk under one replica must (a) keep the probe read
// p99 within 2x the healthy baseline, (b) get quarantined by the master's
// peer-comparison scoring, and (c) be drained — its replica proactively
// migrated to a healthy disk.
func TestGrayMitigatedTailBoundedAndDrained(t *testing.T) {
	o := grayOnlyOptions(*chaosSeed)
	o.Mitigation = true
	rep, err := RunSchedule(o, graySchedule())
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	requireClean(t, rep)
	s := rep.Stats
	t.Logf("mitigated: %d quarantines, %d migrations, %d probes (%d errors), "+
		"p99 healthy %v / degraded %v, %d hedges (%d wins), %d breaker opens, %d redirects",
		s.GrayQuarantines, s.GrayMigrations, s.ProbeReads, s.ProbeErrors,
		s.ProbeHealthyP99, s.ProbeDegradedP99, s.Hedges, s.HedgeWins, s.BreakerOpens, s.Redirects)
	if s.GrayQuarantines == 0 {
		t.Error("gray disk was never quarantined")
	}
	if s.GrayMigrations == 0 {
		t.Error("quarantined disk was never drained (no migrations)")
	}
	if !strings.Contains(rep.LogText(), "quarantine drain:") {
		t.Error("log records no quarantine drain")
	}
	if s.Hedges == 0 || s.HedgeWins == 0 {
		t.Errorf("hedging never engaged: %d hedges, %d wins", s.Hedges, s.HedgeWins)
	}
	if s.BreakerOpens == 0 {
		t.Error("circuit breaker never opened against the fail-slow disk")
	}
	if s.ProbeHealthyP99 <= 0 || s.ProbeDegradedP99 <= 0 {
		t.Fatalf("probe p99s not measured: healthy %v, degraded %v", s.ProbeHealthyP99, s.ProbeDegradedP99)
	}
	if s.ProbeDegradedP99 > 2*s.ProbeHealthyP99 {
		t.Errorf("mitigated degraded p99 %v exceeds 2x healthy baseline %v",
			s.ProbeDegradedP99, s.ProbeHealthyP99)
	}
}

// TestGrayUnmitigatedTailInflates is the mitigation-OFF half: the same seed
// and schedule with the stack disabled must show the raw cost of the
// fail-slow disk — probe p99 inflated at least 5x over the healthy baseline,
// and no quarantine (the detector is off).
func TestGrayUnmitigatedTailInflates(t *testing.T) {
	o := grayOnlyOptions(*chaosSeed)
	o.Mitigation = false
	rep, err := RunSchedule(o, graySchedule())
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	requireClean(t, rep)
	s := rep.Stats
	t.Logf("unmitigated: %d probes (%d errors), p99 healthy %v / degraded %v",
		s.ProbeReads, s.ProbeErrors, s.ProbeHealthyP99, s.ProbeDegradedP99)
	if s.GrayQuarantines != 0 || s.GrayMigrations != 0 || s.Hedges != 0 {
		t.Errorf("mitigation ran while disabled: %d quarantines, %d migrations, %d hedges",
			s.GrayQuarantines, s.GrayMigrations, s.Hedges)
	}
	if s.ProbeHealthyP99 <= 0 || s.ProbeDegradedP99 <= 0 {
		t.Fatalf("probe p99s not measured: healthy %v, degraded %v", s.ProbeHealthyP99, s.ProbeDegradedP99)
	}
	if s.ProbeDegradedP99 < 5*s.ProbeHealthyP99 {
		t.Errorf("unmitigated degraded p99 %v is not >= 5x healthy baseline %v — "+
			"the injected gray fault has no teeth", s.ProbeDegradedP99, s.ProbeHealthyP99)
	}
}

// TestQuarantineBlindViolationMinimizes is the quarantine checker's mutation
// self-test at the harness level: with InjectQuarantineBlind the allocator
// ignores quarantine, so the drain migration lands right back on the gray
// disk and ValidateQuarantine must flag it — and MinimizeParallel must
// shrink the generated schedule to a violating prefix.
func TestQuarantineBlindViolationMinimizes(t *testing.T) {
	o := grayOnlyOptions(*chaosSeed)
	o.Mitigation = true
	o.InjectQuarantineBlind = true
	sched, min, full, err := MinimizeParallel(o, 2)
	if err != nil {
		t.Fatalf("minimize: %v", err)
	}
	if len(full.Violations) == 0 {
		t.Fatalf("quarantine-blind run violated nothing; the checker has no teeth\nschedule:\n%s",
			scheduleText(full.Schedule))
	}
	found := false
	for _, v := range full.Violations {
		if strings.Contains(v, "quarantine invariant") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations do not mention the quarantine invariant:\n%s",
			strings.Join(full.Violations, "\n"))
	}
	if min == nil {
		t.Fatal("minimizer returned no minimized report")
	}
	if len(sched) > len(full.Schedule) {
		t.Fatalf("minimized schedule (%d faults) larger than the original (%d)",
			len(sched), len(full.Schedule))
	}
	if len(min.Violations) == 0 {
		t.Fatal("minimized schedule no longer violates")
	}
	t.Logf("minimized %d faults -> %d", len(full.Schedule), len(sched))
}
