// Package chaos is UStore's deterministic chaos-testing harness. It composes
// randomized fault schedules — host crashes, disk and hub failures with
// operator replacement, network partitions, message loss and duplication,
// and silent media corruption — against a full simulated cluster while a
// replicated workload keeps writing, and continuously checks the system's
// durability and liveness invariants:
//
//   - no acknowledged write is ever lost or silently corrupted;
//   - clients re-converge (remount) after host failover;
//   - exactly one active master exists once the quorum is quiet;
//   - allocation records never double-assign disk extents;
//   - (gray runs) the allocator never places new space on a quarantined
//     disk, and hedged probe reads always return the acknowledged bytes.
//
// Gray (fail-slow) faults — disk degradation, USB link flaps and
// downgrades, host brownouts — are opt-in via Options.GrayFaults, with the
// detect-quarantine-hedge mitigation stack toggled independently by
// Options.Mitigation so mitigated and unmitigated runs of the same seed can
// be compared head to head.
//
// Every run is seeded and replayable: the same Options produce a
// byte-identical event log. Minimize re-runs a violating schedule's prefixes
// to find the shortest one that still violates.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"ustore/internal/faults"
	"ustore/internal/obs"
)

// FaultKind classifies one scheduled fault event.
type FaultKind int

// Fault kinds. Window-opening kinds pair with the closing kind right after
// them; FaultCorrupt is a point event with no closing pair.
const (
	FaultHostCrash FaultKind = iota
	FaultHostRestore
	FaultDiskFail
	FaultDiskReplace
	FaultHubFail
	FaultHubReplace
	FaultLinkCut
	FaultLinkHeal
	FaultLinkLoss
	FaultLinkLossEnd
	FaultLinkDup
	FaultLinkDupEnd
	FaultIsolate
	FaultRejoin
	FaultCorrupt
	// Gray (fail-slow) faults: the component keeps answering, just badly.
	FaultDiskDegrade
	FaultDiskRecover
	FaultLinkFlap
	FaultLinkDowngrade
	FaultLinkRestore
	FaultBrownout
	FaultBrownoutEnd
)

// String names the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultHostCrash:
		return "host-crash"
	case FaultHostRestore:
		return "host-restore"
	case FaultDiskFail:
		return "disk-fail"
	case FaultDiskReplace:
		return "disk-replace"
	case FaultHubFail:
		return "hub-fail"
	case FaultHubReplace:
		return "hub-replace"
	case FaultLinkCut:
		return "link-cut"
	case FaultLinkHeal:
		return "link-heal"
	case FaultLinkLoss:
		return "link-loss"
	case FaultLinkLossEnd:
		return "link-loss-end"
	case FaultLinkDup:
		return "link-dup"
	case FaultLinkDupEnd:
		return "link-dup-end"
	case FaultIsolate:
		return "isolate"
	case FaultRejoin:
		return "rejoin"
	case FaultCorrupt:
		return "corrupt"
	case FaultDiskDegrade:
		return "disk-degrade"
	case FaultDiskRecover:
		return "disk-recover"
	case FaultLinkFlap:
		return "link-flap"
	case FaultLinkDowngrade:
		return "link-downgrade"
	case FaultLinkRestore:
		return "link-restore"
	case FaultBrownout:
		return "brownout"
	case FaultBrownoutEnd:
		return "brownout-end"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one entry of a chaos schedule. At is relative to the start of the
// fault phase (after boot and the initial write pass).
type Fault struct {
	At   time.Duration
	Kind FaultKind
	// A is the primary target: a host, disk, hub, or machine name. Gray
	// disk faults (degrade/downgrade and their closers) with A == ""
	// resolve the target at apply time to the disk holding workload replica
	// Copy — letting hand-written test schedules target "the disk under
	// copy N" without knowing the seed's placement.
	A string
	// B is the second machine of a link fault.
	B string
	// Rate is the loss/duplication probability of a link fault window, or
	// the severity in (0,1] of a gray fault (degrade/downgrade/brownout).
	Rate float64
	// Copy and Block select the workload replica and block a FaultCorrupt
	// event damages (replicas are indexed in allocation order). For
	// FaultLinkFlap, Copy is the retry-storm count instead.
	Copy  int
	Block int
}

// String renders the fault for the event log.
func (f Fault) String() string {
	switch f.Kind {
	case FaultLinkCut, FaultLinkHeal:
		return fmt.Sprintf("%s %s<->%s", f.Kind, f.A, f.B)
	case FaultLinkLoss, FaultLinkDup:
		return fmt.Sprintf("%s %s<->%s p=%.2f", f.Kind, f.A, f.B, f.Rate)
	case FaultLinkLossEnd, FaultLinkDupEnd:
		return fmt.Sprintf("%s %s<->%s", f.Kind, f.A, f.B)
	case FaultCorrupt:
		return fmt.Sprintf("corrupt copy%d/block%d", f.Copy, f.Block)
	case FaultDiskDegrade, FaultLinkDowngrade, FaultBrownout:
		return fmt.Sprintf("%s %s sev=%.2f", f.Kind, f.grayTarget(), f.Rate)
	case FaultLinkFlap:
		return fmt.Sprintf("%s %s storms=%d", f.Kind, f.A, f.Copy)
	case FaultDiskRecover, FaultLinkRestore:
		return fmt.Sprintf("%s %s", f.Kind, f.grayTarget())
	default:
		return fmt.Sprintf("%s %s", f.Kind, f.A)
	}
}

// grayTarget renders a gray disk fault's target: the named disk, or the
// copy-relative placeholder when resolution happens at apply time.
func (f Fault) grayTarget() string {
	if f.A == "" {
		return fmt.Sprintf("disk(copy%d)", f.Copy)
	}
	return f.A
}

// Options parameterizes a chaos run. The zero value is not useful; start
// from DefaultOptions.
type Options struct {
	// Seed drives both the cluster simulation and the schedule generator.
	Seed int64
	// Duration is the fault phase's simulated length.
	Duration time.Duration

	// Fault family switches.
	HostCrashes bool
	DiskFaults  bool
	HubFaults   bool
	NetFaults   bool
	Corruptions bool
	// GrayFaults enables fail-slow injection: disk degradation windows
	// (inflated service time, capped bandwidth, intermittent EIO), USB link
	// flap storms and USB3->USB2 downgrades, and host brownouts. Off by
	// default: gray runs additionally start a hedged-read prober workload,
	// so existing seeds stay byte-identical unless opted in.
	GrayFaults bool
	// Mitigation turns on the detect-quarantine-hedge stack against gray
	// faults: master-side disk health scoring and quarantine, harness-side
	// proactive migration off quarantined disks, and client-side adaptive
	// timeouts + hedged reads + circuit breakers on the prober workload.
	// With GrayFaults on and Mitigation off, the run measures the
	// unmitigated cost of gray failures under the same seed.
	Mitigation bool

	// Tenants switches the run to traffic mode: instead of a fault
	// schedule, the multi-tenant open-loop traffic engine
	// (internal/workload) drives the cluster and the report carries
	// per-class SLOs (Report.SLO). Storm adds the restore-storm waves;
	// Protect arms the admission/throttle/autoscale protection stack.
	// Fault-family switches are ignored in traffic mode.
	Tenants bool
	Storm   bool
	Protect bool
	// StreamQuantiles switches the traffic SLO report to O(1)-memory P²
	// percentile estimators (workload.TrafficOptions.StreamingQuantiles).
	StreamQuantiles bool

	// DisableChecksums turns off the per-block CRC export wrapper, so
	// injected media corruption reaches clients silently. Used to prove the
	// invariant checker detects real corruption.
	DisableChecksums bool

	// Workload shape: Pairs replicated spaces (2 copies each), each
	// BlocksPerSpace checksum blocks long. WriteEvery paces the mutating
	// workload (0 disables it, leaving only the initial write pass);
	// AuditEvery paces the read-back invariant audit.
	Pairs          int
	BlocksPerSpace int
	WriteEvery     time.Duration
	AuditEvery     time.Duration
	// ScrubEvery is the per-endpoint scrub cadence (0 disables scrubbing).
	ScrubEvery time.Duration

	// Recorder, when non-nil, collects metrics and trace events from the
	// run: the cluster's own instrumentation plus the harness's fault
	// injections, fault windows, and invariant-audit timings. Use a fresh
	// Recorder per run (it scopes the per-run metric state).
	Recorder *obs.Recorder `json:"-"`

	// Empirical, when non-nil, swaps the schedule's uniform disk-failure
	// windows for draws from the empirical failure model (bathtub AFR with
	// infant mortality and wear-out, correlated vintage-batch failures) and
	// arms every disk's uncorrectable-read-error rate from the model's
	// UREBits. AgeYears maps the run's Duration onto that many years of
	// media aging (accelerated aging: a 2-simulated-day run sweeps a 5-year
	// bathtub); <= 0 means 5. The empirical draws use their own rand stream,
	// so every other fault family keeps its per-seed schedule and a
	// constant-vs-empirical pair of runs differs only in disk events. Nil
	// (the default) leaves the seed byte-identical.
	Empirical *faults.EmpiricalModel
	AgeYears  float64

	// InjectStaleLease enables the deliberate stale-lease protocol bug
	// (core.Config.InjectStaleLease) so the model checker's mutation
	// self-test can prove it catches a broken failover path. Never set
	// outside tests.
	InjectStaleLease bool

	// InjectQuarantineBlind makes the master's allocator ignore quarantine
	// (core.Config.InjectQuarantineBlind) so the quarantine invariant
	// checker's mutation self-test can prove ValidateQuarantine catches a
	// broken allocator. Never set outside tests.
	InjectQuarantineBlind bool
}

// DefaultOptions returns an all-faults configuration for the given seed and
// duration.
func DefaultOptions(seed int64, duration time.Duration) Options {
	return Options{
		Seed:           seed,
		Duration:       duration,
		HostCrashes:    true,
		DiskFaults:     true,
		HubFaults:      true,
		NetFaults:      true,
		Corruptions:    true,
		Pairs:          4,
		BlocksPerSpace: 8,
		WriteEvery:     30 * time.Minute,
		AuditEvery:     12 * time.Hour,
		ScrubEvery:     time.Hour,
	}
}

// genSchedule builds the fault schedule for a run, deterministically from
// opts.Seed. Window faults (crash/fail/cut/loss/dup/isolate) are generated
// per target with non-overlapping windows so every opening event has exactly
// one matching closing event; prefixes cut by the minimizer may leave
// windows open — the harness's drain phase heals them.
func genSchedule(o Options, hosts, disks, hubs, machines []string) []Fault {
	rng := rand.New(rand.NewSource(o.Seed))
	var out []Fault
	d := o.Duration

	// windows lays n non-overlapping [start,end) windows on [0,d).
	windows := func(n int, minW, maxW time.Duration) [][2]time.Duration {
		starts := make([]time.Duration, n)
		for i := range starts {
			starts[i] = time.Duration(rng.Int63n(int64(d)))
		}
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		var ws [][2]time.Duration
		prevEnd := time.Duration(0)
		for _, s := range starts {
			if s < prevEnd+10*time.Minute {
				s = prevEnd + 10*time.Minute
			}
			if s >= d {
				break
			}
			w := minW + time.Duration(rng.Int63n(int64(maxW-minW)+1))
			e := s + w
			if e > d {
				e = d
			}
			ws = append(ws, [2]time.Duration{s, e})
			prevEnd = e
		}
		return ws
	}
	// count turns a mean spacing into a per-target window count, guaranteeing
	// at least min across short runs.
	count := func(spacing time.Duration, min int) int {
		n := int(d / spacing)
		if n < min {
			n = min
		}
		return n
	}

	if o.HostCrashes {
		for _, h := range hosts {
			for _, w := range windows(count(30*24*time.Hour, 1), 30*time.Minute, 4*time.Hour) {
				out = append(out,
					Fault{At: w[0], Kind: FaultHostCrash, A: h},
					Fault{At: w[1], Kind: FaultHostRestore, A: h})
			}
		}
	}
	if o.DiskFaults {
		// The constant-model windows are always drawn — even when the
		// empirical model replaces them below — so the shared rng stream
		// stays aligned and every other family's schedule is byte-identical
		// between a constant and an empirical run of the same seed.
		diskStart := len(out)
		for i, disk := range disks {
			n := count(120*24*time.Hour, 0)
			if i == 0 && n == 0 {
				n = 1 // short runs still fail at least one disk
			}
			if n == 0 {
				continue
			}
			for _, w := range windows(n, 2*time.Hour, 8*time.Hour) {
				out = append(out,
					Fault{At: w[0], Kind: FaultDiskFail, A: disk},
					Fault{At: w[1], Kind: FaultDiskReplace, A: disk})
			}
		}
		if o.Empirical != nil {
			out = append(out[:diskStart], empiricalDiskSchedule(o, disks)...)
		}
	}
	if o.HubFaults {
		for i, hub := range hubs {
			n := count(200*24*time.Hour, 0)
			if i == 0 && n == 0 {
				n = 1
			}
			if n == 0 {
				continue
			}
			for _, w := range windows(n, 2*time.Hour, 6*time.Hour) {
				out = append(out,
					Fault{At: w[0], Kind: FaultHubFail, A: hub},
					Fault{At: w[1], Kind: FaultHubReplace, A: hub})
			}
		}
	}
	if o.NetFaults {
		// Random machine-pair windows: cuts, loss, duplication. Per-pair
		// bookkeeping keeps windows of the same kind from overlapping.
		pick := func() (string, string) {
			i := rng.Intn(len(machines))
			j := rng.Intn(len(machines) - 1)
			if j >= i {
				j++
			}
			a, b := machines[i], machines[j]
			if a > b {
				a, b = b, a
			}
			return a, b
		}
		type pairKey struct{ a, b string }
		place := func(n int, minW, maxW time.Duration, open, close FaultKind, rated bool) {
			lastEnd := make(map[pairKey]time.Duration)
			for i := 0; i < n; i++ {
				a, b := pick()
				k := pairKey{a, b}
				s := time.Duration(rng.Int63n(int64(d)))
				if s < lastEnd[k]+10*time.Minute {
					s = lastEnd[k] + 10*time.Minute
				}
				w := minW + time.Duration(rng.Int63n(int64(maxW-minW)+1))
				rate := 0.05 + 0.35*rng.Float64()
				if s >= d {
					continue
				}
				e := s + w
				if e > d {
					e = d
				}
				lastEnd[k] = e
				fo := Fault{At: s, Kind: open, A: a, B: b}
				if rated {
					fo.Rate = rate
				}
				out = append(out, fo, Fault{At: e, Kind: close, A: a, B: b})
			}
		}
		place(count(8*24*time.Hour, 2), 10*time.Minute, 90*time.Minute, FaultLinkCut, FaultLinkHeal, false)
		place(count(10*24*time.Hour, 2), 30*time.Minute, 3*time.Hour, FaultLinkLoss, FaultLinkLossEnd, true)
		place(count(15*24*time.Hour, 1), 30*time.Minute, 3*time.Hour, FaultLinkDup, FaultLinkDupEnd, true)
		// Master-machine isolation windows (full partition of one replica).
		for _, m := range machines {
			if !strings.HasPrefix(m, "mach-") {
				continue
			}
			for _, w := range windows(count(40*24*time.Hour, 1), 30*time.Minute, 2*time.Hour) {
				out = append(out,
					Fault{At: w[0], Kind: FaultIsolate, A: m},
					Fault{At: w[1], Kind: FaultRejoin, A: m})
			}
		}
	}
	if o.Corruptions {
		n := count(8*24*time.Hour, 2)
		for i := 0; i < n; i++ {
			out = append(out, Fault{
				At:    time.Duration(rng.Int63n(int64(d))),
				Kind:  FaultCorrupt,
				Copy:  rng.Intn(2 * o.Pairs),
				Block: rng.Intn(o.BlocksPerSpace),
			})
		}
	}
	if o.GrayFaults {
		// Fail-slow disk windows: the disk keeps serving, just badly.
		for i, disk := range disks {
			n := count(90*24*time.Hour, 0)
			if i == 0 && n == 0 {
				n = 1 // short runs still gray at least one disk
			}
			if n == 0 {
				continue
			}
			for _, w := range windows(n, time.Hour, 12*time.Hour) {
				out = append(out,
					Fault{At: w[0], Kind: FaultDiskDegrade, A: disk, Rate: 0.3 + 0.6*rng.Float64()},
					Fault{At: w[1], Kind: FaultDiskRecover, A: disk})
			}
		}
		// USB link flap storms: point events, the device re-enumerates.
		for i, n := 0, count(20*24*time.Hour, 1); i < n; i++ {
			out = append(out, Fault{
				At:   time.Duration(rng.Int63n(int64(d))),
				Kind: FaultLinkFlap,
				A:    disks[rng.Intn(len(disks))],
				Copy: 1 + rng.Intn(3),
			})
		}
		// USB3 -> USB2 downgrade windows: the link renegotiates slow.
		for i, disk := range disks {
			n := count(150*24*time.Hour, 0)
			if i == 1 && n == 0 {
				n = 1
			}
			if n == 0 {
				continue
			}
			for _, w := range windows(n, 2*time.Hour, 8*time.Hour) {
				out = append(out,
					Fault{At: w[0], Kind: FaultLinkDowngrade, A: disk, Rate: 0.2 + 0.6*rng.Float64()},
					Fault{At: w[1], Kind: FaultLinkRestore, A: disk})
			}
		}
		// Host brownout windows: RPC service-time inflation on one host.
		for i, host := range hosts {
			n := count(120*24*time.Hour, 0)
			if i == 0 && n == 0 {
				n = 1
			}
			if n == 0 {
				continue
			}
			for _, w := range windows(n, 30*time.Minute, 4*time.Hour) {
				out = append(out,
					Fault{At: w[0], Kind: FaultBrownout, A: host, Rate: 0.2 + 0.5*rng.Float64()},
					Fault{At: w[1], Kind: FaultBrownoutEnd, A: host})
			}
		}
	}

	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
