package chaos

import (
	"reflect"
	"testing"
	"time"

	"ustore/internal/obs"
)

// sweepOptions is a short all-faults configuration sized so an 8-seed sweep
// stays fast in CI.
func sweepOptions(seed int64) Options {
	return DefaultOptions(seed, 6*time.Hour)
}

// TestSweepParallelMatchesSequential is the determinism contract for the
// parallel runner: an 8-seed sweep run on 4 workers must emit byte-identical
// per-seed reports (summary, event log, violations) to the same sweep run
// sequentially. Run under -race in CI, this doubles as the data-race test
// over concurrent simulations.
func TestSweepParallelMatchesSequential(t *testing.T) {
	const seeds = 8
	base := sweepOptions(*chaosSeed)

	seq, err := Sweep(base, seeds, 1, nil)
	if err != nil {
		t.Fatalf("sequential sweep: %v", err)
	}
	par, err := Sweep(base, seeds, 4, nil)
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}
	if len(seq) != seeds || len(par) != seeds {
		t.Fatalf("report counts: seq %d, par %d, want %d", len(seq), len(par), seeds)
	}
	for i := 0; i < seeds; i++ {
		if seq[i].Seed != base.Seed+int64(i) || par[i].Seed != seq[i].Seed {
			t.Fatalf("seed order broken at %d: seq %d par %d", i, seq[i].Seed, par[i].Seed)
		}
		if a, b := seq[i].SummaryText(), par[i].SummaryText(); a != b {
			t.Errorf("seed %d summaries differ:\n--- sequential\n%s--- parallel\n%s", seq[i].Seed, a, b)
		}
		if a, b := seq[i].LogText(), par[i].LogText(); a != b {
			t.Errorf("seed %d event logs differ (%d vs %d bytes)", seq[i].Seed, len(a), len(b))
		}
		if !reflect.DeepEqual(seq[i].Stats, par[i].Stats) {
			t.Errorf("seed %d stats differ:\nseq %+v\npar %+v", seq[i].Seed, seq[i].Stats, par[i].Stats)
		}
	}
}

// TestSweepPerSeedRecorders: each seed gets its own recorder and its metrics
// land there even when runs execute concurrently.
func TestSweepPerSeedRecorders(t *testing.T) {
	const seeds = 4
	base := sweepOptions(*chaosSeed)
	recs := make(map[int64]*obs.Recorder, seeds)
	for s := base.Seed; s < base.Seed+seeds; s++ {
		recs[s] = obs.NewRecorder()
	}
	reps, err := Sweep(base, seeds, 2, func(seed int64) *obs.Recorder { return recs[seed] })
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reps {
		rec := recs[rep.Seed]
		if rec == nil {
			t.Fatalf("unexpected seed %d", rep.Seed)
		}
		if v := rec.Counter("simnet", "msgs_delivered_total").Value(); v == 0 {
			t.Errorf("seed %d recorder saw no delivered messages", rep.Seed)
		}
	}
}

// TestMinimizeParallelMatchesSequential: speculative parallel bisection must
// commit the exact search path the sequential bisection takes, producing a
// byte-identical minimized schedule and report.
func TestMinimizeParallelMatchesSequential(t *testing.T) {
	o := corruptionOnlyOptions(*chaosSeed)
	o.DisableChecksums = true

	sSched, sMin, sFull, err := Minimize(o)
	if err != nil {
		t.Fatalf("sequential minimize: %v", err)
	}
	pSched, pMin, pFull, err := MinimizeParallel(o, 4)
	if err != nil {
		t.Fatalf("parallel minimize: %v", err)
	}
	if sFull == nil || len(sFull.Violations) == 0 {
		t.Fatal("expected the full corruption run to violate")
	}
	if !reflect.DeepEqual(sSched, pSched) {
		t.Fatalf("minimized schedules differ: sequential %d faults, parallel %d faults",
			len(sSched), len(pSched))
	}
	if a, b := sMin.LogText(), pMin.LogText(); a != b {
		t.Fatalf("minimized run logs differ (%d vs %d bytes)", len(a), len(b))
	}
	if !reflect.DeepEqual(sMin.Violations, pMin.Violations) {
		t.Fatalf("minimized violations differ:\nseq %v\npar %v", sMin.Violations, pMin.Violations)
	}
	if a, b := sFull.LogText(), pFull.LogText(); a != b {
		t.Fatalf("full run logs differ — the full run itself is nondeterministic")
	}
}
