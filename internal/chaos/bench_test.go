package chaos

import (
	"testing"
	"time"
)

// BenchmarkChaosDay runs one simulated day of the all-faults chaos soak —
// the workload the scheduler hot path exists for. One op = one full run
// (cluster boot, workload setup, 24h fault phase, drain, final audits).
func BenchmarkChaosDay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := Run(DefaultOptions(1, 24*time.Hour))
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Violations) != 0 {
			b.Fatalf("unexpected violations: %v", rep.Violations)
		}
	}
}
