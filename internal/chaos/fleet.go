package chaos

// Fleet-scale chaos: boots an internal/fleet control plane (sharded
// metadata, failure-domain placement, background repair scheduler), drives
// closed-loop allocation through client routers, kills a whole deploy unit,
// and verifies the fleet drains the dead unit onto survivors with every
// invariant intact. Like the cluster-scale harness, a run is a pure
// function of its options: same seed, byte-identical report at any worker
// count (TestFleetSweepParallelMatchesSequential proves it).

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"ustore/internal/fleet"
	"ustore/internal/model"
	"ustore/internal/obs"
	"ustore/internal/runner"
)

// FleetOptions parameterizes a fleet-scale chaos run.
type FleetOptions struct {
	// Seed drives the whole simulation.
	Seed int64
	// Units is the deploy-unit count (default 8; 64 disks per unit at the
	// fleet defaults, so 256 units is a ≥16k-disk fleet).
	Units int
	// Shards is the metadata shard count (default 1).
	Shards int
	// Clients is the number of closed-loop allocating routers (default
	// 4 per shard).
	Clients int
	// Volumes is how many volumes the load phase allocates (default
	// 3 per unit).
	Volumes int
	// VolumeSize is bytes per volume (default 64 MiB).
	VolumeSize int64
	// UnitLoss kills unit u000 — which hosts shard 0's first replica, so
	// the loss doubles as a leader-failover test — after the load phase
	// and requires the background scheduler to drain it.
	UnitLoss bool

	// Fault schedule knobs. All zero keeps the legacy run shape (no fault
	// phase); any non-zero adds a seeded transient-fault phase between load
	// and verify, executed by genFleetSchedule's schedule.
	//
	// ReplicaCrashes is the number of shard-replica crash/restart cycles.
	ReplicaCrashes int
	// Partitions is the number of partition/heal (or leader-isolation)
	// windows.
	Partitions int
	// SlotMoves is the number of schedule-driven slot migrations; the first
	// is co-timed with a crash of the source leader and the first partition
	// straddles another, exercising the RedriveMoves recovery path.
	// Requires Shards >= 2 to take effect.
	SlotMoves int
	// FaultWindow is the fault phase length (default 2m when any fault
	// knob is set).
	FaultWindow time.Duration
	// InjectSkipRedrive plants the skipped-ledger-re-drive recovery bug in
	// the fleet (see fleet.Config.InjectSkipRedrive) so the minimizer has a
	// real violation to shrink.
	InjectSkipRedrive bool
	// DrainTimeout bounds the virtual time the run waits for the dead
	// unit to drain (default 30 minutes).
	DrainTimeout time.Duration
	// Recorder, when non-nil, collects metrics and traces from the run.
	Recorder *obs.Recorder `json:"-"`
	// EngineWorkers > 0 runs the fleet on the conservative parallel engine
	// with that many workers (one partition per deploy unit plus a control
	// partition). 0 keeps the classic single-scheduler simulation. Reports
	// are byte-identical across worker counts >= 1.
	EngineWorkers int
}

func (o FleetOptions) withDefaults() FleetOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Units <= 0 {
		o.Units = 8
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Clients <= 0 {
		o.Clients = 4 * o.Shards
	}
	if o.Volumes <= 0 {
		o.Volumes = 3 * o.Units
	}
	if o.VolumeSize <= 0 {
		o.VolumeSize = 64 << 20
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 30 * time.Minute
	}
	if o.hasFaults() && o.FaultWindow <= 0 {
		o.FaultWindow = 2 * time.Minute
	}
	return o
}

// hasFaults reports whether the options ask for a transient-fault phase.
func (o FleetOptions) hasFaults() bool {
	return o.ReplicaCrashes > 0 || o.Partitions > 0 || o.SlotMoves > 0
}

// FleetReport is the outcome of a fleet chaos run.
type FleetReport struct {
	Seed       int64
	Opts       FleetOptions
	Log        []string
	Violations []string

	Allocated  int           // volumes placed (load + fault phases)
	Failed     int           // allocations that errored out
	Drained    bool          // dead unit fully drained (UnitLoss runs)
	DrainTime  time.Duration // virtual kill-to-drained latency
	Resolvable int           // volumes a fresh router resolved post-run
	MapEpoch   int64         // final authoritative shard-map epoch
	Events     uint64        // scheduler events fired (determinism witness)

	// Fault-phase outcomes (fault-schedule runs only).
	FaultsApplied int // schedule entries executed
	Unavailable   int // foreground ops that degraded to ErrShardUnavailable
	Redriven      int // interrupted slot moves re-driven during recovery
}

// LogText renders the event log as one string (replay comparisons).
func (r *FleetReport) LogText() string { return strings.Join(r.Log, "\n") }

// SummaryText renders the block ustore-chaos prints for a fleet run.
func (r *FleetReport) SummaryText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet seed %d: %d units, %d shards, %d clients\n",
		r.Seed, r.Opts.Units, r.Opts.Shards, r.Opts.Clients)
	fmt.Fprintf(&b, "  load     %d allocated, %d failed, %d resolvable after faults\n",
		r.Allocated, r.Failed, r.Resolvable)
	if r.Opts.UnitLoss {
		fmt.Fprintf(&b, "  drain    u000 drained=%v in %v\n", r.Drained, r.DrainTime)
	}
	if r.Opts.hasFaults() {
		fmt.Fprintf(&b, "  faults   %d applied, %d ops degraded unavailable, %d moves redriven\n",
			r.FaultsApplied, r.Unavailable, r.Redriven)
	}
	fmt.Fprintf(&b, "  map      epoch %d; %d events fired\n", r.MapEpoch, r.Events)
	if len(r.Violations) == 0 {
		b.WriteString("  invariants: all held\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  INVARIANT VIOLATIONS (%d):\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "    %s\n", v)
	}
	return b.String()
}

// fleetConfig maps chaos options onto a fleet.Config, leaving the fleet's
// own stretched control-plane timings in place.
func fleetConfig(o FleetOptions) fleet.Config {
	return fleet.Config{
		Units:    o.Units,
		Shards:   o.Shards,
		Seed:     o.Seed,
		Recorder: o.Recorder,
		// Jittered retries only for fault runs: legacy runs keep the fixed
		// delays their checked-in byte-stability records were made under.
		RetryJitter:       o.hasFaults(),
		InjectSkipRedrive: o.InjectSkipRedrive,
		EngineWorkers:     o.EngineWorkers,
	}
}

// RunFleet executes one fleet chaos run: boot, load, the seeded transient-
// fault phase (when the fault knobs ask for one), recovery with re-driven
// migrations and the fleet-level model check, optional unit loss, verify.
func RunFleet(o FleetOptions) (*FleetReport, error) {
	o = o.withDefaults()
	return runFleet(o, genFleetSchedule(o))
}

// RunFleetSchedule is RunFleet under an explicit fault schedule — the
// minimizer probes truncated prefixes through it. The recovery phase heals
// whatever a prefix leaves open, so every prefix is a well-formed run.
func RunFleetSchedule(o FleetOptions, schedule []FleetFault) (*FleetReport, error) {
	o = o.withDefaults()
	return runFleet(o, schedule)
}

func runFleet(o FleetOptions, schedule []FleetFault) (*FleetReport, error) {
	rep := &FleetReport{Seed: o.Seed, Opts: o}
	f := fleet.New(fleetConfig(o))
	stamp := func() string {
		now := f.Sched.Now()
		day := now / (24 * time.Hour)
		rem := now % (24 * time.Hour)
		return fmt.Sprintf("[d%03d %02d:%02d:%02d]", day,
			rem/time.Hour, (rem%time.Hour)/time.Minute, (rem%time.Minute)/time.Second)
	}
	logf := func(format string, a ...any) {
		rep.Log = append(rep.Log, stamp()+" "+fmt.Sprintf(format, a...))
	}
	violate := func(format string, a ...any) {
		v := stamp() + " " + fmt.Sprintf(format, a...)
		rep.Log = append(rep.Log, v)
		rep.Violations = append(rep.Violations, v)
	}
	check := func(phase string) {
		for _, err := range []error{f.ValidateSpread(), f.ValidateShardMap(), f.ValidateCapacity()} {
			if err != nil {
				violate("fleet: %s invariant: %s", phase, err)
			}
		}
	}
	leaderless := func() string {
		if k := f.LeaderlessShard(); k >= 0 {
			return fmt.Sprintf("shard %d leaderless", k)
		}
		return ""
	}

	// Boot: settle until every shard has a leader.
	if ok, why := settleExplain(f, 10*time.Second, 3*time.Minute, leaderless); !ok {
		return nil, fmt.Errorf("chaos: fleet boot settle timed out: %s", why)
	}
	logf("fleet: booted %d units (%d disks), %d shards, map epoch %d",
		o.Units, f.Topo.NumDisks, o.Shards, f.AuthMap().Epoch)

	// Load phase: o.Clients routers allocate o.Volumes volumes closed-loop
	// (client i owns volumes i, i+C, i+2C, …).
	routers := make([]*fleet.Router, o.Clients)
	for i := range routers {
		routers[i] = f.NewRouter(fmt.Sprintf("c%03d", i))
	}
	// ledger is the fleet-level reference model: every client-acknowledged
	// allocation enters it, and after recovery the shard leaders' holdings
	// are checked against it (no volume lost, duplicated, or misplaced).
	ledger := model.NewVolumeLedger()
	pending := o.Volumes
	var allocate func(cl, vol int)
	allocate = func(cl, vol int) {
		if vol >= o.Volumes {
			return
		}
		name := fmt.Sprintf("v%04d", vol)
		routers[cl].Allocate(name, o.VolumeSize, "archive",
			func(_ []string, err error) {
				pending--
				if err != nil {
					rep.Failed++
					logf("fleet: allocate %s failed: %s", name, err)
				} else {
					rep.Allocated++
					ledger.Alloc(name)
				}
				allocate(cl, vol+o.Clients)
			})
	}
	for i := range routers {
		allocate(i, i)
	}
	if ok, why := settleExplain(f, 10*time.Second, 10*time.Minute, func() string {
		if pending > 0 {
			return fmt.Sprintf("%d of %d allocations still pending", pending, o.Volumes)
		}
		return ""
	}); !ok {
		violate("fleet: load phase stalled: %s", why)
	}
	logf("fleet: load phase done: %d allocated, %d failed", rep.Allocated, rep.Failed)
	check("post-load")

	// Fault phase: apply the schedule at fixed quiescence boundaries while
	// foreground clients keep allocating, then heal, re-drive interrupted
	// migrations, and hold the fleet to the reference model.
	if len(schedule) > 0 {
		runFleetFaults(f, o, rep, schedule, routers, ledger, logf, violate, check, leaderless)
	}

	// Fault phase: lose a whole deploy unit, then wait for the background
	// schedulers to re-replicate its fragments onto survivors.
	if o.UnitLoss {
		const victim = "u000"
		killAt := f.Sched.Now()
		f.KillUnit(victim)
		logf("fleet: killed unit %s (machine isolated, replicas crashed)", victim)
		drained, blocker := settleExplain(f, 30*time.Second, o.DrainTimeout,
			func() string { return f.DrainBlocker(victim) })
		rep.Drained = drained
		rep.DrainTime = f.Sched.Now() - killAt
		if rep.Drained {
			logf("fleet: unit %s drained in %v", victim, rep.DrainTime)
		} else {
			violate("fleet: unit %s not drained within %v: %s",
				victim, o.DrainTimeout, blocker)
		}
		check("post-drain")
	}

	// Verify phase: a fresh router (cold map cache) must resolve every
	// volume with a full replica set. Fault runs verify exactly the model
	// ledger's live set (fault-phase volumes included); legacy runs keep
	// the historical fixed-name sweep.
	verifyNames := ledger.Live()
	want := ledger.Len()
	if len(schedule) == 0 {
		verifyNames = verifyNames[:0]
		for i := 0; i < o.Volumes; i++ {
			verifyNames = append(verifyNames, fmt.Sprintf("v%04d", i))
		}
		want = rep.Allocated
	}
	vr := f.NewRouter("verify")
	left := len(verifyNames)
	for _, name := range verifyNames {
		name := name
		vr.Lookup(name, func(disks []string, _ int64, err error) {
			left--
			if err == nil && len(disks) > 0 {
				rep.Resolvable++
			} else if err != nil {
				logf("fleet: verify lookup %s failed: %s", name, err)
			}
		})
	}
	if ok, why := settleExplain(f, 10*time.Second, 5*time.Minute, func() string {
		if left > 0 {
			return fmt.Sprintf("%d lookups pending", left)
		}
		return ""
	}); !ok {
		violate("fleet: verify phase stalled: %s", why)
	}
	if rep.Resolvable != want {
		violate("fleet: only %d of %d live volumes resolvable", rep.Resolvable, want)
	}

	rep.MapEpoch = f.AuthMap().Epoch
	rep.Events = f.EventsFired()
	logf("fleet run complete: %d violations", len(rep.Violations))
	f.FinishObs()
	return rep, nil
}

// runFleetFaults executes the fault schedule against a booted, loaded
// fleet, then recovers: heal everything still open, settle leadership back,
// re-drive interrupted slot migrations, re-check invariants, and hold the
// surviving state to the reference-model ledger.
func runFleetFaults(
	f *fleet.Fleet, o FleetOptions, rep *FleetReport, schedule []FleetFault,
	routers []*fleet.Router, ledger *model.VolumeLedger,
	logf func(string, ...any), violate func(string, ...any),
	check func(string), leaderless func() string,
) {
	st := newFleetFaultState(f)
	movesInFlight := 0
	onMove := func(slot, dst int) {
		movesInFlight++
		f.MoveSlot(slot, dst, func(err error) {
			movesInFlight--
			if err != nil {
				logf("fleet: move slot %d -> shard %d interrupted: %s", slot, dst, err)
			} else {
				logf("fleet: move slot %d -> shard %d completed", slot, dst)
			}
		})
	}

	// Foreground load under faults: two paced clients keep allocating (one
	// op per simulated second each — closed-loop with no think time would
	// flood tens of thousands of volumes into the ledger and drown the
	// verify sweep). Quorum loss must degrade to a typed, countable
	// ErrShardUnavailable — never a hang.
	stopLoad := false
	wvol := 0
	var faultAlloc func(cl int)
	faultAlloc = func(cl int) {
		if stopLoad {
			return
		}
		name := fmt.Sprintf("w%04d", wvol)
		wvol++
		routers[cl%len(routers)].Allocate(name, o.VolumeSize, "archive",
			func(_ []string, err error) {
				switch {
				case err == nil:
					rep.Allocated++
					ledger.Alloc(name)
				case errors.Is(err, fleet.ErrShardUnavailable):
					rep.Failed++
					rep.Unavailable++
				default:
					rep.Failed++
					logf("fleet: fault-phase allocate %s failed: %s", name, err)
				}
				f.Sched.After(time.Second, func() { faultAlloc(cl) })
			})
	}
	for cl := 0; cl < 2 && cl < len(routers); cl++ {
		faultAlloc(cl)
	}

	window := o.FaultWindow
	if last := schedule[len(schedule)-1].At; last > window {
		window = last
	}
	idx := 0
	for t := time.Duration(0); t <= window; t += fleetFaultStep {
		for idx < len(schedule) && schedule[idx].At <= t {
			desc := st.apply(schedule[idx], onMove)
			rep.FaultsApplied++
			logf("fleet: fault: %s", desc)
			idx++
		}
		f.Settle(fleetFaultStep)
	}
	stopLoad = true
	logf("fleet: fault window closed: %d faults applied, %d ops degraded unavailable",
		rep.FaultsApplied, rep.Unavailable)

	// Recovery: close every window the schedule (or a truncated minimizer
	// prefix) left open, then settle until leadership is whole and the
	// fault-phase move chains have reported back.
	healed, rejoined, restarted := st.healAll()
	logf("fleet: recovery: healed %d partitions, rejoined %d units, restarted %d replicas",
		healed, rejoined, restarted)
	if ok, why := settleExplain(f, 10*time.Second, 5*time.Minute, func() string {
		if why := leaderless(); why != "" {
			return why
		}
		if movesInFlight > 0 {
			return fmt.Sprintf("%d fault-phase slot moves still in flight", movesInFlight)
		}
		return ""
	}); !ok {
		violate("fleet: post-heal settle stalled: %s", why)
	}

	// Re-drive interrupted migrations from the admin intent ledger (the
	// durable freeze and export ledger below make every step idempotent).
	rep.Redriven = len(f.PendingMoves())
	redriveDone := false
	var redriveErr error
	f.RedriveMoves(func(err error) { redriveDone = true; redriveErr = err })
	if ok, why := settleExplain(f, 10*time.Second, 5*time.Minute, func() string {
		if !redriveDone {
			return fmt.Sprintf("%d interrupted slot moves still re-driving", rep.Redriven)
		}
		return ""
	}); !ok {
		violate("fleet: redrive stalled: %s", why)
	} else if redriveErr != nil {
		violate("fleet: redrive failed: %s", redriveErr)
	}
	if rep.Redriven > 0 {
		logf("fleet: recovery: re-drove %d interrupted slot moves", rep.Redriven)
	}
	check("post-heal")

	// Reference-model check: every acknowledged volume must be held by
	// exactly one shard, the one the map routes it to.
	holders, err := f.VolumeHolders()
	if err != nil {
		violate("fleet: model check blocked: %s", err)
		return
	}
	am := f.AuthMap()
	for _, v := range ledger.Check(holders, func(vol string) int { return am.ShardOf(vol) }) {
		violate("fleet: model: %s", v)
	}
	logf("fleet: model check done: %d live volumes against %d holders", ledger.Len(), len(holders))
}

// settleExplain advances the fleet in fixed step chunks until pending()
// reports nothing left ("") or the budget runs out; on timeout it returns
// false plus the last pending description, so callers name exactly which
// condition was still failing instead of a bare boolean. Fixed-size steps
// keep the event stream identical across runs regardless of when pending()
// empties.
func settleExplain(f *fleet.Fleet, step, max time.Duration, pending func() string) (bool, string) {
	for elapsed := time.Duration(0); ; elapsed += step {
		why := pending()
		if why == "" {
			return true, ""
		}
		if elapsed >= max {
			return false, why
		}
		f.Settle(step)
	}
}

// settleUntil is settleExplain for callers with nothing to explain.
func settleUntil(f *fleet.Fleet, step, max time.Duration, done func() bool) bool {
	ok, _ := settleExplain(f, step, max, func() string {
		if done() {
			return ""
		}
		return "condition pending"
	})
	return ok
}

// FleetSweep runs base across n consecutive seeds on up to parallel
// workers, one report per seed in seed order. Each run owns its scheduler,
// so parallel reports are byte-identical to sequential ones.
func FleetSweep(base FleetOptions, n, parallel int) ([]*FleetReport, error) {
	return runner.MapErr(n, parallel, func(i int) (*FleetReport, error) {
		o := base
		o.Seed = base.Seed + int64(i)
		o.Recorder = nil
		return RunFleet(o)
	})
}

// MeasureFleetAlloc measures steady-state allocation throughput (volumes
// per simulated second) with saturating closed-loop clients, after a
// warmup. The shard-scaling acceptance sweep drives it at 1/4/16 shards.
func MeasureFleetAlloc(o FleetOptions, warmup, window time.Duration) (float64, error) {
	o = o.withDefaults()
	f := fleet.New(fleetConfig(o))
	if !settleUntil(f, 10*time.Second, 3*time.Minute, func() bool {
		for k := 0; k < o.Shards; k++ {
			if f.Leader(k) == nil {
				return false
			}
		}
		return true
	}) {
		return 0, fmt.Errorf("chaos: fleet shards leaderless after boot settle")
	}
	completed := 0
	for i := 0; i < o.Clients; i++ {
		r := f.NewRouter(fmt.Sprintf("m%03d", i))
		cl := i
		n := 0
		var next func()
		next = func() {
			vol := fmt.Sprintf("m%03d-%d", cl, n)
			n++
			r.Allocate(vol, o.VolumeSize, "bench", func(_ []string, err error) {
				if err == nil {
					completed++
				}
				next()
			})
		}
		next()
	}
	f.Settle(warmup)
	before := completed
	f.Settle(window)
	return float64(completed-before) / window.Seconds(), nil
}
