package chaos

// Fleet-scale chaos: boots an internal/fleet control plane (sharded
// metadata, failure-domain placement, background repair scheduler), drives
// closed-loop allocation through client routers, kills a whole deploy unit,
// and verifies the fleet drains the dead unit onto survivors with every
// invariant intact. Like the cluster-scale harness, a run is a pure
// function of its options: same seed, byte-identical report at any worker
// count (TestFleetSweepParallelMatchesSequential proves it).

import (
	"fmt"
	"strings"
	"time"

	"ustore/internal/fleet"
	"ustore/internal/obs"
	"ustore/internal/runner"
)

// FleetOptions parameterizes a fleet-scale chaos run.
type FleetOptions struct {
	// Seed drives the whole simulation.
	Seed int64
	// Units is the deploy-unit count (default 8; 64 disks per unit at the
	// fleet defaults, so 256 units is a ≥16k-disk fleet).
	Units int
	// Shards is the metadata shard count (default 1).
	Shards int
	// Clients is the number of closed-loop allocating routers (default
	// 4 per shard).
	Clients int
	// Volumes is how many volumes the load phase allocates (default
	// 3 per unit).
	Volumes int
	// VolumeSize is bytes per volume (default 64 MiB).
	VolumeSize int64
	// UnitLoss kills unit u000 — which hosts shard 0's first replica, so
	// the loss doubles as a leader-failover test — after the load phase
	// and requires the background scheduler to drain it.
	UnitLoss bool
	// DrainTimeout bounds the virtual time the run waits for the dead
	// unit to drain (default 30 minutes).
	DrainTimeout time.Duration
	// Recorder, when non-nil, collects metrics and traces from the run.
	Recorder *obs.Recorder `json:"-"`
	// EngineWorkers > 0 runs the fleet on the conservative parallel engine
	// with that many workers (one partition per deploy unit plus a control
	// partition). 0 keeps the classic single-scheduler simulation. Reports
	// are byte-identical across worker counts >= 1.
	EngineWorkers int
}

func (o FleetOptions) withDefaults() FleetOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Units <= 0 {
		o.Units = 8
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Clients <= 0 {
		o.Clients = 4 * o.Shards
	}
	if o.Volumes <= 0 {
		o.Volumes = 3 * o.Units
	}
	if o.VolumeSize <= 0 {
		o.VolumeSize = 64 << 20
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 30 * time.Minute
	}
	return o
}

// FleetReport is the outcome of a fleet chaos run.
type FleetReport struct {
	Seed       int64
	Opts       FleetOptions
	Log        []string
	Violations []string

	Allocated  int           // volumes placed by the load phase
	Failed     int           // load-phase allocations that errored out
	Drained    bool          // dead unit fully drained (UnitLoss runs)
	DrainTime  time.Duration // virtual kill-to-drained latency
	Resolvable int           // volumes a fresh router resolved post-run
	MapEpoch   int64         // final authoritative shard-map epoch
	Events     uint64        // scheduler events fired (determinism witness)
}

// LogText renders the event log as one string (replay comparisons).
func (r *FleetReport) LogText() string { return strings.Join(r.Log, "\n") }

// SummaryText renders the block ustore-chaos prints for a fleet run.
func (r *FleetReport) SummaryText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet seed %d: %d units, %d shards, %d clients\n",
		r.Seed, r.Opts.Units, r.Opts.Shards, r.Opts.Clients)
	fmt.Fprintf(&b, "  load     %d allocated, %d failed, %d resolvable after faults\n",
		r.Allocated, r.Failed, r.Resolvable)
	if r.Opts.UnitLoss {
		fmt.Fprintf(&b, "  drain    u000 drained=%v in %v\n", r.Drained, r.DrainTime)
	}
	fmt.Fprintf(&b, "  map      epoch %d; %d events fired\n", r.MapEpoch, r.Events)
	if len(r.Violations) == 0 {
		b.WriteString("  invariants: all held\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  INVARIANT VIOLATIONS (%d):\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "    %s\n", v)
	}
	return b.String()
}

// fleetConfig maps chaos options onto a fleet.Config, leaving the fleet's
// own stretched control-plane timings in place.
func fleetConfig(o FleetOptions) fleet.Config {
	return fleet.Config{
		Units:         o.Units,
		Shards:        o.Shards,
		Seed:          o.Seed,
		Recorder:      o.Recorder,
		EngineWorkers: o.EngineWorkers,
	}
}

// RunFleet executes one fleet chaos run.
func RunFleet(o FleetOptions) (*FleetReport, error) {
	o = o.withDefaults()
	rep := &FleetReport{Seed: o.Seed, Opts: o}
	f := fleet.New(fleetConfig(o))
	stamp := func() string {
		now := f.Sched.Now()
		day := now / (24 * time.Hour)
		rem := now % (24 * time.Hour)
		return fmt.Sprintf("[d%03d %02d:%02d:%02d]", day,
			rem/time.Hour, (rem%time.Hour)/time.Minute, (rem%time.Minute)/time.Second)
	}
	logf := func(format string, a ...any) {
		rep.Log = append(rep.Log, stamp()+" "+fmt.Sprintf(format, a...))
	}
	check := func(phase string) {
		for _, err := range []error{f.ValidateSpread(), f.ValidateShardMap(), f.ValidateCapacity()} {
			if err != nil {
				v := fmt.Sprintf("%s fleet: %s invariant: %s", stamp(), phase, err)
				rep.Log = append(rep.Log, v)
				rep.Violations = append(rep.Violations, v)
			}
		}
	}

	// Boot: settle until every shard has a leader.
	if !settleUntil(f, 10*time.Second, 3*time.Minute, func() bool {
		for k := 0; k < o.Shards; k++ {
			if f.Leader(k) == nil {
				return false
			}
		}
		return true
	}) {
		return nil, fmt.Errorf("chaos: fleet shards leaderless after boot settle")
	}
	logf("fleet: booted %d units (%d disks), %d shards, map epoch %d",
		o.Units, f.Topo.NumDisks, o.Shards, f.AuthMap().Epoch)

	// Load phase: o.Clients routers allocate o.Volumes volumes closed-loop
	// (client i owns volumes i, i+C, i+2C, …).
	routers := make([]*fleet.Router, o.Clients)
	for i := range routers {
		routers[i] = f.NewRouter(fmt.Sprintf("c%03d", i))
	}
	pending := o.Volumes
	var allocate func(cl, vol int)
	allocate = func(cl, vol int) {
		if vol >= o.Volumes {
			return
		}
		routers[cl].Allocate(fmt.Sprintf("v%04d", vol), o.VolumeSize, "archive",
			func(_ []string, err error) {
				pending--
				if err != nil {
					rep.Failed++
					logf("fleet: allocate v%04d failed: %s", vol, err)
				} else {
					rep.Allocated++
				}
				allocate(cl, vol+o.Clients)
			})
	}
	for i := range routers {
		allocate(i, i)
	}
	if !settleUntil(f, 10*time.Second, 10*time.Minute, func() bool { return pending == 0 }) {
		v := stamp() + " fleet: load phase stalled: " +
			fmt.Sprintf("%d of %d allocations still pending", pending, o.Volumes)
		rep.Log = append(rep.Log, v)
		rep.Violations = append(rep.Violations, v)
	}
	logf("fleet: load phase done: %d allocated, %d failed", rep.Allocated, rep.Failed)
	check("post-load")

	// Fault phase: lose a whole deploy unit, then wait for the background
	// schedulers to re-replicate its fragments onto survivors.
	if o.UnitLoss {
		const victim = "u000"
		killAt := f.Sched.Now()
		f.KillUnit(victim)
		logf("fleet: killed unit %s (machine isolated, replicas crashed)", victim)
		rep.Drained = settleUntil(f, 30*time.Second, o.DrainTimeout,
			func() bool { return f.Drained(victim) })
		rep.DrainTime = f.Sched.Now() - killAt
		if rep.Drained {
			logf("fleet: unit %s drained in %v", victim, rep.DrainTime)
		} else {
			v := fmt.Sprintf("%s fleet: unit %s not drained within %v",
				stamp(), victim, o.DrainTimeout)
			rep.Log = append(rep.Log, v)
			rep.Violations = append(rep.Violations, v)
		}
		check("post-drain")
	}

	// Verify phase: a fresh router (cold map cache) must resolve every
	// volume with a full replica set.
	vr := f.NewRouter("verify")
	left := o.Volumes
	for i := 0; i < o.Volumes; i++ {
		vol := i
		vr.Lookup(fmt.Sprintf("v%04d", vol), func(disks []string, _ int64, err error) {
			left--
			if err == nil && len(disks) > 0 {
				rep.Resolvable++
			} else if err != nil {
				logf("fleet: verify lookup v%04d failed: %s", vol, err)
			}
		})
	}
	if !settleUntil(f, 10*time.Second, 5*time.Minute, func() bool { return left == 0 }) {
		v := fmt.Sprintf("%s fleet: verify phase stalled: %d lookups pending", stamp(), left)
		rep.Log = append(rep.Log, v)
		rep.Violations = append(rep.Violations, v)
	}
	if rep.Resolvable != rep.Allocated {
		v := fmt.Sprintf("%s fleet: only %d of %d allocated volumes resolvable",
			stamp(), rep.Resolvable, rep.Allocated)
		rep.Log = append(rep.Log, v)
		rep.Violations = append(rep.Violations, v)
	}

	rep.MapEpoch = f.AuthMap().Epoch
	rep.Events = f.EventsFired()
	logf("fleet run complete: %d violations", len(rep.Violations))
	f.FinishObs()
	return rep, nil
}

// settleUntil advances the fleet in fixed step chunks until done() or the
// budget runs out. Fixed-size steps keep the event stream identical across
// runs regardless of when done() starts returning true.
func settleUntil(f *fleet.Fleet, step, max time.Duration, done func() bool) bool {
	for elapsed := time.Duration(0); ; elapsed += step {
		if done() {
			return true
		}
		if elapsed >= max {
			return false
		}
		f.Settle(step)
	}
}

// FleetSweep runs base across n consecutive seeds on up to parallel
// workers, one report per seed in seed order. Each run owns its scheduler,
// so parallel reports are byte-identical to sequential ones.
func FleetSweep(base FleetOptions, n, parallel int) ([]*FleetReport, error) {
	return runner.MapErr(n, parallel, func(i int) (*FleetReport, error) {
		o := base
		o.Seed = base.Seed + int64(i)
		o.Recorder = nil
		return RunFleet(o)
	})
}

// MeasureFleetAlloc measures steady-state allocation throughput (volumes
// per simulated second) with saturating closed-loop clients, after a
// warmup. The shard-scaling acceptance sweep drives it at 1/4/16 shards.
func MeasureFleetAlloc(o FleetOptions, warmup, window time.Duration) (float64, error) {
	o = o.withDefaults()
	f := fleet.New(fleetConfig(o))
	if !settleUntil(f, 10*time.Second, 3*time.Minute, func() bool {
		for k := 0; k < o.Shards; k++ {
			if f.Leader(k) == nil {
				return false
			}
		}
		return true
	}) {
		return 0, fmt.Errorf("chaos: fleet shards leaderless after boot settle")
	}
	completed := 0
	for i := 0; i < o.Clients; i++ {
		r := f.NewRouter(fmt.Sprintf("m%03d", i))
		cl := i
		n := 0
		var next func()
		next = func() {
			vol := fmt.Sprintf("m%03d-%d", cl, n)
			n++
			r.Allocate(vol, o.VolumeSize, "bench", func(_ []string, err error) {
				if err == nil {
					completed++
				}
				next()
			})
		}
		next()
	}
	f.Settle(warmup)
	before := completed
	f.Settle(window)
	return float64(completed-before) / window.Seconds(), nil
}
