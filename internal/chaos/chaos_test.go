package chaos

import (
	"flag"
	"strings"
	"testing"
	"time"
)

// chaosSeed selects the schedule + simulation seed, e.g.
//
//	go test ./internal/chaos/ -run TestChaosSmoke -chaos.seed=7 -v
//
// A failing report prints its violating schedule; re-running with the same
// seed replays it exactly.
var chaosSeed = flag.Int64("chaos.seed", 1, "seed for chaos runs")

func requireClean(t *testing.T, rep *Report) {
	t.Helper()
	if len(rep.Violations) > 0 {
		t.Fatalf("%d invariant violations (seed %d):\n%s\nschedule:\n%s",
			len(rep.Violations), rep.Seed,
			strings.Join(rep.Violations, "\n"), scheduleText(rep.Schedule))
	}
}

func scheduleText(sched []Fault) string {
	var b strings.Builder
	for _, f := range sched {
		b.WriteString("  " + f.At.String() + " " + f.String() + "\n")
	}
	return b.String()
}

func logStats(t *testing.T, rep *Report) {
	t.Helper()
	s := rep.Stats
	t.Logf("seed %d: %d faults, writes %d acked / %d failed, %d audit reads, "+
		"%d checksum detections, %d repairs, scrub %d scanned / %d bad / %d repaired / %d unrepaired, %d remounts",
		rep.Seed, s.FaultsApplied, s.WritesAcked, s.WritesFailed, s.AuditReads,
		s.CorruptionsDetected, s.Repairs, s.ScrubScanned, s.ScrubBad, s.ScrubRepaired,
		s.ScrubUnrepaired, s.Remounts)
}

// TestChaosSmoke runs two simulated days with every fault family enabled and
// requires zero invariant violations. This is the CI entry point.
func TestChaosSmoke(t *testing.T) {
	rep, err := Run(DefaultOptions(*chaosSeed, 2*24*time.Hour))
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	requireClean(t, rep)
	if rep.Stats.FaultsApplied == 0 {
		t.Fatal("schedule applied no faults")
	}
	if rep.Stats.WritesAcked == 0 {
		t.Fatal("workload acknowledged no writes")
	}
	logStats(t, rep)
}

// TestChaosSoak100Days is the acceptance soak: 100 simulated days of hosts
// crashing, disks dying and being swapped for blanks, hubs failing, links
// cutting / losing / duplicating, masters partitioned, and sectors rotting —
// with zero invariant violations at the end.
func TestChaosSoak100Days(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	rep, err := Run(DefaultOptions(*chaosSeed, 100*24*time.Hour))
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	requireClean(t, rep)
	if rep.Stats.FaultsApplied < 50 {
		t.Errorf("soak applied only %d faults; schedule generator regressed?", rep.Stats.FaultsApplied)
	}
	if rep.Stats.ScrubScanned == 0 {
		t.Error("scrubber never ran during the soak")
	}
	logStats(t, rep)
}

// TestChaosDeterministicReplay runs the same seed twice and requires
// byte-identical event logs — the property that makes -chaos.seed replay and
// schedule minimization trustworthy.
func TestChaosDeterministicReplay(t *testing.T) {
	o := DefaultOptions(*chaosSeed, 2*24*time.Hour)
	a, err := Run(o)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := Run(o)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.LogText() != b.LogText() {
		al, bl := a.Log, b.Log
		for i := 0; i < len(al) && i < len(bl); i++ {
			if al[i] != bl[i] {
				t.Fatalf("logs diverge at line %d:\n  run1: %s\n  run2: %s", i, al[i], bl[i])
			}
		}
		t.Fatalf("logs differ in length: %d vs %d lines", len(al), len(bl))
	}
}

// corruptionOnlyOptions is the silent-corruption scenario: media rot with no
// other faults, no mutating workload (so the corruption is never overwritten
// before an audit reads it), and no scrubber racing the audit.
func corruptionOnlyOptions(seed int64) Options {
	o := DefaultOptions(seed, 24*time.Hour)
	o.HostCrashes = false
	o.DiskFaults = false
	o.HubFaults = false
	o.NetFaults = false
	o.Corruptions = true
	o.Pairs = 2
	o.BlocksPerSpace = 4
	o.WriteEvery = 0
	o.AuditEvery = 6 * time.Hour
	o.ScrubEvery = 0
	return o
}

// TestChaosDetectsSilentCorruptionWithoutChecksums proves the invariant
// checker has teeth: with the CRC layer disabled, injected media corruption
// reaches clients as successful reads of wrong bytes, and the harness must
// flag it.
func TestChaosDetectsSilentCorruptionWithoutChecksums(t *testing.T) {
	o := corruptionOnlyOptions(*chaosSeed)
	o.DisableChecksums = true
	rep, err := Run(o)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("checksums disabled + corrupted media, but no silent-corruption violation reported")
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "silent corruption") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("violations reported, but none is a silent-corruption finding:\n%s",
			strings.Join(rep.Violations, "\n"))
	}
}

// TestChaosChecksumsPreventSilentCorruption is the matching positive control:
// same scenario with the CRC layer on — corruption is detected at the storage
// layer, repaired from the good copy, and no invariant is violated.
func TestChaosChecksumsPreventSilentCorruption(t *testing.T) {
	rep, err := Run(corruptionOnlyOptions(*chaosSeed))
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	requireClean(t, rep)
	if rep.Stats.CorruptionsDetected == 0 {
		t.Fatal("corruption injected but the checksum layer never fired")
	}
	if rep.Stats.Repairs == 0 {
		t.Fatal("detected corruption was never repaired from the good copy")
	}
}

// TestChaosMinimize checks the shrinker: a violating run's schedule is
// bisected down to a prefix that still violates.
func TestChaosMinimize(t *testing.T) {
	o := corruptionOnlyOptions(*chaosSeed)
	o.DisableChecksums = true
	sched, minimized, full, err := Minimize(o)
	if err != nil {
		t.Fatalf("minimize: %v", err)
	}
	if full == nil || len(full.Violations) == 0 {
		t.Fatal("expected the full corruption run to violate")
	}
	if minimized == nil || len(minimized.Violations) == 0 {
		t.Fatal("minimized schedule no longer violates")
	}
	if len(sched) > len(full.Schedule) {
		t.Fatalf("minimized schedule longer than original: %d > %d", len(sched), len(full.Schedule))
	}
	t.Logf("minimized %d faults -> %d:\n%s", len(full.Schedule), len(sched), scheduleText(sched))
}
