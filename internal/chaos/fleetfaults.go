package chaos

// Fleet fault schedules: seeded, deterministic sequences of transient
// control-plane faults — shard-replica crash/restart cycles, inter-unit
// partitions, leader isolations, and schedule-driven slot migrations timed
// so faults land mid-chain. A schedule is a pure function of FleetOptions
// (never of live fleet state), so a truncated prefix re-runs identically —
// the property MinimizeFleet's bisection rests on. Faults that need live
// state ("the current leader of shard k") carry a symbolic target and
// resolve at apply time, which happens at engine quiescence where state is
// deterministic at any worker count.

import (
	"fmt"
	"math/rand"
	"time"

	"ustore/internal/fleet"
	"ustore/internal/runner"
)

// FleetFaultKind enumerates fleet fault verbs.
type FleetFaultKind int

// Fleet fault kinds.
const (
	// FFCrashReplica crash-stops replica Replica of shard Shard
	// (Replica == -1: whoever leads at apply time).
	FFCrashReplica FleetFaultKind = iota + 1
	// FFRestartReplicas restarts every currently-crashed replica of shard
	// Shard.
	FFRestartReplicas
	// FFPartitionUnits cuts the network between units A and B.
	FFPartitionUnits
	// FFHealUnits heals the cut between units A and B.
	FFHealUnits
	// FFIsolateLeader unplugs the uplink of the unit hosting shard Shard's
	// current leader (resolved at apply time).
	FFIsolateLeader
	// FFRejoinUnits restores every currently-isolated unit's uplink.
	FFRejoinUnits
	// FFMoveSlot starts migrating slot Slot to shard Dst — co-timed faults
	// land mid freeze→handoff→install→drop chain.
	FFMoveSlot
)

// FleetFault is one scheduled fleet fault. At is relative to the fault
// phase start, quantized to the executor's settle step.
type FleetFault struct {
	At      time.Duration
	Kind    FleetFaultKind
	Shard   int
	Replica int // -1 = current leader
	A, B    int // unit indices (partitions)
	Slot    int
	Dst     int
}

// String renders the fault for logs and minimized-schedule output.
func (f FleetFault) String() string {
	at := f.At.Seconds()
	switch f.Kind {
	case FFCrashReplica:
		who := fmt.Sprintf("replica %d", f.Replica)
		if f.Replica < 0 {
			who = "leader"
		}
		return fmt.Sprintf("%4.0fs crash shard %d %s", at, f.Shard, who)
	case FFRestartReplicas:
		return fmt.Sprintf("%4.0fs restart shard %d crashed replicas", at, f.Shard)
	case FFPartitionUnits:
		return fmt.Sprintf("%4.0fs partition u%03d<->u%03d", at, f.A, f.B)
	case FFHealUnits:
		return fmt.Sprintf("%4.0fs heal u%03d<->u%03d", at, f.A, f.B)
	case FFIsolateLeader:
		return fmt.Sprintf("%4.0fs isolate shard %d leader's unit", at, f.Shard)
	case FFRejoinUnits:
		return fmt.Sprintf("%4.0fs rejoin isolated units", at)
	case FFMoveSlot:
		return fmt.Sprintf("%4.0fs move slot %d -> shard %d", at, f.Slot, f.Dst)
	default:
		return fmt.Sprintf("%4.0fs unknown fault %d", at, int(f.Kind))
	}
}

// fleetFaultStep is the executor's settle quantum; every fault time is a
// multiple of it.
const fleetFaultStep = 5 * time.Second

// genFleetSchedule derives the fault schedule from the options alone. The
// shape, in At order:
//
//   - t=0: the first slot move co-timed with a crash of the source shard's
//     leader — the move's FreezeSlot lands on a dead leader, the chain
//     exhausts its retries, and the migration is left for RedriveMoves.
//     Putting the straddle first keeps the minimizer's violating prefix
//     short when the redrive path is the bug.
//   - remaining crash/restart cycles on random shards (half target the
//     leader, half a random replica), each healed 15–25s later;
//   - partition windows: the first straddles another slot move by isolating
//     the source leader's unit, the rest cut a random shard group's first
//     two replica units; each heals 20–30s later;
//   - remaining slot moves, unstraddled (they should complete cleanly).
//
// Slot moves need Shards >= 2 and distinct slots (so each slot's owner at
// move time is still the initial-map owner, slot mod Shards — schedule
// generation must never consult live state).
func genFleetSchedule(o FleetOptions) []FleetFault {
	o = o.withDefaults()
	if o.ReplicaCrashes == 0 && o.Partitions == 0 && o.SlotMoves == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(o.Seed*1664525 + 1013904223))
	q := func(d time.Duration) time.Duration {
		return d / fleetFaultStep * fleetFaultStep
	}
	window := q(o.FaultWindow)
	if window < fleetFaultStep {
		window = fleetFaultStep
	}
	var out []FleetFault
	t := time.Duration(0)
	advance := func(min, spread time.Duration) {
		t += q(min + time.Duration(rng.Int63n(int64(spread))))
		if t > window {
			t = window
		}
	}

	crashes, parts, moves := o.ReplicaCrashes, o.Partitions, o.SlotMoves
	if o.Shards < 2 {
		moves = 0
	}
	usedSlots := map[int]bool{}
	pickSlot := func() (slot, src, dst int) {
		for {
			slot = rng.Intn(fleet.NumSlots)
			if !usedSlots[slot] {
				usedSlots[slot] = true
				break
			}
		}
		src = slot % o.Shards
		dst = (src + 1 + rng.Intn(o.Shards-1)) % o.Shards
		return
	}

	// Straddle 1: move + crash of the source leader, co-timed at t=0.
	if moves > 0 && crashes > 0 {
		slot, src, dst := pickSlot()
		out = append(out,
			FleetFault{At: 0, Kind: FFMoveSlot, Slot: slot, Dst: dst},
			FleetFault{At: 0, Kind: FFCrashReplica, Shard: src, Replica: -1},
			FleetFault{At: q(20 * time.Second), Kind: FFRestartReplicas, Shard: src},
		)
		moves--
		crashes--
		t = q(20 * time.Second)
	}

	for i := 0; i < crashes; i++ {
		advance(15*time.Second, 20*time.Second)
		k := rng.Intn(o.Shards)
		replica := -1
		if rng.Intn(2) == 1 {
			replica = rng.Intn(3) // fleet default ShardReplicas
		}
		out = append(out,
			FleetFault{At: t, Kind: FFCrashReplica, Shard: k, Replica: replica},
			FleetFault{At: t + q(15*time.Second+time.Duration(rng.Int63n(int64(10*time.Second)))),
				Kind: FFRestartReplicas, Shard: k},
		)
	}

	for j := 0; j < parts; j++ {
		advance(15*time.Second, 20*time.Second)
		heal := t + q(20*time.Second+time.Duration(rng.Int63n(int64(10*time.Second))))
		if j == 0 && moves > 0 {
			// Straddle 2: a move interrupted by partitioning (isolating) the
			// source shard's leader unit mid-chain.
			slot, src, dst := pickSlot()
			out = append(out,
				FleetFault{At: t, Kind: FFMoveSlot, Slot: slot, Dst: dst},
				FleetFault{At: t, Kind: FFIsolateLeader, Shard: src},
				FleetFault{At: heal, Kind: FFRejoinUnits},
			)
			moves--
			continue
		}
		k := rng.Intn(o.Shards)
		a, b := (k*3)%o.Units, (k*3+1)%o.Units // fleet default replica placement
		if a == b {
			continue
		}
		out = append(out,
			FleetFault{At: t, Kind: FFPartitionUnits, A: a, B: b},
			FleetFault{At: heal, Kind: FFHealUnits, A: a, B: b},
		)
	}

	for m := 0; m < moves; m++ {
		advance(10*time.Second, 15*time.Second)
		slot, _, dst := pickSlot()
		out = append(out, FleetFault{At: t, Kind: FFMoveSlot, Slot: slot, Dst: dst})
	}

	sortFleetFaults(out)
	return out
}

// sortFleetFaults orders by At, stable in generation order — the executor
// applies same-instant faults in schedule order (a move before its
// co-timed interrupter).
func sortFleetFaults(fs []FleetFault) {
	// Insertion sort: schedules are tiny and stability matters.
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].At < fs[j-1].At; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// fleetFaultState tracks open faults so the recovery phase (and therefore
// any truncated minimizer prefix) can close every window it finds open.
type fleetFaultState struct {
	f           *fleet.Fleet
	crashed     map[[2]int]bool
	partitioned map[[2]int]bool
	isolated    map[int]bool
}

func newFleetFaultState(f *fleet.Fleet) *fleetFaultState {
	return &fleetFaultState{
		f:           f,
		crashed:     make(map[[2]int]bool),
		partitioned: make(map[[2]int]bool),
		isolated:    make(map[int]bool),
	}
}

// apply executes one fault against the fleet (call at quiescence). It
// returns a human-readable description of what actually happened, with
// symbolic targets resolved.
func (s *fleetFaultState) apply(ft FleetFault, onMove func(slot, dst int)) string {
	f := s.f
	switch ft.Kind {
	case FFCrashReplica:
		i := ft.Replica
		if i < 0 {
			if i = f.LeaderReplica(ft.Shard); i < 0 {
				i = 0 // leaderless already: crash the first live replica
			}
		}
		f.CrashReplica(ft.Shard, i)
		s.crashed[[2]int{ft.Shard, i}] = true
		return fmt.Sprintf("crashed shard %d replica %d (unit u%03d)",
			ft.Shard, i, f.ReplicaUnit(ft.Shard, i))
	case FFRestartReplicas:
		n := 0
		for key := range s.crashed {
			if key[0] != ft.Shard {
				continue
			}
			f.RestartReplica(key[0], key[1])
			delete(s.crashed, key)
			n++
		}
		return fmt.Sprintf("restarted %d crashed replicas of shard %d", n, ft.Shard)
	case FFPartitionUnits:
		f.PartitionUnits(ft.A, ft.B)
		s.partitioned[[2]int{ft.A, ft.B}] = true
		return fmt.Sprintf("partitioned u%03d<->u%03d", ft.A, ft.B)
	case FFHealUnits:
		f.HealPartition(ft.A, ft.B)
		delete(s.partitioned, [2]int{ft.A, ft.B})
		return fmt.Sprintf("healed u%03d<->u%03d", ft.A, ft.B)
	case FFIsolateLeader:
		i := f.LeaderReplica(ft.Shard)
		if i < 0 {
			i = 0
		}
		u := f.ReplicaUnit(ft.Shard, i)
		f.IsolateUnit(u)
		s.isolated[u] = true
		return fmt.Sprintf("isolated u%03d (shard %d replica %d)", u, ft.Shard, i)
	case FFRejoinUnits:
		n := 0
		for u := range s.isolated {
			f.RejoinUnit(u)
			delete(s.isolated, u)
			n++
		}
		return fmt.Sprintf("rejoined %d isolated units", n)
	case FFMoveSlot:
		onMove(ft.Slot, ft.Dst)
		return fmt.Sprintf("started move of slot %d -> shard %d", ft.Slot, ft.Dst)
	default:
		return fmt.Sprintf("unknown fault kind %d", int(ft.Kind))
	}
}

// healAll closes every open fault window — heals partitions, rejoins
// isolated units, restarts crashed replicas. Iteration order is made
// deterministic by draining sorted snapshots.
func (s *fleetFaultState) healAll() (healed, rejoined, restarted int) {
	for _, key := range sortedIntPairs(s.partitioned) {
		s.f.HealPartition(key[0], key[1])
		delete(s.partitioned, key)
		healed++
	}
	for _, u := range sortedInts(s.isolated) {
		s.f.RejoinUnit(u)
		delete(s.isolated, u)
		rejoined++
	}
	for _, key := range sortedIntPairs(s.crashed) {
		s.f.RestartReplica(key[0], key[1])
		delete(s.crashed, key)
		restarted++
	}
	return
}

func sortedIntPairs(m map[[2]int]bool) [][2]int {
	out := make([][2]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less2(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less2(a, b [2]int) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

func sortedInts(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// MinimizeFleet generates the seeded fleet fault schedule, runs it, and —
// if the run violated — bisects for the shortest schedule prefix that
// still violates, with up to parallel speculative probes per round (the
// same search MinimizeParallel runs for cluster schedules). Truncated
// prefixes are well-formed because the recovery phase heals every fault
// window still open when the prefix ends. Probe runs never feed
// o.Recorder. If the full run is clean it returns (nil, nil, full, nil).
func MinimizeFleet(o FleetOptions, parallel int) (schedule []FleetFault, minimized, full *FleetReport, err error) {
	o = o.withDefaults()
	all := genFleetSchedule(o)
	full, err = RunFleetSchedule(o, all)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(full.Violations) == 0 {
		return nil, nil, full, nil
	}
	if parallel < 1 {
		parallel = 1
	}
	oProbe := o
	oProbe.Recorder = nil

	lo, hi := 1, len(all)
	best := full
	for lo < hi {
		type span struct{ lo, hi int }
		frontier := []span{{lo, hi}}
		var mids []int
		seen := make(map[int]bool)
		for len(frontier) > 0 && len(mids) < parallel {
			s := frontier[0]
			frontier = frontier[1:]
			if s.lo >= s.hi {
				continue
			}
			mid := (s.lo + s.hi) / 2
			if !seen[mid] {
				seen[mid] = true
				mids = append(mids, mid)
			}
			frontier = append(frontier, span{s.lo, mid}, span{mid + 1, s.hi})
		}

		reports, rerr := runner.MapErr(len(mids), parallel, func(i int) (*FleetReport, error) {
			return RunFleetSchedule(oProbe, all[:mids[i]])
		})
		if rerr != nil {
			return nil, nil, nil, fmt.Errorf("chaos: minimizing fleet: %w", rerr)
		}
		byMid := make(map[int]*FleetReport, len(mids))
		for i, mid := range mids {
			byMid[mid] = reports[i]
		}

		for lo < hi {
			mid := (lo + hi) / 2
			rep, ok := byMid[mid]
			if !ok {
				break
			}
			if len(rep.Violations) > 0 {
				hi = mid
				best = rep
			} else {
				lo = mid + 1
			}
		}
	}
	if lo < len(all) {
		return all[:lo], best, full, nil
	}
	return all, full, full, nil
}
