package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"ustore/internal/block"
	"ustore/internal/core"
	"ustore/internal/model"
	"ustore/internal/obs"
	"ustore/internal/paxos"
	"ustore/internal/simtime"
	"ustore/internal/workload"
)

// BlockSize is the workload's write/verify granularity — one checksum block.
const BlockSize = block.ChecksumBlockSize

// streakLimit is how many consecutive all-error audits a replica may suffer
// before the harness declares the remount/failover path non-convergent. At
// the default 12h audit cadence this allows any legitimate repair window
// (host MTTR, disk replacement) to pass, but not a stuck client.
const streakLimit = 4

// Stats summarizes a chaos run.
type Stats struct {
	FaultsApplied       int
	WritesAcked         int
	WritesFailed        int
	AuditReads          int
	CorruptionsDetected int // checksum-layer detections during audits
	Repairs             int // blocks rewritten from the replica's good copy
	ScrubScanned        int
	ScrubBad            int
	ScrubRepaired       int
	ScrubUnrepaired     int
	Remounts            uint64
	// ModelOps and ModelPartitions report the end-of-run linearizability
	// check: how many completed metadata operations were verified against
	// the internal/model reference model, across how many per-space and
	// per-disk partitions. Check failures land in Report.Violations.
	ModelOps        int
	ModelPartitions int
	// Gray-failure run outcomes (zero unless Options.GrayFaults or
	// Options.Mitigation is set). Probe latencies are split by whether any
	// gray fault window was open when the read was issued, so mitigated and
	// unmitigated runs of one seed can compare tails directly.
	GrayQuarantines  int // disks the master quarantined
	GrayMigrations   int // replicas proactively migrated off quarantined disks
	ProbeReads       int
	ProbeErrors      int
	ProbeHealthyP99  time.Duration
	ProbeDegradedP99 time.Duration
	Hedges           uint64
	HedgeWins        uint64
	BreakerOpens     uint64
	Redirects        uint64
	FastFails        uint64
}

// Report is the outcome of a chaos run.
type Report struct {
	Seed       int64
	Opts       Options
	Schedule   []Fault
	Log        []string
	Violations []string
	Stats      Stats
	// SLO is set by traffic-mode runs (Options.Tenants): the per-class SLO
	// outcome of the multi-tenant traffic engine.
	SLO *workload.SLOReport
}

// LogText renders the event log as one string (replay comparisons).
func (r *Report) LogText() string { return strings.Join(r.Log, "\n") }

// replicaBlock tracks one block of one replica: the last acknowledged
// content and whether an unacknowledged write makes it unverifiable.
type replicaBlock struct {
	data      []byte // last acked content; nil = never acknowledged
	uncertain bool   // an outstanding/failed write may or may not have landed
	version   int    // bumped per write (and per media wipe) to drop stale acks
	inflight  int
}

// replica is one copy of a replicated workload space.
type replica struct {
	name      string
	cl        *core.ClientLib
	space     core.SpaceID
	diskID    string
	offset    int64 // on-disk base offset of the space
	blocks    []replicaBlock
	streak    int // consecutive audits where every read failed
	auditing  bool
	migrating bool // a quarantine-drain migration is in flight
}

type pairKey struct{ a, b string }

type harness struct {
	opts Options
	c    *core.Cluster
	rng  *rand.Rand // workload randomness (schedule has its own stream)
	// hist records every metadata operation for the end-of-run
	// linearizability check. Owned by this harness — probe runs and sweep
	// workers each build their own, so none can pollute another's history.
	hist *model.History

	replicas []*replica
	bySpace  map[core.SpaceID]*replica

	log        []string
	violations []string
	allocSeen  map[string]bool
	stats      Stats

	// Open fault windows, for the drain phase and quiet-point detection.
	crashedHosts map[string]bool
	failedDisks  map[string]bool
	failedHubs   map[string]bool
	openCuts     map[pairKey]bool
	openLoss     map[pairKey]bool
	openDup      map[pairKey]bool
	isolated     map[string]bool
	lastNetFault simtime.Time

	// Open gray fault windows (for drain and probe-latency classification),
	// plus the per-pair hedged-read probers of a gray/mitigation run.
	degradedDisks   map[string]bool
	downgradedLinks map[string]bool
	brownedHosts    map[string]bool
	probers         []*core.ClientLib
	probeHealthy    []time.Duration
	probeDegraded   []time.Duration

	// windowSpans holds the open trace span of each active fault window,
	// keyed by kind+target, so the closing fault ends the matching span.
	windowSpans map[string]*obs.Span

	writeSeq int
}

// leanConfig stretches the control loop's timers so a 100-simulated-day run
// stays within a simulable event budget, while keeping every ratio (failure
// detection < MTTR < audit cadence) intact.
func leanConfig(o Options, hist *model.History) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.HeartbeatInterval = 5 * time.Minute
	cfg.HostDeadAfter = 3
	cfg.ElectionTTL = 30 * time.Minute
	cfg.Paxos = paxos.Config{
		HeartbeatInterval:   time.Minute,
		ElectionTimeoutBase: 4 * time.Minute,
		PhaseTimeout:        2 * time.Minute,
	}
	cfg.CoordSweepInterval = 2 * time.Minute
	cfg.ScrubInterval = o.ScrubEvery
	cfg.DisableChecksums = o.DisableChecksums
	cfg.RPCTimeout = 2 * time.Second
	cfg.Recorder = o.Recorder
	cfg.History = hist
	cfg.InjectStaleLease = o.InjectStaleLease
	// The detect-quarantine side of the mitigation stack lives in the
	// master; unmitigated gray runs leave it off so the same seed measures
	// the raw cost of fail-slow hardware.
	cfg.HealthQuarantine = o.Mitigation
	cfg.InjectQuarantineBlind = o.InjectQuarantineBlind
	return cfg
}

// Run generates the seeded fault schedule and executes it. Traffic-mode
// runs (Options.Tenants) execute the tenant traffic engine instead of a
// fault schedule.
func Run(o Options) (*Report, error) {
	if o.Tenants {
		return runTraffic(o)
	}
	h, err := newHarness(o)
	if err != nil {
		return nil, err
	}
	schedule := genSchedule(o, h.hostNames(), h.diskNames(), h.leafHubNames(), h.machineNames())
	return h.execute(schedule)
}

// RunSchedule executes an explicit schedule (the minimizer's entry point).
func RunSchedule(o Options, schedule []Fault) (*Report, error) {
	h, err := newHarness(o)
	if err != nil {
		return nil, err
	}
	return h.execute(schedule)
}

func newHarness(o Options) (*harness, error) {
	if o.Pairs <= 0 || o.BlocksPerSpace <= 0 || o.Duration <= 0 {
		return nil, fmt.Errorf("chaos: bad options (pairs=%d blocks=%d duration=%s)",
			o.Pairs, o.BlocksPerSpace, o.Duration)
	}
	hist := model.NewHistory()
	c, err := core.NewCluster(leanConfig(o, hist))
	if err != nil {
		return nil, err
	}
	h := &harness{
		opts:         o,
		c:            c,
		hist:         hist,
		rng:          rand.New(rand.NewSource(o.Seed ^ 0x5deece66d)),
		bySpace:      make(map[core.SpaceID]*replica),
		allocSeen:    make(map[string]bool),
		crashedHosts: make(map[string]bool),
		failedDisks:  make(map[string]bool),
		failedHubs:   make(map[string]bool),
		openCuts:     make(map[pairKey]bool),
		openLoss:     make(map[pairKey]bool),
		openDup:      make(map[pairKey]bool),
		isolated:     make(map[string]bool),
		windowSpans:  make(map[string]*obs.Span),

		degradedDisks:   make(map[string]bool),
		downgradedLinks: make(map[string]bool),
		brownedHosts:    make(map[string]bool),
	}
	if o.Empirical != nil {
		// Arm the media-level URE model: every disk read then surfaces
		// silently corrupted sectors at the model's measured rate,
		// accelerated by the same factor that compresses media age into the
		// run window (a 5-year bathtub in a 2-day run reads ~900x more
		// "age" per sector). The checksum layer and scrubber are what turn
		// these into detections instead of corruption escapes.
		rate := o.Empirical.URESectorRate() * float64(empiricalAge(o)) / float64(o.Duration)
		for _, d := range c.Disks {
			d.SetURERate(rate)
		}
	}
	if o.Mitigation {
		// Quarantine's proactive-migration side: when the master fences a
		// gray disk, the harness drains the workload replicas off it (the
		// role a replica/EC re-placement plays in a real deployment).
		for _, m := range c.Masters {
			m.OnDiskQuarantined = func(diskID, host string) { h.onQuarantine(diskID, host) }
			m.OnDiskReleased = func(diskID string) { h.logf("quarantine released: disk %s", diskID) }
		}
	}
	// Boot: rolling spin-up, USB enumeration, paxos + coord + master
	// election all need to converge before the workload starts.
	c.Settle(30 * time.Minute)
	if c.ActiveMaster() == nil {
		return nil, fmt.Errorf("chaos: no active master after boot settle")
	}
	if err := h.setupWorkload(); err != nil {
		return nil, err
	}
	if err := h.setupProbers(); err != nil {
		return nil, err
	}
	h.installScrubRepair()
	return h, nil
}

// --- population helpers (deterministic orderings) ---

func (h *harness) hostNames() []string { return h.c.Fabric.Hosts() }

func (h *harness) diskNames() []string {
	var out []string
	for _, d := range h.c.Fabric.Disks() {
		out = append(out, string(d))
	}
	sort.Strings(out)
	return out
}

// leafHubNames returns the fabric's leaf hubs — the bounded-blast-radius
// targets for hub faults (an aggregation hub failure is a host-wide outage,
// already covered by host crashes).
func (h *harness) leafHubNames() []string {
	var out []string
	for _, hub := range h.c.Fabric.Hubs() {
		if strings.Contains(string(hub), "leafhub") {
			out = append(out, string(hub))
		}
	}
	sort.Strings(out)
	return out
}

// machineNames lists the machines network faults may target: the hosts and
// the master-replica machines.
func (h *harness) machineNames() []string {
	out := append([]string(nil), h.c.Fabric.Hosts()...)
	for _, m := range h.c.Masters {
		out = append(out, "mach-"+m.Name())
	}
	return out
}

// --- workload setup ---

func (h *harness) setupWorkload() error {
	size := int64(h.opts.BlocksPerSpace) * BlockSize
	for i := 0; i < h.opts.Pairs; i++ {
		for j := 0; j < 2; j++ {
			name := fmt.Sprintf("chaos%d%c", i, 'a'+j)
			cl := h.c.Client(name, fmt.Sprintf("chaos-svc%d%c", i, 'a'+j))
			var rep core.AllocateReply
			err := errPending
			cl.Allocate(size, func(r core.AllocateReply, e error) { rep, err = r, e })
			h.settleUntil(func() bool { return !errors.Is(err, errPending) }, 2*time.Minute)
			if err != nil {
				return fmt.Errorf("chaos: allocating %s: %w", name, err)
			}
			err = errPending
			cl.Mount(rep.Space, func(e error) { err = e })
			h.settleUntil(func() bool { return !errors.Is(err, errPending) }, 2*time.Minute)
			if err != nil {
				return fmt.Errorf("chaos: mounting %s: %w", name, err)
			}
			r := &replica{
				name:   name,
				cl:     cl,
				space:  rep.Space,
				diskID: rep.DiskID,
				offset: rep.Offset,
				blocks: make([]replicaBlock, h.opts.BlocksPerSpace),
			}
			h.replicas = append(h.replicas, r)
			h.bySpace[rep.Space] = r
		}
		if a, b := h.replicas[2*i], h.replicas[2*i+1]; a.diskID == b.diskID {
			h.logf("warning: pair %d copies share disk %s", i, a.diskID)
		}
	}
	// Initial write pass: every block of every pair gets acknowledged data
	// before any fault fires, so the whole surface is auditable.
	for i := 0; i < h.opts.Pairs; i++ {
		for blk := 0; blk < h.opts.BlocksPerSpace; blk++ {
			h.writePair(i, blk)
		}
	}
	ok := h.settleUntil(func() bool { return h.inflightWrites() == 0 }, time.Hour)
	if !ok {
		return fmt.Errorf("chaos: initial write pass did not drain")
	}
	for _, r := range h.replicas {
		for blk := range r.blocks {
			if r.blocks[blk].uncertain || r.blocks[blk].data == nil {
				return fmt.Errorf("chaos: initial write to %s block %d not acknowledged", r.name, blk)
			}
		}
	}
	h.logf("workload ready: %d pairs x %d blocks x %d KiB, seed %d",
		h.opts.Pairs, h.opts.BlocksPerSpace, BlockSize/1024, h.opts.Seed)
	return nil
}

var errPending = errors.New("chaos: pending")

// Gray-run probe workload: every grayProbeEvery, each pair's prober issues a
// chained burst of reads and records the round trips. Bursts (rather than
// single spaced reads) let the per-target circuit breaker engage within a
// tick the way a real request stream would.
const (
	grayProbeEvery = 15 * time.Minute
	grayProbeBurst = 40
)

// setupProbers creates one extra client per pair that mounts both copies and
// — in mitigated runs — hedges reads between them. Gated on the gray-run
// options so default runs stay byte-identical.
func (h *harness) setupProbers() error {
	if !h.opts.GrayFaults && !h.opts.Mitigation {
		return nil
	}
	for i := 0; i < h.opts.Pairs; i++ {
		cl := h.c.Client(fmt.Sprintf("probe%d", i), fmt.Sprintf("probe-svc%d", i))
		for j := 0; j < 2; j++ {
			r := h.replicas[2*i+j]
			err := errPending
			cl.Mount(r.space, func(e error) { err = e })
			h.settleUntil(func() bool { return !errors.Is(err, errPending) }, 2*time.Minute)
			if err != nil {
				return fmt.Errorf("chaos: prober %d mounting %s: %w", i, r.name, err)
			}
		}
		if h.opts.Mitigation {
			mit := cl.EnableMitigation()
			mit.SetMirror(h.replicas[2*i].space, h.replicas[2*i+1].space)
		}
		h.probers = append(h.probers, cl)
	}
	return nil
}

// grayOpen reports whether any gray fault window is currently open (probe
// reads issued now are classified as degraded-phase samples).
func (h *harness) grayOpen() bool {
	return len(h.degradedDisks)+len(h.downgradedLinks)+len(h.brownedHosts) > 0
}

func (h *harness) probeAll() {
	for pair := range h.probers {
		h.probePair(pair, grayProbeBurst)
	}
}

// probePair runs one chained read burst against a pair, alternating between
// the two copies — hedged in mitigated runs, plain otherwise. Reading both
// copies keeps every pair disk's health history warm, which the master's
// cohort-median gray scoring needs. A read that races a concurrent write or
// migration is skipped for verification, but a completed read of stable
// acknowledged data must return those bytes (a hedge or redirect serving
// stale/wrong data would surface here).
func (h *harness) probePair(pair, remaining int) {
	if remaining == 0 {
		return
	}
	cl := h.probers[pair]
	ra, rb := h.replicas[2*pair], h.replicas[2*pair+1]
	r := h.replicas[2*pair+remaining%2]
	blk := h.rng.Intn(h.opts.BlocksPerSpace)
	// A hedged read may be served by either copy, and the copies legally
	// diverge when one side's write failed. So verification snapshots both
	// copies' block state and flags only a read that matches neither stable
	// acknowledged copy — that data came from nowhere.
	ba, bb := &ra.blocks[blk], &rb.blocks[blk]
	va, vb := ba.version, bb.version
	stable := func(b *replicaBlock, v int) bool {
		return b.version == v && !b.uncertain && b.inflight == 0 && b.data != nil
	}
	degraded := h.grayOpen()
	start := h.c.Sched.Now()
	done := func(data []byte, err error) {
		rtt := h.c.Sched.Now() - start
		h.stats.ProbeReads++
		if degraded {
			h.probeDegraded = append(h.probeDegraded, rtt)
		} else {
			h.probeHealthy = append(h.probeHealthy, rtt)
		}
		h.opts.Recorder.Histogram("chaos", "probe_read_seconds").ObserveDuration(rtt)
		if err != nil {
			h.stats.ProbeErrors++ // may race a migration or fault window; not a violation
		} else if stable(ba, va) && stable(bb, vb) &&
			!bytes.Equal(data, ba.data) && !bytes.Equal(data, bb.data) {
			h.violatef("probe: %s block %d returned bytes matching neither copy", r.name, blk)
		}
		h.probePair(pair, remaining-1)
	}
	if h.opts.Mitigation {
		cl.ReadHedged(r.space, int64(blk)*BlockSize, BlockSize, done)
	} else {
		cl.Read(r.space, int64(blk)*BlockSize, BlockSize, done)
	}
}

// onQuarantine drains a quarantined disk: every workload replica on it is
// migrated to a fresh allocation (the master's allocator now excludes the
// gray disk, so the new space lands elsewhere).
func (h *harness) onQuarantine(diskID, host string) {
	h.stats.GrayQuarantines++
	h.logf("quarantine: disk %s on %s — draining", diskID, host)
	for _, r := range h.replicas {
		if r.diskID == diskID {
			h.migrateReplica(r)
		}
	}
}

// migrateReplica moves one replica to a new allocation: allocate, mount,
// switch the harness's expectations over, rewrite every acknowledged block
// into the new space, and release the old one. In-flight writes to the old
// space are dropped by the per-block version bump, exactly like a media
// wipe.
func (h *harness) migrateReplica(r *replica) {
	if r.migrating {
		return
	}
	r.migrating = true
	size := int64(h.opts.BlocksPerSpace) * BlockSize
	r.cl.Allocate(size, func(rep core.AllocateReply, err error) {
		if err != nil {
			r.migrating = false
			h.logf("quarantine drain: allocating for %s: %v", r.name, err)
			return
		}
		r.cl.Mount(rep.Space, func(err error) {
			if err != nil {
				r.migrating = false
				h.logf("quarantine drain: mounting %s for %s: %v", rep.Space, r.name, err)
				return
			}
			old, oldDisk := r.space, r.diskID
			delete(h.bySpace, old)
			r.space, r.diskID, r.offset = rep.Space, rep.DiskID, rep.Offset
			h.bySpace[r.space] = r
			for blk := range r.blocks {
				b := &r.blocks[blk]
				b.version++ // writes still in flight to the old space no longer count
				if b.data != nil {
					h.writeReplicaData(r, blk, b.data)
				}
			}
			r.cl.Release(old, func(err error) {
				if err != nil {
					h.logf("quarantine drain: releasing %s: %v", old, err)
				}
			})
			h.stats.GrayMigrations++
			r.migrating = false
			h.logf("quarantine drain: %s migrated %s (disk %s) -> %s (disk %s)",
				r.name, old, oldDisk, r.space, r.diskID)
			h.remountProber(r)
		})
	})
}

// remountProber points a pair's prober at a replica's post-migration space
// and refreshes the hedging mirror registration.
func (h *harness) remountProber(r *replica) {
	if len(h.probers) == 0 {
		return
	}
	for i, rr := range h.replicas {
		if rr != r {
			continue
		}
		pair := i / 2
		cl := h.probers[pair]
		space := r.space
		cl.Mount(space, func(err error) {
			if err != nil {
				h.logf("prober %d: remounting %s: %v", pair, space, err)
				return
			}
			if m := cl.Mitigation(); m != nil {
				m.SetMirror(h.replicas[2*pair].space, h.replicas[2*pair+1].space)
			}
		})
		return
	}
}

// installScrubRepair points every endpoint scrubber at the harness's
// known-good copies (standing in for the replica/EC read a service-level
// repair would do).
func (h *harness) installScrubRepair() {
	hosts := make([]string, 0, len(h.c.EndPoints))
	for name := range h.c.EndPoints {
		hosts = append(hosts, name)
	}
	sort.Strings(hosts)
	for _, name := range hosts {
		sc := h.c.EndPoints[name].Scrubber()
		if sc == nil {
			continue
		}
		sc.SetRepairFunc(func(ex core.ExportArgs, off int64, length int, done func([]byte, bool)) {
			r := h.bySpace[ex.Space]
			blk := int(off / BlockSize)
			if r == nil || blk >= len(r.blocks) || int64(blk)*BlockSize != off {
				done(nil, false)
				return
			}
			b := &r.blocks[blk]
			if b.data == nil || b.uncertain || length != len(b.data) {
				done(nil, false)
				return
			}
			done(append([]byte(nil), b.data...), true)
		})
	}
}

// pattern builds deterministic block content for a (pair, block, sequence)
// triple.
func (h *harness) pattern(pair, blk, seq int) []byte {
	buf := make([]byte, BlockSize)
	base := byte(pair*31 + blk*7 + seq*13 + int(h.opts.Seed))
	for i := range buf {
		buf[i] = base + byte(i)
	}
	return buf
}

func (h *harness) writePair(pair, blk int) {
	h.writeSeq++
	data := h.pattern(pair, blk, h.writeSeq)
	h.writeReplicaData(h.replicas[2*pair], blk, data)
	h.writeReplicaData(h.replicas[2*pair+1], blk, data)
}

func (h *harness) writeReplicaData(r *replica, blk int, data []byte) {
	b := &r.blocks[blk]
	b.version++
	v := b.version
	b.inflight++
	b.uncertain = true // unverifiable until (and unless) the write acks
	r.cl.Write(r.space, int64(blk)*BlockSize, data, func(err error) {
		b.inflight--
		if b.version != v {
			return // superseded by a newer write or a media wipe
		}
		if err == nil {
			b.data = append([]byte(nil), data...)
			b.uncertain = false
			h.stats.WritesAcked++
		} else {
			h.stats.WritesFailed++
		}
	})
}

func (h *harness) inflightWrites() int {
	n := 0
	for _, r := range h.replicas {
		for i := range r.blocks {
			n += r.blocks[i].inflight
		}
	}
	return n
}

// --- logging ---

func (h *harness) stamp() string {
	now := h.c.Sched.Now()
	day := now / (24 * time.Hour)
	rem := now % (24 * time.Hour)
	return fmt.Sprintf("[d%03d %02d:%02d:%02d]", day,
		rem/time.Hour, (rem%time.Hour)/time.Minute, (rem%time.Minute)/time.Second)
}

func (h *harness) logf(format string, a ...any) {
	h.log = append(h.log, h.stamp()+" "+fmt.Sprintf(format, a...))
}

func (h *harness) violatef(format string, a ...any) {
	msg := fmt.Sprintf(format, a...)
	h.violations = append(h.violations, h.stamp()+" "+msg)
	h.logf("VIOLATION: %s", msg)
	h.opts.Recorder.Counter("chaos", "violations_total").Inc()
	h.opts.Recorder.Instant("chaos", "violation", "auditor")
}

// --- fault application ---

// faultWindow maps a window-opening or -closing fault to its span key and
// (for openers) the span name. Point events return an empty key.
func faultWindow(f Fault) (key, name string, opens bool) {
	switch f.Kind {
	case FaultHostCrash:
		return "host:" + f.A, "host-down", true
	case FaultHostRestore:
		return "host:" + f.A, "", false
	case FaultDiskFail:
		return "disk:" + f.A, "disk-failed", true
	case FaultDiskReplace:
		return "disk:" + f.A, "", false
	case FaultHubFail:
		return "hub:" + f.A, "hub-failed", true
	case FaultHubReplace:
		return "hub:" + f.A, "", false
	case FaultLinkCut:
		return "cut:" + f.A + "|" + f.B, "link-cut", true
	case FaultLinkHeal:
		return "cut:" + f.A + "|" + f.B, "", false
	case FaultLinkLoss:
		return "loss:" + f.A + "|" + f.B, "link-loss", true
	case FaultLinkLossEnd:
		return "loss:" + f.A + "|" + f.B, "", false
	case FaultLinkDup:
		return "dup:" + f.A + "|" + f.B, "link-dup", true
	case FaultLinkDupEnd:
		return "dup:" + f.A + "|" + f.B, "", false
	case FaultIsolate:
		return "isolate:" + f.A, "isolated", true
	case FaultRejoin:
		return "isolate:" + f.A, "", false
	case FaultDiskDegrade:
		return "degrade:" + f.A, "disk-degraded", true
	case FaultDiskRecover:
		return "degrade:" + f.A, "", false
	case FaultLinkDowngrade:
		return "linkdown:" + f.A, "link-downgraded", true
	case FaultLinkRestore:
		return "linkdown:" + f.A, "", false
	case FaultBrownout:
		return "brownout:" + f.A, "host-brownout", true
	case FaultBrownoutEnd:
		return "brownout:" + f.A, "", false
	}
	return "", "", false
}

// recordFault emits the fault into the run's metrics and trace: a per-kind
// counter, an instant on the injector track, and (for window faults) a span
// covering the open window.
func (h *harness) recordFault(f Fault) {
	rec := h.opts.Recorder
	rec.Counter("chaos", "faults_total", obs.L("kind", f.Kind.String())).Inc()
	target := f.A
	if f.B != "" {
		target = f.A + "<->" + f.B
	}
	rec.Instant("chaos", f.Kind.String(), "injector", obs.L("target", target))
	key, name, opens := faultWindow(f)
	if key == "" {
		return
	}
	if opens {
		if h.windowSpans[key] == nil {
			h.windowSpans[key] = rec.Begin("chaos", name, "injector", obs.L("target", target))
		}
	} else {
		sp := h.windowSpans[key]
		delete(h.windowSpans, key)
		sp.End()
	}
}

// closeWindowSpans ends every still-open fault-window span (the drain phase
// heals the underlying faults).
func (h *harness) closeWindowSpans() {
	keys := make([]string, 0, len(h.windowSpans))
	for k := range h.windowSpans {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h.windowSpans[k].End(obs.L("status", "drained"))
	}
	h.windowSpans = make(map[string]*obs.Span)
}

func (h *harness) apply(f Fault) {
	// Copy-relative gray disk faults resolve their target now, against the
	// replica's current placement.
	switch f.Kind {
	case FaultDiskDegrade, FaultDiskRecover, FaultLinkDowngrade, FaultLinkRestore:
		if f.A == "" && len(h.replicas) > 0 {
			f.A = h.replicas[f.Copy%len(h.replicas)].diskID
		}
	}
	h.stats.FaultsApplied++
	h.logf("fault: %s", f)
	h.recordFault(f)
	switch f.Kind {
	case FaultHostCrash:
		h.crashedHosts[f.A] = true
		h.c.CrashHost(f.A)
	case FaultHostRestore:
		delete(h.crashedHosts, f.A)
		h.c.RestoreHost(f.A)
	case FaultDiskFail:
		h.failedDisks[f.A] = true
		if err := h.c.FailDisk(f.A); err != nil {
			h.logf("fault error: %v", err)
		}
	case FaultDiskReplace:
		delete(h.failedDisks, f.A)
		if err := h.c.ReplaceDisk(f.A); err != nil {
			h.logf("fault error: %v", err)
		}
		h.markWiped(f.A)
		h.scheduleRebuild(f.A)
	case FaultHubFail:
		h.failedHubs[f.A] = true
		if err := h.c.FailHub(f.A); err != nil {
			h.logf("fault error: %v", err)
		}
	case FaultHubReplace:
		delete(h.failedHubs, f.A)
		if err := h.c.ReplaceHub(f.A); err != nil {
			h.logf("fault error: %v", err)
		}
	case FaultLinkCut:
		h.openCuts[pairKey{f.A, f.B}] = true
		h.c.Net.CutMachines(f.A, f.B)
		h.netEvent()
	case FaultLinkHeal:
		delete(h.openCuts, pairKey{f.A, f.B})
		h.c.Net.HealMachines(f.A, f.B)
		h.netEvent()
	case FaultLinkLoss:
		h.openLoss[pairKey{f.A, f.B}] = true
		h.c.Net.SetMachineLossRate(f.A, f.B, f.Rate)
		h.netEvent()
	case FaultLinkLossEnd:
		delete(h.openLoss, pairKey{f.A, f.B})
		h.c.Net.SetMachineLossRate(f.A, f.B, 0)
		h.netEvent()
	case FaultLinkDup:
		h.openDup[pairKey{f.A, f.B}] = true
		h.c.Net.SetMachineDupRate(f.A, f.B, f.Rate)
		h.netEvent()
	case FaultLinkDupEnd:
		delete(h.openDup, pairKey{f.A, f.B})
		h.c.Net.SetMachineDupRate(f.A, f.B, 0)
		h.netEvent()
	case FaultIsolate:
		h.isolated[f.A] = true
		h.c.Net.IsolateMachine(f.A)
		h.netEvent()
	case FaultRejoin:
		delete(h.isolated, f.A)
		h.c.Net.RejoinMachine(f.A)
		h.netEvent()
	case FaultCorrupt:
		r := h.replicas[f.Copy%len(h.replicas)]
		blk := f.Block % len(r.blocks)
		off := r.offset + int64(blk)*BlockSize
		h.c.Disks[r.diskID].CorruptSector(off)
	case FaultDiskDegrade:
		h.degradedDisks[f.A] = true
		if err := h.c.DegradeDisk(f.A, f.Rate); err != nil {
			h.logf("fault error: %v", err)
		}
	case FaultDiskRecover:
		delete(h.degradedDisks, f.A)
		if err := h.c.RecoverDisk(f.A); err != nil {
			h.logf("fault error: %v", err)
		}
	case FaultLinkFlap:
		if err := h.c.FlapLink(f.A, f.Copy); err != nil {
			h.logf("fault error: %v", err)
		}
	case FaultLinkDowngrade:
		h.downgradedLinks[f.A] = true
		if err := h.c.DowngradeLink(f.A, f.Rate); err != nil {
			h.logf("fault error: %v", err)
		}
	case FaultLinkRestore:
		delete(h.downgradedLinks, f.A)
		if err := h.c.RestoreLink(f.A); err != nil {
			h.logf("fault error: %v", err)
		}
	case FaultBrownout:
		h.brownedHosts[f.A] = true
		h.c.BrownoutHost(f.A, f.Rate)
	case FaultBrownoutEnd:
		delete(h.brownedHosts, f.A)
		h.c.EndBrownout(f.A)
	}
}

func (h *harness) netEvent() { h.lastNetFault = h.c.Sched.Now() }

// markWiped invalidates the harness's expectations for every replica on a
// freshly replaced (blank-media) disk.
func (h *harness) markWiped(diskID string) {
	for _, r := range h.replicas {
		if r.diskID != diskID {
			continue
		}
		for i := range r.blocks {
			b := &r.blocks[i]
			b.version++ // drop acks from writes that hit the old media
			if b.data != nil {
				b.uncertain = true
			}
		}
	}
}

// scheduleRebuild restores a replaced disk's replicas from the harness's
// good copies — the role a replica/EC rebuild plays in a real deployment.
// Retries cover rebuilds that collide with other open fault windows.
func (h *harness) scheduleRebuild(diskID string) {
	for _, delay := range []time.Duration{30 * time.Minute, 3 * time.Hour, 9 * time.Hour} {
		h.c.Sched.After(delay, func() {
			for _, r := range h.replicas {
				if r.diskID != diskID {
					continue
				}
				for blk := range r.blocks {
					b := &r.blocks[blk]
					if b.uncertain && b.data != nil && b.inflight == 0 {
						h.writeReplicaData(r, blk, b.data)
					}
				}
			}
		})
	}
}

// --- invariant checking ---

func (h *harness) activeMasters() int {
	n := 0
	for _, m := range h.c.Masters {
		if m.Active() {
			n++
		}
	}
	return n
}

func (h *harness) checkAllocations(stage string) {
	m := h.c.ActiveMaster()
	if m == nil {
		return
	}
	if err := m.ValidateAllocations(); err != nil {
		if !h.allocSeen[err.Error()] {
			h.allocSeen[err.Error()] = true
			h.violatef("%s: allocation invariant: %v", stage, err)
		}
	}
}

// checkQuietMasters verifies the single-active-master invariant, but only at
// quiet points: no network fault window open and none closed within the last
// two hours (well past session TTL + sweep + election convergence).
func (h *harness) checkQuietMasters() {
	if len(h.openCuts)+len(h.openLoss)+len(h.openDup)+len(h.isolated) > 0 {
		return
	}
	if h.c.Sched.Now()-h.lastNetFault < 2*time.Hour {
		return
	}
	if n := h.activeMasters(); n != 1 {
		h.violatef("quiet-point master invariant: %d active masters", n)
	}
}

// checkQuarantine verifies the allocator never handed out space on a
// quarantined disk (core.Master.ValidateQuarantine — only ever violated by
// the InjectQuarantineBlind mutation self-test).
func (h *harness) checkQuarantine(stage string) {
	m := h.c.ActiveMaster()
	if m == nil {
		return
	}
	if err := m.ValidateQuarantine(); err != nil {
		if !h.allocSeen[err.Error()] {
			h.allocSeen[err.Error()] = true
			h.violatef("%s: quarantine invariant: %v", stage, err)
		}
	}
}

func (h *harness) audit() {
	h.opts.Recorder.Instant("chaos", "audit-tick", "auditor")
	h.checkAllocations("audit")
	h.checkQuarantine("audit")
	h.checkQuietMasters()
	for _, r := range h.replicas {
		h.auditReplica(r)
	}
}

// auditReplica read-verifies every acknowledged block of one replica.
// Checksum errors are *detections*, not violations — the storage layer did
// its job — and trigger a repair write from the good copy. A successful read
// returning wrong bytes is silent corruption: an invariant violation.
func (h *harness) auditReplica(r *replica) {
	if r.auditing {
		return
	}
	var targets []int
	for i := range r.blocks {
		b := &r.blocks[i]
		if b.data != nil && !b.uncertain && b.inflight == 0 {
			targets = append(targets, i)
		}
	}
	if len(targets) == 0 {
		return
	}
	r.auditing = true
	rec := h.opts.Recorder
	span := rec.Begin("chaos", "audit:"+r.name, "auditor", obs.L("blocks", fmt.Sprint(len(targets))))
	started := h.c.Sched.Now()
	okCount, errCount := 0, 0
	pending := len(targets)
	finish := func() {
		rec.Histogram("chaos", "audit_seconds").ObserveDuration(h.c.Sched.Now() - started)
		span.End(obs.L("ok", fmt.Sprint(okCount)), obs.L("errors", fmt.Sprint(errCount)))
		r.auditing = false
		if okCount > 0 {
			r.streak = 0
		} else if errCount > 0 {
			r.streak++
			if r.streak == streakLimit {
				h.violatef("remount not converging: %s failed %d consecutive audits", r.name, r.streak)
			}
		}
	}
	for _, blk := range targets {
		blk := blk
		b := &r.blocks[blk]
		v := b.version
		h.stats.AuditReads++
		r.cl.Read(r.space, int64(blk)*BlockSize, BlockSize, func(data []byte, err error) {
			defer func() {
				pending--
				if pending == 0 {
					finish()
				}
			}()
			if b.version != v || b.uncertain {
				return // block changed while the read was in flight
			}
			if err != nil {
				if errors.Is(err, block.ErrChecksum) {
					h.stats.CorruptionsDetected++
					h.logf("audit: checksum error on %s block %d — repairing from good copy", r.name, blk)
					h.repairBlock(r, blk)
				} else {
					errCount++
				}
				return
			}
			if !bytes.Equal(data, b.data) {
				h.violatef("silent corruption: %s block %d read acked data back wrong", r.name, blk)
				h.repairBlock(r, blk) // restore so one hit doesn't re-fire every audit
				return
			}
			okCount++
		})
	}
}

// repairBlock rewrites a block from the harness's good copy (recomputing the
// on-disk CRC on the way down).
func (h *harness) repairBlock(r *replica, blk int) {
	b := &r.blocks[blk]
	if b.data == nil {
		return
	}
	data := append([]byte(nil), b.data...)
	b.version++
	v := b.version
	b.inflight++
	r.cl.Write(r.space, int64(blk)*BlockSize, data, func(err error) {
		b.inflight--
		if b.version != v {
			return
		}
		if err == nil {
			b.uncertain = false
			h.stats.Repairs++
		} else {
			b.uncertain = true
		}
	})
}

// --- run loop ---

func (h *harness) execute(schedule []Fault) (*Report, error) {
	o := h.opts
	start := h.c.Sched.Now()
	for _, f := range schedule {
		f := f
		h.c.Sched.At(start+f.At, func() { h.apply(f) })
	}
	var writeTick, auditTick *simtime.Ticker
	if o.WriteEvery > 0 {
		tick := 0
		writeTick = h.c.Sched.Every(o.WriteEvery, func() {
			pair := tick % o.Pairs
			tick++
			h.writePair(pair, h.rng.Intn(o.BlocksPerSpace))
		})
	}
	if o.AuditEvery > 0 {
		auditTick = h.c.Sched.Every(o.AuditEvery, h.audit)
	}
	var probeTick *simtime.Ticker
	if len(h.probers) > 0 {
		probeTick = h.c.Sched.Every(grayProbeEvery, h.probeAll)
	}

	h.lastNetFault = start
	h.c.Settle(o.Duration)
	h.drain()
	h.closeWindowSpans()
	h.c.Settle(12 * time.Hour)
	if writeTick != nil {
		writeTick.Stop()
	}
	if auditTick != nil {
		auditTick.Stop()
	}
	if probeTick != nil {
		probeTick.Stop()
	}

	h.finalAudit()
	h.finalWritePass()
	if n := h.activeMasters(); n != 1 {
		h.violatef("final: master invariant: %d active masters", n)
	}
	h.checkAllocations("final")
	h.checkQuarantine("final")
	h.checkHistory()
	h.logf("run complete: %d faults, %d violations", h.stats.FaultsApplied, len(h.violations))

	rep := &Report{
		Seed:       o.Seed,
		Opts:       o,
		Schedule:   schedule,
		Log:        h.log,
		Violations: h.violations,
		Stats:      h.stats,
	}
	hosts := make([]string, 0, len(h.c.EndPoints))
	for name := range h.c.EndPoints {
		hosts = append(hosts, name)
	}
	sort.Strings(hosts)
	for _, name := range hosts {
		if sc := h.c.EndPoints[name].Scrubber(); sc != nil {
			st := sc.Stats()
			rep.Stats.ScrubScanned += st.Scanned
			rep.Stats.ScrubBad += st.BadBlocks
			rep.Stats.ScrubRepaired += st.Repaired
			rep.Stats.ScrubUnrepaired += st.Unrepaired
		}
	}
	for _, r := range h.replicas {
		rep.Stats.Remounts += r.cl.Remounts
	}
	rep.Stats.ProbeHealthyP99 = p99(h.probeHealthy)
	rep.Stats.ProbeDegradedP99 = p99(h.probeDegraded)
	for _, cl := range h.probers {
		if m := cl.Mitigation(); m != nil {
			rep.Stats.Hedges += m.Hedges
			rep.Stats.HedgeWins += m.HedgeWins
			rep.Stats.BreakerOpens += m.BreakerOpens
			rep.Stats.Redirects += m.Redirects
			rep.Stats.FastFails += m.FastFails
		}
	}
	return rep, nil
}

// p99 returns the 99th-percentile of a latency sample set (0 if empty).
func p99(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)*99/100]
}

// checkHistory runs the recorded metadata history through the reference
// model's linearizability checker (internal/model). Every violating
// partition becomes a regular harness violation, so Minimize shrinks
// model-checked failures exactly like data-loss ones.
func (h *harness) checkHistory() {
	res := model.Check(h.hist.Ops())
	h.stats.ModelOps = res.Ops
	h.stats.ModelPartitions = res.Partitions
	if res.BudgetExceeded > 0 {
		h.logf("model: search budget exhausted on %d partitions (inconclusive)", res.BudgetExceeded)
	}
	for _, v := range res.Violations {
		h.violatef("model: %s: %s", v.Partition, v.Msg)
	}
	h.logf("model: %d metadata ops across %d partitions checked against the reference model",
		res.Ops, res.Partitions)
}

// drain force-heals everything still open so the convergence invariants can
// be checked against a fault-free cluster (also what makes truncated
// minimizer prefixes well-formed).
func (h *harness) drain() {
	h.logf("drain: healing all outstanding faults")
	for _, host := range sortedKeys(h.crashedHosts) {
		h.c.RestoreHost(host)
	}
	h.crashedHosts = make(map[string]bool)
	for _, d := range sortedKeys(h.failedDisks) {
		if err := h.c.ReplaceDisk(d); err != nil {
			h.logf("drain error: %v", err)
		}
		h.markWiped(d)
		h.scheduleRebuild(d)
	}
	h.failedDisks = make(map[string]bool)
	for _, hub := range sortedKeys(h.failedHubs) {
		if err := h.c.ReplaceHub(hub); err != nil {
			h.logf("drain error: %v", err)
		}
	}
	h.failedHubs = make(map[string]bool)
	for _, k := range sortedPairs(h.openCuts) {
		h.c.Net.HealMachines(k.a, k.b)
	}
	h.openCuts = make(map[pairKey]bool)
	for _, k := range sortedPairs(h.openLoss) {
		h.c.Net.SetMachineLossRate(k.a, k.b, 0)
	}
	h.openLoss = make(map[pairKey]bool)
	for _, k := range sortedPairs(h.openDup) {
		h.c.Net.SetMachineDupRate(k.a, k.b, 0)
	}
	h.openDup = make(map[pairKey]bool)
	for _, m := range sortedKeys(h.isolated) {
		h.c.Net.RejoinMachine(m)
	}
	h.isolated = make(map[string]bool)
	for _, d := range sortedKeys(h.degradedDisks) {
		if err := h.c.RecoverDisk(d); err != nil {
			h.logf("drain error: %v", err)
		}
	}
	h.degradedDisks = make(map[string]bool)
	for _, d := range sortedKeys(h.downgradedLinks) {
		if err := h.c.RestoreLink(d); err != nil {
			h.logf("drain error: %v", err)
		}
	}
	h.downgradedLinks = make(map[string]bool)
	for _, host := range sortedKeys(h.brownedHosts) {
		h.c.EndBrownout(host)
	}
	h.brownedHosts = make(map[string]bool)
	h.netEvent()
}

// finalAudit is the strict end-of-run sweep: every acknowledged block must
// read back correct. Checksum detections get one repair + recheck; anything
// still failing is a violation.
func (h *harness) finalAudit() {
	h.logf("final: strict audit")
	type recheck struct {
		r   *replica
		blk int
	}
	var rechecks []recheck
	pending := 0
	for _, r := range h.replicas {
		r := r
		for blk := range r.blocks {
			blk := blk
			b := &r.blocks[blk]
			if b.data == nil || b.uncertain || b.inflight > 0 {
				continue
			}
			pending++
			h.stats.AuditReads++
			r.cl.Read(r.space, int64(blk)*BlockSize, BlockSize, func(data []byte, err error) {
				pending--
				if err != nil {
					if errors.Is(err, block.ErrChecksum) {
						h.stats.CorruptionsDetected++
						h.logf("final audit: checksum error on %s block %d — repairing", r.name, blk)
						h.repairBlock(r, blk)
					}
					rechecks = append(rechecks, recheck{r, blk})
					return
				}
				if !bytes.Equal(data, r.blocks[blk].data) {
					h.violatef("final audit: silent corruption on %s block %d", r.name, blk)
				}
			})
		}
	}
	h.settleUntil(func() bool { return pending == 0 }, 2*time.Hour)
	if len(rechecks) == 0 {
		return
	}
	h.c.Settle(30 * time.Minute) // let repair writes land
	for _, rc := range rechecks {
		rc := rc
		b := &rc.r.blocks[rc.blk]
		if b.data == nil || b.uncertain {
			continue
		}
		pending++
		r := rc.r
		r.cl.Read(r.space, int64(rc.blk)*BlockSize, BlockSize, func(data []byte, err error) {
			pending--
			if err != nil {
				h.violatef("final audit: %s block %d unreadable after repair: %v", r.name, rc.blk, err)
				return
			}
			if !bytes.Equal(data, b.data) {
				h.violatef("final audit: %s block %d wrong after repair", r.name, rc.blk)
			}
		})
	}
	h.settleUntil(func() bool { return pending == 0 }, 2*time.Hour)
}

// finalWritePass proves the write path converged: every block of every
// replica accepts a fresh acknowledged write on the healed cluster.
func (h *harness) finalWritePass() {
	h.logf("final: convergence write pass")
	for pair := 0; pair < h.opts.Pairs; pair++ {
		for blk := 0; blk < h.opts.BlocksPerSpace; blk++ {
			h.writePair(pair, blk)
		}
	}
	h.settleUntil(func() bool { return h.inflightWrites() == 0 }, 2*time.Hour)
	// One retry round for stragglers that raced a rebuild.
	for _, r := range h.replicas {
		for blk := range r.blocks {
			b := &r.blocks[blk]
			if b.uncertain && b.inflight == 0 {
				h.writeSeq++
				h.writeReplicaData(r, blk, h.pattern(0, blk, h.writeSeq))
			}
		}
	}
	h.settleUntil(func() bool { return h.inflightWrites() == 0 }, 2*time.Hour)
	for _, r := range h.replicas {
		for blk := range r.blocks {
			if r.blocks[blk].uncertain {
				h.violatef("write path not converged: %s block %d rejects writes on healed cluster", r.name, blk)
			}
		}
	}
}

// settleUntil advances the simulation until cond holds or budget elapses.
func (h *harness) settleUntil(cond func() bool, budget time.Duration) bool {
	deadline := h.c.Sched.Now() + budget
	for h.c.Sched.Now() < deadline {
		if cond() {
			return true
		}
		h.c.Settle(15 * time.Second)
	}
	return cond()
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedPairs(m map[pairKey]bool) []pairKey {
	out := make([]pairKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].a != out[j].a {
			return out[i].a < out[j].a
		}
		return out[i].b < out[j].b
	})
	return out
}
