package chaos

import (
	"testing"
	"time"

	"ustore/internal/faults"
)

func empiricalOpts(seed int64) Options {
	o := DefaultOptions(seed, 24*time.Hour)
	o.Pairs = 2
	o.BlocksPerSpace = 4
	o.Empirical = faults.DefaultEmpirical()
	o.AgeYears = 5
	return o
}

// TestEmpiricalScheduleOnlyChangesDiskEvents: switching the failure model
// must swap the disk fail/replace events and leave every other family's
// schedule untouched — that is what makes a constant-vs-empirical pair of
// runs a controlled comparison.
func TestEmpiricalScheduleOnlyChangesDiskEvents(t *testing.T) {
	names := clusterNames(t)
	base := DefaultOptions(11, 24*time.Hour)
	emp := base
	emp.Empirical = faults.DefaultEmpirical()
	emp.AgeYears = 5

	strip := func(fs []Fault) []Fault {
		var out []Fault
		for _, f := range fs {
			if f.Kind == FaultDiskFail || f.Kind == FaultDiskReplace {
				continue
			}
			out = append(out, f)
		}
		return out
	}
	a := strip(genSchedule(base, names.hosts, names.disks, names.hubs, names.machines))
	b := strip(genSchedule(emp, names.hosts, names.disks, names.hubs, names.machines))
	if len(a) != len(b) {
		t.Fatalf("non-disk schedules diverge: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-disk event %d diverges: %v vs %v", i, a[i], b[i])
		}
	}
	// And the disk events themselves must differ (the empirical model is
	// actually in effect), pair up, and stay inside the run window.
	empDisk := 0
	for _, f := range genSchedule(emp, names.hosts, names.disks, names.hubs, names.machines) {
		if f.Kind == FaultDiskFail {
			empDisk++
		}
		if f.At < 0 || f.At > emp.Duration {
			t.Fatalf("event %v outside the run window", f)
		}
	}
	if empDisk == 0 {
		t.Fatal("empirical schedule has no disk failures (5 accelerated years over the fleet should produce some)")
	}
}

// TestEmpiricalScheduleDeterministic: same options, same schedule, and
// the age horizon scales event density (a 10-year window over the same
// duration compresses more failures in).
func TestEmpiricalScheduleDeterministic(t *testing.T) {
	names := clusterNames(t)
	o := empiricalOpts(3)
	a := genSchedule(o, names.hosts, names.disks, names.hubs, names.machines)
	b := genSchedule(o, names.hosts, names.disks, names.hubs, names.machines)
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestEmpiricalRunReplays: a full empirical-model chaos run is replayable
// byte for byte, the URE model is armed on every disk at the
// age-accelerated rate, and the usual invariants hold.
func TestEmpiricalRunReplays(t *testing.T) {
	o := empiricalOpts(5)
	a, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if a.LogText() != b.LogText() {
		t.Fatal("empirical run is not replayable")
	}
	if len(a.Violations) != 0 {
		t.Fatalf("violations: %v", a.Violations)
	}

	h, err := newHarness(o)
	if err != nil {
		t.Fatal(err)
	}
	want := o.Empirical.URESectorRate() * float64(empiricalAge(o)) / float64(o.Duration)
	for id, d := range h.c.Disks {
		if got := d.URERate(); got != want {
			t.Fatalf("disk %s URE rate %.3g, want %.3g", id, got, want)
		}
	}
}

// clusterNames boots a default cluster once to learn the topology names
// genSchedule targets.
func clusterNames(t *testing.T) (names struct{ hosts, disks, hubs, machines []string }) {
	t.Helper()
	h, err := newHarness(DefaultOptions(1, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	names.hosts = h.hostNames()
	names.disks = h.diskNames()
	names.hubs = h.leafHubNames()
	names.machines = h.machineNames()
	return names
}
