package fleet

import (
	"fmt"
	"hash/fnv"
)

// NumSlots is the fixed number of volume hash slots the shard map divides
// the keyspace into. Slots — not volumes — are the unit of metadata
// migration, so the map stays tiny and a router cache is a single epoch
// compare away from validity.
const NumSlots = 64

// SlotOf hashes a volume ID onto its slot. The modulo runs in uint32 so
// hashes above MaxInt32 stay non-negative on 32-bit-int platforms.
func SlotOf(volumeID string) int {
	h := fnv.New32a()
	h.Write([]byte(volumeID))
	return int(h.Sum32() % NumSlots)
}

// ShardMap is the routing table clients cache: which metadata shard owns
// each volume hash slot, and where each shard's replicas run. Epoch bumps
// on every slot move; a shard replying Stale attaches its newer map.
type ShardMap struct {
	// Epoch is the map version; higher wins.
	Epoch int64
	// Slots maps slot index -> owning shard.
	Slots [NumSlots]int
	// Replicas[k] lists shard k's replica node names (leader is discovered
	// by probing).
	Replicas [][]string
}

// initialMap assigns slots round-robin over shards.
func initialMap(shards int, replicas [][]string) *ShardMap {
	m := &ShardMap{Epoch: 1, Replicas: replicas}
	for s := 0; s < NumSlots; s++ {
		m.Slots[s] = s % shards
	}
	return m
}

// Clone deep-copies the map.
func (m *ShardMap) Clone() *ShardMap {
	if m == nil {
		return nil
	}
	c := &ShardMap{Epoch: m.Epoch, Slots: m.Slots}
	for _, r := range m.Replicas {
		c.Replicas = append(c.Replicas, append([]string(nil), r...))
	}
	return c
}

// ShardOf returns the shard owning a volume under this map.
func (m *ShardMap) ShardOf(volumeID string) int {
	return m.Slots[SlotOf(volumeID)]
}

// SlotsOwnedBy returns the slots shard k owns, ascending.
func (m *ShardMap) SlotsOwnedBy(k int) []int {
	var out []int
	for s, owner := range m.Slots {
		if owner == k {
			out = append(out, s)
		}
	}
	return out
}

// String renders a short diagnostic form.
func (m *ShardMap) String() string {
	return fmt.Sprintf("shardmap{epoch=%d shards=%d}", m.Epoch, len(m.Replicas))
}
