// Package fleet scales the UStore control plane from one deploy unit to a
// datacenter: metadata is partitioned into N shards, each a replicated
// state machine behind its own Paxos group; clients route volume operations
// through a cached shard map (slot-hashed, epoch-versioned, repaired by
// stale-reply retry); placement spreads each volume's fragments across
// failure domains (host < hub < unit < rack) under per-unit power budgets;
// and a per-shard background scheduler turns heartbeat-reported state into
// rate-limited repair, drain, rebalance, migration and inspection tasks —
// so losing a whole unit drains its volumes onto survivors with no
// foreground involvement.
//
// Layering: fleet reuses coord (ZooKeeper-like store per shard group, one
// replica per shard master, colocated on the master's machine), paxos
// (consensus under coord), simnet/simtime (deterministic transport and
// clock) and placement (the Spread policy extracted from core.Master).
//
// Two execution modes share one code path. The default
// (Config.EngineWorkers == 0) is the classic single scheduler: every
// component on one event heap, a run with the same seed byte-identical at
// any -test.cpu / worker count. Setting EngineWorkers >= 1 runs the fleet
// on the conservative parallel engine (simtime.Engine + simnet.Fabric,
// DESIGN.md §14): one partition per deploy unit plus a control partition,
// synchronized in lookahead-bounded windows. The engine keeps the same
// determinism contract — worker count only sizes the pool that executes a
// window, so engine runs are byte-identical at any EngineWorkers >= 1 —
// but engine and classic runs legitimately differ from each other, because
// the fabric charges every cross-unit hop the conservative lookahead.
package fleet

import (
	"fmt"
	"sort"
	"time"

	"ustore/internal/coord"
	"ustore/internal/obs"
	"ustore/internal/paxos"
	"ustore/internal/placement"
	"ustore/internal/simnet"
	"ustore/internal/simtime"
)

// Config shapes a simulated fleet. Zero values pick defaults sized for a
// small test fleet; production-scale runs set Units/Shards explicitly.
type Config struct {
	// Units is the number of deploy units (default 8).
	Units int
	// Racks is the number of racks units are striped over (default
	// max(2, Units/8)).
	Racks int
	// HostsPerUnit is servers per unit (default 4).
	HostsPerUnit int
	// DisksPerHost is disks per server (default 16).
	DisksPerHost int
	// HubFanIn is disks per hub (§III: disks attach to hosts through
	// hub groups; default 4).
	HubFanIn int

	// Shards is the number of metadata shards (default 1).
	Shards int
	// ShardReplicas is the Paxos group size per shard (default 3).
	ShardReplicas int

	// Replicas is fragments placed per volume (default 3).
	Replicas int
	// SpreadLevel is the failure domain no two fragments may share
	// (default placement.LevelUnit).
	SpreadLevel placement.Level
	// DiskCapacity is bytes per disk (default 3e12, a 3TB archival SMR).
	DiskCapacity int64
	// MaxSpinningPerUnit is the unit power budget in spinning disks
	// (default half the unit's disks).
	MaxSpinningPerUnit int

	// HeartbeatInterval is the unit agent report period (default 5s).
	HeartbeatInterval time.Duration
	// UnitDeadAfter is how many missed heartbeat intervals declare a unit
	// dead (default 3).
	UnitDeadAfter int
	// OpServiceTime is the serial CPU cost of one metadata operation on a
	// shard leader — the bottleneck shard scaling divides (default 1ms).
	OpServiceTime time.Duration
	// RPCTimeout bounds client and control RPCs (default 3s).
	RPCTimeout time.Duration

	// ElectionTTL is the shard-leader session TTL (default 10s).
	ElectionTTL time.Duration
	// CoordSweepInterval is the coord session-expiry scan period (default
	// 2s — stretched with the TTL so 48 groups stay inside the event
	// budget).
	CoordSweepInterval time.Duration
	// Paxos tunes each shard group's consensus timing. Zero fields get
	// stretched fleet defaults (1s heartbeats).
	Paxos paxos.Config

	// Scheduler tunes the per-shard background task scheduler.
	Scheduler SchedulerConfig

	// RetryJitter enables full-jitter exponential backoff on router retries
	// (default off keeps the legacy fixed delays, which the checked-in
	// byte-stability goldens were recorded under). Chaos runs turn it on:
	// under partitions, synchronized fixed-delay retries from many clients
	// arrive as lockstep waves at a recovering leader.
	RetryJitter bool
	// InjectSkipRedrive plants a recovery bug for the chaos minimizer to
	// catch: RedriveMoves bumps the map epoch for interrupted migrations
	// without re-driving the freeze→handoff→install→drop chain, stranding
	// handed-off records on the source shard. Never set outside tests.
	InjectSkipRedrive bool

	// Seed seeds the simulation (default 1).
	Seed int64
	// Recorder receives fleet metrics and traces (nil = no recording).
	Recorder *obs.Recorder

	// EngineWorkers > 0 runs the fleet on the conservative parallel engine:
	// the event space is partitioned per deploy unit (plus one control
	// partition for the admin plane and client routers) and windows execute
	// on up to EngineWorkers goroutines. 0 (the default) keeps the classic
	// single-scheduler simulation. A partitioned run is byte-identical at
	// any worker count >= 1, but its event interleaving legitimately
	// differs from the single-scheduler one.
	EngineWorkers int
}

func (c Config) withDefaults() Config {
	if c.Units <= 0 {
		c.Units = 8
	}
	if c.Racks <= 0 {
		c.Racks = c.Units / 8
		if c.Racks < 2 {
			c.Racks = 2
		}
	}
	if c.HostsPerUnit <= 0 {
		c.HostsPerUnit = 4
	}
	if c.DisksPerHost <= 0 {
		c.DisksPerHost = 16
	}
	if c.HubFanIn <= 0 {
		c.HubFanIn = 4
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.ShardReplicas <= 0 {
		c.ShardReplicas = 3
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.SpreadLevel == 0 {
		c.SpreadLevel = placement.LevelUnit
	}
	if c.DiskCapacity <= 0 {
		c.DiskCapacity = 3e12
	}
	if c.MaxSpinningPerUnit <= 0 {
		c.MaxSpinningPerUnit = c.HostsPerUnit * c.DisksPerHost / 2
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 5 * time.Second
	}
	if c.UnitDeadAfter <= 0 {
		c.UnitDeadAfter = 3
	}
	if c.OpServiceTime <= 0 {
		c.OpServiceTime = time.Millisecond
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 3 * time.Second
	}
	if c.ElectionTTL <= 0 {
		c.ElectionTTL = 10 * time.Second
	}
	if c.CoordSweepInterval <= 0 {
		c.CoordSweepInterval = 2 * time.Second
	}
	if c.Paxos.HeartbeatInterval <= 0 {
		c.Paxos.HeartbeatInterval = time.Second
	}
	if c.Paxos.ElectionTimeoutBase <= 0 {
		c.Paxos.ElectionTimeoutBase = 4 * time.Second
	}
	if c.Paxos.PhaseTimeout <= 0 {
		c.Paxos.PhaseTimeout = 2 * time.Second
	}
	c.Scheduler = c.Scheduler.withDefaults()
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Fleet is an assembled simulated fleet: topology, shard groups, unit
// agents, and the admin plane driving slot migrations.
type Fleet struct {
	Cfg   Config
	Sched *simtime.Scheduler
	Net   *simnet.Network
	Topo  *Topology

	// Engine/Fabric are set when Cfg.EngineWorkers > 0: partition 0 is the
	// control plane (admin node, routers, the Settle driver) and partition
	// 1+u is deploy unit u. Sched/Net then alias the control partition.
	Engine *simtime.Engine
	Fabric *simnet.Fabric

	// Shards[k][i] is replica i of shard k.
	Shards [][]*ShardMaster
	// Stores[k][i] is the coord replica backing Shards[k][i].
	Stores [][]*coord.Store
	// Agents[u] is unit u's heartbeat agent.
	Agents []*Agent

	rec   *obs.Recorder
	admin *simnet.RPCNode
	// nets/recs are the per-partition network and recorder handles in
	// engine mode (index = partition).
	nets []*simnet.Network
	recs []*obs.Recorder
	// userRec is Cfg.Recorder; FinishObs folds the partition recorders
	// into it once an engine-mode run completes.
	userRec     *obs.Recorder
	obsFinished bool
	// replicaNames[k] lists shard k's master RPC names — static topology,
	// safe to read from any partition.
	replicaNames [][]string
	// adminBelieved[k] is the control plane's believed-leader replica index
	// for shard k. Engine mode cannot peek other partitions' leader flags
	// mid-run, so the admin discovers leaders like clients do: call the
	// believed replica, rotate on failure.
	adminBelieved []int
	// authMap is the admin plane's authoritative shard map (advanced by
	// MoveSlot; routers bootstrap from a clone).
	authMap *ShardMap
	// deadUnits records KillUnit victims (validators skip their replicas).
	deadUnits map[string]bool
	// pendingMoves records slot migrations started but not yet completed
	// (slot -> destination shard): the admin-side intent ledger RedriveMoves
	// re-drives after faults interrupt a MoveSlot chain.
	pendingMoves map[int]int
	nRouters     int
}

// crossUnitLatency is the minimum latency of any cross-unit network link —
// the lookahead the conservative engine synchronizes on. Every message that
// crosses a deploy-unit boundary takes at least this long.
const crossUnitLatency = time.Millisecond

// part bundles the simulation handles a component is built on: in engine
// mode each deploy unit gets its own scheduler/network/recorder triple, in
// classic mode every part aliases the shared one.
type part struct {
	sched *simtime.Scheduler
	net   *simnet.Network
	rec   *obs.Recorder
}

// ctrlPart is the control plane's partition (the shared triple in classic
// mode).
func (f *Fleet) ctrlPart() part { return part{f.Sched, f.Net, f.rec} }

// unitPart is the partition deploy unit u's processes run on.
func (f *Fleet) unitPart(u int) part {
	if f.Engine == nil {
		return part{f.Sched, f.Net, f.rec}
	}
	return part{f.Engine.Part(1 + u), f.nets[1+u], f.recs[1+u]}
}

// unitMachine is the simnet machine name every process of a unit shares.
func unitMachine(unitID string) string { return "mach-" + unitID }

// replicaUnit places replica i of shard k on unit (k*R+i) mod Units: each
// shard's replicas land on R distinct units (Units >= Shards*Replicas in
// any sane fleet keeps distinct units per group even when shards share
// units), so losing one unit kills at most one replica of any group.
func (c Config) replicaUnit(shard, replica int) int {
	return (shard*c.ShardReplicas + replica) % c.Units
}

// New assembles a fleet from cfg and starts its shard elections and unit
// agents. Call Settle to let the first leaders emerge before driving load.
func New(cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	f := &Fleet{
		Cfg:          cfg,
		Topo:         buildTopology(cfg),
		userRec:      cfg.Recorder,
		deadUnits:    make(map[string]bool),
		pendingMoves: make(map[int]int),
	}
	if cfg.EngineWorkers > 0 {
		parts := cfg.Units + 1
		f.Engine = simtime.NewEngine(cfg.Seed, parts, cfg.EngineWorkers, crossUnitLatency)
		f.Fabric = simnet.NewFabric(f.Engine)
		f.nets = make([]*simnet.Network, parts)
		f.recs = make([]*obs.Recorder, parts)
		for p := 0; p < parts; p++ {
			f.nets[p] = f.Fabric.Network(p)
			if cfg.Recorder != nil {
				r := obs.NewRecorder()
				psched := f.Engine.Part(p)
				r.BindClock(func() time.Duration { return psched.Now() })
				f.nets[p].SetRecorder(r)
				f.recs[p] = r
			}
		}
		f.Sched, f.Net, f.rec = f.Engine.Part(0), f.nets[0], f.recs[0]
		f.adminBelieved = make([]int, cfg.Shards)
	} else {
		sched := simtime.NewScheduler(cfg.Seed)
		net := simnet.New(sched)
		if cfg.Recorder != nil {
			cfg.Recorder.BindClock(func() time.Duration { return sched.Now() })
			net.SetRecorder(cfg.Recorder)
		}
		f.Sched, f.Net, f.rec = sched, net, cfg.Recorder
	}

	// Shard groups: R coord replicas + R shard masters per shard, each
	// replica pair colocated on a distinct unit's machine — and, in engine
	// mode, built on that unit's partition so the group's paxos traffic is
	// partition-local except for cross-unit hops through the fabric.
	replicas := make([][]string, cfg.Shards)
	for k := 0; k < cfg.Shards; k++ {
		peers := make([]string, cfg.ShardReplicas)
		for i := range peers {
			peers[i] = fmt.Sprintf("s%dm%d", k, i)
		}
		var stores []*coord.Store
		var masters []*ShardMaster
		for i := 0; i < cfg.ShardReplicas; i++ {
			up := f.unitPart(cfg.replicaUnit(k, i))
			st := coord.NewStore(up.net, peers[i], peers, cfg.Paxos)
			st.SetSweepInterval(cfg.CoordSweepInterval)
			m := newShardMaster(f, k, i, st, up)
			mach := unitMachine(unitName(cfg.replicaUnit(k, i)))
			up.net.Colocate(peers[i], mach)          // paxos node
			up.net.Colocate("coord:"+peers[i], mach) // coord session endpoint
			up.net.Colocate(m.rpcName, mach)         // shard master process
			stores = append(stores, st)
			masters = append(masters, m)
			replicas[k] = append(replicas[k], m.rpcName)
		}
		f.Stores = append(f.Stores, stores)
		f.Shards = append(f.Shards, masters)
	}
	f.replicaNames = replicas
	f.authMap = initialMap(cfg.Shards, replicas)
	for _, group := range f.Shards {
		for _, m := range group {
			m.installInitialMap(f.authMap)
			m.start()
		}
	}

	// Unit agents.
	for _, u := range f.Topo.Units {
		up := f.unitPart(u.Index)
		a := newAgent(f, u, replicas[u.Shard], up)
		up.net.Colocate(a.rpc.Name(), unitMachine(u.ID))
		f.Agents = append(f.Agents, a)
		a.start()
	}

	f.admin = simnet.NewRPCNode(f.Net, "fleet-admin")
	return f
}

// Settle runs the simulation for d of virtual time.
func (f *Fleet) Settle(d time.Duration) {
	if f.Engine != nil {
		f.Engine.RunFor(d)
		return
	}
	f.Sched.RunFor(d)
}

// EventsFired is the total number of simulation events executed so far,
// summed over partitions in engine mode.
func (f *Fleet) EventsFired() uint64 {
	if f.Engine != nil {
		return f.Engine.Fired()
	}
	return f.Sched.Fired()
}

// FinishObs folds the per-partition recorders into Cfg.Recorder after an
// engine-mode run: series sum, trace events interleave in timestamp order.
// Idempotent; a no-op in classic mode (where Cfg.Recorder records directly).
func (f *Fleet) FinishObs() {
	if f.Engine == nil || f.userRec == nil || f.obsFinished {
		return
	}
	f.obsFinished = true
	f.userRec.BindClock(func() time.Duration { return f.Engine.Now() })
	obs.MergeRecorders(f.userRec, f.recs...)
}

// Leader returns shard k's current leader master, or nil if the group is
// between leaders.
func (f *Fleet) Leader(k int) *ShardMaster {
	for _, m := range f.Shards[k] {
		if m.leading && !m.down {
			return m
		}
	}
	return nil
}

// leaderNode returns shard k's leader RPC node name ("" if none).
func (f *Fleet) leaderNode(k int) string {
	if m := f.Leader(k); m != nil {
		return m.rpcName
	}
	return ""
}

// AuthMap returns a clone of the admin plane's authoritative shard map.
func (f *Fleet) AuthMap() *ShardMap { return f.authMap.Clone() }

// NewRouter builds a client router bootstrapped with the current map.
func (f *Fleet) NewRouter(name string) *Router {
	f.nRouters++
	return newRouter(f, name)
}

// KillUnit permanently fails a deploy unit: its agent stops, its machine's
// uplink is unplugged, and every shard replica or coord store colocated on
// it crashes. The owning shard's scheduler must notice the silence and
// drain the unit's volumes onto survivors.
func (f *Fleet) KillUnit(unitID string) {
	u := f.Topo.UnitByID[unitID]
	if u == nil || f.deadUnits[unitID] {
		return
	}
	f.deadUnits[unitID] = true
	f.Agents[u.Index].stop()
	for k := range f.Shards {
		for i, m := range f.Shards[k] {
			if f.Cfg.replicaUnit(k, i) == u.Index {
				f.Stores[k][i].Stop()
				m.crash()
			}
		}
	}
	// Unplug on the partition that owns the machine: local sends drop at
	// the source, fabric traffic drops against this state on either side.
	f.unitPart(u.Index).net.IsolateMachine(unitMachine(unitID))
	if f.rec != nil {
		f.rec.Instant("fleet", "unit-killed", "fleet", obs.L("unit", unitID))
	}
}

// DeadUnits returns the killed units, sorted.
func (f *Fleet) DeadUnits() []string {
	out := make([]string, 0, len(f.deadUnits))
	for u := range f.deadUnits {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// FailDisk injects a single-disk failure: the unit's agent reports it dead
// on its next heartbeat and the owning shard's scheduler repairs around it.
func (f *Fleet) FailDisk(diskID string) {
	if u := f.Topo.UnitOfDisk(diskID); u != nil {
		f.Agents[u.Index].failDisk(diskID)
	}
}

// DrainDisk marks a disk for graceful drain: the scheduler moves fragments
// off it with drop tasks, after which it can be pulled.
func (f *Fleet) DrainDisk(diskID string) {
	if u := f.Topo.UnitOfDisk(diskID); u != nil {
		f.Agents[u.Index].drainDisk(diskID)
	}
}

// adminCall finds shard's leader and calls method from the admin node,
// retrying (with leader re-resolution) on timeouts, lost leadership, and
// leaderless windows.
func (f *Fleet) adminCall(shard int, method string, args any, attempts int, done func(res any, err error)) {
	f.adminCallFrom(f.admin, shard, method, args, attempts, done)
}

// adminCallFrom is adminCall sending from an arbitrary RPC node (shard
// masters use it for cross-shard FreeForeign notifications in classic
// mode). In engine mode the leader peek below would read another
// partition's state mid-window, so the call rotates through believed
// leaders instead.
func (f *Fleet) adminCallFrom(from *simnet.RPCNode, shard int, method string, args any, attempts int, done func(res any, err error)) {
	if f.Engine != nil {
		f.adminRotate(shard, method, args, attempts, done)
		return
	}
	retry := func(err error) {
		if attempts <= 0 {
			done(nil, err)
			return
		}
		f.Sched.After(500*time.Millisecond, func() {
			f.adminCallFrom(from, shard, method, args, attempts-1, done)
		})
	}
	target := f.leaderNode(shard)
	if target == "" {
		retry(fmt.Errorf("fleet: no leader for shard %d", shard))
		return
	}
	from.Call(target, method, args, 256, f.Cfg.RPCTimeout, func(res any, err error) {
		if err != nil {
			retry(err)
			return
		}
		sr := res.(shardReplier).common()
		switch {
		case sr.OK:
			done(res, nil)
		case sr.NotLeader || sr.Busy:
			retry(fmt.Errorf("fleet: %s on shard %d: not leader/busy", method, shard))
		default:
			done(nil, fmt.Errorf("fleet: %s on shard %d: %s", method, shard, sr.Err))
		}
	})
}

// adminRotate is the engine-mode adminCall: call the believed-leader
// replica of the shard, rotate the belief and retry on timeout or
// NotLeader. All state it touches (adminBelieved, the retry timer) lives on
// the control partition; replica names are static topology.
func (f *Fleet) adminRotate(shard int, method string, args any, attempts int, done func(res any, err error)) {
	retry := func(err error) {
		if attempts <= 0 {
			done(nil, err)
			return
		}
		f.Sched.After(500*time.Millisecond, func() {
			f.adminRotate(shard, method, args, attempts-1, done)
		})
	}
	names := f.replicaNames[shard]
	idx := f.adminBelieved[shard] % len(names)
	rotate := func() {
		if f.adminBelieved[shard] == idx {
			f.adminBelieved[shard] = (idx + 1) % len(names)
		}
	}
	f.admin.Call(names[idx], method, args, 256, f.Cfg.RPCTimeout, func(res any, err error) {
		if err != nil {
			rotate()
			retry(err)
			return
		}
		sr := res.(shardReplier).common()
		switch {
		case sr.OK:
			done(res, nil)
		case sr.NotLeader:
			rotate()
			retry(fmt.Errorf("fleet: %s on shard %d: not leader", method, shard))
		case sr.Busy:
			retry(fmt.Errorf("fleet: %s on shard %d: busy", method, shard))
		default:
			done(nil, fmt.Errorf("fleet: %s on shard %d: %s", method, shard, sr.Err))
		}
	})
}

// MoveSlot migrates a volume hash slot to shard dst through the full
// freeze -> handoff -> install -> drop -> epoch-bump chain, then
// broadcasts the new map to every shard leader. done (optional) fires when
// the new epoch is installed everywhere reachable.
func (f *Fleet) MoveSlot(slot, dst int, done func(error)) {
	if done == nil {
		done = func(error) {}
	}
	if slot < 0 || slot >= NumSlots || dst < 0 || dst >= f.Cfg.Shards {
		done(fmt.Errorf("fleet: bad slot move %d -> shard %d", slot, dst))
		return
	}
	src := f.authMap.Slots[slot]
	if src == dst {
		if _, pending := f.pendingMoves[slot]; pending {
			// A previous attempt got as far as the epoch bump but its
			// broadcast was interrupted: re-broadcast before declaring done.
			f.broadcastMap(f.authMap, func(err error) {
				if err == nil {
					delete(f.pendingMoves, slot)
				}
				done(err)
			})
			return
		}
		done(nil)
		return
	}
	f.pendingMoves[slot] = dst
	const tries = 8
	f.adminCall(src, "FreezeSlot", FreezeSlotArgs{Slot: slot}, tries, func(_ any, err error) {
		if err != nil {
			done(err)
			return
		}
		f.adminCall(src, "Handoff", HandoffArgs{Slot: slot}, tries, func(res any, err error) {
			if err != nil {
				done(err)
				return
			}
			vols := res.(HandoffReply).Vols
			f.adminCall(dst, "InstallSlot", InstallSlotArgs{Slot: slot, Vols: vols}, tries, func(_ any, err error) {
				if err != nil {
					done(err)
					return
				}
				f.adminCall(src, "DropSlot", DropSlotArgs{Slot: slot}, tries, func(_ any, err error) {
					if err != nil {
						done(err)
						return
					}
					next := f.authMap.Clone()
					next.Epoch++
					next.Slots[slot] = dst
					f.authMap = next
					f.broadcastMap(next, func(err error) {
						if err == nil {
							delete(f.pendingMoves, slot)
						}
						done(err)
					})
				})
			})
		})
	})
}

// RedriveMoves re-drives every interrupted slot migration to completion,
// sequentially in slot order, then calls done. The whole chain is
// idempotent against partial progress — FreezeSlot re-freezes (durably),
// Handoff re-reads survivors, InstallSlot dedups already-committed records,
// DropSlot no-ops on an already-empty slot — so re-running it from the top
// is always safe. done receives the first error (nil when every pending
// move completed).
func (f *Fleet) RedriveMoves(done func(error)) {
	if done == nil {
		done = func(error) {}
	}
	slots := make([]int, 0, len(f.pendingMoves))
	for s := range f.pendingMoves {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	if len(slots) == 0 {
		done(nil)
		return
	}
	if f.Cfg.InjectSkipRedrive {
		// The planted bug: declare the moves complete by bumping the epoch
		// and broadcasting, without re-driving the chain. Records still on
		// the source shard become unreachable (the map routes their slot to
		// a shard that never installed them) — the no-lost-volume model
		// check catches this.
		next := f.authMap.Clone()
		next.Epoch++
		for _, s := range slots {
			next.Slots[s] = f.pendingMoves[s]
			delete(f.pendingMoves, s)
		}
		f.authMap = next
		f.broadcastMap(next, done)
		return
	}
	dsts := make([]int, len(slots))
	for i, s := range slots {
		dsts[i] = f.pendingMoves[s]
	}
	var drive func(i int)
	drive = func(i int) {
		if i == len(slots) {
			done(nil)
			return
		}
		f.MoveSlot(slots[i], dsts[i], func(err error) {
			if err != nil {
				done(err)
				return
			}
			drive(i + 1)
		})
	}
	drive(0)
}

// broadcastMap installs a new map epoch on every shard leader.
func (f *Fleet) broadcastMap(m *ShardMap, done func(error)) {
	remaining := f.Cfg.Shards
	var firstErr error
	for k := 0; k < f.Cfg.Shards; k++ {
		f.adminCall(k, "InstallMap", InstallMapArgs{Map: m.Clone()}, 8, func(_ any, err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			remaining--
			if remaining == 0 {
				done(firstErr)
			}
		})
	}
}
