package fleet

import (
	"fmt"
	"sort"
)

// Invariant validators. These inspect leader state directly (test/chaos
// introspection, not part of the simulated data path), so they see exactly
// what the shard state machines believe.

// leaders returns the current leader of every shard, erroring on a
// leaderless group (callers Settle long enough for elections first).
func (f *Fleet) leaders() ([]*ShardMaster, error) {
	out := make([]*ShardMaster, f.Cfg.Shards)
	for k := 0; k < f.Cfg.Shards; k++ {
		m := f.Leader(k)
		if m == nil {
			return nil, fmt.Errorf("fleet: shard %d has no leader", k)
		}
		out[k] = m
	}
	return out, nil
}

// ValidateSpread checks the placement invariant: no volume has two
// fragments in the same failure domain at the configured spread level, and
// no fragment sits on a disk of a unit the fleet killed (i.e. repair has
// fully drained dead units).
func (f *Fleet) ValidateSpread() error {
	ms, err := f.leaders()
	if err != nil {
		return err
	}
	for _, m := range ms {
		ids := make([]string, 0, len(m.vols))
		for id := range m.vols {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			rec := m.vols[id]
			seen := map[string]string{}
			for _, d := range rec.Disks {
				di := f.Topo.Disks[d]
				if di == nil {
					return fmt.Errorf("fleet: volume %s references unknown disk %s", id, d)
				}
				if f.deadUnits[di.Loc.Unit] {
					return fmt.Errorf("fleet: volume %s fragment still on dead unit %s (disk %s)",
						id, di.Loc.Unit, d)
				}
				dom := di.Loc.Domain(f.Cfg.SpreadLevel)
				if prev, dup := seen[dom]; dup {
					return fmt.Errorf("fleet: volume %s has two fragments in %s %s (%s and %s)",
						id, f.Cfg.SpreadLevel, dom, prev, d)
				}
				seen[dom] = d
			}
		}
	}
	return nil
}

// ValidateShardMap checks map consistency: every live shard leader has
// installed the authoritative epoch with identical slot ownership.
func (f *Fleet) ValidateShardMap() error {
	ms, err := f.leaders()
	if err != nil {
		return err
	}
	for _, m := range ms {
		if m.map_.Epoch != f.authMap.Epoch {
			return fmt.Errorf("fleet: shard %d leader %s at map epoch %d, want %d",
				m.shard, m.name, m.map_.Epoch, f.authMap.Epoch)
		}
		if m.map_.Slots != f.authMap.Slots {
			return fmt.Errorf("fleet: shard %d leader %s slot table diverges from authoritative map",
				m.shard, m.name)
		}
	}
	return nil
}

// ValidateCapacity checks the capacity ledger: each leader's per-disk
// usage equals the sum of its volume records plus export-ledger entries on
// that disk, nothing exceeds disk capacity, and every fragment a shard
// holds on a foreign disk is backed by an export entry at the disk's
// owning shard (no cross-shard leak or double-free).
func (f *Fleet) ValidateCapacity() error {
	ms, err := f.leaders()
	if err != nil {
		return err
	}
	for _, m := range ms {
		want := map[string]int64{}
		charge := func(recs map[string]VolRecord) {
			for _, rec := range recs {
				for _, d := range rec.Disks {
					if m.ownsDisk(d) {
						want[d] += rec.Size
					}
				}
			}
		}
		charge(m.vols)
		charge(m.exports)
		disks := make([]string, 0, len(m.used))
		for d := range m.used {
			disks = append(disks, d)
		}
		sort.Strings(disks)
		for _, d := range disks {
			if m.used[d] != want[d] {
				return fmt.Errorf("fleet: shard %d disk %s ledger says %d bytes, records say %d",
					m.shard, d, m.used[d], want[d])
			}
			if c := f.Topo.Disks[d].Capacity; m.used[d] > c {
				return fmt.Errorf("fleet: disk %s over capacity: %d > %d", d, m.used[d], c)
			}
		}
		for d, b := range want {
			if b != m.used[d] {
				return fmt.Errorf("fleet: shard %d disk %s records say %d bytes, ledger says %d",
					m.shard, d, b, m.used[d])
			}
		}
		// Cross-shard: foreign fragments must be export-backed.
		for id, rec := range m.vols {
			for _, d := range rec.Disks {
				if m.ownsDisk(d) {
					continue
				}
				u := f.Topo.UnitOfDisk(d)
				if u == nil {
					return fmt.Errorf("fleet: volume %s on unknown disk %s", id, d)
				}
				owner := ms[u.Shard]
				exp, ok := owner.exports[id]
				if !ok {
					return fmt.Errorf("fleet: volume %s fragment on shard %d disk %s has no export entry",
						id, u.Shard, d)
				}
				backed := false
				for _, ed := range exp.Disks {
					if ed == d {
						backed = true
						break
					}
				}
				if !backed {
					return fmt.Errorf("fleet: volume %s export entry at shard %d omits disk %s",
						id, u.Shard, d)
				}
			}
		}
	}
	return nil
}

// LeaderlessShard returns the lowest shard index currently without a
// leader, or -1 when every shard has one. Settle loops use it to name the
// group still electing when they time out.
func (f *Fleet) LeaderlessShard() int {
	for k := 0; k < f.Cfg.Shards; k++ {
		if f.Leader(k) == nil {
			return k
		}
	}
	return -1
}

// VolumeHolders maps every volume ID to the sorted shards whose leaders
// hold a live record for it. The fleet-level reference model checks this
// against the ledger of client-acknowledged allocations: a live volume with
// no holder was lost, one with two holders was duplicated by a botched
// migration. Errors while any shard is leaderless (holders would be
// invisible, not absent).
func (f *Fleet) VolumeHolders() (map[string][]int, error) {
	ms, err := f.leaders()
	if err != nil {
		return nil, err
	}
	holders := make(map[string][]int)
	for _, m := range ms {
		for id := range m.vols {
			holders[id] = append(holders[id], m.shard)
		}
	}
	for _, ks := range holders {
		sort.Ints(ks)
	}
	return holders, nil
}

// Drained reports whether no live metadata references a unit's disks (the
// unit-loss recovery end state).
func (f *Fleet) Drained(unitID string) bool {
	for k := 0; k < f.Cfg.Shards; k++ {
		m := f.Leader(k)
		if m == nil {
			return false
		}
		for _, recs := range []map[string]VolRecord{m.vols, m.exports} {
			for _, rec := range recs {
				for _, d := range rec.Disks {
					if di := f.Topo.Disks[d]; di != nil && di.Loc.Unit == unitID {
						return false
					}
				}
			}
		}
	}
	return true
}

// DrainBlocker names what still blocks a unit's drain: the first live
// record (by shard, then kind, then volume ID) whose fragments reference
// the unit's disks, or a leaderless shard hiding state. Returns "" once the
// unit is drained — the explanatory companion to Drained for settle-timeout
// reporting.
func (f *Fleet) DrainBlocker(unitID string) string {
	for k := 0; k < f.Cfg.Shards; k++ {
		m := f.Leader(k)
		if m == nil {
			return fmt.Sprintf("shard %d leaderless", k)
		}
		for _, recs := range []struct {
			kind string
			m    map[string]VolRecord
		}{{"volume", m.vols}, {"export", m.exports}} {
			ids := make([]string, 0, len(recs.m))
			for id := range recs.m {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, id := range ids {
				for _, d := range recs.m[id].Disks {
					if di := f.Topo.Disks[d]; di != nil && di.Loc.Unit == unitID {
						return fmt.Sprintf("shard %d %s %s still on %s (disk %s)",
							k, recs.kind, id, unitID, d)
					}
				}
			}
		}
	}
	return ""
}

// VolumeCount sums volumes across shard leaders.
func (f *Fleet) VolumeCount() int {
	n := 0
	for k := 0; k < f.Cfg.Shards; k++ {
		if m := f.Leader(k); m != nil {
			n += len(m.vols)
		}
	}
	return n
}
