package fleet

import (
	"fmt"

	"ustore/internal/placement"
)

// DiskInfo is one disk's static wiring in the fleet topology.
type DiskInfo struct {
	ID       string
	Loc      placement.Location
	Capacity int64
}

// UnitTopo is one deploy unit's static shape: its rack, hosts, disks, and
// the metadata shard that owns its state (unit ownership is static; only
// volume slots move between shards).
type UnitTopo struct {
	ID    string
	Rack  string
	Index int
	// Shard is the static owner of this unit's disk state.
	Shard int
	// Hosts are the unit's host names (shard replicas co-locate on them).
	Hosts []string
	// Disks lists the unit's disk IDs, sorted.
	Disks []string
	// MaxSpinning is the unit's power budget in simultaneously spinning
	// disks.
	MaxSpinning int
}

// Topology is the fleet's static hardware inventory: Units*HostsPerUnit
// hosts and Units*HostsPerUnit*DisksPerHost disks spread round-robin over
// Racks racks, with disks grouped HubFanIn to a hub.
type Topology struct {
	Units    []*UnitTopo
	UnitByID map[string]*UnitTopo
	Disks    map[string]*DiskInfo
	// NumDisks is the fleet-wide disk count.
	NumDisks int
}

// unitName formats unit index i.
func unitName(i int) string { return fmt.Sprintf("u%03d", i) }

// buildTopology synthesizes the fleet inventory from cfg (which must have
// defaults applied).
func buildTopology(cfg Config) *Topology {
	t := &Topology{
		UnitByID: make(map[string]*UnitTopo, cfg.Units),
		Disks:    make(map[string]*DiskInfo, cfg.Units*cfg.HostsPerUnit*cfg.DisksPerHost),
	}
	for i := 0; i < cfg.Units; i++ {
		u := &UnitTopo{
			ID:          unitName(i),
			Rack:        fmt.Sprintf("r%02d", i%cfg.Racks),
			Index:       i,
			Shard:       i % cfg.Shards,
			MaxSpinning: cfg.MaxSpinningPerUnit,
		}
		for h := 0; h < cfg.HostsPerUnit; h++ {
			host := fmt.Sprintf("%s/h%d", u.ID, h)
			u.Hosts = append(u.Hosts, host)
			for d := 0; d < cfg.DisksPerHost; d++ {
				id := fmt.Sprintf("%s/h%d/d%02d", u.ID, h, d)
				di := &DiskInfo{
					ID:       id,
					Capacity: cfg.DiskCapacity,
					Loc: placement.Location{
						Rack: u.Rack,
						Unit: u.ID,
						Hub:  fmt.Sprintf("%s/h%d/b%d", u.ID, h, d/cfg.HubFanIn),
						Host: host,
					},
				}
				t.Disks[id] = di
				u.Disks = append(u.Disks, id)
			}
		}
		t.Units = append(t.Units, u)
		t.UnitByID[u.ID] = u
	}
	t.NumDisks = len(t.Disks)
	return t
}

// UnitOfDisk returns the unit topo owning a disk (nil if unknown).
func (t *Topology) UnitOfDisk(diskID string) *UnitTopo {
	d := t.Disks[diskID]
	if d == nil {
		return nil
	}
	return t.UnitByID[d.Loc.Unit]
}

// ShardUnits returns the sorted unit IDs statically owned by shard k.
func (t *Topology) ShardUnits(k int) []string {
	var out []string
	for _, u := range t.Units {
		if u.Shard == k {
			out = append(out, u.ID)
		}
	}
	return out
}
