package fleet

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"ustore/internal/coord"
	"ustore/internal/obs"
	"ustore/internal/placement"
	"ustore/internal/simnet"
	"ustore/internal/simtime"
)

// ShardMaster is one replica of a metadata shard: a Master-like state
// machine for the slice of the fleet its shard owns. Hard state (volume
// records, the export ledger, the shard map) lives in the shard's coord
// group; soft state (disk usage, spin state, unit liveness) is rebuilt
// from coord plus agent heartbeats on every election.
//
// Volume operations serialize through a single queue charged
// cfg.OpServiceTime each — the CPU bottleneck that makes shard count the
// unit of metadata scaling (Paxos itself pipelines, so consensus latency
// alone would not bound throughput).
type ShardMaster struct {
	f       *Fleet
	shard   int
	replica int
	name    string
	rpcName string

	sched    *simtime.Scheduler
	rpc      *simnet.RPCNode
	store    *coord.Store
	election *coord.Election
	// rec is the partition recorder this replica writes to (the shared
	// fleet recorder in classic mode). May be nil.
	rec *obs.Recorder
	// foreignBelieved[k] is this master's believed-leader replica index for
	// foreign shard k (engine mode: cross-shard calls rotate through
	// believed leaders instead of peeking another partition's state).
	foreignBelieved map[int]int

	leading bool
	down    bool
	// incarnation counts crash/restart cycles; each restart campaigns under
	// a fresh incarnation-stamped election session (see restart).
	incarnation int
	// elGen invalidates the election read barrier (see becomeLeader): it
	// bumps on every elected/deposed/crash transition so a barrier that
	// resolves after leadership already changed hands does nothing.
	elGen int

	// map_ is this replica's installed shard map.
	map_ *ShardMap
	// frozen slots answer Busy until an InstallMap flips their ownership.
	frozen map[int]bool

	// Leader soft state (rebuilt on election).
	vols     map[string]VolRecord
	exports  map[string]VolRecord
	used     map[string]int64
	spinning map[string]bool
	unitSeen map[string]simtime.Time
	deadUnit map[string]bool
	badDisk  map[string]bool // agent-reported dead
	draining map[string]bool

	// Serial op queue.
	queue []*shardOp
	busy  bool

	sch *shardScheduler

	// scratch avoids re-allocating the candidate slice per allocation.
	scratch []placement.DiskView

	cOps    *obs.Counter
	cAlloc  *obs.Counter
	cStale  *obs.Counter
	gQueue  *obs.Gauge
	gAlive  *obs.Gauge
	hOpTime *obs.Histogram
}

type shardOp struct {
	method   string
	args     any
	reply    func(result any, err error)
	finished bool
}

func newShardMaster(f *Fleet, shard, replica int, store *coord.Store, p part) *ShardMaster {
	name := fmt.Sprintf("s%dm%d", shard, replica)
	m := &ShardMaster{
		f:        f,
		shard:    shard,
		replica:  replica,
		name:     name,
		rpcName:  "fm:" + name,
		sched:    p.sched,
		rec:      p.rec,
		store:    store,
		frozen:   make(map[int]bool),
		vols:     make(map[string]VolRecord),
		exports:  make(map[string]VolRecord),
		used:     make(map[string]int64),
		spinning: make(map[string]bool),
		unitSeen: make(map[string]simtime.Time),
		deadUnit: make(map[string]bool),
		badDisk:  make(map[string]bool),
		draining: make(map[string]bool),
	}
	if f.Engine != nil {
		m.foreignBelieved = make(map[int]int)
	}
	m.rpc = simnet.NewRPCNode(p.net, m.rpcName)
	m.sch = newShardScheduler(m)
	// Leader soft state must track the replicated tree even for commits this
	// leadership never issued: a previous leader's Allocate or Release can
	// sit out a partition's paxos churn and apply only after the new
	// leader's election barrier and rebuild have already run. Watches fire
	// on local apply, so folding them here keeps m.vols a faithful cache of
	// the tree no matter whose proposal finally landed.
	store.WatchChildren("/vol", m.onVolEvent)
	shardLabel := obs.L("shard", strconv.Itoa(shard))
	rec := m.rec
	m.cOps = rec.Counter("fleet", "ops_total", shardLabel)
	m.cAlloc = rec.Counter("fleet", "alloc_total", shardLabel)
	m.cStale = rec.Counter("fleet", "stale_replies_total", shardLabel)
	m.gQueue = rec.Gauge("fleet", "queue_depth", shardLabel)
	m.gAlive = rec.Gauge("fleet", "units_alive", shardLabel)
	m.hOpTime = rec.Histogram("fleet", "op_seconds", shardLabel)
	m.register()
	return m
}

// Name returns the replica name (s<shard>m<replica>).
func (m *ShardMaster) Name() string { return m.name }

// Shard returns the shard index.
func (m *ShardMaster) Shard() int { return m.shard }

// Leading reports whether this replica currently leads its group.
func (m *ShardMaster) Leading() bool { return m.leading && !m.down }

// Map returns a clone of the replica's installed shard map.
func (m *ShardMaster) Map() *ShardMap { return m.map_.Clone() }

// installInitialMap seeds the replica's map before the fleet starts.
func (m *ShardMaster) installInitialMap(mp *ShardMap) { m.map_ = mp.Clone() }

// start begins campaigning for shard leadership.
func (m *ShardMaster) start() {
	m.election = coord.NewElection(m.store, "/active", m.name, m.f.Cfg.ElectionTTL)
	m.election.OnElected = m.becomeLeader
	m.election.OnDeposed = m.loseLeadership
	m.election.Run()
}

// crash takes the replica down hard (KillUnit, CrashReplica).
func (m *ShardMaster) crash() {
	m.down = true
	m.elGen++
	m.leading = false
	m.rpc.Node().SetDown(true)
	m.sch.stop()
	if m.election != nil {
		m.election.Stop()
	}
	m.flushQueue()
}

// restart brings a crashed replica back (RestartReplica). Leader soft state
// stays empty until a future election's rebuild; durable state returns via
// paxos catchup. The new election campaigns under an incarnation-stamped
// session: the previous life's session may still own the leader znode, and
// re-creating it by ID would refresh it — the restarted process would then
// keep the znode alive with its own pings while never learning it leads,
// wedging the group leaderless forever.
func (m *ShardMaster) restart() {
	m.down = false
	m.leading = false
	m.rpc.Node().SetDown(false)
	m.frozen = make(map[int]bool)
	// A restarted process has no soft state: liveness and disk-health views
	// refill from agent heartbeats (each beat carries the full cumulative
	// dead/draining sets), and rebuild() grace-stamps units on election.
	m.unitSeen = make(map[string]simtime.Time)
	m.deadUnit = make(map[string]bool)
	m.badDisk = make(map[string]bool)
	m.draining = make(map[string]bool)
	m.incarnation++
	m.election = coord.NewElection(m.store, "/active", m.name, m.f.Cfg.ElectionTTL)
	m.election.SetSession(fmt.Sprintf("election:/active:%s#%d", m.name, m.incarnation))
	m.election.OnElected = m.becomeLeader
	m.election.OnDeposed = m.loseLeadership
	m.election.Run()
}

func (m *ShardMaster) becomeLeader() {
	m.elGen++
	gen := m.elGen
	if m.down {
		return
	}
	// Idempotent tree roots for volume records and the export ledger. The
	// second create doubles as a read barrier: this replica may win the
	// election while its local store replica still lags the chosen prefix
	// (it accepted commands during a partition without yet learning they
	// were chosen), and rebuild() from that lagging state would silently
	// drop committed records from leader soft state. Store applies are
	// strictly slot-ordered and the done callback fires on LOCAL apply, so
	// once our own proposal has applied, every command chosen before this
	// election has too. Until then the replica answers NotLeader and
	// routers keep rotating.
	m.store.Create("/vol", nil, "", nil)
	m.store.Create("/exp", nil, "", func(error) {
		if m.down || gen != m.elGen {
			return // deposed or crashed while the barrier was in flight
		}
		m.leading = true
		m.rebuild()
		m.sch.start()
		m.rec.Instant("fleet", "shard-elected", "fleet",
			obs.L("shard", strconv.Itoa(m.shard)), obs.L("leader", m.name))
	})
}

func (m *ShardMaster) loseLeadership() {
	m.elGen++
	m.leading = false
	m.sch.stop()
	m.flushQueue()
	m.frozen = make(map[int]bool)
}

// onVolEvent folds a late-landing "/vol" tree change into leader soft
// state (see the WatchChildren registration in newShardMaster). Ops this
// replica issued itself are already folded before their commit applies
// (m.vols is written optimistically), so the presence checks make the fold
// idempotent against our own traffic.
func (m *ShardMaster) onVolEvent(ev coord.Event) {
	if !m.leading || m.down {
		return
	}
	id := strings.TrimPrefix(ev.Path, "/vol/")
	switch ev.Type {
	case coord.EventCreated:
		if _, ok := m.vols[id]; ok {
			return
		}
		rec, err := decodeVol(ev.Data)
		if err != nil {
			return
		}
		m.vols[id] = rec
		for _, d := range rec.Disks {
			if m.ownsDisk(d) {
				m.place(d, rec.Size)
			}
		}
	case coord.EventDeleted:
		if m.frozen[SlotOf(id)] {
			// Migration DropSlot: onDropSlot moves the record to the export
			// ledger itself; folding the delete here would skip that move.
			return
		}
		rec, ok := m.vols[id]
		if !ok {
			return
		}
		// A previous leadership's release landing late: apply the same
		// bookkeeping execRelease would have.
		foreign := map[int][]string{}
		for _, d := range rec.Disks {
			if m.ownsDisk(d) {
				m.unplace(d, rec.Size)
			} else if u := m.f.Topo.UnitOfDisk(d); u != nil {
				foreign[u.Shard] = append(foreign[u.Shard], d)
			}
		}
		delete(m.vols, id)
		m.freeForeignFragments(id, foreign)
	}
}

// rebuild reconstructs leader soft state from the shard's replicated tree.
func (m *ShardMaster) rebuild() {
	m.vols = make(map[string]VolRecord)
	m.exports = make(map[string]VolRecord)
	m.used = make(map[string]int64)
	m.spinning = make(map[string]bool)
	if data, err := m.store.Get("/map"); err == nil {
		if mp := decodeMap(data, m.map_.Replicas); mp != nil && mp.Epoch > m.map_.Epoch {
			m.map_ = mp
		}
	}
	// Restore durable freezes so an interrupted migration's Handoff succeeds
	// against the new leader. Slots the current map routes elsewhere are
	// stale freezes from a completed move — drop them.
	m.frozen = make(map[int]bool)
	if data, err := m.store.Get("/frozen"); err == nil {
		for _, slot := range decodeFrozen(data) {
			if m.map_.Slots[slot] == m.shard {
				m.frozen[slot] = true
			}
		}
	}
	load := func(root string, into map[string]VolRecord) {
		ids, err := m.store.Children(root)
		if err != nil {
			return
		}
		for _, id := range ids {
			data, err := m.store.Get(root + "/" + id)
			if err != nil {
				continue
			}
			rec, err := decodeVol(data)
			if err != nil {
				continue
			}
			into[id] = rec
			for _, d := range rec.Disks {
				if m.ownsDisk(d) {
					m.used[d] += rec.Size
					m.spinning[d] = true
				}
			}
		}
	}
	load("/vol", m.vols)
	load("/exp", m.exports)
	// Grace-stamp every owned unit so a fresh leader waits a full dead
	// window before declaring silence fatal.
	now := m.sched.Now()
	for _, u := range m.f.Topo.ShardUnits(m.shard) {
		m.unitSeen[u] = now
	}
}

// ownsDisk reports whether a disk belongs to a unit this shard owns.
func (m *ShardMaster) ownsDisk(diskID string) bool {
	u := m.f.Topo.UnitOfDisk(diskID)
	return u != nil && u.Shard == m.shard
}

// unitAlive reports whether an owned unit's heartbeats are current.
func (m *ShardMaster) unitAlive(unitID string) bool { return !m.deadUnit[unitID] }

// --- RPC surface ---

func (m *ShardMaster) register() {
	// Serialized volume operations.
	for _, method := range []string{"Allocate", "Lookup", "Release"} {
		method := method
		m.rpc.RegisterAsync(method, func(_ string, args any, reply func(any, error)) {
			m.enqueue(method, args, reply)
		})
	}
	m.rpc.Register("Heartbeat", m.onHeartbeat)
	m.rpc.Register("FetchMap", func(string, any) (any, error) {
		return FetchMapReply{ShardReply{OK: true, Map: m.map_.Clone()}}, nil
	})
	m.rpc.RegisterAsync("FreezeSlot", m.onFreezeSlot)
	m.rpc.Register("Handoff", m.onHandoff)
	m.rpc.RegisterAsync("InstallSlot", m.onInstallSlot)
	m.rpc.RegisterAsync("DropSlot", m.onDropSlot)
	m.rpc.RegisterAsync("InstallMap", m.onInstallMap)
	m.rpc.RegisterAsync("FreeForeign", m.onFreeForeign)
}

// routeCheck validates that a volume op belongs here right now. It returns
// a non-OK envelope to send back, or OK=true to proceed.
func (m *ShardMaster) routeCheck(volume string) ShardReply {
	if !m.leading {
		return ShardReply{NotLeader: true}
	}
	slot := SlotOf(volume)
	if m.map_.Slots[slot] != m.shard {
		m.cStale.Inc()
		return ShardReply{Stale: true, Map: m.map_.Clone()}
	}
	if m.frozen[slot] {
		return ShardReply{Busy: true}
	}
	return ShardReply{OK: true}
}

// volumeOf extracts the volume ID from a serialized op's args.
func volumeOf(args any) string {
	switch a := args.(type) {
	case AllocateArgs:
		return a.Volume
	case LookupArgs:
		return a.Volume
	case ReleaseArgs:
		return a.Volume
	}
	return ""
}

// envelope wraps a bare ShardReply in the op's concrete reply type.
func envelope(method string, sr ShardReply) any {
	switch method {
	case "Allocate":
		return AllocateReply{ShardReply: sr}
	case "Lookup":
		return LookupReply{ShardReply: sr}
	default:
		return ReleaseReply{ShardReply: sr}
	}
}

func (m *ShardMaster) enqueue(method string, args any, reply func(any, error)) {
	if sr := m.routeCheck(volumeOf(args)); !sr.OK {
		reply(envelope(method, sr), nil)
		return
	}
	m.queue = append(m.queue, &shardOp{method: method, args: args, reply: reply})
	m.gQueue.Set(float64(len(m.queue)))
	m.pump()
}

// pump starts the next queued op if the service unit is idle. Each op
// holds the unit for OpServiceTime before its state transition runs.
func (m *ShardMaster) pump() {
	if m.busy || len(m.queue) == 0 || m.down {
		return
	}
	op := m.queue[0]
	m.queue = m.queue[1:]
	m.gQueue.Set(float64(len(m.queue)))
	m.busy = true
	start := m.sched.Now()
	m.sched.After(m.f.Cfg.OpServiceTime, func() {
		m.exec(op)
		m.hOpTime.ObserveDuration(m.sched.Now() - start)
	})
}

// opDone completes an op exactly once and releases the service unit.
func (m *ShardMaster) opDone(op *shardOp, result any) {
	if op.finished {
		return
	}
	op.finished = true
	op.reply(result, nil)
	m.busy = false
	m.pump()
}

// flushQueue answers every queued op NotLeader (lost leadership or crash;
// crashed replicas' replies are dropped by the downed node anyway).
func (m *ShardMaster) flushQueue() {
	q := m.queue
	m.queue = nil
	m.gQueue.Set(0)
	m.busy = false
	for _, op := range q {
		m.opDone(op, envelope(op.method, ShardReply{NotLeader: true}))
	}
}

func (m *ShardMaster) exec(op *shardOp) {
	m.cOps.Inc()
	// Re-check routing: the map may have flipped while the op queued.
	if sr := m.routeCheck(volumeOf(op.args)); !sr.OK {
		m.opDone(op, envelope(op.method, sr))
		return
	}
	switch a := op.args.(type) {
	case AllocateArgs:
		m.execAllocate(op, a)
	case LookupArgs:
		m.execLookup(op, a)
	case ReleaseArgs:
		m.execRelease(op, a)
	default:
		m.opDone(op, envelope(op.method, ShardReply{Err: "bad args"}))
	}
}

// commitGuard schedules a liveness bound on an op awaiting a coord commit:
// if the proposal is lost to a leadership change the client gets Busy
// instead of the service unit wedging forever.
func (m *ShardMaster) commitGuard(op *shardOp) {
	m.sched.After(4*m.f.Cfg.ElectionTTL, func() {
		m.opDone(op, envelope(op.method, ShardReply{Busy: true}))
	})
}

// candidateViews builds the placement candidate set: every disk of every
// alive owned unit that is healthy, not draining, and has room for size
// bytes. Construction order (unit index, then disk ID) is globally sorted,
// which Spread requires for determinism.
func (m *ShardMaster) candidateViews(size int64) []placement.DiskView {
	views := m.scratch[:0]
	for _, uid := range m.f.Topo.ShardUnits(m.shard) {
		if !m.unitAlive(uid) {
			continue
		}
		u := m.f.Topo.UnitByID[uid]
		for _, d := range u.Disks {
			if m.badDisk[d] || m.draining[d] {
				continue
			}
			di := m.f.Topo.Disks[d]
			free := di.Capacity - m.used[d]
			if free < size {
				continue
			}
			views = append(views, placement.DiskView{
				ID:       d,
				Host:     di.Loc.Host,
				Free:     free,
				Spinning: m.spinning[d],
				Loc:      di.Loc,
			})
		}
	}
	m.scratch = views
	return views
}

// spinBudget computes each alive owned unit's remaining power budget.
func (m *ShardMaster) spinBudget() map[string]int {
	budget := make(map[string]int)
	for _, uid := range m.f.Topo.ShardUnits(m.shard) {
		u := m.f.Topo.UnitByID[uid]
		n := u.MaxSpinning
		for _, d := range u.Disks {
			if m.spinning[d] {
				n--
			}
		}
		budget[m.f.Topo.Disks[u.Disks[0]].Loc.Domain(placement.LevelUnit)] = n
	}
	return budget
}

// place charges a fragment onto a disk.
func (m *ShardMaster) place(diskID string, size int64) {
	m.used[diskID] += size
	m.spinning[diskID] = true
}

// unplace releases a fragment from an owned disk.
func (m *ShardMaster) unplace(diskID string, size int64) {
	m.used[diskID] -= size
	if m.used[diskID] < 0 {
		m.used[diskID] = 0
	}
}

func (m *ShardMaster) execAllocate(op *shardOp, a AllocateArgs) {
	if rec, ok := m.vols[a.Volume]; ok {
		// Idempotent re-allocate (client retry after a lost reply) — but
		// only once the record is durable. The in-memory entry is written
		// optimistically before its commit lands, and a commit can be
		// silently lost when paxos leadership moves away mid-flight (a
		// forwarded proposal doesn't survive a partition); acknowledging
		// from soft state alone would hand the client a volume no future
		// rebuild will ever see. Busy until the replicated tree has it.
		if !m.store.Exists(volPath(a.Volume)) {
			m.opDone(op, AllocateReply{ShardReply: ShardReply{Busy: true}})
			return
		}
		m.opDone(op, AllocateReply{ShardReply{OK: true}, append([]string(nil), rec.Disks...)})
		return
	}
	res := placement.Spread(m.candidateViews(a.Size), m.f.Cfg.Replicas, placement.SpreadOptions{
		Level:      m.f.Cfg.SpreadLevel,
		SpinBudget: m.spinBudget(),
	})
	if len(res.Disks) < m.f.Cfg.Replicas {
		m.opDone(op, AllocateReply{ShardReply: ShardReply{
			Err: fmt.Sprintf("insufficient failure domains: placed %d/%d", len(res.Disks), m.f.Cfg.Replicas)}})
		return
	}
	disks := make([]string, len(res.Disks))
	for i, d := range res.Disks {
		disks[i] = d.ID
		m.place(d.ID, a.Size)
	}
	rec := VolRecord{Size: a.Size, Service: a.Service, Disks: disks}
	m.vols[a.Volume] = rec
	m.cAlloc.Inc()
	m.commitGuard(op)
	m.store.Create(volPath(a.Volume), encodeVol(rec), "", func(err error) {
		if err != nil && !errors.Is(err, coord.ErrExists) {
			// Roll back the optimistic charge: a creation reported as failed
			// must not stay lookupable or keep its capacity held until the
			// next failover rebuild. (After a lose/regain cycle rebuild()
			// already discarded the entry, so guard on its presence.)
			if _, ok := m.vols[a.Volume]; ok {
				delete(m.vols, a.Volume)
				for _, d := range disks {
					m.unplace(d, a.Size)
				}
			}
			m.opDone(op, AllocateReply{ShardReply: ShardReply{Err: err.Error()}})
			return
		}
		m.opDone(op, AllocateReply{ShardReply{OK: true}, append([]string(nil), disks...)})
	})
}

func (m *ShardMaster) execLookup(op *shardOp, a LookupArgs) {
	rec, ok := m.vols[a.Volume]
	if !ok {
		m.opDone(op, LookupReply{ShardReply: ShardReply{Err: "no such volume"}})
		return
	}
	m.opDone(op, LookupReply{
		ShardReply: ShardReply{OK: true},
		Size:       rec.Size,
		Disks:      append([]string(nil), rec.Disks...),
	})
}

func (m *ShardMaster) execRelease(op *shardOp, a ReleaseArgs) {
	rec, ok := m.vols[a.Volume]
	if !ok {
		// Idempotent re-release — trustworthy only once the tombstone is
		// durable (see execAllocate): a delete whose commit was lost with a
		// paxos leadership change leaves the record in the replicated tree,
		// and an OK here would let the client forget a volume the next
		// rebuild resurrects.
		if m.store.Exists(volPath(a.Volume)) {
			m.opDone(op, ReleaseReply{ShardReply{Busy: true}})
			return
		}
		m.opDone(op, ReleaseReply{ShardReply{OK: true}})
		return
	}
	// Free owned fragments immediately; fragments parked on another
	// shard's disks (a migrated-in volume) free through that shard's
	// export ledger.
	foreign := map[int][]string{}
	for _, d := range rec.Disks {
		if m.ownsDisk(d) {
			m.unplace(d, rec.Size)
		} else if u := m.f.Topo.UnitOfDisk(d); u != nil {
			foreign[u.Shard] = append(foreign[u.Shard], d)
		}
	}
	delete(m.vols, a.Volume)
	m.commitGuard(op)
	m.store.Delete(volPath(a.Volume), func(err error) {
		if err != nil && !errors.Is(err, coord.ErrNotFound) {
			m.opDone(op, ReleaseReply{ShardReply{Err: err.Error()}})
			return
		}
		m.opDone(op, ReleaseReply{ShardReply{OK: true}})
	})
	m.freeForeignFragments(a.Volume, foreign)
}

// freeForeignFragments notifies each shard holding exported fragments of a
// volume that those bytes are free.
func (m *ShardMaster) freeForeignFragments(volume string, foreign map[int][]string) {
	shards := make([]int, 0, len(foreign))
	for k := range foreign {
		shards = append(shards, k)
	}
	sort.Ints(shards)
	for _, k := range shards {
		args := FreeForeignArgs{Volume: volume, Disks: append([]string(nil), foreign[k]...)}
		// Generous retry budget: a lost free leaks export-ledger bytes until
		// an operator reconciles, so ride out a full leader failover.
		if m.f.Engine != nil {
			m.callShard(k, "FreeForeign", args, 40, func(any, error) {})
		} else {
			m.f.adminCallFrom(m.rpc, k, "FreeForeign", args, 40, func(any, error) {})
		}
	}
}

// callShard is the engine-mode cross-shard call: everything it touches —
// the believed-leader map, the retry timer, the sending RPC node — belongs
// to this master's partition, and the request itself crosses units through
// the fabric. Leader discovery is by rotation, like clients.
func (m *ShardMaster) callShard(shard int, method string, args any, attempts int, done func(res any, err error)) {
	retry := func(err error) {
		if attempts <= 0 {
			done(nil, err)
			return
		}
		m.sched.After(500*time.Millisecond, func() {
			m.callShard(shard, method, args, attempts-1, done)
		})
	}
	if m.down {
		done(nil, errors.New("fleet: replica down"))
		return
	}
	names := m.f.replicaNames[shard]
	idx := m.foreignBelieved[shard] % len(names)
	rotate := func() {
		if m.foreignBelieved[shard] == idx {
			m.foreignBelieved[shard] = (idx + 1) % len(names)
		}
	}
	m.rpc.Call(names[idx], method, args, 256, m.f.Cfg.RPCTimeout, func(res any, err error) {
		if err != nil {
			rotate()
			retry(err)
			return
		}
		sr := res.(shardReplier).common()
		switch {
		case sr.OK:
			done(res, nil)
		case sr.NotLeader:
			rotate()
			retry(fmt.Errorf("fleet: %s on shard %d: not leader", method, shard))
		case sr.Busy:
			retry(fmt.Errorf("fleet: %s on shard %d: busy", method, shard))
		default:
			done(nil, fmt.Errorf("fleet: %s on shard %d: %s", method, shard, sr.Err))
		}
	})
}

// --- Heartbeats ---

func (m *ShardMaster) onHeartbeat(_ string, args any) (any, error) {
	a, ok := args.(HeartbeatArgs)
	if !ok {
		return HeartbeatReply{ShardReply{Err: "bad args"}}, nil
	}
	if !m.leading {
		return HeartbeatReply{ShardReply{NotLeader: true}}, nil
	}
	m.unitSeen[a.Unit] = m.sched.Now()
	if m.deadUnit[a.Unit] {
		delete(m.deadUnit, a.Unit)
	}
	for _, d := range a.Dead {
		m.badDisk[d] = true
	}
	for _, d := range a.Draining {
		m.draining[d] = true
	}
	return HeartbeatReply{ShardReply{OK: true}}, nil
}

// --- Slot migration ---

func (m *ShardMaster) onFreezeSlot(_ string, args any, reply func(any, error)) {
	a := args.(FreezeSlotArgs)
	if !m.leading {
		reply(FreezeSlotReply{ShardReply{NotLeader: true}}, nil)
		return
	}
	if m.map_.Slots[a.Slot] != m.shard {
		reply(FreezeSlotReply{ShardReply{Stale: true, Map: m.map_.Clone()}}, nil)
		return
	}
	// The freeze must be durable before it is acknowledged: a leader that
	// froze a slot in memory only and then failed over would leave its
	// successor answering Handoff with "slot not frozen", wedging the
	// migration. The frozen set persists as one znode; rebuild() reloads it.
	m.frozen[a.Slot] = true
	m.persistFrozen(func(err error) {
		if err != nil {
			reply(FreezeSlotReply{ShardReply{Busy: true}}, nil)
			return
		}
		reply(FreezeSlotReply{ShardReply{OK: true}}, nil)
	})
}

// persistFrozen commits the current frozen-slot set to the "/frozen" znode.
// Lazily created on first freeze, so fleets that never migrate slots never
// touch it (keeps steady-state proposal streams — and the checked-in bench
// goldens built on them — unchanged).
func (m *ShardMaster) persistFrozen(done func(error)) {
	data := encodeFrozen(m.frozen)
	if m.store.Exists("/frozen") {
		m.store.Set("/frozen", data, done)
		return
	}
	m.store.Create("/frozen", data, "", func(err error) {
		if errors.Is(err, coord.ErrExists) {
			// Applied state lagged the Exists check; overwrite.
			m.store.Set("/frozen", data, done)
			return
		}
		done(err)
	})
}

func (m *ShardMaster) onHandoff(_ string, args any) (any, error) {
	a := args.(HandoffArgs)
	if !m.leading {
		return HandoffReply{ShardReply: ShardReply{NotLeader: true}}, nil
	}
	if !m.frozen[a.Slot] {
		return HandoffReply{ShardReply: ShardReply{Err: "slot not frozen"}}, nil
	}
	out := map[string]VolRecord{}
	for id, rec := range m.vols {
		if SlotOf(id) == a.Slot {
			out[id] = rec.clone()
		}
	}
	return HandoffReply{ShardReply{OK: true}, out}, nil
}

func (m *ShardMaster) onInstallSlot(_ string, args any, reply func(any, error)) {
	a := args.(InstallSlotArgs)
	if !m.leading {
		reply(InstallSlotReply{ShardReply{NotLeader: true}}, nil)
		return
	}
	ids := make([]string, 0, len(a.Vols))
	for id := range a.Vols {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	remaining := len(ids)
	if remaining == 0 {
		reply(InstallSlotReply{ShardReply{OK: true}}, nil)
		return
	}
	// A commit that fails (leadership lost mid-install) must not be
	// acknowledged: the source would DropSlot and the records would be
	// durably lost. Reply Busy so the admin retry loop re-drives the
	// install (re-Creates of already-committed records return ErrExists).
	failed := false
	for _, id := range ids {
		rec := a.Vols[id].clone()
		// A re-sent install (admin retry under a fresh request ID) must not
		// charge the disks twice.
		if _, dup := m.vols[id]; !dup {
			for _, d := range rec.Disks {
				if m.ownsDisk(d) {
					m.place(d, rec.Size)
				}
			}
		}
		m.vols[id] = rec
		m.store.Create(volPath(id), encodeVol(rec), "", func(err error) {
			if err != nil && !errors.Is(err, coord.ErrExists) {
				failed = true
			}
			remaining--
			if remaining == 0 {
				if failed {
					reply(InstallSlotReply{ShardReply{Busy: true}}, nil)
					return
				}
				reply(InstallSlotReply{ShardReply{OK: true}}, nil)
			}
		})
	}
}

func (m *ShardMaster) onDropSlot(_ string, args any, reply func(any, error)) {
	a := args.(DropSlotArgs)
	if !m.leading {
		reply(DropSlotReply{ShardReply{NotLeader: true}}, nil)
		return
	}
	var ids []string
	for id := range m.vols {
		if SlotOf(id) == a.Slot {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	remaining := len(ids)
	if remaining == 0 {
		reply(DropSlotReply{ShardReply{OK: true}}, nil)
		return
	}
	// The in-memory vols -> exports move is applied per record only after
	// both its commits land, and a failed commit replies Busy: acknowledging
	// an uncommitted drop would let the epoch bump while the replicated tree
	// still holds (or has lost) the records, and mutating m.vols first would
	// make the admin's retry find an empty slot and no-op.
	failed := false
	for _, id := range ids {
		id, rec := id, m.vols[id]
		var createErr, deleteErr error
		pending := 2
		step := func() {
			pending--
			if pending > 0 {
				return
			}
			if createErr != nil && !errors.Is(createErr, coord.ErrExists) {
				failed = true
			} else if deleteErr != nil && !errors.Is(deleteErr, coord.ErrNotFound) {
				failed = true
			} else if cur, ok := m.vols[id]; ok {
				// Our disks keep holding the fragments until the new owner
				// migrates them home, so usage stays charged and the export
				// ledger makes that survivable across our own failovers.
				delete(m.vols, id)
				m.exports[id] = cur
			}
			remaining--
			if remaining == 0 {
				if failed {
					reply(DropSlotReply{ShardReply{Busy: true}}, nil)
					return
				}
				reply(DropSlotReply{ShardReply{OK: true}}, nil)
			}
		}
		m.store.Create(expPath(id), encodeVol(rec), "", func(err error) { createErr = err; step() })
		m.store.Delete(volPath(id), func(err error) { deleteErr = err; step() })
	}
}

func (m *ShardMaster) onInstallMap(_ string, args any, reply func(any, error)) {
	a := args.(InstallMapArgs)
	if a.Map == nil {
		reply(InstallMapReply{ShardReply{Err: "nil map"}}, nil)
		return
	}
	if a.Map.Epoch > m.map_.Epoch {
		m.map_ = a.Map.Clone()
		// Thaw slots the new epoch routes elsewhere.
		thawed := false
		for slot := range m.frozen {
			if m.map_.Slots[slot] != m.shard {
				delete(m.frozen, slot)
				thawed = true
			}
		}
		// Keep the durable freeze set in step (leader only; fire-and-forget —
		// if the commit is lost to a failover, rebuild() prunes moved-away
		// slots against the map anyway).
		if thawed && m.leading {
			m.persistFrozen(func(error) {})
		}
	}
	if !m.leading {
		// The map above was still adopted (a free refresh), but the admin's
		// broadcast contract is "installed at the LEADER, durably": an OK
		// from a follower would let the broadcast succeed while the actual
		// leader keeps routing on the old epoch — exactly the stale-leader
		// hole a healed partition opens. Rotate the caller onward.
		reply(InstallMapReply{ShardReply{NotLeader: true}}, nil)
		return
	}
	// Persist whenever the durable copy is behind the installed epoch — not
	// only when the epoch just advanced — so an admin retry after a failed
	// commit (leadership churn) re-drives the write instead of short-
	// circuiting on the already-current in-memory map.
	var stored int64
	if data, err := m.store.Get("/map"); err == nil {
		if mp := decodeMap(data, nil); mp != nil {
			stored = mp.Epoch
		}
	}
	if stored >= m.map_.Epoch {
		reply(InstallMapReply{ShardReply{OK: true}}, nil) // already durable
		return
	}
	data := encodeMap(m.map_)
	finish := func(err error) {
		if err != nil && !errors.Is(err, coord.ErrExists) {
			reply(InstallMapReply{ShardReply{Busy: true}}, nil)
			return
		}
		reply(InstallMapReply{ShardReply{OK: true}}, nil)
	}
	if m.store.Exists("/map") {
		m.store.Set("/map", data, finish)
	} else {
		m.store.Create("/map", data, "", finish)
	}
}

func (m *ShardMaster) onFreeForeign(_ string, args any, reply func(any, error)) {
	a := args.(FreeForeignArgs)
	if !m.leading {
		reply(FreeForeignReply{ShardReply{NotLeader: true}}, nil)
		return
	}
	rec, ok := m.exports[a.Volume]
	if !ok {
		reply(FreeForeignReply{ShardReply{OK: true}}, nil) // idempotent
		return
	}
	freed := map[string]bool{}
	for _, d := range a.Disks {
		freed[d] = true
	}
	var remaining []string
	for _, d := range rec.Disks {
		if freed[d] && m.ownsDisk(d) {
			m.unplace(d, rec.Size)
		} else {
			remaining = append(remaining, d)
		}
	}
	if len(remaining) > 0 {
		rec.Disks = remaining
		m.exports[a.Volume] = rec
		m.store.Set(expPath(a.Volume), encodeVol(rec), func(error) {
			reply(FreeForeignReply{ShardReply{OK: true}}, nil)
		})
		return
	}
	delete(m.exports, a.Volume)
	m.store.Delete(expPath(a.Volume), func(error) {
		reply(FreeForeignReply{ShardReply{OK: true}}, nil)
	})
}

// --- Persistence encoding ---

func volPath(id string) string { return "/vol/" + id }
func expPath(id string) string { return "/exp/" + id }

// encodeVol renders a record as "size|service|disk1,disk2,...". Volume IDs
// and services must not contain '|' or '/'.
func encodeVol(r VolRecord) []byte {
	return []byte(fmt.Sprintf("%d|%s|%s", r.Size, r.Service, strings.Join(r.Disks, ",")))
}

func decodeVol(data []byte) (VolRecord, error) {
	parts := strings.SplitN(string(data), "|", 3)
	if len(parts) != 3 {
		return VolRecord{}, fmt.Errorf("fleet: bad volume record %q", data)
	}
	size, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return VolRecord{}, err
	}
	rec := VolRecord{Size: size, Service: parts[1]}
	if parts[2] != "" {
		rec.Disks = strings.Split(parts[2], ",")
	}
	return rec, nil
}

// encodeFrozen renders the frozen-slot set as "s1,s2,..." (sorted; empty
// string for an empty set).
func encodeFrozen(frozen map[int]bool) []byte {
	slots := make([]int, 0, len(frozen))
	for s := range frozen {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	parts := make([]string, len(slots))
	for i, s := range slots {
		parts[i] = strconv.Itoa(s)
	}
	return []byte(strings.Join(parts, ","))
}

func decodeFrozen(data []byte) []int {
	if len(data) == 0 {
		return nil
	}
	var out []int
	for _, p := range strings.Split(string(data), ",") {
		s, err := strconv.Atoi(p)
		if err != nil || s < 0 || s >= NumSlots {
			continue
		}
		out = append(out, s)
	}
	return out
}

// encodeMap renders "epoch|owner0,owner1,...". Replica sets are static
// topology, so only epoch and slot owners persist.
func encodeMap(m *ShardMap) []byte {
	owners := make([]string, NumSlots)
	for i, o := range m.Slots {
		owners[i] = strconv.Itoa(o)
	}
	return []byte(fmt.Sprintf("%d|%s", m.Epoch, strings.Join(owners, ",")))
}

func decodeMap(data []byte, replicas [][]string) *ShardMap {
	parts := strings.SplitN(string(data), "|", 2)
	if len(parts) != 2 {
		return nil
	}
	epoch, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return nil
	}
	owners := strings.Split(parts[1], ",")
	if len(owners) != NumSlots {
		return nil
	}
	m := &ShardMap{Epoch: epoch}
	for i, o := range owners {
		v, err := strconv.Atoi(o)
		if err != nil {
			return nil
		}
		m.Slots[i] = v
	}
	for _, r := range replicas {
		m.Replicas = append(m.Replicas, append([]string(nil), r...))
	}
	return m
}
