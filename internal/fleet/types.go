package fleet

// Wire types for the shard metadata protocol. Every reply embeds ShardReply
// so routers can handle leadership and routing outcomes uniformly.

// ShardReply is the routing envelope on every shard response.
type ShardReply struct {
	// OK reports the operation was accepted and executed.
	OK bool
	// NotLeader means this replica does not lead the shard group; the
	// caller should rotate to another replica.
	NotLeader bool
	// Stale means the caller's map routed the volume to the wrong shard;
	// Map carries the replier's (newer) installed map.
	Stale bool
	// Busy means the volume's slot is frozen for migration; retry shortly.
	Busy bool
	// Err is a terminal operation error ("" if none).
	Err string
	// Map is attached to Stale replies (and FetchMap) so one round trip
	// repairs the caller's cache.
	Map *ShardMap
}

// common lets routers extract the envelope from any concrete reply.
func (r ShardReply) common() ShardReply { return r }

type shardReplier interface{ common() ShardReply }

// VolRecord is a volume's replicated metadata: its size, owning service,
// and the disks holding its fragments.
type VolRecord struct {
	Size    int64
	Service string
	Disks   []string
}

func (v VolRecord) clone() VolRecord {
	v.Disks = append([]string(nil), v.Disks...)
	return v
}

// AllocateArgs asks the owning shard to place a new volume.
type AllocateArgs struct {
	Volume  string
	Size    int64
	Service string
	// ClientHost hints locality (may be "").
	ClientHost string
}

// AllocateReply returns the chosen fragment disks.
type AllocateReply struct {
	ShardReply
	Disks []string
}

// LookupArgs resolves a volume's fragment locations.
type LookupArgs struct{ Volume string }

// LookupReply carries the volume record.
type LookupReply struct {
	ShardReply
	Size  int64
	Disks []string
}

// ReleaseArgs frees a volume.
type ReleaseArgs struct{ Volume string }

// ReleaseReply acknowledges the free.
type ReleaseReply struct{ ShardReply }

// HeartbeatArgs is a unit agent's periodic report to its owning shard. The
// Dead and Draining lists are cumulative, so a freshly elected leader
// rebuilds disk health from the very next heartbeat.
type HeartbeatArgs struct {
	Unit     string
	Seq      uint64
	Dead     []string
	Draining []string
}

// HeartbeatReply acknowledges a heartbeat.
type HeartbeatReply struct{ ShardReply }

// FetchMapArgs asks any replica for its installed shard map.
type FetchMapArgs struct{}

// FetchMapReply carries the map.
type FetchMapReply struct{ ShardReply }

// FreezeSlotArgs fences a slot for migration: volume ops on it answer Busy
// until the epoch flips.
type FreezeSlotArgs struct{ Slot int }

// FreezeSlotReply acknowledges the fence.
type FreezeSlotReply struct{ ShardReply }

// HandoffArgs asks the source leader for a frozen slot's volume records.
type HandoffArgs struct{ Slot int }

// HandoffReply carries the records to install on the destination.
type HandoffReply struct {
	ShardReply
	Vols map[string]VolRecord
}

// InstallSlotArgs persists a migrated slot's records on the destination.
type InstallSlotArgs struct {
	Slot int
	Vols map[string]VolRecord
}

// InstallSlotReply acknowledges after the records are committed.
type InstallSlotReply struct{ ShardReply }

// DropSlotArgs retires a migrated slot on the source: records move to the
// export ledger (their fragments still occupy source disks until the new
// owner migrates them home).
type DropSlotArgs struct{ Slot int }

// DropSlotReply acknowledges after the ledger is committed.
type DropSlotReply struct{ ShardReply }

// InstallMapArgs broadcasts a new map epoch to shard leaders.
type InstallMapArgs struct{ Map *ShardMap }

// InstallMapReply acknowledges the install.
type InstallMapReply struct{ ShardReply }

// FreeForeignArgs tells the shard whose disks still hold an exported
// volume's fragments that those bytes are free (the new owner re-placed
// them, or released the volume).
type FreeForeignArgs struct {
	Volume string
	Disks  []string
}

// FreeForeignReply acknowledges after the export ledger entry is deleted.
type FreeForeignReply struct{ ShardReply }
