package fleet

import (
	"sort"

	"ustore/internal/simnet"
	"ustore/internal/simtime"
)

// Agent is a deploy unit's local daemon: every HeartbeatInterval it
// reports the unit's disk health to its owning shard's leader. The dead
// and draining sets are cumulative, so one heartbeat fully refreshes a
// newly elected leader's view. Heartbeats rotate through the shard's
// replicas until one answers as leader.
type Agent struct {
	f     *Fleet
	unit  *UnitTopo
	sched *simtime.Scheduler
	rpc   *simnet.RPCNode

	// replicas are the owning shard's master node names.
	replicas []string
	believed int

	seq      uint64
	dead     map[string]bool
	draining map[string]bool

	ticker  *simtime.Ticker
	stopped bool
}

func newAgent(f *Fleet, u *UnitTopo, replicas []string, p part) *Agent {
	return &Agent{
		f:        f,
		unit:     u,
		sched:    p.sched,
		rpc:      simnet.NewRPCNode(p.net, "agent:"+u.ID),
		replicas: replicas,
		dead:     make(map[string]bool),
		draining: make(map[string]bool),
	}
}

func (a *Agent) start() {
	a.ticker = a.sched.Every(a.f.Cfg.HeartbeatInterval, a.beat)
}

func (a *Agent) stop() {
	a.stopped = true
	if a.ticker != nil {
		a.ticker.Stop()
	}
	a.rpc.Node().SetDown(true)
}

func (a *Agent) failDisk(diskID string) { a.dead[diskID] = true }

func (a *Agent) drainDisk(diskID string) { a.draining[diskID] = true }

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (a *Agent) beat() {
	if a.stopped {
		return
	}
	a.seq++
	args := HeartbeatArgs{
		Unit:     a.unit.ID,
		Seq:      a.seq,
		Dead:     sortedKeys(a.dead),
		Draining: sortedKeys(a.draining),
	}
	target := a.replicas[a.believed]
	a.rpc.Call(target, "Heartbeat", args, 128, a.f.Cfg.RPCTimeout, func(res any, err error) {
		if a.stopped {
			return
		}
		if err != nil {
			a.believed = (a.believed + 1) % len(a.replicas)
			return
		}
		if rep, ok := res.(HeartbeatReply); ok && rep.NotLeader {
			a.believed = (a.believed + 1) % len(a.replicas)
		}
	})
}
