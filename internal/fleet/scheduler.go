package fleet

import (
	"sort"
	"strconv"
	"time"

	"ustore/internal/obs"
	"ustore/internal/placement"
	"ustore/internal/simtime"
)

// SchedulerConfig tunes the per-shard background task scheduler.
type SchedulerConfig struct {
	// Tick is the scan period (default 2s).
	Tick time.Duration
	// MaxInflight bounds concurrently executing tasks (default 8).
	MaxInflight int
	// TasksPerTick bounds new tasks admitted per tick (default 4) — the
	// rate limit that keeps repair traffic from starving foreground work.
	TasksPerTick int
	// RepairBytesPerSec models per-task copy bandwidth (default 256 MB/s).
	RepairBytesPerSec float64
	// BalanceSkew is the (max-min)/capacity per-unit usage spread that
	// triggers rebalancing (default 0.25).
	BalanceSkew float64
	// InspectPerTick is how many volume records the inspection cursor
	// verifies per tick (default 16).
	InspectPerTick int
}

func (c SchedulerConfig) withDefaults() SchedulerConfig {
	if c.Tick <= 0 {
		c.Tick = 2 * time.Second
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 8
	}
	if c.TasksPerTick <= 0 {
		c.TasksPerTick = 4
	}
	if c.RepairBytesPerSec <= 0 {
		c.RepairBytesPerSec = 256e6
	}
	if c.BalanceSkew <= 0 {
		c.BalanceSkew = 0.25
	}
	if c.InspectPerTick <= 0 {
		c.InspectPerTick = 16
	}
	return c
}

// Task kinds, in generation priority order.
const (
	taskRepair  = "repair"  // fragment on a dead disk or dead unit
	taskMigrate = "migrate" // fragment parked on another shard's disks
	taskDrop    = "drop"    // fragment on a draining disk
	taskBalance = "balance" // fragment moved off an overloaded unit
)

// shardScheduler is the leader-side background task engine (the BlobStore
// Scheduler idea, §Snippet 1): every tick it derives repair, migration,
// drain, rebalance and inspection work from heartbeat-reported state, and
// executes it under inflight and per-tick rate limits.
type shardScheduler struct {
	m      *ShardMaster
	cfg    SchedulerConfig
	ticker *simtime.Ticker

	inflight int
	// epoch invalidates inflight-task completions from before the latest
	// start(): a copy launched under a lost leadership must not touch the
	// rebuilt state or the inflight gauge.
	epoch int
	// pendingVol fences volumes with an inflight task so a slow copy is
	// not re-issued every tick.
	pendingVol map[string]bool
	// cursor is the inspection scan position (last inspected volume ID).
	cursor string

	cTasks     map[string]*obs.Counter
	cRequeued  *obs.Counter
	cInspected *obs.Counter
	cUnitDead  *obs.Counter
	cBytes     *obs.Counter
}

func newShardScheduler(m *ShardMaster) *shardScheduler {
	s := &shardScheduler{
		m:          m,
		cfg:        m.f.Cfg.Scheduler,
		pendingVol: make(map[string]bool),
	}
	label := obs.L("shard", strconv.Itoa(m.shard))
	rec := m.rec
	s.cTasks = map[string]*obs.Counter{}
	for _, kind := range []string{taskRepair, taskMigrate, taskDrop, taskBalance} {
		s.cTasks[kind] = rec.Counter("fleet", "tasks_total", label, obs.L("kind", kind))
	}
	s.cRequeued = rec.Counter("fleet", "tasks_requeued_total", label)
	s.cInspected = rec.Counter("fleet", "inspected_total", label)
	s.cUnitDead = rec.Counter("fleet", "unit_dead_declared_total", label)
	s.cBytes = rec.Counter("fleet", "repair_bytes_total", label)
	return s
}

func (s *shardScheduler) start() {
	s.stop()
	s.epoch++
	s.pendingVol = make(map[string]bool)
	s.inflight = 0
	s.ticker = s.m.sched.Every(s.cfg.Tick, s.tick)
}

func (s *shardScheduler) stop() {
	if s.ticker != nil {
		s.ticker.Stop()
		s.ticker = nil
	}
}

// task is one unit of background work: re-place the volume's fragments
// currently on `from` disks somewhere healthy.
type task struct {
	kind   string
	volume string
	from   []string
}

func (s *shardScheduler) tick() {
	m := s.m
	if !m.leading || m.down {
		return
	}
	s.checkUnits()
	s.inspect()
	// Cap generation by launch capacity: generate() fences every emitted
	// task's volume in pendingVol and only finish() of a launched task
	// unfences, so a task generated but never launched would stay fenced
	// (and unrepaired) forever.
	budget := s.cfg.TasksPerTick
	if room := s.cfg.MaxInflight - s.inflight; budget > room {
		budget = room
	}
	for _, t := range s.generate(budget) {
		s.launch(t)
	}
	m.gAlive.Set(float64(s.aliveOwnedUnits()))
}

// checkUnits flips owned units to dead after UnitDeadAfter silent
// heartbeat intervals.
func (s *shardScheduler) checkUnits() {
	m := s.m
	deadline := time.Duration(m.f.Cfg.UnitDeadAfter) * m.f.Cfg.HeartbeatInterval
	now := m.sched.Now()
	for _, u := range m.f.Topo.ShardUnits(m.shard) {
		if m.deadUnit[u] {
			continue
		}
		if now-m.unitSeen[u] > deadline {
			m.deadUnit[u] = true
			s.cUnitDead.Inc()
			m.rec.Instant("fleet", "unit-declared-dead", "fleet",
				obs.L("shard", strconv.Itoa(m.shard)), obs.L("unit", u))
		}
	}
}

func (s *shardScheduler) aliveOwnedUnits() int {
	n := 0
	for _, u := range s.m.f.Topo.ShardUnits(s.m.shard) {
		if !s.m.deadUnit[u] {
			n++
		}
	}
	return n
}

// diskBad reports whether a fragment on diskID needs repair: the disk was
// reported dead, or its whole unit went silent (our own or, for exported
// fragments not yet migrated home, any unit the fleet killed is detected
// by the owning shard — here we only see our own units' heartbeats, so
// foreign disks are handled by migration).
func (s *shardScheduler) diskBad(diskID string) bool {
	m := s.m
	if m.badDisk[diskID] {
		return true
	}
	u := m.f.Topo.UnitOfDisk(diskID)
	return u != nil && u.Shard == m.shard && m.deadUnit[u.ID]
}

// generate scans volumes (sorted, so task order is deterministic) and
// emits up to budget tasks in priority order: repair, migrate, drop, then
// at most one balance move.
func (s *shardScheduler) generate(budget int) []task {
	m := s.m
	if budget <= 0 {
		return nil
	}
	var tasks []task
	ids := make([]string, 0, len(m.vols))
	for id := range m.vols {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	add := func(t task) bool {
		tasks = append(tasks, t)
		s.pendingVol[t.volume] = true
		return len(tasks) < budget
	}

	for _, pass := range []string{taskRepair, taskMigrate, taskDrop} {
		for _, id := range ids {
			if s.pendingVol[id] {
				continue
			}
			rec := m.vols[id]
			var from []string
			for _, d := range rec.Disks {
				switch pass {
				case taskRepair:
					if s.diskBad(d) {
						from = append(from, d)
					}
				case taskMigrate:
					if !m.ownsDisk(d) {
						from = append(from, d)
					}
				case taskDrop:
					if m.draining[d] && !s.diskBad(d) {
						from = append(from, d)
					}
				}
			}
			if len(from) == 0 {
				continue
			}
			if !add(task{kind: pass, volume: id, from: from}) {
				return tasks
			}
		}
	}
	if t, ok := s.balanceTask(ids); ok {
		add(t)
	}
	return tasks
}

// balanceTask proposes moving one fragment from the most-loaded alive unit
// to relieve skew beyond cfg.BalanceSkew.
func (s *shardScheduler) balanceTask(ids []string) (task, bool) {
	m := s.m
	units := m.f.Topo.ShardUnits(m.shard)
	var minU, maxU string
	var minB, maxB int64 = -1, -1
	unitCap := int64(m.f.Cfg.HostsPerUnit*m.f.Cfg.DisksPerHost) * m.f.Cfg.DiskCapacity
	for _, uid := range units {
		if m.deadUnit[uid] {
			continue
		}
		var b int64
		for _, d := range m.f.Topo.UnitByID[uid].Disks {
			b += m.used[d]
		}
		if minB < 0 || b < minB {
			minB, minU = b, uid
		}
		if b > maxB {
			maxB, maxU = b, uid
		}
	}
	if minU == "" || maxU == "" || minU == maxU {
		return task{}, false
	}
	if float64(maxB-minB)/float64(unitCap) < s.cfg.BalanceSkew {
		return task{}, false
	}
	// First unfenced volume with a fragment on the hot unit.
	for _, id := range ids {
		if s.pendingVol[id] {
			continue
		}
		for _, d := range m.vols[id].Disks {
			if u := m.f.Topo.UnitOfDisk(d); u != nil && u.ID == maxU {
				return task{kind: taskBalance, volume: id, from: []string{d}}, true
			}
		}
	}
	return task{}, false
}

// launch runs a task: the copy takes size/RepairBytesPerSec of virtual
// time per fragment moved, then the record is re-placed and committed.
func (s *shardScheduler) launch(t task) {
	m := s.m
	s.inflight++
	s.cTasks[t.kind].Inc()
	rec, ok := m.vols[t.volume]
	dur := 10 * time.Millisecond
	if ok {
		bytes := rec.Size * int64(len(t.from))
		dur += time.Duration(float64(bytes) / s.cfg.RepairBytesPerSec * float64(time.Second))
		s.cBytes.Add(uint64(bytes))
	}
	span := m.rec.Begin("fleet", "task:"+t.kind, "shard"+strconv.Itoa(m.shard),
		obs.L("volume", t.volume))
	epoch := s.epoch
	m.sched.After(dur, func() {
		s.finish(t, epoch)
		span.End()
	})
}

// finish completes a task after its copy time: pick replacement disks,
// update the record, commit, and free the vacated fragments.
func (s *shardScheduler) finish(t task, epoch int) {
	m := s.m
	if epoch != s.epoch {
		return // launched under a leadership this replica has since lost
	}
	s.inflight--
	delete(s.pendingVol, t.volume)
	if !m.leading || m.down {
		return
	}
	rec, ok := m.vols[t.volume]
	if !ok {
		return // released or migrated away mid-task
	}
	// Fragments that stay put constrain the new picks.
	moving := map[string]bool{}
	for _, d := range t.from {
		moving[d] = true
	}
	var keep []string
	var exclude []string
	for _, d := range rec.Disks {
		if moving[d] {
			continue
		}
		keep = append(keep, d)
		if di := m.f.Topo.Disks[d]; di != nil {
			exclude = append(exclude, di.Loc.Domain(m.f.Cfg.SpreadLevel))
		}
	}
	need := len(rec.Disks) - len(keep)
	if need <= 0 {
		return
	}
	res := placement.Spread(m.candidateViews(rec.Size), need, placement.SpreadOptions{
		Level:      m.f.Cfg.SpreadLevel,
		Exclude:    exclude,
		SpinBudget: m.spinBudget(),
	})
	if len(res.Disks) < need {
		// Not enough healthy domains right now; the next tick regenerates
		// the task (state is unchanged).
		s.cRequeued.Inc()
		return
	}
	newDisks := keep
	for _, d := range res.Disks {
		newDisks = append(newDisks, d.ID)
		m.place(d.ID, rec.Size)
	}
	sort.Strings(newDisks)
	// Free the vacated fragments: owned disks directly, foreign disks via
	// the owning shard's export ledger.
	foreign := map[int][]string{}
	for _, d := range t.from {
		if m.ownsDisk(d) {
			m.unplace(d, rec.Size)
		} else if u := m.f.Topo.UnitOfDisk(d); u != nil {
			foreign[u.Shard] = append(foreign[u.Shard], d)
		}
	}
	rec.Disks = newDisks
	m.vols[t.volume] = rec
	m.store.Set(volPath(t.volume), encodeVol(rec), nil)
	m.freeForeignFragments(t.volume, foreign)
}

// inspect advances the background consistency cursor over the sorted
// volume set, InspectPerTick records per tick, wrapping at the end.
func (s *shardScheduler) inspect() {
	m := s.m
	if len(m.vols) == 0 {
		return
	}
	ids := make([]string, 0, len(m.vols))
	for id := range m.vols {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	start := sort.SearchStrings(ids, s.cursor)
	for i := 0; i < s.cfg.InspectPerTick; i++ {
		idx := (start + i) % len(ids)
		id := ids[idx]
		rec := m.vols[id]
		s.cInspected.Inc()
		if len(rec.Disks) == 0 || rec.Size < 0 {
			m.rec.Instant("fleet", "inspect-anomaly", "fleet", obs.L("volume", id))
		}
		s.cursor = id + "\x00" // resume just past the last inspected ID
	}
}
