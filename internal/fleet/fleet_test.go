package fleet

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"ustore/internal/placement"
)

func testConfig() Config {
	return Config{
		Units:        8,
		Racks:        2,
		HostsPerUnit: 2,
		DisksPerHost: 4,
		Shards:       2,
		Replicas:     3,
		DiskCapacity: 1 << 32, // 4 GB so small volumes never hit capacity
		Seed:         7,
	}
}

const volSize = 64 << 20

// boot assembles a fleet and settles until every shard has a leader.
func boot(t *testing.T, cfg Config) *Fleet {
	t.Helper()
	f := New(cfg)
	f.Settle(30 * time.Second)
	for k := 0; k < f.Cfg.Shards; k++ {
		if f.Leader(k) == nil {
			t.Fatalf("shard %d has no leader after boot settle", k)
		}
	}
	return f
}

// mustAlloc drives one allocation to completion and returns its disks.
func mustAlloc(t *testing.T, f *Fleet, r *Router, vol string) []string {
	t.Helper()
	var got []string
	var gotErr error
	fired := false
	r.Allocate(vol, volSize, "svc-archive", func(disks []string, err error) {
		fired, got, gotErr = true, disks, err
	})
	f.Settle(20 * time.Second)
	if !fired {
		t.Fatalf("allocate %s never completed", vol)
	}
	if gotErr != nil {
		t.Fatalf("allocate %s: %v", vol, gotErr)
	}
	return got
}

func checkInvariants(t *testing.T, f *Fleet) {
	t.Helper()
	if err := f.ValidateSpread(); err != nil {
		t.Fatalf("spread invariant: %v", err)
	}
	if err := f.ValidateShardMap(); err != nil {
		t.Fatalf("shard-map invariant: %v", err)
	}
	if err := f.ValidateCapacity(); err != nil {
		t.Fatalf("capacity invariant: %v", err)
	}
}

func TestTopologyShape(t *testing.T) {
	cfg := testConfig().withDefaults()
	topo := buildTopology(cfg)
	if len(topo.Units) != 8 || topo.NumDisks != 8*2*4 {
		t.Fatalf("topology: %d units, %d disks", len(topo.Units), topo.NumDisks)
	}
	for i, u := range topo.Units {
		if u.Shard != i%cfg.Shards {
			t.Fatalf("unit %d owned by shard %d, want %d", i, u.Shard, i%cfg.Shards)
		}
		if u.Rack != fmt.Sprintf("r%02d", i%cfg.Racks) {
			t.Fatalf("unit %d in rack %s", i, u.Rack)
		}
	}
	// Hub fan-in: d00..d03 share a hub, d04.. differ.
	a := topo.Disks["u000/h0/d00"]
	b := topo.Disks["u000/h0/d03"]
	c := topo.Disks["u000/h1/d00"]
	if a.Loc.Hub != b.Loc.Hub {
		t.Fatalf("disks 0 and 3 should share a hub: %s vs %s", a.Loc.Hub, b.Loc.Hub)
	}
	if a.Loc.Hub == c.Loc.Hub {
		t.Fatal("disks on different hosts must not share a hub")
	}
	if got := topo.UnitOfDisk("u003/h1/d02"); got == nil || got.ID != "u003" {
		t.Fatalf("UnitOfDisk = %v", got)
	}
	if topo.UnitOfDisk("nope") != nil {
		t.Fatal("UnitOfDisk on unknown disk should be nil")
	}
	if units := topo.ShardUnits(0); strings.Join(units, " ") != "u000 u002 u004 u006" {
		t.Fatalf("ShardUnits(0) = %v", units)
	}
}

func TestShardMapBasics(t *testing.T) {
	m := initialMap(4, [][]string{{"a"}, {"b"}, {"c"}, {"d"}})
	for s := 0; s < NumSlots; s++ {
		if m.Slots[s] != s%4 {
			t.Fatalf("slot %d -> %d, want round-robin", s, m.Slots[s])
		}
	}
	if got := SlotOf("vol-0001"); got != SlotOf("vol-0001") || got < 0 || got >= NumSlots {
		t.Fatalf("SlotOf unstable or out of range: %d", got)
	}
	c := m.Clone()
	c.Slots[0] = 3
	c.Epoch = 9
	if m.Slots[0] == 3 || m.Epoch == 9 {
		t.Fatal("Clone shares state with original")
	}
	if len(m.SlotsOwnedBy(1)) != NumSlots/4 {
		t.Fatalf("SlotsOwnedBy(1) = %d slots", len(m.SlotsOwnedBy(1)))
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	rec := VolRecord{Size: 123456, Service: "svc", Disks: []string{"u000/h0/d00", "u001/h1/d03"}}
	got, err := decodeVol(encodeVol(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != rec.Size || got.Service != rec.Service ||
		strings.Join(got.Disks, ",") != strings.Join(rec.Disks, ",") {
		t.Fatalf("volume round trip: %+v != %+v", got, rec)
	}
	empty, err := decodeVol(encodeVol(VolRecord{Size: 1, Service: "s"}))
	if err != nil || len(empty.Disks) != 0 {
		t.Fatalf("empty-disks round trip: %+v, %v", empty, err)
	}

	m := initialMap(2, [][]string{{"x"}, {"y"}})
	m.Epoch = 7
	m.Slots[5] = 1
	back := decodeMap(encodeMap(m), m.Replicas)
	if back == nil || back.Epoch != 7 || back.Slots != m.Slots {
		t.Fatalf("map round trip: %+v", back)
	}
	if decodeMap([]byte("garbage"), nil) != nil {
		t.Fatal("decodeMap should reject garbage")
	}
}

func TestAllocateLookupRelease(t *testing.T) {
	f := boot(t, testConfig())
	r := f.NewRouter("c1")

	disks := mustAlloc(t, f, r, "vol-0001")
	if len(disks) != 3 {
		t.Fatalf("allocated %d fragments, want 3", len(disks))
	}
	units := map[string]bool{}
	for _, d := range disks {
		u := f.Topo.UnitOfDisk(d)
		if u == nil {
			t.Fatalf("unknown disk %s", d)
		}
		if units[u.ID] {
			t.Fatalf("two fragments on unit %s", u.ID)
		}
		units[u.ID] = true
	}
	checkInvariants(t, f)

	var lkDisks []string
	var lkSize int64
	r.Lookup("vol-0001", func(d []string, size int64, err error) {
		if err != nil {
			t.Fatalf("lookup: %v", err)
		}
		lkDisks, lkSize = d, size
	})
	f.Settle(10 * time.Second)
	sort.Strings(disks)
	sort.Strings(lkDisks)
	if lkSize != volSize || strings.Join(disks, ",") != strings.Join(lkDisks, ",") {
		t.Fatalf("lookup mismatch: %v/%d vs %v/%d", lkDisks, lkSize, disks, volSize)
	}

	released := false
	r.Release("vol-0001", func(err error) {
		if err != nil {
			t.Fatalf("release: %v", err)
		}
		released = true
	})
	f.Settle(10 * time.Second)
	if !released {
		t.Fatal("release never completed")
	}
	if n := f.VolumeCount(); n != 0 {
		t.Fatalf("%d volumes remain after release", n)
	}
	var lookupErr error
	r.Lookup("vol-0001", func(_ []string, _ int64, err error) { lookupErr = err })
	f.Settle(10 * time.Second)
	if lookupErr == nil {
		t.Fatal("lookup of released volume should fail")
	}
	checkInvariants(t, f)
}

func TestUnitLossDrainsOntoSurvivors(t *testing.T) {
	f := boot(t, testConfig())
	r := f.NewRouter("c1")
	var vols []string
	for i := 0; i < 24; i++ {
		v := fmt.Sprintf("vol-%04d", i)
		mustAlloc(t, f, r, v)
		vols = append(vols, v)
	}
	checkInvariants(t, f)

	const victim = "u000"
	f.KillUnit(victim)
	// Dead-unit declaration (3 x 5s silent) + leader failover for shard 0
	// (its replica 0 lived on u000) + rate-limited repair.
	f.Settle(4 * time.Minute)

	if !f.Drained(victim) {
		t.Fatalf("unit %s not drained after repair window", victim)
	}
	checkInvariants(t, f)

	// Every volume must still resolve, with full redundancy, via a fresh
	// client.
	r2 := f.NewRouter("c2")
	for _, v := range vols {
		var got []string
		var gotErr error
		r2.Lookup(v, func(d []string, _ int64, err error) { got, gotErr = d, err })
		f.Settle(15 * time.Second)
		if gotErr != nil {
			t.Fatalf("lookup %s after unit loss: %v", v, gotErr)
		}
		if len(got) != 3 {
			t.Fatalf("volume %s has %d fragments after repair", v, len(got))
		}
		for _, d := range got {
			if f.Topo.UnitOfDisk(d).ID == victim {
				t.Fatalf("volume %s still references dead unit disk %s", v, d)
			}
		}
	}
}

// A scheduler whose per-tick generation outruns its inflight cap must not
// fence the overflow tasks' volumes forever: every generated task launches,
// so finish() always unfences.
func TestSchedulerSaturationStillDrains(t *testing.T) {
	cfg := testConfig()
	cfg.Scheduler.MaxInflight = 1
	cfg.Scheduler.TasksPerTick = 4
	f := boot(t, cfg)
	r := f.NewRouter("c1")
	for i := 0; i < 16; i++ {
		mustAlloc(t, f, r, fmt.Sprintf("vol-%04d", i))
	}

	const victim = "u000"
	f.KillUnit(victim)
	f.Settle(6 * time.Minute)

	if !f.Drained(victim) {
		t.Fatalf("saturated scheduler never drained %s (tasks fenced but not launched)", victim)
	}
	for k := 0; k < f.Cfg.Shards; k++ {
		if m := f.Leader(k); m != nil && len(m.sch.pendingVol) != 0 {
			t.Fatalf("shard %d still fences %d volumes after repairs settled", k, len(m.sch.pendingVol))
		}
	}
	checkInvariants(t, f)
}

func TestDiskFailureRepairsAroundIt(t *testing.T) {
	f := boot(t, testConfig())
	r := f.NewRouter("c1")
	disks := mustAlloc(t, f, r, "vol-0001")

	f.FailDisk(disks[0])
	f.Settle(2 * time.Minute)

	var got []string
	r.Lookup("vol-0001", func(d []string, _ int64, err error) {
		if err != nil {
			t.Fatalf("lookup: %v", err)
		}
		got = d
	})
	f.Settle(10 * time.Second)
	for _, d := range got {
		if d == disks[0] {
			t.Fatalf("fragment still on failed disk %s", d)
		}
	}
	if len(got) != 3 {
		t.Fatalf("%d fragments after repair", len(got))
	}
	checkInvariants(t, f)
}

func TestDrainDiskMovesFragmentsOff(t *testing.T) {
	f := boot(t, testConfig())
	r := f.NewRouter("c1")
	disks := mustAlloc(t, f, r, "vol-0001")

	f.DrainDisk(disks[1])
	f.Settle(2 * time.Minute)

	var got []string
	r.Lookup("vol-0001", func(d []string, _ int64, err error) {
		if err != nil {
			t.Fatalf("lookup: %v", err)
		}
		got = d
	})
	f.Settle(10 * time.Second)
	for _, d := range got {
		if d == disks[1] {
			t.Fatalf("fragment still on draining disk %s", d)
		}
	}
	checkInvariants(t, f)
}

func TestSlotMoveStaleRetryAndMigration(t *testing.T) {
	f := boot(t, testConfig())
	r := f.NewRouter("c1")
	const vol = "vol-move"
	orig := mustAlloc(t, f, r, vol)
	slot := SlotOf(vol)
	src := f.AuthMap().Slots[slot]
	dst := 1 - src

	var moveErr error
	moved := false
	f.MoveSlot(slot, dst, func(err error) { moved, moveErr = true, err })
	f.Settle(30 * time.Second)
	if !moved || moveErr != nil {
		t.Fatalf("slot move: moved=%v err=%v", moved, moveErr)
	}
	if got := f.AuthMap().Epoch; got != 2 {
		t.Fatalf("map epoch = %d, want 2", got)
	}
	if err := f.ValidateShardMap(); err != nil {
		t.Fatalf("shard-map invariant after move: %v", err)
	}

	// The stale router must be redirected and repaired in one lookup.
	if r.MapEpoch() != 1 {
		t.Fatalf("router unexpectedly refreshed early: epoch %d", r.MapEpoch())
	}
	var got []string
	r.Lookup(vol, func(d []string, _ int64, err error) {
		if err != nil {
			t.Fatalf("lookup across move: %v", err)
		}
		got = d
	})
	f.Settle(15 * time.Second)
	// The destination's scheduler may already have migrated the fragments
	// home, so only redundancy (not disk identity) is stable here.
	if len(got) != len(orig) {
		t.Fatalf("lookup after move: %v, want %d fragments", got, len(orig))
	}
	if r.MapEpoch() != 2 {
		t.Fatalf("router did not install the new map: epoch %d", r.MapEpoch())
	}

	// The new owner's scheduler migrates the fragments home and the source
	// shard's export ledger empties.
	f.Settle(3 * time.Minute)
	checkInvariants(t, f)
	dstLeader := f.Leader(dst)
	rec, ok := dstLeader.vols[vol]
	if !ok {
		t.Fatalf("volume missing at destination shard %d", dst)
	}
	for _, d := range rec.Disks {
		if u := f.Topo.UnitOfDisk(d); u.Shard != dst {
			t.Fatalf("fragment %s still on shard %d's unit after migration", d, u.Shard)
		}
	}
	if srcLeader := f.Leader(src); len(srcLeader.exports) != 0 {
		t.Fatalf("source shard still has %d export entries", len(srcLeader.exports))
	}
}

// summary renders the observable end state of a run for byte-stability
// comparison.
func summary(f *Fleet) string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch=%d vols=%d fired=%d\n", f.AuthMap().Epoch, f.VolumeCount(), f.Sched.Fired())
	for k := 0; k < f.Cfg.Shards; k++ {
		m := f.Leader(k)
		if m == nil {
			fmt.Fprintf(&b, "shard %d: no leader\n", k)
			continue
		}
		ids := make([]string, 0, len(m.vols))
		for id := range m.vols {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Fprintf(&b, "shard %d leader=%s vols=%d\n", k, m.Name(), len(ids))
		for _, id := range ids {
			fmt.Fprintf(&b, "  %s -> %s\n", id, strings.Join(m.vols[id].Disks, ","))
		}
	}
	return b.String()
}

// scenario runs a fixed boot/allocate/kill/repair sequence and returns its
// summary.
func scenario(t *testing.T) string {
	t.Helper()
	f := boot(t, testConfig())
	r := f.NewRouter("c1")
	for i := 0; i < 12; i++ {
		mustAlloc(t, f, r, fmt.Sprintf("vol-%04d", i))
	}
	f.KillUnit("u001")
	f.Settle(3 * time.Minute)
	return summary(f)
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := scenario(t)
	b := scenario(t)
	if a != b {
		t.Fatalf("same seed diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Units != 8 || c.Shards != 1 || c.ShardReplicas != 3 || c.Replicas != 3 {
		t.Fatalf("defaults: %+v", c)
	}
	if c.SpreadLevel != placement.LevelUnit {
		t.Fatalf("default spread level = %v", c.SpreadLevel)
	}
	if c.MaxSpinningPerUnit != c.HostsPerUnit*c.DisksPerHost/2 {
		t.Fatalf("default spin budget = %d", c.MaxSpinningPerUnit)
	}
	if c.Scheduler.Tick <= 0 || c.Scheduler.MaxInflight <= 0 {
		t.Fatalf("scheduler defaults missing: %+v", c.Scheduler)
	}
}
