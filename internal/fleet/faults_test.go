package fleet

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// leadingReplicas counts replicas of shard k that believe they lead (split
// brain shows up as >1 here, since believers are inspected directly).
func leadingReplicas(f *Fleet, k int) int {
	n := 0
	for _, m := range f.Shards[k] {
		if m.leading && !m.down {
			n++
		}
	}
	return n
}

// TestCrashRestartReelection crash-stops a shard leader, waits for a
// survivor to take over, restarts the crashed replica, and proves it rejoins
// the group cleanly: one leader, working allocations, invariants intact, and
// the restarted replica able to win leadership again when the new leader
// crashes in turn.
func TestCrashRestartReelection(t *testing.T) {
	f := boot(t, testConfig())
	r := f.NewRouter("c1")
	mustAlloc(t, f, r, "vol-0001")

	old := f.LeaderReplica(0)
	if old < 0 {
		t.Fatal("shard 0 leaderless after boot")
	}
	f.CrashReplica(0, old)
	if !f.ReplicaDown(0, old) {
		t.Fatal("crashed replica not marked down")
	}
	// Session TTL (10s) + election; give it a comfortable margin.
	f.Settle(45 * time.Second)
	next := f.LeaderReplica(0)
	if next < 0 {
		t.Fatal("no survivor took over shard 0 leadership")
	}
	if next == old {
		t.Fatalf("crashed replica %d still believed leader", old)
	}
	mustAlloc(t, f, r, "vol-0002")

	f.RestartReplica(0, old)
	if f.ReplicaDown(0, old) {
		t.Fatal("restarted replica still marked down")
	}
	f.Settle(45 * time.Second)
	if n := leadingReplicas(f, 0); n != 1 {
		t.Fatalf("%d replicas believe they lead shard 0 after restart, want 1", n)
	}
	checkInvariants(t, f)

	// The restarted replica must be a full member again: crash the current
	// leader and the group (now old + the third replica) must elect one.
	f.CrashReplica(0, next)
	f.Settle(45 * time.Second)
	third := f.LeaderReplica(0)
	if third < 0 || third == next {
		t.Fatalf("no failover after second crash: leader replica %d", third)
	}
	mustAlloc(t, f, r, "vol-0003")
	f.RestartReplica(0, next)
	f.Settle(45 * time.Second)
	if n := leadingReplicas(f, 0); n != 1 {
		t.Fatalf("%d leaders after second restart, want 1", n)
	}
	checkInvariants(t, f)
}

// TestRouterRotationWithPartitionedLeader is the rotation-guard regression
// test for the partition case: the believed leader's unit is ISOLATED, not
// crashed — the stale leader keeps running behind the partition while the
// survivors elect a new one. N concurrent lookups through ONE router all
// time out against the unreachable replica and must not collectively wrap
// the believed index back onto it (N ≡ 0 mod replicas); every lookup must
// land on the new leader within the retry budget.
func TestRouterRotationWithPartitionedLeader(t *testing.T) {
	f := boot(t, testConfig())
	r := f.NewRouter("c1")

	// Allocate 6 volumes that all route to shard 0 (6 ≡ 0 mod 3 replicas —
	// the wrap case the guard exists for).
	var vols []string
	for i := 0; len(vols) < 6; i++ {
		v := fmt.Sprintf("vol-%04d", i)
		if f.AuthMap().ShardOf(v) != 0 {
			continue
		}
		mustAlloc(t, f, r, v)
		vols = append(vols, v)
	}

	lead := f.LeaderReplica(0)
	if lead < 0 {
		t.Fatal("shard 0 leaderless")
	}
	f.IsolateUnit(f.ReplicaUnit(0, lead))
	// Let the survivors notice the lapsed session and elect; the isolated
	// replica still believes it leads behind the partition.
	f.Settle(45 * time.Second)
	next := f.LeaderReplica(0)
	if next < 0 || next == lead {
		t.Fatalf("no reachable leader elected: replica %d (isolated %d)", next, lead)
	}
	if !f.Shards[0][lead].leading {
		t.Log("isolated replica already self-demoted; rotation still exercised via timeouts")
	}

	// All 6 lookups in flight at once through the single stale router.
	okCount, errCount := 0, 0
	for _, v := range vols {
		v := v
		r.Lookup(v, func(disks []string, _ int64, err error) {
			if err != nil || len(disks) == 0 {
				errCount++
				t.Logf("lookup %s: disks=%v err=%v", v, disks, err)
				return
			}
			okCount++
		})
	}
	f.Settle(3 * time.Minute)
	if okCount != len(vols) || errCount != 0 {
		t.Fatalf("%d/%d concurrent lookups succeeded (%d failed) with believed leader partitioned",
			okCount, len(vols), errCount)
	}

	f.RejoinUnit(f.ReplicaUnit(0, lead))
	f.Settle(45 * time.Second)
	if n := leadingReplicas(f, 0); n != 1 {
		t.Fatalf("%d leaders after heal, want 1", n)
	}
	checkInvariants(t, f)
}

// TestRouterUnavailableOnQuorumLoss pins the degradation contract: with a
// shard's quorum gone (2 of 3 replicas crashed), an operation routed to it
// must exhaust the retry budget and surface the typed ErrShardUnavailable —
// detectable with errors.Is, never a hang or an anonymous error. After the
// replicas restart, the same router must work again.
func TestRouterUnavailableOnQuorumLoss(t *testing.T) {
	f := boot(t, testConfig())
	r := f.NewRouter("c1")

	// A volume owned by shard 0.
	vol := ""
	for i := 0; ; i++ {
		v := fmt.Sprintf("vol-%04d", i)
		if f.AuthMap().ShardOf(v) == 0 {
			vol = v
			break
		}
	}

	lead := f.LeaderReplica(0)
	f.CrashReplica(0, lead)
	f.CrashReplica(0, (lead+1)%f.Cfg.ShardReplicas)
	f.Settle(30 * time.Second) // sessions lapse; the survivor cannot win alone

	var gotErr error
	fired := false
	r.Allocate(vol, volSize, "svc-archive", func(_ []string, err error) {
		fired, gotErr = true, err
	})
	// 40 attempts x (3s RPC timeout + retry delay): give the budget room to
	// exhaust fully.
	f.Settle(5 * time.Minute)
	if !fired {
		t.Fatal("allocate against a quorumless shard hung instead of degrading")
	}
	if !errors.Is(gotErr, ErrShardUnavailable) {
		t.Fatalf("want ErrShardUnavailable via errors.Is, got %v", gotErr)
	}

	f.RestartReplica(0, lead)
	f.RestartReplica(0, (lead+1)%f.Cfg.ShardReplicas)
	f.Settle(45 * time.Second)
	mustAlloc(t, f, r, vol)
	checkInvariants(t, f)
}

// TestSchedulerFencingStaleEpoch is the direct fencing check: a task
// completion carrying an epoch older than the scheduler's current one must
// be a complete no-op — no inflight decrement, no volume unfence, no state
// mutation. (Epochs advance on every start(), i.e. every leadership
// acquisition.)
func TestSchedulerFencingStaleEpoch(t *testing.T) {
	f := boot(t, testConfig())
	m := f.Leader(0)
	sch := m.sch

	sch.inflight++
	sch.pendingVol["ghost"] = true
	before := sch.inflight

	sch.finish(task{kind: taskRepair, volume: "ghost"}, sch.epoch-1)
	if sch.inflight != before {
		t.Fatalf("stale-epoch finish touched inflight: %d -> %d", before, sch.inflight)
	}
	if !sch.pendingVol["ghost"] {
		t.Fatal("stale-epoch finish unfenced the volume")
	}

	// The same completion at the current epoch applies normally.
	sch.finish(task{kind: taskRepair, volume: "ghost"}, sch.epoch)
	if sch.inflight != before-1 {
		t.Fatalf("current-epoch finish did not decrement inflight: %d", sch.inflight)
	}
	if sch.pendingVol["ghost"] {
		t.Fatal("current-epoch finish left the volume fenced")
	}
}

// TestSchedulerFencingAcrossFailover is the end-to-end fencing test: a
// repair task launched under scheduler epoch N is still copying when its
// leader crashes and restarts; the replica re-campaigns, leadership (epoch
// N+1) restarts the scheduler, and the stale completion from epoch N fires
// into the new regime. The fence must swallow it — the repair re-runs under
// the new epoch and the capacity ledger stays exact (a double-applied
// completion would double-place fragments and trip ValidateCapacity).
func TestSchedulerFencingAcrossFailover(t *testing.T) {
	cfg := testConfig()
	// ~64 MiB per fragment at 1 MB/s: each repair copy takes over a minute,
	// so the crash below is guaranteed to land mid-task.
	cfg.Scheduler.RepairBytesPerSec = 1e6
	f := boot(t, cfg)
	r := f.NewRouter("c1")
	disks := mustAlloc(t, f, r, "vol-0000")

	// Fail a fragment disk; the owning shard's scheduler starts a slow copy.
	victim := disks[0]
	owner := f.Topo.UnitOfDisk(victim).Shard
	f.FailDisk(victim)
	lead := f.LeaderReplica(owner)
	m := f.Shards[owner][lead]
	epochBefore := m.sch.epoch
	if !settleUntilTest(f, 2*time.Second, time.Minute, func() bool { return m.sch.inflight > 0 }) {
		t.Fatal("repair task never launched")
	}

	// Crash the leader mid-copy and restart it quickly (inside the session
	// TTL), so the same replica can win the next election and its own stale
	// completion fires into its own fresh epoch.
	f.CrashReplica(owner, lead)
	f.Settle(2 * time.Second)
	f.RestartReplica(owner, lead)
	f.Settle(2 * time.Minute)

	if n := leadingReplicas(f, owner); n != 1 {
		t.Fatalf("%d leaders on shard %d after failover", n, owner)
	}
	if cur := f.LeaderReplica(owner); cur == lead && m.sch.epoch <= epochBefore {
		t.Fatalf("replica %d re-elected but scheduler epoch did not advance (%d)",
			lead, m.sch.epoch)
	}

	// The repair must complete under the new epoch with exact books.
	if !settleUntilTest(f, 10*time.Second, 10*time.Minute, func() bool {
		ml := f.Leader(owner)
		if ml == nil {
			return false
		}
		rec, ok := ml.vols["vol-0000"]
		if !ok {
			return false
		}
		for _, d := range rec.Disks {
			if d == victim {
				return false
			}
		}
		return true
	}) {
		t.Fatal("repair never completed after failover")
	}
	checkInvariants(t, f)
}

// settleUntilTest advances the fleet in fixed steps until done() or the
// budget runs out.
func settleUntilTest(f *Fleet, step, max time.Duration, done func() bool) bool {
	for elapsed := time.Duration(0); ; elapsed += step {
		if done() {
			return true
		}
		if elapsed >= max {
			return false
		}
		f.Settle(step)
	}
}
