package fleet

import (
	"errors"
	"fmt"
	"time"

	"ustore/internal/obs"
	"ustore/internal/simnet"
)

// Router is the client-side shard resolver: it caches a ShardMap, hashes
// volumes to slots, and calls the owning shard's believed leader. Replies
// repair its state: NotLeader rotates the believed replica, Stale installs
// the attached newer map and retries, Busy (a slot frozen mid-migration)
// backs off and retries.
type Router struct {
	f    *Fleet
	name string
	rpc  *simnet.RPCNode

	map_ *ShardMap
	// believed[k] indexes the replica last known to lead shard k.
	believed []int

	cStale   *obs.Counter
	cRotates *obs.Counter
	cRetries *obs.Counter
}

// routerAttempts bounds one logical operation's total tries across
// timeouts, leader rotations, map refreshes and migration waits.
const routerAttempts = 40

// ErrShardUnavailable reports that the owning shard could not serve an
// operation within the router's retry budget — quorum loss, a partition
// between the client and every replica, or sustained leaderlessness. It is
// the router's degradation contract: callers get a typed failure to count
// or surface instead of an RPC that hangs forever. Test with errors.Is.
var ErrShardUnavailable = errors.New("fleet: shard unavailable")

func newRouter(f *Fleet, name string) *Router {
	r := &Router{
		f:        f,
		name:     name,
		rpc:      simnet.NewRPCNode(f.Net, "cl:"+name),
		map_:     f.authMap.Clone(),
		believed: make([]int, f.Cfg.Shards),
	}
	rec := f.rec
	r.cStale = rec.Counter("fleet", "router_stale_retries_total")
	r.cRotates = rec.Counter("fleet", "router_leader_rotations_total")
	r.cRetries = rec.Counter("fleet", "router_retries_total")
	return r
}

// MapEpoch returns the cached map's epoch (tests observe stale-retry
// repair through it).
func (r *Router) MapEpoch() int64 { return r.map_.Epoch }

// Allocate places a volume through the owning shard.
func (r *Router) Allocate(volume string, size int64, service string, done func(disks []string, err error)) {
	r.do("Allocate", volume, AllocateArgs{Volume: volume, Size: size, Service: service},
		func(res any, err error) {
			if err != nil {
				done(nil, err)
				return
			}
			done(res.(AllocateReply).Disks, nil)
		})
}

// Lookup resolves a volume's fragment disks.
func (r *Router) Lookup(volume string, done func(disks []string, size int64, err error)) {
	r.do("Lookup", volume, LookupArgs{Volume: volume}, func(res any, err error) {
		if err != nil {
			done(nil, 0, err)
			return
		}
		rep := res.(LookupReply)
		done(rep.Disks, rep.Size, nil)
	})
}

// Release frees a volume.
func (r *Router) Release(volume string, done func(err error)) {
	r.do("Release", volume, ReleaseArgs{Volume: volume}, func(_ any, err error) {
		done(err)
	})
}

// installMap adopts a newer map from a Stale reply.
func (r *Router) installMap(m *ShardMap) {
	if m != nil && m.Epoch > r.map_.Epoch {
		r.map_ = m.Clone()
		if len(r.believed) < len(r.map_.Replicas) {
			grown := make([]int, len(r.map_.Replicas))
			copy(grown, r.believed)
			r.believed = grown
		}
	}
}

func (r *Router) do(method, volume string, args any, done func(res any, err error)) {
	r.attempt(method, volume, args, routerAttempts, done)
}

// backoff turns a base retry delay into full-jitter exponential backoff
// when Cfg.RetryJitter is set: uniform in [0, base<<tried), capped at 2s.
// (AWS-style full jitter: the spread is what breaks up the synchronized
// retry waves a fleet of fixed-delay clients sends a recovering leader.)
// With jitter off it returns base unchanged — the legacy schedule the
// checked-in byte-stability goldens were recorded under. Draws come from
// the router's home-partition scheduler RNG, so jittered runs stay
// deterministic per seed at any engine worker count.
func (r *Router) backoff(base time.Duration, tried int) time.Duration {
	if !r.f.Cfg.RetryJitter || base <= 0 {
		return base
	}
	const cap = 2 * time.Second
	if tried > 8 {
		tried = 8
	}
	ceil := base << tried
	if ceil > cap {
		ceil = cap
	}
	return time.Duration(r.f.Sched.Rand().Int63n(int64(ceil)))
}

func (r *Router) attempt(method, volume string, args any, left int, done func(res any, err error)) {
	if left <= 0 {
		done(nil, fmt.Errorf("%w: %s %s: %d retries exhausted",
			ErrShardUnavailable, method, volume, routerAttempts))
		return
	}
	again := func(delay time.Duration) {
		r.cRetries.Inc()
		delay = r.backoff(delay, routerAttempts-left)
		r.f.Sched.After(delay, func() { r.attempt(method, volume, args, left-1, done) })
	}
	shard := r.map_.ShardOf(volume)
	replicas := r.map_.Replicas[shard]
	idx := r.believed[shard] % len(replicas)
	target := replicas[idx]
	// rotate advances the believed leader past this attempt's replica —
	// but only if a concurrent attempt hasn't already moved it. N in-flight
	// ops would otherwise each rotate once and collectively wrap the index
	// back onto the same stale replica (N ≡ 0 mod len), livelocking every
	// retry on a follower or a dead node.
	rotate := func() {
		if r.believed[shard] == idx {
			r.believed[shard] = (idx + 1) % len(replicas)
		}
		r.cRotates.Inc()
	}
	r.rpc.Call(target, method, args, 192, r.f.Cfg.RPCTimeout, func(res any, err error) {
		if err != nil {
			if errors.Is(err, simnet.ErrTimeout) {
				rotate()
				again(50 * time.Millisecond)
				return
			}
			done(nil, err)
			return
		}
		sr := res.(shardReplier).common()
		switch {
		case sr.OK:
			done(res, nil)
		case sr.NotLeader:
			rotate()
			again(50 * time.Millisecond)
		case sr.Stale:
			r.cStale.Inc()
			r.installMap(sr.Map)
			again(0)
		case sr.Busy:
			again(200 * time.Millisecond)
		default:
			done(nil, fmt.Errorf("fleet: %s %s: %s", method, volume, sr.Err))
		}
	})
}
