package fleet

import (
	"sort"

	"ustore/internal/obs"
)

// Transient fault verbs for the fleet control plane. Unlike KillUnit (a
// permanent loss the scheduler must drain around), these model the gray
// zone real metadata services live in: a shard replica process crashes and
// later restarts from its durable /vol /exp /map /frozen state, or the
// network between two deploy units tears and later heals.
//
// In engine mode every verb must be applied at engine quiescence (between
// Settle calls): they mutate per-partition component state and the fabric's
// cut table, both of which are only safe to touch while no window runs.
// The chaos fault executor guarantees this by construction.

// CrashReplica crash-stops replica i of shard k: its coord store and paxos
// node go silent, its RPC endpoint drops traffic, its election session
// lapses (so the group elects a survivor after the TTL), and any queued ops
// flush. A no-op if the replica is already down or its unit was killed.
func (f *Fleet) CrashReplica(k, i int) {
	if k < 0 || k >= f.Cfg.Shards || i < 0 || i >= f.Cfg.ShardReplicas {
		return
	}
	m := f.Shards[k][i]
	if m.down || f.deadUnits[unitName(f.Cfg.replicaUnit(k, i))] {
		return
	}
	f.Stores[k][i].Stop()
	m.crash()
	if m.rec != nil {
		m.rec.Instant("fleet", "replica-crash", "fleet", obs.L("replica", m.name))
	}
}

// RestartReplica restarts a crashed replica: the coord store and paxos node
// resume (catching up the chosen log from peers' heartbeats), leader soft
// state stays discarded until a future election rebuilds it from the
// replicated tree, and the replica campaigns again under a fresh
// incarnation-stamped election session. A no-op unless the replica is down,
// and never revives a killed unit's replica.
func (f *Fleet) RestartReplica(k, i int) {
	if k < 0 || k >= f.Cfg.Shards || i < 0 || i >= f.Cfg.ShardReplicas {
		return
	}
	m := f.Shards[k][i]
	if !m.down || f.deadUnits[unitName(f.Cfg.replicaUnit(k, i))] {
		return
	}
	f.Stores[k][i].Resume()
	m.restart()
	if m.rec != nil {
		m.rec.Instant("fleet", "replica-restart", "fleet", obs.L("replica", m.name))
	}
}

// PartitionUnits cuts the network between two deploy units in both
// directions: shard-replica paxos traffic, cross-unit agent heartbeats, and
// anything else flowing between the two machines drops. Traffic to third
// units and to the control plane (routers, admin) is unaffected — use
// IsolateUnit for a full uplink loss.
func (f *Fleet) PartitionUnits(a, b int) {
	if a == b || a < 0 || b < 0 || a >= f.Cfg.Units || b >= f.Cfg.Units {
		return
	}
	ma, mb := unitMachine(unitName(a)), unitMachine(unitName(b))
	if f.Engine != nil {
		// Units live on distinct partitions, so all their mutual traffic
		// crosses the fabric.
		f.Fabric.CutMachines(ma, mb)
	} else {
		f.Net.CutMachines(ma, mb)
	}
	if f.rec != nil {
		f.rec.Instant("fleet", "units-partitioned", "fleet",
			obs.L("a", unitName(a)), obs.L("b", unitName(b)))
	}
}

// HealPartition restores the link a PartitionUnits cut.
func (f *Fleet) HealPartition(a, b int) {
	if a == b || a < 0 || b < 0 || a >= f.Cfg.Units || b >= f.Cfg.Units {
		return
	}
	ma, mb := unitMachine(unitName(a)), unitMachine(unitName(b))
	if f.Engine != nil {
		f.Fabric.HealMachines(ma, mb)
	} else {
		f.Net.HealMachines(ma, mb)
	}
	if f.rec != nil {
		f.rec.Instant("fleet", "units-healed", "fleet",
			obs.L("a", unitName(a)), obs.L("b", unitName(b)))
	}
}

// IsolateUnit unplugs a deploy unit's uplink without killing its processes:
// every message to or from the unit's machine drops until RejoinUnit. The
// partitioned replicas keep running — a partitioned believed leader still
// answers its own election pings locally, which is exactly the case the
// router's rotation guard must survive.
func (f *Fleet) IsolateUnit(u int) {
	if u < 0 || u >= f.Cfg.Units {
		return
	}
	f.unitPart(u).net.IsolateMachine(unitMachine(unitName(u)))
	if f.rec != nil {
		f.rec.Instant("fleet", "unit-isolated", "fleet", obs.L("unit", unitName(u)))
	}
}

// RejoinUnit restores an isolated unit's uplink.
func (f *Fleet) RejoinUnit(u int) {
	if u < 0 || u >= f.Cfg.Units || f.deadUnits[unitName(u)] {
		return
	}
	f.unitPart(u).net.RejoinMachine(unitMachine(unitName(u)))
	if f.rec != nil {
		f.rec.Instant("fleet", "unit-rejoined", "fleet", obs.L("unit", unitName(u)))
	}
}

// LeaderReplica returns the replica index currently leading shard k, or -1
// if the group is between leaders. Test/chaos introspection: in engine mode
// call only at quiescence.
func (f *Fleet) LeaderReplica(k int) int {
	for i, m := range f.Shards[k] {
		if m.leading && !m.down {
			return i
		}
	}
	return -1
}

// ReplicaUnit returns the deploy unit replica i of shard k runs on.
func (f *Fleet) ReplicaUnit(k, i int) int { return f.Cfg.replicaUnit(k, i) }

// ReplicaDown reports whether replica i of shard k is currently crashed.
func (f *Fleet) ReplicaDown(k, i int) bool { return f.Shards[k][i].down }

// PendingMoves returns the slot migrations started but not yet completed
// (slot -> destination shard), sorted by slot.
func (f *Fleet) PendingMoves() [][2]int {
	slots := make([]int, 0, len(f.pendingMoves))
	for s := range f.pendingMoves {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	out := make([][2]int, len(slots))
	for i, s := range slots {
		out[i] = [2]int{s, f.pendingMoves[s]}
	}
	return out
}
