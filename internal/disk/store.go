package disk

import (
	"hash/crc32"
	"sort"
)

// Store is a sparse in-memory byte store backing a simulated disk's data
// plane. Unwritten regions read as zero, like a fresh drive. Chunks are
// allocated lazily so simulating a 3TB disk costs memory proportional only
// to the bytes actually written.
//
// Alongside the data plane the store keeps an out-of-band checksum sidecar
// (SetBlockCRC/BlockCRC), modelling the per-sector ECC/metadata area real
// drives reserve next to each sector: it travels with the platters when a
// disk is re-cabled to another host, and it is NOT damaged by CorruptAt —
// which is exactly what makes silent bit rot detectable.
type Store struct {
	chunks map[int64][]byte
	crcs   map[int64]uint32
}

// chunkSize is the allocation granularity of the sparse store.
const chunkSize = 64 * 1024

// ChunkSize exposes the sparse-allocation granularity (also the unit the
// checksum sidecar is keyed by).
const ChunkSize = chunkSize

// NewStore returns an empty sparse store.
func NewStore() *Store {
	return &Store{
		chunks: make(map[int64][]byte),
		crcs:   make(map[int64]uint32),
	}
}

// WriteAt copies data into the store at off.
func (s *Store) WriteAt(off int64, data []byte) {
	for len(data) > 0 {
		ci := off / chunkSize
		co := off % chunkSize
		c, ok := s.chunks[ci]
		if !ok {
			c = make([]byte, chunkSize)
			s.chunks[ci] = c
		}
		n := copy(c[co:], data)
		data = data[n:]
		off += int64(n)
	}
}

// ReadAt returns size bytes starting at off. Holes read as zeros.
func (s *Store) ReadAt(off int64, size int) []byte {
	out := make([]byte, size)
	p := out
	for len(p) > 0 {
		ci := off / chunkSize
		co := off % chunkSize
		n := chunkSize - int(co)
		if n > len(p) {
			n = len(p)
		}
		if c, ok := s.chunks[ci]; ok {
			copy(p[:n], c[co:])
		}
		p = p[n:]
		off += int64(n)
	}
	return out
}

// BytesAllocated returns the memory footprint of written chunks.
func (s *Store) BytesAllocated() int64 {
	return int64(len(s.chunks)) * chunkSize
}

// CorruptAt flips bits in n bytes starting at off by XOR-ing mask into the
// stored data (mask must be nonzero to actually corrupt). It models silent
// media corruption: the data plane changes, the checksum sidecar does not.
// Corrupting a hole materializes the chunk, as a real flipped sector would.
func (s *Store) CorruptAt(off int64, n int, mask byte) {
	if mask == 0 {
		mask = 0xff
	}
	for ; n > 0; n-- {
		ci := off / chunkSize
		co := off % chunkSize
		c, ok := s.chunks[ci]
		if !ok {
			c = make([]byte, chunkSize)
			s.chunks[ci] = c
		}
		c[co] ^= mask
		off++
	}
}

// zeroChunkCRC is the CRC32 of an all-zero chunk, so holes can be hashed
// without materializing 64KB of zeros.
var zeroChunkCRC = crc32.ChecksumIEEE(make([]byte, chunkSize))

// ChunkCRC returns the CRC32 (IEEE) of the chunk-aligned block idx, computed
// directly over the store's backing memory with no copy. Holes hash as all
// zeros, matching what ReadAt would return for them.
func (s *Store) ChunkCRC(idx int64) uint32 {
	if c, ok := s.chunks[idx]; ok {
		return crc32.ChecksumIEEE(c)
	}
	return zeroChunkCRC
}

// SetBlockCRC records the checksum for the chunk-aligned block with index
// idx (byte offset idx*ChunkSize) in the out-of-band sidecar.
func (s *Store) SetBlockCRC(idx int64, crc uint32) {
	s.crcs[idx] = crc
}

// BlockCRC returns the recorded checksum for block idx and whether one has
// ever been written. Blocks without a recorded CRC are unverifiable (fresh
// or pre-checksum data).
func (s *Store) BlockCRC(idx int64) (uint32, bool) {
	crc, ok := s.crcs[idx]
	return crc, ok
}

// AllocatedChunkOffsets returns the byte offsets of all materialized chunks
// in ascending order. Sorting makes random-victim selection deterministic
// under a seeded RNG despite map iteration order.
func (s *Store) AllocatedChunkOffsets() []int64 {
	out := make([]int64, 0, len(s.chunks))
	for ci := range s.chunks {
		out = append(out, ci*chunkSize)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
