package disk

// Store is a sparse in-memory byte store backing a simulated disk's data
// plane. Unwritten regions read as zero, like a fresh drive. Chunks are
// allocated lazily so simulating a 3TB disk costs memory proportional only
// to the bytes actually written.
type Store struct {
	chunks map[int64][]byte
}

// chunkSize is the allocation granularity of the sparse store.
const chunkSize = 64 * 1024

// NewStore returns an empty sparse store.
func NewStore() *Store {
	return &Store{chunks: make(map[int64][]byte)}
}

// WriteAt copies data into the store at off.
func (s *Store) WriteAt(off int64, data []byte) {
	for len(data) > 0 {
		ci := off / chunkSize
		co := off % chunkSize
		c, ok := s.chunks[ci]
		if !ok {
			c = make([]byte, chunkSize)
			s.chunks[ci] = c
		}
		n := copy(c[co:], data)
		data = data[n:]
		off += int64(n)
	}
}

// ReadAt returns size bytes starting at off. Holes read as zeros.
func (s *Store) ReadAt(off int64, size int) []byte {
	out := make([]byte, size)
	p := out
	for len(p) > 0 {
		ci := off / chunkSize
		co := off % chunkSize
		n := chunkSize - int(co)
		if n > len(p) {
			n = len(p)
		}
		if c, ok := s.chunks[ci]; ok {
			copy(p[:n], c[co:])
		}
		p = p[n:]
		off += int64(n)
	}
	return out
}

// BytesAllocated returns the memory footprint of written chunks.
func (s *Store) BytesAllocated() int64 {
	return int64(len(s.chunks)) * chunkSize
}
