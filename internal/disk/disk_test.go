package disk

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ustore/internal/simtime"
)

func newDisk(t *testing.T) (*simtime.Scheduler, *Disk) {
	t.Helper()
	s := simtime.NewScheduler(1)
	d := New(s, "d0", DT01ACA300(), AttachSATA)
	d.SpinUp()
	s.Run()
	if d.State() != StateIdle {
		t.Fatalf("state after spin-up = %v, want idle", d.State())
	}
	return s, d
}

func TestServiceTimeMatchesTableIISpotChecks(t *testing.T) {
	p := DT01ACA300()
	// Spot-check that the calibrated model lands near the paper's Table II
	// single-op rates (tolerance 10%: the table also folds in Iometer
	// harness behaviour we reproduce in internal/workload).
	cases := []struct {
		name     string
		ic       Interconnect
		op       Op
		wantIOPS float64
		tol      float64
	}{
		{"SATA 4KB seq read", AttachSATA, Op{Read: true, Size: 4096, Pattern: Sequential}, 13378, 0.10},
		{"SATA 4KB seq write", AttachSATA, Op{Read: false, Size: 4096, Pattern: Sequential}, 11211, 0.10},
		{"USB 4KB seq read", AttachUSB, Op{Read: true, Size: 4096, Pattern: Sequential}, 5380, 0.10},
		{"USB 4KB seq write", AttachUSB, Op{Read: false, Size: 4096, Pattern: Sequential}, 6166, 0.10},
		{"H&S 4KB seq read", AttachFabric, Op{Read: true, Size: 4096, Pattern: Sequential}, 5381, 0.10},
		{"SATA 4KB rand read", AttachSATA, Op{Read: true, Size: 4096, Pattern: Random}, 191.9, 0.10},
		{"SATA 4KB rand write", AttachSATA, Op{Read: false, Size: 4096, Pattern: Random}, 86.9, 0.10},
	}
	for _, c := range cases {
		svc := p.ServiceTime(c.ic, c.op)
		iops := float64(time.Second) / float64(svc)
		lo, hi := c.wantIOPS*(1-c.tol), c.wantIOPS*(1+c.tol)
		if iops < lo || iops > hi {
			t.Errorf("%s: model %.1f IO/s, paper %.1f (tol %.0f%%)", c.name, iops, c.wantIOPS, c.tol*100)
		}
	}
}

func TestServiceTimeLargeSequentialHitsMediaRate(t *testing.T) {
	p := DT01ACA300()
	for _, ic := range []Interconnect{AttachSATA, AttachUSB, AttachFabric} {
		svc := p.ServiceTime(ic, Op{Read: true, Size: 4 << 20, Pattern: Sequential})
		mbps := float64(4<<20) / svc.Seconds() / 1e6
		if mbps < 175 || mbps > 195 {
			t.Errorf("%v 4MB seq read = %.1f MB/s, want ~185", ic, mbps)
		}
	}
}

func TestServiceTimeTurnaroundPenalty(t *testing.T) {
	p := DT01ACA300()
	base := p.ServiceTime(AttachSATA, Op{Read: true, Size: 4096, Pattern: Sequential})
	sw := p.ServiceTime(AttachSATA, Op{Read: true, Size: 4096, Pattern: Sequential, DirectionSwitch: true})
	if sw-base != p.Turnaround[AttachSATA] {
		t.Fatalf("turnaround delta = %v, want %v", sw-base, p.Turnaround[AttachSATA])
	}
}

func TestServiceTimePanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero-size op")
		}
	}()
	p := DT01ACA300()
	p.ServiceTime(AttachSATA, Op{Read: true, Size: 0})
}

func TestWriteThenReadRoundTrip(t *testing.T) {
	s, d := newDisk(t)
	payload := []byte("cold archival bytes")
	var readBack []byte
	d.Submit(&Request{
		Op: Op{Read: false, Size: len(payload), Pattern: Sequential}, Offset: 4096, Data: payload,
		Done: func(_ []byte, err error) {
			if err != nil {
				t.Errorf("write: %v", err)
			}
			d.Submit(&Request{
				Op: Op{Read: true, Size: len(payload), Pattern: Sequential}, Offset: 4096,
				Done: func(data []byte, err error) {
					if err != nil {
						t.Errorf("read: %v", err)
					}
					readBack = data
				},
			})
		},
	})
	s.Run()
	if !bytes.Equal(readBack, payload) {
		t.Fatalf("read back %q, want %q", readBack, payload)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	s, d := newDisk(t)
	var data []byte
	d.Submit(&Request{
		Op: Op{Read: true, Size: 128, Pattern: Random}, Offset: 1 << 30,
		Done: func(b []byte, err error) { data = b },
	})
	s.Run()
	if len(data) != 128 {
		t.Fatalf("len = %d", len(data))
	}
	for _, b := range data {
		if b != 0 {
			t.Fatal("unwritten region not zero")
		}
	}
}

func TestFIFOAndBusyAccounting(t *testing.T) {
	s, d := newDisk(t)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		d.Submit(&Request{
			Op: Op{Read: true, Size: 4096, Pattern: Sequential}, Offset: int64(i) * 4096,
			Done: func([]byte, error) { order = append(order, i) },
		})
	}
	if d.QueueDepth() != 5 {
		t.Fatalf("queue depth = %d", d.QueueDepth())
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order %v", order)
		}
	}
	if d.Completed() != 5 || d.BytesRead() != 5*4096 {
		t.Fatalf("completed=%d bytesRead=%d", d.Completed(), d.BytesRead())
	}
	wantBusy := 5 * d.Params().ServiceTime(AttachSATA, Op{Read: true, Size: 4096, Pattern: Sequential})
	if d.BusyTime() != wantBusy {
		t.Fatalf("busy = %v, want %v", d.BusyTime(), wantBusy)
	}
}

func TestOutOfRangeIO(t *testing.T) {
	s, d := newDisk(t)
	var gotErr error
	d.Submit(&Request{
		Op: Op{Read: true, Size: 4096, Pattern: Random}, Offset: d.Capacity() - 100,
		Done: func(_ []byte, err error) { gotErr = err },
	})
	s.Run()
	if !errors.Is(gotErr, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", gotErr)
	}
}

func TestAutoSpinUpOnSubmit(t *testing.T) {
	s := simtime.NewScheduler(1)
	d := New(s, "d0", DT01ACA300(), AttachSATA)
	if d.State() != StateSpunDown {
		t.Fatalf("new disk state = %v", d.State())
	}
	var doneAt simtime.Time
	d.Submit(&Request{
		Op: Op{Read: true, Size: 4096, Pattern: Sequential},
		Done: func([]byte, error) {
			doneAt = s.Now()
		},
	})
	s.Run()
	if doneAt < d.Params().SpinUpTime {
		t.Fatalf("IO completed at %v, before spin-up finished (%v)", doneAt, d.Params().SpinUpTime)
	}
	if d.SpinUpCount() != 1 {
		t.Fatalf("spin-ups = %d", d.SpinUpCount())
	}
}

func TestSpinDownOnlyWhenIdle(t *testing.T) {
	s, d := newDisk(t)
	d.Submit(&Request{Op: Op{Read: true, Size: 4 << 20, Pattern: Sequential}})
	d.SpinDown() // busy: must be ignored
	if d.State() == StateSpunDown {
		t.Fatal("spun down while busy")
	}
	s.Run()
	d.SpinDown()
	if d.State() != StateSpunDown {
		t.Fatalf("state = %v, want spun-down", d.State())
	}
}

func TestPowerOffFailsQueuedIO(t *testing.T) {
	s, d := newDisk(t)
	var errs []error
	for i := 0; i < 3; i++ {
		d.Submit(&Request{
			Op: Op{Read: true, Size: 4 << 20, Pattern: Sequential},
			Done: func(_ []byte, err error) {
				errs = append(errs, err)
			},
		})
	}
	d.PowerOff()
	s.Run()
	if len(errs) != 3 {
		t.Fatalf("callbacks = %d, want 3", len(errs))
	}
	for _, err := range errs {
		if !errors.Is(err, ErrPoweredOff) {
			t.Fatalf("err = %v", err)
		}
	}
	// Submits while off fail immediately.
	var offErr error
	d.Submit(&Request{Op: Op{Read: true, Size: 4096}, Done: func(_ []byte, err error) { offErr = err }})
	s.Run()
	if !errors.Is(offErr, ErrPoweredOff) {
		t.Fatalf("err = %v", offErr)
	}
	// PowerOn returns to spun-down; data survives (disks keep data when off).
	d.PowerOn()
	if d.State() != StateSpunDown {
		t.Fatalf("state after PowerOn = %v", d.State())
	}
}

func TestStateChangeObserver(t *testing.T) {
	s := simtime.NewScheduler(1)
	d := New(s, "d0", DT01ACA300(), AttachSATA)
	var transitions []State
	d.OnStateChange(func(old, new State) { transitions = append(transitions, new) })
	d.SpinUp()
	s.Run()
	d.Submit(&Request{Op: Op{Read: true, Size: 4096, Pattern: Sequential}})
	s.Run()
	want := []State{StateSpinningUp, StateIdle, StateActive, StateIdle}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestPowerByState(t *testing.T) {
	p := DT01ACA300()
	if p.Power(StatePoweredOff) != 0 {
		t.Fatal("off draw != 0")
	}
	if p.Power(StateSpunDown) != 0.05 || p.Power(StateIdle) != 4.71 || p.Power(StateActive) != 6.66 {
		t.Fatalf("power = %v/%v/%v, want Table III SATA row", p.Power(StateSpunDown), p.Power(StateIdle), p.Power(StateActive))
	}
}

func TestIdleSince(t *testing.T) {
	s, d := newDisk(t)
	d.Submit(&Request{Op: Op{Read: true, Size: 4096, Pattern: Sequential}})
	s.Run()
	at, idle := d.IdleSince()
	if !idle {
		t.Fatal("not idle after queue drained")
	}
	if at != s.Now() {
		t.Fatalf("idle since %v, want %v", at, s.Now())
	}
}

// Property: the sparse store behaves exactly like a flat byte array for any
// sequence of writes and reads within a window.
func TestPropertyStoreMatchesFlatArray(t *testing.T) {
	const window = 1 << 20
	type wr struct {
		Off  uint32
		Data []byte
	}
	f := func(writes []wr, readOff uint32, readLen uint16) bool {
		st := NewStore()
		ref := make([]byte, window)
		for _, w := range writes {
			off := int64(w.Off % window)
			data := w.Data
			if int(off)+len(data) > window {
				data = data[:window-int(off)]
			}
			st.WriteAt(off, data)
			copy(ref[off:], data)
		}
		ro := int64(readOff % window)
		rl := int(readLen)
		if int(ro)+rl > window {
			rl = window - int(ro)
		}
		got := st.ReadAt(ro, rl)
		return bytes.Equal(got, ref[ro:int(ro)+rl])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any op, the fabric path (H&S) is never faster than the bare
// bridge (USB), and the bridge is never faster than SATA for reads.
func TestPropertyInterconnectOrdering(t *testing.T) {
	p := DT01ACA300()
	f := func(sizeKB uint8, read, random bool) bool {
		size := (int(sizeKB) + 1) * 1024
		pat := Sequential
		if random {
			pat = Random
		}
		op := Op{Read: read, Size: size, Pattern: pat}
		sata := p.ServiceTime(AttachSATA, op)
		usb := p.ServiceTime(AttachUSB, op)
		hs := p.ServiceTime(AttachFabric, op)
		return hs >= usb && usb >= sata
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}
