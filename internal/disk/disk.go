package disk

import (
	"errors"
	"fmt"
	"time"

	"ustore/internal/obs"
	"ustore/internal/simtime"
)

// State is the power/availability state of a disk.
type State int

const (
	// StatePoweredOff means the 12V rail is cut (fabric power relay open).
	StatePoweredOff State = iota
	// StateSpunDown means powered but platters stopped.
	StateSpunDown
	// StateSpinningUp means the motor is starting; IO waits.
	StateSpinningUp
	// StateIdle means ready with no IO in progress.
	StateIdle
	// StateActive means an IO is being serviced.
	StateActive
)

// String returns a short state label.
func (s State) String() string {
	switch s {
	case StatePoweredOff:
		return "off"
	case StateSpunDown:
		return "spun-down"
	case StateSpinningUp:
		return "spinning-up"
	case StateIdle:
		return "idle"
	case StateActive:
		return "active"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Errors returned by Disk operations.
var (
	// ErrPoweredOff is returned for IO submitted to a disk with no power.
	ErrPoweredOff = errors.New("disk: powered off")
	// ErrOutOfRange is returned for IO beyond the disk capacity.
	ErrOutOfRange = errors.New("disk: offset+size out of range")
	// ErrIO is a transient medium/controller error (Gray & van Ingen's
	// "controller stall" class): the command was accepted, service time was
	// paid, and the completion reports failure. Retrying may succeed.
	ErrIO = errors.New("disk: I/O error")
)

// DegradeParams describes a fail-slow (gray) regime for the disk mechanism:
// the drive still answers, but slower and less reliably. Zero values mean
// "no effect" for each dimension, so partial degradations compose naturally.
type DegradeParams struct {
	// ServiceFactor multiplies the calibrated service time (values < 1 are
	// treated as 1 — degradation never speeds a disk up).
	ServiceFactor float64
	// ExtraLatency is a fixed per-IO addition (firmware retries, repeated
	// seeks on a marginal head).
	ExtraLatency time.Duration
	// BandwidthCap caps the media transfer rate in bytes/sec (0 = uncapped).
	// Only the transfer portion of the service time inflates.
	BandwidthCap float64
	// IOErrorRate is the per-IO probability of an ErrIO completion after
	// full service time — intermittent EIO bursts per the measured SATA
	// error rates. Zero consumes no RNG.
	IOErrorRate float64
}

// HealthStats is the SMART-style health block an EndPoint samples and ships
// in heartbeats. EWMAs are maintained at IO completion on the disk itself so
// the numbers reflect what the mechanism actually delivered, queueing
// excluded — exactly what peer comparison across a cohort needs.
type HealthStats struct {
	// ServiceEWMA tracks mean per-IO service time (alpha 0.2).
	ServiceEWMA time.Duration
	// TailEWMA is peak-biased: it jumps toward slow IOs quickly and decays
	// slowly, approximating a rolling high percentile without a window.
	TailEWMA time.Duration
	// IOs and Errors are lifetime completion/ErrIO counters; the detector
	// works on deltas between heartbeats.
	IOs    uint64
	Errors uint64
}

// Request is a queued IO with its completion callback.
type Request struct {
	Op     Op
	Offset int64
	// Data is written for writes; for reads the completion receives the
	// bytes read.
	Data []byte
	// Done is invoked on completion with the data read (nil for writes)
	// and an error.
	Done func(data []byte, err error)
}

// Disk is an event-driven simulated hard disk. All methods must be called
// from the scheduler goroutine. A Disk services one request at a time in
// FIFO order; NCQ effects are folded into the calibrated service times.
type Disk struct {
	id     string
	params Params
	ic     Interconnect
	sched  *simtime.Scheduler
	store  *Store

	state      State
	queue      []*Request
	lastRead   bool // direction of the previous op, for turnaround modelling
	hadOp      bool
	lastActive simtime.Time
	spinUps    int

	// stats
	completed  uint64
	bytesRead  uint64
	bytesWrote uint64
	busy       time.Duration

	// stateObservers are notified of every state transition (power meter,
	// rolling spin-up sequencer, ...).
	stateObservers []func(old, new State)

	// Observability handles (all nil-safe; SetRecorder fills them in).
	rec       *obs.Recorder
	mIORead   *obs.Histogram
	mIOWrite  *obs.Histogram
	cSwitches *obs.Counter
	cSpinUps  *obs.Counter
	cCorrupt  *obs.Counter
	// cTransitions holds one pre-resolved power_transitions_total handle per
	// state, indexed by State, so setState never rebuilds a label key.
	cTransitions [StateActive + 1]*obs.Counter

	// Silent-corruption model (Gray & van Ingen: uncorrectable read errors
	// and latent sector errors dominate on low-cost SATA media).
	ureRate      float64 // per-sector probability of corruption on read
	latentErrors int
	decayMean    time.Duration
	decayEvent   *simtime.Event

	// Gray-failure model. degr is the media/mechanism regime (DiskDegrade
	// faults); linkCapBps/linkExtra is a separate transport regime
	// (LinkDowngrade renegotiations) so the two compose when their fault
	// windows overlap instead of clobbering each other.
	degr       DegradeParams
	degraded   bool
	linkCapBps float64
	linkExtra  time.Duration

	health HealthStats
	cIOErr *obs.Counter
}

// SectorSize is the granularity of the corruption model: URE draws are per
// sector read, and decay events damage one sector at a time.
const SectorSize = 4096

// New creates a disk in the spun-down state (as after rack power-on, before
// rolling spin-up).
func New(sched *simtime.Scheduler, id string, params Params, ic Interconnect) *Disk {
	return &Disk{
		id:     id,
		params: params,
		ic:     ic,
		sched:  sched,
		store:  NewStore(),
		state:  StateSpunDown,
	}
}

// ID returns the disk's identifier.
func (d *Disk) ID() string { return d.id }

// Params returns the disk's calibrated parameters.
func (d *Disk) Params() Params { return d.params }

// State returns the current state.
func (d *Disk) State() State { return d.state }

// Capacity returns the raw capacity in bytes.
func (d *Disk) Capacity() int64 { return d.params.CapacityBytes }

// Store exposes the disk's backing byte store (for direct inspection in
// tests; normal IO goes through Submit).
func (d *Disk) Store() *Store { return d.store }

// SetInterconnect changes the attachment path (used when a disk is switched
// between hosts or between SATA/USB in calibration benches).
func (d *Disk) SetInterconnect(ic Interconnect) { d.ic = ic }

// Interconnect returns the current attachment path type.
func (d *Disk) Interconnect() Interconnect { return d.ic }

// SetRecorder points the disk's instrumentation at a run Recorder. IO
// service times land in the disk_io_seconds histogram (labelled by op),
// direction switches, spin-ups and corrupted sectors in counters, and
// power transitions / IO spans in the trace on the disk's own track.
// A nil Recorder (the default) records nothing.
func (d *Disk) SetRecorder(rec *obs.Recorder) {
	d.rec = rec
	d.mIORead = rec.Histogram("disk", "io_seconds", obs.L("op", "read"))
	d.mIOWrite = rec.Histogram("disk", "io_seconds", obs.L("op", "write"))
	d.cSwitches = rec.Counter("disk", "direction_switches_total")
	d.cSpinUps = rec.Counter("disk", "spinups_total")
	d.cCorrupt = rec.Counter("disk", "corrupt_sectors_total")
	d.cIOErr = rec.Counter("disk", "io_errors_total")
	for s := StatePoweredOff; s <= StateActive; s++ {
		d.cTransitions[s] = rec.Counter("disk", "power_transitions_total", obs.L("to", s.String()))
	}
}

// OnStateChange adds a state transition observer. Observers fire in
// registration order.
func (d *Disk) OnStateChange(fn func(old, new State)) {
	d.stateObservers = append(d.stateObservers, fn)
}

// IdleSince returns the time of the last IO completion, and whether the disk
// has been idle with an empty queue since then.
func (d *Disk) IdleSince() (simtime.Time, bool) {
	return d.lastActive, d.state == StateIdle && len(d.queue) == 0
}

// SpinUpCount returns how many times the disk has spun up (PARAID-style
// wear accounting used by the adaptive power manager).
func (d *Disk) SpinUpCount() int { return d.spinUps }

// QueueDepth returns the number of requests waiting or in service.
func (d *Disk) QueueDepth() int { return len(d.queue) }

// Completed returns the number of IOs finished.
func (d *Disk) Completed() uint64 { return d.completed }

// BytesRead and BytesWritten return data-plane counters.
func (d *Disk) BytesRead() uint64    { return d.bytesRead }
func (d *Disk) BytesWritten() uint64 { return d.bytesWrote }

// BusyTime returns cumulative time spent servicing IO.
func (d *Disk) BusyTime() time.Duration { return d.busy }

func (d *Disk) setState(s State) {
	if s == d.state {
		return
	}
	old := d.state
	d.state = s
	d.cTransitions[s].Inc()
	d.rec.Instant("disk", "state:"+s.String(), d.id, obs.L("from", old.String()))
	for _, fn := range d.stateObservers {
		fn(old, s)
	}
}

// PowerOn restores power. The disk lands in the spun-down state.
func (d *Disk) PowerOn() {
	if d.state == StatePoweredOff {
		d.setState(StateSpunDown)
	}
}

// PowerOff cuts power immediately. Queued requests fail with ErrPoweredOff.
func (d *Disk) PowerOff() {
	d.failQueue(ErrPoweredOff)
	d.setState(StatePoweredOff)
}

// SpinDown stops the platters once the queue drains. If IO is in flight the
// spin-down happens after it completes (and any queued IO will spin the disk
// back up). Calling it on an off/spun-down disk is a no-op.
func (d *Disk) SpinDown() {
	if d.state == StateIdle && len(d.queue) == 0 {
		d.setState(StateSpunDown)
	}
}

// SpinUp starts the platters if spun down. Ready after Params.SpinUpTime.
func (d *Disk) SpinUp() {
	if d.state != StateSpunDown {
		return
	}
	d.setState(StateSpinningUp)
	d.spinUps++
	d.cSpinUps.Inc()
	sp := d.rec.Begin("disk", "spin-up", d.id)
	d.sched.FireAfter(d.params.SpinUpTime, func() {
		if d.state != StateSpinningUp {
			sp.End(obs.L("aborted", "power-off"))
			return // powered off mid-spin-up
		}
		sp.End()
		d.setState(StateIdle)
		d.lastActive = d.sched.Now()
		d.pump()
	})
}

func (d *Disk) failQueue(err error) {
	q := d.queue
	d.queue = nil
	for _, r := range q {
		r := r
		d.sched.FireAfter(0, func() {
			if r.Done != nil {
				r.Done(nil, err)
			}
		})
	}
}

// Submit enqueues an IO. The Done callback fires on the scheduler goroutine
// when the IO completes or fails. A spun-down disk spins up automatically
// (cold-data access pattern: the access itself is the spin-up trigger).
func (d *Disk) Submit(req *Request) {
	if d.state == StatePoweredOff {
		d.sched.FireAfter(0, func() {
			if req.Done != nil {
				req.Done(nil, ErrPoweredOff)
			}
		})
		return
	}
	if req.Offset < 0 || req.Offset+int64(req.Op.Size) > d.params.CapacityBytes {
		d.sched.FireAfter(0, func() {
			if req.Done != nil {
				req.Done(nil, fmt.Errorf("%w: offset %d size %d capacity %d",
					ErrOutOfRange, req.Offset, req.Op.Size, d.params.CapacityBytes))
			}
		})
		return
	}
	d.queue = append(d.queue, req)
	switch d.state {
	case StateSpunDown:
		d.SpinUp()
	case StateIdle:
		d.pump()
	}
}

// SetURERate sets the per-sector probability that a read surfaces an
// uncorrectable (silently corrupted) sector. Zero (the default) disables
// the model entirely and consumes no RNG, so existing runs are unchanged.
// Typical consumer SATA spec is one URE per 1e14 bits ≈ 3e-4 per 4KiB
// sector-terabyte; chaos runs compress this the same way they compress MTTF.
func (d *Disk) SetURERate(p float64) { d.ureRate = p }

// URERate returns the configured per-sector corruption probability.
func (d *Disk) URERate() float64 { return d.ureRate }

// LatentErrors returns how many sectors the fault model has corrupted on
// this medium (URE hits, decay events, and manual CorruptSector calls).
func (d *Disk) LatentErrors() int { return d.latentErrors }

// CorruptSector flips bits in the sector containing off. The damage is
// persistent — it lives in the backing store, exactly like a real latent
// sector error, until something rewrites the sector.
func (d *Disk) CorruptSector(off int64) {
	if off < 0 || off >= d.params.CapacityBytes {
		return
	}
	sec := off / SectorSize * SectorSize
	d.store.CorruptAt(sec, SectorSize, 0x5a)
	d.latentErrors++
	d.cCorrupt.Inc()
	d.rec.Instant("disk", "corrupt-sector", d.id)
}

// maybeCorruptOnRead applies the URE model to a read about to be served:
// each sector covered by the read independently rots with probability
// ureRate. Damage is applied to the store before the data is extracted, so
// the caller sees the corrupted bytes (and any checksum layer above can
// catch them).
func (d *Disk) maybeCorruptOnRead(off int64, size int) {
	if d.ureRate <= 0 || size <= 0 {
		return
	}
	rng := d.sched.Rand()
	first := off / SectorSize
	last := (off + int64(size) - 1) / SectorSize
	for s := first; s <= last; s++ {
		if rng.Float64() < d.ureRate {
			d.CorruptSector(s * SectorSize)
		}
	}
}

// StartMediaDecay begins background bit rot: at exponentially-distributed
// intervals with the given mean, one random allocated sector is corrupted
// in place (no IO involved — this is the medium decaying while the platters
// sit, the failure mode scrubbing exists to bound). Restarting replaces any
// previous decay clock.
func (d *Disk) StartMediaDecay(mean time.Duration) {
	d.StopMediaDecay()
	if mean <= 0 {
		return
	}
	d.decayMean = mean
	d.armDecay()
}

// StopMediaDecay cancels the background decay clock.
func (d *Disk) StopMediaDecay() {
	if d.decayEvent != nil {
		d.decayEvent.Cancel()
		d.decayEvent = nil
	}
	d.decayMean = 0
}

func (d *Disk) armDecay() {
	wait := time.Duration(d.sched.Rand().ExpFloat64() * float64(d.decayMean))
	d.decayEvent = d.sched.After(wait, func() {
		if d.decayMean <= 0 {
			return
		}
		if offs := d.store.AllocatedChunkOffsets(); len(offs) > 0 {
			chunk := offs[d.sched.Rand().Intn(len(offs))]
			sector := chunk + int64(d.sched.Rand().Intn(chunkSize/SectorSize))*SectorSize
			d.CorruptSector(sector)
		}
		d.armDecay()
	})
}

// Degrade puts the disk mechanism into the given fail-slow regime. A second
// call replaces the first (the chaos scheduler closes one window before it
// opens another on the same disk).
func (d *Disk) Degrade(p DegradeParams) {
	if p.ServiceFactor < 1 {
		p.ServiceFactor = 1
	}
	d.degr = p
	d.degraded = true
	d.rec.Instant("disk", "degrade", d.id)
}

// ClearDegrade restores healthy media/mechanism behaviour.
func (d *Disk) ClearDegrade() {
	d.degr = DegradeParams{}
	d.degraded = false
	d.rec.Instant("disk", "degrade-clear", d.id)
}

// Degraded reports the active fail-slow regime, if any.
func (d *Disk) Degraded() (DegradeParams, bool) { return d.degr, d.degraded }

// SetLinkCap caps the transport path independently of the mechanism: a USB
// link renegotiated down to HighSpeed moves ~35 MB/s no matter how healthy
// the platters are, and every transaction pays extra turnarounds. Zero cap
// and zero extra restore the native link.
func (d *Disk) SetLinkCap(bytesPerSec float64, extra time.Duration) {
	d.linkCapBps = bytesPerSec
	d.linkExtra = extra
}

// LinkCap returns the transport cap (0 = native link speed).
func (d *Disk) LinkCap() (float64, time.Duration) { return d.linkCapBps, d.linkExtra }

// Health returns the current SMART-style health block.
func (d *Disk) Health() HealthStats { return d.health }

// capPenalty is the extra transfer time from capping the media rate at
// capBps: op.Size moved at capBps instead of mediaRate.
func capPenalty(size int, capBps, mediaRate float64) time.Duration {
	if capBps <= 0 || capBps >= mediaRate || size <= 0 {
		return 0
	}
	sec := float64(size)/capBps - float64(size)/mediaRate
	return time.Duration(sec * float64(time.Second))
}

// observeHealth folds one completed IO into the SMART block. The tail EWMA
// is peak-biased: slow completions pull it up at alpha 1/2, fast ones bleed
// it down at alpha 1/64, approximating a rolling p9x.
func (d *Disk) observeHealth(svc time.Duration, failed bool) {
	d.health.IOs++
	if failed {
		d.health.Errors++
	}
	const alpha = 0.2
	if d.health.ServiceEWMA == 0 {
		d.health.ServiceEWMA = svc
	} else {
		d.health.ServiceEWMA += time.Duration(alpha * float64(svc-d.health.ServiceEWMA))
	}
	if svc > d.health.TailEWMA {
		d.health.TailEWMA += (svc - d.health.TailEWMA) / 2
	} else {
		d.health.TailEWMA -= (d.health.TailEWMA - svc) / 64
	}
}

// ReplaceMedia swaps in a blank platter stack, modelling an operator
// swapping the failed drive for a fresh unit of the same model. All data
// and checksums are gone; latent-error history resets; the URE/decay
// configuration carries over (the replacement is the same drive model).
func (d *Disk) ReplaceMedia() {
	d.store = NewStore()
	d.latentErrors = 0
	if d.decayMean > 0 {
		d.StartMediaDecay(d.decayMean)
	}
}

// pump starts servicing the head of the queue if the disk is ready.
func (d *Disk) pump() {
	if d.state != StateIdle || len(d.queue) == 0 {
		return
	}
	req := d.queue[0]
	op := req.Op
	if d.hadOp && d.lastRead != op.Read {
		op.DirectionSwitch = true
		d.cSwitches.Inc()
	}
	d.hadOp = true
	d.lastRead = op.Read
	d.setState(StateActive)
	svc := d.params.ServiceTime(d.ic, op)
	// Transport regime (link downgrade): every IO pays the extra turnaround,
	// transfers pay the capped rate.
	svc += d.linkExtra + capPenalty(op.Size, d.linkCapBps, d.params.MediaRate)
	// Mechanism regime (fail-slow media). Drawn-out service first, then the
	// EIO draw — only when a nonzero rate is configured, so healthy runs
	// consume no RNG and replay byte-identically.
	failIO := false
	if d.degraded {
		svc = time.Duration(float64(svc) * d.degr.ServiceFactor)
		svc += d.degr.ExtraLatency + capPenalty(op.Size, d.degr.BandwidthCap, d.params.MediaRate)
		if d.degr.IOErrorRate > 0 {
			failIO = d.sched.Rand().Float64() < d.degr.IOErrorRate
		}
	}
	opName, hist := "write", d.mIOWrite
	if op.Read {
		opName, hist = "read", d.mIORead
	}
	span := d.rec.Begin("disk", opName, d.id)
	d.sched.FireAfter(svc, func() {
		if d.state != StateActive {
			span.End(obs.L("aborted", "power-off"))
			return // powered off mid-IO; queue already failed
		}
		d.queue = d.queue[1:]
		d.busy += svc
		d.completed++
		d.lastActive = d.sched.Now()
		d.observeHealth(svc, failIO)
		if failIO {
			// The command occupied the mechanism for its full service time
			// and then failed — the fail-slow pattern the health monitor's
			// error counters exist to catch.
			span.End(obs.L("error", "eio"))
			d.cIOErr.Inc()
			d.setState(StateIdle)
			if req.Done != nil {
				req.Done(nil, ErrIO)
			}
			d.pump()
			return
		}
		span.End()
		hist.ObserveDuration(svc)

		var data []byte
		if op.Read {
			d.maybeCorruptOnRead(req.Offset, op.Size)
			data = d.store.ReadAt(req.Offset, op.Size)
			d.bytesRead += uint64(op.Size)
		} else {
			d.store.WriteAt(req.Offset, req.Data)
			d.bytesWrote += uint64(op.Size)
		}
		d.setState(StateIdle)
		if req.Done != nil {
			req.Done(data, nil)
		}
		d.pump()
	})
}
