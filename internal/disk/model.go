// Package disk models the mechanical hard disks UStore attaches through its
// USB fat-tree fabric.
//
// The performance model is a per-IO service-time model:
//
//	service = command overhead(interconnect, direction)
//	        + positioning(pattern, direction, size class)
//	        + size / media sequential rate
//	        + direction-turnaround penalty (mixed workloads)
//
// The default parameters are calibrated against Table II of the UStore paper
// (TOSHIBA DT01ACA300 3TB 7200rpm measured over SATA, a USB 3.0 bridge, and
// the full hub+switch fabric). Positioning times are *effective* values that
// fold in NCQ/elevator gains at the queue depths Iometer used, which is why
// the small-transfer random positioning is shorter than a raw seek+rotate.
// Power states and wattages are calibrated against Table III.
package disk

import (
	"fmt"
	"time"
)

// Interconnect identifies how the disk is attached to its host. It selects
// the per-command overhead of the attachment path.
type Interconnect int

const (
	// AttachSATA is a direct SATA connection (the paper's baseline).
	AttachSATA Interconnect = iota
	// AttachUSB is a single SATA-to-USB 3.0 bridge, no hubs.
	AttachUSB
	// AttachFabric is the full UStore path: bridge + switches + hubs
	// ("H&S" in the paper's Table II).
	AttachFabric
)

// String returns the paper's name for the interconnect.
func (ic Interconnect) String() string {
	switch ic {
	case AttachSATA:
		return "SATA"
	case AttachUSB:
		return "USB"
	case AttachFabric:
		return "H&S"
	default:
		return fmt.Sprintf("Interconnect(%d)", int(ic))
	}
}

// Pattern is the access pattern of a workload.
type Pattern int

const (
	// Sequential addresses advance monotonically.
	Sequential Pattern = iota
	// Random addresses are uniformly distributed over the disk.
	Random
)

// String returns "Seq" or "Rand" as used in the paper's table headers.
func (p Pattern) String() string {
	if p == Sequential {
		return "Seq"
	}
	return "Rand"
}

// Op describes one IO for service-time purposes.
type Op struct {
	Read    bool
	Size    int // bytes
	Pattern Pattern
	// DirectionSwitch is set by the queue when this op's direction differs
	// from the previous op's (mixed read/write workloads pay a turnaround
	// penalty for it).
	DirectionSwitch bool
}

// Params are the calibrated performance and power parameters of a disk
// model. All durations are per IO.
type Params struct {
	// ModelName labels the disk (informational).
	ModelName string
	// CapacityBytes is the raw capacity.
	CapacityBytes int64
	// MediaRate is the sustained media transfer rate in bytes/sec.
	MediaRate float64
	// CmdOverheadRead/Write is the fixed per-command overhead of the
	// attachment path, indexed by Interconnect.
	CmdOverheadRead  [3]time.Duration
	CmdOverheadWrite [3]time.Duration
	// Turnaround is the extra cost paid when consecutive ops change
	// direction (read->write or write->read), indexed by Interconnect.
	Turnaround [3]time.Duration
	// TurnaroundLarge replaces Turnaround for transfers above
	// SmallIOThreshold: alternating large reads and writes defeats
	// read-ahead and forces write-cache flushes, which Table II shows as
	// 4MB mixed-sequential throughput collapsing to ~105-120 MB/s.
	TurnaroundLarge [3]time.Duration
	// RandPos{Small,Large}{Read,Write} are effective positioning times for
	// random IO; Small applies at or below SmallIOThreshold.
	RandPosSmallRead  time.Duration
	RandPosSmallWrite time.Duration
	RandPosLargeRead  time.Duration
	RandPosLargeWrite time.Duration
	SmallIOThreshold  int

	// SpinUpTime is how long a spun-down disk takes to become ready.
	SpinUpTime time.Duration
	// SpinDownTime is how long the spin-down command takes to complete.
	SpinDownTime time.Duration

	// Power draw (watts) of the bare disk by state (Table III "SATA" row:
	// the bridge's own draw is accounted separately by the power package).
	PowerSpunDown float64
	PowerIdle     float64
	PowerActive   float64
	// PowerSpinUp is the surge draw while spinning up (motor start).
	PowerSpinUp float64
}

// DT01ACA300 returns parameters calibrated to the paper's TOSHIBA
// DT01ACA300 3TB 7200rpm disk (Tables II and III).
func DT01ACA300() Params {
	return Params{
		ModelName:     "TOSHIBA DT01ACA300",
		CapacityBytes: 3_000_000_000_000,
		MediaRate:     185.5e6,
		// 4KB sequential (Table II): SATA 13378/11211 IO/s read/write,
		// USB 5380/6166, H&S 5381/6181. service = ovh + 4096/MediaRate
		// (22.1us) => overheads below.
		CmdOverheadRead:  [3]time.Duration{53 * time.Microsecond, 164 * time.Microsecond, 164 * time.Microsecond},
		CmdOverheadWrite: [3]time.Duration{67 * time.Microsecond, 140 * time.Microsecond, 140 * time.Microsecond},
		// 4KB 50%-mixed sequential: SATA 8066 IO/s, USB 4294, H&S 4595.
		// Every op in an alternating 50/50 stream switches direction.
		Turnaround: [3]time.Duration{42 * time.Microsecond, 59 * time.Microsecond, 48 * time.Microsecond},
		// 4MB 50%-mixed sequential (Table II): SATA 105.7 MB/s, USB 119.7,
		// H&S 118.6 => per-op turnaround beyond the 22.6ms media transfer.
		// (The paper's own data has USB beating SATA here.)
		TurnaroundLarge: [3]time.Duration{17 * time.Millisecond, 12200 * time.Microsecond, 12600 * time.Microsecond},
		// 4KB random: ~190 IO/s read => 5.2ms effective positioning
		// (NCQ-assisted), ~86 IO/s write => 11.5ms.
		RandPosSmallRead:  5200 * time.Microsecond,
		RandPosSmallWrite: 11500 * time.Microsecond,
		// 4MB random: read ~130-148 MB/s => ~7.5ms positioning; write
		// 57-79 MB/s => ~36ms (write-cache-hostile large randoms).
		RandPosLargeRead:  7500 * time.Microsecond,
		RandPosLargeWrite: 36 * time.Millisecond,
		SmallIOThreshold:  256 * 1024,

		SpinUpTime:   7 * time.Second,
		SpinDownTime: 1500 * time.Millisecond,

		PowerSpunDown: 0.05,
		PowerIdle:     4.71,
		PowerActive:   6.66,
		PowerSpinUp:   24.0,
	}
}

// SpecSheet returns the official specification wattages from the Toshiba
// datasheet (Table III "Specs" row), for the power comparison bench.
func SpecSheet() (spunDown, idle, active float64) { return 1.0, 5.2, 6.4 }

// ServiceTime returns the time the disk mechanism needs to complete op when
// attached via ic. It does not include host-side queueing or fabric
// bandwidth contention — those are modelled by the usb package.
func (p Params) ServiceTime(ic Interconnect, op Op) time.Duration {
	if op.Size <= 0 {
		panic(fmt.Sprintf("disk: non-positive IO size %d", op.Size))
	}
	var d time.Duration
	if op.Read {
		d = p.CmdOverheadRead[ic]
	} else {
		d = p.CmdOverheadWrite[ic]
	}
	if op.DirectionSwitch {
		if op.Size > p.SmallIOThreshold {
			d += p.TurnaroundLarge[ic]
		} else {
			d += p.Turnaround[ic]
		}
	}
	if op.Pattern == Random {
		small := op.Size <= p.SmallIOThreshold
		switch {
		case small && op.Read:
			d += p.RandPosSmallRead
		case small && !op.Read:
			d += p.RandPosSmallWrite
		case !small && op.Read:
			d += p.RandPosLargeRead
		default:
			d += p.RandPosLargeWrite
		}
	}
	d += time.Duration(float64(op.Size) / p.MediaRate * float64(time.Second))
	return d
}

// Power returns the disk's draw in watts for the given state.
func (p Params) Power(st State) float64 {
	switch st {
	case StateSpunDown, StatePoweredOff:
		if st == StatePoweredOff {
			return 0
		}
		return p.PowerSpunDown
	case StateSpinningUp:
		return p.PowerSpinUp
	case StateIdle:
		return p.PowerIdle
	case StateActive:
		return p.PowerActive
	default:
		return 0
	}
}
