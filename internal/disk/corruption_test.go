package disk

import (
	"bytes"
	"testing"
	"time"

	"ustore/internal/simtime"
)

func submitWrite(s *simtime.Scheduler, d *Disk, off int64, data []byte) {
	d.Submit(&Request{
		Op:     Op{Read: false, Size: len(data), Pattern: Sequential},
		Offset: off,
		Data:   data,
	})
	s.Run()
}

func submitRead(s *simtime.Scheduler, d *Disk, off int64, size int) []byte {
	var out []byte
	d.Submit(&Request{
		Op:     Op{Read: true, Size: size, Pattern: Sequential},
		Offset: off,
		Done:   func(data []byte, err error) { out = data },
	})
	s.Run()
	return out
}

func TestCorruptAtFlipsBitsButKeepsSidecar(t *testing.T) {
	st := NewStore()
	data := bytes.Repeat([]byte{0xAB}, 1024)
	st.WriteAt(0, data)
	st.SetBlockCRC(0, 1234)

	st.CorruptAt(100, 10, 0x5a)
	got := st.ReadAt(0, 1024)
	if bytes.Equal(got, data) {
		t.Fatal("CorruptAt did not change the data")
	}
	for i := 0; i < 1024; i++ {
		want := byte(0xAB)
		if i >= 100 && i < 110 {
			want ^= 0x5a
		}
		if got[i] != want {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], want)
		}
	}
	if crc, ok := st.BlockCRC(0); !ok || crc != 1234 {
		t.Fatalf("sidecar CRC damaged by CorruptAt: %d, %v", crc, ok)
	}
}

func TestCorruptAtHoleMaterializesChunk(t *testing.T) {
	st := NewStore()
	st.CorruptAt(chunkSize*3+5, 2, 0x01)
	got := st.ReadAt(chunkSize*3+5, 2)
	if got[0] != 0x01 || got[1] != 0x01 {
		t.Fatalf("corrupting a hole read back %v, want [1 1]", got)
	}
	offs := st.AllocatedChunkOffsets()
	if len(offs) != 1 || offs[0] != chunkSize*3 {
		t.Fatalf("AllocatedChunkOffsets = %v, want [%d]", offs, chunkSize*3)
	}
}

func TestAllocatedChunkOffsetsSorted(t *testing.T) {
	st := NewStore()
	for _, off := range []int64{chunkSize * 7, 0, chunkSize * 3, chunkSize * 12} {
		st.WriteAt(off, []byte{1})
	}
	offs := st.AllocatedChunkOffsets()
	want := []int64{0, chunkSize * 3, chunkSize * 7, chunkSize * 12}
	if len(offs) != len(want) {
		t.Fatalf("got %v, want %v", offs, want)
	}
	for i := range want {
		if offs[i] != want[i] {
			t.Fatalf("got %v, want %v", offs, want)
		}
	}
}

func TestURECorruptsReadPersistently(t *testing.T) {
	s, d := newDisk(t)
	payload := bytes.Repeat([]byte{0x11}, SectorSize)
	submitWrite(s, d, 0, payload)

	d.SetURERate(1.0) // every sector read rots
	got := submitRead(s, d, 0, SectorSize)
	if bytes.Equal(got, payload) {
		t.Fatal("URE rate 1.0 read returned clean data")
	}
	if d.LatentErrors() == 0 {
		t.Fatal("LatentErrors not counted")
	}

	// The damage is on the medium: a clean re-read (rate back to 0) still
	// sees the corrupted sector.
	d.SetURERate(0)
	again := submitRead(s, d, 0, SectorSize)
	if !bytes.Equal(again, got) {
		t.Fatal("latent sector error did not persist across reads")
	}

	// Rewriting the sector heals it.
	submitWrite(s, d, 0, payload)
	healed := submitRead(s, d, 0, SectorSize)
	if !bytes.Equal(healed, payload) {
		t.Fatal("rewrite did not heal the latent error")
	}
}

func TestUREZeroRateConsumesNoRNG(t *testing.T) {
	// Two identical runs, one with the model explicitly disabled, must
	// leave the shared RNG in the same state — otherwise enabling chaos
	// features would perturb unrelated baseline runs.
	run := func(setRate bool) (int64, int64) {
		s, d := newDisk(t)
		submitWrite(s, d, 0, bytes.Repeat([]byte{9}, SectorSize))
		if setRate {
			d.SetURERate(0)
		}
		submitRead(s, d, 0, SectorSize)
		return s.Rand().Int63(), s.Rand().Int63()
	}
	a1, a2 := run(false)
	b1, b2 := run(true)
	if a1 != b1 || a2 != b2 {
		t.Fatal("zero-rate URE model consumed RNG")
	}
}

func TestMediaDecayCorruptsAllocatedSectors(t *testing.T) {
	s, d := newDisk(t)
	payload := bytes.Repeat([]byte{0x42}, chunkSize)
	submitWrite(s, d, 0, payload)

	d.StartMediaDecay(1 * time.Hour)
	s.RunFor(24 * time.Hour)
	if d.LatentErrors() == 0 {
		t.Fatal("no decay events in 24h with 1h mean")
	}
	d.StopMediaDecay()
	got := submitRead(s, d, 0, chunkSize)
	if bytes.Equal(got, payload) {
		t.Fatal("decay events did not damage stored data")
	}

	before := d.LatentErrors()
	s.RunFor(24 * time.Hour)
	if d.LatentErrors() != before {
		t.Fatal("decay continued after StopMediaDecay")
	}
}

func TestReplaceMediaWipesDataAndResetsCounters(t *testing.T) {
	s, d := newDisk(t)
	submitWrite(s, d, 0, bytes.Repeat([]byte{7}, SectorSize))
	d.Store().SetBlockCRC(0, 99)
	d.CorruptSector(0)
	if d.LatentErrors() != 1 {
		t.Fatalf("LatentErrors = %d, want 1", d.LatentErrors())
	}

	d.ReplaceMedia()
	if d.LatentErrors() != 0 {
		t.Fatal("LatentErrors survived media replacement")
	}
	if _, ok := d.Store().BlockCRC(0); ok {
		t.Fatal("checksum sidecar survived media replacement")
	}
	got := submitRead(s, d, 0, SectorSize)
	for _, b := range got {
		if b != 0 {
			t.Fatal("data survived media replacement")
		}
	}
}
