package disk

import (
	"errors"
	"testing"
	"time"

	"ustore/internal/simtime"
)

func TestPowerOffDuringSpinUp(t *testing.T) {
	s := simtime.NewScheduler(1)
	d := New(s, "d0", DT01ACA300(), AttachFabric)
	var errs []error
	d.Submit(&Request{ // triggers auto spin-up
		Op:   Op{Read: true, Size: 4096, Pattern: Sequential},
		Done: func(_ []byte, err error) { errs = append(errs, err) },
	})
	if d.State() != StateSpinningUp {
		t.Fatalf("state = %v, want spinning-up", d.State())
	}
	s.RunFor(2 * time.Second) // mid-spin-up
	d.PowerOff()
	s.Run()
	if d.State() != StatePoweredOff {
		t.Fatalf("state = %v", d.State())
	}
	if len(errs) != 1 || !errors.Is(errs[0], ErrPoweredOff) {
		t.Fatalf("queued IO errs = %v, want ErrPoweredOff", errs)
	}
	// Power back on and access again: fresh spin-up required.
	d.PowerOn()
	var ok bool
	d.Submit(&Request{
		Op:   Op{Read: true, Size: 4096, Pattern: Sequential},
		Done: func(_ []byte, err error) { ok = err == nil },
	})
	s.Run()
	if !ok {
		t.Fatal("IO after power cycle failed")
	}
	if d.SpinUpCount() != 2 {
		t.Fatalf("spin-ups = %d, want 2", d.SpinUpCount())
	}
}

func TestPowerOffMidIOFailsQueueNotData(t *testing.T) {
	s := simtime.NewScheduler(1)
	d := New(s, "d0", DT01ACA300(), AttachFabric)
	d.SpinUp()
	s.Run()
	// Write some data fully, then power-cycle: data survives (platters
	// are nonvolatile).
	payload := []byte("survives power cycles")
	d.Submit(&Request{Op: Op{Read: false, Size: len(payload), Pattern: Sequential}, Offset: 0, Data: payload})
	s.Run()
	d.PowerOff()
	d.PowerOn()
	d.SpinUp()
	s.Run()
	var got []byte
	d.Submit(&Request{
		Op: Op{Read: true, Size: len(payload), Pattern: Sequential}, Offset: 0,
		Done: func(b []byte, err error) { got = b },
	})
	s.Run()
	if string(got) != string(payload) {
		t.Fatalf("data lost across power cycle: %q", got)
	}
}

func TestSubmitWhileSpinningUpQueues(t *testing.T) {
	s := simtime.NewScheduler(1)
	d := New(s, "d0", DT01ACA300(), AttachFabric)
	done := 0
	for i := 0; i < 3; i++ {
		d.Submit(&Request{
			Op:   Op{Read: true, Size: 4096, Pattern: Sequential},
			Done: func([]byte, error) { done++ },
		})
	}
	if d.QueueDepth() != 3 {
		t.Fatalf("queue depth = %d", d.QueueDepth())
	}
	if d.SpinUpCount() != 1 {
		t.Fatalf("spin-ups = %d, want a single spin-up for the burst", d.SpinUpCount())
	}
	s.Run()
	if done != 3 {
		t.Fatalf("completed %d of 3", done)
	}
}

func TestSpinDownSpinUpCycleCounts(t *testing.T) {
	s := simtime.NewScheduler(1)
	d := New(s, "d0", DT01ACA300(), AttachFabric)
	for i := 0; i < 5; i++ {
		d.SpinUp()
		s.Run()
		d.SpinDown()
	}
	if d.SpinUpCount() != 5 {
		t.Fatalf("spin-ups = %d", d.SpinUpCount())
	}
	if d.State() != StateSpunDown {
		t.Fatalf("state = %v", d.State())
	}
	// SpinUp while already idle is a no-op.
	d.SpinUp()
	s.Run()
	d.SpinUp()
	if d.SpinUpCount() != 6 {
		t.Fatalf("idle SpinUp incremented count: %d", d.SpinUpCount())
	}
}

func TestInterconnectSwitchMidStream(t *testing.T) {
	// A disk switched from fabric to SATA mid-stream services subsequent
	// IO at SATA cost (the calibration bench relies on this).
	s := simtime.NewScheduler(1)
	d := New(s, "d0", DT01ACA300(), AttachFabric)
	d.SpinUp()
	s.Run()
	op := Op{Read: true, Size: 4096, Pattern: Sequential}
	d.Submit(&Request{Op: op})
	s.Run()
	fabricBusy := d.BusyTime()
	d.SetInterconnect(AttachSATA)
	d.Submit(&Request{Op: op})
	s.Run()
	sataCost := d.BusyTime() - fabricBusy
	if sataCost >= fabricBusy {
		t.Fatalf("SATA op (%v) not cheaper than fabric op (%v)", sataCost, fabricBusy)
	}
	if d.Interconnect() != AttachSATA {
		t.Fatalf("interconnect = %v", d.Interconnect())
	}
}

func TestMultipleStateObservers(t *testing.T) {
	s := simtime.NewScheduler(1)
	d := New(s, "d0", DT01ACA300(), AttachFabric)
	a, b := 0, 0
	d.OnStateChange(func(_, _ State) { a++ })
	d.OnStateChange(func(_, _ State) { b++ })
	d.SpinUp()
	s.Run()
	if a == 0 || a != b {
		t.Fatalf("observers fired %d/%d, want equal and nonzero", a, b)
	}
}
