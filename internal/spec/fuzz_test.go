package spec

import (
	"strings"
	"testing"
)

// FuzzSpecParse holds the spec parser to its contract under arbitrary
// input: it must never panic, and every rejection must carry a position
// ("file:line:col:") or at minimum the file name. Accepted documents
// must round-trip through grid expansion and hashing without panicking
// either, and hashing must be deterministic.
//
// The seed corpus covers the interesting regions: valid YAML and JSON
// specs, unknown fields, type mismatches, grids, deep indentation, and
// syntax the subset rejects.
func FuzzSpecParse(f *testing.F) {
	seeds := []string{
		// Valid documents.
		"mode: faults\n",
		"mode: faults\nseed: 42\ndays: 1\n",
		sampleYAML,
		"mode: traffic\ntraffic:\n  storm: true\n  protect: true\n",
		"mode: fleet\nfleet:\n  units: 4\n  shards: 2\n",
		"mode: fidelity\nfidelity:\n  check: table1-ustore-capex\n",
		"mode: durability\nfailure:\n  model: empirical\n  ure_bits: spec\n",
		`{"mode": "faults", "seed": 1}`,
		`{"mode": "fleet", "fleet": {"units": 2, "shards": 1}, "grid": {"seed": [1, 2, 3]}}`,
		"mode: faults\ngrid:\n  seed: [1, 2]\n  faults.pairs: [2, 4]\n",
		"mode: faults\nname: \"quoted # name\"\n",
		// Unknown fields and type mismatches.
		"mode: faults\nbogus: 1\n",
		"mode: faults\nfaults:\n  pears: 4\n",
		"mode: faults\nseed: lots\n",
		"mode: faults\nfaults:\n  disks: 3\n",
		"mode: faults\nfailure:\n  ure_bits: sometimes\n",
		`{"mode": "faults", "seed": "lots"}`,
		// Syntax stress.
		"mode: faults\nfaults:\n\tdisks: true\n",
		"mode: faults\nname: &anchor x\n",
		"mode: faults\nname: 'single'\n",
		"mode: faults\nname: |\n  block\n",
		"a:\n  b:\n    c:\n      d: 1\n",
		"- just\n- a\n- list\n",
		"mode: faults\ngrid:\n  seed: [[1]]\n",
		"mode: faults\ngrid:\n  seed: []\n",
		"\"quoted key\": 1\n",
		"key:value\n",
		"mode: faults\nname: \"unterminated\n",
		"mode: faults\nname: \"bad \\q escape\"\n",
		"{\"mode\": \"faults\"} trailing",
		"{\"mode\": \"faults\", \"mode\": \"traffic\"}",
		"{", "", "\x00", "\xff\xfe", strings.Repeat(" ", 100), strings.Repeat("a:\n", 50),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Parse(data, "fuzz.yaml")
		if err != nil {
			msg := err.Error()
			if !strings.Contains(msg, "fuzz.yaml") {
				t.Fatalf("rejection without the file position: %q", msg)
			}
			return
		}
		cells, err := file.Cells()
		if err != nil {
			if !strings.Contains(err.Error(), "fuzz.yaml") {
				t.Fatalf("cell rejection without the file position: %q", err)
			}
			return
		}
		for _, c := range cells {
			if len(c.Hash) != 64 {
				t.Fatalf("cell %q: malformed hash %q", c.ID, c.Hash)
			}
			if c.Hash != Hash(c.Spec) {
				t.Fatalf("cell %q: hash not deterministic", c.ID)
			}
			if err := c.Spec.Validate(); err != nil {
				t.Fatalf("accepted cell fails validation: %v", err)
			}
		}
	})
}
