package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// ParseJSON parses a JSON spec into the same positional node tree the YAML
// parser produces, so decoding and error reporting are shared. Positions
// come from the decoder's byte offset mapped onto line/column.
func ParseJSON(data []byte, file string) (*Node, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	lp := newLinePos(data)
	root, err := parseJSONValue(dec, lp, file)
	if err != nil {
		return nil, err
	}
	if root.Kind != KindMap {
		return nil, errAt(file, root.Line, root.Col, "spec root must be a JSON object")
	}
	// Reject trailing garbage after the document.
	if _, err := dec.Token(); err != io.EOF {
		line, col := lp.at(dec.InputOffset())
		return nil, errAt(file, line, col, "trailing data after the spec document")
	}
	return root, nil
}

// linePos maps byte offsets to line/column.
type linePos struct{ starts []int64 }

func newLinePos(data []byte) *linePos {
	lp := &linePos{starts: []int64{0}}
	for i, b := range data {
		if b == '\n' {
			lp.starts = append(lp.starts, int64(i+1))
		}
	}
	return lp
}

func (lp *linePos) at(off int64) (line, col int) {
	lo, hi := 0, len(lp.starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if lp.starts[mid] <= off {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo + 1, int(off-lp.starts[lo]) + 1
}

func jsonErrAt(err error, lp *linePos, file string, dec *json.Decoder) error {
	if serr, ok := err.(*json.SyntaxError); ok {
		line, col := lp.at(serr.Offset)
		return errAt(file, line, col, "%s", syntaxMsg(serr))
	}
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		line, col := lp.at(dec.InputOffset())
		return errAt(file, line, col, "unexpected end of document")
	}
	line, col := lp.at(dec.InputOffset())
	return errAt(file, line, col, "%s", err)
}

// syntaxMsg strips the "json: " style prefixes for uniform messages.
func syntaxMsg(err *json.SyntaxError) string {
	return strings.TrimPrefix(err.Error(), "invalid character ")
}

func parseJSONValue(dec *json.Decoder, lp *linePos, file string) (*Node, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, jsonErrAt(err, lp, file, dec)
	}
	line, col := lp.at(dec.InputOffset())
	switch v := tok.(type) {
	case json.Delim:
		switch v {
		case '{':
			n := &Node{Line: line, Col: col, Kind: KindMap}
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return nil, jsonErrAt(err, lp, file, dec)
				}
				kl, kc := lp.at(dec.InputOffset())
				key, ok := keyTok.(string)
				if !ok {
					return nil, errAt(file, kl, kc, "object key must be a string")
				}
				if n.child(key) != nil {
					return nil, errAt(file, kl, kc, "duplicate key %q", key)
				}
				val, err := parseJSONValue(dec, lp, file)
				if err != nil {
					return nil, err
				}
				n.Keys = append(n.Keys, key)
				n.KeyLines = append(n.KeyLines, kl)
				n.KeyCols = append(n.KeyCols, kc)
				n.Children = append(n.Children, val)
			}
			if _, err := dec.Token(); err != nil { // consume '}'
				return nil, jsonErrAt(err, lp, file, dec)
			}
			return n, nil
		case '[':
			n := &Node{Line: line, Col: col, Kind: KindList}
			for dec.More() {
				item, err := parseJSONValue(dec, lp, file)
				if err != nil {
					return nil, err
				}
				n.Children = append(n.Children, item)
			}
			if _, err := dec.Token(); err != nil { // consume ']'
				return nil, jsonErrAt(err, lp, file, dec)
			}
			return n, nil
		default:
			return nil, errAt(file, line, col, "unexpected %q", string(rune(v)))
		}
	case string:
		return &Node{Line: line, Col: col, Kind: KindScalar, Val: v, Quoted: true}, nil
	case json.Number:
		return &Node{Line: line, Col: col, Kind: KindScalar, Val: v.String()}, nil
	case bool:
		return &Node{Line: line, Col: col, Kind: KindScalar, Val: fmt.Sprintf("%v", v)}, nil
	case nil:
		return &Node{Line: line, Col: col, Kind: KindScalar, Val: ""}, nil
	default:
		return nil, errAt(file, line, col, "unsupported JSON token %v", tok)
	}
}
