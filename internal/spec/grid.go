package spec

import (
	"fmt"
	"strings"
)

// File is one parsed spec document: the base Spec plus the optional
// parameter grid it expands into cells.
type File struct {
	Path string
	Spec *Spec // the base spec (grid overrides not applied)
	Axes []Axis

	root *Node
}

// Axis is one grid dimension: a dotted field path and the scalar values
// it sweeps, in document order.
type Axis struct {
	Path   string // e.g. "durability.scheme"
	Name   string // last path segment, used in cell IDs
	Values []*Node
}

// Cell is one point of the expanded grid: a fully decoded spec with the
// axis overrides applied, its human-readable ID, and its content hash.
type Cell struct {
	Index  int
	ID     string            // "scheme=r3,model=empirical" (axis order)
	Axes   map[string]string // axis name -> value, for report columns
	Spec   *Spec
	Hash   string // content hash of the decoded cell (see Canonical)
	Values []string
}

// MaxCells bounds grid expansion so a typo'd axis cannot explode the
// runner.
const MaxCells = 4096

// Cells expands the grid into the full cross product. Axes vary in
// document order with the last axis fastest, so reports group naturally
// by the first axis. A file with no grid yields one cell.
func (f *File) Cells() ([]Cell, error) {
	total := 1
	for _, ax := range f.Axes {
		if total > MaxCells/len(ax.Values) {
			return nil, fmt.Errorf("%s: grid expands past %d cells", f.Path, MaxCells)
		}
		total *= len(ax.Values)
	}
	cells := make([]Cell, 0, total)
	idx := make([]int, len(f.Axes))
	for {
		cell, err := f.cellAt(idx, len(cells))
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell)
		// Odometer increment, last axis fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(f.Axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return cells, nil
}

func (f *File) cellAt(idx []int, n int) (Cell, error) {
	root := f.root.clone()
	cell := Cell{Index: n, Axes: map[string]string{}}
	var parts []string
	for i, ax := range f.Axes {
		v := ax.Values[idx[i]]
		if err := applyOverride(root, ax.Path, v, f.Path); err != nil {
			return Cell{}, err
		}
		parts = append(parts, ax.Name+"="+v.Val)
		cell.Axes[ax.Name] = v.Val
		cell.Values = append(cell.Values, v.Val)
	}
	cell.ID = strings.Join(parts, ",")
	s, err := DecodeSpec(root, f.Path)
	if err != nil {
		if cell.ID != "" {
			return Cell{}, fmt.Errorf("grid cell %s: %w", cell.ID, err)
		}
		return Cell{}, err
	}
	cell.Spec = s
	cell.Hash = Hash(s)
	return cell, nil
}

// applyOverride sets the scalar at a dotted path, creating intermediate
// mappings as needed. The decoder validates the resulting field, so a
// typo'd axis path surfaces as its positional unknown-field error.
func applyOverride(root *Node, path string, v *Node, file string) error {
	n := root
	segs := strings.Split(path, ".")
	for _, seg := range segs[:len(segs)-1] {
		if seg == "" {
			return errAt(file, v.Line, v.Col, "grid axis %q: empty path segment", path)
		}
		c := n.child(seg)
		if c == nil {
			c = &Node{Line: v.Line, Col: v.Col, Kind: KindMap}
			n.setChild(seg, c)
		}
		if c.Kind != KindMap {
			return errAt(file, v.Line, v.Col, "grid axis %q: %s is a %s, not a section", path, seg, c.Kind)
		}
		n = c
	}
	last := segs[len(segs)-1]
	if last == "" || last == "grid" || (len(segs) == 1 && root.child(last) != nil && root.child(last).Kind == KindMap) {
		return errAt(file, v.Line, v.Col, "grid axis %q: cannot override a whole section", path)
	}
	n.setChild(last, v.clone())
	return nil
}
