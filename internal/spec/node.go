// Package spec is the declarative experiment language of the repo: a
// YAML/JSON document describing one scenario (topology, workload mix,
// fault schedule shape, failure model, protection policies, outputs) plus
// an optional parameter grid, compiled into the existing chaos / traffic /
// fleet option structs and swept by internal/campaign.
//
// Specs are parsed into a positional node tree first (every node knows its
// line and column), then decoded field by field, so every rejection — an
// unknown field, a type mismatch, a tab in the indentation — points at the
// offending spot in the file. FuzzSpecParse holds the parser to "never
// panic, always position".
//
// The split between the spec (what to run) and its content hash (identity
// of one grid cell, internal/spec/hash.go) follows GoSim's batchspec: the
// hash is computed over the *decoded, defaulted* cell, so reformatting the
// file, reordering keys, or adding comments never invalidates a cached
// result, while changing any value that reaches the simulation always
// does.
package spec

import (
	"fmt"
	"strings"
)

// Kind discriminates node shapes.
type Kind int

// Node kinds.
const (
	KindScalar Kind = iota
	KindMap
	KindList
)

func (k Kind) String() string {
	switch k {
	case KindScalar:
		return "scalar"
	case KindMap:
		return "mapping"
	case KindList:
		return "list"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Node is one positional element of a parsed spec document.
type Node struct {
	Line, Col int
	Kind      Kind

	// Scalar payload. Quoted distinguishes "true" (a string) from true (a
	// bool) at decode time.
	Val    string
	Quoted bool

	// Map payload: Keys[i] -> Children[i], in document order. KeyLines
	// holds each key's own position for error messages.
	Keys     []string
	KeyLines []int
	KeyCols  []int

	// List payload (also Children for maps — a map's Children are its
	// values; a list's are its items).
	Children []*Node
}

// child returns the map value for key, or nil.
func (n *Node) child(key string) *Node {
	for i, k := range n.Keys {
		if k == key {
			return n.Children[i]
		}
	}
	return nil
}

// setChild replaces key's value, appending the key if absent.
func (n *Node) setChild(key string, v *Node) {
	for i, k := range n.Keys {
		if k == key {
			n.Children[i] = v
			return
		}
	}
	n.Keys = append(n.Keys, key)
	n.KeyLines = append(n.KeyLines, v.Line)
	n.KeyCols = append(n.KeyCols, v.Col)
	n.Children = append(n.Children, v)
}

// clone deep-copies the node tree (grid expansion overrides cells on a
// private copy).
func (n *Node) clone() *Node {
	if n == nil {
		return nil
	}
	c := *n
	c.Keys = append([]string(nil), n.Keys...)
	c.KeyLines = append([]int(nil), n.KeyLines...)
	c.KeyCols = append([]int(nil), n.KeyCols...)
	c.Children = make([]*Node, len(n.Children))
	for i, ch := range n.Children {
		c.Children[i] = ch.clone()
	}
	return &c
}

// posError is a parse or decode rejection anchored to a file position.
type posError struct {
	file      string
	line, col int
	msg       string
}

func (e *posError) Error() string {
	if e.line <= 0 {
		return fmt.Sprintf("%s: %s", e.file, e.msg)
	}
	return fmt.Sprintf("%s:%d:%d: %s", e.file, e.line, e.col, e.msg)
}

func errAt(file string, line, col int, format string, args ...any) error {
	return &posError{file: file, line: line, col: col, msg: fmt.Sprintf(format, args...)}
}

// --- YAML-subset parser ---
//
// The supported subset is what experiment specs need and nothing more:
// nested mappings by two-or-more-space indentation, block lists of
// scalars ("- value"), inline flow lists of scalars ("[a, b, c]"),
// double-quoted strings with \-escapes, comments, and blank lines.
// Anchors, aliases, multi-document streams, block scalars, tabs, and
// nested structures inside list items are rejected with a position.

// yamlLine is one pre-split content line.
type yamlLine struct {
	no     int // 1-based line number
	indent int // leading spaces
	text   string
}

type yamlParser struct {
	file  string
	lines []yamlLine
	pos   int
}

// ParseYAML parses the supported YAML subset into a node tree. The root
// must be a mapping.
func ParseYAML(data []byte, file string) (*Node, error) {
	p := &yamlParser{file: file}
	for i, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSuffix(raw, "\r")
		stripped := stripComment(line)
		if strings.TrimSpace(stripped) == "" {
			continue
		}
		indent := 0
		for indent < len(stripped) && stripped[indent] == ' ' {
			indent++
		}
		if indent < len(stripped) && stripped[indent] == '\t' {
			return nil, errAt(file, i+1, indent+1, "tab in indentation (use spaces)")
		}
		p.lines = append(p.lines, yamlLine{no: i + 1, indent: indent, text: strings.TrimRight(stripped[indent:], " \t")})
	}
	if len(p.lines) == 0 {
		return nil, errAt(file, 0, 0, "empty spec")
	}
	if p.lines[0].indent != 0 {
		return nil, errAt(file, p.lines[0].no, 1, "top-level keys must start at column 1")
	}
	root, err := p.parseBlock(0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, errAt(file, l.no, l.indent+1, "unexpected dedent/indent structure")
	}
	if root.Kind != KindMap {
		return nil, errAt(file, p.lines[0].no, 1, "spec root must be a mapping")
	}
	return root, nil
}

// stripComment removes a trailing "# ..." comment, honoring double quotes.
func stripComment(line string) string {
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped char
			}
		case '"':
			inQuote = !inQuote
		case '#':
			if !inQuote && (i == 0 || line[i-1] == ' ' || line[i-1] == '\t') {
				return line[:i]
			}
		}
	}
	return line
}

// parseBlock parses the run of lines at exactly `indent` as one mapping or
// list node.
func (p *yamlParser) parseBlock(indent int) (*Node, error) {
	first := p.lines[p.pos]
	if strings.HasPrefix(first.text, "- ") || first.text == "-" {
		return p.parseList(indent)
	}
	return p.parseMap(indent)
}

func (p *yamlParser) parseMap(indent int) (*Node, error) {
	n := &Node{Line: p.lines[p.pos].no, Col: indent + 1, Kind: KindMap}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break // dedent closes this block
		}
		if l.indent > indent {
			return nil, errAt(p.file, l.no, l.indent+1, "unexpected indentation (no key opened a nested block here)")
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, errAt(p.file, l.no, l.indent+1, "list item in a mapping block")
		}
		key, rest, keyErr := splitKey(l.text)
		if keyErr != "" {
			return nil, errAt(p.file, l.no, l.indent+1, "%s", keyErr)
		}
		if n.child(key) != nil {
			return nil, errAt(p.file, l.no, l.indent+1, "duplicate key %q", key)
		}
		p.pos++
		var val *Node
		if rest == "" {
			// Value is a nested block (next line further indented) or an
			// empty scalar.
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				child, err := p.parseBlock(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
				val = child
			} else {
				val = &Node{Line: l.no, Col: l.indent + len(key) + 3, Kind: KindScalar, Val: ""}
			}
		} else {
			inline, err := p.parseInline(rest, l.no, l.indent+len(l.text)-len(rest)+1)
			if err != nil {
				return nil, err
			}
			val = inline
		}
		n.Keys = append(n.Keys, key)
		n.KeyLines = append(n.KeyLines, l.no)
		n.KeyCols = append(n.KeyCols, l.indent+1)
		n.Children = append(n.Children, val)
	}
	return n, nil
}

func (p *yamlParser) parseList(indent int) (*Node, error) {
	n := &Node{Line: p.lines[p.pos].no, Col: indent + 1, Kind: KindList}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, errAt(p.file, l.no, l.indent+1, "unexpected indentation inside a list")
		}
		if !strings.HasPrefix(l.text, "- ") && l.text != "-" {
			return nil, errAt(p.file, l.no, l.indent+1, "expected a '- ' list item")
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		if rest == "" {
			return nil, errAt(p.file, l.no, l.indent+1, "empty or nested list items are not supported (list items must be scalars)")
		}
		if !strings.HasPrefix(rest, "\"") && (strings.HasSuffix(rest, ":") || strings.Contains(rest, ": ")) {
			return nil, errAt(p.file, l.no, l.indent+3, "mappings inside lists are not supported")
		}
		item, err := p.parseInline(rest, l.no, l.indent+3)
		if err != nil {
			return nil, err
		}
		p.pos++
		n.Children = append(n.Children, item)
	}
	return n, nil
}

// splitKey splits "key: rest" (or "key:" with empty rest). Keys may be
// bare (no colon/space trickery) or double-quoted.
func splitKey(text string) (key, rest, errMsg string) {
	if strings.HasPrefix(text, "\"") {
		end := -1
		for i := 1; i < len(text); i++ {
			if text[i] == '\\' {
				i++
				continue
			}
			if text[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return "", "", "unterminated quoted key"
		}
		k, err := unescape(text[1:end])
		if err != "" {
			return "", "", err
		}
		after := text[end+1:]
		if !strings.HasPrefix(after, ":") {
			return "", "", "expected ':' after quoted key"
		}
		return k, strings.TrimSpace(after[1:]), ""
	}
	i := strings.Index(text, ":")
	if i < 0 {
		return "", "", fmt.Sprintf("expected 'key: value', got %q", text)
	}
	key = strings.TrimSpace(text[:i])
	if key == "" {
		return "", "", "empty key"
	}
	rest = strings.TrimSpace(text[i+1:])
	if rest != "" && text[i+1] != ' ' {
		return "", "", fmt.Sprintf("expected a space after ':' in %q", text)
	}
	return key, rest, ""
}

// parseInline parses a scalar or a flow list of scalars.
func (p *yamlParser) parseInline(text string, line, col int) (*Node, error) {
	if strings.HasPrefix(text, "[") {
		if !strings.HasSuffix(text, "]") {
			return nil, errAt(p.file, line, col, "unterminated flow list")
		}
		n := &Node{Line: line, Col: col, Kind: KindList}
		body := strings.TrimSpace(text[1 : len(text)-1])
		if body == "" {
			return n, nil
		}
		items, err := splitFlowItems(body)
		if err != "" {
			return nil, errAt(p.file, line, col, "%s", err)
		}
		for _, it := range items {
			sc, err := p.parseScalar(strings.TrimSpace(it), line, col)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, sc)
		}
		return n, nil
	}
	if strings.HasPrefix(text, "{") {
		return nil, errAt(p.file, line, col, "flow mappings are not supported (use nested block keys)")
	}
	return p.parseScalar(text, line, col)
}

// splitFlowItems splits a flow-list body on commas outside quotes.
func splitFlowItems(body string) ([]string, string) {
	var items []string
	start, inQuote := 0, false
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				items = append(items, body[start:i])
				start = i + 1
			}
		case '[', ']':
			if !inQuote {
				return nil, "nested flow lists are not supported"
			}
		}
	}
	if inQuote {
		return nil, "unterminated string in flow list"
	}
	items = append(items, body[start:])
	for _, it := range items {
		if strings.TrimSpace(it) == "" {
			return nil, "empty element in flow list"
		}
	}
	return items, ""
}

func (p *yamlParser) parseScalar(text string, line, col int) (*Node, error) {
	if strings.HasPrefix(text, "\"") {
		if len(text) < 2 || !strings.HasSuffix(text, "\"") {
			return nil, errAt(p.file, line, col, "unterminated string %q", text)
		}
		s, errMsg := unescape(text[1 : len(text)-1])
		if errMsg != "" {
			return nil, errAt(p.file, line, col, "%s", errMsg)
		}
		return &Node{Line: line, Col: col, Kind: KindScalar, Val: s, Quoted: true}, nil
	}
	if strings.HasPrefix(text, "'") || strings.HasPrefix(text, "&") || strings.HasPrefix(text, "*") ||
		strings.HasPrefix(text, "|") || strings.HasPrefix(text, ">") {
		return nil, errAt(p.file, line, col, "unsupported YAML syntax %q (subset: bare scalars, double-quoted strings, flow lists)", text)
	}
	return &Node{Line: line, Col: col, Kind: KindScalar, Val: text}, nil
}

// unescape processes \" \\ \n \t inside a double-quoted string.
func unescape(s string) (string, string) {
	if !strings.Contains(s, "\\") {
		return s, ""
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", "dangling backslash in string"
		}
		switch s[i] {
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		default:
			return "", fmt.Sprintf("unsupported escape \\%c", s[i])
		}
	}
	return b.String(), ""
}
