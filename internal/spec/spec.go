package spec

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"ustore/internal/faults"
)

// Spec is one fully-resolved experiment description. Field names in the
// document are the snake_case forms of these (e.g. blocks_per_space);
// every field is optional except mode, and defaults are chosen so a
// two-line spec runs the same scenario the CLI defaults would.
//
// A Spec is what gets hashed: the canonical cell identity is the
// sha256 of the decoded, defaulted struct (see Canonical/Hash), never the
// raw document bytes.
type Spec struct {
	Name string `json:"name"`
	// Mode selects the run family: "faults" (chaos fault schedule),
	// "traffic" (multi-tenant storm engine), "fleet" (sharded control
	// plane), "fidelity" (paper-fidelity golden checks), "durability"
	// (Monte-Carlo durability-vs-cost cell over the failure model).
	Mode string  `json:"mode"`
	Seed int64   `json:"seed"`
	Days float64 `json:"days"` // simulated fault-phase days (faults mode)

	Faults     FaultsSpec     `json:"faults"`
	Failure    FailureSpec    `json:"failure"`
	Traffic    TrafficSpec    `json:"traffic"`
	Fleet      FleetSpec      `json:"fleet"`
	Fidelity   FidelitySpec   `json:"fidelity"`
	Durability DurabilitySpec `json:"durability"`
	Output     OutputSpec     `json:"output"`
}

// FaultsSpec shapes a faults-mode run: which families the schedule draws
// from and the replicated workload dimensions.
type FaultsSpec struct {
	HostCrashes bool `json:"host_crashes"`
	Disks       bool `json:"disks"`
	Hubs        bool `json:"hubs"`
	Net         bool `json:"net"`
	Corruptions bool `json:"corruptions"`
	Gray        bool `json:"gray"`
	Mitigation  bool `json:"mitigation"`

	Pairs          int `json:"pairs"`
	BlocksPerSpace int `json:"blocks_per_space"`
}

// FailureSpec selects and parameterizes the failure model the run sweeps
// over. "constant" is the seed behaviour (flat exponential lifetimes from
// the paper's MTTF citations); "empirical" is the Gray & van Ingen model
// (faults.EmpiricalModel): bathtub AFR, correlated vintage batches,
// measured URE rates. Rate fields left out of the document inherit the
// calibrated defaults of faults.DefaultEmpirical.
type FailureSpec struct {
	Model string `json:"model"` // "constant" | "empirical"
	// AgeYears maps the simulated run window onto this many years of disk
	// aging (accelerated aging), so a 2-simulated-day faults run can sweep
	// a 5-year bathtub.
	AgeYears float64 `json:"age_years"`

	InfantAFR       float64 `json:"infant_afr"`
	InfantDecayDays float64 `json:"infant_decay_days"`
	UsefulAFR       float64 `json:"useful_afr"`
	WearOutYears    float64 `json:"wear_out_years"`
	WearOutRise     float64 `json:"wear_out_rise"`

	BatchSize       int     `json:"batch_size"`
	BatchShock      float64 `json:"batch_shock"`
	BatchWindowDays float64 `json:"batch_window_days"`

	// UREBits is the expected bits read per uncorrectable read error:
	// faults.SpecUREBits (1e14) is the datasheet, faults.ObservedUREBits
	// (3.2e15) the measurement. The strings "spec" and "observed" are
	// accepted in the document.
	UREBits float64 `json:"ure_bits"`
}

// TrafficSpec shapes a traffic-mode run.
type TrafficSpec struct {
	Storm           bool `json:"storm"`
	Protect         bool `json:"protect"`
	StreamQuantiles bool `json:"stream_quantiles"`
}

// FleetSpec shapes a fleet-mode run. The fault fields mirror the
// ustore-chaos fleet fault flags, so a campaign grid can sweep
// crash/partition/migration mixes cell by cell: any of crashes,
// partitions or slot_moves being positive adds the seeded transient-fault
// phase between load and verify.
type FleetSpec struct {
	Units         int  `json:"units"`
	Shards        int  `json:"shards"`
	Clients       int  `json:"clients"`
	Volumes       int  `json:"volumes"`
	UnitLoss      bool `json:"unit_loss"`
	EngineWorkers int  `json:"engine_workers"`

	// Crashes is the number of shard-replica crash/restart cycles.
	Crashes int `json:"crashes"`
	// Partitions is the number of partition/heal (or leader-isolation)
	// windows.
	Partitions int `json:"partitions"`
	// SlotMoves is the number of schedule-driven slot migrations (the first
	// straddled by a source-leader crash; needs shards >= 2 to take effect).
	SlotMoves int `json:"slot_moves"`
	// FaultWindowSec is the fault-phase length in simulated seconds
	// (0 = the harness default).
	FaultWindowSec float64 `json:"fault_window_sec"`
	// SkipRedrive plants the skipped-ledger-re-drive recovery bug.
	SkipRedrive bool `json:"skip_redrive"`
}

// FidelitySpec shapes a fidelity-mode run: one named paper-fidelity check
// per cell ("" runs the whole suite in one cell). Check IDs are the ones
// internal/bench.FidelityChecks declares (e.g. "table1-ustore-capex").
type FidelitySpec struct {
	Check string `json:"check"`
}

// DurabilitySpec shapes a durability-vs-cost Monte-Carlo cell: a
// population of disks under the selected failure model, protected by
// Scheme, with failed disks rebuilt after RepairHours. The cell reports
// data-loss incidents, annual loss probability (as nines of durability),
// and usable-capacity cost from the paper's CapEx model.
type DurabilitySpec struct {
	// Scheme is "r<N>" (N-way replication, e.g. "r3") or "ec<K>+<M>"
	// (K data + M parity erasure coding, e.g. "ec8+3").
	Scheme      string  `json:"scheme"`
	Disks       int     `json:"disks"`
	DiskTB      float64 `json:"disk_tb"`
	Years       float64 `json:"years"`
	RepairHours float64 `json:"repair_hours"`
	Trials      int     `json:"trials"`
}

// OutputSpec selects what each cell's stamped output carries beyond the
// summary: the full event log, and/or a metrics snapshot.
type OutputSpec struct {
	Log bool `json:"log"`
}

// Default returns the spec every document starts from before its fields
// are applied: the CLI-default faults run with the constant failure model.
func Default() *Spec {
	em := faults.DefaultEmpirical()
	return &Spec{
		Mode: "faults",
		Seed: 1,
		Days: 2,
		Faults: FaultsSpec{
			HostCrashes: true, Disks: true, Hubs: true, Net: true, Corruptions: true,
			Pairs: 4, BlocksPerSpace: 8,
		},
		Failure: FailureSpec{
			Model:           "constant",
			AgeYears:        5,
			InfantAFR:       em.InfantAFR,
			InfantDecayDays: float64(em.InfantDecay) / float64(24*time.Hour),
			UsefulAFR:       em.UsefulAFR,
			WearOutYears:    float64(em.WearOutAfter) / float64(faults.Year),
			WearOutRise:     em.WearOutRise,
			BatchSize:       em.BatchSize,
			BatchShock:      em.BatchShock,
			BatchWindowDays: float64(em.BatchWindow) / float64(24*time.Hour),
			UREBits:         em.UREBits,
		},
		Fleet: FleetSpec{Units: 8, Shards: 1},
		Durability: DurabilitySpec{
			Scheme: "r3", Disks: 1024, DiskTB: 4, Years: 5, RepairHours: 24, Trials: 4,
		},
	}
}

// Modes lists the valid mode values.
var Modes = []string{"faults", "traffic", "fleet", "fidelity", "durability"}

// Validate rejects semantically impossible specs (shape errors are the
// decoder's job and carry positions; these are value errors).
func (s *Spec) Validate() error {
	ok := false
	for _, m := range Modes {
		if s.Mode == m {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("spec %q: unknown mode %q (want one of %s)", s.Name, s.Mode, strings.Join(Modes, ", "))
	}
	if s.Days <= 0 {
		return fmt.Errorf("spec %q: days must be positive", s.Name)
	}
	if s.Mode == "faults" && (s.Faults.Pairs <= 0 || s.Faults.BlocksPerSpace <= 0) {
		return fmt.Errorf("spec %q: faults.pairs and faults.blocks_per_space must be positive", s.Name)
	}
	switch s.Failure.Model {
	case "constant", "empirical":
	default:
		return fmt.Errorf("spec %q: failure.model %q (want constant or empirical)", s.Name, s.Failure.Model)
	}
	if s.Failure.Model == "empirical" {
		if s.Failure.AgeYears <= 0 {
			return fmt.Errorf("spec %q: failure.age_years must be positive", s.Name)
		}
		if err := s.EmpiricalModel().Validate(); err != nil {
			return fmt.Errorf("spec %q: %w", s.Name, err)
		}
	}
	if s.Mode == "fleet" {
		fl := s.Fleet
		if fl.Units <= 0 || fl.Shards <= 0 {
			return fmt.Errorf("spec %q: fleet.units and fleet.shards must be positive", s.Name)
		}
		if fl.Crashes < 0 || fl.Partitions < 0 || fl.SlotMoves < 0 || fl.FaultWindowSec < 0 {
			return fmt.Errorf("spec %q: fleet fault fields must be non-negative", s.Name)
		}
		if fl.SlotMoves > 0 && fl.Shards < 2 {
			return fmt.Errorf("spec %q: fleet.slot_moves needs fleet.shards >= 2 (a single shard has nowhere to move slots)", s.Name)
		}
	}
	if s.Mode == "durability" {
		d := s.Durability
		if _, _, err := ParseScheme(d.Scheme); err != nil {
			return fmt.Errorf("spec %q: %w", s.Name, err)
		}
		if d.Disks <= 0 || d.Years <= 0 || d.DiskTB <= 0 || d.RepairHours <= 0 || d.Trials <= 0 {
			return fmt.Errorf("spec %q: durability dimensions must be positive", s.Name)
		}
	}
	return nil
}

// EmpiricalModel materializes the failure section as a faults model.
func (s *Spec) EmpiricalModel() *faults.EmpiricalModel {
	f := s.Failure
	return &faults.EmpiricalModel{
		InfantAFR:    f.InfantAFR,
		InfantDecay:  time.Duration(f.InfantDecayDays * float64(24*time.Hour)),
		UsefulAFR:    f.UsefulAFR,
		WearOutAfter: time.Duration(f.WearOutYears * float64(faults.Year)),
		WearOutRise:  f.WearOutRise,
		BatchSize:    f.BatchSize,
		BatchShock:   f.BatchShock,
		BatchWindow:  time.Duration(f.BatchWindowDays * float64(24*time.Hour)),
		UREBits:      f.UREBits,
	}
}

// ParseScheme parses a durability protection scheme: "r<N>" replication
// keeps N full copies (tolerates N-1 overlapping failures, raw overhead
// N); "ec<K>+<M>" keeps K data + M parity fragments (tolerates M, raw
// overhead (K+M)/K).
func ParseScheme(s string) (width, tolerate int, err error) {
	if n, ok := strings.CutPrefix(s, "r"); ok {
		r, aerr := strconv.Atoi(n)
		if aerr != nil || r < 1 || r > 16 {
			return 0, 0, fmt.Errorf("bad replication scheme %q (want r1..r16)", s)
		}
		return r, r - 1, nil
	}
	if body, ok := strings.CutPrefix(s, "ec"); ok {
		k, m, found := strings.Cut(body, "+")
		if found {
			kd, e1 := strconv.Atoi(k)
			mp, e2 := strconv.Atoi(m)
			if e1 == nil && e2 == nil && kd >= 1 && kd <= 32 && mp >= 1 && mp <= 8 {
				return kd + mp, mp, nil
			}
		}
		return 0, 0, fmt.Errorf("bad erasure-coding scheme %q (want ec<K>+<M>, e.g. ec8+3)", s)
	}
	return 0, 0, fmt.Errorf("bad protection scheme %q (want r<N> or ec<K>+<M>)", s)
}

// SchemeOverhead returns the raw-over-usable capacity factor of a scheme.
func SchemeOverhead(s string) (float64, error) {
	width, tol, err := ParseScheme(s)
	if err != nil {
		return 0, err
	}
	data := width - tol
	return float64(width) / float64(data), nil
}
